package cache

import "repro/internal/httpmsg"

// Flight is one in-progress upstream fetch that concurrent requests for
// the same URL collapse onto: the first miss starts the flight and talks
// to the origin; later misses Join it and share the single response.
// This is the "collapsed forwarding" behaviour that keeps a thundering
// herd of clients from multiplying origin load.
type Flight struct {
	Key string
	// Conditional marks a revalidation flight (the upstream request
	// carries validators). A request whose conditionality differs from
	// the in-progress fetch must not collapse onto it — the shared
	// response would have the wrong shape — so callers check this before
	// joining.
	Conditional bool

	waiters []func(*httpmsg.Response, error)
}

// Join registers a callback for the flight's response. Callbacks run in
// join order when the flight finishes.
func (f *Flight) Join(fn func(*httpmsg.Response, error)) {
	f.waiters = append(f.waiters, fn)
}

// Waiters returns how many requests are riding the flight.
func (f *Flight) Waiters() int { return len(f.waiters) }

// Flight returns the in-progress fetch for key, or nil.
func (c *Cache) Flight(key string) *Flight { return c.flights[key] }

// StartFlight registers a new in-progress fetch for key. It panics if one
// is already in progress — callers must Join instead.
func (c *Cache) StartFlight(key string, conditional bool) *Flight {
	if _, dup := c.flights[key]; dup {
		panic("cache: duplicate flight for " + key)
	}
	f := &Flight{Key: key, Conditional: conditional}
	c.flights[key] = f
	return f
}

// FinishFlight completes the fetch: the flight is deregistered (so a
// waiter re-requesting the URL starts fresh) and every joined callback
// runs in join order with the shared response.
func (c *Cache) FinishFlight(f *Flight, resp *httpmsg.Response, err error) {
	delete(c.flights, f.Key)
	waiters := f.waiters
	f.waiters = nil
	for _, fn := range waiters {
		fn(resp, err)
	}
}
