// Package cache implements the shared HTTP/1.1 response cache behind the
// simulated proxy tier: RFC 2068 §13 expiration (explicit Cache-Control
// max-age and Expires lifetimes, with the classic last-modified heuristic
// as fallback), If-Modified-Since/If-None-Match revalidation bookkeeping,
// byte-capacity LRU eviction, and collapsed forwarding so concurrent
// misses for one URL trigger a single upstream fetch.
//
// The cache is clocked by the simulation (freshness is stored as absolute
// sim.Time deadlines, never wall-clock), and it never iterates its maps
// on a hot path, so runs through a cache are as deterministic as runs
// without one.
package cache

import (
	"container/list"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpmsg"
	"repro/internal/sim"
)

// heuristicFraction and heuristicCap bound the fallback lifetime for
// responses with a Last-Modified but no explicit expiry: 10% of the
// entity's age at arrival, capped at 24 hours — the rule RFC 2068
// §13.2.4 blesses and 1997 proxies (CERN, Harvest/Squid) shipped.
const (
	heuristicFraction = 0.10
	heuristicCap      = 24 * time.Hour
)

// Entry is one cached response.
type Entry struct {
	Key    string
	Status int
	// Header is the stored response header (cloned at Store time); Body
	// the entity body.
	Header httpmsg.Header
	Body   []byte
	// ETag and LastModified are the entity's validators, extracted for
	// conditional handling.
	ETag, LastModified string
	// Received is when the response entered the cache; FreshUntil is the
	// instant it stops being served without revalidation. Heuristic marks
	// a lifetime computed by the last-modified fallback rather than an
	// explicit max-age/Expires.
	Received   sim.Time
	FreshUntil sim.Time
	Heuristic  bool
	// Hits and Revalidations count how the entry has been used.
	Hits, Revalidations int

	elem *list.Element
}

// Size is the entry's byte-capacity charge: body plus serialized header
// estimate.
func (e *Entry) Size() int64 {
	n := int64(len(e.Body))
	for _, f := range e.Header.Fields() {
		n += int64(len(f.Name) + len(f.Value) + 4) // ": " + CRLF
	}
	return n
}

// Stats counts cache activity.
type Stats struct {
	Insertions int
	Refreshes  int
	Evictions  int
}

// Cache is a byte-capacity LRU response cache on a simulated clock.
type Cache struct {
	capacity int64
	clock    func() sim.Time

	entries map[string]*Entry
	lru     *list.List // front = most recently used; values are *Entry
	used    int64
	stats   Stats

	flights map[string]*Flight
}

// New returns an empty cache holding at most capacity bytes, reading the
// current instant from clock.
func New(capacity int64, clock func() sim.Time) *Cache {
	return &Cache{
		capacity: capacity,
		clock:    clock,
		entries:  make(map[string]*Entry),
		lru:      list.New(),
		flights:  make(map[string]*Flight),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Bytes returns the cache's current byte charge.
func (c *Cache) Bytes() int64 { return c.used }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Get returns the entry for key (nil if absent) and marks it most
// recently used.
func (c *Cache) Get(key string) *Entry {
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e
}

// Fresh reports whether the entry may be served without revalidation.
func (c *Cache) Fresh(e *Entry) bool {
	return c.clock() < e.FreshUntil
}

// Age returns how long the entry has been cached (the Age header a proxy
// attaches when serving it).
func (c *Cache) Age(e *Entry) sim.Duration {
	return c.clock().Sub(e.Received)
}

// ccDirectives parses the Cache-Control directives a 1997 cache honours.
type ccDirectives struct {
	maxAge    time.Duration
	hasMaxAge bool
	noStore   bool
	noCache   bool
	private   bool
}

func parseCacheControl(v string) ccDirectives {
	var d ccDirectives
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.EqualFold(part, "no-store"):
			d.noStore = true
		case strings.EqualFold(part, "no-cache"):
			d.noCache = true
		case strings.EqualFold(part, "private"):
			d.private = true
		case len(part) > 8 && strings.EqualFold(part[:8], "max-age="):
			if n, err := strconv.Atoi(strings.TrimSpace(part[8:])); err == nil && n >= 0 {
				d.maxAge = time.Duration(n) * time.Second
				d.hasMaxAge = true
			}
		}
	}
	return d
}

// Storable reports whether a shared cache may store the response: a 200
// to a GET, not marked uncacheable, and not content-coded (a cache that
// stored coded variants would need Vary handling the 1997 protocol did
// not yet pin down).
func Storable(req *httpmsg.Request, resp *httpmsg.Response) bool {
	if req.Method != "GET" || resp.StatusCode != 200 {
		return false
	}
	if req.Header.Has("Authorization") {
		return false
	}
	if resp.Header.Get("Content-Encoding") != "" {
		return false
	}
	d := parseCacheControl(resp.Header.Get("Cache-Control"))
	return !d.noStore && !d.noCache && !d.private
}

// lifetime computes a response's freshness lifetime from its headers:
// Cache-Control max-age wins, then Expires−Date, then the last-modified
// heuristic. ok is false when no rule applies (the response is stale on
// arrival and every use revalidates).
func lifetime(h *httpmsg.Header) (d time.Duration, heuristic, ok bool) {
	if cc := parseCacheControl(h.Get("Cache-Control")); cc.hasMaxAge {
		return cc.maxAge, false, true
	}
	date, dateErr := httpmsg.ParseDate(h.Get("Date"))
	if exp := h.Get("Expires"); exp != "" && dateErr == nil {
		// An unparseable Expires means "already expired" per RFC 2068.
		t, err := httpmsg.ParseDate(exp)
		if err != nil || !t.After(date) {
			return 0, false, true
		}
		return t.Sub(date), false, true
	}
	if lm := h.Get("Last-Modified"); lm != "" && dateErr == nil {
		t, err := httpmsg.ParseDate(lm)
		if err == nil && date.After(t) {
			d := time.Duration(heuristicFraction * float64(date.Sub(t)))
			if d > heuristicCap {
				d = heuristicCap
			}
			return d, true, true
		}
	}
	return 0, false, false
}

// Store inserts the response under key, computing its freshness lifetime
// and evicting least-recently-used entries to fit. It returns the entry,
// or nil when the response alone exceeds the cache capacity. The caller
// is responsible for checking Storable first.
func (c *Cache) Store(key string, resp *httpmsg.Response) *Entry {
	now := c.clock()
	e := &Entry{
		Key:          key,
		Status:       resp.StatusCode,
		Header:       resp.Header.Clone(),
		Body:         resp.Body,
		ETag:         resp.Header.Get("ETag"),
		LastModified: resp.Header.Get("Last-Modified"),
		Received:     now,
		FreshUntil:   now,
	}
	if d, heur, ok := lifetime(&e.Header); ok {
		e.FreshUntil = now.Add(d)
		e.Heuristic = heur
	}
	if e.Size() > c.capacity {
		return nil
	}
	if old, ok := c.entries[key]; ok {
		c.removeEntry(old)
	}
	for c.used+e.Size() > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeEntry(back.Value.(*Entry))
		c.stats.Evictions++
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.used += e.Size()
	c.stats.Insertions++
	return e
}

// Refresh extends a stale entry's lifetime after a 304: per RFC 2068
// §13.5.3 the validator response's header fields replace the stored
// ones, and the lifetime is recomputed from the merged headers — the
// entity provably did not change, so the freshness clock restarts.
func (c *Cache) Refresh(e *Entry, resp *httpmsg.Response) {
	oldSize := e.Size()
	for _, f := range resp.Header.Fields() {
		e.Header.Set(f.Name, f.Value)
	}
	c.used += e.Size() - oldSize
	if et := e.Header.Get("ETag"); et != "" {
		e.ETag = et
	}
	if lm := e.Header.Get("Last-Modified"); lm != "" {
		e.LastModified = lm
	}
	now := c.clock()
	if d, heur, ok := lifetime(&e.Header); ok {
		e.FreshUntil = now.Add(d)
		e.Heuristic = heur
	} else {
		e.FreshUntil = now
	}
	e.Revalidations++
	c.stats.Refreshes++
}

// Expire marks the entry stale immediately, forcing the next use to
// revalidate. Warm-but-expired priming uses this to model a cache filled
// on an earlier day.
func (c *Cache) Expire(e *Entry) { e.FreshUntil = e.Received }

// Remove drops the entry for key, if present.
func (c *Cache) Remove(key string) {
	if e, ok := c.entries[key]; ok {
		c.removeEntry(e)
	}
}

func (c *Cache) removeEntry(e *Entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.Key)
	c.used -= e.Size()
}
