package cache

import (
	"errors"
	"testing"
	"time"

	"repro/internal/httpmsg"
	"repro/internal/sim"
)

// testClock returns a cache on a settable clock.
func testClock(capacity int64) (*Cache, *sim.Time) {
	now := new(sim.Time)
	return New(capacity, func() sim.Time { return *now }), now
}

func resp200(body string, headers ...[2]string) *httpmsg.Response {
	r := httpmsg.NewResponse(httpmsg.Proto11, 200)
	r.Body = []byte(body)
	for _, h := range headers {
		r.Header.Add(h[0], h[1])
	}
	return r
}

func getReq() *httpmsg.Request {
	return &httpmsg.Request{Method: "GET", Target: "/x", Proto: httpmsg.Proto11}
}

func TestFreshnessMaxAge(t *testing.T) {
	c, now := testClock(1 << 20)
	e := c.Store("/x", resp200("body", [2]string{"Cache-Control", "max-age=60"}))
	if e == nil {
		t.Fatal("Store returned nil")
	}
	if e.Heuristic {
		t.Fatal("max-age lifetime marked heuristic")
	}
	if !c.Fresh(e) {
		t.Fatal("entry stale at store time")
	}
	*now = sim.Time(59 * time.Second)
	if !c.Fresh(e) {
		t.Fatal("entry stale before max-age elapsed")
	}
	*now = sim.Time(60 * time.Second)
	if c.Fresh(e) {
		t.Fatal("entry fresh after max-age elapsed")
	}
	if c.Age(e) != 60*time.Second {
		t.Fatalf("Age = %v, want 60s", c.Age(e))
	}
}

func TestFreshnessExpires(t *testing.T) {
	c, _ := testClock(1 << 20)
	e := c.Store("/x", resp200("body",
		[2]string{"Date", "Mon, 07 Jul 1997 10:00:00 GMT"},
		[2]string{"Expires", "Mon, 07 Jul 1997 10:05:00 GMT"},
	))
	if got := e.FreshUntil.Sub(e.Received); got != 5*time.Minute {
		t.Fatalf("Expires lifetime = %v, want 5m", got)
	}
	// Expires at or before Date: stale on arrival.
	e = c.Store("/y", resp200("body",
		[2]string{"Date", "Mon, 07 Jul 1997 10:00:00 GMT"},
		[2]string{"Expires", "Mon, 07 Jul 1997 09:00:00 GMT"},
	))
	if c.Fresh(e) {
		t.Fatal("pre-expired entry reported fresh")
	}
	// Unparseable Expires: likewise stale.
	e = c.Store("/z", resp200("body",
		[2]string{"Date", "Mon, 07 Jul 1997 10:00:00 GMT"},
		[2]string{"Expires", "0"},
	))
	if c.Fresh(e) {
		t.Fatal("entry with bogus Expires reported fresh")
	}
}

func TestFreshnessHeuristic(t *testing.T) {
	c, _ := testClock(1 << 20)
	// Entity last modified 5 days before Date: 10% = 12 hours.
	e := c.Store("/x", resp200("body",
		[2]string{"Date", "Mon, 07 Jul 1997 10:00:00 GMT"},
		[2]string{"Last-Modified", "Wed, 02 Jul 1997 10:00:00 GMT"},
	))
	if !e.Heuristic {
		t.Fatal("fallback lifetime not marked heuristic")
	}
	if got := e.FreshUntil.Sub(e.Received); got != 12*time.Hour {
		t.Fatalf("heuristic lifetime = %v, want 12h", got)
	}
	// A year-old entity hits the 24h cap.
	e = c.Store("/y", resp200("body",
		[2]string{"Date", "Mon, 07 Jul 1997 10:00:00 GMT"},
		[2]string{"Last-Modified", "Mon Jul  8 10:00:00 1996"}, // asctime form
	))
	if got := e.FreshUntil.Sub(e.Received); got != 24*time.Hour {
		t.Fatalf("capped heuristic lifetime = %v, want 24h", got)
	}
	// No usable headers: stale on arrival.
	e = c.Store("/z", resp200("body"))
	if c.Fresh(e) {
		t.Fatal("entry without expiry information reported fresh")
	}
}

func TestStorable(t *testing.T) {
	req := getReq()
	cases := []struct {
		name string
		req  *httpmsg.Request
		resp *httpmsg.Response
		want bool
	}{
		{"plain 200", req, resp200("x"), true},
		{"non-200", req, httpmsg.NewResponse(httpmsg.Proto11, 404), false},
		{"no-store", req, resp200("x", [2]string{"Cache-Control", "no-store"}), false},
		{"no-cache", req, resp200("x", [2]string{"Cache-Control", "no-cache"}), false},
		{"private", req, resp200("x", [2]string{"Cache-Control", "private, max-age=60"}), false},
		{"content-coded", req, resp200("x", [2]string{"Content-Encoding", "deflate"}), false},
	}
	head := getReq()
	head.Method = "HEAD"
	cases = append(cases, struct {
		name string
		req  *httpmsg.Request
		resp *httpmsg.Response
		want bool
	}{"HEAD", head, resp200("x"), false})
	auth := getReq()
	auth.Header.Add("Authorization", "Basic x")
	cases = append(cases, struct {
		name string
		req  *httpmsg.Request
		resp *httpmsg.Response
		want bool
	}{"authorized", auth, resp200("x"), false})
	for _, tc := range cases {
		if got := Storable(tc.req, tc.resp); got != tc.want {
			t.Errorf("Storable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	body := make([]byte, 100)
	probe := New(1<<20, func() sim.Time { return 0 })
	r := httpmsg.NewResponse(httpmsg.Proto11, 200)
	r.Body = body
	entrySize := probe.Store("/probe", r).Size()

	c, _ := testClock(3 * entrySize)
	for _, k := range []string{"/a", "/b", "/c"} {
		r := httpmsg.NewResponse(httpmsg.Proto11, 200)
		r.Body = body
		if c.Store(k, r) == nil {
			t.Fatalf("Store(%s) rejected", k)
		}
	}
	if c.Len() != 3 || c.Bytes() != 3*entrySize {
		t.Fatalf("cache holds %d entries / %d bytes, want 3 / %d", c.Len(), c.Bytes(), 3*entrySize)
	}
	// Touch /a so /b is the LRU victim.
	if c.Get("/a") == nil {
		t.Fatal("Get(/a) missed")
	}
	r = httpmsg.NewResponse(httpmsg.Proto11, 200)
	r.Body = body
	c.Store("/d", r)
	if c.Get("/b") != nil {
		t.Fatal("LRU victim /b survived")
	}
	for _, k := range []string{"/a", "/c", "/d"} {
		if c.Get(k) == nil {
			t.Fatalf("entry %s evicted unexpectedly", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Stats().Evictions)
	}
	// An entry larger than the whole cache is refused without disturbing
	// the rest.
	big := httpmsg.NewResponse(httpmsg.Proto11, 200)
	big.Body = make([]byte, 4*entrySize)
	if c.Store("/huge", big) != nil {
		t.Fatal("oversized entry stored")
	}
	if c.Len() != 3 {
		t.Fatalf("oversized store disturbed cache: %d entries", c.Len())
	}
}

func TestStoreReplaces(t *testing.T) {
	c, _ := testClock(1 << 20)
	c.Store("/x", resp200("first"))
	c.Store("/x", resp200("second, longer body"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replacing store, want 1", c.Len())
	}
	if got := string(c.Get("/x").Body); got != "second, longer body" {
		t.Fatalf("body = %q", got)
	}
}

func TestRefresh(t *testing.T) {
	c, now := testClock(1 << 20)
	e := c.Store("/x", resp200("body", [2]string{"Cache-Control", "max-age=10"}))
	*now = sim.Time(30 * time.Second)
	if c.Fresh(e) {
		t.Fatal("entry fresh after lifetime")
	}
	nm := httpmsg.NewResponse(httpmsg.Proto11, 304)
	nm.Header.Add("Cache-Control", "max-age=20")
	nm.Header.Add("ETag", `"v2"`)
	c.Refresh(e, nm)
	if !c.Fresh(e) {
		t.Fatal("entry stale after refresh")
	}
	if got := e.FreshUntil.Sub(*now); got != 20*time.Second {
		t.Fatalf("refreshed lifetime = %v, want 20s", got)
	}
	if e.ETag != `"v2"` || e.Header.Get("ETag") != `"v2"` {
		t.Fatalf("refresh did not update validators: %q", e.ETag)
	}
	if e.Revalidations != 1 || c.Stats().Refreshes != 1 {
		t.Fatal("revalidation counters not updated")
	}
	// A 304 with no expiry headers falls back to the stored ones,
	// restarting the stored max-age from now.
	*now = sim.Time(60 * time.Second)
	c.Refresh(e, httpmsg.NewResponse(httpmsg.Proto11, 304))
	if got := e.FreshUntil.Sub(*now); got != 20*time.Second {
		t.Fatalf("fallback refresh lifetime = %v, want 20s", got)
	}
}

func TestFlightCollapse(t *testing.T) {
	c, _ := testClock(1 << 20)
	if c.Flight("/x") != nil {
		t.Fatal("flight present before start")
	}
	f := c.StartFlight("/x", false)
	if c.Flight("/x") != f {
		t.Fatal("flight not registered")
	}
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		f.Join(func(resp *httpmsg.Response, err error) {
			if resp.StatusCode != 200 || err != nil {
				t.Errorf("waiter %d got %v/%v", i, resp, err)
			}
			order = append(order, i)
		})
	}
	if f.Waiters() != 3 {
		t.Fatalf("Waiters = %d, want 3", f.Waiters())
	}
	c.FinishFlight(f, resp200("shared"), nil)
	if c.Flight("/x") != nil {
		t.Fatal("flight still registered after finish")
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("waiters ran out of order: %v", order)
	}
	// Error flights deliver the error to every waiter.
	f = c.StartFlight("/x", true)
	wantErr := errors.New("upstream reset")
	var got error
	f.Join(func(_ *httpmsg.Response, err error) { got = err })
	c.FinishFlight(f, nil, wantErr)
	if got != wantErr {
		t.Fatalf("error flight delivered %v", got)
	}
}
