package flatez

const (
	windowSize = 32768
	minMatch   = 3
	maxMatch   = 258
	hashBits   = 15
	hashSize   = 1 << hashBits
	hashMask   = hashSize - 1
)

// token is one LZ77 event: a literal byte (dist == 0) or a back-reference.
type token struct {
	lit    byte
	length int
	dist   int
}

// matcherParams tunes LZ77 effort per compression level.
type matcherParams struct {
	maxChain int
	nice     int
	lazy     bool
}

func levelParams(level int) matcherParams {
	switch {
	case level <= 1:
		return matcherParams{maxChain: 8, nice: 16, lazy: false}
	case level <= 3:
		return matcherParams{maxChain: 32, nice: 64, lazy: false}
	case level <= 6:
		return matcherParams{maxChain: 128, nice: 128, lazy: true}
	default:
		return matcherParams{maxChain: 1024, nice: 258, lazy: true}
	}
}

// Compress deflates data at the default level (6).
func Compress(data []byte) []byte { return CompressLevel(data, 6) }

// CompressLevel deflates data at the given level (1 = fastest, 9 = best).
func CompressLevel(data []byte, level int) []byte {
	return CompressDict(data, nil, level)
}

// CompressDict deflates data with a preset dictionary: back-references may
// reach into dict, which the decoder must supply via DecompressDict. This
// implements the paper's future-work idea of compression dictionaries
// optimized for HTML/CSS text.
func CompressDict(data, dict []byte, level int) []byte {
	if len(dict) > windowSize {
		dict = dict[len(dict)-windowSize:]
	}
	tokens := lz77(data, dict, levelParams(level))
	var w bitWriter
	emitBlock(&w, tokens, data, true)
	return w.bytes()
}

func hash3(p []byte) uint32 {
	return (uint32(p[0])<<10 ^ uint32(p[1])<<5 ^ uint32(p[2])) & hashMask
}

// lz77 tokenizes data using hash-chain matching with optional one-step
// lazy evaluation; dict is virtually prepended as match history.
func lz77(data, dict []byte, p matcherParams) []token {
	buf := make([]byte, 0, len(dict)+len(data))
	buf = append(buf, dict...)
	buf = append(buf, data...)
	start := len(dict)

	head := make([]int32, hashSize)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(buf))
	insert := func(pos int) {
		if pos+minMatch > len(buf) {
			return
		}
		h := hash3(buf[pos:])
		prev[pos] = head[h]
		head[h] = int32(pos)
	}
	// Seed the dictionary into the hash chains.
	for i := 0; i < start; i++ {
		insert(i)
	}

	matchLen := func(a, b int) int {
		max := len(buf) - b
		if max > maxMatch {
			max = maxMatch
		}
		n := 0
		for n < max && buf[a+n] == buf[b+n] {
			n++
		}
		return n
	}
	// findFrom walks a hash chain looking for the best match for pos.
	findFrom := func(cand int32, pos int) (length, dist int) {
		limit := pos - windowSize
		chain := p.maxChain
		for cand >= 0 && int(cand) > limit && chain > 0 {
			if l := matchLen(int(cand), pos); l > length {
				length = l
				dist = pos - int(cand)
				if l >= p.nice {
					break
				}
			}
			cand = prev[cand]
			chain--
		}
		return length, dist
	}
	find := func(pos int) (int, int) {
		if pos+minMatch > len(buf) {
			return 0, 0
		}
		h := hash3(buf[pos:])
		return findFrom(head[h], pos)
	}

	tokens := make([]token, 0, len(data)/3+16)
	i := start
	for i < len(buf) {
		insert(i)
		var l1, d1 int
		if i+minMatch <= len(buf) {
			l1, d1 = findFrom(prev[i], i)
		}
		if l1 >= minMatch && p.lazy && i+1+minMatch <= len(buf) {
			if l2, _ := find(i + 1); l2 > l1 {
				tokens = append(tokens, token{lit: buf[i]})
				i++
				continue
			}
		}
		if l1 >= minMatch {
			tokens = append(tokens, token{length: l1, dist: d1})
			for j := i + 1; j < i+l1; j++ {
				insert(j)
			}
			i += l1
		} else {
			tokens = append(tokens, token{lit: buf[i]})
			i++
		}
	}
	return tokens
}

// clSym is one symbol of the RLE-coded code-length stream.
type clSym struct {
	sym       int
	extra     uint32
	extraBits uint
}

// rleEncode compresses a code-length sequence with the 16/17/18 repeat
// codes (RFC 1951 §3.2.7).
func rleEncode(lens []uint8) []clSym {
	var out []clSym
	i := 0
	for i < len(lens) {
		v := lens[i]
		run := 1
		for i+run < len(lens) && lens[i+run] == v {
			run++
		}
		if v == 0 {
			n := run
			for n >= 11 {
				r := n
				if r > 138 {
					r = 138
				}
				out = append(out, clSym{sym: 18, extra: uint32(r - 11), extraBits: 7})
				n -= r
			}
			if n >= 3 {
				out = append(out, clSym{sym: 17, extra: uint32(n - 3), extraBits: 3})
				n = 0
			}
			for ; n > 0; n-- {
				out = append(out, clSym{sym: 0})
			}
		} else {
			out = append(out, clSym{sym: int(v)})
			n := run - 1
			for n >= 3 {
				r := n
				if r > 6 {
					r = 6
				}
				out = append(out, clSym{sym: 16, extra: uint32(r - 3), extraBits: 2})
				n -= r
			}
			for ; n > 0; n-- {
				out = append(out, clSym{sym: int(v)})
			}
		}
		i += run
	}
	return out
}

// emitBlock writes tokens as whichever of stored/fixed/dynamic is smallest.
func emitBlock(w *bitWriter, tokens []token, data []byte, final bool) {
	// Frequencies, always counting the end-of-block symbol.
	litFreq := make([]int64, 286)
	distFreq := make([]int64, 30)
	litFreq[256]++
	for _, t := range tokens {
		if t.dist == 0 {
			litFreq[t.lit]++
		} else {
			litFreq[257+lengthCode(t.length)]++
			distFreq[distCode(t.dist)]++
		}
	}
	litLens := buildLengths(litFreq, maxCodeBits)
	distLens := buildLengths(distFreq, maxCodeBits)
	distUsed := false
	for _, l := range distLens {
		if l > 0 {
			distUsed = true
			break
		}
	}
	if !distUsed {
		// One dist code of one bit: RFC-sanctioned incomplete code.
		distLens[0] = 1
	}

	nlit := 257
	for i := len(litLens) - 1; i >= 257; i-- {
		if litLens[i] > 0 {
			nlit = i + 1
			break
		}
	}
	ndist := 1
	for i := len(distLens) - 1; i >= 1; i-- {
		if distLens[i] > 0 {
			ndist = i + 1
			break
		}
	}

	all := make([]uint8, 0, nlit+ndist)
	all = append(all, litLens[:nlit]...)
	all = append(all, distLens[:ndist]...)
	rle := rleEncode(all)

	clFreq := make([]int64, 19)
	for _, s := range rle {
		clFreq[s.sym]++
	}
	clLens := buildLengths(clFreq, maxCLBits)
	hclen := 4
	for i := len(clOrder) - 1; i >= 4; i-- {
		if clLens[clOrder[i]] > 0 {
			hclen = i + 1
			break
		}
	}

	// Cost comparison (in bits).
	tokenCost := func(lits, dists []uint8) int {
		cost := int(lits[256])
		for _, t := range tokens {
			if t.dist == 0 {
				cost += int(lits[t.lit])
			} else {
				lc := lengthCode(t.length)
				cost += int(lits[257+lc]) + int(lengthExtra[lc])
				dc := distCode(t.dist)
				cost += int(dists[dc]) + int(distExtra[dc])
			}
		}
		return cost
	}
	dynHeader := 3 + 5 + 5 + 4 + 3*hclen
	for _, s := range rle {
		dynHeader += int(clLens[s.sym]) + int(s.extraBits)
	}
	dynCost := dynHeader + tokenCost(litLens, distLens)
	fixedLit, fixedDist := fixedLitLens(), fixedDistLens()
	fixedCost := 3 + tokenCost(fixedLit, fixedDist)
	storedBlocks := len(data)/65535 + 1
	storedCost := storedBlocks*(3+7+32) + 8*len(data) // align worst case

	switch {
	case storedCost < dynCost && storedCost < fixedCost:
		emitStored(w, data, final)
	case fixedCost <= dynCost:
		emitCoded(w, tokens, fixedLit, fixedDist, 1, final)
	default:
		w.writeBits(boolBit(final), 1)
		w.writeBits(2, 2) // BTYPE=10 dynamic
		w.writeBits(uint32(nlit-257), 5)
		w.writeBits(uint32(ndist-1), 5)
		w.writeBits(uint32(hclen-4), 4)
		for i := 0; i < hclen; i++ {
			w.writeBits(uint32(clLens[clOrder[i]]), 3)
		}
		clCodes := canonicalCodes(clLens)
		for _, s := range rle {
			w.writeCode(clCodes[s.sym], uint(clLens[s.sym]))
			if s.extraBits > 0 {
				w.writeBits(s.extra, s.extraBits)
			}
		}
		writeTokens(w, tokens, litLens, distLens)
	}
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// emitCoded writes a fixed-Huffman block (btype must be 1).
func emitCoded(w *bitWriter, tokens []token, litLens, distLens []uint8, btype uint32, final bool) {
	w.writeBits(boolBit(final), 1)
	w.writeBits(btype, 2)
	writeTokens(w, tokens, litLens, distLens)
}

func writeTokens(w *bitWriter, tokens []token, litLens, distLens []uint8) {
	litCodes := canonicalCodes(litLens)
	distCodes := canonicalCodes(distLens)
	for _, t := range tokens {
		if t.dist == 0 {
			w.writeCode(litCodes[t.lit], uint(litLens[t.lit]))
			continue
		}
		lc := lengthCode(t.length)
		sym := 257 + lc
		w.writeCode(litCodes[sym], uint(litLens[sym]))
		if lengthExtra[lc] > 0 {
			w.writeBits(uint32(t.length-lengthBase[lc]), lengthExtra[lc])
		}
		dc := distCode(t.dist)
		w.writeCode(distCodes[dc], uint(distLens[dc]))
		if distExtra[dc] > 0 {
			w.writeBits(uint32(t.dist-distBase[dc]), distExtra[dc])
		}
	}
	w.writeCode(litCodes[256], uint(litLens[256])) // end of block
}

// emitStored writes data as stored (uncompressed) blocks.
func emitStored(w *bitWriter, data []byte, final bool) {
	for first := true; first || len(data) > 0; first = false {
		n := len(data)
		if n > 65535 {
			n = 65535
		}
		last := final && n == len(data)
		w.writeBits(boolBit(last), 1)
		w.writeBits(0, 2)
		w.alignByte()
		w.out = append(w.out, byte(n), byte(n>>8), byte(^n), byte(^n>>8))
		w.out = append(w.out, data[:n]...)
		data = data[n:]
		if len(data) == 0 {
			break
		}
	}
}
