// Package flatez is a from-scratch implementation of the DEFLATE
// compressed data format (RFC 1951) and the zlib wrapper (RFC 1950),
// re-creating the zlib 1.04 functionality the paper used for HTTP
// "Content-Encoding: deflate" transport compression.
//
// The encoder uses hash-chain LZ77 matching with lazy evaluation and
// dynamic Huffman blocks; the decoder accepts stored, fixed, and dynamic
// blocks. Both ends are cross-validated against the Go standard library's
// compress/flate in the package tests, and support preset dictionaries
// (the paper's "compression dictionaries optimized for HTML" future-work
// item).
package flatez

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports invalid compressed data.
var ErrCorrupt = errors.New("flatez: corrupt deflate stream")

// bitWriter writes bits LSB-first as DEFLATE requires.
type bitWriter struct {
	out  []byte
	acc  uint64
	nacc uint
}

// writeBits appends the low n bits of v.
func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc |= uint64(v) << w.nacc
	w.nacc += n
	for w.nacc >= 8 {
		w.out = append(w.out, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// writeCode appends a Huffman code, which is stored MSB-first within its
// length and must be emitted bit-reversed.
func (w *bitWriter) writeCode(code uint32, length uint) {
	w.writeBits(reverseBits(code, length), length)
}

// alignByte pads with zero bits to the next byte boundary.
func (w *bitWriter) alignByte() {
	if w.nacc > 0 {
		w.out = append(w.out, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
}

// bytes returns the completed output, flushing any partial byte.
func (w *bitWriter) bytes() []byte {
	w.alignByte()
	return w.out
}

// reverseBits reverses the low n bits of v.
func reverseBits(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// bitReader reads bits LSB-first.
type bitReader struct {
	in   []byte
	pos  int
	acc  uint64
	nacc uint
}

func (r *bitReader) readBits(n uint) (uint32, error) {
	for r.nacc < n {
		if r.pos >= len(r.in) {
			return 0, fmt.Errorf("%w: unexpected end of input", ErrCorrupt)
		}
		r.acc |= uint64(r.in[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
	v := uint32(r.acc) & ((1 << n) - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}

// alignByte discards bits up to the next byte boundary.
func (r *bitReader) alignByte() {
	r.acc = 0
	r.nacc = 0
}

// readBytes copies n raw bytes (must be byte-aligned).
func (r *bitReader) readBytes(n int) ([]byte, error) {
	if r.nacc != 0 {
		panic("flatez: readBytes while not byte-aligned")
	}
	if r.pos+n > len(r.in) {
		return nil, fmt.Errorf("%w: truncated stored block", ErrCorrupt)
	}
	b := r.in[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}
