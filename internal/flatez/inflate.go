package flatez

import "fmt"

// Decompress inflates a raw DEFLATE stream.
func Decompress(data []byte) ([]byte, error) {
	return DecompressDict(data, nil)
}

// DecompressDict inflates a stream produced with the given preset
// dictionary.
func DecompressDict(data, dict []byte) ([]byte, error) {
	if len(dict) > windowSize {
		dict = dict[len(dict)-windowSize:]
	}
	out := make([]byte, len(dict), len(dict)+len(data)*3)
	copy(out, dict)
	r := &bitReader{in: data}
	for {
		final, err := r.readBits(1)
		if err != nil {
			return nil, err
		}
		btype, err := r.readBits(2)
		if err != nil {
			return nil, err
		}
		switch btype {
		case 0:
			out, err = inflateStored(r, out)
		case 1:
			out, err = inflateFixed(r, out)
		case 2:
			out, err = inflateDynamic(r, out)
		default:
			err = fmt.Errorf("%w: reserved block type", ErrCorrupt)
		}
		if err != nil {
			return nil, err
		}
		if final == 1 {
			return out[len(dict):], nil
		}
	}
}

func inflateStored(r *bitReader, out []byte) ([]byte, error) {
	r.alignByte()
	hdr, err := r.readBytes(4)
	if err != nil {
		return nil, err
	}
	n := int(hdr[0]) | int(hdr[1])<<8
	nlen := int(hdr[2]) | int(hdr[3])<<8
	if n != ^nlen&0xffff {
		return nil, fmt.Errorf("%w: stored block length check failed", ErrCorrupt)
	}
	body, err := r.readBytes(n)
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

var (
	fixedLitDec  *huffDecoder
	fixedDistDec *huffDecoder
)

func init() {
	var err error
	fixedLitDec, err = newHuffDecoder(fixedLitLens())
	if err != nil {
		panic(err)
	}
	fixedDistDec, err = newHuffDecoder(fixedDistLens())
	if err != nil {
		panic(err)
	}
}

func inflateFixed(r *bitReader, out []byte) ([]byte, error) {
	return inflateCoded(r, out, fixedLitDec, fixedDistDec)
}

func inflateDynamic(r *bitReader, out []byte) ([]byte, error) {
	hlit, err := r.readBits(5)
	if err != nil {
		return nil, err
	}
	hdist, err := r.readBits(5)
	if err != nil {
		return nil, err
	}
	hclen, err := r.readBits(4)
	if err != nil {
		return nil, err
	}
	nlit, ndist, ncl := int(hlit)+257, int(hdist)+1, int(hclen)+4
	if nlit > 286 || ndist > 30 {
		return nil, fmt.Errorf("%w: too many codes (%d lit, %d dist)", ErrCorrupt, nlit, ndist)
	}

	clLens := make([]uint8, 19)
	for i := 0; i < ncl; i++ {
		v, err := r.readBits(3)
		if err != nil {
			return nil, err
		}
		clLens[clOrder[i]] = uint8(v)
	}
	clDec, err := newHuffDecoder(clLens)
	if err != nil {
		return nil, err
	}

	all := make([]uint8, nlit+ndist)
	for i := 0; i < len(all); {
		sym, err := clDec.decode(r)
		if err != nil {
			return nil, err
		}
		switch {
		case sym < 16:
			all[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			n, err := r.readBits(2)
			if err != nil {
				return nil, err
			}
			prev := all[i-1]
			for k := 0; k < int(n)+3; k++ {
				if i >= len(all) {
					return nil, fmt.Errorf("%w: length repeat overflow", ErrCorrupt)
				}
				all[i] = prev
				i++
			}
		case sym == 17:
			n, err := r.readBits(3)
			if err != nil {
				return nil, err
			}
			i += int(n) + 3
		case sym == 18:
			n, err := r.readBits(7)
			if err != nil {
				return nil, err
			}
			i += int(n) + 11
		default:
			return nil, fmt.Errorf("%w: bad code-length symbol %d", ErrCorrupt, sym)
		}
		if i > len(all) {
			return nil, fmt.Errorf("%w: length run overflow", ErrCorrupt)
		}
	}
	if all[256] == 0 {
		return nil, fmt.Errorf("%w: missing end-of-block code", ErrCorrupt)
	}
	litDec, err := newHuffDecoder(all[:nlit])
	if err != nil {
		return nil, err
	}
	distDec, err := newHuffDecoder(all[nlit:])
	if err != nil {
		return nil, err
	}
	return inflateCoded(r, out, litDec, distDec)
}

func inflateCoded(r *bitReader, out []byte, litDec, distDec *huffDecoder) ([]byte, error) {
	for {
		sym, err := litDec.decode(r)
		if err != nil {
			return nil, err
		}
		switch {
		case sym < 256:
			out = append(out, byte(sym))
		case sym == 256:
			return out, nil
		default:
			lc := sym - 257
			if lc >= len(lengthBase) {
				return nil, fmt.Errorf("%w: bad length symbol %d", ErrCorrupt, sym)
			}
			extra, err := r.readBits(lengthExtra[lc])
			if err != nil {
				return nil, err
			}
			length := lengthBase[lc] + int(extra)

			dsym, err := distDec.decode(r)
			if err != nil {
				return nil, err
			}
			if dsym >= len(distBase) {
				return nil, fmt.Errorf("%w: bad distance symbol %d", ErrCorrupt, dsym)
			}
			dextra, err := r.readBits(distExtra[dsym])
			if err != nil {
				return nil, err
			}
			dist := distBase[dsym] + int(dextra)
			if dist > len(out) {
				return nil, fmt.Errorf("%w: distance %d beyond output", ErrCorrupt, dist)
			}
			// Byte-by-byte copy: overlapping references replicate runs.
			start := len(out) - dist
			for k := 0; k < length; k++ {
				out = append(out, out[start+k])
			}
		}
	}
}
