package flatez

import (
	"strings"
	"testing"
)

var benchHTML = []byte(strings.Repeat(
	`<table border=0 cellpadding=0><tr><td><a href="/products/index.html">`+
		`<img src="/images/button.gif" width=90 height=30 border=0 alt="products"></a></td></tr></table>`+
		`<p>the network performance of persistent connections and pipelining</p>`, 150))

func BenchmarkCompressLevel1(b *testing.B) {
	b.SetBytes(int64(len(benchHTML)))
	for i := 0; i < b.N; i++ {
		CompressLevel(benchHTML, 1)
	}
}

func BenchmarkCompressLevel6(b *testing.B) {
	b.SetBytes(int64(len(benchHTML)))
	for i := 0; i < b.N; i++ {
		CompressLevel(benchHTML, 6)
	}
}

func BenchmarkCompressLevel9(b *testing.B) {
	b.SetBytes(int64(len(benchHTML)))
	for i := 0; i < b.N; i++ {
		CompressLevel(benchHTML, 9)
	}
}

func BenchmarkDecompress(b *testing.B) {
	comp := Compress(benchHTML)
	b.SetBytes(int64(len(benchHTML)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdler32(b *testing.B) {
	b.SetBytes(int64(len(benchHTML)))
	for i := 0; i < b.N; i++ {
		Adler32(1, benchHTML)
	}
}
