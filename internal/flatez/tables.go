package flatez

// DEFLATE symbol tables (RFC 1951 §3.2.5).

// Length codes 257..285: base length and extra bits.
var (
	lengthBase = [29]int{
		3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
	}
	lengthExtra = [29]uint{
		0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
	}
)

// Distance codes 0..29: base distance and extra bits.
var (
	distBase = [30]int{
		1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
		257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
		8193, 12289, 16385, 24577,
	}
	distExtra = [30]uint{
		0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
	}
)

// clOrder is the transmission order of code-length code lengths.
var clOrder = [19]int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

// lengthCode maps a match length (3..258) to its length code index 0..28
// (symbol = 257 + index).
func lengthCode(length int) int {
	for i := len(lengthBase) - 1; i >= 0; i-- {
		if length >= lengthBase[i] {
			// Code 28 (base 258) only covers exactly 258; lengths
			// 227..257 belong to code 27.
			if i == 28 && length != 258 {
				return 27
			}
			return i
		}
	}
	panic("flatez: match length out of range")
}

// distCode maps a match distance (1..32768) to its distance code 0..29.
func distCode(dist int) int {
	for i := len(distBase) - 1; i >= 0; i-- {
		if dist >= distBase[i] {
			return i
		}
	}
	panic("flatez: match distance out of range")
}

// fixedLitLens returns the fixed literal/length code lengths.
func fixedLitLens() []uint8 {
	lens := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		lens[i] = 8
	}
	for i := 144; i <= 255; i++ {
		lens[i] = 9
	}
	for i := 256; i <= 279; i++ {
		lens[i] = 7
	}
	for i := 280; i <= 287; i++ {
		lens[i] = 8
	}
	return lens
}

// fixedDistLens returns the fixed distance code lengths.
func fixedDistLens() []uint8 {
	lens := make([]uint8, 30)
	for i := range lens {
		lens[i] = 5
	}
	return lens
}
