package flatez

import (
	"fmt"
	"sort"
)

// maxCodeBits is the DEFLATE limit for literal/length and distance codes.
const maxCodeBits = 15

// maxCLBits is the limit for the code-length alphabet.
const maxCLBits = 7

// buildLengths computes optimal length-limited Huffman code lengths for
// the given symbol frequencies using the package-merge algorithm
// (Larmore–Hirschberg). Symbols with zero frequency get length zero. For
// two or more active symbols the result is a complete prefix code (Kraft
// sum exactly one), which DEFLATE decoders require of the literal/length
// code; a single active symbol gets length 1.
func buildLengths(freq []int64, maxBits int) []uint8 {
	lens := make([]uint8, len(freq))
	var active []int
	for i, f := range freq {
		if f > 0 {
			active = append(active, i)
		}
	}
	switch len(active) {
	case 0:
		return lens
	case 1:
		lens[active[0]] = 1
		return lens
	}
	if 1<<uint(maxBits) < len(active) {
		panic(fmt.Sprintf("flatez: %d symbols cannot fit in %d-bit codes", len(active), maxBits))
	}

	type pmNode struct {
		w           int64
		leaf        int // symbol index, or -1 for a package
		left, right *pmNode
	}
	leaves := make([]*pmNode, len(active))
	for i, s := range active {
		leaves[i] = &pmNode{w: freq[s], leaf: s}
	}
	sort.SliceStable(leaves, func(i, j int) bool {
		if leaves[i].w != leaves[j].w {
			return leaves[i].w < leaves[j].w
		}
		return leaves[i].leaf < leaves[j].leaf
	})

	merge := func(packaged []*pmNode) []*pmNode {
		out := make([]*pmNode, 0, len(leaves)+len(packaged))
		i, j := 0, 0
		for i < len(leaves) || j < len(packaged) {
			// Leaves win ties for determinism.
			if j >= len(packaged) || (i < len(leaves) && leaves[i].w <= packaged[j].w) {
				out = append(out, leaves[i])
				i++
			} else {
				out = append(out, packaged[j])
				j++
			}
		}
		return out
	}

	prev := leaves
	for level := 1; level < maxBits; level++ {
		var packaged []*pmNode
		for i := 0; i+1 < len(prev); i += 2 {
			packaged = append(packaged, &pmNode{
				w: prev[i].w + prev[i+1].w, leaf: -1,
				left: prev[i], right: prev[i+1],
			})
		}
		prev = merge(packaged)
	}

	// The optimal solution takes the first 2n-2 items; each inclusion of a
	// symbol's leaf adds one bit to its code length.
	var count func(n *pmNode)
	count = func(n *pmNode) {
		if n.leaf >= 0 {
			lens[n.leaf]++
			return
		}
		count(n.left)
		count(n.right)
	}
	for _, n := range prev[:2*len(active)-2] {
		count(n)
	}
	return lens
}

// canonicalCodes assigns canonical Huffman codes (RFC 1951 §3.2.2) from
// code lengths. codes[i] is valid only where lens[i] > 0.
func canonicalCodes(lens []uint8) []uint32 {
	maxLen := 0
	blCount := make([]int, maxCodeBits+1)
	for _, l := range lens {
		if int(l) > maxLen {
			maxLen = int(l)
		}
		if l > 0 {
			blCount[l]++
		}
	}
	nextCode := make([]uint32, maxLen+2)
	code := uint32(0)
	for bits := 1; bits <= maxLen; bits++ {
		code = (code + uint32(blCount[bits-1])) << 1
		nextCode[bits] = code
	}
	codes := make([]uint32, len(lens))
	for i, l := range lens {
		if l > 0 {
			codes[i] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes
}

// huffDecoder decodes canonical Huffman codes bit by bit (the approach of
// Mark Adler's puff.c: counts per length plus symbols sorted by code).
type huffDecoder struct {
	count  []int // count[l] = number of codes of length l
	symbol []int // symbols ordered by (length, symbol)
}

// newHuffDecoder builds a decoder from code lengths. It rejects
// over-subscribed codes; incomplete codes are accepted (they only error
// if a missing code is actually encountered), matching DEFLATE's
// allowance for a partial distance code.
func newHuffDecoder(lens []uint8) (*huffDecoder, error) {
	d := &huffDecoder{count: make([]int, maxCodeBits+1)}
	for _, l := range lens {
		if l > 0 {
			d.count[l]++
		}
	}
	left := 1
	for l := 1; l <= maxCodeBits; l++ {
		left <<= 1
		left -= d.count[l]
		if left < 0 {
			return nil, fmt.Errorf("%w: over-subscribed huffman code", ErrCorrupt)
		}
	}
	offs := make([]int, maxCodeBits+2)
	for l := 1; l <= maxCodeBits; l++ {
		offs[l+1] = offs[l] + d.count[l]
	}
	d.symbol = make([]int, offs[maxCodeBits+1])
	for sym, l := range lens {
		if l > 0 {
			d.symbol[offs[l]] = sym
			offs[l]++
		}
	}
	return d, nil
}

// decode reads one symbol from r.
func (d *huffDecoder) decode(r *bitReader) (int, error) {
	code, first, index := 0, 0, 0
	for l := 1; l <= maxCodeBits; l++ {
		b, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := d.count[l]
		if code-first < count {
			return d.symbol[index+code-first], nil
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return 0, fmt.Errorf("%w: invalid huffman code", ErrCorrupt)
}
