package flatez

import (
	"bytes"
	"compress/flate"
	"compress/zlib"
	"hash/adler32"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// stdInflate decompresses with the standard library to cross-validate our
// encoder's bitstream.
func stdInflate(t *testing.T, data []byte) []byte {
	t.Helper()
	r := flate.NewReader(bytes.NewReader(data))
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("standard inflate rejected our stream: %v", err)
	}
	return out
}

// stdDeflate compresses with the standard library to cross-validate our
// decoder.
func stdDeflate(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var testCorpora = map[string][]byte{
	"empty":     {},
	"single":    []byte("x"),
	"short":     []byte("hello world"),
	"runs":      bytes.Repeat([]byte("a"), 10000),
	"alternate": bytes.Repeat([]byte("ab"), 5000),
	"html": []byte(strings.Repeat(
		`<table border=0 cellpadding=0><tr><td><a href="/products/index.html">`+
			`<img src="/images/button.gif" width=90 height=30 border=0 alt="products"></a></td></tr></table>`, 200)),
	"incompressible": func() []byte {
		r := rand.New(rand.NewSource(7))
		b := make([]byte, 8192)
		r.Read(b)
		return b
	}(),
}

func TestRoundTripSelf(t *testing.T) {
	for name, data := range testCorpora {
		for _, level := range []int{1, 3, 6, 9} {
			comp := CompressLevel(data, level)
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("%s/L%d: decompress: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/L%d: round trip mismatch (%d vs %d bytes)", name, level, len(got), len(data))
			}
		}
	}
}

func TestOurStreamReadableByStdlib(t *testing.T) {
	for name, data := range testCorpora {
		for _, level := range []int{1, 6, 9} {
			comp := CompressLevel(data, level)
			got := stdInflate(t, comp)
			if len(got) == 0 && len(data) == 0 {
				continue
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/L%d: stdlib inflate mismatch", name, level)
			}
		}
	}
}

func TestStdlibStreamReadableByUs(t *testing.T) {
	for name, data := range testCorpora {
		for _, level := range []int{1, 6, 9} {
			comp := stdDeflate(t, data, level)
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("%s/L%d: our inflate rejected stdlib stream: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/L%d: mismatch inflating stdlib stream", name, level)
			}
		}
	}
}

func TestCompressionRatioOnHTML(t *testing.T) {
	// The paper: "the Microscape HTML page compressed more than a factor
	// of three" — markup-heavy HTML should get well below 0.4.
	data := testCorpora["html"]
	comp := Compress(data)
	if r := Ratio(data, comp); r > 0.2 {
		t.Fatalf("repetitive HTML ratio = %.3f, want < 0.2", r)
	}
}

func TestIncompressibleDataNotInflated(t *testing.T) {
	data := testCorpora["incompressible"]
	comp := Compress(data)
	if len(comp) > len(data)+64 {
		t.Fatalf("incompressible data grew from %d to %d bytes", len(data), len(comp))
	}
}

func TestHigherLevelCompressesBetter(t *testing.T) {
	data := testCorpora["html"]
	l1 := len(CompressLevel(data, 1))
	l9 := len(CompressLevel(data, 9))
	if l9 > l1 {
		t.Fatalf("level 9 (%d bytes) worse than level 1 (%d bytes)", l9, l1)
	}
}

func TestPresetDictionary(t *testing.T) {
	dict := []byte("GET /images/ HTTP/1.1\r\nHost: microscape\r\nAccept: */*\r\n")
	data := []byte("GET /images/logo.gif HTTP/1.1\r\nHost: microscape\r\nAccept: */*\r\n\r\n")
	plain := Compress(data)
	withDict := CompressDict(data, dict, 6)
	if len(withDict) >= len(plain) {
		t.Fatalf("dictionary did not help: %d vs %d bytes", len(withDict), len(plain))
	}
	got, err := DecompressDict(withDict, dict)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("dictionary round trip mismatch")
	}
	// Wrong dictionary must not silently succeed.
	if wrong, err := DecompressDict(withDict, []byte("completely different dictionary text here")); err == nil && bytes.Equal(wrong, data) {
		t.Fatal("wrong dictionary reproduced the input")
	}
}

func TestStoredBlockRoundTrip(t *testing.T) {
	// Random data at 128KB forces stored blocks and multiple-block logic.
	r := rand.New(rand.NewSource(3))
	data := make([]byte, 130_000)
	r.Read(data)
	comp := Compress(data)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stored round trip mismatch")
	}
	got2 := stdInflate(t, comp)
	if !bytes.Equal(got2, data) {
		t.Fatal("stdlib rejected our stored blocks")
	}
}

func TestCorruptStreams(t *testing.T) {
	cases := map[string][]byte{
		"empty-input":   {},
		"reserved-type": {0x07}, // BFINAL=1 BTYPE=11
		"truncated":     Compress(testCorpora["html"])[:10],
		"bad-stored-len": {
			0x01,       // final, stored
			0x05, 0x00, // LEN=5
			0x05, 0x00, // NLEN wrong
			'a', 'b', 'c', 'd', 'e',
		},
	}
	for name, data := range cases {
		if _, err := Decompress(data); err == nil {
			t.Errorf("%s: corrupt stream accepted", name)
		}
	}
}

func TestAdler32MatchesStdlib(t *testing.T) {
	for name, data := range testCorpora {
		if got, want := Adler32(1, data), adler32.Checksum(data); got != want {
			t.Errorf("%s: adler32 = %08x, want %08x", name, got, want)
		}
	}
	// Incremental equals one-shot.
	data := testCorpora["html"]
	a := Adler32(1, data[:100])
	a = Adler32(a, data[100:])
	if a != adler32.Checksum(data) {
		t.Error("incremental adler32 mismatch")
	}
}

func TestZlibContainerRoundTrip(t *testing.T) {
	data := testCorpora["html"]
	comp := ZlibCompress(data, 6)
	got, err := ZlibDecompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zlib round trip mismatch")
	}
}

func TestZlibReadableByStdlib(t *testing.T) {
	data := testCorpora["html"]
	comp := ZlibCompress(data, 6)
	r, err := zlib.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatalf("stdlib zlib rejected header: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("stdlib zlib read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stdlib zlib mismatch")
	}
}

func TestZlibStdlibReadableByUs(t *testing.T) {
	data := testCorpora["html"]
	var buf bytes.Buffer
	w := zlib.NewWriter(&buf)
	w.Write(data)
	w.Close()
	got, err := ZlibDecompress(buf.Bytes())
	if err != nil {
		t.Fatalf("our zlib rejected stdlib stream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("zlib from stdlib mismatch")
	}
}

func TestZlibChecksumDetectsCorruption(t *testing.T) {
	comp := ZlibCompress([]byte("some reasonable payload to corrupt"), 6)
	comp[len(comp)-1] ^= 0xff
	if _, err := ZlibDecompress(comp); err == nil {
		t.Fatal("corrupted adler32 accepted")
	}
}

func TestLengthCodeBoundaries(t *testing.T) {
	cases := map[int]int{3: 0, 4: 1, 10: 7, 11: 8, 12: 8, 13: 9, 257: 27, 258: 28}
	for length, want := range cases {
		if got := lengthCode(length); got != want {
			t.Errorf("lengthCode(%d) = %d, want %d", length, got, want)
		}
	}
}

func TestDistCodeBoundaries(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 3, 5: 4, 6: 4, 7: 5, 24577: 29, 32768: 29}
	for dist, want := range cases {
		if got := distCode(dist); got != want {
			t.Errorf("distCode(%d) = %d, want %d", dist, got, want)
		}
	}
}

func TestReverseBits(t *testing.T) {
	if got := reverseBits(0b1, 3); got != 0b100 {
		t.Fatalf("reverseBits(001,3) = %03b", got)
	}
	if got := reverseBits(0b1011, 4); got != 0b1101 {
		t.Fatalf("reverseBits(1011,4) = %04b", got)
	}
}

func TestBuildLengthsProperties(t *testing.T) {
	// Kraft sum exactly 1 for >1 symbols; frequent symbols not longer
	// than rare ones.
	freq := []int64{100, 50, 20, 10, 5, 1, 0, 1}
	lens := buildLengths(freq, 15)
	var kraft float64
	for i, l := range lens {
		if freq[i] == 0 && l != 0 {
			t.Fatal("zero-frequency symbol got a code")
		}
		if l > 0 {
			kraft += 1 / float64(int(1)<<l)
		}
	}
	if kraft != 1.0 {
		t.Fatalf("Kraft sum = %v, want exactly 1", kraft)
	}
	if lens[0] > lens[5] {
		t.Fatalf("most frequent symbol got longer code (%d) than rarest (%d)", lens[0], lens[5])
	}
}

func TestBuildLengthsLimitRespected(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; the limiter must cap
	// at maxBits while keeping a complete code.
	freq := make([]int64, 40)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
	}
	lens := buildLengths(freq, 7)
	var kraft float64
	for _, l := range lens {
		if l > 7 {
			t.Fatalf("length %d exceeds limit 7", l)
		}
		if l > 0 {
			kraft += 1 / float64(int(1)<<l)
		}
	}
	if kraft > 1.0 {
		t.Fatalf("over-subscribed code: Kraft %v", kraft)
	}
	if _, err := newHuffDecoder(lens); err != nil {
		t.Fatalf("limited lengths rejected by decoder: %v", err)
	}
}

func TestBuildLengthsDegenerate(t *testing.T) {
	if lens := buildLengths([]int64{0, 0, 0}, 15); lens[0]+lens[1]+lens[2] != 0 {
		t.Fatal("empty alphabet got codes")
	}
	lens := buildLengths([]int64{0, 7, 0}, 15)
	if lens[1] != 1 {
		t.Fatalf("single symbol length = %d, want 1", lens[1])
	}
}

// Property: self round trip and stdlib round trip hold for arbitrary
// binary inputs.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(data []byte, levelSeed uint8) bool {
		level := int(levelSeed)%9 + 1
		comp := CompressLevel(data, level)
		got, err := Decompress(comp)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		// stdlib must also accept it
		r := flate.NewReader(bytes.NewReader(comp))
		std, err := io.ReadAll(r)
		if err != nil {
			return false
		}
		return bytes.Equal(std, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: we can inflate anything stdlib deflates.
func TestPropertyInflateStdlib(t *testing.T) {
	f := func(data []byte) bool {
		var buf bytes.Buffer
		w, _ := flate.NewWriter(&buf, 6)
		w.Write(data)
		w.Close()
		got, err := Decompress(buf.Bytes())
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioEdge(t *testing.T) {
	if Ratio(nil, []byte("x")) != 1 {
		t.Fatal("Ratio of empty original should be 1")
	}
	if Ratio([]byte("abcd"), []byte("ab")) != 0.5 {
		t.Fatal("Ratio arithmetic wrong")
	}
}

func TestRLEEncodeBoundaries(t *testing.T) {
	// Decode an RLE stream by expanding its symbols manually.
	expand := func(syms []clSym) []uint8 {
		var out []uint8
		for _, s := range syms {
			switch {
			case s.sym < 16:
				out = append(out, uint8(s.sym))
			case s.sym == 16:
				prev := out[len(out)-1]
				for i := 0; i < int(s.extra)+3; i++ {
					out = append(out, prev)
				}
			case s.sym == 17:
				for i := 0; i < int(s.extra)+3; i++ {
					out = append(out, 0)
				}
			case s.sym == 18:
				for i := 0; i < int(s.extra)+11; i++ {
					out = append(out, 0)
				}
			}
		}
		return out
	}
	cases := [][]uint8{
		{},
		{5},
		{0, 0},                       // short zero run: literals
		{0, 0, 0},                    // exactly 3 zeros: code 17
		make([]uint8, 10),            // 10 zeros: code 17 max
		make([]uint8, 11),            // 11 zeros: code 18 min
		make([]uint8, 138),           // code 18 max
		make([]uint8, 139),           // 18 + literal run
		make([]uint8, 300),           // two 18s + remainder
		{7, 7, 7, 7},                 // value + repeat 3 (code 16 min)
		{7, 7, 7, 7, 7, 7, 7},        // value + repeat 6 (code 16 max)
		{7, 7, 7, 7, 7, 7, 7, 7},     // value + 16 + leftover
		{1, 2, 2, 2, 2, 0, 0, 0, 3},  // mixed
		{15, 15, 15, 15, 15, 15, 15}, // max length value runs
	}
	for i, c := range cases {
		syms := rleEncode(c)
		got := expand(syms)
		if len(got) != len(c) {
			t.Errorf("case %d: expanded %d values, want %d", i, len(got), len(c))
			continue
		}
		for j := range c {
			if got[j] != c[j] {
				t.Errorf("case %d: value %d = %d, want %d", i, j, got[j], c[j])
				break
			}
		}
		// No symbol may exceed the code-length alphabet.
		for _, s := range syms {
			if s.sym > 18 {
				t.Errorf("case %d: symbol %d out of range", i, s.sym)
			}
		}
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	lens := []uint8{3, 3, 3, 3, 3, 2, 4, 4}
	codes := canonicalCodes(lens)
	// Kraft check first.
	sum := 0.0
	for _, l := range lens {
		sum += 1 / float64(int(1)<<l)
	}
	if sum != 1.0 {
		t.Fatalf("test vector not complete: %v", sum)
	}
	// No code may be a prefix of another.
	for i := range lens {
		for j := range lens {
			if i == j {
				continue
			}
			li, lj := uint(lens[i]), uint(lens[j])
			if li > lj {
				continue
			}
			if codes[j]>>(lj-li) == codes[i] {
				t.Fatalf("code %d (%0*b) is a prefix of code %d (%0*b)",
					i, li, codes[i], j, lj, codes[j])
			}
		}
	}
	// RFC 1951's worked example: lengths (3,3,3,3,3,2,4,4) produce
	// codes 010..111, 00, 1110, 1111.
	want := []uint32{0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("code %d = %b, want %b", i, codes[i], want[i])
		}
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w bitWriter
	values := []struct {
		v uint32
		n uint
	}{{1, 1}, {0, 1}, {5, 3}, {255, 8}, {1023, 10}, {0x7fff, 15}, {1, 1}}
	for _, x := range values {
		w.writeBits(x.v, x.n)
	}
	r := bitReader{in: w.bytes()}
	for i, x := range values {
		got, err := r.readBits(x.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != x.v {
			t.Fatalf("value %d = %d, want %d", i, got, x.v)
		}
	}
}

func TestLevelParamsMonotonicEffort(t *testing.T) {
	prev := 0
	for _, level := range []int{1, 3, 6, 9} {
		p := levelParams(level)
		if p.maxChain < prev {
			t.Fatalf("maxChain not monotone at level %d", level)
		}
		prev = p.maxChain
	}
}
