package flatez

import "fmt"

// Adler32 computes the RFC 1950 checksum of data, continuing from a prior
// value (pass 1 to start).
func Adler32(prior uint32, data []byte) uint32 {
	const mod = 65521
	a := prior & 0xffff
	b := prior >> 16
	for i := 0; i < len(data); {
		// Process in spans small enough to defer the modulo.
		end := i + 5552
		if end > len(data) {
			end = len(data)
		}
		for ; i < end; i++ {
			a += uint32(data[i])
			b += a
		}
		a %= mod
		b %= mod
	}
	return b<<16 | a
}

// ZlibCompress wraps a deflate stream in the RFC 1950 container.
func ZlibCompress(data []byte, level int) []byte {
	return ZlibCompressDict(data, nil, level)
}

// ZlibCompressDict wraps a deflate stream compressed against a preset
// dictionary, setting the FDICT flag and DICTID per RFC 1950 §2.2.
func ZlibCompressDict(data, dict []byte, level int) []byte {
	body := CompressDict(data, dict, level)
	out := make([]byte, 0, len(body)+10)
	cmf := byte(0x78) // deflate, 32K window
	var flevel byte
	switch {
	case level <= 1:
		flevel = 0
	case level <= 5:
		flevel = 1
	case level <= 6:
		flevel = 2
	default:
		flevel = 3
	}
	flg := flevel << 6
	if dict != nil {
		flg |= 0x20 // FDICT
	}
	rem := (uint16(cmf)<<8 | uint16(flg)) % 31
	if rem != 0 {
		flg += byte(31 - rem)
	}
	out = append(out, cmf, flg)
	if dict != nil {
		dictID := Adler32(1, dict)
		out = append(out, byte(dictID>>24), byte(dictID>>16), byte(dictID>>8), byte(dictID))
	}
	out = append(out, body...)
	sum := Adler32(1, data)
	out = append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	return out
}

// ZlibDecompress unwraps and inflates an RFC 1950 stream, verifying the
// Adler-32 checksum.
func ZlibDecompress(data []byte) ([]byte, error) {
	return ZlibDecompressDict(data, nil)
}

// ZlibDecompressDict unwraps a stream that may have been compressed with
// a preset dictionary; dict must match the DICTID recorded in the header.
func ZlibDecompressDict(data, dict []byte) ([]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("%w: zlib stream too short", ErrCorrupt)
	}
	cmf, flg := data[0], data[1]
	if cmf&0x0f != 8 {
		return nil, fmt.Errorf("%w: not a deflate zlib stream", ErrCorrupt)
	}
	if (uint16(cmf)<<8|uint16(flg))%31 != 0 {
		return nil, fmt.Errorf("%w: zlib header check failed", ErrCorrupt)
	}
	body := data[2 : len(data)-4]
	if flg&0x20 != 0 {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: missing DICTID", ErrCorrupt)
		}
		if dict == nil {
			return nil, fmt.Errorf("%w: stream requires a preset dictionary", ErrCorrupt)
		}
		id := uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3])
		if want := Adler32(1, dict); id != want {
			return nil, fmt.Errorf("%w: dictionary id %08x, want %08x", ErrCorrupt, id, want)
		}
		body = body[4:]
	} else {
		dict = nil
	}
	out, err := DecompressDict(body, dict)
	if err != nil {
		return nil, err
	}
	tail := data[len(data)-4:]
	want := uint32(tail[0])<<24 | uint32(tail[1])<<16 | uint32(tail[2])<<8 | uint32(tail[3])
	if got := Adler32(1, out); got != want {
		return nil, fmt.Errorf("%w: adler32 mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return out, nil
}

// Ratio returns compressed size over original size (smaller is better),
// the measure the paper quotes (e.g. ~0.27 for lower-case HTML tags).
func Ratio(original, compressed []byte) float64 {
	if len(original) == 0 {
		return 1
	}
	return float64(len(compressed)) / float64(len(original))
}
