// Package exp orchestrates experiment sweeps. It provides the three
// pieces the paper's measurement methodology needs at scale: a
// declarative registry of named experiments (registry.go), a
// deterministic worker pool that fans independent simulation runs out
// across goroutines (pool.go), and a structured per-run metrics record
// emitted as JSON or CSV alongside the text tables (this file).
//
// The package sits below internal/core: core fills Metrics records and
// drives the pool, while experiment registration and rendering live in
// internal/experiments, above both.
package exp

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Metrics is the structured record of one scenario execution — the
// quantities a tcpdump-plus-accounting harness would extract from a
// single run. Every field is filled by core.Run when the run is executed
// with core.WithMetrics.
type Metrics struct {
	// Experiment names the registry entry the run belongs to ("" for
	// direct core.Run calls).
	Experiment string `json:"experiment,omitempty"`
	// Scenario is the scenario's display string
	// (server/client/env/workload).
	Scenario string `json:"scenario"`
	// Seed is the effective seed of this run; Run is the repetition
	// index within its sweep cell.
	Seed uint64 `json:"seed"`
	Run  int    `json:"run"`

	// Packets counts segments in both directions, split into the
	// client→server and server→client components.
	Packets    int `json:"packets"`
	PacketsC2S int `json:"packets_c2s"`
	PacketsS2C int `json:"packets_s2c"`

	// PayloadBytes is TCP payload; WireBytes adds the 40-byte TCP/IP
	// header per packet; LinkWireBytes is what the link actually
	// serialized (after V.42bis modem compression, with framing).
	PayloadBytes  int64 `json:"payload_bytes"`
	WireBytes     int64 `json:"wire_bytes"`
	LinkWireBytes int64 `json:"link_wire_bytes"`

	// OverheadPct is the paper's %ov metric.
	OverheadPct float64 `json:"overhead_pct"`
	// ElapsedSeconds is first packet to last packet, like the paper's
	// tcpdump-based timings.
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	// Retransmissions counts segments sent more than once;
	// RTOTimeouts counts retransmission-timer expirations; Drops counts
	// packets discarded by the link loss model.
	Retransmissions int `json:"retransmissions"`
	RTOTimeouts     int `json:"rto_timeouts"`
	Drops           int `json:"drops"`

	// Dials is the number of outbound connections opened; SocketsUsed
	// the number the fetch consumed; MaxOpenConns the simultaneous-
	// connection high-water mark.
	Dials        int `json:"dials"`
	SocketsUsed  int `json:"sockets_used"`
	MaxOpenConns int `json:"max_open_conns"`

	// ClientCPUSeconds and ServerCPUSeconds are total simulated CPU
	// work consumed by each endpoint (sim.CPU.TotalWork).
	ClientCPUSeconds float64 `json:"client_cpu_seconds"`
	ServerCPUSeconds float64 `json:"server_cpu_seconds"`

	Responses200 int `json:"responses_200"`
	Responses304 int `json:"responses_304"`
	Responses206 int `json:"responses_206"`
	Errors       int `json:"errors"`
	Retried      int `json:"retried"`

	// Fault-injection and recovery accounting (all zero on fault-free
	// runs): client watchdog timeouts, requests that recovered after a
	// retry vs were dropped permanently, payload bytes delivered and then
	// re-fetched, summed failure→first-recovery intervals, protocol
	// fallbacks taken, and server-side faults fired.
	Timeouts          int     `json:"timeouts,omitempty"`
	RequestsRecovered int     `json:"requests_recovered,omitempty"`
	RequestsFailed    int     `json:"requests_failed,omitempty"`
	WastedBytes       int64   `json:"wasted_bytes,omitempty"`
	RecoverySeconds   float64 `json:"recovery_seconds,omitempty"`
	Fallbacks         int     `json:"fallbacks,omitempty"`
	FaultsInjected    int     `json:"faults_injected,omitempty"`

	// Multiplexed-protocol accounting (all zero outside the mux, mux-push
	// and burst client modes): client-opened streams, server push
	// promises made/claimed, pushed bytes the client never wanted,
	// HPACK-style header compression savings, and flow-control window
	// exhaustions on either endpoint.
	StreamsOpened     int   `json:"streams_opened,omitempty"`
	PushPromised      int   `json:"push_promised,omitempty"`
	PushUsed          int   `json:"push_used,omitempty"`
	PushWastedBytes   int64 `json:"push_wasted_bytes,omitempty"`
	HeaderBytesSaved  int64 `json:"header_bytes_saved,omitempty"`
	FlowControlStalls int   `json:"flow_control_stalls,omitempty"`

	// Mux fault-recovery accounting (all zero outside faulted framed
	// runs): streams torn down by RST_STREAM for error recovery, GOAWAY
	// session-close announcements on the connection, and watchdog
	// expiries proven to be flow-control deadlocks.
	StreamsReset      int `json:"streams_reset,omitempty"`
	Goaways           int `json:"goaways,omitempty"`
	DeadlocksDetected int `json:"deadlocks_detected,omitempty"`

	// TimelineEvents and TimelineSpans count the observability bus's
	// recorded events and request spans; both are zero when the run
	// executed without core.WithTimeline.
	TimelineEvents int `json:"timeline_events,omitempty"`
	TimelineSpans  int `json:"timeline_spans,omitempty"`

	// Causal delay attribution (all zero unless the run executed with
	// core.WithBlame): each request's elapsed time decomposed into
	// exclusive categories, summed over requests, in milliseconds. The
	// categories partition each request window, so their sum equals the
	// summed request elapsed time exactly. CriticalPathMs is the length
	// of the page-load dependency chain (root document → last-finishing
	// object through binding constraints); lower is better.
	BlameConnectMs   float64 `json:"blame_connect_ms,omitempty"`
	BlameRTOMs       float64 `json:"blame_rto_ms,omitempty"`
	BlameNagleMs     float64 `json:"blame_nagle_ms,omitempty"`
	BlameFlowMs      float64 `json:"blame_flow_ms,omitempty"`
	BlameSlowStartMs float64 `json:"blame_slowstart_ms,omitempty"`
	BlameServerMs    float64 `json:"blame_server_ms,omitempty"`
	BlameHOLMs       float64 `json:"blame_hol_ms,omitempty"`
	BlameWireMs      float64 `json:"blame_wire_ms,omitempty"`
	CriticalPathMs   float64 `json:"critical_path_ms,omitempty"`

	// SimEvents is the number of discrete events the simulation engine
	// fired during the run — a deterministic measure of engine work per
	// cell. SimEventsPerSec divides it by the run's wall-clock time; it
	// varies with host load, so it appears in the JSON records but not
	// in the deterministic CSV.
	SimEvents       uint64  `json:"sim_events"`
	SimEventsPerSec float64 `json:"sim_events_per_sec,omitempty"`

	// Dist carries the run's optional distribution metrics — per-request
	// latency quantiles in milliseconds (lat_queue_ms_p50, ...,
	// lat_total_ms_max), derived from the request-lifecycle spans — and
	// is nil unless the run executed with core.WithStats. Keys are
	// stable; CSV emission appends them after the fixed columns in
	// sorted order, with empty cells for records that lack a key.
	Dist map[string]float64 `json:"dist,omitempty"`

	// Cache and origin-side accounting for runs through the shared
	// caching proxy tier (all zero on direct client↔origin runs). On a
	// proxy run the Packets/Bytes fields above describe the client-side
	// (last-mile) link only; OriginPackets/OriginBytes describe the
	// proxy↔origin link.
	CacheHits          int     `json:"cache_hits,omitempty"`
	CacheMisses        int     `json:"cache_misses,omitempty"`
	CacheRevalidations int     `json:"cache_revalidations,omitempty"`
	CacheHitRatio      float64 `json:"cache_hit_ratio,omitempty"`
	CacheBytesSaved    int64   `json:"cache_bytes_saved,omitempty"`
	UpstreamRequests   int     `json:"upstream_requests,omitempty"`
	OriginPackets      int     `json:"origin_packets,omitempty"`
	OriginBytes        int64   `json:"origin_bytes,omitempty"`
}

// csvHeader lists the CSV columns, in Metrics field order.
var csvHeader = []string{
	"experiment", "scenario", "seed", "run",
	"packets", "packets_c2s", "packets_s2c",
	"payload_bytes", "wire_bytes", "link_wire_bytes",
	"overhead_pct", "elapsed_seconds",
	"retransmissions", "rto_timeouts", "drops",
	"dials", "sockets_used", "max_open_conns",
	"client_cpu_seconds", "server_cpu_seconds",
	"responses_200", "responses_304", "responses_206",
	"errors", "retried",
	"timeouts", "requests_recovered", "requests_failed",
	"wasted_bytes", "recovery_seconds", "fallbacks", "faults_injected",
	"streams_opened", "push_promised", "push_used",
	"push_wasted_bytes", "header_bytes_saved", "flow_control_stalls",
	"streams_reset", "goaways", "deadlocks_detected",
	"timeline_events", "timeline_spans",
	"blame_connect_ms", "blame_rto_ms", "blame_nagle_ms",
	"blame_flow_ms", "blame_slowstart_ms", "blame_server_ms",
	"blame_hol_ms", "blame_wire_ms", "critical_path_ms",
	"sim_events",
	"cache_hits", "cache_misses", "cache_revalidations",
	"cache_hit_ratio", "cache_bytes_saved", "upstream_requests",
	"origin_packets", "origin_bytes",
}

// csvRow renders the record in csvHeader order.
func (m Metrics) csvRow() []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	return []string{
		m.Experiment, m.Scenario,
		strconv.FormatUint(m.Seed, 10), strconv.Itoa(m.Run),
		strconv.Itoa(m.Packets), strconv.Itoa(m.PacketsC2S), strconv.Itoa(m.PacketsS2C),
		strconv.FormatInt(m.PayloadBytes, 10), strconv.FormatInt(m.WireBytes, 10), strconv.FormatInt(m.LinkWireBytes, 10),
		f(m.OverheadPct), f(m.ElapsedSeconds),
		strconv.Itoa(m.Retransmissions), strconv.Itoa(m.RTOTimeouts), strconv.Itoa(m.Drops),
		strconv.Itoa(m.Dials), strconv.Itoa(m.SocketsUsed), strconv.Itoa(m.MaxOpenConns),
		f(m.ClientCPUSeconds), f(m.ServerCPUSeconds),
		strconv.Itoa(m.Responses200), strconv.Itoa(m.Responses304), strconv.Itoa(m.Responses206),
		strconv.Itoa(m.Errors), strconv.Itoa(m.Retried),
		strconv.Itoa(m.Timeouts), strconv.Itoa(m.RequestsRecovered), strconv.Itoa(m.RequestsFailed),
		strconv.FormatInt(m.WastedBytes, 10), f(m.RecoverySeconds), strconv.Itoa(m.Fallbacks), strconv.Itoa(m.FaultsInjected),
		strconv.Itoa(m.StreamsOpened), strconv.Itoa(m.PushPromised), strconv.Itoa(m.PushUsed),
		strconv.FormatInt(m.PushWastedBytes, 10), strconv.FormatInt(m.HeaderBytesSaved, 10), strconv.Itoa(m.FlowControlStalls),
		strconv.Itoa(m.StreamsReset), strconv.Itoa(m.Goaways), strconv.Itoa(m.DeadlocksDetected),
		strconv.Itoa(m.TimelineEvents), strconv.Itoa(m.TimelineSpans),
		f(m.BlameConnectMs), f(m.BlameRTOMs), f(m.BlameNagleMs),
		f(m.BlameFlowMs), f(m.BlameSlowStartMs), f(m.BlameServerMs),
		f(m.BlameHOLMs), f(m.BlameWireMs), f(m.CriticalPathMs),
		strconv.FormatUint(m.SimEvents, 10),
		strconv.Itoa(m.CacheHits), strconv.Itoa(m.CacheMisses), strconv.Itoa(m.CacheRevalidations),
		f(m.CacheHitRatio), strconv.FormatInt(m.CacheBytesSaved, 10), strconv.Itoa(m.UpstreamRequests),
		strconv.Itoa(m.OriginPackets), strconv.FormatInt(m.OriginBytes, 10),
	}
}

// Collector accumulates per-run metrics from concurrent workers. The
// zero value is ready to use; Add is safe for concurrent use, and
// Records returns a deterministically ordered snapshot so that sweep
// output is byte-identical at any parallelism level.
type Collector struct {
	mu   sync.Mutex
	recs []Metrics
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends one record.
func (c *Collector) Add(m Metrics) {
	c.mu.Lock()
	c.recs = append(c.recs, m)
	c.mu.Unlock()
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Records returns a sorted copy of the collected records, ordered by
// (experiment, scenario, seed, run) — an order independent of worker
// scheduling.
func (c *Collector) Records() []Metrics {
	c.mu.Lock()
	out := make([]Metrics, len(c.recs))
	copy(out, c.recs)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Run < b.Run
	})
	return out
}

// distColumns returns the sorted union of Dist keys across the records
// — the optional CSV columns, in their one deterministic order.
func distColumns(recs []Metrics) []string {
	seen := map[string]bool{}
	var cols []string
	for _, m := range recs {
		for k := range m.Dist {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	return cols
}

// WriteCSV writes the collected records as CSV with a header row: the
// fixed columns in Metrics field order, then any optional distribution
// columns present in the population, sorted by name. Records lacking an
// optional key emit an empty cell, so the header — and the whole file —
// is a pure function of the collected records, independent of worker
// scheduling or map iteration order.
func (c *Collector) WriteCSV(w io.Writer) error {
	recs := c.Records()
	extras := distColumns(recs)
	cw := csv.NewWriter(w)
	header := append(append(make([]string, 0, len(csvHeader)+len(extras)), csvHeader...), extras...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range recs {
		row := m.csvRow()
		for _, k := range extras {
			if v, ok := m.Dist[k]; ok {
				row = append(row, strconv.FormatFloat(v, 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
