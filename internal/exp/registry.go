package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/webgen"
)

// Session carries the sweep-wide settings every experiment generator
// receives: the site under test, the averaging depth, the parallelism
// budget, and the collector that gathers per-run metrics across the
// whole invocation.
type Session struct {
	// Site is the synthesized web site all scenarios fetch.
	Site *webgen.Site
	// Runs is the number of averaging repetitions per cell (the paper
	// used five); Seeds widens each cell with that many independent
	// seed families, multiplying the averaged population.
	Runs  int
	Seeds int
	// Parallel is the worker-pool width for independent runs.
	Parallel int
	// Collector, when non-nil, receives one Metrics record per
	// simulation run.
	Collector *Collector
	// Stats enables per-request latency collection on every run of the
	// sweep (core.WithStats): collected records gain their Dist
	// quantiles, at the cost of recording request-lifecycle spans.
	// Measurements are unperturbed either way.
	Stats bool
}

// Experiment is one registered, regenerable experiment: a declarative
// replacement for a hardcoded step table. Generate produces the
// experiment's data (running scenarios through the session's pool);
// Render prints it as the paper-style text table.
type Experiment struct {
	Name string
	// Title is a one-line description for listings.
	Title string
	// Skip excludes the experiment from Names() — it runs only when
	// requested explicitly (used for extra sweeps that are not part of
	// the paper's table set).
	Skip bool

	Generate func(s *Session) (any, error)
	Render   func(w io.Writer, s *Session, data any) error
}

var registry = struct {
	sync.Mutex
	byName map[string]Experiment
	order  []string
}{byName: make(map[string]Experiment)}

// Register adds an experiment to the registry. It panics on an empty
// name, a nil Generate, or a duplicate registration — all programming
// errors in the registering package's init.
func Register(e Experiment) {
	if e.Name == "" {
		panic("exp: Register with empty name")
	}
	if e.Generate == nil {
		panic("exp: Register " + e.Name + " with nil Generate")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[e.Name]; dup {
		panic("exp: duplicate experiment " + e.Name)
	}
	registry.byName[e.Name] = e
	registry.order = append(registry.order, e.Name)
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	registry.Lock()
	defer registry.Unlock()
	e, ok := registry.byName[name]
	return e, ok
}

// Names returns the non-skipped experiment names in registration order —
// the default "run everything" sequence.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	var out []string
	for _, name := range registry.order {
		if !registry.byName[name].Skip {
			out = append(out, name)
		}
	}
	return out
}

// AllNames returns every registered name, sorted, for error messages.
func AllNames() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	sort.Strings(out)
	return out
}

// Generate runs the named experiment under the session.
func (s *Session) Generate(name string) (any, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q", name)
	}
	return e.Generate(s)
}
