package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestCSVHeaderPinned pins the CSV header: the fixed columns in Metrics
// field order, then the optional distribution columns sorted by name.
// Records lacking a key emit an empty cell.
func TestCSVHeaderPinned(t *testing.T) {
	c := NewCollector()
	c.Add(Metrics{Scenario: "s1", Seed: 1, ElapsedSeconds: 2})
	c.Add(Metrics{Scenario: "s2", Seed: 2, Dist: map[string]float64{
		// Inserted in scrambled order; the header must come out sorted.
		"lat_ttfb_ms_p50":  3,
		"lat_queue_ms_p50": 1,
		"lat_total_ms_p99": 9,
		"lat_total_ms_p50": 2,
	}})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), buf.String())
	}
	wantHeader := "experiment,scenario,seed,run," +
		"packets,packets_c2s,packets_s2c," +
		"payload_bytes,wire_bytes,link_wire_bytes," +
		"overhead_pct,elapsed_seconds," +
		"retransmissions,rto_timeouts,drops," +
		"dials,sockets_used,max_open_conns," +
		"client_cpu_seconds,server_cpu_seconds," +
		"responses_200,responses_304,responses_206," +
		"errors,retried," +
		"timeouts,requests_recovered,requests_failed," +
		"wasted_bytes,recovery_seconds,fallbacks,faults_injected," +
		"streams_opened,push_promised,push_used," +
		"push_wasted_bytes,header_bytes_saved,flow_control_stalls," +
		"streams_reset,goaways,deadlocks_detected," +
		"timeline_events,timeline_spans," +
		"blame_connect_ms,blame_rto_ms,blame_nagle_ms," +
		"blame_flow_ms,blame_slowstart_ms,blame_server_ms," +
		"blame_hol_ms,blame_wire_ms,critical_path_ms," +
		"sim_events," +
		"cache_hits,cache_misses,cache_revalidations," +
		"cache_hit_ratio,cache_bytes_saved,upstream_requests," +
		"origin_packets,origin_bytes," +
		"lat_queue_ms_p50,lat_total_ms_p50,lat_total_ms_p99,lat_ttfb_ms_p50"
	if lines[0] != wantHeader {
		t.Fatalf("header:\n got %s\nwant %s", lines[0], wantHeader)
	}
	// The dist-less record renders the optional columns as empty cells.
	if !strings.HasSuffix(lines[1], ",,,,") {
		t.Fatalf("record without Dist lacks empty optional cells: %s", lines[1])
	}
	if !strings.HasSuffix(lines[2], "1.000000,2.000000,9.000000,3.000000") {
		t.Fatalf("optional cells not in sorted-key order: %s", lines[2])
	}
}

// TestCSVWithoutDistUnchanged: with no distribution metrics anywhere,
// the CSV is exactly the legacy fixed-column file.
func TestCSVWithoutDistUnchanged(t *testing.T) {
	c := NewCollector()
	c.Add(Metrics{Scenario: "s", Seed: 3})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if got, want := len(strings.Split(header, ",")), len(csvHeader); got != want {
		t.Fatalf("dist-free CSV has %d columns, want %d", got, want)
	}
	if strings.Contains(header, "lat_") {
		t.Fatalf("dist-free CSV grew latency columns: %s", header)
	}
}

// TestCSVDeterministicAcrossInsertOrder: two collectors fed the same
// records in different orders emit byte-identical CSV.
func TestCSVDeterministicAcrossInsertOrder(t *testing.T) {
	recs := []Metrics{
		{Experiment: "e", Scenario: "a", Seed: 1, Dist: map[string]float64{"lat_total_ms_p50": 5}},
		{Experiment: "e", Scenario: "a", Seed: 2},
		{Experiment: "e", Scenario: "b", Seed: 1, Dist: map[string]float64{"lat_queue_ms_p90": 7}},
	}
	fwd, rev := NewCollector(), NewCollector()
	for i := range recs {
		fwd.Add(recs[i])
		rev.Add(recs[len(recs)-1-i])
	}
	var a, b bytes.Buffer
	if err := fwd.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := rev.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("CSV depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestCells aggregates records into per-cell summaries.
func TestCells(t *testing.T) {
	c := NewCollector()
	for i, sec := range []float64{1.0, 1.2, 1.1} {
		c.Add(Metrics{Experiment: "e", Scenario: "a", Seed: uint64(i), Run: i,
			Packets: 100 + i, ElapsedSeconds: sec,
			Dist: map[string]float64{"lat_total_ms_p50": 10 * float64(i+1)}})
	}
	c.Add(Metrics{Experiment: "e", Scenario: "b", Seed: 9, ElapsedSeconds: 5, Packets: 7})
	cells := c.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	a := cells[0]
	if a.Scenario != "a" || a.N != 3 {
		t.Fatalf("first cell %+v", a)
	}
	if a.Elapsed.N != 3 || a.Elapsed.Mean < 1.09 || a.Elapsed.Mean > 1.11 {
		t.Fatalf("elapsed summary %+v", a.Elapsed)
	}
	if a.Elapsed.CI95 <= 0 {
		t.Fatalf("no CI on replicated cell: %+v", a.Elapsed)
	}
	if got := a.Dist["lat_total_ms_p50"]; got != 20 {
		t.Fatalf("dist mean %g, want 20", got)
	}
	b := cells[1]
	if b.Scenario != "b" || b.N != 1 || b.Elapsed.CI95 != 0 || b.Dist != nil {
		t.Fatalf("second cell %+v", b)
	}
}
