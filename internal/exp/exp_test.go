package exp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllJobs(t *testing.T) {
	for _, parallel := range []int{0, 1, 4, 64} {
		var count atomic.Int64
		done := make([]bool, 100)
		err := ForEach(parallel, len(done), func(i int) error {
			count.Add(1)
			done[i] = true
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if count.Load() != 100 {
			t.Fatalf("parallel=%d: ran %d jobs, want 100", parallel, count.Load())
		}
		for i, d := range done {
			if !d {
				t.Fatalf("parallel=%d: job %d skipped", parallel, i)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCancelsOnError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	err := ForEach(4, 10_000, func(i int) error {
		started.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop well short of draining the whole job list.
	if n := started.Load(); n >= 10_000 {
		t.Fatalf("pool ran all %d jobs despite the error", n)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Every job fails; the reported error must deterministically be job
	// 0's regardless of scheduling.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(8, 50, func(i int) error {
			return fmt.Errorf("job %d", i)
		})
		if err == nil || err.Error() != "job 0" {
			t.Fatalf("trial %d: err = %v, want job 0", trial, err)
		}
	}
}

func TestForEachSerialErrorShortCircuits(t *testing.T) {
	var ran int
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("ran = %d err = %v, want 4 jobs and an error", ran, err)
	}
}

func TestCollectorDeterministicOrder(t *testing.T) {
	mk := func(perm []int) *Collector {
		c := NewCollector()
		for _, i := range perm {
			c.Add(Metrics{
				Experiment: fmt.Sprintf("e%d", i%3),
				Scenario:   fmt.Sprintf("s%d", i%5),
				Seed:       uint64(i % 7),
				Run:        i,
				Packets:    i,
			})
		}
		return c
	}
	base := make([]int, 60)
	for i := range base {
		base[i] = i
	}
	perm := append([]int(nil), base...)
	rand.New(rand.NewSource(1)).Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	var a, b bytes.Buffer
	if err := mk(base).WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk(perm).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV output depends on insertion order")
	}
	if got := mk(base).Len(); got != 60 {
		t.Fatalf("Len = %d, want 60", got)
	}
}

func TestCollectorCSVShape(t *testing.T) {
	c := NewCollector()
	c.Add(Metrics{Experiment: "4", Scenario: "Jigsaw/HTTP/1.0/LAN/First Time Retrieval", Seed: 9, Packets: 530, OverheadPct: 9.8})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,scenario,seed,run,packets,") {
		t.Fatalf("header = %q", lines[0])
	}
	wantCols := len(csvHeader)
	if got := len(strings.Split(lines[1], ",")); got != wantCols {
		t.Fatalf("row has %d columns, want %d", got, wantCols)
	}
	if !strings.Contains(lines[1], "530") || !strings.Contains(lines[1], "9.800000") {
		t.Fatalf("row missing values: %q", lines[1])
	}
}

func TestRegistry(t *testing.T) {
	// The registry is process-global; use uniquely named test entries.
	gen := func(s *Session) (any, error) { return 42, nil }
	Register(Experiment{Name: "test-a", Title: "a", Generate: gen})
	Register(Experiment{Name: "test-b", Title: "b", Generate: gen, Skip: true})

	if _, ok := Lookup("test-a"); !ok {
		t.Fatal("test-a not registered")
	}
	names := Names()
	hasA, hasB := false, false
	for _, n := range names {
		if n == "test-a" {
			hasA = true
		}
		if n == "test-b" {
			hasB = true
		}
	}
	if !hasA {
		t.Fatal("Names() missing test-a")
	}
	if hasB {
		t.Fatal("Names() includes skipped test-b")
	}
	all := AllNames()
	found := false
	for _, n := range all {
		if n == "test-b" {
			found = true
		}
	}
	if !found {
		t.Fatal("AllNames() missing skipped test-b")
	}

	s := &Session{}
	v, err := s.Generate("test-a")
	if err != nil || v != 42 {
		t.Fatalf("Generate = %v, %v", v, err)
	}
	if _, err := s.Generate("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}

	for _, bad := range []Experiment{
		{Name: "", Generate: gen},
		{Name: "test-nilgen"},
		{Name: "test-a", Generate: gen}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", bad.Name)
				}
			}()
			Register(bad)
		}()
	}
}
