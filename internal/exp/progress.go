package exp

import "sync/atomic"

// ProgressEvent is one unit of sweep progress: a single simulation run
// finishing inside a cell, with CellDone set when that run was the
// cell's last. The sweep driver (internal/core) publishes these from
// pool workers; a process-wide hook (SetProgress) consumes them. The
// hook lives here rather than in internal/telemetry so that core —
// which already imports exp — needs no new dependency edge, and exp
// never imports telemetry (telemetry imports exp for this type).
type ProgressEvent struct {
	// Experiment is the registered experiment name ("" when the run is
	// not part of a registered experiment, e.g. a bare -scenario run).
	Experiment string
	// Scenario labels the cell (the scenario's display string).
	Scenario string
	// Seed is the run's RNG seed; Run its replicate index in the cell.
	Seed uint64
	Run  int
	// CellDone marks the completion of the cell's last run.
	CellDone bool
	// SimSeconds is the run's simulated page-load time in seconds.
	SimSeconds float64
}

// progressHook holds the process-wide progress consumer.
var progressHook atomic.Pointer[func(ProgressEvent)]

// SetProgress installs fn as the process-wide progress consumer and
// returns the previous one (nil for none). Passing nil uninstalls.
// The consumer is called concurrently from pool workers and must be
// safe for that.
func SetProgress(fn func(ProgressEvent)) (prev func(ProgressEvent)) {
	var p *func(ProgressEvent)
	if fn != nil {
		p = &fn
	}
	if old := progressHook.Swap(p); old != nil {
		prev = *old
	}
	return prev
}

// ProgressActive reports whether a progress consumer is installed.
// Publishers use it to skip building events nobody will read.
func ProgressActive() bool { return progressHook.Load() != nil }

// NotifyProgress delivers ev to the installed consumer, if any.
func NotifyProgress(ev ProgressEvent) {
	if p := progressHook.Load(); p != nil {
		(*p)(ev)
	}
}
