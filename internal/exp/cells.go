package exp

import (
	"repro/internal/stats"
)

// CellStats is the cross-seed aggregate of one experiment cell: every
// collected record sharing an (experiment, scenario) pair, reduced to
// mean ± Student-t 95% confidence interval for the paper's headline
// quantities, plus the per-run distribution metrics averaged across the
// population.
type CellStats struct {
	Experiment string `json:"experiment,omitempty"`
	Scenario   string `json:"scenario"`
	// N is the number of runs aggregated into the cell.
	N int `json:"n"`

	Elapsed stats.Summary `json:"elapsed_seconds"`
	Packets stats.Summary `json:"packets"`

	// Dist averages each optional distribution metric (e.g.
	// lat_total_ms_p50) over the runs that reported it; nil when none
	// did.
	Dist map[string]float64 `json:"dist,omitempty"`
}

// Cells groups the collected records by (experiment, scenario) and
// aggregates each group. Cells appear in the order of Records() — the
// deterministic (experiment, scenario, seed, run) sort — so the output
// is byte-identical at any parallelism level.
func (c *Collector) Cells() []CellStats {
	recs := c.Records()
	var out []CellStats
	idx := map[[2]string]int{}
	groups := map[[2]string][]Metrics{}
	for _, m := range recs {
		k := [2]string{m.Experiment, m.Scenario}
		if _, ok := idx[k]; !ok {
			idx[k] = len(out)
			out = append(out, CellStats{Experiment: m.Experiment, Scenario: m.Scenario})
		}
		groups[k] = append(groups[k], m)
	}
	for k, i := range idx {
		ms := groups[k]
		cell := &out[i]
		cell.N = len(ms)
		elapsed := make([]float64, len(ms))
		packets := make([]float64, len(ms))
		distSum := map[string]float64{}
		distN := map[string]int{}
		for j, m := range ms {
			elapsed[j] = m.ElapsedSeconds
			packets[j] = float64(m.Packets)
			for dk, dv := range m.Dist {
				distSum[dk] += dv
				distN[dk]++
			}
		}
		cell.Elapsed = stats.Summarize(elapsed)
		cell.Packets = stats.Summarize(packets)
		if len(distSum) > 0 {
			cell.Dist = make(map[string]float64, len(distSum))
			for dk, sum := range distSum {
				cell.Dist[dk] = sum / float64(distN[dk])
			}
		}
	}
	return out
}
