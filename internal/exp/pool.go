package exp

import (
	"sync"
	"sync/atomic"
)

// ForEach runs jobs 0..n-1 on up to parallel goroutines and waits for
// them. Each job writes its result into caller-owned storage indexed by
// its job number, so aggregation in index order is deterministic at any
// parallelism level.
//
// The first job error cancels the pool: jobs not yet started are
// skipped, in-flight jobs finish, and ForEach returns the error of the
// lowest-numbered failed job (again independent of scheduling).
// parallel < 1 is treated as 1; parallel == 1 runs the jobs inline in
// order with no goroutines.
func ForEach(parallel, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := job(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
