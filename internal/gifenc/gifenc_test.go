package gifenc

import (
	"bytes"
	"image"
	"image/color"
	"image/gif"
	"testing"
	"testing/quick"
)

// testImage builds a deterministic paletted image with icon-like content
// (flat regions plus some structure), similar to web GIFs.
func testImage(w, h, colors int, seed uint64) *Image {
	img := &Image{W: w, H: h, Palette: make([]Color, colors), Pixels: make([]byte, w*h)}
	for i := range img.Palette {
		img.Palette[i] = Color{byte(i * 37), byte(i * 91), byte(i * 53)}
	}
	s := seed
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Horizontal bands with occasional noise: compresses like a
			// typical banner/icon.
			c := (y / 4) % colors
			s = s*6364136223846793005 + 1442695040888963407
			if s>>60 == 0 {
				c = int(s>>32) % colors
			}
			img.Pixels[y*w+x] = byte(c)
		}
	}
	return img
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct{ w, h, colors int }{
		{1, 1, 2}, {13, 7, 2}, {90, 30, 4}, {64, 64, 16}, {120, 40, 256},
	} {
		img := testImage(tc.w, tc.h, tc.colors, 9)
		data, err := Encode(img)
		if err != nil {
			t.Fatalf("%dx%d/%d: %v", tc.w, tc.h, tc.colors, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%dx%d/%d: decode: %v", tc.w, tc.h, tc.colors, err)
		}
		if got.W != img.W || got.H != img.H {
			t.Fatalf("dimensions %dx%d, want %dx%d", got.W, got.H, img.W, img.H)
		}
		if !bytes.Equal(got.Pixels, img.Pixels) {
			t.Fatalf("%dx%d/%d: pixel mismatch", tc.w, tc.h, tc.colors)
		}
		for i := range img.Palette {
			if got.Palette[i] != img.Palette[i] {
				t.Fatalf("palette entry %d mismatch", i)
			}
		}
	}
}

func TestStdlibCanDecodeOurGIF(t *testing.T) {
	img := testImage(90, 30, 4, 3)
	data, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	std, err := gif.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected our GIF: %v", err)
	}
	b := std.Bounds()
	if b.Dx() != img.W || b.Dy() != img.H {
		t.Fatalf("stdlib sees %dx%d, want %dx%d", b.Dx(), b.Dy(), img.W, img.H)
	}
	pimg, ok := std.(*image.Paletted)
	if !ok {
		t.Fatalf("stdlib decoded %T, want paletted", std)
	}
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if pimg.ColorIndexAt(x, y) != img.Pixels[y*img.W+x] {
				t.Fatalf("pixel (%d,%d) differs under stdlib decode", x, y)
			}
		}
	}
}

func TestWeCanDecodeStdlibGIF(t *testing.T) {
	src := testImage(48, 24, 8, 4)
	pal := make(color.Palette, len(src.Palette))
	for i, c := range src.Palette {
		pal[i] = color.RGBA{c.R, c.G, c.B, 255}
	}
	pimg := image.NewPaletted(image.Rect(0, 0, src.W, src.H), pal)
	copy(pimg.Pix, src.Pixels)
	var buf bytes.Buffer
	if err := gif.Encode(&buf, pimg, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("our decoder rejected stdlib GIF: %v", err)
	}
	if got.W != src.W || got.H != src.H || !bytes.Equal(got.Pixels, src.Pixels) {
		t.Fatal("mismatch decoding stdlib GIF")
	}
}

func TestAnimationRoundTrip(t *testing.T) {
	var frames []Frame
	for i := 0; i < 5; i++ {
		frames = append(frames, Frame{Image: testImage(32, 32, 8, uint64(i+1)), DelayCS: 10 * (i + 1)})
	}
	data, err := EncodeAnimation(frames, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("decoded %d frames, want 5", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i].Image.Pixels, frames[i].Image.Pixels) {
			t.Fatalf("frame %d pixels differ", i)
		}
		if got[i].DelayCS != frames[i].DelayCS {
			t.Fatalf("frame %d delay %d, want %d", i, got[i].DelayCS, frames[i].DelayCS)
		}
	}
}

func TestStdlibCanDecodeOurAnimation(t *testing.T) {
	frames := []Frame{
		{Image: testImage(16, 16, 4, 1), DelayCS: 5},
		{Image: testImage(16, 16, 4, 2), DelayCS: 5},
	}
	data, err := EncodeAnimation(frames, 0)
	if err != nil {
		t.Fatal(err)
	}
	std, err := gif.DecodeAll(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected our animation: %v", err)
	}
	if len(std.Image) != 2 {
		t.Fatalf("stdlib sees %d frames, want 2", len(std.Image))
	}
	if std.LoopCount != 0 {
		t.Fatalf("loop count %d, want 0 (forever)", std.LoopCount)
	}
}

func TestValidateRejectsBadImages(t *testing.T) {
	cases := []*Image{
		{W: 0, H: 5, Palette: make([]Color, 2), Pixels: nil},
		{W: 2, H: 2, Palette: make([]Color, 1), Pixels: make([]byte, 4)},
		{W: 2, H: 2, Palette: make([]Color, 2), Pixels: make([]byte, 3)},
		{W: 2, H: 2, Palette: make([]Color, 2), Pixels: []byte{0, 0, 0, 9}},
	}
	for i, img := range cases {
		if err := img.Validate(); err == nil {
			t.Errorf("case %d: invalid image accepted", i)
		}
		if _, err := Encode(img); err == nil {
			t.Errorf("case %d: Encode accepted invalid image", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GIF"),
		[]byte("NOTAGIF8"),
		[]byte("GIF87a\x01\x00"),
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestFlatImageCompressesWell(t *testing.T) {
	// A 100x30 single-color banner: GIF should be far below raw size.
	img := &Image{W: 100, H: 30, Palette: []Color{{255, 255, 255}, {0, 0, 0}}, Pixels: make([]byte, 3000)}
	data, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 600 {
		t.Fatalf("flat 3000-pixel GIF is %d bytes, want well under raw", len(data))
	}
}

func TestEncodeAnimationRejectsMismatchedFrames(t *testing.T) {
	frames := []Frame{
		{Image: testImage(16, 16, 4, 1)},
		{Image: testImage(8, 8, 4, 2)},
	}
	if _, err := EncodeAnimation(frames, 0); err == nil {
		t.Fatal("mismatched frame sizes accepted")
	}
	if _, err := EncodeAnimation(nil, 0); err == nil {
		t.Fatal("empty animation accepted")
	}
}

// Property: any valid random image round-trips.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(wRaw, hRaw uint8, colRaw uint8, pix []byte) bool {
		w := int(wRaw)%40 + 1
		h := int(hRaw)%40 + 1
		colors := int(colRaw)%255 + 2
		img := &Image{W: w, H: h, Palette: make([]Color, colors), Pixels: make([]byte, w*h)}
		for i := range img.Palette {
			img.Palette[i] = Color{byte(i), byte(i * 2), byte(i * 3)}
		}
		for i := range img.Pixels {
			v := 0
			if len(pix) > 0 {
				v = int(pix[i%len(pix)])
			}
			img.Pixels[i] = byte(v % colors)
		}
		data, err := Encode(img)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Pixels, img.Pixels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInterlacedRoundTrip(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{8, 8}, {10, 1}, {5, 2}, {17, 29}, {64, 64}} {
		img := testImage(tc.w, tc.h, 8, 12)
		data, err := EncodeInterlaced(img)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !bytes.Equal(got.Pixels, img.Pixels) {
			t.Fatalf("%v: interlaced round trip mismatch", tc)
		}
	}
}

func TestStdlibDecodesOurInterlacedGIF(t *testing.T) {
	img := testImage(31, 23, 8, 13)
	data, err := EncodeInterlaced(img)
	if err != nil {
		t.Fatal(err)
	}
	std, err := gif.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected interlaced GIF: %v", err)
	}
	pimg := std.(*image.Paletted)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if pimg.ColorIndexAt(x, y) != img.Pixels[y*img.W+x] {
				t.Fatalf("pixel (%d,%d) differs", x, y)
			}
		}
	}
}

func TestInterlaceRowOrderIsPermutation(t *testing.T) {
	for _, h := range []int{1, 2, 3, 7, 8, 9, 64, 100} {
		order := interlaceRowOrder(h)
		if len(order) != h {
			t.Fatalf("h=%d: %d rows", h, len(order))
		}
		seen := make([]bool, h)
		for _, y := range order {
			if y < 0 || y >= h || seen[y] {
				t.Fatalf("h=%d: bad/duplicate row %d", h, y)
			}
			seen[y] = true
		}
	}
}
