// Package gifenc implements a GIF87a/89a encoder and decoder (including
// animated GIF89a with the Netscape looping extension), built on the LZW
// coder in internal/lzw. It provides the "before" side of the paper's
// image-format experiment: the Microscape page's 40 static GIFs and 2 GIF
// animations, which are converted to PNG and MNG by internal/pngenc.
package gifenc

import (
	"errors"
	"fmt"

	"repro/internal/lzw"
)

// ErrFormat reports data that is not valid GIF.
var ErrFormat = errors.New("gifenc: invalid GIF data")

// Color is one RGB palette entry.
type Color struct{ R, G, B byte }

// Image is a paletted image, the only kind GIF supports.
type Image struct {
	W, H    int
	Palette []Color // 2..256 entries
	Pixels  []byte  // W*H palette indices, row major
}

// Validate checks structural invariants.
func (m *Image) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("gifenc: bad dimensions %dx%d", m.W, m.H)
	}
	if len(m.Palette) < 2 || len(m.Palette) > 256 {
		return fmt.Errorf("gifenc: palette size %d out of range", len(m.Palette))
	}
	if len(m.Pixels) != m.W*m.H {
		return fmt.Errorf("gifenc: %d pixels for %dx%d image", len(m.Pixels), m.W, m.H)
	}
	for i, p := range m.Pixels {
		if int(p) >= len(m.Palette) {
			return fmt.Errorf("gifenc: pixel %d references color %d beyond palette", i, p)
		}
	}
	return nil
}

// paletteBits returns the GIF color-table size exponent: the table holds
// 2^(n+1) entries.
func paletteBits(n int) int {
	bits := 1
	for 1<<uint(bits) < n {
		bits++
	}
	if bits < 1 {
		bits = 1
	}
	return bits
}

// Encode serializes a single-image GIF87a.
func Encode(img *Image) ([]byte, error) {
	return encode(img, false)
}

// EncodeInterlaced serializes a single-image GIF87a with the four-pass row
// interlacing used for progressive display over slow links.
func EncodeInterlaced(img *Image) ([]byte, error) {
	return encode(img, true)
}

func encode(img *Image, interlaced bool) ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	var out []byte
	out = append(out, "GIF87a"...)
	out = appendLogicalScreen(out, img)
	out = appendImageData(out, img, interlaced)
	out = append(out, 0x3B) // trailer
	return out, nil
}

// interlaceRowOrder returns the source row for each output row position
// under GIF's four-pass interlace (rows 0,8,16..., 4,12..., 2,6...,
// 1,3,5...).
func interlaceRowOrder(h int) []int {
	order := make([]int, 0, h)
	for _, p := range []struct{ start, step int }{{0, 8}, {4, 8}, {2, 4}, {1, 2}} {
		for y := p.start; y < h; y += p.step {
			order = append(order, y)
		}
	}
	return order
}

// Frame is one animation frame with its display delay.
type Frame struct {
	Image *Image
	// DelayCS is the frame delay in hundredths of a second.
	DelayCS int
}

// EncodeAnimation serializes a GIF89a animation. All frames must share the
// first frame's dimensions and palette (a common authoring constraint that
// keeps the file small). loop is the Netscape loop count (0 = forever).
func EncodeAnimation(frames []Frame, loop int) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("gifenc: no frames")
	}
	first := frames[0].Image
	if err := first.Validate(); err != nil {
		return nil, err
	}
	for _, f := range frames[1:] {
		if err := f.Image.Validate(); err != nil {
			return nil, err
		}
		if f.Image.W != first.W || f.Image.H != first.H {
			return nil, errors.New("gifenc: frame dimensions differ")
		}
	}
	var out []byte
	out = append(out, "GIF89a"...)
	out = appendLogicalScreen(out, first)

	// Netscape 2.0 looping application extension.
	out = append(out, 0x21, 0xFF, 11)
	out = append(out, "NETSCAPE2.0"...)
	out = append(out, 3, 1, byte(loop), byte(loop>>8), 0)

	for _, f := range frames {
		// Graphic control extension: delay, no transparency.
		out = append(out, 0x21, 0xF9, 4, 0, byte(f.DelayCS), byte(f.DelayCS>>8), 0, 0)
		out = appendImageData(out, f.Image, false)
	}
	out = append(out, 0x3B)
	return out, nil
}

func appendLogicalScreen(out []byte, img *Image) []byte {
	out = append(out, byte(img.W), byte(img.W>>8), byte(img.H), byte(img.H>>8))
	bits := paletteBits(len(img.Palette))
	// Global color table present; color resolution = bits; not sorted.
	packed := byte(0x80) | byte((bits-1)<<4) | byte(bits-1)
	out = append(out, packed, 0, 0)
	out = appendColorTable(out, img.Palette, bits)
	return out
}

func appendColorTable(out []byte, pal []Color, bits int) []byte {
	n := 1 << uint(bits)
	for i := 0; i < n; i++ {
		if i < len(pal) {
			out = append(out, pal[i].R, pal[i].G, pal[i].B)
		} else {
			out = append(out, 0, 0, 0)
		}
	}
	return out
}

func appendImageData(out []byte, img *Image, interlaced bool) []byte {
	// Image descriptor at (0,0), no local color table.
	var packed byte
	if interlaced {
		packed = 0x40
	}
	out = append(out, 0x2C, 0, 0, 0, 0,
		byte(img.W), byte(img.W>>8), byte(img.H), byte(img.H>>8), packed)
	litWidth := paletteBits(len(img.Palette))
	if litWidth < 2 {
		litWidth = 2
	}
	out = append(out, byte(litWidth))
	pixels := img.Pixels
	if interlaced {
		pixels = make([]byte, 0, len(img.Pixels))
		for _, y := range interlaceRowOrder(img.H) {
			pixels = append(pixels, img.Pixels[y*img.W:(y+1)*img.W]...)
		}
	}
	compressed := lzw.Compress(pixels, litWidth)
	for off := 0; off < len(compressed); off += 255 {
		end := off + 255
		if end > len(compressed) {
			end = len(compressed)
		}
		out = append(out, byte(end-off))
		out = append(out, compressed[off:end]...)
	}
	out = append(out, 0) // block terminator
	return out
}

// Decode parses the first image of a GIF.
func Decode(data []byte) (*Image, error) {
	frames, err := DecodeAll(data)
	if err != nil {
		return nil, err
	}
	return frames[0].Image, nil
}

// DecodeAll parses every frame of a GIF.
func DecodeAll(data []byte) ([]Frame, error) {
	p := &parser{data: data}
	return p.parse()
}

type parser struct {
	data []byte
	pos  int
}

func (p *parser) need(n int) ([]byte, error) {
	if p.pos+n > len(p.data) {
		return nil, fmt.Errorf("%w: truncated at offset %d", ErrFormat, p.pos)
	}
	b := p.data[p.pos : p.pos+n]
	p.pos += n
	return b, nil
}

func (p *parser) u16(b []byte) int { return int(b[0]) | int(b[1])<<8 }

func (p *parser) parse() ([]Frame, error) {
	hdr, err := p.need(6)
	if err != nil {
		return nil, err
	}
	if string(hdr) != "GIF87a" && string(hdr) != "GIF89a" {
		return nil, fmt.Errorf("%w: bad signature %q", ErrFormat, hdr)
	}
	lsd, err := p.need(7)
	if err != nil {
		return nil, err
	}
	screenW, screenH := p.u16(lsd[0:2]), p.u16(lsd[2:4])
	packed := lsd[4]
	var global []Color
	if packed&0x80 != 0 {
		n := 1 << uint(packed&0x07+1)
		raw, err := p.need(3 * n)
		if err != nil {
			return nil, err
		}
		global = make([]Color, n)
		for i := range global {
			global[i] = Color{raw[3*i], raw[3*i+1], raw[3*i+2]}
		}
	}

	var frames []Frame
	pendingDelay := 0
	for {
		b, err := p.need(1)
		if err != nil {
			return nil, err
		}
		switch b[0] {
		case 0x3B: // trailer
			if len(frames) == 0 {
				return nil, fmt.Errorf("%w: no image data", ErrFormat)
			}
			return frames, nil
		case 0x21: // extension
			kind, err := p.need(1)
			if err != nil {
				return nil, err
			}
			blocks, err := p.subBlocks()
			if err != nil {
				return nil, err
			}
			if kind[0] == 0xF9 && len(blocks) >= 4 {
				pendingDelay = int(blocks[1]) | int(blocks[2])<<8
			}
		case 0x2C: // image descriptor
			img, err := p.parseImage(global, screenW, screenH)
			if err != nil {
				return nil, err
			}
			frames = append(frames, Frame{Image: img, DelayCS: pendingDelay})
			pendingDelay = 0
		default:
			return nil, fmt.Errorf("%w: unknown block 0x%02x", ErrFormat, b[0])
		}
	}
}

// subBlocks reads a sub-block chain and returns the concatenated payload.
func (p *parser) subBlocks() ([]byte, error) {
	var out []byte
	for {
		szb, err := p.need(1)
		if err != nil {
			return nil, err
		}
		if szb[0] == 0 {
			return out, nil
		}
		body, err := p.need(int(szb[0]))
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
	}
}

func (p *parser) parseImage(global []Color, screenW, screenH int) (*Image, error) {
	desc, err := p.need(9)
	if err != nil {
		return nil, err
	}
	w, h := p.u16(desc[4:6]), p.u16(desc[6:8])
	packed := desc[8]
	interlaced := packed&0x40 != 0
	pal := global
	if packed&0x80 != 0 {
		n := 1 << uint(packed&0x07+1)
		raw, err := p.need(3 * n)
		if err != nil {
			return nil, err
		}
		pal = make([]Color, n)
		for i := range pal {
			pal[i] = Color{raw[3*i], raw[3*i+1], raw[3*i+2]}
		}
	}
	if pal == nil {
		return nil, fmt.Errorf("%w: image with no color table", ErrFormat)
	}
	litb, err := p.need(1)
	if err != nil {
		return nil, err
	}
	comp, err := p.subBlocks()
	if err != nil {
		return nil, err
	}
	pixels, err := lzw.Decompress(comp, int(litb[0]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if len(pixels) < w*h {
		return nil, fmt.Errorf("%w: %d pixels for %dx%d image", ErrFormat, len(pixels), w, h)
	}
	pixels = pixels[:w*h]
	if interlaced {
		deinterlaced := make([]byte, w*h)
		for i, y := range interlaceRowOrder(h) {
			copy(deinterlaced[y*w:(y+1)*w], pixels[i*w:(i+1)*w])
		}
		pixels = deinterlaced
	}
	img := &Image{W: w, H: h, Palette: pal, Pixels: pixels}
	_ = screenW
	_ = screenH
	return img, nil
}
