package gifenc

import "testing"

func BenchmarkEncode(b *testing.B) {
	img := testImage(160, 120, 64, 5)
	b.SetBytes(int64(len(img.Pixels)))
	for i := 0; i < b.N; i++ {
		if _, err := Encode(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	img := testImage(160, 120, 64, 5)
	data, err := Encode(img)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img.Pixels)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
