// Package faults is the deterministic, seed-driven fault-injection
// layer. A Profile names a scripted failure scenario — server-side
// (early close, mid-response truncation, abort with pipelined requests
// outstanding, stall-forever), link-level (Gilbert–Elliott burst loss,
// fixed-window outages, one-direction blackholes), or none — and
// Script instantiates it for one run's seed: every schedule is a pure
// function of the seed, so fault runs are byte-identical at any
// parallelism level and compose with every topology (on a multi-hop
// proxy run the same script applies to the origin server and the
// proxy↔origin link).
//
// The package also defines Policy, the recovery policy shared by the
// client (internal/httpclient) and the proxy's upstream fetcher
// (internal/proxy): per-request timeout, capped exponential backoff,
// a retry budget, and a protocol fallback ladder — all sim-clock
// driven and RNG-free, so recovery never perturbs a fault-free run.
package faults

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netem"
)

// Profile names a scripted fault scenario.
type Profile int

// Fault profiles.
const (
	// None injects nothing; the zero value.
	None Profile = iota
	// EarlyClose makes the server close every connection — both TCP
	// halves at once — after 5 responses, the paper's §4 reset scenario:
	// pipelined requests still in flight draw an RST.
	EarlyClose
	// Truncate cuts one response's body short and closes the
	// connection: the client sees a mid-response failure (injected once).
	Truncate
	// Abort resets (RST) the connection right after one response while
	// pipelined requests are outstanding (injected once).
	Abort
	// Stall sends only the headers of one response and then goes silent
	// on that connection forever; only a client timeout clears it
	// (injected once).
	Stall
	// BurstLoss runs Gilbert–Elliott burst loss on both directions of
	// the faulted link.
	BurstLoss
	// Flap drops fixed windows of consecutive packets on both
	// directions (link outages).
	Flap
	// Blackhole drops a window of packets in the server→client
	// direction only.
	Blackhole
	// MuxRst makes the server reset one response stream mid-body with
	// RST_STREAM(INTERNAL_ERROR) on framed connections (injected once).
	MuxRst
	// MuxTruncate cuts a framed connection mid-DATA-frame: the N-th
	// response's body stops partway through a frame and the connection
	// fully closes, so the client's frame reader sees a truncated
	// stream (injected once).
	MuxTruncate
	// MuxGarbage injects a corrupt frame — an unknown type on an
	// absurd stream id — ahead of one response, tripping the client's
	// strict frame validator (injected once).
	MuxGarbage
	// MuxPushAbort promises and begins one server push, then resets
	// the pushed stream mid-body, forcing the client to invalidate its
	// push cache and re-fetch (injected once).
	MuxPushAbort
	// MuxStall wedges the framed connection right after emitting a
	// SETTINGS frame at the N-th response: no further frames, forever;
	// only the client's stream watchdog clears it (injected once).
	MuxStall
)

// profileNames maps names (as used in scenario specs and flags) to
// profiles, in display order.
var profileNames = []struct {
	name string
	p    Profile
}{
	{"none", None},
	{"early-close", EarlyClose},
	{"truncate", Truncate},
	{"abort", Abort},
	{"stall", Stall},
	{"burst-loss", BurstLoss},
	{"flap", Flap},
	{"blackhole", Blackhole},
	{"mux-rst", MuxRst},
	{"mux-truncate", MuxTruncate},
	{"mux-garbage", MuxGarbage},
	{"mux-push-abort", MuxPushAbort},
	{"mux-stall", MuxStall},
}

// Names lists the valid profile names in display order.
func Names() []string {
	out := make([]string, len(profileNames))
	for i, e := range profileNames {
		out[i] = e.name
	}
	return out
}

// String names the profile.
func (p Profile) String() string {
	for _, e := range profileNames {
		if e.p == p {
			return e.name
		}
	}
	return fmt.Sprintf("Profile(%d)", int(p))
}

// Parse maps a name to a profile; the error enumerates the valid names.
func Parse(s string) (Profile, error) {
	for _, e := range profileNames {
		if strings.EqualFold(s, e.name) {
			return e.p, nil
		}
	}
	return 0, fmt.Errorf("unknown fault profile %q (want %s)", s, strings.Join(Names(), ", "))
}

// ServerFaults scripts deterministic server-side failures; the zero
// value injects nothing. Response ordinals are 1-based and counted
// server-wide, so a retried request on a fresh connection does not
// re-trigger a one-shot fault.
type ServerFaults struct {
	// CloseAfterResponses closes every connection after N responses;
	// NaiveClose tears down both TCP halves at once (the paper's reset
	// scenario) instead of the graceful half-close.
	CloseAfterResponses int
	NaiveClose          bool
	// TruncateResponse cuts the body of the N-th response served to
	// TruncateBodyBytes bytes and fully closes the connection (once).
	TruncateResponse  int
	TruncateBodyBytes int
	// AbortResponse resets (RST) the connection immediately after
	// sending the N-th response, pipelined requests outstanding (once).
	AbortResponse int
	// StallResponse sends only the headers of the N-th response, then
	// goes silent on that connection forever (once).
	StallResponse int
}

// Any reports whether the set scripts at least one fault.
func (f ServerFaults) Any() bool { return f != (ServerFaults{}) }

// MuxFaults scripts deterministic failures specific to framed (mux)
// connections; the zero value injects nothing. Like ServerFaults,
// ordinals are 1-based and counted server-wide so one-shot faults do
// not re-trigger on a recovery redial. On an HTTP/1.x connection the
// set is inert: the injection hook lives entirely in the server's mux
// path, which is what keeps the HTTP/1.x golden tables untouched.
type MuxFaults struct {
	// RstStream resets the N-th framed response stream mid-body with
	// RST_STREAM(INTERNAL_ERROR) after RstStreamBytes body bytes (once).
	RstStream      int
	RstStreamBytes int
	// TruncateFrame cuts the N-th framed response mid-DATA-frame —
	// TruncateBytes into the body, off any frame boundary — and fully
	// closes the connection (once).
	TruncateFrame int
	TruncateBytes int
	// GarbageFrame writes a malformed frame (unknown type, reserved
	// stream-id bit) ahead of the N-th framed response (once).
	GarbageFrame int
	// AbortPush resets the N-th promised push stream after
	// AbortPushBytes of its body (once).
	AbortPush      int
	AbortPushBytes int
	// StallSettings emits a SETTINGS frame instead of the N-th framed
	// response and wedges the connection: nothing further is ever sent
	// or processed on it (once).
	StallSettings int
}

// Any reports whether the set scripts at least one fault.
func (f MuxFaults) Any() bool { return f != (MuxFaults{}) }

// Script is one run's instantiated fault plan: the server-side fault
// set plus per-direction link loss models, all derived from the run
// seed. Zero-value fields inject nothing.
type Script struct {
	Profile Profile
	Server  ServerFaults
	Mux     MuxFaults
	// LossC2S and LossS2C apply to the faulted link's client→server and
	// server→client directions (on a proxy topology: the proxy↔origin
	// link). Each is a fresh instance — stateful models are never
	// shared between directions or runs.
	LossC2S, LossS2C netem.LossFunc
}

// Script instantiates the profile for one run seed. Link-loss schedules
// draw only from SplitMix64 streams seeded here, never from the run's
// jitter RNG, so configuring a fault cannot perturb the rest of the
// simulation and an unset profile consumes nothing.
func (p Profile) Script(seed uint64) Script {
	sc := Script{Profile: p}
	switch p {
	case EarlyClose:
		sc.Server = ServerFaults{CloseAfterResponses: 5, NaiveClose: true}
	case Truncate:
		sc.Server = ServerFaults{TruncateResponse: 3, TruncateBodyBytes: 512}
	case Abort:
		sc.Server = ServerFaults{AbortResponse: 4}
	case Stall:
		sc.Server = ServerFaults{StallResponse: 3}
	case BurstLoss:
		// Mean bad-state dwell of 4 packets dropping 25%, entered ~1.5%
		// of the time: bursty but recoverable within TCP's retry limit.
		sc.LossC2S = netem.GilbertElliott(seed^0x9E3779B97F4A7C15, 0.015, 0.25, 0.003, 0.25)
		sc.LossS2C = netem.GilbertElliott(seed^0xD1B54A32D192ED03, 0.015, 0.25, 0.003, 0.25)
	case Flap:
		// A 12-packet outage every 300 packets, first at packet 60 —
		// long enough to force RTO recovery, short enough that the
		// in-flight window advances the schedule past the outage.
		sc.LossC2S = netem.OutageWindows(60, 300, 12)
		sc.LossS2C = netem.OutageWindows(60, 300, 12)
	case Blackhole:
		sc.LossS2C = netem.Blackhole(40, 52)
	case MuxRst:
		sc.Mux = MuxFaults{RstStream: 3, RstStreamBytes: 600}
	case MuxTruncate:
		sc.Mux = MuxFaults{TruncateFrame: 3, TruncateBytes: 700}
	case MuxGarbage:
		sc.Mux = MuxFaults{GarbageFrame: 2}
	case MuxPushAbort:
		sc.Mux = MuxFaults{AbortPush: 1, AbortPushBytes: 300}
	case MuxStall:
		sc.Mux = MuxFaults{StallSettings: 3}
	}
	return sc
}

// Policy is the shared recovery policy: how long to wait for response
// progress, how to back off before redialing, how many re-issues a
// fetch may spend, and when to degrade the protocol. All decisions are
// deterministic functions of the sim clock and attempt counts.
type Policy struct {
	// RequestTimeout is the response progress watchdog: if a connection
	// with requests outstanding receives no bytes for this long, the
	// connection is aborted and its requests re-issued. Zero disables.
	RequestTimeout time.Duration
	// BaseBackoff and MaxBackoff bound the capped exponential delay
	// before redialing after the n-th consecutive connection failure:
	// min(BaseBackoff << (n-1), MaxBackoff).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryBudget caps the total request re-issues of one fetch; a
	// request whose re-issue would exceed it fails permanently.
	RetryBudget int
	// FallbackAfter degrades the protocol one level (pipelined →
	// persistent serial → HTTP/1.0) after this many consecutive
	// connection failures. Zero disables the ladder.
	FallbackAfter int
}

// Default returns the recovery policy the fault experiments run with.
func Default() Policy {
	return Policy{
		RequestTimeout: 4 * time.Second,
		BaseBackoff:    200 * time.Millisecond,
		MaxBackoff:     3200 * time.Millisecond,
		RetryBudget:    64,
		FallbackAfter:  3,
	}
}

// Backoff returns the redial delay after the n-th consecutive
// connection failure (n is 1-based): capped exponential, zero for n<=0.
func (p Policy) Backoff(n int) time.Duration {
	if n <= 0 || p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// Allow reports whether a re-issue is within budget given the number of
// retries already spent.
func (p Policy) Allow(retriesSpent int) bool {
	return p.RetryBudget <= 0 || retriesSpent < p.RetryBudget
}
