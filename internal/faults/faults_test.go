package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("Parse(%q).String() = %q", name, p.String())
		}
	}
	if p, err := Parse("Early-Close"); err != nil || p != EarlyClose {
		t.Errorf("case-insensitive parse: %v, %v", p, err)
	}
	_, err := Parse("bogus")
	if err == nil {
		t.Fatal("Parse(bogus) succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("parse error %q does not enumerate %q", err, name)
		}
	}
}

func TestScriptShape(t *testing.T) {
	if s := None.Script(1); s.Server.Any() || s.LossC2S != nil || s.LossS2C != nil {
		t.Error("None script is not empty")
	}
	if s := EarlyClose.Script(1); s.Server.CloseAfterResponses != 5 || !s.Server.NaiveClose {
		t.Errorf("EarlyClose script = %+v", s.Server)
	}
	if s := Stall.Script(1); s.Server.StallResponse == 0 {
		t.Error("Stall script has no stall ordinal")
	}
	if s := BurstLoss.Script(1); s.LossC2S == nil || s.LossS2C == nil {
		t.Error("BurstLoss script missing loss models")
	}
	if s := Blackhole.Script(1); s.LossC2S != nil || s.LossS2C == nil {
		t.Error("Blackhole must blackhole only the server→client direction")
	}
}

// TestScriptDeterministic checks that two scripts from the same seed
// produce identical burst-loss drop schedules (fresh state per script).
func TestScriptDeterministic(t *testing.T) {
	a := BurstLoss.Script(99)
	b := BurstLoss.Script(99)
	for i := 0; i < 3000; i++ {
		if a.LossS2C(i, 1500) != b.LossS2C(i, 1500) {
			t.Fatalf("schedules diverge at packet %d", i)
		}
	}
}

func TestPolicyBackoff(t *testing.T) {
	p := Policy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 800 * time.Millisecond}
	want := []time.Duration{0, 100e6, 200e6, 400e6, 800e6, 800e6, 800e6}
	for n, w := range want {
		if got := p.Backoff(n); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", n, got, w)
		}
	}
	if got := (Policy{}).Backoff(3); got != 0 {
		t.Errorf("zero policy Backoff = %v", got)
	}
}

func TestPolicyAllow(t *testing.T) {
	p := Policy{RetryBudget: 2}
	if !p.Allow(0) || !p.Allow(1) || p.Allow(2) || p.Allow(3) {
		t.Error("RetryBudget 2 must allow exactly retries 0 and 1")
	}
	if !(Policy{}).Allow(1000) {
		t.Error("zero budget means unlimited")
	}
}
