// Package tcpsim implements a TCP state machine over simulated links.
//
// It models the TCP behaviours that the paper's measurements depend on:
// three-way handshake, slow start and congestion avoidance, the delayed
// acknowledgement heartbeat, the Nagle algorithm (and TCP_NODELAY),
// MSS segmentation, sliding-window flow control, go-back-N retransmission,
// independent half-close of each connection direction, and RST generation
// when data arrives for a closed endpoint — the failure mode behind the
// paper's pipelining connection-management scenario.
//
// Applications attach to connections through callback Handlers and run on
// the same deterministic virtual clock (package sim) as the network.
package tcpsim

import (
	"errors"
	"fmt"

	"repro/internal/netem"
)

// Flags is the set of TCP header flags the simulator models.
type Flags uint8

// TCP header flags.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// String renders the flags tcpdump-style, e.g. "S.", "P.", "F.", "R".
func (f Flags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagRST != 0 {
		s += "R"
	}
	if f&FlagPSH != 0 {
		s += "P"
	}
	if f&FlagACK != 0 {
		s += "."
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Addr identifies one endpoint of a connection.
type Addr struct {
	Host string
	Port int
}

// String formats the address as host:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Segment is a TCP segment on the wire.
type Segment struct {
	From, To Addr
	Seq, Ack uint32
	Flags    Flags
	Wnd      int
	Payload  []byte
}

// WireBytes is the segment's IP-level size: 40 bytes of TCP/IP headers
// plus the payload (no TCP options are modeled).
func (s *Segment) WireBytes() int { return netem.IPTCPHeaderBytes + len(s.Payload) }

// State is a TCP connection state.
type State int

// TCP connection states (RFC 793 names).
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "SYN_SENT", "SYN_RCVD", "ESTABLISHED", "FIN_WAIT_1",
	"FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

// String returns the RFC 793 state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Errors surfaced to application handlers.
var (
	// ErrConnectionReset reports that the peer sent RST; any data in
	// flight or buffered is lost, and the application cannot tell which
	// of its writes were received.
	ErrConnectionReset = errors.New("tcpsim: connection reset by peer")
	// ErrConnectionAborted reports a local abort.
	ErrConnectionAborted = errors.New("tcpsim: connection aborted")
	// ErrWriteAfterClose reports a Write after CloseWrite.
	ErrWriteAfterClose = errors.New("tcpsim: write after close")
	// ErrTimeout reports too many retransmission timeouts.
	ErrTimeout = errors.New("tcpsim: connection timed out")
)

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in 32-bit sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// Handler receives connection events. All callbacks run synchronously on
// the simulator goroutine; they may call Conn methods freely.
type Handler interface {
	// OnConnect fires when the connection reaches ESTABLISHED.
	OnConnect(c *Conn)
	// OnData delivers in-order payload bytes as they arrive. The slice
	// aliases the sender's buffer and is only valid for the duration of
	// the call: copy it if it must be retained.
	OnData(c *Conn, data []byte)
	// OnPeerClose fires when the peer's FIN is received (EOF): all of the
	// peer's data has been delivered.
	OnPeerClose(c *Conn)
	// OnClose fires exactly once when the connection is fully torn down.
	OnClose(c *Conn)
	// OnError fires on RST, abort, or timeout, before OnClose.
	OnError(c *Conn, err error)
}

// Callbacks adapts optional funcs to Handler; nil fields are no-ops.
type Callbacks struct {
	Connect   func(c *Conn)
	Data      func(c *Conn, data []byte)
	PeerClose func(c *Conn)
	Close     func(c *Conn)
	Error     func(c *Conn, err error)
}

// OnConnect implements Handler.
func (cb *Callbacks) OnConnect(c *Conn) {
	if cb.Connect != nil {
		cb.Connect(c)
	}
}

// OnData implements Handler.
func (cb *Callbacks) OnData(c *Conn, data []byte) {
	if cb.Data != nil {
		cb.Data(c, data)
	}
}

// OnPeerClose implements Handler.
func (cb *Callbacks) OnPeerClose(c *Conn) {
	if cb.PeerClose != nil {
		cb.PeerClose(c)
	}
}

// OnClose implements Handler.
func (cb *Callbacks) OnClose(c *Conn) {
	if cb.Close != nil {
		cb.Close(c)
	}
}

// OnError implements Handler.
func (cb *Callbacks) OnError(c *Conn, err error) {
	if cb.Error != nil {
		cb.Error(c, err)
	}
}
