package tcpsim

import "time"

// Options tunes a connection's TCP behaviour. The zero value selects the
// defaults documented on each field (applied by normalize).
type Options struct {
	// MSS is the maximum segment size in bytes. Default 1460.
	MSS int
	// NoDelay disables the Nagle algorithm (TCP_NODELAY). Default off:
	// Nagle enabled, as on 1997 stacks.
	NoDelay bool
	// InitialCwndSegments is the slow-start initial window in segments.
	// The paper notes stacks of the era used one or two; default 2.
	InitialCwndSegments int
	// RecvWindow is the advertised receive window in bytes. Default 65535.
	RecvWindow int
	// InitialRTO is the first retransmission timeout. Default 1s.
	InitialRTO time.Duration
	// MinRTO floors the adaptive retransmission timeout. Default 1s, the
	// classic BSD minimum of the era; long-delay links (PPP) depend on
	// it to avoid spurious go-back-N retransmission.
	MinRTO time.Duration
	// MaxRTO caps exponential RTO backoff. Default 64s.
	MaxRTO time.Duration
	// MaxRetries is the number of consecutive retransmissions before the
	// connection errors with ErrTimeout. Default 10.
	MaxRetries int
	// DelAckInterval is the delayed-ACK heartbeat period. Like the BSD
	// fast timer, pure ACKs for a single outstanding segment are deferred
	// to the next multiple of this interval. Default 200ms.
	DelAckInterval time.Duration
	// AckEvery is the number of received segments that force an immediate
	// ACK (the standard "ack every second segment"). Default 2.
	AckEvery int
	// TimeWait is the TIME_WAIT linger before the connection record is
	// destroyed. Kept short by default (500ms) to bound simulation work;
	// correctness in loss-free runs does not depend on it.
	TimeWait time.Duration
}

func (o Options) normalize() Options {
	if o.MSS == 0 {
		o.MSS = 1460
	}
	if o.InitialCwndSegments == 0 {
		o.InitialCwndSegments = 2
	}
	if o.RecvWindow == 0 {
		o.RecvWindow = 65535
	}
	if o.InitialRTO == 0 {
		o.InitialRTO = time.Second
	}
	if o.MinRTO == 0 {
		o.MinRTO = time.Second
	}
	if o.MaxRTO == 0 {
		o.MaxRTO = 64 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 10
	}
	if o.DelAckInterval == 0 {
		o.DelAckInterval = 200 * time.Millisecond
	}
	if o.AckEvery == 0 {
		o.AckEvery = 2
	}
	if o.TimeWait == 0 {
		o.TimeWait = 500 * time.Millisecond
	}
	return o
}
