package tcpsim

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PacketEvent describes one segment put on a link, reported to the
// network's packet hook at transmission time (like a tcpdump capture at
// the sender's interface).
type PacketEvent struct {
	Time      sim.Time
	Seg       Segment
	WireBytes int
	Dropped   bool
	Retrans   bool
}

// Network is a set of hosts joined by point-to-point paths.
type Network struct {
	Sim *sim.Simulator
	// PacketHook, if non-nil, observes every transmitted segment.
	PacketHook func(ev PacketEvent)
	// Obs, if non-nil, receives connection lifecycle events (state
	// transitions, cwnd changes, Nagle holds, RTO fires, retransmits)
	// from every connection on the network.
	Obs *obs.Bus

	hosts map[string]*Host
	paths []pathEntry

	// flights pools in-flight delivery records so that transmitting a
	// segment allocates nothing once the pool is warm.
	flights []*flight

	packets     int64
	rtoTimeouts int64
}

// flight carries one accepted segment from transmit to delivery.
type flight struct {
	dst *Host
	seg Segment
	net *Network
}

// deliverFlight is the link-delivery thunk: it recycles the flight
// before handing the segment to the destination host.
func deliverFlight(a any) {
	f := a.(*flight)
	dst, seg := f.dst, f.seg
	f.dst, f.seg = nil, Segment{}
	f.net.flights = append(f.net.flights, f)
	if dst != nil {
		dst.receive(seg)
	}
}

type pathEntry struct {
	a, b string
	path *netem.Path
}

// NewNetwork returns an empty network on simulator s.
func NewNetwork(s *sim.Simulator) *Network {
	return &Network{Sim: s, hosts: make(map[string]*Host)}
}

// AddHost creates a host with the given name.
func (n *Network) AddHost(name string) *Host {
	if _, dup := n.hosts[name]; dup {
		panic("tcpsim: duplicate host " + name)
	}
	h := &Host{
		name:      name,
		net:       n,
		listeners: make(map[int]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  10000,
	}
	n.hosts[name] = h
	return h
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// ConnectHosts joins hosts a and b with path p; p.AB carries a→b traffic.
func (n *Network) ConnectHosts(a, b *Host, p *netem.Path) {
	n.paths = append(n.paths, pathEntry{a: a.name, b: b.name, path: p})
}

// Packets returns the total number of segments transmitted (including
// retransmissions and dropped segments).
func (n *Network) Packets() int64 { return n.packets }

// RTOTimeouts returns the total number of retransmission-timer
// expirations across all connections the network has carried, including
// connections already torn down.
func (n *Network) RTOTimeouts() int64 { return n.rtoTimeouts }

func (n *Network) link(from, to string) *netem.Link {
	for _, e := range n.paths {
		if e.a == from && e.b == to {
			return e.path.AB
		}
		if e.b == from && e.a == to {
			return e.path.BA
		}
	}
	return nil
}

// transmit sends a segment onto the appropriate link and arranges delivery
// at the destination host.
func (n *Network) transmit(seg Segment, retrans bool) {
	l := n.link(seg.From.Host, seg.To.Host)
	if l == nil {
		panic(fmt.Sprintf("tcpsim: no path from %s to %s", seg.From.Host, seg.To.Host))
	}
	n.packets++
	wire := seg.WireBytes()
	dst := n.hosts[seg.To.Host]
	var f *flight
	if k := len(n.flights); k > 0 {
		f = n.flights[k-1]
		n.flights = n.flights[:k-1]
	} else {
		f = &flight{net: n}
	}
	f.dst, f.seg = dst, seg
	accepted := l.SendArg(seg.Payload, wire, deliverFlight, f)
	if !accepted {
		f.dst, f.seg = nil, Segment{}
		n.flights = append(n.flights, f)
	}
	if n.PacketHook != nil {
		n.PacketHook(PacketEvent{
			Time:      n.Sim.Now(),
			Seg:       seg,
			WireBytes: wire,
			Dropped:   !accepted,
			Retrans:   retrans,
		})
	}
}

// Host is a network endpoint able to listen and dial.
type Host struct {
	name      string
	net       *Network
	listeners map[int]*Listener
	conns     map[connKey]*Conn
	nextPort  int
	dials     int64
}

type connKey struct {
	localPort  int
	remoteHost string
	remotePort int
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Dials returns how many outbound connections the host has opened.
func (h *Host) Dials() int64 { return h.dials }

// Listener accepts inbound connections on a port.
type Listener struct {
	host *Host
	port int
	opts Options
	// accept builds the Handler for each new connection. It runs at SYN
	// time; the handler's OnConnect fires when the handshake completes.
	accept func(c *Conn) Handler
	closed bool
}

// Close stops accepting new connections.
func (l *Listener) Close() { l.closed = true }

// Listen registers a listener on port. accept is invoked for each inbound
// SYN and must return the Handler for the new connection.
func (h *Host) Listen(port int, opts Options, accept func(c *Conn) Handler) *Listener {
	if _, dup := h.listeners[port]; dup {
		panic(fmt.Sprintf("tcpsim: %s port %d already listening", h.name, port))
	}
	l := &Listener{host: h, port: port, opts: opts.normalize(), accept: accept}
	h.listeners[port] = l
	return l
}

// Dial opens a connection to remote host/port. The returned Conn is in
// SYN_SENT; handler.OnConnect fires when it is established.
func (h *Host) Dial(remoteHost string, remotePort int, opts Options, handler Handler) *Conn {
	h.dials++
	local := Addr{Host: h.name, Port: h.nextPort}
	h.nextPort++
	c := newConn(h, local, Addr{Host: remoteHost, Port: remotePort}, opts.normalize(), handler)
	h.conns[c.key()] = c
	c.startConnect()
	return c
}

// receive dispatches an arriving segment to its connection, a listener,
// or answers it with RST.
func (h *Host) receive(seg Segment) {
	key := connKey{localPort: seg.To.Port, remoteHost: seg.From.Host, remotePort: seg.From.Port}
	if c, ok := h.conns[key]; ok {
		c.onSegment(seg)
		return
	}
	if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		if l, ok := h.listeners[seg.To.Port]; ok && !l.closed {
			c := newConn(h, seg.To, seg.From, l.opts, nil)
			c.handler = l.accept(c)
			h.conns[c.key()] = c
			c.onSynReceived(seg)
			return
		}
	}
	// No socket for this segment: answer with RST (unless it is itself a
	// reset). This is what makes pipelined requests arriving after a full
	// server close destroy the connection, per the paper.
	if seg.Flags&FlagRST == 0 {
		rst := Segment{
			From:  seg.To,
			To:    seg.From,
			Seq:   seg.Ack,
			Ack:   seg.Seq + uint32(len(seg.Payload)),
			Flags: FlagRST | FlagACK,
		}
		h.net.transmit(rst, false)
	}
}

func (h *Host) removeConn(c *Conn) {
	delete(h.conns, c.key())
}

// OpenConns returns the number of live connection records on the host
// (including TIME_WAIT).
func (h *Host) OpenConns() int { return len(h.conns) }
