package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// TestSteadyStatePacketPathAllocs pins the zero-alloc discipline of the
// wire path: on an established connection with a warm timer arena and
// flight pool, pushing a bulk transfer through the network must not
// allocate per packet. The budget tolerates the send buffer's growth
// (one append per Write) amortized over thousands of segments; a copy
// or closure on the per-segment path would blow it by orders of
// magnitude.
func TestSteadyStatePacketPathAllocs(t *testing.T) {
	const payloadLen = 2_000_000
	payload := make([]byte, payloadLen)

	s := sim.NewWithEngine(sim.EngineWheel) // the legacy heap allocates by design
	n := NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	cfg := netem.Config{BitsPerSecond: 100_000_000, PropagationDelay: 5 * time.Millisecond, MTU: 1500}
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))

	var srvConn *Conn
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{Data: func(c *Conn, d []byte) { srvConn = c }}
	})
	var got int64
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.Write([]byte("GET")) },
		Data:    func(c *Conn, d []byte) { got += int64(len(d)) },
	})
	s.Run() // handshake + request; the connection stays open
	if srvConn == nil {
		t.Fatal("request never reached the server")
	}

	// Each run pushes the whole payload and drains the simulator: data
	// segments, ACK clocking, delayed-ACK and RTO timer churn. The
	// warm-up run AllocsPerRun performs doubles as pool warm-up.
	const runs = 4
	before := n.Packets()
	allocs := testing.AllocsPerRun(runs, func() {
		srvConn.Write(payload)
		s.Run()
	})
	packets := n.Packets() - before

	if want := int64(payloadLen) * (runs + 1); got != want {
		t.Fatalf("client received %d bytes, want %d", got, want)
	}
	perRunPackets := float64(packets) / (runs + 1)
	if perRunPackets < 1000 {
		t.Fatalf("each transfer used %.0f packets, expected thousands", perRunPackets)
	}
	if perPacket := allocs / perRunPackets; perPacket > 0.01 {
		t.Errorf("steady-state path allocated %.1f times over %.0f packets (%.4f/packet), want ~0",
			allocs, perRunPackets, perPacket)
	}
}
