package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// testNet builds a two-host network joined by a configurable path.
func testNet(t testing.TB, cfg netem.Config) (*sim.Simulator, *Network, *Host, *Host) {
	t.Helper()
	s := sim.New()
	s.SetEventLimit(5_000_000)
	n := NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))
	return s, n, client, server
}

// wanCfg approximates the paper's WAN: 1.5 Mbit/s, 45 ms one-way.
func wanCfg() netem.Config {
	return netem.Config{
		BitsPerSecond:    1_500_000,
		PropagationDelay: 45 * time.Millisecond,
		MTU:              1500,
	}
}

// fastCfg is a near-instant link for logic-only tests.
func fastCfg() netem.Config {
	return netem.Config{PropagationDelay: 100 * time.Microsecond}
}

// echoServer accepts connections and echoes all received data, closing its
// write side when the peer closes.
func echoServer(h *Host, port int) {
	h.Listen(port, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data:      func(c *Conn, d []byte) { c.Write(d) },
			PeerClose: func(c *Conn) { c.CloseWrite() },
		}
	})
}

func TestHandshakeEstablishesBothSides(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	var clientUp, serverUp bool
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{Connect: func(c *Conn) { serverUp = true }}
	})
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { clientUp = true },
	})
	s.Run()
	if !clientUp || !serverUp {
		t.Fatalf("clientUp=%v serverUp=%v, want both true", clientUp, serverUp)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	echoServer(server, 80)
	msg := []byte("hello, 1997")
	var got []byte
	var eof bool
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(msg)
			c.CloseWrite()
		},
		Data:      func(c *Conn, d []byte) { got = append(got, d...) },
		PeerClose: func(c *Conn) { eof = true },
	})
	s.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if !eof {
		t.Fatal("client never saw peer close")
	}
}

func TestConnectionFullLifecyclePacketCount(t *testing.T) {
	s, n, client, server := testNet(t, fastCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{PeerClose: func(c *Conn) { c.CloseWrite() }}
	})
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.CloseWrite() },
	})
	s.Run()
	// SYN, SYN-ACK, ACK, FIN, ACK-of-FIN, FIN, ACK-of-FIN = 7 segments.
	if got := n.Packets(); got != 7 {
		t.Fatalf("lifecycle used %d packets, want 7", got)
	}
}

func TestRequestResponsePacketCount(t *testing.T) {
	// A single small HTTP/1.0-style exchange where the server closes:
	// the paper's revalidation profile is ~8 packets per connection.
	s, n, client, server := testNet(t, fastCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				c.Write(make([]byte, 200)) // response headers
				c.Close()                  // HTTP/1.0 server closes after response
			},
		}
	})
	done := false
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect:   func(c *Conn) { c.Write(make([]byte, 150)) },
		PeerClose: func(c *Conn) { done = true; c.CloseWrite() },
	})
	s.Run()
	if !done {
		t.Fatal("client never got the response EOF")
	}
	got := n.Packets()
	if got < 7 || got > 9 {
		t.Fatalf("exchange used %d packets, want 7..9", got)
	}
}

func TestStateProgression(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	var srvConn *Conn
	server.Listen(80, Options{}, func(c *Conn) Handler {
		srvConn = c
		return &Callbacks{PeerClose: func(c *Conn) { c.CloseWrite() }}
	})
	cli := client.Dial("server", 80, Options{}, &Callbacks{})
	if cli.State() != StateSynSent {
		t.Fatalf("dial state = %v, want SYN_SENT", cli.State())
	}
	s.RunFor(10 * time.Millisecond)
	if cli.State() != StateEstablished || srvConn.State() != StateEstablished {
		t.Fatalf("states after handshake: %v / %v", cli.State(), srvConn.State())
	}
	cli.CloseWrite()
	s.Run()
	if cli.State() != StateClosed {
		t.Fatalf("client final state = %v, want CLOSED", cli.State())
	}
	if srvConn.State() != StateClosed {
		t.Fatalf("server final state = %v, want CLOSED", srvConn.State())
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	s, _, client, server := testNet(t, wanCfg())
	const size = 200_000
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				c.Write(payload)
				c.CloseWrite()
			},
		}
	})
	var got []byte
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect:   func(c *Conn) { c.Write([]byte("GET")) },
		Data:      func(c *Conn, d []byte) { got = append(got, d...) },
		PeerClose: func(c *Conn) { c.CloseWrite() },
	})
	s.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", len(got), size)
	}
}

func TestSlowStartGrowsCwnd(t *testing.T) {
	s, _, client, server := testNet(t, wanCfg())
	var srvConn *Conn
	server.Listen(80, Options{}, func(c *Conn) Handler {
		srvConn = c
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				c.Write(make([]byte, 100_000))
				c.CloseWrite()
			},
		}
	})
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect:   func(c *Conn) { c.Write([]byte("GET")) },
		PeerClose: func(c *Conn) { c.CloseWrite() },
	})
	s.Run()
	if srvConn.Cwnd() <= 2*1460 {
		t.Fatalf("cwnd = %d after 100KB, want growth beyond initial %d", srvConn.Cwnd(), 2*1460)
	}
}

func TestSlowStartPacesTransfer(t *testing.T) {
	// On a high-latency link, a 64-segment response needs ~5-6 RTT-spaced
	// window doublings from IW=2: 2,4,8,16,32,64.
	s, _, client, server := testNet(t, netem.Config{
		BitsPerSecond:    100_000_000, // so serialization is negligible
		PropagationDelay: 50 * time.Millisecond,
		MTU:              1500,
	})
	size := 64 * 1460
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				c.Write(make([]byte, size))
				c.CloseWrite()
			},
		}
	})
	var done sim.Time
	var start sim.Time
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			start = s.Now()
			c.Write([]byte("GET"))
		},
		PeerClose: func(c *Conn) {
			done = s.Now()
			c.CloseWrite()
		},
	})
	s.Run()
	elapsed := done.Sub(start)
	rtt := 100 * time.Millisecond
	// Request RTT + window-growth rounds. With ACKs every other segment,
	// cwnd grows by one MSS per ACK, so growth is ~1.5x per round and a
	// 64-segment response needs ~8 rounds from IW=2 (the classic
	// delayed-ACK slow-start tax). Anything inside 5..9 RTT is sane;
	// a bandwidth-bound or stalled transfer would fall far outside.
	if elapsed < 5*rtt || elapsed > 9*rtt {
		t.Fatalf("64-segment transfer took %v, want ~8 RTT", elapsed)
	}
}

func TestNagleHoldsSecondSmallWrite(t *testing.T) {
	s, n, client, server := testNet(t, wanCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	var dataSegs []sim.Time
	n.PacketHook = func(ev PacketEvent) {
		if len(ev.Seg.Payload) > 0 {
			dataSegs = append(dataSegs, ev.Time)
		}
	}
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(make([]byte, 100))
			c.Write(make([]byte, 100)) // should be Nagle-delayed until ACK
		},
	})
	s.RunFor(2 * time.Second)
	if len(dataSegs) != 2 {
		t.Fatalf("saw %d data segments, want 2", len(dataSegs))
	}
	gap := dataSegs[1].Sub(dataSegs[0])
	if gap < 90*time.Millisecond {
		t.Fatalf("second small segment went out after %v; Nagle should hold it ~1 RTT", gap)
	}
}

func TestNoDelayDisablesNagle(t *testing.T) {
	s, n, client, server := testNet(t, wanCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	var dataSegs []sim.Time
	n.PacketHook = func(ev PacketEvent) {
		if len(ev.Seg.Payload) > 0 {
			dataSegs = append(dataSegs, ev.Time)
		}
	}
	client.Dial("server", 80, Options{NoDelay: true}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(make([]byte, 100))
			c.Write(make([]byte, 100))
		},
	})
	s.RunFor(2 * time.Second)
	if len(dataSegs) != 2 {
		t.Fatalf("saw %d data segments, want 2", len(dataSegs))
	}
	if gap := dataSegs[1].Sub(dataSegs[0]); gap > 10*time.Millisecond {
		t.Fatalf("TCP_NODELAY second segment delayed %v, want immediate", gap)
	}
}

func TestDelayedAckHeartbeat(t *testing.T) {
	s, n, client, server := testNet(t, fastCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	var pureAcks []sim.Time
	var dataAt sim.Time
	n.PacketHook = func(ev PacketEvent) {
		if len(ev.Seg.Payload) > 0 && ev.Seg.From.Host == "client" {
			dataAt = ev.Time
		}
		if len(ev.Seg.Payload) == 0 && ev.Seg.Flags == FlagACK && ev.Seg.From.Host == "server" && dataAt > 0 {
			pureAcks = append(pureAcks, ev.Time)
		}
	}
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.Write(make([]byte, 100)) },
	})
	s.RunFor(time.Second)
	if len(pureAcks) != 1 {
		t.Fatalf("saw %d pure ACKs for one segment, want 1 (delayed)", len(pureAcks))
	}
	delay := pureAcks[0].Sub(dataAt)
	if delay < time.Millisecond || delay > 200*time.Millisecond {
		t.Fatalf("delayed ACK after %v, want within (0, 200ms]", delay)
	}
	// Heartbeat style: fires on a 200ms boundary.
	if pureAcks[0]%sim.Time(200*time.Millisecond) != 0 {
		t.Fatalf("delayed ACK at %v, want a 200ms boundary", pureAcks[0])
	}
}

func TestAckEverySecondSegmentImmediate(t *testing.T) {
	s, n, client, server := testNet(t, fastCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	var ackAt, secondDataAt sim.Time
	dataCount := 0
	n.PacketHook = func(ev PacketEvent) {
		if len(ev.Seg.Payload) > 0 && ev.Seg.From.Host == "client" {
			dataCount++
			if dataCount == 2 {
				secondDataAt = ev.Time
			}
		}
		if len(ev.Seg.Payload) == 0 && ev.Seg.From.Host == "server" && dataCount == 2 && ackAt == 0 {
			ackAt = ev.Time
		}
	}
	client.Dial("server", 80, Options{NoDelay: true}, &Callbacks{
		Connect: func(c *Conn) { c.Write(make([]byte, 2*1460)) },
	})
	s.RunFor(time.Second)
	if ackAt == 0 {
		t.Fatal("no ACK after two segments")
	}
	if gap := ackAt.Sub(secondDataAt); gap > 5*time.Millisecond {
		t.Fatalf("ACK of 2nd segment delayed %v, want immediate", gap)
	}
}

func TestHalfCloseServerKeepsSending(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			PeerClose: func(c *Conn) {
				// Client closed its write half; we can still respond.
				c.Write([]byte("late response"))
				c.CloseWrite()
			},
		}
	})
	var got []byte
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.CloseWrite() },
		Data:    func(c *Conn, d []byte) { got = append(got, d...) },
	})
	s.Run()
	if string(got) != "late response" {
		t.Fatalf("got %q after half-close, want %q", got, "late response")
	}
}

func TestNaiveServerCloseResetsPipeline(t *testing.T) {
	// The paper's connection-management scenario: the server fully closes
	// (both halves) after serving some requests while the client still has
	// pipelined requests in flight. The late requests hit a closed port,
	// draw RST, and the client loses responses without knowing which.
	s, _, client, server := testNet(t, wanCfg())
	served := 0
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				for i := 0; i < len(d); i++ {
					if d[i] == '\n' {
						served++
						c.Write([]byte("response\n"))
						if served == 2 {
							c.Close() // naive: closes read side too
							return
						}
					}
				}
			},
		}
	})
	var clientErr error
	responses := 0
	cli := client.Dial("server", 80, Options{NoDelay: true}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write([]byte("req1\n"))
		},
		Data: func(c *Conn, d []byte) {
			for i := 0; i < len(d); i++ {
				if d[i] == '\n' {
					responses++
					if responses == 1 {
						// Pipeline more requests; some will arrive after
						// the server's close.
						c.Write([]byte("req2\n"))
						s.Schedule(300*time.Millisecond, func() {
							c.Write([]byte("req3\nreq4\n"))
						})
					}
				}
			}
		},
		Error: func(c *Conn, err error) { clientErr = err },
	})
	s.Run()
	if clientErr != ErrConnectionReset {
		t.Fatalf("client error = %v, want ErrConnectionReset", clientErr)
	}
	if responses >= 4 {
		t.Fatalf("client got %d responses; late ones should be lost", responses)
	}
	if cli.State() != StateClosed {
		t.Fatalf("client state = %v, want CLOSED", cli.State())
	}
}

func TestGracefulServerCloseNoReset(t *testing.T) {
	// Same scenario but the server only closes its write half and drains:
	// no RST, the client sees a clean EOF after the served responses.
	s, _, client, server := testNet(t, wanCfg())
	served := 0
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				for i := 0; i < len(d); i++ {
					if d[i] == '\n' {
						served++
						c.Write([]byte("response\n"))
						if served == 2 {
							c.CloseWrite() // graceful half close
						}
					}
				}
			},
		}
	})
	var clientErr error
	eof := false
	client.Dial("server", 80, Options{NoDelay: true}, &Callbacks{
		Connect: func(c *Conn) { c.Write([]byte("req1\nreq2\nreq3\n")) },
		PeerClose: func(c *Conn) {
			eof = true
			c.CloseWrite()
		},
		Error: func(c *Conn, err error) { clientErr = err },
	})
	s.Run()
	if clientErr != nil {
		t.Fatalf("unexpected client error: %v", clientErr)
	}
	if !eof {
		t.Fatal("client never saw EOF")
	}
}

func TestDialToClosedPortGetsReset(t *testing.T) {
	s, _, client, _ := testNet(t, fastCfg())
	var gotErr error
	client.Dial("server", 81, Options{}, &Callbacks{
		Error: func(c *Conn, err error) { gotErr = err },
	})
	s.Run()
	if gotErr != ErrConnectionReset {
		t.Fatalf("error = %v, want ErrConnectionReset", gotErr)
	}
}

func TestWriteAfterCloseErrors(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	echoServer(server, 80)
	var writeErr error
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			c.CloseWrite()
			writeErr = c.Write([]byte("x"))
		},
	})
	s.Run()
	if writeErr != ErrWriteAfterClose {
		t.Fatalf("Write after close = %v, want ErrWriteAfterClose", writeErr)
	}
}

func TestAbortSendsRST(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	var srvErr error
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{Error: func(c *Conn, err error) { srvErr = err }}
	})
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write([]byte("x"))
			c.Abort()
		},
	})
	s.Run()
	if srvErr != ErrConnectionReset {
		t.Fatalf("server error = %v, want ErrConnectionReset", srvErr)
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	cfg := wanCfg()
	drop := map[int]bool{5: true, 9: true}
	cfg.Loss = func(i, _ int) bool { return drop[i] }
	s, _, client, server := testNet(t, cfg)
	const size = 30_000
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{
			Data: func(c *Conn, d []byte) {
				c.Write(payload)
				c.CloseWrite()
			},
		}
	})
	var got []byte
	done := false
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect:   func(c *Conn) { c.Write([]byte("GET")) },
		Data:      func(c *Conn, d []byte) { got = append(got, d...) },
		PeerClose: func(c *Conn) { done = true; c.CloseWrite() },
	})
	s.Run()
	if !done {
		t.Fatal("transfer never completed under loss")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("corrupted transfer under loss: got %d bytes want %d", len(got), size)
	}
}

func TestSynLossRecovered(t *testing.T) {
	cfg := fastCfg()
	cfg.Loss = func(i, _ int) bool { return i == 0 } // drop the first SYN
	s, _, client, server := testNet(t, cfg)
	echoServer(server, 80)
	connected := false
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { connected = true; c.CloseWrite() },
	})
	s.Run()
	if !connected {
		t.Fatal("connection never established after SYN loss")
	}
}

func TestConnectionTimeoutAfterTotalLoss(t *testing.T) {
	cfg := fastCfg()
	cfg.Loss = func(i, _ int) bool { return true }
	s, _, client, _ := testNet(t, cfg)
	var gotErr error
	client.Dial("server", 80, Options{MaxRetries: 3}, &Callbacks{
		Error: func(c *Conn, err error) { gotErr = err },
	})
	s.Run()
	if gotErr != ErrTimeout {
		t.Fatalf("error = %v, want ErrTimeout", gotErr)
	}
}

func TestMSSSegmentation(t *testing.T) {
	s, n, client, server := testNet(t, fastCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	maxPayload := 0
	n.PacketHook = func(ev PacketEvent) {
		if len(ev.Seg.Payload) > maxPayload {
			maxPayload = len(ev.Seg.Payload)
		}
	}
	client.Dial("server", 80, Options{MSS: 536}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(make([]byte, 5000))
			c.CloseWrite()
		},
	})
	s.Run()
	if maxPayload != 536 {
		t.Fatalf("max segment payload = %d, want 536", maxPayload)
	}
}

func TestPeerWindowLimitsInFlight(t *testing.T) {
	s, _, client, server := testNet(t, netem.Config{PropagationDelay: 20 * time.Millisecond})
	var received int64
	server.Listen(80, Options{RecvWindow: 4096}, func(c *Conn) Handler {
		return &Callbacks{Data: func(c *Conn, d []byte) { received += int64(len(d)) }}
	})
	cli := client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(make([]byte, 100_000))
			c.CloseWrite()
		},
	})
	// After the first burst, in-flight bytes must not exceed the peer's
	// 4096-byte window.
	s.RunFor(30 * time.Millisecond)
	if got := cli.Unacked(); got > 4096+1 { // +1 for a FIN sequence slot
		t.Fatalf("in-flight %d bytes exceeds peer window 4096", got)
	}
	s.Run()
	if received != 100_000 {
		t.Fatalf("server received %d bytes, want 100000", received)
	}
}

func TestSegmentFlagsString(t *testing.T) {
	cases := []struct {
		f    Flags
		want string
	}{
		{FlagSYN, "S"},
		{FlagSYN | FlagACK, "S."},
		{FlagACK, "."},
		{FlagFIN | FlagACK, "F."},
		{FlagRST | FlagACK, "R."},
		{FlagPSH | FlagACK, "P."},
		{0, "-"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Flags(%b).String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestAddrAndStateString(t *testing.T) {
	a := Addr{Host: "h", Port: 80}
	if a.String() != "h:80" {
		t.Fatalf("Addr.String() = %q", a.String())
	}
	if StateEstablished.String() != "ESTABLISHED" {
		t.Fatalf("state name = %q", StateEstablished.String())
	}
	if State(99).String() != "State(99)" {
		t.Fatalf("unknown state = %q", State(99).String())
	}
}

func TestHostBookkeeping(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	echoServer(server, 80)
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.CloseWrite() },
	})
	s.Run()
	if client.Dials() != 1 {
		t.Fatalf("Dials = %d, want 1", client.Dials())
	}
	if client.OpenConns() != 0 || server.OpenConns() != 0 {
		t.Fatalf("open conns after teardown: client %d server %d", client.OpenConns(), server.OpenConns())
	}
}

func TestListenerCloseRefusesNewConns(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	l := server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	l.Close()
	var gotErr error
	client.Dial("server", 80, Options{}, &Callbacks{
		Error: func(c *Conn, err error) { gotErr = err },
	})
	s.Run()
	if gotErr != ErrConnectionReset {
		t.Fatalf("dial to closed listener: %v, want reset", gotErr)
	}
}

// Property: the byte stream delivered to the receiver is exactly the
// concatenation of the sender's writes, for arbitrary write sizing, with
// and without packet loss.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(chunks []uint16, lossEvery uint8) bool {
		var payload []byte
		for i, n := range chunks {
			chunk := make([]byte, int(n)%4096)
			for j := range chunk {
				chunk[j] = byte(i + j)
			}
			payload = append(payload, chunk...)
		}
		cfg := wanCfg()
		if lossEvery >= 5 {
			k := int(lossEvery)
			cfg.Loss = func(i, _ int) bool { return i%k == k-1 }
		}
		s := sim.New()
		s.SetEventLimit(10_000_000)
		n := NewNetwork(s)
		client := n.AddHost("client")
		server := n.AddHost("server")
		n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))

		var got []byte
		okEOF := false
		server.Listen(80, Options{}, func(c *Conn) Handler {
			return &Callbacks{
				Data:      func(c *Conn, d []byte) { got = append(got, d...) },
				PeerClose: func(c *Conn) { okEOF = true; c.CloseWrite() },
			}
		})
		client.Dial("server", 80, Options{}, &Callbacks{
			Connect: func(c *Conn) {
				off := 0
				for _, n := range chunks {
					size := int(n) % 4096
					c.Write(payload[off : off+size])
					off += size
				}
				c.CloseWrite()
			},
		})
		s.Run()
		return okEOF && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: total packets on the wire is at least the minimum required by
// the payload size and never absurdly larger in loss-free runs.
func TestPropertyPacketEconomy(t *testing.T) {
	f := func(kb uint8) bool {
		size := (int(kb)%64 + 1) * 1024
		s := sim.New()
		s.SetEventLimit(10_000_000)
		n := NewNetwork(s)
		client := n.AddHost("client")
		server := n.AddHost("server")
		cfg := wanCfg()
		n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))
		server.Listen(80, Options{}, func(c *Conn) Handler {
			return &Callbacks{Data: func(c *Conn, d []byte) {
				c.Write(make([]byte, size))
				c.CloseWrite()
			}}
		})
		done := false
		client.Dial("server", 80, Options{}, &Callbacks{
			Connect:   func(c *Conn) { c.Write([]byte("GET")) },
			PeerClose: func(c *Conn) { done = true; c.CloseWrite() },
		})
		s.Run()
		if !done {
			return false
		}
		minData := int64(size/1460) + 1
		total := n.Packets()
		// Data segments + handshake/teardown + ACKs; generous upper bound
		// is data*2 (ack every other) + 10.
		return total >= minData && total <= 2*minData+12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSRTTConvergesToPathRTT(t *testing.T) {
	s, _, client, server := testNet(t, wanCfg())
	echoServer(server, 80)
	var cli *Conn
	sent := 0
	var send func(c *Conn)
	send = func(c *Conn) {
		if sent >= 20 {
			c.CloseWrite()
			return
		}
		sent++
		c.Write(make([]byte, 64))
	}
	cli = client.Dial("server", 80, Options{NoDelay: true}, &Callbacks{
		Connect: func(c *Conn) { send(c) },
		Data:    func(c *Conn, d []byte) { send(c) },
	})
	s.Run()
	srtt := cli.SRTT()
	// Path RTT is 90ms + serialization; the estimator must land nearby.
	if srtt < 80*time.Millisecond || srtt > 150*time.Millisecond {
		t.Fatalf("SRTT = %v, want ≈90-120ms", srtt)
	}
}

func TestFastRetransmitBeatsRTO(t *testing.T) {
	// Drop one mid-stream data segment; three dup ACKs should trigger
	// recovery well before the 1s RTO.
	cfg := wanCfg()
	dropped := false
	cfg.Loss = func(i, wire int) bool {
		if !dropped && wire > 1000 && i > 6 {
			dropped = true
			return true
		}
		return false
	}
	s, n, client, server := testNet(t, cfg)
	const size = 60_000
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{Data: func(c *Conn, d []byte) {
			c.Write(make([]byte, size))
			c.CloseWrite()
		}}
	})
	var done sim.Time
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect:   func(c *Conn) { c.Write([]byte("GET")) },
		PeerClose: func(c *Conn) { done = s.Now(); c.CloseWrite() },
	})
	s.Run()
	if !dropped {
		t.Fatal("loss never injected")
	}
	retrans := 0
	_ = n
	if done == 0 {
		t.Fatal("transfer incomplete")
	}
	// Without fast retransmit the stall would be ≥1s (the min RTO); with
	// it, recovery adds roughly one extra RTT.
	if done > sim.Time(3*time.Second) {
		t.Fatalf("transfer took %v; fast retransmit did not engage", done)
	}
	_ = retrans
}

func TestSetNoDelayReleasesHeldSegment(t *testing.T) {
	s, n, client, server := testNet(t, wanCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	var dataTimes []sim.Time
	n.PacketHook = func(ev PacketEvent) {
		if len(ev.Seg.Payload) > 0 {
			dataTimes = append(dataTimes, ev.Time)
		}
	}
	var cli *Conn
	cli = client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(make([]byte, 100))
			c.Write(make([]byte, 100)) // held by Nagle
			s.Schedule(10*time.Millisecond, func() { cli.SetNoDelay(true) })
		},
	})
	s.RunFor(2 * time.Second)
	if len(dataTimes) != 2 {
		t.Fatalf("data segments = %d, want 2", len(dataTimes))
	}
	gap := dataTimes[1].Sub(dataTimes[0])
	if gap < 9*time.Millisecond || gap > 20*time.Millisecond {
		t.Fatalf("second segment after %v, want ≈10ms (released by SetNoDelay)", gap)
	}
}

func TestTimeWaitReAcksFin(t *testing.T) {
	// Drop the client's final ACK of the server FIN; the server
	// retransmits its FIN and the client, now in TIME_WAIT, must re-ACK.
	cfg := fastCfg()
	var finAcks int
	seen := 0
	cfg.Loss = func(i, wire int) bool {
		return false
	}
	s, n, client, server := testNet(t, cfg)
	n.PacketHook = func(ev PacketEvent) {
		if ev.Seg.Flags&FlagFIN != 0 {
			seen++
		}
		if ev.Seg.From.Host == "client" && ev.Seg.Flags == FlagACK && seen >= 2 {
			finAcks++
		}
	}
	server.Listen(80, Options{}, func(c *Conn) Handler {
		return &Callbacks{PeerClose: func(c *Conn) { c.CloseWrite() }}
	})
	client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.CloseWrite() },
	})
	s.Run()
	if finAcks == 0 {
		t.Fatal("no ACK of the server FIN observed")
	}
}

func TestBufferedSendAndUnackedAccounting(t *testing.T) {
	s, _, client, server := testNet(t, wanCfg())
	server.Listen(80, Options{}, func(c *Conn) Handler { return &Callbacks{} })
	var cli *Conn
	cli = client.Dial("server", 80, Options{NoDelay: true}, &Callbacks{
		Connect: func(c *Conn) {
			c.Write(make([]byte, 5000))
		},
	})
	// After the handshake (~90ms) but before the first data ACKs return
	// (~180ms), the initial window's worth of data is in flight.
	s.RunFor(120 * time.Millisecond)
	if got := cli.Unacked(); got < 2920 {
		t.Fatalf("Unacked = %d, want ≥ 2 segments in flight", got)
	}
	if cli.TotalWritten() != 5000 {
		t.Fatalf("TotalWritten = %d", cli.TotalWritten())
	}
	s.Run()
	if cli.Unacked() != 0 && cli.State() != StateClosed {
		// After the run everything is acknowledged.
		t.Fatalf("Unacked = %d at quiescence", cli.Unacked())
	}
}

func TestSegmentsSentReceivedCounters(t *testing.T) {
	s, _, client, server := testNet(t, fastCfg())
	echoServer(server, 80)
	var cli *Conn
	cli = client.Dial("server", 80, Options{}, &Callbacks{
		Connect: func(c *Conn) { c.Write([]byte("hello")); c.CloseWrite() },
	})
	s.Run()
	if cli.SegmentsSent() < 3 || cli.SegmentsReceived() < 3 {
		t.Fatalf("segment counters: sent %d rcvd %d", cli.SegmentsSent(), cli.SegmentsReceived())
	}
}
