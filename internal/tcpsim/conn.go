package tcpsim

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Conn is one endpoint of a simulated TCP connection.
type Conn struct {
	host    *Host
	local   Addr
	remote  Addr
	opts    Options
	handler Handler
	state   State
	obsID   obs.ConnID

	// Send side. sndBuf holds bytes from sequence sndBase upward:
	// unacknowledged bytes first, then not-yet-transmitted bytes.
	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	sndMax     uint32
	sndBase    uint32
	sndBuf     []byte
	cwnd       int
	ssthresh   int
	peerWnd    int
	finPending bool
	finSent    bool
	finSeq     uint32
	rtoTimer   sim.TimerHandle
	rto        sim.Duration
	retries    int
	dupAcks    int

	// RTT estimation (Jacobson/Karn).
	srtt, rttvar  sim.Duration
	rttSampling   bool
	rttSampleSeq  uint32
	rttSampleTime sim.Time

	writeClosed  bool
	totalWritten int64

	// Receive side.
	irs         uint32
	rcvNxt      uint32
	readClosed  bool
	peerFin     bool
	ackOwed     int
	delackTimer sim.TimerHandle
	totalRead   int64

	segsSent, segsRcvd int
	retransSegs        int
	rtoTimeouts        int
	err                error
	closeSignaled      bool
	timeWaitTimer      sim.TimerHandle

	// stallCause tracks the open obs.SendStall interval on this
	// connection (stallNone when the sender is flowing). Only ever set
	// while an event bus is attached, so the matching SendResume always
	// reaches the same bus.
	stallCause uint8
}

func newConn(h *Host, local, remote Addr, opts Options, handler Handler) *Conn {
	// Deterministic ISS derived from the endpoint tuple keeps traces
	// readable while remaining distinct per port pair.
	iss := uint32(1000 + local.Port*17 + remote.Port*13)
	c := &Conn{
		host:     h,
		local:    local,
		remote:   remote,
		opts:     opts,
		handler:  handler,
		state:    StateClosed,
		iss:      iss,
		sndUna:   iss,
		sndNxt:   iss,
		sndBase:  iss + 1,
		cwnd:     opts.InitialCwndSegments * opts.MSS,
		ssthresh: 65535,
		peerWnd:  opts.MSS, // until the peer advertises
		rto:      opts.InitialRTO,
	}
	if b := h.net.Obs; b != nil {
		c.obsID = b.ConnOpen(local.String(), remote.String())
		b.Cwnd(c.obsID, c.cwnd, c.ssthresh)
	}
	return c
}

func (c *Conn) key() connKey {
	return connKey{localPort: c.local.Port, remoteHost: c.remote.Host, remotePort: c.remote.Port}
}

// LocalAddr returns the local endpoint address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer endpoint address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// State returns the current TCP state.
func (c *Conn) State() State { return c.state }

// ObsID returns the connection's timeline identity (zero when the
// network has no observability bus attached).
func (c *Conn) ObsID() obs.ConnID { return c.obsID }

// setState transitions the TCP state, publishing the change to the
// network's observability bus when one is attached.
func (c *Conn) setState(s State) {
	if c.state == s {
		return
	}
	if b := c.host.net.Obs; b != nil {
		b.ConnState(c.obsID, int(c.state), int(s), s.String())
	}
	c.state = s
}

// setCwnd updates the congestion window, publishing the change.
func (c *Conn) setCwnd(v int) {
	if c.cwnd == v {
		return
	}
	c.cwnd = v
	if b := c.host.net.Obs; b != nil {
		b.Cwnd(c.obsID, c.cwnd, c.ssthresh)
	}
}

// Err returns the terminal error, if any.
func (c *Conn) Err() error { return c.err }

// Options returns the connection's effective options.
func (c *Conn) Options() Options { return c.opts }

// SetNoDelay enables or disables the Nagle algorithm at runtime.
func (c *Conn) SetNoDelay(v bool) {
	c.opts.NoDelay = v
	if v {
		c.trySend()
	}
}

// BufferedSend returns the number of bytes written but not yet transmitted.
func (c *Conn) BufferedSend() int {
	unsent := len(c.sndBuf) - int(c.sndNxt-c.sndBase)
	if c.finSent {
		// sndNxt includes the FIN sequence slot.
		unsent = len(c.sndBuf) - int(c.sndNxt-1-c.sndBase)
	}
	if unsent < 0 {
		return 0
	}
	return unsent
}

// Unacked returns the number of payload bytes sent but not acknowledged.
func (c *Conn) Unacked() int {
	n := int(c.sndNxt - c.sndUna)
	if n < 0 {
		return 0
	}
	return n
}

// TotalWritten returns the number of payload bytes the application wrote.
func (c *Conn) TotalWritten() int64 { return c.totalWritten }

// TotalRead returns the number of payload bytes delivered to the handler.
func (c *Conn) TotalRead() int64 { return c.totalRead }

// SegmentsSent returns the number of segments this endpoint transmitted.
func (c *Conn) SegmentsSent() int { return c.segsSent }

// SegmentsReceived returns the number of segments this endpoint received.
func (c *Conn) SegmentsReceived() int { return c.segsRcvd }

// Retransmissions returns the number of segments this endpoint sent more
// than once (go-back-N resends and timer retransmits).
func (c *Conn) Retransmissions() int { return c.retransSegs }

// RTOTimeouts returns the number of retransmission-timer expirations
// this endpoint has suffered (fast retransmits not included).
func (c *Conn) RTOTimeouts() int { return c.rtoTimeouts }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cwnd }

func (c *Conn) sim() *sim.Simulator { return c.host.net.Sim }

// --- application calls ---

// Write appends p to the send buffer and transmits as much as the windows
// and Nagle allow. It returns ErrWriteAfterClose after CloseWrite.
func (c *Conn) Write(p []byte) error {
	if c.writeClosed {
		return ErrWriteAfterClose
	}
	if c.state == StateClosed && c.err != nil {
		return c.err
	}
	c.sndBuf = append(c.sndBuf, p...)
	c.totalWritten += int64(len(p))
	c.trySend()
	return nil
}

// CloseWrite half-closes the sending direction: after all buffered data is
// transmitted a FIN is sent. Reading continues to work.
func (c *Conn) CloseWrite() {
	if c.writeClosed {
		return
	}
	c.writeClosed = true
	c.finPending = true
	c.trySend()
}

// CloseRead half-closes the receiving direction. Any data arriving
// afterwards is answered with RST, destroying the connection — the naive
// full close of both halves at once that the paper warns servers against.
func (c *Conn) CloseRead() {
	c.readClosed = true
}

// Close closes both directions at once (CloseWrite + CloseRead). A server
// that calls Close with pipelined requests still in flight will reset the
// connection when they arrive; use CloseWrite and drain instead.
func (c *Conn) Close() {
	c.CloseWrite()
	c.CloseRead()
}

// Abort sends RST and destroys the connection immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(FlagRST|FlagACK, c.sndNxt, nil, false)
	c.teardown(ErrConnectionAborted, false)
}

// --- connection establishment ---

// updateRTT folds one round-trip sample into the Jacobson estimator and
// recomputes the retransmission timeout.
func (c *Conn) updateRTT(sample sim.Duration) {
	if sample < 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := sample - c.srtt
		if diff < 0 {
			diff = -diff
		}
		c.rttvar += (diff - c.rttvar) / 4
		c.srtt += (sample - c.srtt) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.opts.MinRTO {
		rto = c.opts.MinRTO
	}
	if rto > c.opts.MaxRTO {
		rto = c.opts.MaxRTO
	}
	c.rto = rto
}

// SRTT returns the smoothed round-trip estimate (zero before the first
// sample).
func (c *Conn) SRTT() sim.Duration { return c.srtt }

// takeRTTSample closes the open RTT measurement if ack covers it.
func (c *Conn) takeRTTSample(ack uint32) {
	if c.rttSampling && seqLT(c.rttSampleSeq, ack) {
		c.rttSampling = false
		c.updateRTT(c.sim().Now().Sub(c.rttSampleTime))
	}
}

// bumpSndNxt advances the next-send sequence and records the high-water
// mark, which processAck uses to validate ACKs that arrive after a
// go-back-N rollback.
func (c *Conn) bumpSndNxt(to uint32) {
	c.sndNxt = to
	if seqLT(c.sndMax, to) {
		c.sndMax = to
	}
}

func (c *Conn) startConnect() {
	c.setState(StateSynSent)
	c.rttSampling = true
	c.rttSampleSeq = c.iss
	c.rttSampleTime = c.sim().Now()
	c.bumpSndNxt(c.iss + 1)
	c.sendRaw(Segment{
		From: c.local, To: c.remote,
		Seq: c.iss, Flags: FlagSYN, Wnd: c.opts.RecvWindow,
	}, false)
	c.armRTO()
}

func (c *Conn) onSynReceived(seg Segment) {
	c.setState(StateSynRcvd)
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	c.peerWnd = seg.Wnd
	c.segsRcvd++
	c.bumpSndNxt(c.iss + 1)
	c.sendRaw(Segment{
		From: c.local, To: c.remote,
		Seq: c.iss, Ack: c.rcvNxt, Flags: FlagSYN | FlagACK, Wnd: c.opts.RecvWindow,
	}, false)
	c.armRTO()
}

// --- segment processing ---

func (c *Conn) onSegment(seg Segment) {
	if c.state == StateClosed {
		return
	}
	c.segsRcvd++
	if seg.Flags&FlagRST != 0 {
		c.handleRST()
		return
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && seg.Ack == c.iss+1 {
			c.irs = seg.Seq
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.peerWnd = seg.Wnd
			c.stopRTO()
			c.retries = 0
			c.takeRTTSample(seg.Ack)
			c.setState(StateEstablished)
			// BSD behaviour: the handshake ACK goes out before the
			// application gets a chance to write.
			c.sendAck()
			if c.handler != nil {
				c.handler.OnConnect(c)
			}
			c.trySend()
		}
		return
	case StateSynRcvd:
		if seg.Flags&FlagACK != 0 && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.peerWnd = seg.Wnd
			c.stopRTO()
			c.retries = 0
			c.setState(StateEstablished)
			if c.handler != nil {
				c.handler.OnConnect(c)
			}
			// Fall through to process any piggybacked payload/FIN.
		} else {
			return
		}
	case StateTimeWait:
		// Re-ACK retransmitted FINs.
		if seg.Flags&FlagFIN != 0 {
			c.sendAck()
		}
		return
	}

	if seg.Flags&FlagACK != 0 {
		c.processAck(seg)
		if c.state == StateClosed {
			return
		}
	}
	if len(seg.Payload) > 0 {
		c.processData(seg)
		if c.state == StateClosed {
			return
		}
	}
	if seg.Flags&FlagFIN != 0 {
		c.processFin(seg)
	}
}

func (c *Conn) handleRST() {
	c.teardown(ErrConnectionReset, true)
}

func (c *Conn) processAck(seg Segment) {
	c.peerWnd = seg.Wnd
	ack := seg.Ack
	if !seqLT(c.sndUna, ack) || !seqLE(ack, c.sndMax) {
		// Duplicate ACK: three in a row trigger fast retransmit.
		if ack == c.sndUna && c.sndNxt != c.sndUna && len(seg.Payload) == 0 && seg.Flags&(FlagFIN|FlagSYN) == 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit()
			}
		}
		return
	}
	c.sndUna = ack
	c.retries = 0
	c.dupAcks = 0

	// RTT sample per Karn's rule: only segments never retransmitted.
	c.takeRTTSample(ack)

	// Trim acknowledged payload bytes from the send buffer.
	if seqLT(c.sndBase, ack) {
		trim := int(ack - c.sndBase)
		if trim > len(c.sndBuf) {
			trim = len(c.sndBuf) // FIN/SYN sequence slots
		}
		c.sndBuf = c.sndBuf[trim:]
		c.sndBase += uint32(trim)
	}

	if seqLT(c.sndNxt, ack) {
		// The ACK covers data beyond a go-back-N rollback point:
		// fast-forward rather than resending what the peer already has.
		c.sndNxt = ack
		if c.finPending && !c.finSent && int(c.sndNxt-c.sndBase) == len(c.sndBuf)+1 {
			// The rolled-back FIN is covered too: re-mark it sent.
			c.finSent = true
			c.finSeq = c.sndNxt - 1
			switch c.state {
			case StateEstablished:
				c.setState(StateFinWait1)
			case StateCloseWait:
				c.setState(StateLastAck)
			}
		}
	}

	// Congestion window growth.
	if c.cwnd < c.ssthresh {
		c.setCwnd(c.cwnd + c.opts.MSS) // slow start
	} else {
		inc := c.opts.MSS * c.opts.MSS / c.cwnd
		if inc < 1 {
			inc = 1
		}
		c.setCwnd(c.cwnd + inc) // congestion avoidance
	}

	if c.sndUna == c.sndNxt {
		c.stopRTO()
	} else {
		c.armRTO()
	}

	finAcked := c.finSent && seqLT(c.finSeq, ack)
	switch c.state {
	case StateFinWait1:
		if finAcked {
			c.setState(StateFinWait2)
		}
	case StateClosing:
		if finAcked {
			c.enterTimeWait()
			return
		}
	case StateLastAck:
		if finAcked {
			c.teardown(nil, false)
			return
		}
	}
	c.trySend()
}

func (c *Conn) processData(seg Segment) {
	switch c.state {
	case StateEstablished, StateFinWait1, StateFinWait2:
	default:
		return // peer already sent FIN; ignore spurious data
	}
	if c.readClosed {
		// Data for a closed receive side: reset the connection. The
		// sender's in-flight data — and anything it cannot distinguish —
		// is lost. This reproduces the paper's early-close scenario.
		c.sendSegment(FlagRST|FlagACK, c.sndNxt, nil, false)
		c.teardown(ErrConnectionReset, false)
		return
	}
	if seg.Seq != c.rcvNxt {
		// Out of order or duplicate: immediate ACK, drop payload.
		c.sendAck()
		return
	}
	c.rcvNxt += uint32(len(seg.Payload))
	c.totalRead += int64(len(seg.Payload))
	c.ackOwed++
	if c.handler != nil {
		// seg.Payload aliases the sender's buffer; OnData's contract says
		// the slice is transient, so no defensive copy is needed here.
		c.handler.OnData(c, seg.Payload)
	}
	if c.state == StateClosed {
		return // handler aborted
	}
	// The handler may have written data, piggybacking our ACK.
	if c.ackOwed == 0 {
		return
	}
	if c.ackOwed >= c.opts.AckEvery {
		c.sendAck()
		return
	}
	c.armDelack()
}

func (c *Conn) processFin(seg Segment) {
	finSeq := seg.Seq + uint32(len(seg.Payload))
	if finSeq != c.rcvNxt {
		c.sendAck() // out-of-order FIN
		return
	}
	if c.peerFin {
		return
	}
	c.peerFin = true
	c.rcvNxt++
	c.sendAck()
	if c.handler != nil {
		c.handler.OnPeerClose(c)
	}
	if c.state == StateClosed {
		return
	}
	switch c.state {
	case StateEstablished:
		c.setState(StateCloseWait)
	case StateFinWait1:
		if c.finSent && seqLT(c.finSeq, c.sndUna) {
			c.enterTimeWait()
		} else {
			c.setState(StateClosing)
		}
	case StateFinWait2:
		c.enterTimeWait()
	}
}

// --- transmission ---

// trySend transmits buffered data subject to the congestion and peer
// windows, MSS segmentation, and the Nagle algorithm, and finally the FIN
// if the write side is closed and the buffer drained.
func (c *Conn) trySend() {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateLastAck, StateClosing:
	default:
		return
	}
	for !c.finSent {
		offset := int(c.sndNxt - c.sndBase)
		if offset < 0 || offset > len(c.sndBuf) {
			break
		}
		pending := len(c.sndBuf) - offset
		if pending <= 0 {
			break
		}
		wnd := c.cwnd
		if c.peerWnd < wnd {
			wnd = c.peerWnd
		}
		avail := wnd - int(c.sndNxt-c.sndUna)
		if avail <= 0 {
			if b := c.host.net.Obs; b != nil {
				cause := stallCwnd
				if c.peerWnd < c.cwnd {
					cause = stallRwnd
				}
				c.noteStall(b, cause, pending)
			}
			break
		}
		n := pending
		if n > c.opts.MSS {
			n = c.opts.MSS
		}
		if n > avail {
			n = avail
		}
		last := offset+n == len(c.sndBuf)
		if n < c.opts.MSS && c.sndNxt != c.sndUna && !c.opts.NoDelay && !(c.finPending && last) {
			// Nagle: a small segment waits while data is outstanding.
			if b := c.host.net.Obs; b != nil {
				b.NagleHold(c.obsID, pending)
				c.noteStall(b, stallNagle, pending)
			}
			break
		}
		// Zero-copy: the segment aliases sndBuf. Safe because sndBuf is
		// only ever trimmed from the front (a reslice) and appended at the
		// absolute end of the backing array, so an in-flight range is
		// never overwritten. The full-capacity slice keeps appends from
		// sharing spare capacity with the segment.
		payload := c.sndBuf[offset : offset+n : offset+n]
		flags := FlagACK
		if last {
			flags |= FlagPSH
		}
		fin := c.finPending && last
		if fin {
			flags |= FlagFIN
		}
		c.noteResume()
		retrans := seqLT(c.sndNxt, c.sndMax)
		if !retrans && !c.rttSampling {
			c.rttSampling = true
			c.rttSampleSeq = c.sndNxt
			c.rttSampleTime = c.sim().Now()
		}
		c.sendSegment(flags, c.sndNxt, payload, retrans)
		c.bumpSndNxt(c.sndNxt + uint32(n))
		if fin {
			c.markFinSent()
		}
		c.armRTO()
	}
	// Bare FIN when the buffer is fully transmitted.
	if c.finPending && !c.finSent && int(c.sndNxt-c.sndBase) >= len(c.sndBuf) {
		c.noteResume()
		c.sendSegment(FlagFIN|FlagACK, c.sndNxt, nil, false)
		c.markFinSent()
		c.armRTO()
	}
}

// Send-stall causes, in obs.SendStall Note vocabulary.
const (
	stallNone  uint8 = iota
	stallNagle       // Nagle: small segment held behind unacked data
	stallCwnd        // congestion window exhausted
	stallRwnd        // peer receive window exhausted
)

var stallCauseNames = [...]string{"", "nagle", "cwnd", "rwnd"}

// noteStall opens (or re-labels) the connection's send-stall interval.
// Edge-triggered: repeated attempts blocked for the same cause publish
// nothing, so event volume stays proportional to state transitions.
func (c *Conn) noteStall(b *obs.Bus, cause uint8, pending int) {
	if c.stallCause == cause {
		return
	}
	if c.stallCause != stallNone {
		b.SendResume(c.obsID)
	}
	c.stallCause = cause
	b.SendStall(c.obsID, stallCauseNames[cause], pending)
}

// noteResume closes the open send-stall interval, if any, just before
// the sender transmits again.
func (c *Conn) noteResume() {
	if c.stallCause == stallNone {
		return
	}
	c.stallCause = stallNone
	if b := c.host.net.Obs; b != nil {
		b.SendResume(c.obsID)
	}
}

func (c *Conn) markFinSent() {
	c.finSent = true
	c.finSeq = c.sndNxt
	c.bumpSndNxt(c.sndNxt + 1)
	switch c.state {
	case StateEstablished:
		c.setState(StateFinWait1)
	case StateCloseWait:
		c.setState(StateLastAck)
	}
}

func (c *Conn) sendSegment(flags Flags, seq uint32, payload []byte, retrans bool) {
	c.sendRaw(Segment{
		From: c.local, To: c.remote,
		Seq: seq, Ack: c.rcvNxt, Flags: flags,
		Wnd: c.opts.RecvWindow, Payload: payload,
	}, retrans)
	// Every segment we send carries our current ACK.
	c.clearAckOwed()
}

func (c *Conn) sendRaw(seg Segment, retrans bool) {
	c.segsSent++
	if retrans {
		c.retransSegs++
		if b := c.host.net.Obs; b != nil {
			b.Retransmit(c.obsID, seg.Seq, len(seg.Payload))
		}
	}
	c.host.net.transmit(seg, retrans)
}

func (c *Conn) sendAck() {
	c.sendSegment(FlagACK, c.sndNxt, nil, false)
}

func (c *Conn) clearAckOwed() {
	c.ackOwed = 0
	c.delackTimer.Stop()
}

// Package-level timer thunks: scheduling these with the connection as
// the boxed argument keeps the timer hot path allocation-free (a method
// value or closure would allocate per arm).
func connDelack(a any)   { a.(*Conn).onDelack() }
func connRTO(a any)      { a.(*Conn).onRTO() }
func connTimeWait(a any) { a.(*Conn).teardown(nil, false) }

// armDelack schedules a pure ACK at the next delayed-ACK heartbeat
// boundary, mimicking the BSD 200ms fast timer.
func (c *Conn) armDelack() {
	if c.delackTimer.Active() {
		return
	}
	interval := sim.Time(c.opts.DelAckInterval)
	now := c.sim().Now()
	next := (now/interval + 1) * interval
	c.delackTimer = c.sim().AtArg(next, connDelack, c)
}

func (c *Conn) onDelack() {
	if c.ackOwed > 0 && c.state != StateClosed {
		c.sendAck()
	}
}

// --- retransmission ---

func (c *Conn) armRTO() {
	// Rescheduling the live timer and re-arming a fired/stopped one both
	// consume exactly one sequence number, mirroring the old
	// stop-then-schedule pair, so event ordering is unchanged.
	if !c.rtoTimer.Reschedule(c.rto) {
		c.rtoTimer = c.sim().ScheduleArg(c.rto, connRTO, c)
	}
}

func (c *Conn) stopRTO() {
	c.rtoTimer.Stop()
}

func (c *Conn) onRTO() {
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	c.rtoTimeouts++
	c.host.net.rtoTimeouts++
	c.retries++
	if b := c.host.net.Obs; b != nil {
		b.RTOFire(c.obsID, c.rto, c.retries)
	}
	if c.retries > c.opts.MaxRetries {
		c.teardown(ErrTimeout, true)
		return
	}
	c.rto *= 2
	if c.rto > c.opts.MaxRTO {
		c.rto = c.opts.MaxRTO
	}

	switch c.state {
	case StateSynSent:
		c.sendRaw(Segment{
			From: c.local, To: c.remote,
			Seq: c.iss, Flags: FlagSYN, Wnd: c.opts.RecvWindow,
		}, true)
		c.armRTO()
		return
	case StateSynRcvd:
		c.sendRaw(Segment{
			From: c.local, To: c.remote,
			Seq: c.iss, Ack: c.rcvNxt, Flags: FlagSYN | FlagACK, Wnd: c.opts.RecvWindow,
		}, true)
		c.armRTO()
		return
	}

	c.goBackN(c.opts.MSS)
	c.armRTO()
}

// fastRetransmit reacts to three duplicate ACKs without waiting for the
// retransmission timer (a go-back-N approximation of Reno fast recovery;
// the receiver does not buffer out-of-order data, so everything past the
// hole must be resent anyway).
func (c *Conn) fastRetransmit() {
	c.goBackN(c.ssthreshAfterLoss())
	c.armRTO()
}

func (c *Conn) ssthreshAfterLoss() int {
	inflight := int(c.sndNxt - c.sndUna)
	half := inflight / 2
	if half < 2*c.opts.MSS {
		half = 2 * c.opts.MSS
	}
	return half
}

// goBackN performs multiplicative decrease and rewinds transmission to the
// first unacknowledged byte.
func (c *Conn) goBackN(newCwnd int) {
	c.ssthresh = c.ssthreshAfterLoss()
	c.setCwnd(newCwnd)
	c.rttSampling = false // Karn's rule

	c.sndNxt = c.sndUna
	if c.finSent && !seqLT(c.finSeq, c.sndNxt) {
		// The FIN itself must be retransmitted by trySend.
		c.finSent = false
		// Reverse the state transition taken when the FIN first went out.
		switch c.state {
		case StateFinWait1, StateClosing:
			c.setState(StateEstablished)
		case StateLastAck:
			c.setState(StateCloseWait)
		}
	}
	c.trySend()
}

// --- teardown ---

func (c *Conn) enterTimeWait() {
	c.setState(StateTimeWait)
	c.stopRTO()
	c.timeWaitTimer = c.sim().ScheduleArg(c.opts.TimeWait, connTimeWait, c)
}

func (c *Conn) teardown(err error, notifyErr bool) {
	if c.state == StateClosed {
		return
	}
	c.setState(StateClosed)
	c.err = err
	c.stopRTO()
	c.delackTimer.Stop()
	c.timeWaitTimer.Stop()
	c.host.removeConn(c)
	if c.handler != nil {
		if err != nil && notifyErr {
			c.handler.OnError(c, err)
		}
		if !c.closeSignaled {
			c.closeSignaled = true
			c.handler.OnClose(c)
		}
	}
}
