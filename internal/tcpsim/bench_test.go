package tcpsim

import (
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// BenchmarkTransfer200KB measures simulator throughput for one WAN
// request/response conversation moving 200 KB.
func BenchmarkTransfer200KB(b *testing.B) {
	payload := make([]byte, 200_000)
	for i := 0; i < b.N; i++ {
		s := sim.New()
		n := NewNetwork(s)
		client := n.AddHost("client")
		server := n.AddHost("server")
		cfg := wanCfg()
		n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))
		server.Listen(80, Options{}, func(c *Conn) Handler {
			return &Callbacks{Data: func(c *Conn, d []byte) {
				c.Write(payload)
				c.CloseWrite()
			}}
		})
		done := false
		client.Dial("server", 80, Options{}, &Callbacks{
			Connect:   func(c *Conn) { c.Write([]byte("GET")) },
			PeerClose: func(c *Conn) { done = true; c.CloseWrite() },
		})
		s.Run()
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(200_000)
}
