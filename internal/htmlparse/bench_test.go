package htmlparse

import (
	"strings"
	"testing"
)

var benchPage = []byte(strings.Repeat(
	`<tr><td align=center><a href="/x.html"><img src="/images/i.gif" width=90 height=30 border=0></a>`+
		`<font size=2 face="arial">some nav text</font></td></tr>`, 300))

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		var z Tokenizer
		z.Feed(benchPage)
	}
}

func BenchmarkLinkExtraction(b *testing.B) {
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		var e LinkExtractor
		e.Feed(benchPage)
	}
}
