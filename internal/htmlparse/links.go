package htmlparse

// LinkKind classifies an embedded or referenced resource.
type LinkKind int

// Link kinds.
const (
	// Inline resources, fetched automatically by a browser:
	LinkImage      LinkKind = iota // <img src>, <input type=image src>
	LinkBackground                 // <body background>
	LinkStylesheet                 // <link rel=stylesheet href>
	LinkScript                     // <script src>
	LinkFrame                      // <frame src>, <iframe src>
	// Navigational, fetched on user action:
	LinkAnchor // <a href>
)

// String names the kind.
func (k LinkKind) String() string {
	switch k {
	case LinkImage:
		return "image"
	case LinkBackground:
		return "background"
	case LinkStylesheet:
		return "stylesheet"
	case LinkScript:
		return "script"
	case LinkFrame:
		return "frame"
	case LinkAnchor:
		return "anchor"
	}
	return "unknown"
}

// Inline reports whether a browser fetches this kind automatically while
// rendering the page.
func (k LinkKind) Inline() bool { return k != LinkAnchor }

// Link is one discovered reference.
type Link struct {
	URL  string
	Kind LinkKind
}

// LinkExtractor finds resource references in a streamed HTML document.
// Duplicate URLs of the same kind are reported once, like a browser's
// fetch queue.
type LinkExtractor struct {
	tok  Tokenizer
	seen map[string]bool
}

// Feed consumes HTML bytes and returns newly discovered links in document
// order.
func (e *LinkExtractor) Feed(data []byte) []Link {
	var out []Link
	for _, t := range e.tok.Feed(data) {
		out = e.extract(t, out)
	}
	return out
}

func (e *LinkExtractor) extract(t Token, out []Link) []Link {
	if t.Type != StartTag {
		return out
	}
	add := func(url string, kind LinkKind) []Link {
		if url == "" {
			return out
		}
		if e.seen == nil {
			e.seen = make(map[string]bool)
		}
		key := kind.String() + "|" + url
		if e.seen[key] {
			return out
		}
		e.seen[key] = true
		return append(out, Link{URL: url, Kind: kind})
	}
	switch t.Data {
	case "img":
		if src, ok := t.Attr("src"); ok {
			out = add(src, LinkImage)
		}
	case "input":
		if typ, _ := t.Attr("type"); typ == "image" {
			if src, ok := t.Attr("src"); ok {
				out = add(src, LinkImage)
			}
		}
	case "body":
		if bg, ok := t.Attr("background"); ok {
			out = add(bg, LinkBackground)
		}
	case "link":
		rel, _ := t.Attr("rel")
		if equalFold(rel, "stylesheet") {
			if href, ok := t.Attr("href"); ok {
				out = add(href, LinkStylesheet)
			}
		}
	case "script":
		if src, ok := t.Attr("src"); ok {
			out = add(src, LinkScript)
		}
	case "frame", "iframe":
		if src, ok := t.Attr("src"); ok {
			out = add(src, LinkFrame)
		}
	case "a":
		if href, ok := t.Attr("href"); ok {
			out = add(href, LinkAnchor)
		}
	}
	return out
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}
