package htmlparse

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func tokenizeAll(t *testing.T, html string) []Token {
	t.Helper()
	var z Tokenizer
	toks := z.Feed([]byte(html))
	return append(toks, z.Flush()...)
}

func TestBasicTokens(t *testing.T) {
	toks := tokenizeAll(t, `<HTML><BODY bgcolor="#ffffff">Hello<!-- c --><BR>bye</BODY></HTML>`)
	var kinds []TokenType
	for _, tok := range toks {
		kinds = append(kinds, tok.Type)
	}
	want := []TokenType{StartTag, StartTag, Text, Comment, StartTag, Text, EndTag, EndTag}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d type %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[0].Data != "html" {
		t.Fatalf("tag name %q not lower-cased", toks[0].Data)
	}
	if v, ok := toks[1].Attr("bgcolor"); !ok || v != "#ffffff" {
		t.Fatalf("bgcolor attr = %q, %v", v, ok)
	}
}

func TestAttributeForms(t *testing.T) {
	toks := tokenizeAll(t, `<img SRC=/images/a.gif WIDTH=90 height="30" alt='a b' ismap>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	cases := map[string]string{"src": "/images/a.gif", "width": "90", "height": "30", "alt": "a b"}
	for name, want := range cases {
		if v, ok := tok.Attr(name); !ok || v != want {
			t.Errorf("attr %s = %q (%v), want %q", name, v, ok, want)
		}
	}
	if _, ok := tok.Attr("ismap"); !ok {
		t.Error("boolean attribute lost")
	}
}

func TestQuotedGreaterThan(t *testing.T) {
	toks := tokenizeAll(t, `<a href="x?a>b">link</a>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	if v, _ := toks[0].Attr("href"); v != "x?a>b" {
		t.Fatalf("href = %q, quoted '>' mishandled", v)
	}
}

func TestDeclAndComment(t *testing.T) {
	toks := tokenizeAll(t, `<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 3.2//EN"><!-- hidden <img src=x.gif> -->text`)
	if toks[0].Type != Decl {
		t.Fatalf("first token %v, want Decl", toks[0].Type)
	}
	if toks[1].Type != Comment || !strings.Contains(toks[1].Data, "img") {
		t.Fatalf("comment mishandled: %+v", toks[1])
	}
	if toks[2].Type != Text || toks[2].Data != "text" {
		t.Fatalf("trailing text mishandled: %+v", toks[2])
	}
}

func TestIncrementalAnySplit(t *testing.T) {
	html := `<html><head><title>T</title></head><body background="/bg.gif">` +
		`<img src="/images/img1.gif" width=10><p>para one</p>` +
		`<IMG SRC='/images/img2.gif'><a href="/next.html">go</a></body></html>`
	whole := tokenizeAll(t, html)
	for _, chunk := range []int{1, 3, 7, 16} {
		var z Tokenizer
		var got []Token
		for off := 0; off < len(html); off += chunk {
			end := off + chunk
			if end > len(html) {
				end = len(html)
			}
			got = append(got, z.Feed([]byte(html[off:end]))...)
		}
		got = append(got, z.Flush()...)
		// Text tokens may split differently; compare tag streams.
		tags := func(toks []Token) []string {
			var out []string
			for _, tok := range toks {
				if tok.Type == StartTag || tok.Type == EndTag {
					out = append(out, fmt.Sprintf("%d:%s", tok.Type, tok.Data))
				}
			}
			return out
		}
		a, b := tags(whole), tags(got)
		if len(a) != len(b) {
			t.Fatalf("chunk %d: %d tags vs %d", chunk, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("chunk %d: tag %d = %s, want %s", chunk, i, b[i], a[i])
			}
		}
	}
}

func TestLinkExtractorKinds(t *testing.T) {
	html := `<html><head>
	<link rel="STYLESHEET" href="/style.css">
	<script src="/app.js"></script>
	</head><body background="/bg.gif">
	<img src="/images/a.gif"><img src="/images/b.gif">
	<input type=image src="/images/submit.gif">
	<iframe src="/inner.html"></iframe>
	<a href="/away.html">x</a>
	</body></html>`
	var e LinkExtractor
	links := e.Feed([]byte(html))
	byKind := map[LinkKind][]string{}
	for _, l := range links {
		byKind[l.Kind] = append(byKind[l.Kind], l.URL)
	}
	if got := byKind[LinkImage]; len(got) != 3 {
		t.Fatalf("images = %v, want 3", got)
	}
	if got := byKind[LinkStylesheet]; len(got) != 1 || got[0] != "/style.css" {
		t.Fatalf("stylesheets = %v", got)
	}
	if got := byKind[LinkScript]; len(got) != 1 {
		t.Fatalf("scripts = %v", got)
	}
	if got := byKind[LinkBackground]; len(got) != 1 {
		t.Fatalf("backgrounds = %v", got)
	}
	if got := byKind[LinkFrame]; len(got) != 1 {
		t.Fatalf("frames = %v", got)
	}
	if got := byKind[LinkAnchor]; len(got) != 1 {
		t.Fatalf("anchors = %v", got)
	}
	if LinkAnchor.Inline() {
		t.Fatal("anchors must not be inline")
	}
	if !LinkImage.Inline() {
		t.Fatal("images must be inline")
	}
}

func TestLinkExtractorDeduplicates(t *testing.T) {
	html := strings.Repeat(`<img src="/images/bullet.gif">`, 10)
	var e LinkExtractor
	links := e.Feed([]byte(html))
	if len(links) != 1 {
		t.Fatalf("got %d links for repeated image, want 1", len(links))
	}
}

func TestLinkExtractorIncremental(t *testing.T) {
	// Simulates the paper's scenario: links become available as segments
	// arrive, before the document is complete.
	html := `<html><body><img src="/images/one.gif"><img src="/images/two.gif">` +
		strings.Repeat("<p>filler</p>", 100) +
		`<img src="/images/three.gif"></body></html>`
	var e LinkExtractor
	first := e.Feed([]byte(html[:60]))
	if len(first) != 1 || first[0].URL != "/images/one.gif" {
		t.Fatalf("first chunk links = %v, want just one.gif", first)
	}
	rest := e.Feed([]byte(html[60:]))
	if len(rest) != 2 {
		t.Fatalf("rest links = %v, want two more", rest)
	}
}

func TestLinkKindStrings(t *testing.T) {
	for k := LinkImage; k <= LinkAnchor; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if LinkKind(99).String() != "unknown" {
		t.Error("unknown kind misnamed")
	}
}

// Property: the tokenizer never drops tag tokens regardless of chunking.
func TestPropertySplitInvariance(t *testing.T) {
	base := `<body><img src="/images/x.gif" alt="a"><table><tr><td>cell</td></tr></table><a href="/y">z</a></body>`
	wantTags := 0
	{
		var z Tokenizer
		for _, tok := range z.Feed([]byte(base)) {
			if tok.Type == StartTag || tok.Type == EndTag {
				wantTags++
			}
		}
	}
	f := func(seed uint16) bool {
		var z Tokenizer
		var count int
		s := int(seed)
		for off := 0; off < len(base); {
			n := s%13 + 1
			s = (s*31 + 7) % 104729
			if off+n > len(base) {
				n = len(base) - off
			}
			for _, tok := range z.Feed([]byte(base[off : off+n])) {
				if tok.Type == StartTag || tok.Type == EndTag {
					count++
				}
			}
			off += n
		}
		return count == wantTags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushEmitsTrailingText(t *testing.T) {
	var z Tokenizer
	if got := z.Feed([]byte("no tags here")); len(got) != 0 {
		t.Fatalf("text emitted early: %v", got)
	}
	toks := z.Flush()
	if len(toks) != 1 || toks[0].Data != "no tags here" {
		t.Fatalf("Flush = %v", toks)
	}
	if z.Flush() != nil {
		t.Fatal("second Flush not empty")
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"":                      "",
		"plain text":            "plain text",
		"a &amp; b":             "a & b",
		"&lt;tag&gt;":           "<tag>",
		"&quot;quoted&quot;":    `"quoted"`,
		"&#65;&#66;&#67;":       "ABC",
		"&#x41;&#X42;":          "AB",
		"caf&eacute;":           "café",
		"&unknown; stays":       "&unknown; stays",
		"&amp":                  "&amp", // unterminated
		"&;":                    "&;",
		"100&#37; &copy; 1997":  "100% © 1997",
		"x&#0;y":                "x&#0;y", // NUL rejected
		"deep &amp;amp; nested": "deep &amp; nested",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAttributeEntitiesDecoded(t *testing.T) {
	toks := tokenizeAll(t, `<a href="/search?q=x&amp;page=2">x</a>`)
	if v, _ := toks[0].Attr("href"); v != "/search?q=x&page=2" {
		t.Fatalf("href = %q, entities not decoded", v)
	}
}
