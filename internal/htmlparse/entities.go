package htmlparse

import "strings"

// namedEntities covers the HTML 3.2-era character entities that appear in
// markup of the period. Unknown entities are left untouched, as browsers
// of the era did.
var namedEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™',
	"middot": '·', "laquo": '«', "raquo": '»',
	"eacute": 'é', "egrave": 'è', "agrave": 'à', "ccedil": 'ç',
	"ouml": 'ö', "uuml": 'ü', "auml": 'ä', "szlig": 'ß',
}

// DecodeEntities resolves character references (&amp;, &#64;, &#x40;) in
// s. It is applied to attribute values by the tokenizer; callers can apply
// it to Text token data when they need character-level content.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:next])
			s = s[next:]
			continue
		}
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			s = s[1:]
			continue
		}
		name := s[1:semi]
		if r, ok := decodeEntityName(name); ok {
			b.WriteRune(r)
			s = s[semi+1:]
			continue
		}
		b.WriteByte('&')
		s = s[1:]
	}
	return b.String()
}

func decodeEntityName(name string) (rune, bool) {
	if name == "" {
		return 0, false
	}
	if name[0] == '#' {
		digits := name[1:]
		base := 10
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			base = 16
			digits = digits[1:]
		}
		if digits == "" {
			return 0, false
		}
		n := 0
		for _, c := range digits {
			var d int
			switch {
			case c >= '0' && c <= '9':
				d = int(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = int(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = int(c-'A') + 10
			default:
				return 0, false
			}
			n = n*base + d
			if n > 0x10ffff {
				return 0, false
			}
		}
		if n == 0 {
			return 0, false
		}
		return rune(n), true
	}
	r, ok := namedEntities[name]
	return r, ok
}
