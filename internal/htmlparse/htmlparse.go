// Package htmlparse is a streaming HTML tokenizer and embedded-link
// extractor. The simulated robot feeds it response bytes as they arrive
// from the network, discovering inline images incrementally — exactly the
// behaviour the paper analyses when it discusses how much of the first
// TCP segment's HTML is needed before a new batch of pipelined requests
// can be issued.
package htmlparse

import "strings"

// TokenType classifies a token.
type TokenType int

// Token types.
const (
	Text TokenType = iota
	StartTag
	EndTag
	Comment
	Decl // <!DOCTYPE ...> and other declarations
)

// Attr is one tag attribute. Name is lower-cased; Value is unescaped of
// surrounding quotes only.
type Attr struct {
	Name, Value string
}

// Token is one lexical HTML element.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-cased) or text/comment content
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Tokenizer incrementally tokenizes HTML. Feed may be called with any
// byte slicing; tokens are emitted as soon as they are complete.
type Tokenizer struct {
	buf []byte
}

// Feed appends data and returns the tokens completed by it.
func (z *Tokenizer) Feed(data []byte) []Token {
	z.buf = append(z.buf, data...)
	var out []Token
	for {
		tok, n, ok := z.next()
		if !ok {
			return out
		}
		z.buf = z.buf[n:]
		out = append(out, tok)
	}
}

// Flush returns any trailing text at end of input.
func (z *Tokenizer) Flush() []Token {
	if len(z.buf) == 0 {
		return nil
	}
	t := Token{Type: Text, Data: string(z.buf)}
	z.buf = nil
	return []Token{t}
}

// Buffered returns the number of bytes held awaiting a complete token.
func (z *Tokenizer) Buffered() int { return len(z.buf) }

// next tries to extract one token from the front of the buffer.
func (z *Tokenizer) next() (Token, int, bool) {
	buf := z.buf
	if len(buf) == 0 {
		return Token{}, 0, false
	}
	if buf[0] != '<' {
		// Text up to the next '<'. Emit only if the '<' is present;
		// otherwise more text may still arrive (unless Flush is called).
		i := indexByte(buf, '<')
		if i < 0 {
			return Token{}, 0, false
		}
		return Token{Type: Text, Data: string(buf[:i])}, i, true
	}
	if len(buf) < 2 {
		return Token{}, 0, false
	}
	switch {
	case hasPrefix(buf, "<!--"):
		end := indexString(buf, "-->")
		if end < 0 {
			return Token{}, 0, false
		}
		return Token{Type: Comment, Data: string(buf[4:end])}, end + 3, true
	case buf[1] == '!':
		end := indexByte(buf, '>')
		if end < 0 {
			return Token{}, 0, false
		}
		return Token{Type: Decl, Data: string(buf[2:end])}, end + 1, true
	case buf[1] == '/':
		end := indexByte(buf, '>')
		if end < 0 {
			return Token{}, 0, false
		}
		name := strings.ToLower(strings.TrimSpace(string(buf[2:end])))
		return Token{Type: EndTag, Data: name}, end + 1, true
	default:
		end := tagEnd(buf)
		if end < 0 {
			return Token{}, 0, false
		}
		tok := parseStartTag(buf[1:end])
		return tok, end + 1, true
	}
}

// tagEnd finds the '>' terminating a start tag, respecting quoted
// attribute values.
func tagEnd(buf []byte) int {
	var quote byte
	for i := 1; i < len(buf); i++ {
		c := buf[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '>':
			return i
		}
	}
	return -1
}

func parseStartTag(raw []byte) Token {
	s := string(raw)
	// Self-closing slash is irrelevant for 1997-era HTML; strip it.
	s = strings.TrimSuffix(strings.TrimSpace(s), "/")
	i := 0
	for i < len(s) && !isSpace(s[i]) {
		i++
	}
	tok := Token{Type: StartTag, Data: strings.ToLower(s[:i])}
	rest := s[i:]
	for {
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" {
			return tok
		}
		// Attribute name.
		j := 0
		for j < len(rest) && rest[j] != '=' && !isSpace(rest[j]) {
			j++
		}
		name := strings.ToLower(rest[:j])
		rest = strings.TrimLeft(rest[j:], " \t\r\n")
		if name == "" {
			// Stray character such as a lone '='; skip it.
			rest = rest[1:]
			continue
		}
		if rest == "" || rest[0] != '=' {
			tok.Attrs = append(tok.Attrs, Attr{Name: name})
			continue
		}
		rest = strings.TrimLeft(rest[1:], " \t\r\n")
		var value string
		if rest != "" && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			end := strings.IndexByte(rest[1:], q)
			if end < 0 {
				value = rest[1:]
				rest = ""
			} else {
				value = rest[1 : 1+end]
				rest = rest[2+end:]
			}
		} else {
			j = 0
			for j < len(rest) && !isSpace(rest[j]) {
				j++
			}
			value = rest[:j]
			rest = rest[j:]
		}
		tok.Attrs = append(tok.Attrs, Attr{Name: name, Value: DecodeEntities(value)})
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func hasPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[:len(s)]) == s
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

func indexString(b []byte, s string) int {
	return strings.Index(string(b), s)
}
