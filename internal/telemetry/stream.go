package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// SchemaVersion marks the JSON-lines layout for downstream consumers;
// the first record of every stream is a meta record carrying it.
const SchemaVersion = "telemetry/1"

// Record types, carried in every record's "t" field.
const (
	RecordMeta     = "meta"
	RecordSample   = "sample"
	RecordProgress = "progress"
	RecordFlight   = "flight"
)

// MetaRecord opens a stream: schema version plus the environment facts
// needed to interpret wall-clock rates (paralleling the benchjson
// snapshot header, so streams from different machines are comparable).
type MetaRecord struct {
	T           string `json:"t"`
	Schema      string `json:"schema"`
	StartUnixMS int64  `json:"start_unix_ms"`
	GoVersion   string `json:"go"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
}

// SampleRecord is one periodic sampler snapshot: Go runtime memory and
// GC state, the registry's counters/gauges/histograms, and the sampler's
// EWMA of engine events per wall-clock second.
type SampleRecord struct {
	T      string  `json:"t"`
	WallMS float64 `json:"wall_ms"` // since stream start

	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	NumGC           uint32  `json:"gc_count"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
	Goroutines      int     `json:"goroutines"`

	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`

	// SimEventsPerSec is an exponentially weighted moving average of the
	// sim_events_total counter's rate between samples.
	SimEventsPerSec float64 `json:"sim_events_per_sec"`
}

// ProgressRecord is one sweep-progress event: a simulation run (and
// possibly its whole cell) completing, with the reporter's EWMA rate
// and — when an experiment total is known — an ETA extrapolation.
type ProgressRecord struct {
	T      string  `json:"t"`
	WallMS float64 `json:"wall_ms"`

	Experiment string  `json:"experiment,omitempty"`
	Scenario   string  `json:"scenario,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Run        int     `json:"run"`
	CellDone   bool    `json:"cell_done,omitempty"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`

	RunsDone   int64   `json:"runs_done"`
	CellsDone  int64   `json:"cells_done"`
	RunsPerSec float64 `json:"runs_per_sec"`

	ExperimentsDone  int     `json:"experiments_done,omitempty"`
	ExperimentsTotal int     `json:"experiments_total,omitempty"`
	ETASeconds       float64 `json:"eta_sec,omitempty"`
}

// FlightRecord notes a flight-recorder dump: why it fired and where the
// artifacts were written.
type FlightRecord struct {
	T      string  `json:"t"`
	WallMS float64 `json:"wall_ms"`

	Label   string   `json:"label"`
	Reason  string   `json:"reason"`
	Paths   []string `json:"paths"`
	Events  int      `json:"events"`
	Dropped uint64   `json:"dropped,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// Stream is a concurrency-safe JSON-lines sink. Writers from the
// sampler goroutine, pool workers, and crash paths interleave whole
// records, never partial lines.
type Stream struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewStream wraps w and immediately emits the meta record. The stream
// owns no file handle; the caller closes w after the last Emit.
func NewStream(w io.Writer) *Stream {
	st := &Stream{enc: json.NewEncoder(w), start: time.Now()}
	st.Emit(MetaRecord{
		T:           RecordMeta,
		Schema:      SchemaVersion,
		StartUnixMS: st.start.UnixMilli(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	})
	return st
}

// WallMS returns milliseconds of wall clock since the stream opened —
// the timestamp base every record uses.
func (s *Stream) WallMS() float64 {
	return float64(time.Since(s.start)) / float64(time.Millisecond)
}

// Emit appends one record as a JSON line. The first encoding error
// sticks; subsequent emits are dropped silently (telemetry must never
// take down the run it observes).
func (s *Stream) Emit(rec any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// Err returns the first error the stream encountered, if any.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ValidateStream checks a JSON-lines telemetry stream against the
// telemetry/1 schema: the first record must be a meta record with the
// right schema tag, every record must carry a known "t" type, and
// sample/progress records must carry their required fields. It returns
// the record count per type, so callers can additionally require a
// minimum population (the CI smoke job wants ≥1 sample and ≥1 progress
// record).
func ValidateStream(r io.Reader) (map[string]int, error) {
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(raw, &rec); err != nil {
			return counts, fmt.Errorf("line %d: invalid JSON: %v", line, err)
		}
		t, _ := rec["t"].(string)
		switch t {
		case RecordMeta:
			if schema, _ := rec["schema"].(string); schema != SchemaVersion {
				return counts, fmt.Errorf("line %d: schema %q, want %q", line, schema, SchemaVersion)
			}
		case RecordSample:
			for _, key := range []string{"wall_ms", "heap_alloc_bytes", "gc_count", "sim_events_per_sec"} {
				if _, ok := rec[key].(float64); !ok {
					return counts, fmt.Errorf("line %d: sample record missing numeric %q", line, key)
				}
			}
		case RecordProgress:
			for _, key := range []string{"wall_ms", "runs_done", "runs_per_sec"} {
				if _, ok := rec[key].(float64); !ok {
					return counts, fmt.Errorf("line %d: progress record missing numeric %q", line, key)
				}
			}
		case RecordFlight:
			if _, ok := rec["reason"].(string); !ok {
				return counts, fmt.Errorf("line %d: flight record missing \"reason\"", line)
			}
		default:
			return counts, fmt.Errorf("line %d: unknown record type %q", line, t)
		}
		if line == 1 && t != RecordMeta {
			return counts, fmt.Errorf("line 1: first record is %q, want %q", t, RecordMeta)
		}
		counts[t]++
	}
	if err := sc.Err(); err != nil {
		return counts, err
	}
	if line == 0 {
		return counts, fmt.Errorf("empty stream")
	}
	return counts, nil
}
