package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

func TestRegistryInternsAndAggregates(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("Counter not interned: two lookups returned different pointers")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("a").Add(1)
				reg.Gauge("g").Add(1)
				reg.Gauge("g").Add(-1)
				reg.Gauge("hw").SetMax(int64(i))
				reg.Hist("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("a").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := reg.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge after balanced deltas = %d, want 0", got)
	}
	if got := reg.Gauge("hw").Value(); got != 999 {
		t.Fatalf("high-water gauge = %d, want 999", got)
	}
	if got := reg.Hist("h").Snapshot().Count; got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
	names := reg.Names()
	want := []string{"a", "g", "h", "hw"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestStreamMetaFirstAndValidates(t *testing.T) {
	var buf bytes.Buffer
	st := NewStream(&buf)
	st.Emit(SampleRecord{T: RecordSample, WallMS: st.WallMS()})
	st.Emit(ProgressRecord{T: RecordProgress, WallMS: st.WallMS(), RunsDone: 1, RunsPerSec: 2})
	st.Emit(FlightRecord{T: RecordFlight, Reason: "watchdog"})
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	first := strings.SplitN(buf.String(), "\n", 2)[0]
	var meta MetaRecord
	if err := json.Unmarshal([]byte(first), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.T != RecordMeta || meta.Schema != SchemaVersion {
		t.Fatalf("first record = %+v, want meta with schema %s", meta, SchemaVersion)
	}
	if meta.GoVersion == "" || meta.GOMAXPROCS <= 0 || meta.NumCPU <= 0 {
		t.Fatalf("meta record missing environment facts: %+v", meta)
	}

	counts, err := ValidateStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateStream: %v", err)
	}
	for typ, want := range map[string]int{RecordMeta: 1, RecordSample: 1, RecordProgress: 1, RecordFlight: 1} {
		if counts[typ] != want {
			t.Fatalf("counts[%s] = %d, want %d (all: %v)", typ, counts[typ], want, counts)
		}
	}
}

func TestValidateStreamRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"not JSON":        "hello\n",
		"meta not first":  `{"t":"sample","wall_ms":1,"heap_alloc_bytes":1,"gc_count":0,"sim_events_per_sec":0}` + "\n",
		"wrong schema":    `{"t":"meta","schema":"telemetry/999"}` + "\n",
		"unknown type":    `{"t":"meta","schema":"telemetry/1"}` + "\n" + `{"t":"mystery"}` + "\n",
		"sample missing":  `{"t":"meta","schema":"telemetry/1"}` + "\n" + `{"t":"sample"}` + "\n",
		"flight missing":  `{"t":"meta","schema":"telemetry/1"}` + "\n" + `{"t":"flight"}` + "\n",
		"progress string": `{"t":"meta","schema":"telemetry/1"}` + "\n" + `{"t":"progress","wall_ms":"x","runs_done":1,"runs_per_sec":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateStream(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateStream accepted invalid input %q", name, in)
		}
	}
}

func TestSamplerEmitsFinalSample(t *testing.T) {
	var buf bytes.Buffer
	st := NewStream(&buf)
	reg := NewRegistry()
	reg.Counter(MetricSimEventsTotal).Add(12345)
	s := StartSampler(st, reg, 10*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	s.Close()

	counts, err := ValidateStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sampler stream invalid: %v\n%s", err, buf.String())
	}
	if counts[RecordSample] < 1 {
		t.Fatalf("no sample records after Close: %v", counts)
	}
	if !strings.Contains(buf.String(), `"sim_events_total":12345`) {
		t.Fatalf("sample records missing registry counters:\n%s", buf.String())
	}
}

func TestSimTrackerDeltas(t *testing.T) {
	reg := NewRegistry()
	a := NewSimTracker(reg)
	b := NewSimTracker(reg)
	a.Poll(100, 10, 2, 20)
	b.Poll(50, 5, 3, 8)
	if got := reg.Counter(MetricSimEventsTotal).Value(); got != 150 {
		t.Fatalf("events total = %d, want 150", got)
	}
	if got := reg.Gauge(MetricSimPending).Value(); got != 15 {
		t.Fatalf("pending = %d, want 15 (10+5 across runs)", got)
	}
	if got := reg.Gauge(MetricSimWheelDepth).Value(); got != 3 {
		t.Fatalf("wheel depth = %d, want high-water 3", got)
	}
	a.Poll(180, 4, 1, 12) // pending shrank: delta is signed
	if got := reg.Gauge(MetricSimPending).Value(); got != 9 {
		t.Fatalf("pending = %d, want 9 (4+5)", got)
	}
	a.Finish(200)
	b.Finish(60)
	if got := reg.Counter(MetricSimEventsTotal).Value(); got != 260 {
		t.Fatalf("events total = %d, want 260", got)
	}
	if got := reg.Gauge(MetricSimPending).Value(); got != 0 {
		t.Fatalf("pending after both runs finished = %d, want 0", got)
	}
	if got := reg.Gauge(MetricSimPoolInUse).Value(); got != 0 {
		t.Fatalf("pool in use after finish = %d, want 0", got)
	}
}

// TestReporterEWMAAndETA drives the reporter on a synthetic clock: runs
// arriving every 100ms give a 10 runs/sec EWMA exactly (constant input),
// and two of four experiments done at a constant pace predict the
// remaining two at that pace.
func TestReporterEWMAAndETA(t *testing.T) {
	var buf bytes.Buffer
	st := NewStream(&buf)
	var human bytes.Buffer
	r := NewReporter(NewRegistry(), st, &human)
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.start, r.lastExpMark = now, now
	r.SetTotalExperiments(4)

	for i := 0; i < 20; i++ {
		now = now.Add(100 * time.Millisecond)
		r.Observe(exp.ProgressEvent{Experiment: "t", Scenario: "s", Run: i, CellDone: i%5 == 4, SimSeconds: 1.5})
	}
	if rate := r.RunsPerSec(); rate < 9.99 || rate > 10.01 {
		t.Fatalf("EWMA rate = %v, want 10 (constant 100ms gaps)", rate)
	}
	runs, cells := r.Done()
	if runs != 20 || cells != 4 {
		t.Fatalf("Done = %d runs, %d cells; want 20, 4", runs, cells)
	}

	now = now.Add(time.Second)
	r.ExperimentDone("t")
	now = now.Add(3 * time.Second)
	r.ExperimentDone("u")
	// Both experiment gaps are 3s, so the EWMA is exactly 3s and the two
	// remaining experiments predict 6s.
	_, _, eta := r.etaLocked()
	if eta < 5.99 || eta > 6.01 {
		t.Fatalf("eta = %v, want 6s (constant 3s per experiment, 2 left)", eta)
	}
	done, total, _ := r.etaLocked()
	if done != 2 || total != 4 {
		t.Fatalf("experiments = %d/%d, want 2/4", done, total)
	}

	r.Close()
	if !strings.Contains(human.String(), "runs/s") {
		t.Fatalf("human progress line missing rate: %q", human.String())
	}
	if !strings.HasSuffix(human.String(), "\n") {
		t.Fatal("Close did not terminate the stderr line with a newline")
	}
	if _, err := ValidateStream(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("reporter stream invalid: %v", err)
	}
}

func TestFlightDumpWritesArtifactsAndStreams(t *testing.T) {
	dir := t.TempDir()
	fl, err := NewFlight(filepath.Join(dir, "dumps"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Events() != DefaultFlightEvents {
		t.Fatalf("Events = %d, want default %d", fl.Events(), DefaultFlightEvents)
	}

	var buf bytes.Buffer
	prev := SetStream(NewStream(&buf))
	defer SetStream(prev)

	paths, err := fl.Dump(DumpSource{
		Label:   "Apache/HTTP 1.1/PPP", // slashes and spaces must sanitize
		Reason:  "watchdog",
		Events:  7,
		Dropped: 3,
		Perfetto: func(w *os.File) error {
			_, err := w.WriteString(`{"traceEvents":[]}`)
			return err
		},
		Pcap: func(w *os.File) error {
			_, err := w.Write([]byte{0xd4, 0xc3, 0xb2, 0xa1})
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2 artifacts", paths)
	}
	for _, p := range paths {
		base := filepath.Base(p)
		if strings.ContainsAny(base, "/ ") {
			t.Fatalf("unsanitized dump name %q", base)
		}
		if !strings.Contains(base, "watchdog") {
			t.Fatalf("dump name %q missing trigger reason", base)
		}
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
	}
	counts, err := ValidateStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if counts[RecordFlight] != 1 {
		t.Fatalf("flight records on stream = %d, want 1", counts[RecordFlight])
	}
	if !strings.Contains(buf.String(), `"dropped":3`) {
		t.Fatalf("flight record missing overflow accounting:\n%s", buf.String())
	}

	// A second dump must not overwrite the first.
	paths2, err := fl.Dump(DumpSource{Label: "x", Reason: "error",
		Perfetto: func(w *os.File) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths2) != 1 || paths2[0] == paths[0] {
		t.Fatalf("second dump reused the first dump's path: %v vs %v", paths2, paths)
	}
}

func TestProgressHookInstallUninstall(t *testing.T) {
	if exp.ProgressActive() {
		t.Fatal("progress hook active before install")
	}
	var got []exp.ProgressEvent
	prev := exp.SetProgress(func(ev exp.ProgressEvent) { got = append(got, ev) })
	if prev != nil {
		t.Fatal("unexpected previous hook")
	}
	if !exp.ProgressActive() {
		t.Fatal("hook not active after install")
	}
	exp.NotifyProgress(exp.ProgressEvent{Run: 3})
	exp.SetProgress(nil)
	if exp.ProgressActive() {
		t.Fatal("hook still active after uninstall")
	}
	exp.NotifyProgress(exp.ProgressEvent{Run: 4}) // must not panic or deliver
	if len(got) != 1 || got[0].Run != 3 {
		t.Fatalf("delivered events = %+v, want exactly the pre-uninstall one", got)
	}
}
