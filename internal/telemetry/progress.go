package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/exp"
)

// Reporter consumes sweep-progress events (exp.SetProgress(r.Observe))
// and turns them into a live view: counters and a run-duration
// histogram in the registry, progress records on the telemetry stream,
// an EWMA-smoothed runs-per-second rate, and — when the caller declares
// how many experiments the invocation will run — an ETA extrapolated
// from the EWMA of completed experiment durations. An optional human
// writer (stderr) gets a single self-overwriting status line.
type Reporter struct {
	mu sync.Mutex

	st    *Stream   // nil: no machine stream
	human io.Writer // nil: no stderr line
	now   func() time.Time

	runs  *Counter
	cells *Counter
	hist  *Hist

	start      time.Time
	lastRun    time.Time
	ewmaGapSec float64 // EWMA of inter-run wall gaps → rate = 1/gap

	runsDone  int64
	cellsDone int64
	lastExp   string

	expTotal    int
	expDone     int
	lastExpMark time.Time
	ewmaExpSec  float64

	lastLine time.Time
}

// humanThrottle caps the stderr line's redraw rate.
const humanThrottle = 100 * time.Millisecond

// NewReporter returns a reporter publishing into reg and, optionally,
// st (machine records) and human (live status line).
func NewReporter(reg *Registry, st *Stream, human io.Writer) *Reporter {
	r := &Reporter{
		st:    st,
		human: human,
		now:   time.Now,
		runs:  reg.Counter(MetricRunsTotal),
		cells: reg.Counter(MetricCellsTotal),
		hist:  reg.Hist(MetricRunElapsedMS),
	}
	r.start = r.now()
	r.lastExpMark = r.start
	return r
}

// SetTotalExperiments declares how many experiments the invocation will
// run, enabling the ETA extrapolation.
func (r *Reporter) SetTotalExperiments(n int) {
	r.mu.Lock()
	r.expTotal = n
	r.mu.Unlock()
}

// Observe consumes one sweep-progress event. It is safe for concurrent
// calls from pool workers.
func (r *Reporter) Observe(ev exp.ProgressEvent) {
	r.mu.Lock()
	now := r.now()
	r.runsDone++
	r.runs.Add(1)
	r.hist.Observe(int64(ev.SimSeconds * 1000))
	if ev.CellDone {
		r.cellsDone++
		r.cells.Add(1)
	}
	if ev.Experiment != "" {
		r.lastExp = ev.Experiment
	}

	// Rate: EWMA over inter-arrival gaps, so a stall decays the rate
	// instead of being averaged away by a long history.
	if !r.lastRun.IsZero() {
		gap := now.Sub(r.lastRun).Seconds()
		if gap < 1e-6 {
			gap = 1e-6
		}
		if r.ewmaGapSec == 0 {
			r.ewmaGapSec = gap
		} else {
			r.ewmaGapSec = ewmaAlpha*gap + (1-ewmaAlpha)*r.ewmaGapSec
		}
	}
	r.lastRun = now

	rec := ProgressRecord{
		T:          RecordProgress,
		Experiment: ev.Experiment,
		Scenario:   ev.Scenario,
		Seed:       ev.Seed,
		Run:        ev.Run,
		CellDone:   ev.CellDone,
		SimSeconds: ev.SimSeconds,
		RunsDone:   r.runsDone,
		CellsDone:  r.cellsDone,
		RunsPerSec: r.rateLocked(),
	}
	rec.ExperimentsDone, rec.ExperimentsTotal, rec.ETASeconds = r.etaLocked()
	st, human := r.st, r.human
	redraw := human != nil && (ev.CellDone || now.Sub(r.lastLine) >= humanThrottle)
	if redraw {
		r.lastLine = now
	}
	line := ""
	if redraw {
		line = r.lineLocked()
	}
	r.mu.Unlock()

	if st != nil {
		rec.WallMS = st.WallMS()
		st.Emit(rec)
	}
	if redraw {
		fmt.Fprint(human, line)
	}
}

// ExperimentDone marks one registered experiment as fully generated,
// feeding the ETA's per-experiment duration EWMA.
func (r *Reporter) ExperimentDone(name string) {
	r.mu.Lock()
	now := r.now()
	r.expDone++
	dur := now.Sub(r.lastExpMark).Seconds()
	r.lastExpMark = now
	if r.ewmaExpSec == 0 {
		r.ewmaExpSec = dur
	} else {
		r.ewmaExpSec = ewmaAlpha*dur + (1-ewmaAlpha)*r.ewmaExpSec
	}
	rec := ProgressRecord{
		T:          RecordProgress,
		Experiment: name,
		Run:        -1, // experiment-level record, not a run
		RunsDone:   r.runsDone,
		CellsDone:  r.cellsDone,
		RunsPerSec: r.rateLocked(),
	}
	rec.ExperimentsDone, rec.ExperimentsTotal, rec.ETASeconds = r.etaLocked()
	st, human := r.st, r.human
	line := ""
	if human != nil {
		r.lastLine = now
		line = r.lineLocked()
	}
	r.mu.Unlock()

	if st != nil {
		rec.WallMS = st.WallMS()
		st.Emit(rec)
	}
	if human != nil {
		fmt.Fprint(human, line)
	}
}

// RunsPerSec returns the current EWMA-smoothed completion rate.
func (r *Reporter) RunsPerSec() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rateLocked()
}

// Done returns the run and cell completion counts.
func (r *Reporter) Done() (runs, cells int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runsDone, r.cellsDone
}

// Close finishes the stderr line with a newline so the shell prompt
// does not land mid-line.
func (r *Reporter) Close() {
	r.mu.Lock()
	human := r.human
	r.human = nil
	r.mu.Unlock()
	if human != nil {
		fmt.Fprintln(human)
	}
}

func (r *Reporter) rateLocked() float64 {
	if r.ewmaGapSec > 0 {
		return 1 / r.ewmaGapSec
	}
	if elapsed := r.now().Sub(r.start).Seconds(); elapsed > 0 && r.runsDone > 0 {
		return float64(r.runsDone) / elapsed
	}
	return 0
}

// etaLocked extrapolates the remaining wall time from the EWMA of
// completed experiment durations. Zero when no total was declared or
// nothing has completed yet.
func (r *Reporter) etaLocked() (done, total int, etaSec float64) {
	done, total = r.expDone, r.expTotal
	if total > 0 && done > 0 && done < total && r.ewmaExpSec > 0 {
		etaSec = r.ewmaExpSec * float64(total-done)
	}
	return done, total, etaSec
}

// lineLocked renders the self-overwriting stderr status line.
func (r *Reporter) lineLocked() string {
	line := fmt.Sprintf("\r[%s] %d cells / %d runs · %.1f runs/s",
		r.lastExp, r.cellsDone, r.runsDone, r.rateLocked())
	if done, total, eta := r.etaLocked(); total > 0 {
		line += fmt.Sprintf(" · exp %d/%d", done, total)
		if eta > 0 {
			line += " · ETA ~" + formatETA(eta)
		}
	}
	// Pad so a shrinking line fully overwrites its predecessor.
	const width = 78
	if len(line) < width {
		line += fmt.Sprintf("%*s", width-len(line), "")
	}
	return line
}

// formatETA renders seconds as a compact human duration.
func formatETA(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()+0.5))
	}
}
