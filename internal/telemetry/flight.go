package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Flight is the crash-dump flight recorder's process-wide half: the
// dump directory and the per-run retention depth. The per-run half is a
// Ring of obs events that core attaches as a bus subscriber; when a run
// panics, the recovery watchdog fires, or a sweep cell errors, core
// calls Dump with exporter closures and the retained window lands on
// disk as Perfetto JSON plus a synthetic pcap.
type Flight struct {
	dir    string
	events int
	seq    atomic.Int64
}

// DefaultFlightEvents is the default ring depth: enough tail to see the
// stall or reset that killed a run, small enough to cost nothing.
const DefaultFlightEvents = 4096

// NewFlight prepares a recorder writing dumps into dir, each run
// retaining the last events bus events (≤0 selects the default).
func NewFlight(dir string, events int) (*Flight, error) {
	if events <= 0 {
		events = DefaultFlightEvents
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: flight dir: %w", err)
	}
	return &Flight{dir: dir, events: events}, nil
}

// Dir returns the dump directory.
func (f *Flight) Dir() string { return f.dir }

// Events returns the per-run ring depth.
func (f *Flight) Events() int { return f.events }

// DumpSource is everything a dump needs from the failing run: a label
// (the scenario string), the trigger reason ("panic", "watchdog",
// "error"), the retained-window accounting, and exporter closures for
// the two artifact formats. A nil exporter skips that artifact.
type DumpSource struct {
	Label   string
	Reason  string
	Events  int
	Dropped uint64

	Perfetto func(w *os.File) error
	Pcap     func(w *os.File) error
}

// Dump writes the retained window to disk and returns the artifact
// paths. Every dump also lands as a flight record on the active
// telemetry stream, so a machine consumer learns about crashes from the
// same JSON-lines feed as progress. Dump never panics: a dump is a
// best-effort black box retrieved on the way down.
func (f *Flight) Dump(src DumpSource) ([]string, error) {
	n := f.seq.Add(1)
	base := filepath.Join(f.dir, fmt.Sprintf("flight-%03d-%s-%s", n, sanitizeLabel(src.Label), src.Reason))
	var paths []string
	var firstErr error
	write := func(suffix string, export func(w *os.File) error) {
		if export == nil {
			return
		}
		path := base + suffix
		file, err := os.Create(path)
		if err == nil {
			err = export(file)
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("telemetry: flight dump %s: %w", path, err)
			}
			return
		}
		paths = append(paths, path)
	}
	write(".perfetto.json", src.Perfetto)
	write(".pcap", src.Pcap)

	if st := ActiveStream(); st != nil {
		rec := FlightRecord{
			T:       RecordFlight,
			WallMS:  st.WallMS(),
			Label:   src.Label,
			Reason:  src.Reason,
			Paths:   paths,
			Events:  src.Events,
			Dropped: src.Dropped,
		}
		if firstErr != nil {
			rec.Error = firstErr.Error()
		}
		st.Emit(rec)
	}
	return paths, firstErr
}

// sanitizeLabel turns a scenario string into a filename-safe token.
func sanitizeLabel(s string) string {
	if s == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}
