package telemetry

import (
	"math/rand"
	"testing"
)

// naiveTail is the reference model: an unbounded slice truncated to its
// last cap elements on read.
type naiveTail struct {
	all []int
	cap int
}

func (n *naiveTail) push(v int) { n.all = append(n.all, v) }

func (n *naiveTail) tail() []int {
	if len(n.all) <= n.cap {
		return n.all
	}
	return n.all[len(n.all)-n.cap:]
}

func (n *naiveTail) dropped() uint64 {
	if len(n.all) <= n.cap {
		return 0
	}
	return uint64(len(n.all) - n.cap)
}

// TestRingMatchesNaiveModel drives rings of many capacities with random
// push counts and checks every observable (snapshot contents and order,
// length, dropped count) against the reference model.
func TestRingMatchesNaiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, capacity := range []int{1, 2, 3, 7, 64, 1000} {
		r := NewRing[int](capacity)
		model := &naiveTail{cap: capacity}
		for round := 0; round < 50; round++ {
			for i, n := 0, rng.Intn(3*capacity); i < n; i++ {
				v := rng.Int()
				r.Push(v)
				model.push(v)
			}
			want := model.tail()
			got := r.Snapshot()
			if len(got) != len(want) {
				t.Fatalf("cap %d round %d: snapshot length %d, want %d", capacity, round, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cap %d round %d: snapshot[%d] = %d, want %d", capacity, round, i, got[i], want[i])
				}
			}
			if r.Len() != len(want) {
				t.Fatalf("cap %d: Len %d, want %d", capacity, r.Len(), len(want))
			}
			if r.Dropped() != model.dropped() {
				t.Fatalf("cap %d: Dropped %d, want %d", capacity, r.Dropped(), model.dropped())
			}
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](3)
	for v := 1; v <= 5; v++ {
		r.Push(v)
	}
	got := r.Snapshot()
	want := []int{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	if r.Cap() != 3 || r.Len() != 3 {
		t.Fatalf("Cap/Len = %d/%d, want 3/3", r.Cap(), r.Len())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing[string](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1 for capacity 0", r.Cap())
	}
	r.Push("a")
	r.Push("b")
	if snap := r.Snapshot(); len(snap) != 1 || snap[0] != "b" {
		t.Fatalf("snapshot = %v, want [b]", snap)
	}
}

// TestRingSnapshotIsFresh verifies the snapshot does not alias the
// ring's buffer: a dump must stay stable while the run keeps pushing.
func TestRingSnapshotIsFresh(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Push(2)
	snap := r.Snapshot()
	r.Push(3)
	if snap[0] != 1 || snap[1] != 2 {
		t.Fatalf("snapshot mutated by later Push: %v", snap)
	}
}
