package telemetry

// Ring is a bounded ring buffer retaining the most recent Cap() values
// pushed into it — the flight recorder's retention policy. It is not
// safe for concurrent use: each simulation run owns one ring and pushes
// from the single simulation goroutine.
type Ring[T any] struct {
	buf     []T
	head    int // index of the oldest element
	n       int // live elements (≤ len(buf))
	dropped uint64
}

// NewRing returns a ring retaining the last capacity values
// (capacity < 1 is treated as 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, evicting the oldest value once full.
func (r *Ring[T]) Push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	r.dropped++
}

// Len returns the number of retained values.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the retention capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Dropped returns how many values were evicted to make room — the
// overflow count a dump reports so a truncated window is never mistaken
// for the whole run.
func (r *Ring[T]) Dropped() uint64 { return r.dropped }

// Snapshot returns the retained values, oldest first, as a fresh slice.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}
