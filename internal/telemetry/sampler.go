package telemetry

import (
	"runtime"
	"time"
)

// PollEvents is how many engine events fire between telemetry
// safe-point polls inside a run (sim.RunWithPoll). At the wheel's
// ~20M events/sec this is a poll every millisecond or so — frequent
// enough for live gauges, far too coarse to show up in profiles.
const PollEvents = 16384

// SimTracker publishes one running simulation's engine statistics into
// a registry. Each concurrently running simulation owns a tracker; the
// counters receive deltas (so the totals aggregate across runs) and the
// pending/pool gauges receive signed deltas (so their values are sums
// over the currently active runs). Poll is called from the simulation
// goroutine at safe-points between events, so reading engine state is
// race-free by construction.
type SimTracker struct {
	events      *Counter
	pending     *Gauge
	pool        *Gauge
	depth       *Gauge
	lastFired   uint64
	lastPending int
	lastPool    int
}

// NewSimTracker returns a tracker publishing into reg.
func NewSimTracker(reg *Registry) *SimTracker {
	return &SimTracker{
		events:  reg.Counter(MetricSimEventsTotal),
		pending: reg.Gauge(MetricSimPending),
		pool:    reg.Gauge(MetricSimPoolInUse),
		depth:   reg.Gauge(MetricSimWheelDepth),
	}
}

// Poll publishes the deltas since the previous poll.
func (t *SimTracker) Poll(fired uint64, pending, wheelDepth, poolInUse int) {
	t.events.Add(int64(fired - t.lastFired))
	t.lastFired = fired
	t.pending.Add(int64(pending - t.lastPending))
	t.lastPending = pending
	t.pool.Add(int64(poolInUse - t.lastPool))
	t.lastPool = poolInUse
	t.depth.SetMax(int64(wheelDepth))
}

// Finish publishes the final deltas and withdraws this run's
// contribution from the aggregate gauges.
func (t *SimTracker) Finish(fired uint64) {
	t.events.Add(int64(fired - t.lastFired))
	t.lastFired = fired
	t.pending.Add(int64(-t.lastPending))
	t.lastPending = 0
	t.pool.Add(int64(-t.lastPool))
	t.lastPool = 0
}

// Sampler periodically snapshots the registry plus Go runtime memory
// and GC state into a stream as sample records. Start it once per
// process; Close flushes a final sample so even sweeps shorter than one
// interval leave at least one snapshot in the stream.
type Sampler struct {
	st       *Stream
	reg      *Registry
	interval time.Duration

	stop chan struct{}
	done chan struct{}

	lastEvents int64
	lastWallMS float64
	ewma       float64
}

// ewmaAlpha weights the newest rate observation in the events/sec EWMA.
const ewmaAlpha = 0.3

// StartSampler launches the sampling goroutine, emitting one sample
// record per interval (minimum 10ms) into st.
func StartSampler(st *Stream, reg *Registry, interval time.Duration) *Sampler {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &Sampler{
		st:       st,
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.sample()
		case <-s.stop:
			s.sample() // final snapshot: short sweeps still get one
			return
		}
	}
}

// sample emits one snapshot record.
func (s *Sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	wall := s.st.WallMS()
	counters := s.reg.Counters()
	events := counters[MetricSimEventsTotal]
	if dt := (wall - s.lastWallMS) / 1000; dt > 0 {
		inst := float64(events-s.lastEvents) / dt
		if s.ewma == 0 {
			s.ewma = inst
		} else {
			s.ewma = ewmaAlpha*inst + (1-ewmaAlpha)*s.ewma
		}
	}
	s.lastEvents = events
	s.lastWallMS = wall

	s.st.Emit(SampleRecord{
		T:               RecordSample,
		WallMS:          wall,
		HeapAllocBytes:  ms.HeapAlloc,
		HeapObjects:     ms.HeapObjects,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
		Goroutines:      runtime.NumGoroutine(),
		Counters:        counters,
		Gauges:          s.reg.Gauges(),
		Hists:           s.reg.Hists(),
		SimEventsPerSec: s.ewma,
	})
}

// Close stops the sampling goroutine after one final sample and waits
// for it to exit.
func (s *Sampler) Close() {
	close(s.stop)
	<-s.done
}
