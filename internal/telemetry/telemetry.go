// Package telemetry is the live-observability layer of the harness: a
// process-wide registry of counters, gauges, and histograms that running
// sweeps publish into, a periodic sampler that snapshots the registry
// together with engine statistics and Go runtime memory/GC state into a
// JSON-lines time series (stream.go, sampler.go), an EWMA-based sweep
// progress reporter (progress.go), and a crash-dump flight recorder — a
// bounded ring buffer of the most recent internal/obs events, dumped as
// Perfetto JSON plus a synthetic pcap when a run panics, the client's
// fault-recovery watchdog fires, or a sweep cell errors (ring.go,
// flight.go).
//
// Everything here is off by default and strictly non-perturbing: the
// simulator's virtual-time behaviour, every golden table, metrics CSV,
// and pcap/Perfetto export is byte-identical with telemetry on or off
// (enforced by core's TestTelemetryDoesNotPerturb). Telemetry lives
// entirely in the wall-clock domain — it observes the simulation, never
// participates in it.
//
// The package sits below internal/core: core publishes into the global
// registry, attaches flight-recorder rings to each run's obs bus, and
// polls engine statistics at safe-points; cmd/httpperf turns the layer
// on with -telemetry, -progress, and -flight.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d < 0 is a programming error but is
// applied as-is rather than panicking in a telemetry path).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level. Concurrent runs aggregate into one
// gauge with Add (each contributor applies deltas, so the value is the
// sum over contributors); SetMax maintains a high-water mark instead.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add applies a delta; contributors that add on change and subtract on
// exit make the gauge an aggregate over all of them.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a concurrency-safe wrapper around the mergeable log-bucketed
// stats.Histogram, for value distributions (run durations, dump sizes).
type Hist struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// HistSnapshot is the summary a sampler record carries per histogram.
type HistSnapshot struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Snapshot summarizes the histogram's current population.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Count: h.h.Count(),
		P50:   h.h.Quantile(0.50),
		P90:   h.h.Quantile(0.90),
		P99:   h.h.Quantile(0.99),
		Max:   h.h.Max(),
	}
}

// Registry is a named collection of metrics. Lookups intern the metric
// on first use, so publishers can fetch by name without registration
// ceremony; the returned pointers are stable and lock-free to update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Hist{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Counters returns a name→value snapshot of every counter.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns a name→value snapshot of every gauge.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Hists returns a name→summary snapshot of every histogram.
func (r *Registry) Hists() map[string]HistSnapshot {
	r.mu.Lock()
	hs := make(map[string]*Hist, len(r.hists))
	for name, h := range r.hists {
		hs[name] = h
	}
	r.mu.Unlock()
	out := make(map[string]HistSnapshot, len(hs))
	for name, h := range hs {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the sorted names of every registered metric, for tests
// and listings.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- process-wide state ---

// Well-known metric names the harness publishes. Counters are monotone
// totals; the pending/pool gauges aggregate deltas across concurrently
// running simulations, and the wheel-depth gauge is a high-water mark.
const (
	MetricRunsTotal      = "runs_total"       // completed simulation runs
	MetricCellsTotal     = "cells_total"      // completed sweep cells
	MetricSimEventsTotal = "sim_events_total" // engine events fired
	MetricSimPending     = "sim_pending"      // pending events, summed over active runs
	MetricSimPoolInUse   = "sim_pool_in_use"  // live timer-arena entries, summed
	MetricSimWheelDepth  = "sim_wheel_depth"  // deepest populated wheel tier seen
	MetricRunElapsedMS   = "run_sim_ms"       // histogram of simulated run durations
)

var (
	defaultRegistry = NewRegistry()
	activeStream    atomic.Pointer[Stream]
	activeFlight    atomic.Pointer[Flight]
)

// Default returns the process-wide registry every harness layer
// publishes into.
func Default() *Registry { return defaultRegistry }

// SetStream installs st as the process-wide telemetry stream (nil turns
// streaming off) and returns the previous stream.
func SetStream(st *Stream) *Stream {
	if st == nil {
		return activeStream.Swap(nil)
	}
	return activeStream.Swap(st)
}

// ActiveStream returns the installed stream, or nil when streaming is
// off.
func ActiveStream() *Stream { return activeStream.Load() }

// Active reports whether any telemetry stream is installed — the cheap
// guard hot paths use before publishing.
func Active() bool { return activeStream.Load() != nil }

// SetFlight installs f as the process-wide flight recorder (nil turns
// it off) and returns the previous recorder.
func SetFlight(f *Flight) *Flight {
	if f == nil {
		return activeFlight.Swap(nil)
	}
	return activeFlight.Swap(f)
}

// ActiveFlight returns the installed flight recorder, or nil when crash
// dumping is off.
func ActiveFlight() *Flight { return activeFlight.Load() }
