package netem

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSerializationDelay(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{BitsPerSecond: 8000}) // 1000 bytes/sec
	if got := l.SerializationDelay(100); got != 100*time.Millisecond {
		t.Fatalf("SerializationDelay(100) = %v, want 100ms", got)
	}
	l2 := NewLink(s, "inf", Config{})
	if got := l2.SerializationDelay(100); got != 0 {
		t.Fatalf("infinite link delay = %v, want 0", got)
	}
}

func TestSendDeliversAfterTransit(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{BitsPerSecond: 8000, PropagationDelay: 50 * time.Millisecond})
	var at sim.Time
	l.Send(nil, 100, func() { at = s.Now() })
	s.Run()
	if want := sim.Time(150 * time.Millisecond); at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestFIFOQueueing(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{BitsPerSecond: 8000, PropagationDelay: 10 * time.Millisecond})
	var first, second sim.Time
	// Two 100-byte packets sent back to back: second waits for the first's
	// serialization (100ms each), then adds propagation.
	l.Send(nil, 100, func() { first = s.Now() })
	l.Send(nil, 100, func() { second = s.Now() })
	s.Run()
	if want := sim.Time(110 * time.Millisecond); first != want {
		t.Fatalf("first at %v, want %v", first, want)
	}
	if want := sim.Time(210 * time.Millisecond); second != want {
		t.Fatalf("second at %v, want %v", second, want)
	}
}

func TestLinkIdleGapNoQueueing(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{BitsPerSecond: 8000, PropagationDelay: 0})
	var second sim.Time
	l.Send(nil, 100, func() {})
	// Send the second packet well after the first finished.
	s.Schedule(500*time.Millisecond, func() {
		l.Send(nil, 100, func() { second = s.Now() })
	})
	s.Run()
	if want := sim.Time(600 * time.Millisecond); second != want {
		t.Fatalf("second at %v, want %v (no residual queueing)", second, want)
	}
}

func TestMTUViolationPanics(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{MTU: 1500})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized packet")
		}
	}()
	l.Send(nil, 1501, func() {})
}

func TestLossFunc(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{Loss: func(i, _ int) bool { return i == 1 }})
	delivered := 0
	for i := 0; i < 3; i++ {
		l.Send(nil, 40, func() { delivered++ })
	}
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", l.Dropped())
	}
	if l.Sent() != 3 {
		t.Fatalf("sent %d, want 3", l.Sent())
	}
}

type halfCompressor struct{ resets int }

func (c *halfCompressor) CompressedBits(p []byte) int { return len(p) * 8 / 2 }
func (c *halfCompressor) Reset()                      { c.resets++ }

func TestCompressorHalvesSerialization(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{BitsPerSecond: 8000, Compressor: &halfCompressor{}})
	var at sim.Time
	l.Send(make([]byte, 100), 100, func() { at = s.Now() })
	s.Run()
	if want := sim.Time(50 * time.Millisecond); at != want {
		t.Fatalf("delivered at %v, want %v (compressed)", at, want)
	}
	if l.WireBits() != 400 {
		t.Fatalf("wire bits = %d, want 400", l.WireBits())
	}
}

func TestPerPacketOverhead(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "t", Config{BitsPerSecond: 8000, PerPacketOverheadBytes: 8})
	var at sim.Time
	l.Send(nil, 92, func() { at = s.Now() })
	s.Run()
	if want := sim.Time(100 * time.Millisecond); at != want {
		t.Fatalf("delivered at %v, want %v (92+8 bytes)", at, want)
	}
}

func TestProfilesMatchTable1(t *testing.T) {
	for _, env := range Environments {
		p := Profiles[env]
		if p.MSS != 1460 {
			t.Errorf("%v MSS = %d, want 1460", env, p.MSS)
		}
	}
	if Profiles[PPP].Bandwidth != 28_800 {
		t.Errorf("PPP bandwidth = %d, want 28800", Profiles[PPP].Bandwidth)
	}
	if Profiles[LAN].RTT >= time.Millisecond {
		t.Errorf("LAN RTT = %v, want < 1ms", Profiles[LAN].RTT)
	}
	if Profiles[WAN].RTT != 90*time.Millisecond {
		t.Errorf("WAN RTT = %v, want 90ms", Profiles[WAN].RTT)
	}
	if Profiles[PPP].RTT != 150*time.Millisecond {
		t.Errorf("PPP RTT = %v, want 150ms", Profiles[PPP].RTT)
	}
}

func TestNewEnvPathRoundTrip(t *testing.T) {
	for _, env := range Environments {
		s := sim.New()
		p := NewEnvPath(s, env, PathOptions{})
		var rtt sim.Time
		// 40-byte packet each way approximates a SYN/SYN-ACK RTT probe.
		p.AB.Send(nil, 40, func() {
			p.BA.Send(nil, 40, func() { rtt = s.Now() })
		})
		s.Run()
		want := Profiles[env].RTT
		got := time.Duration(rtt)
		// Allow serialization on top of propagation.
		if got < want || got > want+2*p.AB.SerializationDelay(48)+time.Millisecond {
			t.Errorf("%v probe RTT = %v, profile RTT %v", env, got, want)
		}
	}
}

func TestEnvironmentString(t *testing.T) {
	if LAN.String() != "LAN" || WAN.String() != "WAN" || PPP.String() != "PPP" {
		t.Fatal("environment names wrong")
	}
	if Environment(9).String() != "Environment(9)" {
		t.Fatal("unknown environment formatting wrong")
	}
}

func TestRTTJitterChangesDelay(t *testing.T) {
	s := sim.New()
	rng := sim.NewRand(3)
	p := NewEnvPath(s, WAN, PathOptions{RTTJitterFrac: 0.05, Rng: rng})
	base := Profiles[WAN].RTT / 2
	got := p.AB.Config().PropagationDelay
	if got == base {
		t.Fatal("jitter did not perturb propagation delay")
	}
	lo := time.Duration(float64(base) * 0.95)
	hi := time.Duration(float64(base) * 1.05)
	if got < lo || got > hi {
		t.Fatalf("jittered delay %v outside [%v,%v]", got, lo, hi)
	}
}
