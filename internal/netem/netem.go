// Package netem models network links: serialization delay from bandwidth,
// propagation delay, MTU, optional per-stream modem compression, and
// optional deterministic packet loss.
//
// A Link is unidirectional; a Path bundles the two directions between two
// hosts. The profiles in profiles.go correspond to Table 1 of the paper
// (LAN, WAN, PPP).
package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// IPTCPHeaderBytes is the per-packet TCP/IP header overhead the paper's
// %ov metric assumes (20 bytes IPv4 + 20 bytes TCP, no options).
const IPTCPHeaderBytes = 40

// StreamCompressor models link-level data compression such as the
// V.42bis compression in 28.8k modems. It consumes the raw packet bytes in
// transmission order and returns the number of bits actually put on the
// wire for them. Implementations are stateful: the dictionary persists
// across packets of the same direction, like a modem's.
type StreamCompressor interface {
	// CompressedBits returns the on-wire size, in bits, of p.
	CompressedBits(p []byte) int
	// Reset clears the dictionary state.
	Reset()
}

// LossFunc decides whether the i-th packet (0-based, per link) is dropped.
// A nil LossFunc means no loss.
type LossFunc func(index int, wireBytes int) bool

// LinkEvent describes one packet's fate on a link, reported to the
// link's Observer. For an accepted packet, serialization runs from
// Start to Done (after FIFO queueing) and the last bit reaches the far
// end at Arrive; a dropped packet carries only the drop instant in
// Start (Done and Arrive equal Start).
type LinkEvent struct {
	Link                string
	WireBytes           int
	Dropped             bool
	Start, Done, Arrive sim.Time
}

// Observer receives a LinkEvent for every packet offered to a link.
type Observer func(ev LinkEvent)

// Config describes one direction of a link.
type Config struct {
	// BitsPerSecond is the serialization rate. Zero means infinitely fast.
	BitsPerSecond int64
	// PropagationDelay is the one-way latency added after serialization.
	PropagationDelay time.Duration
	// MTU is the maximum transmission unit in bytes (IP packet size).
	// Zero means unlimited. The TCP layer segments to MSS = MTU-40.
	MTU int
	// PerPacketOverheadBytes models link framing (e.g. PPP framing bytes)
	// added to every packet's serialization time but not to the IP-level
	// byte accounting.
	PerPacketOverheadBytes int
	// Compressor, if non-nil, compresses the byte stream for serialization
	// timing purposes (modem compression). Packet and byte accounting at
	// the IP level are unaffected.
	Compressor StreamCompressor
	// Loss, if non-nil, selects packets to drop.
	Loss LossFunc
	// Observer, if non-nil, is told about every packet offered to the
	// link (accepted or dropped) with its serialization window.
	Observer Observer
}

// Link is one direction of a point-to-point connection. Packets are
// serialized FIFO: a packet cannot begin transmission until the previous
// one finished.
type Link struct {
	sim  *sim.Simulator
	cfg  Config
	name string

	busyUntil sim.Time
	sent      int
	dropped   int
	wireBits  int64
}

// NewLink returns a link driven by s. The name appears in traces.
func NewLink(s *sim.Simulator, name string, cfg Config) *Link {
	if cfg.MTU < 0 {
		panic("netem: negative MTU")
	}
	return &Link{sim: s, cfg: cfg, name: name}
}

// Name returns the link's trace name.
func (l *Link) Name() string { return l.name }

// Config returns the link's configuration.
func (l *Link) Config() Config { return l.cfg }

// Sent returns the number of packets accepted for transmission (including
// dropped ones).
func (l *Link) Sent() int { return l.sent }

// Dropped returns the number of packets dropped by the loss model.
func (l *Link) Dropped() int { return l.dropped }

// WireBits returns the cumulative serialized size of all transmitted
// packets, after link compression.
func (l *Link) WireBits() int64 { return l.wireBits }

// SerializationDelay returns how long wireBytes take to serialize at the
// link rate, ignoring compression.
func (l *Link) SerializationDelay(wireBytes int) time.Duration {
	if l.cfg.BitsPerSecond <= 0 {
		return 0
	}
	bits := int64(wireBytes+l.cfg.PerPacketOverheadBytes) * 8
	return time.Duration(bits * int64(time.Second) / l.cfg.BitsPerSecond)
}

// Transit models the total one-way latency of a single packet of wireBytes
// on an idle link.
func (l *Link) Transit(wireBytes int) time.Duration {
	return l.SerializationDelay(wireBytes) + l.cfg.PropagationDelay
}

// Send accepts a packet for transmission. raw is the full IP packet
// content (used only by the compressor; may be nil when no compressor is
// configured); wireBytes is its IP-level size. deliver runs at the instant
// the last bit arrives at the far end. Send reports whether the packet
// was accepted (false = dropped by the loss model).
func (l *Link) Send(raw []byte, wireBytes int, deliver func()) bool {
	return l.SendArg(raw, wireBytes, callFunc, deliver)
}

// callFunc invokes a boxed func(); it adapts Send's closure form to the
// allocation-free SendArg path.
func callFunc(a any) { a.(func())() }

// SendArg is Send for an argument-taking delivery function: fn(arg) runs
// at the instant the last bit arrives. With fn a package-level function
// and arg a pointer, accepting a packet allocates nothing — this is the
// form the TCP hot path uses.
func (l *Link) SendArg(raw []byte, wireBytes int, fn func(any), arg any) bool {
	idx := l.sent
	l.sent++
	if l.cfg.MTU > 0 && wireBytes > l.cfg.MTU {
		panic(fmt.Sprintf("netem: packet of %d bytes exceeds MTU %d on %s", wireBytes, l.cfg.MTU, l.name))
	}
	if l.cfg.Loss != nil && l.cfg.Loss(idx, wireBytes) {
		l.dropped++
		if l.cfg.Observer != nil {
			now := l.sim.Now()
			l.cfg.Observer(LinkEvent{
				Link: l.name, WireBytes: wireBytes, Dropped: true,
				Start: now, Done: now, Arrive: now,
			})
		}
		return false
	}

	bits := int64(wireBytes+l.cfg.PerPacketOverheadBytes) * 8
	if l.cfg.Compressor != nil {
		buf := raw
		if buf == nil {
			buf = make([]byte, wireBytes)
		}
		bits = int64(l.cfg.Compressor.CompressedBits(buf))
		// Framing overhead is not compressed away.
		bits += int64(l.cfg.PerPacketOverheadBytes) * 8
	}
	l.wireBits += bits

	var ser time.Duration
	if l.cfg.BitsPerSecond > 0 {
		ser = time.Duration(bits * int64(time.Second) / l.cfg.BitsPerSecond)
	}

	start := l.sim.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done := start.Add(ser)
	l.busyUntil = done
	arrive := done.Add(l.cfg.PropagationDelay)
	l.sim.AtArg(arrive, fn, arg)
	if l.cfg.Observer != nil {
		l.cfg.Observer(LinkEvent{
			Link: l.name, WireBytes: wireBytes,
			Start: start, Done: done, Arrive: arrive,
		})
	}
	return true
}

// Path is a bidirectional point-to-point connection.
type Path struct {
	// AB carries packets from endpoint A to endpoint B; BA the reverse.
	AB, BA *Link
}

// Sent returns the number of packets accepted for transmission on both
// directions together (including dropped ones).
func (p *Path) Sent() int { return p.AB.Sent() + p.BA.Sent() }

// Dropped returns the number of packets dropped by the loss model on
// both directions together.
func (p *Path) Dropped() int { return p.AB.Dropped() + p.BA.Dropped() }

// WireBits returns the cumulative serialized size of both directions,
// after link compression — the quantity a line monitor on the physical
// channel would count.
func (p *Path) WireBits() int64 { return p.AB.WireBits() + p.BA.WireBits() }

// NewPath builds a symmetric path from a single direction config.
func NewPath(s *sim.Simulator, name string, cfg Config) *Path {
	cfgBA := cfg
	// Stateful parts must not be shared between directions.
	if cfg.Compressor != nil {
		panic("netem: NewPath cannot share a compressor between directions; use NewAsymPath")
	}
	return &Path{
		AB: NewLink(s, name+"→", cfg),
		BA: NewLink(s, name+"←", cfgBA),
	}
}

// NewAsymPath builds a path with independent per-direction configs.
func NewAsymPath(s *sim.Simulator, name string, ab, ba Config) *Path {
	return &Path{
		AB: NewLink(s, name+"→", ab),
		BA: NewLink(s, name+"←", ba),
	}
}
