package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Environment names the three network environments of the paper's Table 1.
type Environment int

const (
	// LAN is the high-bandwidth, low-latency environment:
	// 10 Mbit Ethernet, RTT < 1 ms, MSS 1460.
	LAN Environment = iota
	// WAN is the high-bandwidth, high-latency environment:
	// transcontinental Internet, RTT ~90 ms, MSS 1460.
	WAN
	// PPP is the low-bandwidth, high-latency environment:
	// 28.8 kbit/s dialup, RTT ~150 ms, MSS 1460.
	PPP
)

// String returns the environment's short name as used in the paper.
func (e Environment) String() string {
	switch e {
	case LAN:
		return "LAN"
	case WAN:
		return "WAN"
	case PPP:
		return "PPP"
	}
	return fmt.Sprintf("Environment(%d)", int(e))
}

// Environments lists all three environments in paper order.
var Environments = []Environment{LAN, WAN, PPP}

// Profile summarizes an environment for display (Table 1).
type Profile struct {
	Env        Environment
	Channel    string
	Connection string
	RTT        time.Duration
	MSS        int
	Bandwidth  int64 // bits per second, per direction
}

// Profiles reproduces Table 1 of the paper.
var Profiles = map[Environment]Profile{
	LAN: {
		Env:        LAN,
		Channel:    "High bandwidth, low latency",
		Connection: "LAN - 10Mbit Ethernet",
		RTT:        600 * time.Microsecond,
		MSS:        1460,
		Bandwidth:  10_000_000,
	},
	WAN: {
		Env:        WAN,
		Channel:    "High bandwidth, high latency",
		Connection: "WAN - MA (MIT/LCS) to CA (LBL)",
		RTT:        90 * time.Millisecond,
		MSS:        1460,
		Bandwidth:  1_500_000,
	},
	PPP: {
		Env:        PPP,
		Channel:    "Low bandwidth, high latency",
		Connection: "PPP - 28.8k modem line",
		RTT:        150 * time.Millisecond,
		MSS:        1460,
		Bandwidth:  28_800,
	},
}

// PathOptions tunes profile instantiation.
type PathOptions struct {
	// ModemCompression enables a V.42bis-style stream compressor on both
	// directions (only meaningful for PPP).
	ModemCompression func() StreamCompressor
	// RTTJitterFrac perturbs propagation delay by ±frac using rng
	// (reproduces run-to-run network fluctuation). Zero disables.
	RTTJitterFrac float64
	Rng           *sim.Rand
	// Loss injects deterministic loss on both directions.
	Loss LossFunc
	// Observer, if non-nil, observes every packet on both directions.
	Observer Observer
}

// NewEnvPath instantiates an environment as a Path. Endpoint A is the
// client, B the server.
func NewEnvPath(s *sim.Simulator, env Environment, opts PathOptions) *Path {
	p, ok := Profiles[env]
	if !ok {
		panic(fmt.Sprintf("netem: unknown environment %v", env))
	}
	rtt := p.RTT
	if opts.RTTJitterFrac > 0 && opts.Rng != nil {
		rtt = opts.Rng.Jitter(rtt, opts.RTTJitterFrac)
	}
	cfg := Config{
		BitsPerSecond:    p.Bandwidth,
		PropagationDelay: rtt / 2,
		MTU:              p.MSS + IPTCPHeaderBytes,
		Loss:             opts.Loss,
		Observer:         opts.Observer,
	}
	if env == PPP {
		// PPP framing: flag, address, control, protocol, FCS ≈ 8 bytes.
		cfg.PerPacketOverheadBytes = 8
	}
	ab, ba := cfg, cfg
	if opts.ModemCompression != nil {
		ab.Compressor = opts.ModemCompression()
		ba.Compressor = opts.ModemCompression()
	}
	return NewAsymPath(s, env.String(), ab, ba)
}
