package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Environment names the three network environments of the paper's Table 1.
type Environment int

const (
	// LAN is the high-bandwidth, low-latency environment:
	// 10 Mbit Ethernet, RTT < 1 ms, MSS 1460.
	LAN Environment = iota
	// WAN is the high-bandwidth, high-latency environment:
	// transcontinental Internet, RTT ~90 ms, MSS 1460.
	WAN
	// PPP is the low-bandwidth, high-latency environment:
	// 28.8 kbit/s dialup, RTT ~150 ms, MSS 1460.
	PPP
)

// String returns the environment's short name as used in the paper.
func (e Environment) String() string {
	switch e {
	case LAN:
		return "LAN"
	case WAN:
		return "WAN"
	case PPP:
		return "PPP"
	}
	return fmt.Sprintf("Environment(%d)", int(e))
}

// Environments lists all three environments in paper order.
var Environments = []Environment{LAN, WAN, PPP}

// Profile summarizes an environment for display (Table 1).
type Profile struct {
	Env        Environment
	Channel    string
	Connection string
	RTT        time.Duration
	MSS        int
	Bandwidth  int64 // bits per second, per direction
}

// Profiles reproduces Table 1 of the paper.
var Profiles = map[Environment]Profile{
	LAN: {
		Env:        LAN,
		Channel:    "High bandwidth, low latency",
		Connection: "LAN - 10Mbit Ethernet",
		RTT:        600 * time.Microsecond,
		MSS:        1460,
		Bandwidth:  10_000_000,
	},
	WAN: {
		Env:        WAN,
		Channel:    "High bandwidth, high latency",
		Connection: "WAN - MA (MIT/LCS) to CA (LBL)",
		RTT:        90 * time.Millisecond,
		MSS:        1460,
		Bandwidth:  1_500_000,
	},
	PPP: {
		Env:        PPP,
		Channel:    "Low bandwidth, high latency",
		Connection: "PPP - 28.8k modem line",
		RTT:        150 * time.Millisecond,
		MSS:        1460,
		Bandwidth:  28_800,
	},
}

// PathOptions tunes profile instantiation.
type PathOptions struct {
	// ModemCompression enables a V.42bis-style stream compressor on both
	// directions (only meaningful for PPP).
	ModemCompression func() StreamCompressor
	// RTTJitterFrac perturbs propagation delay by ±frac using rng
	// (reproduces run-to-run network fluctuation). Zero disables.
	RTTJitterFrac float64
	Rng           *sim.Rand
	// Loss injects deterministic loss on both directions. Stateful loss
	// models must not be shared between directions; use LossAB/LossBA.
	Loss LossFunc
	// LossAB and LossBA, when non-nil, take precedence over Loss for
	// their direction (AB = endpoint A toward B, i.e. client→server).
	// They allow asymmetric faults — e.g. a one-direction blackhole —
	// and give each direction its own instance of a stateful model.
	LossAB, LossBA LossFunc
	// Observer, if non-nil, observes every packet on both directions.
	Observer Observer
}

// NewEnvPath instantiates an environment as a Path. Endpoint A is the
// client, B the server.
func NewEnvPath(s *sim.Simulator, env Environment, opts PathOptions) *Path {
	p, ok := Profiles[env]
	if !ok {
		panic(fmt.Sprintf("netem: unknown environment %v", env))
	}
	rtt := p.RTT
	if opts.RTTJitterFrac > 0 && opts.Rng != nil {
		rtt = opts.Rng.Jitter(rtt, opts.RTTJitterFrac)
	}
	cfg := Config{
		BitsPerSecond:    p.Bandwidth,
		PropagationDelay: rtt / 2,
		MTU:              p.MSS + IPTCPHeaderBytes,
		Loss:             opts.Loss,
		Observer:         opts.Observer,
	}
	if env == PPP {
		// PPP framing: flag, address, control, protocol, FCS ≈ 8 bytes.
		cfg.PerPacketOverheadBytes = 8
	}
	ab, ba := cfg, cfg
	if opts.LossAB != nil {
		ab.Loss = opts.LossAB
	}
	if opts.LossBA != nil {
		ba.Loss = opts.LossBA
	}
	if opts.ModemCompression != nil {
		ab.Compressor = opts.ModemCompression()
		ba.Compressor = opts.ModemCompression()
	}
	return NewAsymPath(s, env.String(), ab, ba)
}

// GilbertElliott returns a two-state burst-loss model (Gilbert–Elliott):
// a Markov chain alternating between a good state dropping with
// probability lossGood and a bad state dropping with probability
// lossBad, switching good→bad with probability pGB and bad→good with
// pBG per packet. The chain starts good. All randomness comes from a
// SplitMix64 stream seeded with seed, so the drop schedule is a pure
// function of (seed, packet index) — byte-identical at any parallelism.
// The returned closure is stateful: build one instance per link
// direction, never share it.
func GilbertElliott(seed uint64, pGB, pBG, lossGood, lossBad float64) LossFunc {
	rng := sim.NewRand(seed)
	bad := false
	return func(index, wireBytes int) bool {
		if bad {
			if rng.Float64() < pBG {
				bad = false
			}
		} else if rng.Float64() < pGB {
			bad = true
		}
		p := lossGood
		if bad {
			p = lossBad
		}
		return rng.Float64() < p
	}
}

// OutageWindows returns a link-flap loss model: within every period of
// `period` packets, the first `outage` packets are dropped, starting
// with the window at packet index `offset`. Packets before offset pass.
// The schedule depends only on the packet index, so it needs no RNG and
// the closure is stateless — but build one per direction anyway for
// symmetry with the stateful models.
func OutageWindows(offset, period, outage int) LossFunc {
	if period <= 0 {
		panic("netem: OutageWindows period must be positive")
	}
	return func(index, wireBytes int) bool {
		if index < offset {
			return false
		}
		return (index-offset)%period < outage
	}
}

// Blackhole returns a loss model dropping every packet with index in
// [from, to) — applied to a single direction via PathOptions.LossAB or
// LossBA it models a one-direction blackhole window.
func Blackhole(from, to int) LossFunc {
	return func(index, wireBytes int) bool {
		return index >= from && index < to
	}
}
