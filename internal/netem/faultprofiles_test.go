package netem

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// geSchedule collects the drop schedule of a fresh Gilbert–Elliott
// instance over n packets.
func geSchedule(seed uint64, n int) []int {
	lf := GilbertElliott(seed, 0.02, 0.25, 0.005, 0.30)
	var drops []int
	for i := 0; i < n; i++ {
		if lf(i, 1500) {
			drops = append(drops, i)
		}
	}
	return drops
}

// TestGilbertElliottGoldenSchedule pins the drop schedule for a fixed
// seed to golden values: the model must never change silently, because
// experiment tables are byte-compared across parallelism levels.
func TestGilbertElliottGoldenSchedule(t *testing.T) {
	drops := geSchedule(42, 5000)
	if len(drops) != 119 {
		t.Fatalf("drop count = %d, want 119", len(drops))
	}
	wantFirst := []int{85, 107, 284, 287, 314, 322, 329, 330, 361, 362,
		363, 412, 414, 608, 612, 692, 705, 715, 873, 891}
	for i, w := range wantFirst {
		if drops[i] != w {
			t.Fatalf("drops[%d] = %d, want %d (full head: %v)", i, drops[i], w, drops[:len(wantFirst)])
		}
	}
	wantLast := []int{4913, 4916, 4918}
	for i, w := range wantLast {
		if got := drops[len(drops)-3+i]; got != w {
			t.Fatalf("tail drop %d = %d, want %d", i, got, w)
		}
	}
}

// TestGilbertElliottParallelIdentical computes the same seed's schedule
// serially and from 8 concurrent goroutines (each with its own
// instance, as every simulation run constructs its own): the schedules
// must be byte-identical, which is what makes the faults experiment
// table identical at -parallel 1 and -parallel 8.
func TestGilbertElliottParallelIdentical(t *testing.T) {
	want := geSchedule(7, 4096)
	var wg sync.WaitGroup
	got := make([][]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = geSchedule(7, 4096)
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if len(g) != len(want) {
			t.Fatalf("worker %d: %d drops, want %d", w, len(g), len(want))
		}
		for i := range g {
			if g[i] != want[i] {
				t.Fatalf("worker %d: drops[%d] = %d, want %d", w, i, g[i], want[i])
			}
		}
	}
}

// TestOutageWindowsGolden pins the flap model's windows: with offset 50,
// period 400, outage 40, packets 50..89, 450..489, ... drop.
func TestOutageWindowsGolden(t *testing.T) {
	lf := OutageWindows(50, 400, 40)
	cases := []struct {
		index int
		drop  bool
	}{
		{0, false}, {49, false}, {50, true}, {89, true}, {90, false},
		{449, false}, {450, true}, {489, true}, {490, false}, {850, true},
	}
	for _, c := range cases {
		if got := lf(c.index, 1500); got != c.drop {
			t.Errorf("OutageWindows(%d) = %v, want %v", c.index, got, c.drop)
		}
	}
	drops := 0
	for i := 0; i < 4000; i++ {
		if lf(i, 1500) {
			drops++
		}
	}
	if drops != 10*40 {
		t.Errorf("drops over 4000 packets = %d, want 400", drops)
	}
}

// TestBlackholeWindow checks the one-direction blackhole drops exactly
// [from, to).
func TestBlackholeWindow(t *testing.T) {
	lf := Blackhole(10, 20)
	for i := 0; i < 30; i++ {
		want := i >= 10 && i < 20
		if got := lf(i, 100); got != want {
			t.Errorf("Blackhole(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestEnvPathDirectionalLoss verifies LossBA applies only to the
// server→client direction.
func TestEnvPathDirectionalLoss(t *testing.T) {
	s := sim.New()
	p := NewEnvPath(s, WAN, PathOptions{LossBA: Blackhole(0, 2)})
	delivered := 0
	deliver := func() { delivered++ }
	if !p.AB.Send(nil, 100, deliver) {
		t.Fatal("AB packet dropped; LossBA must not affect AB")
	}
	if p.BA.Send(nil, 100, deliver) {
		t.Fatal("BA packet 0 accepted; LossBA should drop it")
	}
	if p.BA.Send(nil, 100, deliver) {
		t.Fatal("BA packet 1 accepted; LossBA should drop it")
	}
	if !p.BA.Send(nil, 100, deliver) {
		t.Fatal("BA packet 2 dropped; blackhole window ended")
	}
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d packets, want 2", delivered)
	}
	if p.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", p.Dropped())
	}
}
