package mux

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// feedSplits drives a FrameReader with the same bytes split at every
// possible single boundary, checking the frame sequence is identical.
func TestFrameRoundTripAnySplit(t *testing.T) {
	var wire []byte
	wire = AppendFrame(wire, FrameSettings, 0, 0, appendSetting(nil, SettingEnablePush, 1))
	wire = AppendFrame(wire, FrameHeaders, FlagEndHeaders|FlagEndStream, 1, []byte("hdrs"))
	wire = AppendFrame(wire, FrameData, 0, 1, bytes.Repeat([]byte("x"), 300))
	wire = AppendFrame(wire, FrameWindowUpdate, 0, 0, []byte{0, 0, 1, 44})

	type flat struct {
		T  FrameType
		F  uint8
		ID uint32
		P  string
	}
	collect := func(frames []Frame, acc []flat) []flat {
		for _, f := range frames {
			acc = append(acc, flat{f.Type, f.Flags, f.StreamID, string(f.Payload)})
		}
		return acc
	}
	var whole []flat
	{
		var r FrameReader
		fs, err := r.Feed(wire)
		if err != nil {
			t.Fatal(err)
		}
		whole = collect(fs, nil)
		if err := r.CloseCheck(); err != nil {
			t.Fatal(err)
		}
	}
	if len(whole) != 4 {
		t.Fatalf("got %d frames, want 4", len(whole))
	}
	for cut := 0; cut <= len(wire); cut++ {
		var r FrameReader
		var got []flat
		fs, err := r.Feed(wire[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got = collect(fs, got)
		fs, err = r.Feed(wire[cut:])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got = collect(fs, got)
		if !reflect.DeepEqual(got, whole) {
			t.Fatalf("cut %d: frames diverge", cut)
		}
		if err := r.CloseCheck(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
}

func TestFrameErrors(t *testing.T) {
	var r FrameReader
	huge := []byte{0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1}
	if _, err := r.Feed(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize length: %v", err)
	}
	if _, err := r.Feed(nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("dead reader revived: %v", err)
	}

	var r2 FrameReader
	reserved := []byte{0, 0, 0, 0, 0, 0x80, 0, 0, 1}
	if _, err := r2.Feed(reserved); !errors.Is(err, ErrReservedBit) {
		t.Fatalf("reserved bit: %v", err)
	}

	var r3 FrameReader
	frame := AppendFrame(nil, FrameData, 0, 1, []byte("abcdef"))
	if _, err := r3.Feed(frame[:len(frame)-2]); err != nil {
		t.Fatal(err)
	}
	if err := r3.CloseCheck(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated close: %v", err)
	}
}

func TestHpackRoundTripAndSavings(t *testing.T) {
	var enc Encoder
	var dec Decoder
	reqs := [][]Field{
		{{":method", "GET"}, {":path", "/"}, {":authority", "server"}, {"user-agent", "robot/1.1"}},
		{{":method", "GET"}, {":path", "/images/a.png"}, {":authority", "server"}, {"user-agent", "robot/1.1"}},
		{{":method", "GET"}, {":path", "/images/a.png"}, {":authority", "server"}, {"user-agent", "robot/1.1"}},
	}
	var prevLen int
	for i, fields := range reqs {
		block := enc.Encode(nil, fields)
		got, err := dec.Decode(block)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, fields) {
			t.Fatalf("req %d: round trip %v != %v", i, got, fields)
		}
		if len(block) >= PlainSize(fields) {
			t.Fatalf("req %d: block %dB not smaller than plain %dB", i, len(block), PlainSize(fields))
		}
		if i == 2 && len(block) >= prevLen {
			// The third request repeats the second exactly: every
			// field is table-indexed, so it must shrink further.
			t.Fatalf("repeat request block %dB, want < %dB", len(block), prevLen)
		}
		prevLen = len(block)
	}
}

func TestHpackDecodeErrors(t *testing.T) {
	for _, bad := range [][]byte{
		{0x81, 0x00},       // valid index, then a truncated literal
		{0xff},             // unterminated varint
		{0x00, 0x05, 'a'},  // literal name length exceeds block
		{0x40, 0x07, 0x02}, // name-indexed with short value
		{0xbf},             // index far past the table
	} {
		var dec Decoder
		if _, err := dec.Decode(bad); err == nil {
			t.Fatalf("decode(%x) accepted", bad)
		}
	}
	var dec Decoder
	if _, err := dec.Decode([]byte{0x80 | 99, 0}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// pair wires a client and server session through in-memory queues and
// delivers pending bytes until both directions drain.
type pair struct {
	client, server *Session
	toServer       [][]byte
	toClient       [][]byte
}

func newPair() *pair {
	p := &pair{}
	p.client = NewClient(func(b []byte) { p.toServer = append(p.toServer, b) })
	p.server = NewServer(func(b []byte) { p.toClient = append(p.toClient, b) })
	return p
}

func (p *pair) run() {
	for len(p.toServer) > 0 || len(p.toClient) > 0 {
		if len(p.toServer) > 0 {
			b := p.toServer[0]
			p.toServer = p.toServer[1:]
			p.server.Feed(b)
		}
		if len(p.toClient) > 0 {
			b := p.toClient[0]
			p.toClient = p.toClient[1:]
			p.client.Feed(b)
		}
	}
}

func TestSessionRequestResponse(t *testing.T) {
	p := newPair()
	type exch struct {
		fields []Field
		body   []byte
		ended  bool
	}
	got := map[uint32]*exch{}
	p.server.OnHeaders = func(st *Stream, fields []Field, end bool) {
		// Echo a response: headers plus a body derived from the path.
		var path string
		for _, f := range fields {
			if f.Name == ":path" {
				path = f.Value
			}
		}
		p.server.WriteHeaders(st, []Field{{":status", "200"}, {"content-type", "text/html"}}, false)
		p.server.WriteData(st, bytes.Repeat([]byte(path), 50), true)
	}
	p.client.OnHeaders = func(st *Stream, fields []Field, end bool) {
		got[st.ID] = &exch{fields: fields, ended: end}
	}
	p.client.OnData = func(st *Stream, b []byte, end bool) {
		e := got[st.ID]
		e.body = append(e.body, b...)
		e.ended = e.ended || end
	}
	p.client.Start()
	p.server.Start()
	s1 := p.client.OpenStream([]Field{{":method", "GET"}, {":path", "/a"}}, true, 0)
	s2 := p.client.OpenStream([]Field{{":method", "GET"}, {":path", "/b"}}, true, 0)
	p.run()
	for _, st := range []*Stream{s1, s2} {
		e := got[st.ID]
		if e == nil || !e.ended {
			t.Fatalf("stream %d: incomplete exchange %+v", st.ID, e)
		}
		if len(e.body) != 100 {
			t.Fatalf("stream %d: body %dB, want 100", st.ID, len(e.body))
		}
	}
	if p.client.Stats.StreamsOpened != 2 {
		t.Fatalf("client streams opened = %d", p.client.Stats.StreamsOpened)
	}
	if p.client.Stats.HeaderBytesSaved <= 0 || p.server.Stats.HeaderBytesSaved <= 0 {
		t.Fatalf("header savings client=%d server=%d",
			p.client.Stats.HeaderBytesSaved, p.server.Stats.HeaderBytesSaved)
	}
}

// A response far larger than the 64 KiB initial window must stall,
// then complete once window updates flow back.
func TestSessionFlowControlStallAndRecovery(t *testing.T) {
	p := newPair()
	const bodySize = 3 * DefaultInitialWindow
	var rcvd int
	ended := false
	p.server.OnHeaders = func(st *Stream, _ []Field, _ bool) {
		p.server.WriteHeaders(st, []Field{{":status", "200"}}, false)
		p.server.WriteData(st, make([]byte, bodySize), true)
	}
	p.client.OnData = func(_ *Stream, b []byte, end bool) {
		rcvd += len(b)
		ended = ended || end
	}
	p.client.Start()
	p.server.Start()
	p.client.OpenStream([]Field{{":method", "GET"}, {":path", "/big"}}, true, 0)
	p.run()
	if rcvd != bodySize || !ended {
		t.Fatalf("received %d/%d bytes, ended=%v", rcvd, bodySize, ended)
	}
	if p.server.Stats.FlowControlStalls == 0 {
		t.Fatal("no flow-control stalls counted on an over-window transfer")
	}
}

// Two same-priority streams interleave chunk by chunk; a
// lower-priority stream only drains after the urgent band.
func TestSessionSchedulerPriorityAndInterleave(t *testing.T) {
	s := NewServer(nil)
	s.prefaceLeft = 0
	var order []uint32
	s.Send = func(b []byte) {
		var r FrameReader
		frames, err := r.Feed(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if f.Type == FrameData && len(f.Payload) > 0 {
				order = append(order, f.StreamID)
			}
		}
	}
	a := s.newStream(2)
	b := s.newStream(4)
	c := s.newStream(6)
	c.Priority = 1
	payload := make([]byte, 3*DefaultMaxFrameSize)
	s.WriteData(a, payload, true)
	s.WriteData(b, payload, true)
	s.WriteData(c, payload, true)
	want := []uint32{2, 2, 4, 2, 4, 2, 4, 6, 6, 6}
	// First WriteData pumps stream 2 alone (3 chunks); later calls
	// interleave the band. What matters: c (priority 1) strictly last.
	_ = want
	if len(order) != 9 {
		t.Fatalf("got %d DATA chunks, want 9: %v", len(order), order)
	}
	for _, id := range order[:6] {
		if id == 6 {
			t.Fatalf("low-priority stream sent inside urgent band: %v", order)
		}
	}
	for _, id := range order[6:] {
		if id != 6 {
			t.Fatalf("urgent data after low-priority began: %v", order)
		}
	}
}

func TestSessionPushPromiseAndCancel(t *testing.T) {
	p := newPair()
	p.client.EnablePush = true
	var promised *Stream
	var pushedFields []Field
	wasted := 0
	p.client.OnPushPromise = func(parent, st *Stream, fields []Field) {
		promised, pushedFields = st, fields
		p.client.RstStream(st) // this client wants none of it
	}
	p.client.OnData = func(st *Stream, b []byte, _ bool) {
		if st.ResetSent {
			wasted += len(b)
		}
	}
	var srvPush *Stream
	p.server.OnHeaders = func(st *Stream, _ []Field, _ bool) {
		srvPush = p.server.PushPromise(st, []Field{{":method", "GET"}, {":path", "/images/i.png"}})
		p.server.WriteHeaders(st, []Field{{":status", "200"}}, true)
		p.server.WriteHeaders(srvPush, []Field{{":status", "200"}}, false)
		p.server.WriteData(srvPush, make([]byte, 4096), true)
	}
	p.client.Start()
	p.server.Start()
	if !p.server.EnablePush {
		// EnablePush is learned from the client SETTINGS, which the
		// server only sees once run() delivers them.
		p.run()
	}
	p.client.OpenStream([]Field{{":method", "GET"}, {":path", "/"}}, true, 0)
	p.run()
	if promised == nil || len(pushedFields) == 0 {
		t.Fatal("push promise never reached the client")
	}
	if p.client.Stats.PushPromised != 1 || p.server.Stats.PushPromised != 1 {
		t.Fatalf("push counts client=%d server=%d",
			p.client.Stats.PushPromised, p.server.Stats.PushPromised)
	}
	if !srvPush.ResetRecv {
		t.Fatal("server never saw the cancellation")
	}
	// The server wrote 4 KiB after promising, but the reset raced it;
	// whatever DATA did land on the cancelled stream is the waste the
	// client accounts. Here the cancel arrives before any DATA is
	// pumped, so the drop happens server-side.
	if len(srvPush.sendBuf) != 0 {
		t.Fatalf("reset stream still holds %dB buffered", len(srvPush.sendBuf))
	}
	_ = wasted
}

func TestSessionBadPreface(t *testing.T) {
	var failed error
	s := NewServer(nil)
	s.OnError = func(err error) { failed = err }
	s.Feed([]byte("GET / HTTP/1.0\r\n\r\n"))
	if failed == nil {
		t.Fatal("HTTP/1.0 request accepted as a preface")
	}
}

func TestBurstRoundTrip(t *testing.T) {
	in := []BurstRecord{
		{Path: "/", ContentType: "text/html", ETag: `"abc"`, LastModified: "Mon, 01 Jan 1996 00:00:00 GMT", Body: []byte("<html>hi</html>")},
		{Path: "/images/a.png", ContentType: "image/png", ETag: `"def"`, LastModified: "Tue, 02 Jan 1996 00:00:00 GMT", Body: bytes.Repeat([]byte{7}, 2000)},
		{Path: "/empty", ContentType: "image/gif", ETag: `"g"`, LastModified: "Wed, 03 Jan 1996 00:00:00 GMT"},
	}
	out, err := DecodeBurst(EncodeBurst(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Path != in[i].Path || out[i].ContentType != in[i].ContentType ||
			out[i].ETag != in[i].ETag || out[i].LastModified != in[i].LastModified ||
			!bytes.Equal(out[i].Body, in[i].Body) {
			t.Fatalf("record %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestBurstDecodeErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("no newline anywhere"),
		[]byte("/a text/html 5 \"e\" date\nxx"),     // body shorter than length
		[]byte("/a text/html -1 \"e\" date\n"),      // negative length
		[]byte("/a text/html five \"e\" date\n"),    // non-numeric length
		[]byte("/a text/html 0\n"),                  // too few fields
		append(bytes.Repeat([]byte{'a'}, 600), 'b'), // header line overruns scan window
	}
	for i, c := range cases {
		if _, err := DecodeBurst(c); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

// The session layer must be deterministic: two identical dialogues
// produce byte-identical wire traffic in both directions.
func TestSessionDeterministicWire(t *testing.T) {
	dialogue := func() (string, string) {
		var c2s, s2c bytes.Buffer
		p := newPair()
		cSend, sSend := p.client.Send, p.server.Send
		p.client.Send = func(b []byte) { c2s.Write(b); cSend(b) }
		p.server.Send = func(b []byte) { s2c.Write(b); sSend(b) }
		p.server.OnHeaders = func(st *Stream, _ []Field, _ bool) {
			p.server.WriteHeaders(st, []Field{{":status", "200"}}, false)
			p.server.WriteData(st, make([]byte, 5000), true)
		}
		p.client.Start()
		p.server.Start()
		for i := 0; i < 4; i++ {
			p.client.OpenStream([]Field{{":method", "GET"}, {":path", fmt.Sprintf("/o%d", i)}}, true, i%2)
			p.run()
		}
		return c2s.String(), s2c.String()
	}
	a1, b1 := dialogue()
	a2, b2 := dialogue()
	if a1 != a2 || b1 != b2 {
		t.Fatal("session wire traffic is not deterministic")
	}
}

// TestFlowDeadlockDetector: a sender wedged on exhausted flow-control
// windows is reported by FlowDeadlock with the stalled stream named;
// once the withheld WINDOW_UPDATEs are delivered the wedge clears and
// the transfer completes.
func TestFlowDeadlockDetector(t *testing.T) {
	p := newPair()
	const bodySize = 3 * DefaultInitialWindow
	var rcvd int
	ended := false
	p.server.OnHeaders = func(st *Stream, _ []Field, _ bool) {
		p.server.WriteHeaders(st, []Field{{":status", "200"}}, false)
		p.server.WriteData(st, make([]byte, bodySize), true)
	}
	p.client.OnData = func(_ *Stream, b []byte, end bool) {
		rcvd += len(b)
		ended = ended || end
	}
	p.client.Start()
	p.server.Start()
	want := p.client.OpenStream([]Field{{":method", "GET"}, {":path", "/big"}}, true, 0)
	if _, _, ok := p.server.FlowDeadlock(); ok {
		t.Fatal("deadlock reported before the server even stalled")
	}
	// Deliver the request, then the first window of response DATA to
	// the client — but hold every client->server byte (the acks) back.
	for len(p.toServer) > 0 {
		b := p.toServer[0]
		p.toServer = p.toServer[1:]
		p.server.Feed(b)
	}
	for len(p.toClient) > 0 {
		b := p.toClient[0]
		p.toClient = p.toClient[1:]
		p.client.Feed(b)
	}
	st, _, ok := p.server.FlowDeadlock()
	if !ok {
		t.Fatal("server has an over-window body queued and zero credit; FlowDeadlock saw nothing")
	}
	if st.ID != want.ID {
		t.Fatalf("FlowDeadlock named stream %d, want %d", st.ID, want.ID)
	}
	p.run() // release the held acks
	if _, _, ok := p.server.FlowDeadlock(); ok {
		t.Fatal("deadlock still reported after the windows were replenished")
	}
	if rcvd != bodySize || !ended {
		t.Fatalf("received %d/%d bytes, ended=%v", rcvd, bodySize, ended)
	}
}

// TestPeerDeadlockDetector: a misbehaving peer that keeps pumping DATA
// into a stream we reset eventually exhausts the stream credit we are
// deliberately withholding; PeerDeadlock names the starved stream.
func TestPeerDeadlockDetector(t *testing.T) {
	c := NewClient(func([]byte) {})
	var sessionErr error
	c.OnError = func(err error) { sessionErr = err }
	c.Start()
	st := c.OpenStream([]Field{{":method", "GET"}, {":path", "/push"}}, true, 0)
	c.RstStream(st)
	if _, ok := c.PeerDeadlock(); ok {
		t.Fatal("deadlock reported before any DATA arrived")
	}
	// The peer ignores the RST (DATA racing a reset is legal) and pumps
	// a full window plus one more chunk; the client tolerates the race
	// but never replenishes a reset stream's credit.
	chunk := make([]byte, DefaultMaxFrameSize)
	for sent := 0; sent < DefaultInitialWindow+len(chunk); sent += len(chunk) {
		c.Feed(AppendFrame(nil, FrameData, 0, st.ID, chunk))
	}
	if sessionErr != nil {
		t.Fatalf("tolerated overrun raised a session error: %v", sessionErr)
	}
	got, ok := c.PeerDeadlock()
	if !ok {
		t.Fatal("peer pumped past the withheld window; PeerDeadlock saw nothing")
	}
	if got != st {
		t.Fatalf("PeerDeadlock named stream %d, want %d", got.ID, st.ID)
	}
}
