package mux

import (
	"fmt"
	"sort"
)

// Defaults mirror RFC 7540: a 65,535-octet initial flow-control
// window. The default max frame size is deliberately small — 1 KiB
// rather than HTTP/2's 16 KiB floor — so that DATA from concurrent
// streams actually interleaves on the paper's slow links instead of
// serializing into page-sized bursts.
const (
	DefaultInitialWindow = 65535
	DefaultMaxFrameSize  = 1024
)

// MaxWindow is the largest legal flow-control window (RFC 7540 §6.9.1:
// 2^31-1). A WINDOW_UPDATE or SETTINGS value that would push a window
// past it is a flow-control protocol violation.
const MaxWindow = 1<<31 - 1

// Stats counts what the session did; the client and server surface
// these as run metrics.
type Stats struct {
	StreamsOpened     int   // streams this side opened (incl. pushes)
	PushPromised      int   // PUSH_PROMISE frames sent or received
	HeaderBytesSaved  int64 // Σ (plain header size − encoded block size), both directions
	FlowControlStalls int   // transitions into a window-exhausted state
	FramesSent        int
	FramesReceived    int
	GoawaysSent       int // GOAWAY frames this side emitted
	ProtocolErrors    int // strict-validator rejections of peer frames
}

// Stream is one multiplexed request/response exchange.
type Stream struct {
	ID       uint32
	Priority int // lower is more urgent; set by the sending side only
	UserData any // caller's per-stream state; the session never touches it

	ResetSent bool    // we sent RST_STREAM (e.g. cancelling a push)
	ResetRecv bool    // peer reset the stream
	ResetCode ErrCode // error code carried on the RST_STREAM, either direction

	sendWindow int
	recvWindow int // credit we have granted the peer for this stream
	sendBuf    []byte
	endPending bool // FlagEndStream owed once sendBuf drains
	endSent    bool
	recvEnded  bool
	stalled    bool // currently blocked on flow control (for edge-counting)
}

// done reports whether the stream has nothing left to send.
func (st *Stream) done() bool {
	return len(st.sendBuf) == 0 && !st.endPending
}

// Session is one end of a multiplexed connection. It is purely
// computational: bytes in via Feed, bytes out via the Send callback,
// no timers and no I/O, which is what keeps it deterministic under
// any event-engine or parallelism setting.
type Session struct {
	// Send transmits marshalled frames. Each public call flushes at
	// most once, with every frame it generated batched into a single
	// byte slice.
	Send func([]byte)

	// MaxFrameSize caps outgoing DATA payloads (the interleaving
	// quantum). Lowered further if the peer advertises a smaller
	// SETTINGS_MAX_FRAME_SIZE.
	MaxFrameSize int

	// InitialWindow is the per-stream receive window this side
	// advertises; the peer's streams start with it as their send
	// window.
	InitialWindow int

	// EnablePush: on a client, advertised in the initial SETTINGS;
	// on a server, learned from the client's SETTINGS.
	EnablePush bool

	// FIFO switches the DATA pump from the default (priority, id)
	// scheduling to strict first-come-first-served stream order: the
	// earliest-opened stream with queued data drains completely before
	// the next gets a frame (a flow-control-blocked stream yields so
	// the session cannot wedge). The stream-priority ablation knob.
	FIFO bool

	// Callbacks. All optional; fired synchronously from Feed.
	OnHeaders     func(st *Stream, fields []Field, endStream bool)
	OnData        func(st *Stream, p []byte, endStream bool)
	OnPushPromise func(parent, promised *Stream, fields []Field)
	OnRstStream   func(st *Stream)
	OnSettings    func(id uint16, val uint32)
	OnError       func(err error)
	// OnGoaway fires when the peer announces a session close.
	// lastStreamID is the highest peer-initiated stream the sender may
	// still process; anything above it was never acted on.
	OnGoaway func(lastStreamID uint32, code ErrCode)
	// OnStall fires on each transition into a flow-control stall;
	// conn reports whether the connection window (vs st's stream
	// window) is the exhausted one.
	OnStall func(st *Stream, conn bool)
	// OnFrameSent fires for every frame marshalled for sending —
	// observability taps (Perfetto frame instants) hang here.
	OnFrameSent func(t FrameType, streamID uint32, payloadLen int)

	Stats Stats

	server      bool
	nextID      uint32 // next locally-initiated stream ID (odd client / even server)
	lastPeerID  uint32 // highest peer-initiated stream ID accepted so far
	prefaceLeft int    // server: preface bytes still owed by the client

	streams map[uint32]*Stream
	order   []*Stream // creation order; scheduling iterates this, never the map

	enc Encoder
	dec Decoder
	fr  FrameReader

	connSendWindow int
	connRecvWindow int // credit we have granted the peer for the connection
	peerWindow     int // peer's advertised initial stream window
	connRecvAcc    int // bytes consumed since the last conn WINDOW_UPDATE
	recvAcc        map[uint32]int
	connStalled    bool
	goawaySent     bool
	goawayRecv     bool
	failed         bool

	out []byte // frames accumulated by the current public call
}

func newSession(send func([]byte)) *Session {
	return &Session{
		Send:           send,
		MaxFrameSize:   DefaultMaxFrameSize,
		InitialWindow:  DefaultInitialWindow,
		streams:        make(map[uint32]*Stream),
		recvAcc:        make(map[uint32]int),
		connSendWindow: DefaultInitialWindow,
		connRecvWindow: DefaultInitialWindow,
		peerWindow:     DefaultInitialWindow,
	}
}

// NewClient returns the client end of a session. Call Start before
// opening streams.
func NewClient(send func([]byte)) *Session {
	s := newSession(send)
	s.nextID = 1
	return s
}

// NewServer returns the server end. Its Feed expects the client
// preface as the first bytes on the connection.
func NewServer(send func([]byte)) *Session {
	s := newSession(send)
	s.server = true
	s.nextID = 2
	s.prefaceLeft = len(Preface)
	return s
}

// Start emits the connection preamble: the preface (client only) and
// this side's SETTINGS.
func (s *Session) Start() {
	if !s.server {
		s.out = append(s.out, Preface...)
	}
	var p []byte
	push := uint32(0)
	if s.EnablePush && !s.server {
		push = 1
	}
	p = appendSetting(p, SettingEnablePush, push)
	p = appendSetting(p, SettingInitialWindowSize, uint32(s.InitialWindow))
	p = appendSetting(p, SettingMaxFrameSize, uint32(s.MaxFrameSize))
	s.emit(FrameSettings, 0, 0, p)
	s.flush()
}

// OpenStream opens a locally-initiated stream carrying a request (or
// response) header block. endStream marks a bodiless exchange.
func (s *Session) OpenStream(fields []Field, endStream bool, priority int) *Stream {
	st := s.newStream(s.nextID)
	s.nextID += 2
	st.Priority = priority
	s.Stats.StreamsOpened++
	s.writeHeaderBlock(FrameHeaders, st, st.ID, fields, endStream)
	s.flush()
	return st
}

// PushPromise reserves an even server-initiated stream announcing a
// push of the request described by fields, promised on parent.
func (s *Session) PushPromise(parent *Stream, fields []Field) *Stream {
	st := s.newStream(s.nextID)
	s.nextID += 2
	s.Stats.StreamsOpened++
	s.Stats.PushPromised++
	block := s.enc.Encode(nil, fields)
	s.Stats.HeaderBytesSaved += int64(PlainSize(fields) - len(block))
	p := make([]byte, 0, 4+len(block))
	p = append(p, byte(st.ID>>24), byte(st.ID>>16), byte(st.ID>>8), byte(st.ID))
	p = append(p, block...)
	s.emit(FramePushPromise, FlagEndHeaders, parent.ID, p)
	s.flush()
	return st
}

// WriteHeaders sends a header block (typically a response) on st.
func (s *Session) WriteHeaders(st *Stream, fields []Field, endStream bool) {
	s.writeHeaderBlock(FrameHeaders, st, st.ID, fields, endStream)
	s.flush()
}

func (s *Session) writeHeaderBlock(t FrameType, st *Stream, onID uint32, fields []Field, endStream bool) {
	block := s.enc.Encode(nil, fields)
	s.Stats.HeaderBytesSaved += int64(PlainSize(fields) - len(block))
	flags := FlagEndHeaders
	if endStream {
		flags |= FlagEndStream
		st.endSent = true
	}
	s.emit(t, flags, onID, block)
}

// WriteData queues body bytes on st; the scheduler interleaves and
// flow-controls the actual DATA frames. endStream marks the final
// write.
func (s *Session) WriteData(st *Stream, p []byte, endStream bool) {
	if st.ResetRecv || st.ResetSent {
		return // peer gave up on this stream; drop the body
	}
	st.sendBuf = append(st.sendBuf, p...)
	if endStream {
		st.endPending = true
	}
	s.pump()
	s.flush()
}

// RstStream abandons st (e.g. a client cancelling an unwanted push).
func (s *Session) RstStream(st *Stream) {
	s.RstStreamCode(st, ErrCodeCancel)
}

// RstStreamCode tears st down with an explicit error code: CANCEL for
// "no longer wanted", anything else for per-stream error teardown
// (e.g. a watchdog expiring one wedged stream while the rest of the
// session keeps going).
func (s *Session) RstStreamCode(st *Stream, code ErrCode) {
	if st.ResetSent {
		return
	}
	st.ResetSent = true
	st.ResetCode = code
	st.sendBuf = nil
	st.endPending = false
	s.emit(FrameRstStream, 0, st.ID,
		[]byte{byte(code >> 24), byte(code >> 16), byte(code >> 8), byte(code)})
	s.flush()
}

// Goaway announces a session close with the given error code; the
// payload carries the highest peer-initiated stream ID this side acted
// on. Emitted at most once per session.
func (s *Session) Goaway(code ErrCode) {
	if s.goawaySent {
		return
	}
	s.goawaySent = true
	s.Stats.GoawaysSent++
	last := s.lastPeerID
	s.emit(FrameGoaway, 0, 0, []byte{
		byte(last >> 24), byte(last >> 16), byte(last >> 8), byte(last),
		byte(code >> 24), byte(code >> 16), byte(code >> 8), byte(code)})
	s.flush()
}

// SentGoaway reports whether this side has emitted a GOAWAY.
func (s *Session) SentGoaway() bool { return s.goawaySent }

// RecvGoaway reports whether the peer announced a session close.
func (s *Session) RecvGoaway() bool { return s.goawayRecv }

// Feed processes bytes arriving from the transport, firing callbacks
// for each decoded frame and emitting any frames they provoke
// (window updates, scheduled DATA) as one batched Send.
func (s *Session) Feed(data []byte) {
	if s.prefaceLeft > 0 {
		n := min(s.prefaceLeft, len(data))
		want := Preface[len(Preface)-s.prefaceLeft:][:n]
		if string(data[:n]) != want {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: bad connection preface"))
			return
		}
		s.prefaceLeft -= n
		data = data[n:]
		if len(data) == 0 {
			return
		}
	}
	frames, err := s.fr.Feed(data)
	for _, f := range frames {
		s.Stats.FramesReceived++
		s.dispatch(f)
	}
	if err != nil {
		s.protoErr(ErrCodeProtocol, err)
	}
	s.ackWindows()
	s.pump()
	s.flush()
}

// CloseCheck reports whether the peer's byte stream ended on a frame
// boundary; call it on peer half-close.
func (s *Session) CloseCheck() error {
	if s.prefaceLeft > 0 {
		return fmt.Errorf("mux: connection closed inside preface")
	}
	return s.fr.CloseCheck()
}

// Streams returns all streams in creation order.
func (s *Session) Streams() []*Stream {
	return s.order
}

// FlowDeadlock reports whether this side's sender is wedged on flow
// control: it has queued bytes (or an owed END_STREAM) it cannot emit
// because a window is exhausted. It names the first such stream in
// creation order and whether the connection window (vs the stream's
// own) is the exhausted one. Pure inspection — safe to call at any
// quiescent point (the watchdog, end of run) without perturbing the
// session.
func (s *Session) FlowDeadlock() (st *Stream, conn bool, ok bool) {
	for _, c := range s.order {
		if c.done() || c.ResetSent || c.ResetRecv {
			continue
		}
		if s.connStalled && s.connSendWindow <= 0 {
			return c, true, true
		}
		if c.stalled && c.sendWindow <= 0 {
			return c, false, true
		}
	}
	return nil, false, false
}

// PeerDeadlock reports whether the peer's sender is provably wedged
// by credit this side withheld: a stream the peer has not finished
// whose granted window (or the connection's) is exhausted and will
// never be replenished because we stopped acking it. This is the
// classic flow-control deadlock — e.g. a server that keeps pumping a
// push the client reset — and it names the starved stream.
func (s *Session) PeerDeadlock() (st *Stream, ok bool) {
	for _, c := range s.order {
		if c.recvEnded || c.ResetRecv {
			continue
		}
		if s.connRecvWindow <= 0 || c.recvWindow <= 0 {
			return c, true
		}
	}
	return nil, false
}

func (s *Session) newStream(id uint32) *Stream {
	st := &Stream{ID: id, sendWindow: s.peerWindow, recvWindow: s.InitialWindow}
	s.streams[id] = st
	s.order = append(s.order, st)
	return st
}

func (s *Session) dispatch(f Frame) {
	switch f.Type {
	case FrameSettings:
		if f.StreamID != 0 {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: SETTINGS on stream %d", f.StreamID))
			return
		}
		pairs, err := parseSettings(f.Payload)
		if err != nil {
			s.protoErr(ErrCodeProtocol, err)
			return
		}
		for _, kv := range pairs {
			id, val := uint16(kv[0]), kv[1]
			switch id {
			case SettingEnablePush:
				if s.server {
					s.EnablePush = val == 1
				}
			case SettingInitialWindowSize:
				if val > MaxWindow {
					s.protoErr(ErrCodeFlowControl,
						fmt.Errorf("mux: SETTINGS initial window %d exceeds 2^31-1", val))
					return
				}
				s.peerWindow = int(val)
			case SettingMaxFrameSize:
				if val == 0 || val > MaxFrameLen {
					s.protoErr(ErrCodeProtocol,
						fmt.Errorf("mux: SETTINGS max frame size %d out of range", val))
					return
				}
				if int(val) < s.MaxFrameSize {
					s.MaxFrameSize = int(val)
				}
			}
			if s.OnSettings != nil {
				s.OnSettings(id, val)
			}
		}

	case FrameHeaders:
		st, err := s.recvStream(f.StreamID)
		if err != nil {
			s.protoErr(ErrCodeProtocol, err)
			return
		}
		fields, err := s.dec.Decode(f.Payload)
		if err != nil {
			s.protoErr(ErrCodeProtocol, err)
			return
		}
		s.Stats.HeaderBytesSaved += int64(PlainSize(fields) - len(f.Payload))
		end := f.Flags&FlagEndStream != 0
		if end {
			st.recvEnded = true
		}
		if s.OnHeaders != nil {
			s.OnHeaders(st, fields, end)
		}

	case FramePushPromise:
		if s.server {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: PUSH_PROMISE from the client"))
			return
		}
		if len(f.Payload) < 4 {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: short PUSH_PROMISE payload"))
			return
		}
		pid := uint32(f.Payload[0])<<24 | uint32(f.Payload[1])<<16 |
			uint32(f.Payload[2])<<8 | uint32(f.Payload[3])
		parent := s.streams[f.StreamID]
		if f.StreamID == 0 || parent == nil {
			s.protoErr(ErrCodeProtocol,
				fmt.Errorf("mux: PUSH_PROMISE on unknown stream %d", f.StreamID))
			return
		}
		if pid == 0 || pid%2 != 0 || pid <= s.lastPeerID || s.streams[pid] != nil {
			s.protoErr(ErrCodeProtocol,
				fmt.Errorf("mux: PUSH_PROMISE with invalid promised stream %d", pid))
			return
		}
		fields, err := s.dec.Decode(f.Payload[4:])
		if err != nil {
			s.protoErr(ErrCodeProtocol, err)
			return
		}
		s.Stats.HeaderBytesSaved += int64(PlainSize(fields) - (len(f.Payload) - 4))
		s.Stats.PushPromised++
		s.lastPeerID = pid
		promised := s.newStream(pid)
		if s.OnPushPromise != nil {
			s.OnPushPromise(parent, promised, fields)
		}

	case FrameData:
		n := len(f.Payload)
		st := s.streams[f.StreamID]
		if f.StreamID == 0 || st == nil {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: DATA on unknown stream %d", f.StreamID))
			return
		}
		if s.connRecvWindow -= n; s.connRecvWindow < 0 {
			s.protoErr(ErrCodeFlowControl,
				fmt.Errorf("mux: peer overran the connection window by %d bytes", -s.connRecvWindow))
			return
		}
		st.recvWindow -= n
		if st.recvWindow < 0 && !st.ResetSent {
			// Tolerate overruns on streams we reset (DATA racing the
			// RST is legal); anywhere else it is a violation.
			s.protoErr(ErrCodeFlowControl,
				fmt.Errorf("mux: peer overran stream %d window by %d bytes", st.ID, -st.recvWindow))
			return
		}
		s.connRecvAcc += n
		if !st.ResetSent {
			s.recvAcc[f.StreamID] += n
		}
		end := f.Flags&FlagEndStream != 0
		if end {
			st.recvEnded = true
		}
		if s.OnData != nil {
			s.OnData(st, f.Payload, end)
		}

	case FrameWindowUpdate:
		if len(f.Payload) != 4 {
			s.protoErr(ErrCodeProtocol,
				fmt.Errorf("mux: bad WINDOW_UPDATE payload length %d", len(f.Payload)))
			return
		}
		inc := int(uint32(f.Payload[0])<<24 | uint32(f.Payload[1])<<16 |
			uint32(f.Payload[2])<<8 | uint32(f.Payload[3]))
		if inc == 0 {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: zero-increment WINDOW_UPDATE"))
			return
		}
		if f.StreamID == 0 {
			if s.connSendWindow+inc > MaxWindow {
				s.protoErr(ErrCodeFlowControl,
					fmt.Errorf("mux: connection window overflow (%d + %d)", s.connSendWindow, inc))
				return
			}
			s.connSendWindow += inc
			s.connStalled = false
		} else if st := s.streams[f.StreamID]; st != nil {
			if st.sendWindow+inc > MaxWindow {
				// Per RFC 7540 §6.9.1 a stream window overflow is a
				// stream error: tear down just that stream.
				s.Stats.ProtocolErrors++
				s.RstStreamCode(st, ErrCodeFlowControl)
				return
			}
			st.sendWindow += inc
			st.stalled = false
		}

	case FrameRstStream:
		if len(f.Payload) != 4 || f.StreamID == 0 {
			s.protoErr(ErrCodeProtocol,
				fmt.Errorf("mux: malformed RST_STREAM (stream %d, %d payload bytes)",
					f.StreamID, len(f.Payload)))
			return
		}
		st := s.streams[f.StreamID]
		if st == nil {
			return // RST racing our own teardown of a finished stream
		}
		st.ResetRecv = true
		st.ResetCode = ErrCode(uint32(f.Payload[0])<<24 | uint32(f.Payload[1])<<16 |
			uint32(f.Payload[2])<<8 | uint32(f.Payload[3]))
		st.sendBuf = nil
		st.endPending = false
		if s.OnRstStream != nil {
			s.OnRstStream(st)
		}

	case FrameGoaway:
		if len(f.Payload) < 8 || f.StreamID != 0 {
			s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: malformed GOAWAY"))
			return
		}
		last := uint32(f.Payload[0])<<24 | uint32(f.Payload[1])<<16 |
			uint32(f.Payload[2])<<8 | uint32(f.Payload[3])
		code := ErrCode(uint32(f.Payload[4])<<24 | uint32(f.Payload[5])<<16 |
			uint32(f.Payload[6])<<8 | uint32(f.Payload[7]))
		s.goawayRecv = true
		if s.OnGoaway != nil {
			s.OnGoaway(last, code)
		}

	default:
		// Unknown frame types are a violation under the strict
		// validator: the simulator defines every type it ever sends,
		// so anything else is injected garbage.
		s.protoErr(ErrCodeProtocol, fmt.Errorf("mux: unknown frame type %s", f.Type))
	}
}

// recvStream resolves the stream a peer HEADERS frame targets,
// creating it when the ID validly opens a new peer-initiated stream.
// A server accepts new odd (client-initiated) IDs in increasing
// order; a client only ever receives HEADERS on streams it already
// knows (its own requests, or pushes announced by PUSH_PROMISE).
func (s *Session) recvStream(id uint32) (*Stream, error) {
	if id == 0 {
		return nil, fmt.Errorf("mux: HEADERS on stream 0")
	}
	if st := s.streams[id]; st != nil {
		return st, nil
	}
	if s.server && id%2 == 1 && id > s.lastPeerID {
		s.lastPeerID = id
		return s.newStream(id), nil
	}
	return nil, fmt.Errorf("mux: HEADERS on unknown stream %d", id)
}

// protoErr handles a connection-level protocol violation: announce
// the close with a GOAWAY carrying code, then surface err to the
// session owner.
func (s *Session) protoErr(code ErrCode, err error) {
	s.Stats.ProtocolErrors++
	s.Goaway(code)
	s.fail(err)
}

// ackWindows flushes the consumed-byte accumulators as WINDOW_UPDATE
// frames: one for the connection, one per stream still expecting
// data, all batched into the same Send as anything else this Feed
// produced. Streams are acked in ID order for determinism.
func (s *Session) ackWindows() {
	if s.failed || s.goawaySent {
		// A dying session must not grant credit: a WINDOW_UPDATE sent
		// alongside (or after) an error GOAWAY uncorks the peer's
		// flow-stalled streams into a connection that is about to be
		// torn down, saturating the link with bytes nobody will read.
		s.connRecvAcc = 0
		clear(s.recvAcc)
		return
	}
	if s.connRecvAcc > 0 {
		s.connRecvWindow += s.connRecvAcc
		s.emitWindowUpdate(0, s.connRecvAcc)
		s.connRecvAcc = 0
	}
	if len(s.recvAcc) == 0 {
		return
	}
	ids := make([]uint32, 0, len(s.recvAcc))
	for id := range s.recvAcc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.streams[id]
		if st != nil && !st.recvEnded && !st.ResetSent {
			st.recvWindow += s.recvAcc[id]
			s.emitWindowUpdate(id, s.recvAcc[id])
		}
		delete(s.recvAcc, id)
	}
}

func (s *Session) emitWindowUpdate(id uint32, inc int) {
	s.emit(FrameWindowUpdate, 0, id,
		[]byte{byte(inc >> 24), byte(inc >> 16), byte(inc >> 8), byte(inc)})
}

// pump runs the deterministic DATA scheduler: repeatedly pick the
// most urgent priority band with queued data, give each of its
// streams (in ID order) one MaxFrameSize chunk, and stop when queues
// or windows run dry. Window exhaustion is edge-counted as a
// flow-control stall. With FIFO set, priority bands are ignored and
// each pass serves only the earliest-opened unfinished stream, so
// streams drain strictly in creation order.
func (s *Session) pump() {
	for {
		band, any := 0, false
		for _, st := range s.order {
			if st.done() {
				continue
			}
			if !any || st.Priority < band {
				band, any = st.Priority, true
			}
		}
		if !any {
			return
		}
		progress := false
		served := false
		for _, st := range s.order {
			if st.done() || (!s.FIFO && st.Priority != band) {
				continue
			}
			if s.FIFO && served {
				break
			}
			if len(st.sendBuf) == 0 {
				// Only the end-of-stream flag is owed.
				s.emit(FrameData, FlagEndStream, st.ID, nil)
				st.endPending, st.endSent = false, true
				progress = true
				served = true
				continue
			}
			n := min(len(st.sendBuf), s.MaxFrameSize)
			if s.connSendWindow <= 0 {
				if !s.connStalled {
					s.connStalled = true
					s.Stats.FlowControlStalls++
					if s.OnStall != nil {
						s.OnStall(st, true)
					}
				}
				return
			}
			if st.sendWindow <= 0 {
				if !st.stalled {
					st.stalled = true
					s.Stats.FlowControlStalls++
					if s.OnStall != nil {
						s.OnStall(st, false)
					}
				}
				continue
			}
			n = min(n, s.connSendWindow, st.sendWindow)
			var flags uint8
			if n == len(st.sendBuf) && st.endPending {
				flags = FlagEndStream
				st.endPending, st.endSent = false, true
			}
			s.emit(FrameData, flags, st.ID, st.sendBuf[:n])
			st.sendBuf = st.sendBuf[n:]
			st.sendWindow -= n
			s.connSendWindow -= n
			progress = true
			served = true
		}
		if !progress {
			return
		}
	}
}

func (s *Session) emit(t FrameType, flags uint8, id uint32, payload []byte) {
	s.Stats.FramesSent++
	if s.OnFrameSent != nil {
		s.OnFrameSent(t, id, len(payload))
	}
	s.out = AppendFrame(s.out, t, flags, id, payload)
}

func (s *Session) flush() {
	if len(s.out) == 0 {
		return
	}
	b := s.out
	s.out = nil
	if s.Send != nil {
		s.Send(b)
	}
}

func (s *Session) fail(err error) {
	s.failed = true
	if s.OnError != nil {
		s.OnError(err)
	}
}
