package mux

import (
	"errors"
	"fmt"
)

// Field is one header field. Pseudo-header names (":method", ":path",
// ":authority", ":status") carry the request/response line, as in
// HTTP/2.
type Field struct {
	Name  string
	Value string
}

// The header block encoding is a deliberately small HPACK: each field
// is either an index into the static+dynamic table (exact match), a
// name index plus a literal value (which is then inserted into the
// dynamic table), or a fully literal name+value pair (also inserted).
//
//	0x80 | index          indexed field (name and value)
//	0x40 | nameIndex      literal value, indexed name, with insertion
//	0x00                  literal name and value, with insertion
//
// Indexes and string lengths use HPACK's 7-bit-prefix varint. There
// is no Huffman coding: the simulator cares about byte counts and
// determinism, not bit-level compaction.

// staticTable holds the fields and field names the simulator's
// clients and servers emit most. Index 0 is reserved (an index of 0
// on the wire would be ambiguous with the literal opcode), so wire
// indexes are 1-based into this slice.
var staticTable = []Field{
	{":method", "GET"},
	{":method", "HEAD"},
	{":path", "/"},
	{":authority", ""},
	{":status", "200"},
	{":status", "304"},
	{":status", "206"},
	{":status", "404"},
	{"accept-encoding", "deflate"},
	{"cache-control", ""},
	{"content-encoding", "deflate"},
	{"content-length", ""},
	{"content-type", "text/html"},
	{"content-type", "image/png"},
	{"content-type", "image/gif"},
	{"content-type", "text/css"},
	{"date", ""},
	{"etag", ""},
	{"if-modified-since", ""},
	{"if-none-match", ""},
	{"last-modified", ""},
	{"range", ""},
	{"server", ""},
	{"user-agent", ""},
}

// dynTableCap bounds the dynamic table. Entries are evicted FIFO, as
// in HPACK; the cap is in entries rather than octets because the
// simulator's fields are uniformly small.
const dynTableCap = 128

// table is the shared static+dynamic index space. Encoder and
// decoder each own one and keep them synchronized by applying the
// same deterministic insertion rule to the same field stream.
type table struct {
	dyn []Field // newest first, as HPACK numbers them
}

// lookup returns the 1-based wire index of an exact (name, value)
// match, or of a name-only match (negated), or 0 if absent. Exact
// matches win over name matches; static wins over dynamic at equal
// match strength, keeping indexes stable across connections.
func (t *table) lookup(f Field) (exact int, name int) {
	for i, s := range staticTable {
		if s.Name == f.Name {
			if s.Value == f.Value {
				return i + 1, 0
			}
			if name == 0 {
				name = i + 1
			}
		}
	}
	for i, d := range t.dyn {
		idx := len(staticTable) + i + 1
		if d.Name == f.Name {
			if d.Value == f.Value {
				return idx, 0
			}
			if name == 0 {
				name = idx
			}
		}
	}
	return 0, name
}

// at returns the field at 1-based wire index i.
func (t *table) at(i int) (Field, error) {
	if i >= 1 && i <= len(staticTable) {
		return staticTable[i-1], nil
	}
	i -= len(staticTable) + 1
	if i >= 0 && i < len(t.dyn) {
		return t.dyn[i], nil
	}
	return Field{}, fmt.Errorf("mux: header index %d out of table range", i+len(staticTable)+1)
}

// insert adds f at dynamic index 1, evicting the oldest entry when
// full. Both sides call this for every literal-encoded field, which
// is what keeps their tables identical.
func (t *table) insert(f Field) {
	if len(t.dyn) >= dynTableCap {
		t.dyn = t.dyn[:dynTableCap-1]
	}
	t.dyn = append([]Field{f}, t.dyn...)
}

// Encoder compresses header blocks. One encoder serves one direction
// of one connection.
type Encoder struct {
	t table
}

// Encode appends the header block for fields onto b.
func (e *Encoder) Encode(b []byte, fields []Field) []byte {
	for _, f := range fields {
		exact, name := e.t.lookup(f)
		switch {
		case exact != 0:
			b = appendVarint(b, 0x80, 7, uint64(exact))
		case name != 0:
			b = appendVarint(b, 0x40, 6, uint64(name))
			b = appendString(b, f.Value)
			e.t.insert(f)
		default:
			b = append(b, 0x00)
			b = appendString(b, f.Name)
			b = appendString(b, f.Value)
			e.t.insert(f)
		}
	}
	return b
}

// Decoder decompresses header blocks produced by the peer's Encoder.
type Decoder struct {
	t table
}

var errHeaderBlock = errors.New("mux: malformed header block")

// Decode parses a complete header block.
func (d *Decoder) Decode(block []byte) ([]Field, error) {
	var fields []Field
	for len(block) > 0 {
		b0 := block[0]
		switch {
		case b0&0x80 != 0:
			idx, rest, err := readVarint(block, 7)
			if err != nil {
				return nil, err
			}
			block = rest
			f, err := d.t.at(int(idx))
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		case b0&0x40 != 0:
			idx, rest, err := readVarint(block, 6)
			if err != nil {
				return nil, err
			}
			nf, err := d.t.at(int(idx))
			if err != nil {
				return nil, err
			}
			val, rest, err := readString(rest)
			if err != nil {
				return nil, err
			}
			block = rest
			f := Field{Name: nf.Name, Value: val}
			d.t.insert(f)
			fields = append(fields, f)
		case b0 == 0x00:
			name, rest, err := readString(block[1:])
			if err != nil {
				return nil, err
			}
			val, rest, err := readString(rest)
			if err != nil {
				return nil, err
			}
			block = rest
			f := Field{Name: name, Value: val}
			d.t.insert(f)
			fields = append(fields, f)
		default:
			return nil, fmt.Errorf("%w: opcode byte 0x%02x", errHeaderBlock, b0)
		}
	}
	return fields, nil
}

// PlainSize is the size the fields would occupy uncompressed as
// HTTP/1.x header lines ("Name: value\r\n"); the difference against
// the encoded block is the header_bytes_saved metric.
func PlainSize(fields []Field) int {
	n := 0
	for _, f := range fields {
		n += len(f.Name) + len(f.Value) + 4
	}
	return n
}

// appendVarint writes HPACK's prefix varint: high bits `pattern`,
// then v in a prefix of `prefix` bits with 7-bit continuation bytes.
func appendVarint(b []byte, pattern byte, prefix uint, v uint64) []byte {
	max := uint64(1)<<prefix - 1
	if v < max {
		return append(b, pattern|byte(v))
	}
	b = append(b, pattern|byte(max))
	v -= max
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readVarint reverses appendVarint, returning the value and the
// remaining bytes.
func readVarint(b []byte, prefix uint) (uint64, []byte, error) {
	if len(b) == 0 {
		return 0, nil, errHeaderBlock
	}
	max := uint64(1)<<prefix - 1
	v := uint64(b[0]) & max
	b = b[1:]
	if v < max {
		return v, b, nil
	}
	var shift uint
	for i, c := range b {
		v += uint64(c&0x7f) << shift
		shift += 7
		if c&0x80 == 0 {
			return v, b[i+1:], nil
		}
		if shift > 28 {
			return 0, nil, fmt.Errorf("%w: varint overflow", errHeaderBlock)
		}
	}
	return 0, nil, fmt.Errorf("%w: unterminated varint", errHeaderBlock)
}

func appendString(b []byte, s string) []byte {
	b = appendVarint(b, 0, 7, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readVarint(b, 7)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: string length %d exceeds block", errHeaderBlock, n)
	}
	return string(rest[:n]), rest[n:], nil
}
