package mux

import (
	"fmt"
	"strconv"
	"strings"
)

// Http-Burst mode (after Farber et al.'s Http-Burst proposal cited in
// PAPERS.md): the client sends one GET for the page with an
// Accept-Burst request header, and the server answers with a single
// aggregated response carrying the HTML plus every inline object.
// One request/response pair replaces the whole fetch conversation —
// the logical endpoint of the paper's "get everything in one
// connection" trajectory, traded against cacheability of the
// individual objects.

// BurstContentType marks an aggregated response body.
const BurstContentType = "application/x-burst"

// BurstRequestHeader is the request header a burst-mode client sends
// ("Accept-Burst: records") to ask for aggregation.
const (
	BurstRequestHeader = "Accept-Burst"
	BurstRequestValue  = "records"
)

// BurstRecord is one object inside an aggregated response.
type BurstRecord struct {
	Path         string
	ContentType  string
	ETag         string
	LastModified string // may contain spaces; encoded as the rest-of-line field
	Body         []byte
}

// EncodeBurst marshals records as a sequence of
//
//	path SP content-type SP body-length SP etag SP last-modified LF
//	body-length bytes
//
// Last-Modified goes last on the line because HTTP dates contain
// spaces.
func EncodeBurst(records []BurstRecord) []byte {
	var b []byte
	for _, r := range records {
		b = append(b, r.Path...)
		b = append(b, ' ')
		b = append(b, r.ContentType...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(len(r.Body)), 10)
		b = append(b, ' ')
		b = append(b, r.ETag...)
		b = append(b, ' ')
		b = append(b, r.LastModified...)
		b = append(b, '\n')
		b = append(b, r.Body...)
	}
	return b
}

// DecodeBurst parses an aggregated response body.
func DecodeBurst(body []byte) ([]BurstRecord, error) {
	var records []BurstRecord
	for len(body) > 0 {
		nl := strings.IndexByte(string(body[:min(len(body), 512)]), '\n')
		if nl < 0 {
			return nil, fmt.Errorf("mux: burst record %d: unterminated header line", len(records))
		}
		line := string(body[:nl])
		body = body[nl+1:]
		parts := strings.SplitN(line, " ", 5)
		if len(parts) != 5 {
			return nil, fmt.Errorf("mux: burst record %d: %d header fields, want 5", len(records), len(parts))
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mux: burst record %d: bad length %q", len(records), parts[2])
		}
		if n > len(body) {
			return nil, fmt.Errorf("mux: burst record %d: length %d exceeds remaining %d bytes", len(records), n, len(body))
		}
		records = append(records, BurstRecord{
			Path:         parts[0],
			ContentType:  parts[1],
			ETag:         parts[3],
			LastModified: parts[4],
			Body:         body[:n],
		})
		body = body[n:]
	}
	return records, nil
}
