// Package mux implements an HTTP/2-style framed, multiplexed
// connection layer over the simulator's byte-stream transport:
// binary frames, concurrent streams with stream- and connection-level
// flow control, a static-table HPACK-like header compressor, and a
// deterministic priority/interleaving scheduler.
//
// The wire format follows RFC 7540 §4.1 (9-byte frame header, 31-bit
// stream identifiers, client preface) closely enough that a frame
// trace reads like HTTP/2, but the package is intentionally a
// simulator protocol, not an interoperable implementation: the header
// compressor uses its own static table, and only the frame types the
// simulator needs are defined.
package mux

import (
	"errors"
	"fmt"
)

// Preface is the client connection preface (RFC 7540 §3.5). The
// client sends it as the first bytes on the connection; the server
// uses the first byte ('P', impossible as the start of any simulator
// HTTP/1.x request method it serves) to route the connection to the
// mux session instead of the HTTP/1.x parser.
const Preface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// FrameType identifies a frame. Values match RFC 7540 where the
// frame exists there.
type FrameType uint8

const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FrameRstStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FrameGoaway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
)

// String returns the RFC 7540 frame-type name.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameHeaders:
		return "HEADERS"
	case FrameRstStream:
		return "RST_STREAM"
	case FrameSettings:
		return "SETTINGS"
	case FramePushPromise:
		return "PUSH_PROMISE"
	case FrameGoaway:
		return "GOAWAY"
	case FrameWindowUpdate:
		return "WINDOW_UPDATE"
	}
	return fmt.Sprintf("FRAME_0x%x", uint8(t))
}

// ErrCode is an RST_STREAM / GOAWAY error code (RFC 7540 §7 subset).
type ErrCode uint32

const (
	ErrCodeNo          ErrCode = 0x0 // graceful shutdown
	ErrCodeProtocol    ErrCode = 0x1 // protocol violation
	ErrCodeFlowControl ErrCode = 0x3 // flow-control violation
	ErrCodeStreamLimit ErrCode = 0x7 // REFUSED_STREAM
	ErrCodeCancel      ErrCode = 0x8 // stream no longer needed
	ErrCodeInternal    ErrCode = 0x2 // internal error
)

// String returns the RFC 7540 error-code name.
func (c ErrCode) String() string {
	switch c {
	case ErrCodeNo:
		return "NO_ERROR"
	case ErrCodeProtocol:
		return "PROTOCOL_ERROR"
	case ErrCodeInternal:
		return "INTERNAL_ERROR"
	case ErrCodeFlowControl:
		return "FLOW_CONTROL_ERROR"
	case ErrCodeStreamLimit:
		return "REFUSED_STREAM"
	case ErrCodeCancel:
		return "CANCEL"
	}
	return fmt.Sprintf("ERR_0x%x", uint32(c))
}

// Frame flags.
const (
	FlagEndStream  uint8 = 0x1 // HEADERS, DATA
	FlagEndHeaders uint8 = 0x4 // HEADERS, PUSH_PROMISE
)

// Settings identifiers (RFC 7540 §6.5.2 subset).
const (
	SettingEnablePush        uint16 = 0x2
	SettingInitialWindowSize uint16 = 0x4
	SettingMaxFrameSize      uint16 = 0x5
)

// HeaderLen is the fixed frame-header size: 24-bit length, 8-bit
// type, 8-bit flags, 32-bit stream identifier (top bit reserved).
const HeaderLen = 9

// MaxFrameLen caps the payload length the parser will accept. It is
// deliberately far above any MaxFrameSize a session negotiates so the
// limit only trips on corrupt length fields, not tight configs.
const MaxFrameLen = 1 << 20

// Frame is one decoded frame. Payload aliases the reader's internal
// buffer only until the next Feed call; callers that retain it must
// copy.
type Frame struct {
	Type     FrameType
	Flags    uint8
	StreamID uint32
	Payload  []byte
}

// Errors surfaced by the frame parser. ErrFrameTooLarge and
// ErrReservedBit are fatal to the connection; ErrTruncated is only
// reported by CloseCheck when the peer half-closes mid-frame.
var (
	ErrFrameTooLarge = errors.New("mux: frame length exceeds limit")
	ErrReservedBit   = errors.New("mux: reserved stream-ID bit set")
	ErrTruncated     = errors.New("mux: connection closed mid-frame")
)

// AppendFrame marshals one frame (header + payload) onto b.
func AppendFrame(b []byte, t FrameType, flags uint8, streamID uint32, payload []byte) []byte {
	n := len(payload)
	b = append(b,
		byte(n>>16), byte(n>>8), byte(n),
		byte(t), flags,
		byte(streamID>>24), byte(streamID>>16), byte(streamID>>8), byte(streamID))
	return append(b, payload...)
}

// FrameReader incrementally decodes frames from an arbitrary byte
// stream: Feed accepts any split of the stream (single bytes, whole
// connections) and returns the frames completed so far.
type FrameReader struct {
	buf  []byte
	dead error
}

// Feed appends data and returns every complete frame now available.
// The returned frames' Payload slices alias the reader's buffer and
// are valid only until the next Feed. Once Feed returns an error the
// reader is dead and all further calls return the same error.
func (r *FrameReader) Feed(data []byte) ([]Frame, error) {
	if r.dead != nil {
		return nil, r.dead
	}
	r.buf = append(r.buf, data...)
	var frames []Frame
	off := 0
	for {
		rest := r.buf[off:]
		if len(rest) < HeaderLen {
			break
		}
		n := int(rest[0])<<16 | int(rest[1])<<8 | int(rest[2])
		if n > MaxFrameLen {
			r.dead = fmt.Errorf("%w: %d", ErrFrameTooLarge, n)
			return frames, r.dead
		}
		if rest[5]&0x80 != 0 {
			r.dead = ErrReservedBit
			return frames, r.dead
		}
		if len(rest) < HeaderLen+n {
			break
		}
		frames = append(frames, Frame{
			Type:     FrameType(rest[3]),
			Flags:    rest[4],
			StreamID: uint32(rest[5])<<24 | uint32(rest[6])<<16 | uint32(rest[7])<<8 | uint32(rest[8]),
			Payload:  rest[HeaderLen : HeaderLen+n],
		})
		off += HeaderLen + n
	}
	// Drop the consumed prefix by re-slicing — never by copying
	// down, which would overwrite the payload bytes the returned
	// frames alias. The next Feed's append reallocates past the
	// remnant, so the old array is released once the caller is done
	// with this batch.
	r.buf = r.buf[off:]
	return frames, nil
}

// CloseCheck reports whether the stream ended cleanly on a frame
// boundary. Call it when the peer half-closes; leftover bytes mean a
// frame was truncated in flight.
func (r *FrameReader) CloseCheck() error {
	if r.dead != nil {
		return r.dead
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(r.buf))
	}
	return nil
}

// appendSetting marshals one (id, value) settings entry.
func appendSetting(b []byte, id uint16, val uint32) []byte {
	return append(b, byte(id>>8), byte(id),
		byte(val>>24), byte(val>>16), byte(val>>8), byte(val))
}

// parseSettings decodes a SETTINGS payload into (id, value) pairs.
func parseSettings(p []byte) ([][2]uint32, error) {
	if len(p)%6 != 0 {
		return nil, fmt.Errorf("mux: SETTINGS payload length %d not a multiple of 6", len(p))
	}
	out := make([][2]uint32, 0, len(p)/6)
	for i := 0; i+6 <= len(p); i += 6 {
		id := uint32(p[i])<<8 | uint32(p[i+1])
		val := uint32(p[i+2])<<24 | uint32(p[i+3])<<16 | uint32(p[i+4])<<8 | uint32(p[i+5])
		out = append(out, [2]uint32{id, val})
	}
	return out, nil
}
