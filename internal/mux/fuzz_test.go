package mux

import (
	"bytes"
	"testing"
)

// FuzzFrameParser throws arbitrary byte streams at the frame reader
// and header decoder: the first byte picks a chunking pattern so the
// fuzzer explores truncated frames and header blocks split across
// Feed calls, and every HEADERS/PUSH_PROMISE payload is fed to the
// HPACK decoder. Nothing here may panic or over-read; a parse error
// is a valid outcome.
func FuzzFrameParser(f *testing.F) {
	// Seed corpus: a well-formed dialogue, truncations of it, an
	// oversized length field, a reserved-bit frame, and header
	// blocks of each opcode.
	var dialogue []byte
	dialogue = append(dialogue, Preface...)
	dialogue = AppendFrame(dialogue, FrameSettings, 0, 0,
		appendSetting(appendSetting(nil, SettingEnablePush, 1), SettingMaxFrameSize, 1024))
	var enc Encoder
	block := enc.Encode(nil, []Field{{":method", "GET"}, {":path", "/x"}, {"user-agent", "robot"}})
	dialogue = AppendFrame(dialogue, FrameHeaders, FlagEndHeaders|FlagEndStream, 1, block)
	dialogue = AppendFrame(dialogue, FrameData, FlagEndStream, 1, bytes.Repeat([]byte{0xaa}, 100))
	dialogue = AppendFrame(dialogue, FrameWindowUpdate, 0, 0, []byte{0, 0, 0, 100})
	dialogue = AppendFrame(dialogue, FramePushPromise, FlagEndHeaders, 1,
		append([]byte{0, 0, 0, 2}, enc.Encode(nil, []Field{{":path", "/images/i.png"}})...))
	dialogue = AppendFrame(dialogue, FrameRstStream, 0, 2, []byte{0, 0, 0, 8})

	f.Add(byte(0), dialogue)
	f.Add(byte(1), dialogue[:len(dialogue)-3])            // truncated mid-frame
	f.Add(byte(3), dialogue[len(Preface):])               // no preface
	f.Add(byte(0), []byte{0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1}) // oversized length
	f.Add(byte(0), []byte{0, 0, 0, 0, 0, 0x80, 0, 0, 1})       // reserved bit
	f.Add(byte(2), AppendFrame(nil, FrameHeaders, FlagEndHeaders, 3,
		[]byte{0x00, 0x02, 'a', 'b', 0x01, 'v', 0x40, 0x01, 0x01, 'z', 0x81}))
	f.Add(byte(7), AppendFrame(nil, FrameSettings, 0, 0, []byte{0, 2, 0, 0, 0}))

	f.Fuzz(func(t *testing.T, chunk byte, data []byte) {
		var r FrameReader
		var frames []Frame
		// Chunk size 0 means feed everything at once; otherwise the
		// stream arrives in (chunk mod 17)+1-byte slices.
		step := int(chunk%17) + 1
		if chunk == 0 {
			step = len(data) + 1
		}
		for off := 0; off < len(data); off += step {
			end := min(off+step, len(data))
			fs, err := r.Feed(data[off:end])
			for _, fr := range fs {
				// Payloads alias the reader's buffer only until the
				// next Feed; copy to retain.
				fr.Payload = bytes.Clone(fr.Payload)
				frames = append(frames, fr)
			}
			if err != nil {
				return
			}
		}
		_ = r.CloseCheck()
		var dec Decoder
		for _, fr := range frames {
			switch fr.Type {
			case FrameHeaders:
				_, _ = dec.Decode(fr.Payload)
			case FramePushPromise:
				if len(fr.Payload) >= 4 {
					_, _ = dec.Decode(fr.Payload[4:])
				}
			case FrameSettings:
				_, _ = parseSettings(fr.Payload)
			}
		}
	})
}

// FuzzHeaderCoder drives the HPACK-style header coder from both
// directions: the raw input is decoded as a hostile header block
// (must never panic or over-read), and is also deterministically
// carved into header fields that are encoded and decoded across
// several blocks on one table pair — the round trip must reproduce
// the fields exactly, including dynamic-table insertions and
// evictions.
func FuzzHeaderCoder(f *testing.F) {
	var enc Encoder
	f.Add(enc.Encode(nil, []Field{{":method", "GET"}, {":path", "/"}, {"etag", `"x1"`}}))
	f.Add([]byte{0x81, 0x40, 0x02, 0x01, 'v', 0x00, 0x01, 'n', 0x01, 'w'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})           // varint overflow
	f.Add([]byte{0x00, 0x7f, 'a'})                        // string length past block
	f.Add(bytes.Repeat([]byte{0x00, 0x01, 'n', 0x01, 'v'}, dynTableCap+4)) // force evictions
	f.Fuzz(func(t *testing.T, data []byte) {
		// Hostile pass: arbitrary bytes through a fresh decoder.
		var hostile Decoder
		_, _ = hostile.Decode(data)

		// Round-trip pass: carve the input into fields, three blocks'
		// worth, sharing one encoder/decoder pair so the dynamic
		// tables must stay synchronized across blocks.
		var blocks [][]Field
		fields := make([]Field, 0, 8)
		for i := 0; i+2 <= len(data); i += 2 {
			name := string(data[i : i+1])
			val := string(data[i+1 : i+2])
			if len(staticTable) > 0 && data[i]%3 == 0 {
				name = staticTable[int(data[i])%len(staticTable)].Name
			}
			fields = append(fields, Field{Name: name, Value: val})
			if len(fields) == 4 {
				blocks = append(blocks, fields)
				fields = make([]Field, 0, 8)
			}
		}
		if len(fields) > 0 {
			blocks = append(blocks, fields)
		}
		var e Encoder
		var d Decoder
		for bi, want := range blocks {
			block := e.Encode(nil, want)
			got, err := d.Decode(block)
			if err != nil {
				t.Fatalf("block %d: decode of encoder output failed: %v", bi, err)
			}
			if len(got) != len(want) {
				t.Fatalf("block %d: round trip changed field count %d -> %d", bi, len(want), len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("block %d field %d: %q=%q round-tripped to %q=%q",
						bi, i, want[i].Name, want[i].Value, got[i].Name, got[i].Value)
				}
			}
		}
	})
}

// FuzzBurstDecode checks the aggregated-response parser never panics
// or over-reads, and that whatever it accepts survives an
// encode/decode round trip.
func FuzzBurstDecode(f *testing.F) {
	f.Add(EncodeBurst([]BurstRecord{
		{Path: "/", ContentType: "text/html", ETag: `"e"`, LastModified: "Mon, 01 Jan 1996 00:00:00 GMT", Body: []byte("<html>")},
	}))
	f.Add([]byte("/a b 3 c d\nxyz/e f 0 g h\n"))
	f.Add([]byte("/a b 99 c d\nshort"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeBurst(data)
		if err != nil {
			return
		}
		again, err := DecodeBurst(EncodeBurst(recs))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if again[i].Path != recs[i].Path || !bytes.Equal(again[i].Body, recs[i].Body) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
