package mux

import (
	"bytes"
	"testing"
)

// FuzzFrameParser throws arbitrary byte streams at the frame reader
// and header decoder: the first byte picks a chunking pattern so the
// fuzzer explores truncated frames and header blocks split across
// Feed calls, and every HEADERS/PUSH_PROMISE payload is fed to the
// HPACK decoder. Nothing here may panic or over-read; a parse error
// is a valid outcome.
func FuzzFrameParser(f *testing.F) {
	// Seed corpus: a well-formed dialogue, truncations of it, an
	// oversized length field, a reserved-bit frame, and header
	// blocks of each opcode.
	var dialogue []byte
	dialogue = append(dialogue, Preface...)
	dialogue = AppendFrame(dialogue, FrameSettings, 0, 0,
		appendSetting(appendSetting(nil, SettingEnablePush, 1), SettingMaxFrameSize, 1024))
	var enc Encoder
	block := enc.Encode(nil, []Field{{":method", "GET"}, {":path", "/x"}, {"user-agent", "robot"}})
	dialogue = AppendFrame(dialogue, FrameHeaders, FlagEndHeaders|FlagEndStream, 1, block)
	dialogue = AppendFrame(dialogue, FrameData, FlagEndStream, 1, bytes.Repeat([]byte{0xaa}, 100))
	dialogue = AppendFrame(dialogue, FrameWindowUpdate, 0, 0, []byte{0, 0, 0, 100})
	dialogue = AppendFrame(dialogue, FramePushPromise, FlagEndHeaders, 1,
		append([]byte{0, 0, 0, 2}, enc.Encode(nil, []Field{{":path", "/images/i.png"}})...))
	dialogue = AppendFrame(dialogue, FrameRstStream, 0, 2, []byte{0, 0, 0, 8})

	f.Add(byte(0), dialogue)
	f.Add(byte(1), dialogue[:len(dialogue)-3])            // truncated mid-frame
	f.Add(byte(3), dialogue[len(Preface):])               // no preface
	f.Add(byte(0), []byte{0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1}) // oversized length
	f.Add(byte(0), []byte{0, 0, 0, 0, 0, 0x80, 0, 0, 1})       // reserved bit
	f.Add(byte(2), AppendFrame(nil, FrameHeaders, FlagEndHeaders, 3,
		[]byte{0x00, 0x02, 'a', 'b', 0x01, 'v', 0x40, 0x01, 0x01, 'z', 0x81}))
	f.Add(byte(7), AppendFrame(nil, FrameSettings, 0, 0, []byte{0, 2, 0, 0, 0}))

	f.Fuzz(func(t *testing.T, chunk byte, data []byte) {
		var r FrameReader
		var frames []Frame
		// Chunk size 0 means feed everything at once; otherwise the
		// stream arrives in (chunk mod 17)+1-byte slices.
		step := int(chunk%17) + 1
		if chunk == 0 {
			step = len(data) + 1
		}
		for off := 0; off < len(data); off += step {
			end := min(off+step, len(data))
			fs, err := r.Feed(data[off:end])
			for _, fr := range fs {
				// Payloads alias the reader's buffer only until the
				// next Feed; copy to retain.
				fr.Payload = bytes.Clone(fr.Payload)
				frames = append(frames, fr)
			}
			if err != nil {
				return
			}
		}
		_ = r.CloseCheck()
		var dec Decoder
		for _, fr := range frames {
			switch fr.Type {
			case FrameHeaders:
				_, _ = dec.Decode(fr.Payload)
			case FramePushPromise:
				if len(fr.Payload) >= 4 {
					_, _ = dec.Decode(fr.Payload[4:])
				}
			case FrameSettings:
				_, _ = parseSettings(fr.Payload)
			}
		}
	})
}

// FuzzBurstDecode checks the aggregated-response parser never panics
// or over-reads, and that whatever it accepts survives an
// encode/decode round trip.
func FuzzBurstDecode(f *testing.F) {
	f.Add(EncodeBurst([]BurstRecord{
		{Path: "/", ContentType: "text/html", ETag: `"e"`, LastModified: "Mon, 01 Jan 1996 00:00:00 GMT", Body: []byte("<html>")},
	}))
	f.Add([]byte("/a b 3 c d\nxyz/e f 0 g h\n"))
	f.Add([]byte("/a b 99 c d\nshort"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeBurst(data)
		if err != nil {
			return
		}
		again, err := DecodeBurst(EncodeBurst(recs))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if again[i].Path != recs[i].Path || !bytes.Equal(again[i].Body, recs[i].Body) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
