package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tcpsim"
)

// The capture is written as a classic pcap file (the format tcpdump,
// Wireshark, tshark, and libpcap all read) with nanosecond timestamps
// and raw-IPv4 link type: every record is a synthesized IPv4+TCP frame
// reconstructed from the simulated segment. Hosts get addresses from
// 10.0.0.0/24 in first-seen order, so a LAN run shows the client as
// 10.0.0.1 talking to 10.0.0.2.
const (
	// pcapMagicNanos is the nanosecond-resolution classic pcap magic.
	pcapMagicNanos = 0xa1b23c4d
	// linktypeRaw is LINKTYPE_RAW: packets begin directly with the IPv4
	// header, no link-layer framing.
	linktypeRaw = 101

	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
)

// tcpWireFlags converts the simulator's flag bits to the TCP header's
// bit assignments (FIN 0x01, SYN 0x02, RST 0x04, PSH 0x08, ACK 0x10).
func tcpWireFlags(f tcpsim.Flags) byte {
	var b byte
	if f&tcpsim.FlagFIN != 0 {
		b |= 0x01
	}
	if f&tcpsim.FlagSYN != 0 {
		b |= 0x02
	}
	if f&tcpsim.FlagRST != 0 {
		b |= 0x04
	}
	if f&tcpsim.FlagPSH != 0 {
		b |= 0x08
	}
	if f&tcpsim.FlagACK != 0 {
		b |= 0x10
	}
	return b
}

// ipChecksum is the RFC 1071 ones-complement sum over b (padded to an
// even length with a zero byte).
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// hostIPs assigns 10.0.0.N addresses to host names in first-seen order.
type hostIPs struct {
	byName map[string][4]byte
	next   byte
}

func (h *hostIPs) ip(name string) [4]byte {
	if ip, ok := h.byName[name]; ok {
		return ip
	}
	h.next++
	ip := [4]byte{10, 0, 0, h.next}
	h.byName[name] = ip
	return ip
}

// WritePcap writes the capture as a classic pcap file: nanosecond
// timestamp magic, raw-IPv4 link type, one synthesized IPv4+TCP frame
// per captured segment (dropped segments included — the capture point
// is the sender's interface, before the loss). Frames carry real IPv4
// header and TCP pseudo-header checksums so analyzers do not flag them.
func (c *Capture) WritePcap(w io.Writer) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], 2)      // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4)      // version minor
	binary.LittleEndian.PutUint32(hdr[16:], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], linktypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	ips := &hostIPs{byName: make(map[string][4]byte)}
	var ipID uint16
	for _, ev := range c.events {
		seg := ev.Seg
		src := ips.ip(seg.From.Host)
		dst := ips.ip(seg.To.Host)
		total := ipv4HeaderLen + tcpHeaderLen + len(seg.Payload)
		frame := make([]byte, total)

		// IPv4 header.
		ip := frame[:ipv4HeaderLen]
		ip[0] = 0x45 // version 4, IHL 5
		binary.BigEndian.PutUint16(ip[2:], uint16(total))
		ipID++
		binary.BigEndian.PutUint16(ip[4:], ipID)
		binary.BigEndian.PutUint16(ip[6:], 0x4000) // DF
		ip[8] = 64                                 // TTL
		ip[9] = 6                                  // TCP
		copy(ip[12:16], src[:])
		copy(ip[16:20], dst[:])
		binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip))

		// TCP header.
		tcp := frame[ipv4HeaderLen : ipv4HeaderLen+tcpHeaderLen]
		binary.BigEndian.PutUint16(tcp[0:], uint16(seg.From.Port))
		binary.BigEndian.PutUint16(tcp[2:], uint16(seg.To.Port))
		binary.BigEndian.PutUint32(tcp[4:], seg.Seq)
		binary.BigEndian.PutUint32(tcp[8:], seg.Ack)
		tcp[12] = 5 << 4 // data offset
		tcp[13] = tcpWireFlags(seg.Flags)
		wnd := seg.Wnd
		if wnd > 65535 {
			wnd = 65535
		}
		binary.BigEndian.PutUint16(tcp[14:], uint16(wnd))
		copy(frame[ipv4HeaderLen+tcpHeaderLen:], seg.Payload)

		// TCP checksum over the pseudo-header + segment.
		tcpLen := tcpHeaderLen + len(seg.Payload)
		pseudo := make([]byte, 12+tcpLen)
		copy(pseudo[0:4], src[:])
		copy(pseudo[4:8], dst[:])
		pseudo[9] = 6
		binary.BigEndian.PutUint16(pseudo[10:], uint16(tcpLen))
		copy(pseudo[12:], frame[ipv4HeaderLen:])
		binary.BigEndian.PutUint16(tcp[16:], ipChecksum(pseudo))

		// Per-packet record header.
		var rec [16]byte
		ns := int64(ev.Time)
		binary.LittleEndian.PutUint32(rec[0:], uint32(ns/1e9))
		binary.LittleEndian.PutUint32(rec[4:], uint32(ns%1e9))
		binary.LittleEndian.PutUint32(rec[8:], uint32(total))
		binary.LittleEndian.PutUint32(rec[12:], uint32(total))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// PcapPacket is one frame decoded by ParsePcap.
type PcapPacket struct {
	// TimeNanos is the record timestamp in nanoseconds.
	TimeNanos        int64
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort int
	Seq, Ack         uint32
	// Flags holds the TCP header flag byte (FIN 0x01 ... ACK 0x10).
	Flags        byte
	Window       int
	PayloadBytes int
}

// PcapFile is the decoded form of a WritePcap output.
type PcapFile struct {
	LinkType uint32
	Packets  []PcapPacket
}

// ParsePcap decodes a classic nanosecond pcap file of raw IPv4 frames,
// verifying the global header, per-record framing, and both the IPv4
// and TCP checksums of every frame. It is the unit-test counterpart of
// WritePcap, and rejects anything a real capture analyzer would.
func ParsePcap(data []byte) (*PcapFile, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("pcap: truncated global header (%d bytes)", len(data))
	}
	if magic := binary.LittleEndian.Uint32(data[0:]); magic != pcapMagicNanos {
		return nil, fmt.Errorf("pcap: bad magic %#x", magic)
	}
	if maj, min := binary.LittleEndian.Uint16(data[4:]), binary.LittleEndian.Uint16(data[6:]); maj != 2 || min != 4 {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", maj, min)
	}
	f := &PcapFile{LinkType: binary.LittleEndian.Uint32(data[20:])}
	if f.LinkType != linktypeRaw {
		return nil, fmt.Errorf("pcap: unexpected link type %d", f.LinkType)
	}
	off := 24
	for off < len(data) {
		if off+16 > len(data) {
			return nil, fmt.Errorf("pcap: truncated record header at offset %d", off)
		}
		sec := binary.LittleEndian.Uint32(data[off:])
		nsec := binary.LittleEndian.Uint32(data[off+4:])
		incl := int(binary.LittleEndian.Uint32(data[off+8:]))
		orig := int(binary.LittleEndian.Uint32(data[off+12:]))
		if nsec >= 1e9 {
			return nil, fmt.Errorf("pcap: nanosecond field %d out of range", nsec)
		}
		if incl != orig {
			return nil, fmt.Errorf("pcap: truncated packet (incl %d != orig %d)", incl, orig)
		}
		off += 16
		if off+incl > len(data) {
			return nil, fmt.Errorf("pcap: record of %d bytes overruns file", incl)
		}
		frame := data[off : off+incl]
		off += incl

		if len(frame) < ipv4HeaderLen+tcpHeaderLen {
			return nil, fmt.Errorf("pcap: frame of %d bytes too short for IPv4+TCP", len(frame))
		}
		if frame[0] != 0x45 {
			return nil, fmt.Errorf("pcap: unexpected IP version/IHL %#x", frame[0])
		}
		if total := int(binary.BigEndian.Uint16(frame[2:])); total != len(frame) {
			return nil, fmt.Errorf("pcap: IP total length %d != frame %d", total, len(frame))
		}
		if frame[9] != 6 {
			return nil, fmt.Errorf("pcap: IP protocol %d is not TCP", frame[9])
		}
		if got := ipChecksum(frame[:ipv4HeaderLen]); got != 0 {
			return nil, fmt.Errorf("pcap: bad IPv4 checksum (residual %#x)", got)
		}
		tcpLen := len(frame) - ipv4HeaderLen
		pseudo := make([]byte, 12+tcpLen)
		copy(pseudo[0:4], frame[12:16])
		copy(pseudo[4:8], frame[16:20])
		pseudo[9] = 6
		binary.BigEndian.PutUint16(pseudo[10:], uint16(tcpLen))
		copy(pseudo[12:], frame[ipv4HeaderLen:])
		if got := ipChecksum(pseudo); got != 0 {
			return nil, fmt.Errorf("pcap: bad TCP checksum (residual %#x)", got)
		}

		tcp := frame[ipv4HeaderLen:]
		pkt := PcapPacket{
			TimeNanos:    int64(sec)*1e9 + int64(nsec),
			SrcPort:      int(binary.BigEndian.Uint16(tcp[0:])),
			DstPort:      int(binary.BigEndian.Uint16(tcp[2:])),
			Seq:          binary.BigEndian.Uint32(tcp[4:]),
			Ack:          binary.BigEndian.Uint32(tcp[8:]),
			Flags:        tcp[13],
			Window:       int(binary.BigEndian.Uint16(tcp[14:])),
			PayloadBytes: tcpLen - tcpHeaderLen,
		}
		copy(pkt.SrcIP[:], frame[12:16])
		copy(pkt.DstIP[:], frame[16:20])
		f.Packets = append(f.Packets, pkt)
	}
	return f, nil
}
