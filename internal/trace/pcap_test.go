package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func TestPcapRoundTrip(t *testing.T) {
	cap, _ := runExchange(t)
	var buf bytes.Buffer
	if err := cap.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParsePcap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	evs := cap.Events()
	if len(f.Packets) != len(evs) {
		t.Fatalf("pcap has %d packets for %d events", len(f.Packets), len(evs))
	}

	// First frame is the client's SYN from 10.0.0.1 to 10.0.0.2:80.
	first := f.Packets[0]
	if first.Flags != 0x02 {
		t.Fatalf("first packet flags %#x, want bare SYN 0x02", first.Flags)
	}
	if first.SrcIP != [4]byte{10, 0, 0, 1} || first.DstIP != [4]byte{10, 0, 0, 2} {
		t.Fatalf("first packet %v → %v, want 10.0.0.1 → 10.0.0.2", first.SrcIP, first.DstIP)
	}
	if first.DstPort != 80 {
		t.Fatalf("first packet dst port %d, want 80", first.DstPort)
	}

	last := int64(-1)
	for i, pkt := range f.Packets {
		ev := evs[i]
		if pkt.TimeNanos < last {
			t.Fatalf("packet %d timestamp went backwards", i)
		}
		last = pkt.TimeNanos
		if pkt.TimeNanos != int64(ev.Time) {
			t.Fatalf("packet %d at %dns, event at %dns", i, pkt.TimeNanos, int64(ev.Time))
		}
		if pkt.Seq != ev.Seg.Seq || pkt.Ack != ev.Seg.Ack {
			t.Fatalf("packet %d seq/ack mismatch", i)
		}
		if pkt.PayloadBytes != len(ev.Seg.Payload) {
			t.Fatalf("packet %d payload %d, want %d", i, pkt.PayloadBytes, len(ev.Seg.Payload))
		}
		if want := tcpWireFlags(ev.Seg.Flags); pkt.Flags != want {
			t.Fatalf("packet %d flags %#x, want %#x", i, pkt.Flags, want)
		}
	}
}

func TestPcapIncludesDroppedPackets(t *testing.T) {
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	cfg := netem.Config{PropagationDelay: time.Millisecond}
	drop := cfg
	// Drop the client's first transmission (the SYN); the RTO retry gets
	// through.
	drop.Loss = func(i, wireBytes int) bool { return i == 0 }
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", drop, cfg))
	cap := Attach(n)
	server.Listen(80, tcpsim.Options{}, func(c *tcpsim.Conn) tcpsim.Handler {
		return &tcpsim.Callbacks{PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() }}
	})
	client.Dial("server", 80, tcpsim.Options{}, &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) { c.CloseWrite() },
	})
	s.Run()

	dropped := 0
	for _, ev := range cap.Events() {
		if ev.Dropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("fixture produced no drops")
	}
	var buf bytes.Buffer
	if err := cap.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParsePcap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Packets) != len(cap.Events()) {
		t.Fatalf("pcap has %d packets for %d events (drops must be included)",
			len(f.Packets), len(cap.Events()))
	}
}

func TestParsePcapRejectsCorruption(t *testing.T) {
	cap, _ := runExchange(t)
	var buf bytes.Buffer
	if err := cap.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[0:], 0xa1b2c3d4) // microsecond magic
	if _, err := ParsePcap(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[24+16+30] ^= 0xff // flip a byte inside the first frame's TCP header
	if _, err := ParsePcap(bad); err == nil {
		t.Fatal("corrupted TCP checksum accepted")
	}

	if _, err := ParsePcap(good[:len(good)-3]); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestDetachRestoresHook(t *testing.T) {
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	cfg := netem.Config{PropagationDelay: time.Millisecond}
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))

	prior := 0
	n.PacketHook = func(ev tcpsim.PacketEvent) { prior++ }
	cap := Attach(n)
	cap.Detach()
	cap.Detach() // idempotent

	server.Listen(80, tcpsim.Options{}, func(c *tcpsim.Conn) tcpsim.Handler {
		return &tcpsim.Callbacks{PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() }}
	})
	client.Dial("server", 80, tcpsim.Options{}, &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) { c.CloseWrite() },
	})
	s.Run()

	if prior == 0 {
		t.Fatal("prior hook lost after Detach")
	}
	if len(cap.Events()) != 0 {
		t.Fatalf("detached capture recorded %d events", len(cap.Events()))
	}
}

func TestDetachStackedLIFO(t *testing.T) {
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	a := Attach(n)
	b := Attach(n)
	b.Detach()
	// After detaching b, a's hook must be the active head again.
	n.PacketHook(tcpsim.PacketEvent{})
	if len(a.Events()) != 1 {
		t.Fatalf("a saw %d events after b detached, want 1", len(a.Events()))
	}
	if len(b.Events()) != 0 {
		t.Fatalf("b saw %d events after detach", len(b.Events()))
	}
	a.Detach()
	if n.PacketHook != nil {
		t.Fatal("hook chain not empty after all captures detached")
	}
}
