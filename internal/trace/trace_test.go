package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// runExchange performs one small request/response exchange and returns the
// capture.
func runExchange(t *testing.T) (*Capture, *sim.Simulator) {
	t.Helper()
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	cfg := netem.Config{PropagationDelay: time.Millisecond}
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))
	cap := Attach(n)

	server.Listen(80, tcpsim.Options{}, func(c *tcpsim.Conn) tcpsim.Handler {
		return &tcpsim.Callbacks{
			Data: func(c *tcpsim.Conn, d []byte) {
				c.Write(make([]byte, 300))
				c.CloseWrite()
			},
			PeerClose: func(c *tcpsim.Conn) {},
		}
	})
	client.Dial("server", 80, tcpsim.Options{}, &tcpsim.Callbacks{
		Connect:   func(c *tcpsim.Conn) { c.Write(make([]byte, 100)) },
		PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() },
	})
	s.Run()
	return cap, s
}

func TestStatsBasics(t *testing.T) {
	cap, _ := runExchange(t)
	st := cap.Stats("client")
	if st.Packets == 0 {
		t.Fatal("no packets captured")
	}
	if st.Packets != st.ClientToServer+st.ServerToClient {
		t.Fatalf("direction split %d+%d != total %d", st.ClientToServer, st.ServerToClient, st.Packets)
	}
	if st.PayloadBytes != 400 {
		t.Fatalf("payload bytes = %d, want 400", st.PayloadBytes)
	}
	if st.WireBytes != st.PayloadBytes+int64(st.Packets)*40 {
		t.Fatalf("wire bytes = %d, want payload+40*packets", st.WireBytes)
	}
	if st.Connections != 1 {
		t.Fatalf("connections = %d, want 1", st.Connections)
	}
	if st.Retransmissions != 0 || st.Dropped != 0 {
		t.Fatalf("unexpected pathologies: %d retrans %d dropped", st.Retransmissions, st.Dropped)
	}
	if st.Last <= st.First {
		t.Fatalf("time range [%v,%v] not increasing", st.First, st.Last)
	}
}

func TestOverheadPctFormula(t *testing.T) {
	// The paper's Table 4 HTTP/1.0 row: 510.2 packets, 216289 bytes →
	// 8.6% overhead. Verify our formula reproduces that arithmetic.
	s := Stats{Packets: 510, PayloadBytes: 216289}
	got := s.OverheadPct()
	if got < 8.4 || got > 8.8 {
		t.Fatalf("OverheadPct = %.2f, want ≈8.6", got)
	}
	var zero Stats
	if zero.OverheadPct() != 0 {
		t.Fatal("zero stats should have zero overhead")
	}
}

func TestDumpFormat(t *testing.T) {
	cap, _ := runExchange(t)
	var buf bytes.Buffer
	if err := cap.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(cap.Events()) {
		t.Fatalf("dump has %d lines for %d events", len(lines), len(cap.Events()))
	}
	if !strings.Contains(lines[0], "client:10000 > server:80: S") {
		t.Fatalf("first line should be the SYN, got %q", lines[0])
	}
	if !strings.Contains(out, "win 65535") {
		t.Fatal("dump missing window fields")
	}
}

func TestTimeSequenceKinds(t *testing.T) {
	cap, _ := runExchange(t)
	pts := cap.TimeSequence("client")
	if len(pts) == 0 {
		t.Fatal("no client points")
	}
	kinds := map[string]int{}
	for _, p := range pts {
		kinds[p.Kind]++
	}
	for _, want := range []string{"syn", "data", "ack", "fin"} {
		if kinds[want] == 0 {
			t.Errorf("no %q points in client time-sequence: %v", want, kinds)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Fatal("time-sequence out of order")
		}
	}
}

func TestResetClearsEvents(t *testing.T) {
	cap, _ := runExchange(t)
	if len(cap.Events()) == 0 {
		t.Fatal("expected events")
	}
	cap.Reset()
	if len(cap.Events()) != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestHookChaining(t *testing.T) {
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	server := n.AddHost("server")
	cfg := netem.Config{PropagationDelay: time.Millisecond}
	n.ConnectHosts(client, server, netem.NewAsymPath(s, "t", cfg, cfg))
	prior := 0
	n.PacketHook = func(ev tcpsim.PacketEvent) { prior++ }
	cap := Attach(n)
	server.Listen(80, tcpsim.Options{}, func(c *tcpsim.Conn) tcpsim.Handler {
		return &tcpsim.Callbacks{PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() }}
	})
	client.Dial("server", 80, tcpsim.Options{}, &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) { c.CloseWrite() },
	})
	s.Run()
	if prior == 0 {
		t.Fatal("prior hook was not chained")
	}
	if prior != len(cap.Events()) {
		t.Fatalf("prior hook saw %d, capture saw %d", prior, len(cap.Events()))
	}
}

func TestStatsElapsed(t *testing.T) {
	st := Stats{First: sim.Time(time.Second), Last: sim.Time(3 * time.Second)}
	if st.Elapsed() != 2*time.Second {
		t.Fatalf("Elapsed = %v, want 2s", st.Elapsed())
	}
}

func TestWriteXplot(t *testing.T) {
	cap, _ := runExchange(t)
	var buf bytes.Buffer
	if err := cap.WriteXplot(&buf, "server", "test trace"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "timeval unsigned\ntitle\ntest trace\n") {
		t.Fatalf("bad header: %q", out[:40])
	}
	if !strings.Contains(out, "line ") {
		t.Fatal("no data segments plotted")
	}
	if !strings.Contains(out, "dot ") {
		t.Fatal("no ACK points plotted")
	}
	if !strings.HasSuffix(out, "go\n") {
		t.Fatal("missing final go command")
	}
	// Sequence numbers must be relative (start near zero, not at the ISS).
	for _, ln := range strings.Split(out, "\n") {
		var t0, s0, t1, s1 float64
		var color string
		if n, _ := fmt.Sscanf(ln, "line %f %f %f %f %s", &t0, &s0, &t1, &s1, &color); n == 5 {
			if s0 > 1e6 {
				t.Fatalf("absolute sequence leaked into plot: %s", ln)
			}
		}
	}
}
