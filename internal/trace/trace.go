// Package trace captures simulated packets and computes the statistics the
// paper reports for every run: packets (Pa), payload bytes (Bytes), elapsed
// seconds (Sec), and TCP/IP header overhead (%ov). It fills the role that
// tcpdump, tcpshow, and xplot played in the original study.
package trace

import (
	"fmt"
	"io"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Capture accumulates packet events from a tcpsim.Network.
type Capture struct {
	events   []tcpsim.PacketEvent
	net      *tcpsim.Network
	prev     func(tcpsim.PacketEvent)
	detached bool
}

// Attach installs the capture as the network's packet hook, chaining any
// hook already present. Call Detach when done so the hook chain does not
// grow with every capture over a long-lived network; captures must be
// detached in reverse attach order (LIFO), like deferred cleanups.
func Attach(n *tcpsim.Network) *Capture {
	c := &Capture{net: n, prev: n.PacketHook}
	n.PacketHook = func(ev tcpsim.PacketEvent) {
		if !c.detached {
			c.events = append(c.events, ev)
		}
		if c.prev != nil {
			c.prev(ev)
		}
	}
	return c
}

// Detach removes the capture from the network's hook chain, restoring
// the hook that was installed before Attach. The captured events remain
// readable afterwards. Detach is idempotent. Detaching out of LIFO order
// also restores the pre-Attach hook, unlinking any capture attached
// later — recording on this capture stops regardless.
func (c *Capture) Detach() {
	if c.detached {
		return
	}
	c.detached = true
	if c.net != nil {
		c.net.PacketHook = c.prev
	}
}

// Events returns the captured packet events in transmission order.
func (c *Capture) Events() []tcpsim.PacketEvent { return c.events }

// Reset discards captured events.
func (c *Capture) Reset() { c.events = c.events[:0] }

// Stats summarizes a capture in the paper's terms.
type Stats struct {
	// Packets is the total number of segments transmitted in both
	// directions, including retransmissions and dropped segments (a
	// client-side tcpdump sees the original transmission of everything
	// on a point-to-point path).
	Packets int
	// ClientToServer and ServerToClient split Packets by direction.
	ClientToServer, ServerToClient int
	// PayloadBytes is the total TCP payload carried (HTTP headers and
	// bodies), both directions.
	PayloadBytes int64
	// WireBytes adds the 40-byte TCP/IP header per packet.
	WireBytes int64
	// Retransmissions and Dropped count pathological segments;
	// RetransC2S and RetransS2C split the retransmissions by direction.
	Retransmissions, Dropped int
	RetransC2S, RetransS2C   int
	// Connections is the number of SYNs from the client (sockets used).
	Connections int
	// First and Last bound the capture in virtual time.
	First, Last sim.Time
}

// OverheadPct is the paper's %ov: header bytes as a percentage of total
// bytes on the wire.
func (s Stats) OverheadPct() float64 {
	hdr := float64(s.Packets) * netem.IPTCPHeaderBytes
	total := float64(s.PayloadBytes) + hdr
	if total == 0 {
		return 0
	}
	return 100 * hdr / total
}

// Elapsed is the capture duration, first to last packet.
func (s Stats) Elapsed() sim.Duration { return s.Last.Sub(s.First) }

// Stats computes summary statistics, treating clientHost as the
// measurement point for direction labelling.
func (c *Capture) Stats(clientHost string) Stats {
	return c.stats(clientHost, "")
}

// StatsBetween restricts the summary to packets exchanged between the
// two named hosts, labelling direction from clientHost's point of view.
// In a multi-hop topology (client → proxy → origin) this is the tcpdump
// placed on one link: StatsBetween("client", "proxy") sees the last
// mile, StatsBetween("proxy", "server") the upstream side.
func (c *Capture) StatsBetween(clientHost, serverHost string) Stats {
	return c.stats(clientHost, serverHost)
}

// stats walks the capture; serverHost == "" means no pair filtering.
func (c *Capture) stats(clientHost, serverHost string) Stats {
	var s Stats
	first := true
	for _, ev := range c.events {
		if serverHost != "" {
			from, to := ev.Seg.From.Host, ev.Seg.To.Host
			if !(from == clientHost && to == serverHost) &&
				!(from == serverHost && to == clientHost) {
				continue
			}
		}
		s.Packets++
		s.PayloadBytes += int64(len(ev.Seg.Payload))
		s.WireBytes += int64(ev.WireBytes)
		if ev.Seg.From.Host == clientHost {
			s.ClientToServer++
		} else {
			s.ServerToClient++
		}
		if ev.Retrans {
			s.Retransmissions++
			if ev.Seg.From.Host == clientHost {
				s.RetransC2S++
			} else {
				s.RetransS2C++
			}
		}
		if ev.Dropped {
			s.Dropped++
		}
		if ev.Seg.Flags&tcpsim.FlagSYN != 0 && ev.Seg.Flags&tcpsim.FlagACK == 0 && ev.Seg.From.Host == clientHost {
			s.Connections++
		}
		if first {
			s.First = ev.Time
			first = false
		}
		s.Last = ev.Time
	}
	return s
}

// Dump writes a tcpdump-style text rendering of the capture.
func (c *Capture) Dump(w io.Writer) error {
	for _, ev := range c.events {
		seg := ev.Seg
		var note string
		if ev.Dropped {
			note = " [dropped]"
		} else if ev.Retrans {
			note = " [retransmission]"
		}
		var span string
		if n := len(seg.Payload); n > 0 || seg.Flags&(tcpsim.FlagSYN|tcpsim.FlagFIN) != 0 {
			span = fmt.Sprintf(" %d:%d(%d)", seg.Seq, seg.Seq+uint32(len(seg.Payload)), n)
		}
		var ack string
		if seg.Flags&tcpsim.FlagACK != 0 {
			ack = fmt.Sprintf(" ack %d", seg.Ack)
		}
		_, err := fmt.Fprintf(w, "%012.6f %s > %s: %s%s%s win %d%s\n",
			ev.Time.Seconds(),
			seg.From, seg.To, seg.Flags, span, ack, seg.Wnd, note)
		if err != nil {
			return err
		}
	}
	return nil
}

// SeqPoint is one point of an xplot-style time-sequence diagram.
type SeqPoint struct {
	Time    sim.Time
	SeqLo   uint32
	SeqHi   uint32
	Kind    string // "data", "ack", "retransmit", "syn", "fin", "rst"
	Dropped bool
}

// TimeSequence extracts the time-sequence series for packets sent from
// fromHost, the raw material of the xplot graphs the authors used to find
// implementation bugs.
func (c *Capture) TimeSequence(fromHost string) []SeqPoint {
	var pts []SeqPoint
	for _, ev := range c.events {
		if ev.Seg.From.Host != fromHost {
			continue
		}
		p := SeqPoint{
			Time:    ev.Time,
			SeqLo:   ev.Seg.Seq,
			SeqHi:   ev.Seg.Seq + uint32(len(ev.Seg.Payload)),
			Dropped: ev.Dropped,
		}
		switch {
		case ev.Seg.Flags&tcpsim.FlagRST != 0:
			p.Kind = "rst"
		case ev.Seg.Flags&tcpsim.FlagSYN != 0:
			p.Kind = "syn"
		case ev.Seg.Flags&tcpsim.FlagFIN != 0:
			p.Kind = "fin"
		case ev.Retrans:
			p.Kind = "retransmit"
		case len(ev.Seg.Payload) > 0:
			p.Kind = "data"
		default:
			p.Kind = "ack"
		}
		pts = append(pts, p)
	}
	return pts
}
