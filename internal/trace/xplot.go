package trace

import (
	"fmt"
	"io"

	"repro/internal/tcpsim"
)

// WriteXplot renders the time-sequence diagram of one direction in the
// xplot(1) input format used by Tim Shepard's TCP trace analysis tools —
// the program the authors used to find "a number of problems in our
// implementation not visible in the raw dumps". Data segments appear as
// vertical lines spanning their sequence range, ACKs as a step line,
// retransmissions and drops highlighted.
func (c *Capture) WriteXplot(w io.Writer, fromHost, title string) error {
	if _, err := fmt.Fprintf(w, "timeval unsigned\ntitle\n%s\nxlabel\ntime\nylabel\nsequence number\n", title); err != nil {
		return err
	}
	var base uint32
	haveBase := false
	rel := func(seq uint32) uint32 {
		return seq - base
	}
	var lastAckTime float64
	var lastAck uint32
	haveAck := false
	for _, ev := range c.events {
		seg := ev.Seg
		t := ev.Time.Seconds()
		switch {
		case seg.From.Host == fromHost:
			if !haveBase {
				base = seg.Seq
				haveBase = true
			}
			if len(seg.Payload) == 0 && seg.Flags&(tcpsim.FlagSYN|tcpsim.FlagFIN|tcpsim.FlagRST) == 0 {
				continue // pure ACK of the reverse direction
			}
			color := "white"
			if ev.Retrans {
				color = "red"
			}
			if ev.Dropped {
				color = "orange"
			}
			lo, hi := rel(seg.Seq), rel(seg.Seq+uint32(len(seg.Payload)))
			if hi == lo {
				hi = lo + 1 // SYN/FIN/RST markers get unit height
			}
			if _, err := fmt.Fprintf(w, "line %.6f %d %.6f %d %s\n", t, lo, t, hi, color); err != nil {
				return err
			}
			if ev.Dropped {
				if _, err := fmt.Fprintf(w, "x %.6f %d orange\n", t, hi); err != nil {
					return err
				}
			}
		case seg.To.Host == fromHost && seg.Flags&tcpsim.FlagACK != 0 && haveBase:
			ack := rel(seg.Ack)
			if haveAck {
				if _, err := fmt.Fprintf(w, "line %.6f %d %.6f %d green\n", lastAckTime, lastAck, t, lastAck); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "dot %.6f %d green\n", t, ack); err != nil {
				return err
			}
			lastAckTime, lastAck, haveAck = t, ack, true
		}
	}
	_, err := fmt.Fprintln(w, "go")
	return err
}
