// Package proxy implements the simulated shared HTTP/1.1 caching proxy
// the paper's deployment story assumed would sit between dialup users and
// the wide-area origin: a CERN/Harvest-style intermediary terminating
// persistent, pipelined client connections on the last-mile link and
// multiplexing misses onto a single persistent, pipelined upstream
// connection to the origin.
//
// The proxy serves fresh cached entries directly (answering client
// validators locally with 304s), revalidates stale entries upstream with
// If-None-Match/If-Modified-Since, collapses concurrent misses for one
// URL onto a single origin fetch, and stamps Via on everything it
// forwards and Age on everything it serves from cache, per RFC 2068.
// Cache admission, freshness, and eviction policy live in internal/cache.
package proxy

import (
	"errors"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/httpmsg"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// ErrUpstream reports an origin fetch that failed after its retry.
var ErrUpstream = errors.New("proxy: upstream fetch failed")

// Config tunes proxy behaviour. Zero values select defaults.
type Config struct {
	// Cache is the shared response cache. A nil cache makes the proxy a
	// pure relay (every request is forwarded, nothing stored).
	Cache *cache.Cache
	// PerRequestCPU and PerConnCPU are processing costs charged to the
	// proxy host's single CPU (defaults 2ms/2ms: a lean 1997 proxy).
	PerRequestCPU, PerConnCPU time.Duration
	// ResponseBufferSize is the client-side output buffer, flushed when
	// full or when no further pipelined responses are pending (default
	// 4096, matching the origin server's policy).
	ResponseBufferSize int
	// NoDelay disables Nagle on accepted client connections.
	NoDelay bool
	// TCP and UpstreamTCP override connection options for the two sides.
	// Upstream connections always run with TCP_NODELAY (the proxy
	// pipelines misses and cannot afford Nagle stalls).
	TCP, UpstreamTCP tcpsim.Options
	// Via is the pseudonym stamped on forwarded messages (default
	// "1.1 proxy").
	Via string
	// Recovery, when non-nil, governs upstream retries: each unanswered
	// origin request is re-sent on a fresh connection while the policy's
	// RetryBudget allows, then answered with 502. Nil keeps the classic
	// behaviour: one retry, then 502.
	Recovery *faults.Policy
	// Obs, if non-nil, receives cache hit/miss/revalidation instants on
	// client connections and request lifecycle spans for upstream fetches.
	Obs *obs.Bus
}

func (c Config) applyDefaults() Config {
	if c.PerRequestCPU == 0 {
		c.PerRequestCPU = 2 * time.Millisecond
	}
	if c.PerConnCPU == 0 {
		c.PerConnCPU = 2 * time.Millisecond
	}
	if c.ResponseBufferSize == 0 {
		c.ResponseBufferSize = 4096
	}
	if c.Via == "" {
		c.Via = "1.1 proxy"
	}
	return c
}

// Stats counts proxy activity.
type Stats struct {
	// Connections counts accepted client connections; UpstreamSockets
	// counts origin connections dialed (1 unless the origin closed one).
	Connections     int
	UpstreamSockets int
	// Requests and Responses count client-side messages.
	Requests  int
	Responses int
	// Hits are requests served from a fresh cache entry without touching
	// the origin; Misses fetched the origin with no usable entry;
	// Revalidations fetched conditionally for a stale entry, of which
	// RevalidationHits came back 304.
	Hits             int
	Misses           int
	Revalidations    int
	RevalidationHits int
	// LocalNotModified counts 304s the proxy answered from cached
	// validators without any origin traffic for that response.
	LocalNotModified int
	// Collapsed counts requests that joined an in-progress origin fetch
	// for the same URL instead of starting their own.
	Collapsed int
	// UpstreamRequests counts requests written to the origin, retries
	// included; Retries counts just the re-sent ones.
	UpstreamRequests int
	Retries          int
	// BytesFromCache and BytesFromUpstream split response body bytes by
	// where they came from; BytesToClient is total marshaled output.
	BytesFromCache    int64
	BytesFromUpstream int64
	BytesToClient     int64
	// Errors counts client responses lost to upstream failure (502s);
	// ProtocolErrors counts unparseable client requests.
	Errors         int
	ProtocolErrors int
}

// Proxy is one caching intermediary on one host and port.
type Proxy struct {
	sim   *sim.Simulator
	host  *tcpsim.Host
	cfg   Config
	cache *cache.Cache
	cpu   *sim.CPU

	upstreamHost string
	upstreamPort int
	up           *upstream

	stats Stats
}

// New creates a proxy listening on host:port, forwarding misses to
// upstreamHost:upstreamPort. rng adds CPU jitter when non-nil.
func New(s *sim.Simulator, host *tcpsim.Host, port int, upstreamHost string, upstreamPort int, cfg Config, rng *sim.Rand, cpuJitter float64) *Proxy {
	p := &Proxy{
		sim:          s,
		host:         host,
		cfg:          cfg.applyDefaults(),
		cache:        cfg.Cache,
		cpu:          sim.NewCPU(s, rng, cpuJitter),
		upstreamHost: upstreamHost,
		upstreamPort: upstreamPort,
	}
	tcpOpts := p.cfg.TCP
	tcpOpts.NoDelay = p.cfg.NoDelay
	host.Listen(port, tcpOpts, func(c *tcpsim.Conn) tcpsim.Handler {
		return newProxyConn(p, c)
	})
	return p
}

// Stats returns a copy of the proxy counters.
func (p *Proxy) Stats() Stats { return p.stats }

// Cache returns the proxy's shared cache (nil for a pure relay).
func (p *Proxy) Cache() *cache.Cache { return p.cache }

// CPUTime returns the total simulated CPU work the proxy has consumed.
func (p *Proxy) CPUTime() sim.Duration { return p.cpu.TotalWork() }

// hopByHop reports header fields that must not be forwarded end-to-end.
func hopByHop(name string) bool {
	return strings.EqualFold(name, "Connection") ||
		strings.EqualFold(name, "Keep-Alive") ||
		strings.EqualFold(name, "Proxy-Connection")
}

// forwardRequest builds the upstream copy of a client request: HTTP/1.1,
// hop-by-hop fields stripped, Host rewritten to the origin, Via added.
func (p *Proxy) forwardRequest(req *httpmsg.Request) *httpmsg.Request {
	out := &httpmsg.Request{Method: req.Method, Target: req.Target, Proto: httpmsg.Proto11}
	for _, f := range req.Header.Fields() {
		switch {
		case hopByHop(f.Name):
		case strings.EqualFold(f.Name, "Host"):
			out.Header.Add("Host", p.upstreamHost)
		default:
			out.Header.Add(f.Name, f.Value)
		}
	}
	if !out.Header.Has("Host") {
		out.Header.Add("Host", p.upstreamHost)
	}
	out.Header.Add("Via", p.cfg.Via)
	return out
}

// revalRequest builds the conditional GET that revalidates a stale entry.
func (p *Proxy) revalRequest(e *cache.Entry) *httpmsg.Request {
	req := &httpmsg.Request{Method: "GET", Target: e.Key, Proto: httpmsg.Proto11}
	req.Header.Add("Host", p.upstreamHost)
	if e.ETag != "" {
		req.Header.Add("If-None-Match", e.ETag)
	}
	if e.LastModified != "" {
		req.Header.Add("If-Modified-Since", e.LastModified)
	}
	req.Header.Add("Via", p.cfg.Via)
	return req
}

// protoFor picks the response protocol version for a client request.
func protoFor(req *httpmsg.Request) string {
	if req.IsHTTP11() {
		return httpmsg.Proto11
	}
	return httpmsg.Proto10
}

// conditional reports whether a request carries cache validators.
func conditional(req *httpmsg.Request) bool {
	return req.Header.Has("If-None-Match") || req.Header.Has("If-Modified-Since")
}

// proxyConn is the per-client-connection state machine. Responses go back
// in request order: a slot is reserved per parsed request and the head of
// the queue is written as soon as it is ready, so a fast cache hit never
// overtakes an earlier upstream miss.
type proxyConn struct {
	p      *Proxy
	conn   *tcpsim.Conn
	parser httpmsg.RequestParser

	slots      []*pxSlot
	outBuf     []byte
	closing    bool
	peerClosed bool
}

// pxSlot is one client request awaiting its in-order response.
type pxSlot struct {
	req   *httpmsg.Request
	resp  *httpmsg.Response
	ready bool
}

func newProxyConn(p *Proxy, c *tcpsim.Conn) tcpsim.Handler {
	pc := &proxyConn{p: p, conn: c}
	p.stats.Connections++
	return &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) {
			p.cpu.Run(p.cfg.PerConnCPU, func() {})
		},
		Data:      pc.onData,
		PeerClose: pc.onPeerClose,
		Error:     func(c *tcpsim.Conn, err error) {},
		Close:     func(c *tcpsim.Conn) {},
	}
}

func (pc *proxyConn) onData(c *tcpsim.Conn, data []byte) {
	if pc.closing {
		return
	}
	reqs, err := pc.parser.Feed(data)
	if err != nil {
		pc.p.stats.ProtocolErrors++
		pc.conn.Write(httpmsg.NewResponse(httpmsg.Proto11, 400).Marshal())
		pc.close()
		return
	}
	for _, req := range reqs {
		req := req
		slot := &pxSlot{req: req}
		pc.slots = append(pc.slots, slot)
		pc.p.stats.Requests++
		pc.p.cpu.Run(pc.p.cfg.PerRequestCPU, func() {
			pc.handle(slot)
		})
	}
}

func (pc *proxyConn) onPeerClose(c *tcpsim.Conn) {
	pc.peerClosed = true
	if len(pc.slots) == 0 {
		pc.flush()
		pc.close()
	}
}

// handle routes one client request through the cache.
func (pc *proxyConn) handle(slot *pxSlot) {
	if pc.conn.State() == tcpsim.StateClosed {
		return
	}
	p := pc.p
	req := slot.req
	key := req.Target
	if p.cache == nil || req.Method != "GET" {
		// Pure relay: forward, never store.
		p.fetchThrough(key, p.forwardRequest(req), conditional(req), false, nil,
			pc.completeUpstream(slot))
		return
	}
	if e := p.cache.Get(key); e != nil {
		if p.cache.Fresh(e) {
			p.stats.Hits++
			e.Hits++
			p.cfg.Obs.CacheHit(pc.conn.ObsID(), key, len(e.Body))
			pc.complete(slot, pc.buildFromEntry(e, req))
			return
		}
		// Stale entry: revalidate upstream, then serve from the
		// refreshed entry (304) or the replacing response (200).
		p.stats.Revalidations++
		p.fetchThrough(key, p.revalRequest(e), true, true, e,
			func(resp *httpmsg.Response, err error) {
				if err != nil || resp == nil {
					p.stats.Errors++
					p.cfg.Obs.CacheReval(pc.conn.ObsID(), key, false)
					pc.complete(slot, pc.gatewayError(req))
					return
				}
				if resp.StatusCode == 304 {
					p.cfg.Obs.CacheReval(pc.conn.ObsID(), key, true)
					pc.complete(slot, pc.buildFromEntry(e, req))
					return
				}
				p.cfg.Obs.CacheReval(pc.conn.ObsID(), key, false)
				pc.complete(slot, pc.forwardResponse(req, resp))
			})
		return
	}
	p.stats.Misses++
	p.cfg.Obs.CacheMiss(pc.conn.ObsID(), key)
	p.fetchThrough(key, p.forwardRequest(req), conditional(req), true, nil,
		pc.completeUpstream(slot))
}

// completeUpstream finishes a slot with a forwarded origin response or a
// 502.
func (pc *proxyConn) completeUpstream(slot *pxSlot) func(*httpmsg.Response, error) {
	return func(resp *httpmsg.Response, err error) {
		if err != nil || resp == nil {
			pc.p.stats.Errors++
			pc.complete(slot, pc.gatewayError(slot.req))
			return
		}
		pc.complete(slot, pc.forwardResponse(slot.req, resp))
	}
}

// fetchThrough performs (or joins) the origin fetch for key. Concurrent
// fetches of the same URL with the same conditionality collapse onto one
// upstream request; the flight owner applies cache maintenance exactly
// once (Store for a storable 200, Refresh of stale for a 304) before the
// waiters run. A request whose conditionality differs from the
// in-progress flight fetches directly, skipping cache maintenance — the
// shared response would have the wrong shape for it.
func (p *Proxy) fetchThrough(key string, upReq *httpmsg.Request, cond, maintain bool, stale *cache.Entry, cb func(*httpmsg.Response, error)) {
	if p.cache == nil {
		p.fetch(upReq, cb)
		return
	}
	if f := p.cache.Flight(key); f != nil {
		if f.Conditional == cond {
			p.stats.Collapsed++
			f.Join(cb)
			return
		}
		p.fetch(upReq, cb)
		return
	}
	f := p.cache.StartFlight(key, cond)
	f.Join(cb)
	p.fetch(upReq, func(resp *httpmsg.Response, err error) {
		if maintain && err == nil && resp != nil {
			switch {
			case resp.StatusCode == 304 && stale != nil:
				p.stats.RevalidationHits++
				p.cache.Refresh(stale, resp)
			case resp.StatusCode == 200 && cache.Storable(upReq, resp):
				resp.Header.Del("Transfer-Encoding")
				p.cache.Store(key, resp)
			}
		}
		p.cache.FinishFlight(f, resp, err)
	})
}

// buildFromEntry serves a cached entry to one client: a local 304 when
// the client's validators match the entry, else a copy of the stored 200,
// with Age and Via stamped on either.
func (pc *proxyConn) buildFromEntry(e *cache.Entry, req *httpmsg.Request) *httpmsg.Response {
	p := pc.p
	proto := protoFor(req)
	if inm := req.Header.Get("If-None-Match"); inm != "" && e.ETag != "" {
		if httpmsg.ETagMatch(inm, e.ETag) {
			return pc.localNotModified(e, proto)
		}
	} else if ims := req.Header.Get("If-Modified-Since"); ims != "" && e.LastModified != "" {
		if !httpmsg.ModifiedSince(e.LastModified, ims) {
			return pc.localNotModified(e, proto)
		}
	}
	resp := &httpmsg.Response{
		Proto:      proto,
		StatusCode: e.Status,
		Reason:     httpmsg.StatusText(e.Status),
		Header:     e.Header.Clone(),
		Body:       e.Body,
	}
	pc.stamp(resp, e)
	p.stats.BytesFromCache += int64(len(e.Body))
	return resp
}

// localNotModified answers a client validator from the cache alone.
func (pc *proxyConn) localNotModified(e *cache.Entry, proto string) *httpmsg.Response {
	pc.p.stats.LocalNotModified++
	resp := httpmsg.NewResponse(proto, 304)
	if e.ETag != "" {
		resp.Header.Add("ETag", e.ETag)
	}
	pc.stamp(resp, e)
	return resp
}

// stamp adds the Age and Via of a cache-served response.
func (pc *proxyConn) stamp(resp *httpmsg.Response, e *cache.Entry) {
	resp.Header.Add("Age", strconv.FormatInt(int64(pc.p.cache.Age(e)/time.Second), 10))
	resp.Header.Add("Via", pc.p.cfg.Via)
}

// forwardResponse relays an origin response to one client, stamping Via
// and adapting the protocol version. Each client gets its own header copy
// (collapsed waiters share the origin message).
func (pc *proxyConn) forwardResponse(req *httpmsg.Request, resp *httpmsg.Response) *httpmsg.Response {
	out := &httpmsg.Response{
		Proto:      protoFor(req),
		StatusCode: resp.StatusCode,
		Reason:     resp.Reason,
		Header:     resp.Header.Clone(),
		Body:       resp.Body,
	}
	out.Header.Del("Transfer-Encoding")
	out.Header.Del("Connection")
	out.Header.Add("Via", pc.p.cfg.Via)
	return out
}

// gatewayError is the 502 a failed upstream fetch turns into.
func (pc *proxyConn) gatewayError(req *httpmsg.Request) *httpmsg.Response {
	resp := httpmsg.NewResponse(protoFor(req), 502)
	resp.Body = []byte("<html><body>502 Bad Gateway</body></html>")
	resp.Header.Add("Content-Type", "text/html")
	resp.Header.Add("Via", pc.p.cfg.Via)
	return resp
}

// complete fills a slot and writes every response now deliverable in
// order.
func (pc *proxyConn) complete(slot *pxSlot, resp *httpmsg.Response) {
	slot.resp = resp
	slot.ready = true
	pc.writeReady()
}

func (pc *proxyConn) writeReady() {
	if pc.closing || pc.conn.State() == tcpsim.StateClosed {
		return
	}
	p := pc.p
	for len(pc.slots) > 0 && pc.slots[0].ready {
		slot := pc.slots[0]
		pc.slots = pc.slots[1:]
		resp := slot.resp
		clientClose := slot.req.WantsClose()
		if clientClose {
			resp.Header.Set("Connection", "close")
		}
		body := resp.MarshalFor(slot.req.Method)
		p.stats.Responses++
		p.stats.BytesToClient += int64(len(body))
		pc.outBuf = append(pc.outBuf, body...)
		if clientClose {
			pc.flush()
			pc.close()
			return
		}
	}
	// Buffering policy mirrors the origin server: flush when the buffer
	// is full or when no further pipelined responses are pending.
	if len(pc.outBuf) >= p.cfg.ResponseBufferSize ||
		(len(pc.slots) == 0 && pc.parser.Buffered() == 0) {
		pc.flush()
	}
	if pc.peerClosed && len(pc.slots) == 0 {
		pc.flush()
		pc.close()
	}
}

func (pc *proxyConn) flush() {
	if len(pc.outBuf) == 0 {
		return
	}
	pc.conn.Write(pc.outBuf)
	pc.outBuf = nil
}

func (pc *proxyConn) close() {
	if pc.closing {
		return
	}
	pc.closing = true
	pc.flush()
	pc.conn.CloseWrite()
}

// upstreamFetch is one origin request awaiting its pipelined response.
type upstreamFetch struct {
	req      *httpmsg.Request
	cb       func(*httpmsg.Response, error)
	attempts int // re-sends so far
	span     obs.SpanID
}

// upstream is the proxy's persistent pipelined connection to the origin.
type upstream struct {
	p        *Proxy
	conn     *tcpsim.Conn
	parser   httpmsg.ResponseParser
	inflight []*upstreamFetch
	dead     bool
}

// fetch issues an origin request on the shared upstream connection.
func (p *Proxy) fetch(req *httpmsg.Request, cb func(*httpmsg.Response, error)) {
	p.send(&upstreamFetch{req: req, cb: cb})
}

func (p *Proxy) send(uf *upstreamFetch) {
	u := p.ensureUpstream()
	p.stats.UpstreamRequests++
	uf.span = p.cfg.Obs.SpanQueuedVia(uf.req.Method, uf.req.Target, uf.attempts > 0, p.cfg.Via)
	p.cfg.Obs.SpanWritten(uf.span, u.conn.ObsID())
	u.inflight = append(u.inflight, uf)
	u.parser.PushExpectation(uf.req.Method)
	u.conn.Write(uf.req.Marshal())
}

// ensureUpstream returns the live origin connection, dialing if needed.
// The connection is never closed from the proxy side: it idles between
// client visits, like a long-lived proxy process would hold it.
func (p *Proxy) ensureUpstream() *upstream {
	if p.up != nil && !p.up.dead {
		return p.up
	}
	u := &upstream{p: p}
	opts := p.cfg.UpstreamTCP
	opts.NoDelay = true
	u.conn = p.host.Dial(p.upstreamHost, p.upstreamPort, opts, &tcpsim.Callbacks{
		Data:      u.onData,
		PeerClose: u.onPeerClose,
		Error:     u.onError,
		Close:     u.onClose,
	})
	p.up = u
	p.stats.UpstreamSockets++
	return u
}

func (u *upstream) onData(c *tcpsim.Conn, data []byte) {
	if len(u.inflight) > 0 {
		u.p.cfg.Obs.SpanFirstByte(u.inflight[0].span)
	}
	resps, err := u.parser.Feed(data)
	if err != nil {
		u.conn.Abort()
		u.fail()
		return
	}
	u.deliver(resps)
}

func (u *upstream) deliver(resps []*httpmsg.Response) {
	for _, resp := range resps {
		if len(u.inflight) == 0 {
			break
		}
		uf := u.inflight[0]
		u.inflight = u.inflight[1:]
		u.p.cfg.Obs.SpanDone(uf.span, resp.StatusCode, int64(len(resp.Body)))
		u.p.stats.BytesFromUpstream += int64(len(resp.Body))
		uf.cb(resp, nil)
	}
}

func (u *upstream) onPeerClose(c *tcpsim.Conn) {
	// Origin finished sending (Connection: close or a per-connection
	// request limit): complete any until-close body, then retire the
	// connection and retry what was left unanswered.
	resp, err := u.parser.CloseEOF()
	if err == nil && resp != nil && len(u.inflight) > 0 {
		u.deliver([]*httpmsg.Response{resp})
	}
	if !u.dead {
		u.conn.CloseWrite()
	}
	u.fail()
}

func (u *upstream) onError(c *tcpsim.Conn, err error) { u.fail() }

func (u *upstream) onClose(c *tcpsim.Conn) { u.fail() }

// fail retires the connection, re-sending each unanswered request on a
// fresh connection while the recovery policy's budget allows, then
// failing it (the client sees 502). Without a configured policy the
// budget is 1: the classic retry-once-then-502 behaviour.
func (u *upstream) fail() {
	if u.dead {
		return
	}
	u.dead = true
	pol := faults.Policy{RetryBudget: 1}
	if u.p.cfg.Recovery != nil {
		pol = *u.p.cfg.Recovery
	}
	pending := u.inflight
	u.inflight = nil
	for _, uf := range pending {
		if pol.Allow(uf.attempts) {
			uf.attempts++
			u.p.stats.Retries++
			u.p.send(uf)
			continue
		}
		uf.cb(nil, ErrUpstream)
	}
}
