package proxy

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/httpmsg"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/webgen"
)

// rig is a three-host testbed: client — LAN — proxy — LAN — origin.
type rig struct {
	s      *sim.Simulator
	net    *tcpsim.Network
	client *tcpsim.Host
	proxy  *Proxy
	origin *httpserver.Server
	site   *webgen.Site
	cache  *cache.Cache
}

func newRig(t *testing.T, primeWarm, primeStale bool) *rig {
	t.Helper()
	site, err := webgen.Microscape(webgen.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := tcpsim.NewNetwork(s)
	clientHost := net.AddHost("client")
	proxyHost := net.AddHost("proxy")
	serverHost := net.AddHost("server")
	net.ConnectHosts(clientHost, proxyHost, netem.NewEnvPath(s, netem.LAN, netem.PathOptions{}))
	net.ConnectHosts(proxyHost, serverHost, netem.NewEnvPath(s, netem.LAN, netem.PathOptions{}))

	origin := httpserver.New(s, serverHost, 80, site,
		httpserver.Config{Profile: httpserver.ProfileApache, NoDelay: true}, nil, 0)
	c := cache.New(8<<20, func() sim.Time { return s.Now() })
	if primeWarm || primeStale {
		for _, path := range site.Paths() {
			obj, _ := site.Object(path)
			e := c.Store(path, httpserver.CanonicalResponse(httpserver.ProfileApache, obj))
			if e == nil {
				t.Fatalf("priming %s rejected", path)
			}
			if primeStale {
				c.Expire(e)
			}
		}
	}
	px := New(s, proxyHost, 3128, "server", 80, Config{Cache: c, NoDelay: true}, nil, 0)
	return &rig{s: s, net: net, client: clientHost, proxy: px, origin: origin, site: site, cache: c}
}

// testClient is a raw pipelining HTTP client for driving the proxy.
type testClient struct {
	t      *testing.T
	conn   *tcpsim.Conn
	parser httpmsg.ResponseParser
	resps  []*httpmsg.Response
	onResp func(*httpmsg.Response)
}

func dialClient(t *testing.T, r *rig) *testClient {
	tc := &testClient{t: t}
	tc.conn = r.client.Dial("proxy", 3128, tcpsim.Options{NoDelay: true}, &tcpsim.Callbacks{
		Data: func(c *tcpsim.Conn, data []byte) {
			resps, err := tc.parser.Feed(data)
			if err != nil {
				t.Errorf("client parse: %v", err)
				c.Abort()
				return
			}
			for _, resp := range resps {
				tc.resps = append(tc.resps, resp)
				if tc.onResp != nil {
					tc.onResp(resp)
				}
			}
		},
		PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() },
		Error:     func(c *tcpsim.Conn, err error) {},
		Close:     func(c *tcpsim.Conn) {},
	})
	return tc
}

func (tc *testClient) get(path string, headers ...[2]string) {
	req := &httpmsg.Request{Method: "GET", Target: path, Proto: httpmsg.Proto11}
	req.Header.Add("Host", "proxy")
	for _, h := range headers {
		req.Header.Add(h[0], h[1])
	}
	tc.parser.PushExpectation("GET")
	tc.conn.Write(req.Marshal())
}

func TestMissThenHit(t *testing.T) {
	r := newRig(t, false, false)
	obj, _ := r.site.Object("/")
	tc := dialClient(t, r)
	tc.onResp = func(resp *httpmsg.Response) {
		if len(tc.resps) == 1 {
			tc.get("/") // second fetch after the first completed: a pure hit
		} else {
			tc.conn.CloseWrite()
		}
	}
	r.s.Schedule(0, func() { tc.get("/") })
	r.s.Run()

	if len(tc.resps) != 2 {
		t.Fatalf("got %d responses, want 2", len(tc.resps))
	}
	for i, resp := range tc.resps {
		if resp.StatusCode != 200 || string(resp.Body) != string(obj.Body) {
			t.Fatalf("response %d: status %d, body %d bytes", i, resp.StatusCode, len(resp.Body))
		}
		if got := resp.Header.Get("Via"); got != "1.1 proxy" {
			t.Fatalf("response %d Via = %q", i, got)
		}
	}
	if tc.resps[0].Header.Has("Age") {
		t.Fatal("miss response carries Age")
	}
	if !tc.resps[1].Header.Has("Age") {
		t.Fatal("hit response lacks Age")
	}
	st := r.proxy.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.UpstreamRequests != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 hit / 1 upstream request", st)
	}
	if st.BytesFromCache != int64(len(obj.Body)) {
		t.Fatalf("BytesFromCache = %d, want %d", st.BytesFromCache, len(obj.Body))
	}
	if r.origin.Stats().Requests != 1 {
		t.Fatalf("origin saw %d requests, want 1", r.origin.Stats().Requests)
	}
	// The upstream request announced the intermediary.
	if st.UpstreamSockets != 1 {
		t.Fatalf("UpstreamSockets = %d, want 1", st.UpstreamSockets)
	}
}

func TestCollapsedForwarding(t *testing.T) {
	r := newRig(t, false, false)
	img := r.site.Paths()[1] // first inline object
	a := dialClient(t, r)
	b := dialClient(t, r)
	r.s.Schedule(0, func() {
		a.get(img)
		b.get(img)
	})
	r.s.Run()

	if len(a.resps) != 1 || len(b.resps) != 1 {
		t.Fatalf("responses: a=%d b=%d, want 1 each", len(a.resps), len(b.resps))
	}
	if a.resps[0].StatusCode != 200 || b.resps[0].StatusCode != 200 {
		t.Fatalf("status codes %d/%d", a.resps[0].StatusCode, b.resps[0].StatusCode)
	}
	st := r.proxy.Stats()
	if st.UpstreamRequests != 1 {
		t.Fatalf("UpstreamRequests = %d, want 1 (collapsed)", st.UpstreamRequests)
	}
	if st.Collapsed != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses with 1 collapsed", st)
	}
	if r.origin.Stats().Requests != 1 {
		t.Fatalf("origin saw %d requests, want 1", r.origin.Stats().Requests)
	}
}

func TestStaleRevalidation(t *testing.T) {
	r := newRig(t, false, true) // warm but expired
	obj, _ := r.site.Object("/")
	tc := dialClient(t, r)
	tc.onResp = func(resp *httpmsg.Response) { tc.conn.CloseWrite() }
	r.s.Schedule(0, func() { tc.get("/") })
	r.s.Run()

	if len(tc.resps) != 1 || tc.resps[0].StatusCode != 200 {
		t.Fatalf("got %d responses (first status %d), want one 200", len(tc.resps), tc.resps[0].StatusCode)
	}
	if string(tc.resps[0].Body) != string(obj.Body) {
		t.Fatal("revalidated body differs from origin object")
	}
	st := r.proxy.Stats()
	if st.Revalidations != 1 || st.RevalidationHits != 1 {
		t.Fatalf("stats = %+v, want one revalidation hit", st)
	}
	if st.BytesFromCache != int64(len(obj.Body)) || st.BytesFromUpstream != 0 {
		t.Fatalf("byte split = cache %d / upstream %d, want %d / 0",
			st.BytesFromCache, st.BytesFromUpstream, len(obj.Body))
	}
	if r.origin.Stats().NotModified != 1 {
		t.Fatalf("origin NotModified = %d, want 1", r.origin.Stats().NotModified)
	}
}

func TestLocalNotModified(t *testing.T) {
	r := newRig(t, true, false) // warm and fresh
	obj, _ := r.site.Object("/")
	tc := dialClient(t, r)
	tc.onResp = func(resp *httpmsg.Response) { tc.conn.CloseWrite() }
	r.s.Schedule(0, func() {
		tc.get("/", [2]string{"If-None-Match", obj.ETag})
	})
	r.s.Run()

	if len(tc.resps) != 1 || tc.resps[0].StatusCode != 304 {
		t.Fatalf("got %d responses (status %d), want one 304", len(tc.resps), tc.resps[0].StatusCode)
	}
	st := r.proxy.Stats()
	if st.LocalNotModified != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want a local 304 hit", st)
	}
	if st.UpstreamRequests != 0 {
		t.Fatalf("UpstreamRequests = %d, want 0", st.UpstreamRequests)
	}
	if r.origin.Stats().Requests != 0 {
		t.Fatalf("origin saw %d requests, want 0", r.origin.Stats().Requests)
	}
}

func TestWarmCacheServesWholeSite(t *testing.T) {
	r := newRig(t, true, false)
	paths := r.site.Paths()
	tc := dialClient(t, r)
	r.s.Schedule(0, func() {
		for _, p := range paths {
			tc.get(p)
		}
		tc.conn.CloseWrite()
	})
	r.s.Run()

	if len(tc.resps) != len(paths) {
		t.Fatalf("got %d responses, want %d", len(tc.resps), len(paths))
	}
	for i, resp := range tc.resps {
		obj, _ := r.site.Object(paths[i])
		if resp.StatusCode != 200 || len(resp.Body) != len(obj.Body) {
			t.Fatalf("response %d (%s): status %d, %d bytes, want 200 with %d",
				i, paths[i], resp.StatusCode, len(resp.Body), len(obj.Body))
		}
	}
	st := r.proxy.Stats()
	if st.Hits != len(paths) || st.UpstreamRequests != 0 {
		t.Fatalf("stats = %+v, want %d hits and no upstream traffic", st, len(paths))
	}
}

func TestHopByHopStripped(t *testing.T) {
	// A client's Connection: close must terminate the client connection
	// without tearing down the shared upstream connection.
	r := newRig(t, false, false)
	tc := dialClient(t, r)
	r.s.Schedule(0, func() {
		tc.get("/", [2]string{"Connection", "close"})
	})
	r.s.Run()

	if len(tc.resps) != 1 || tc.resps[0].StatusCode != 200 {
		t.Fatalf("got %d responses, want one 200", len(tc.resps))
	}
	if got := tc.resps[0].Header.Get("Connection"); !strings.Contains(got, "close") {
		t.Fatalf("Connection = %q, want close", got)
	}
	if r.proxy.up == nil || r.proxy.up.dead {
		t.Fatal("upstream connection did not survive the client close")
	}
	if st := r.proxy.up.conn.State(); st != tcpsim.StateEstablished {
		t.Fatalf("upstream state = %v, want established", st)
	}
}
