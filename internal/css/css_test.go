package css

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperBanner is the paper's Figure 1 replacement style, verbatim.
const paperBanner = `
	P.banner {
	  color: white;
	  background: #FC0;
	  font: bold oblique 20px sans-serif;
	  padding: 0.2em 10em 0.2em 1em;
	}
`

func TestParsePaperExample(t *testing.T) {
	s, err := Parse(paperBanner)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(s.Rules))
	}
	r := s.Rules[0]
	if len(r.Selectors) != 1 || r.Selectors[0].String() != "p.banner" {
		t.Fatalf("selector = %q", r.Selectors[0].String())
	}
	if len(r.Decls) != 4 {
		t.Fatalf("decls = %d, want 4", len(r.Decls))
	}
	if r.Decls[2].Property != "font" || r.Decls[2].Value != "bold oblique 20px sans-serif" {
		t.Fatalf("font decl = %+v", r.Decls[2])
	}
	if warns := s.Validate(); len(warns) != 0 {
		t.Fatalf("paper example flagged non-CSS1: %v", warns)
	}
}

func TestCompactIsSmall(t *testing.T) {
	s := MustParse(paperBanner)
	compact := s.Compact()
	// The paper says the HTML+CSS replacement is ~150 bytes including the
	// <P CLASS=banner> markup; the style rule itself must be ~120.
	if len(compact) > 130 {
		t.Fatalf("compact form is %d bytes: %q", len(compact), compact)
	}
	// Compact output must re-parse to the same structure.
	s2, err := Parse(compact)
	if err != nil {
		t.Fatalf("compact form does not re-parse: %v", err)
	}
	if s2.String() != s.String() {
		t.Fatalf("compact round trip changed sheet:\n%s\nvs\n%s", s2, s)
	}
}

func TestSelectors(t *testing.T) {
	cases := map[string]struct {
		str  string
		spec int
	}{
		"H1":             {"h1", 1},
		"*":              {"*", 0},
		".note":          {".note", 10},
		"P.banner.big":   {"p.banner.big", 21},
		"#intro":         {"#intro", 100},
		"DIV P A:link":   {"div p a:link", 13},
		"H1 EM":          {"h1 em", 2},
		"A:visited#x.y":  {"a#x.y:visited", 121},
		"P:first-letter": {"p:first-letter", 11},
		"UL LI .special": {"ul li .special", 12},
	}
	for in, want := range cases {
		sheet, err := Parse(in + " { color: red }")
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		sel := sheet.Rules[0].Selectors[0]
		if sel.String() != want.str {
			t.Errorf("%q: String() = %q, want %q", in, sel.String(), want.str)
		}
		if got := sel.Specificity(); got != want.spec {
			t.Errorf("%q: specificity = %d, want %d", in, got, want.spec)
		}
	}
}

func TestSelectorGroups(t *testing.T) {
	s := MustParse("H1, H2, H3 { font-family: helvetica }")
	if len(s.Rules[0].Selectors) != 3 {
		t.Fatalf("selectors = %d, want 3", len(s.Rules[0].Selectors))
	}
}

func TestImportant(t *testing.T) {
	s := MustParse("p { color: red ! important; margin: 1em }")
	if !s.Rules[0].Decls[0].Important {
		t.Fatal("!important not detected")
	}
	if s.Rules[0].Decls[0].Value != "red" {
		t.Fatalf("value = %q, want red", s.Rules[0].Decls[0].Value)
	}
	if s.Rules[0].Decls[1].Important {
		t.Fatal("plain declaration marked important")
	}
}

func TestImports(t *testing.T) {
	s := MustParse(`@import url(base.css); @import "extra.css"; p { color: red }`)
	if len(s.Imports) != 2 || s.Imports[0] != "base.css" || s.Imports[1] != "extra.css" {
		t.Fatalf("imports = %v", s.Imports)
	}
}

func TestUnknownAtRuleSkipped(t *testing.T) {
	s := MustParse(`@media print { p { color: black } } em { color: red }`)
	if len(s.Rules) != 1 || s.Rules[0].Selectors[0].String() != "em" {
		t.Fatalf("rules after skipped at-rule: %+v", s.Rules)
	}
}

func TestComments(t *testing.T) {
	s := MustParse("/* header */ p { /* inner */ color: red } /* trailing")
	if len(s.Rules) != 1 || len(s.Rules[0].Decls) != 1 {
		t.Fatalf("comment handling broke parse: %+v", s.Rules)
	}
}

func TestValidateFlagsNonCSS1(t *testing.T) {
	s := MustParse("p { color: red; position: absolute; z-index: 2 }")
	warns := s.Validate()
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want 2 (position, z-index are CSS2)", warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "not CSS1") {
			t.Fatalf("warning text: %q", w)
		}
	}
}

func TestIsCSS1Property(t *testing.T) {
	for _, p := range []string{"font", "COLOR", "margin-left", "list-style", "white-space"} {
		if !IsCSS1Property(p) {
			t.Errorf("%q should be CSS1", p)
		}
	}
	for _, p := range []string{"position", "z-index", "overflow", "grid-template"} {
		if IsCSS1Property(p) {
			t.Errorf("%q should not be CSS1", p)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"p { color: red ",     // unclosed block
		"p color: red }",      // missing brace
		"p { color }",         // no colon
		"{ color: red }",      // empty selector? (whitespace selector)
		"p..x { color: red }", // dangling class marker
		"p { : red }",         // empty property
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := MustParse("H1, .note { color: red; margin: 1em 2em }")
	out := s.String()
	if !strings.Contains(out, "h1, .note {") {
		t.Fatalf("String() = %q", out)
	}
	if !strings.Contains(out, "  color: red;") {
		t.Fatalf("String() = %q", out)
	}
}

// Property: Compact output always re-parses to an equivalent sheet.
func TestPropertyCompactRoundTrip(t *testing.T) {
	props := []string{"color", "background", "font-size", "margin", "padding", "text-align"}
	vals := []string{"red", "#FC0", "12px", "1em 2em", "0.2em 10em", "center"}
	f := func(selSeed, n uint8) bool {
		var src strings.Builder
		sels := []string{"p", "h1.x", "#main", "div p", "ul li.item", "a:link"}
		for i := 0; i <= int(n)%4; i++ {
			src.WriteString(sels[(int(selSeed)+i)%len(sels)])
			src.WriteString(" { ")
			for j := 0; j <= (int(selSeed)+i)%3; j++ {
				k := (i + j) % len(props)
				src.WriteString(props[k] + ": " + vals[k] + "; ")
			}
			src.WriteString("}\n")
		}
		s1, err := Parse(src.String())
		if err != nil {
			return false
		}
		s2, err := Parse(s1.Compact())
		if err != nil {
			return false
		}
		return s1.String() == s2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
