package css

import "strings"

// Element describes one document-tree element for selector matching.
type Element struct {
	Tag     string
	ID      string
	Classes []string
	// Pseudos lists pseudo-classes/elements in effect (e.g. "link" on an
	// anchor that points somewhere unvisited).
	Pseudos []string
}

// matchSimple reports whether a simple selector matches one element.
func matchSimple(ss SimpleSelector, e Element) bool {
	if ss.Element != "" && !strings.EqualFold(ss.Element, e.Tag) {
		return false
	}
	if ss.ID != "" && ss.ID != e.ID {
		return false
	}
	for _, class := range ss.Classes {
		if !containsFold(e.Classes, class) {
			return false
		}
	}
	for _, p := range ss.Pseudos {
		if !containsFold(e.Pseudos, p) {
			return false
		}
	}
	return true
}

func containsFold(list []string, want string) bool {
	for _, v := range list {
		if strings.EqualFold(v, want) {
			return true
		}
	}
	return false
}

// Matches reports whether the selector matches the final element of path,
// with the preceding elements as its ancestors. CSS1 contextual selectors
// are ancestor selectors: each earlier simple selector must match some
// ancestor, in order, but not necessarily consecutively.
func (s Selector) Matches(path []Element) bool {
	if len(s.Simple) == 0 || len(path) == 0 {
		return false
	}
	// The last simple selector must match the subject element.
	if !matchSimple(s.Simple[len(s.Simple)-1], path[len(path)-1]) {
		return false
	}
	// Remaining simple selectors match ancestors right-to-left.
	si := len(s.Simple) - 2
	pi := len(path) - 2
	for si >= 0 {
		if pi < 0 {
			return false
		}
		if matchSimple(s.Simple[si], path[pi]) {
			si--
		}
		pi--
	}
	return true
}

// MatchedDecl is one declaration selected by the cascade, with the
// information used to rank it.
type MatchedDecl struct {
	Decl        Decl
	Specificity int
	// Order is the global rule position (sheet-major); later wins ties.
	Order int
}

// Cascade resolves declarations from one or more style sheets in document
// order (CSS1 author-origin cascading: !important beats normal, then
// higher specificity, then later position).
type Cascade struct {
	rules []cascadeRule
}

type cascadeRule struct {
	sel   Selector
	decls []Decl
	order int
}

// NewCascade builds a cascade over the sheets in priority order (later
// sheets override earlier ones at equal specificity, as if appended).
func NewCascade(sheets ...*Stylesheet) *Cascade {
	c := &Cascade{}
	order := 0
	for _, sheet := range sheets {
		for _, rule := range sheet.Rules {
			for _, sel := range rule.Selectors {
				c.rules = append(c.rules, cascadeRule{sel: sel, decls: rule.Decls, order: order})
				order++
			}
		}
	}
	return c
}

// Style computes the winning declaration for every property that any
// matching rule sets on the element at the end of path.
func (c *Cascade) Style(path []Element) map[string]MatchedDecl {
	winners := make(map[string]MatchedDecl)
	for _, rule := range c.rules {
		if !rule.sel.Matches(path) {
			continue
		}
		spec := rule.sel.Specificity()
		for _, d := range rule.decls {
			cand := MatchedDecl{Decl: d, Specificity: spec, Order: rule.order}
			prev, ok := winners[d.Property]
			if !ok || beats(cand, prev) {
				winners[d.Property] = cand
			}
		}
	}
	return winners
}

// beats reports whether a should replace b in the cascade.
func beats(a, b MatchedDecl) bool {
	if a.Decl.Important != b.Decl.Important {
		return a.Decl.Important
	}
	if a.Specificity != b.Specificity {
		return a.Specificity > b.Specificity
	}
	return a.Order >= b.Order
}

// MatchingRules returns the selectors (with their rule declarations) that
// match the element, in cascade order — useful for debugging sheets.
func (c *Cascade) MatchingRules(path []Element) []Selector {
	var out []Selector
	for _, rule := range c.rules {
		if rule.sel.Matches(path) {
			out = append(out, rule.sel)
		}
	}
	return out
}
