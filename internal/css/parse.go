package css

import (
	"fmt"
	"strings"
)

// Parse parses a CSS1 style sheet. It is tolerant of whitespace and
// comments, strict about brace/semicolon structure.
func Parse(src string) (*Stylesheet, error) {
	p := &parser{src: stripComments(src)}
	sheet := &Stylesheet{}
	for {
		p.skipSpace()
		if p.eof() {
			return sheet, nil
		}
		if p.peek() == '@' {
			if err := p.atRule(sheet); err != nil {
				return nil, err
			}
			continue
		}
		rule, err := p.rule()
		if err != nil {
			return nil, err
		}
		sheet.Rules = append(sheet.Rules, rule)
	}
}

// MustParse parses or panics; for tests and static sheets.
func MustParse(src string) *Stylesheet {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// stripComments removes /* ... */ comments.
func stripComments(s string) string {
	var b strings.Builder
	for {
		i := strings.Index(s, "/*")
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i])
		j := strings.Index(s[i+2:], "*/")
		if j < 0 {
			return b.String()
		}
		s = s[i+2+j+2:]
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n', '\f':
			p.pos++
		default:
			return
		}
	}
}

// until returns the text up to (not including) the next occurrence of any
// byte in stops, advancing past it; the stop byte found is returned.
func (p *parser) until(stops string) (string, byte, error) {
	start := p.pos
	for !p.eof() {
		c := p.peek()
		if strings.IndexByte(stops, c) >= 0 {
			text := p.src[start:p.pos]
			p.pos++
			return text, c, nil
		}
		p.pos++
	}
	return "", 0, fmt.Errorf("%w: expected one of %q before end of input", ErrSyntax, stops)
}

// atRule handles @import (the only CSS1 at-rule); unknown at-rules are
// skipped per the CSS error-handling rules.
func (p *parser) atRule(sheet *Stylesheet) error {
	head, stop, err := p.until(";{")
	if err != nil {
		return err
	}
	head = strings.TrimSpace(head)
	if stop == '{' {
		// Unknown block at-rule: skip its block.
		depth := 1
		for !p.eof() && depth > 0 {
			switch p.peek() {
			case '{':
				depth++
			case '}':
				depth--
			}
			p.pos++
		}
		return nil
	}
	lower := strings.ToLower(head)
	if strings.HasPrefix(lower, "@import") {
		arg := strings.TrimSpace(head[len("@import"):])
		arg = strings.TrimPrefix(arg, "url(")
		arg = strings.TrimSuffix(arg, ")")
		arg = strings.Trim(arg, `"' `)
		if arg == "" {
			return fmt.Errorf("%w: empty @import", ErrSyntax)
		}
		sheet.Imports = append(sheet.Imports, arg)
	}
	return nil
}

func (p *parser) rule() (Rule, error) {
	selText, _, err := p.until("{")
	if err != nil {
		return Rule{}, err
	}
	sels, err := parseSelectors(selText)
	if err != nil {
		return Rule{}, err
	}
	body, _, err := p.until("}")
	if err != nil {
		return Rule{}, err
	}
	decls, err := parseDecls(body)
	if err != nil {
		return Rule{}, err
	}
	return Rule{Selectors: sels, Decls: decls}, nil
}

func parseSelectors(text string) ([]Selector, error) {
	var sels []Selector
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: empty selector", ErrSyntax)
		}
		var sel Selector
		for _, word := range strings.Fields(part) {
			ss, err := parseSimpleSelector(word)
			if err != nil {
				return nil, err
			}
			sel.Simple = append(sel.Simple, ss)
		}
		sels = append(sels, sel)
	}
	return sels, nil
}

func parseSimpleSelector(word string) (SimpleSelector, error) {
	var ss SimpleSelector
	rest := word
	// Element name (or * / empty).
	i := 0
	for i < len(rest) && rest[i] != '.' && rest[i] != '#' && rest[i] != ':' {
		i++
	}
	elem := rest[:i]
	if elem != "" && elem != "*" {
		ss.Element = strings.ToLower(elem)
	}
	rest = rest[i:]
	for rest != "" {
		marker := rest[0]
		rest = rest[1:]
		j := 0
		for j < len(rest) && rest[j] != '.' && rest[j] != '#' && rest[j] != ':' {
			j++
		}
		name := rest[:j]
		if name == "" {
			return ss, fmt.Errorf("%w: dangling %q in selector %q", ErrSyntax, marker, word)
		}
		switch marker {
		case '.':
			ss.Classes = append(ss.Classes, name)
		case '#':
			if ss.ID != "" {
				return ss, fmt.Errorf("%w: two ids in %q", ErrSyntax, word)
			}
			ss.ID = name
		case ':':
			ss.Pseudos = append(ss.Pseudos, strings.ToLower(name))
		}
		rest = rest[j:]
	}
	return ss, nil
}

func parseDecls(body string) ([]Decl, error) {
	var decls []Decl
	for _, part := range strings.Split(body, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		colon := strings.IndexByte(part, ':')
		if colon < 0 {
			return nil, fmt.Errorf("%w: declaration %q has no colon", ErrSyntax, part)
		}
		prop := strings.ToLower(strings.TrimSpace(part[:colon]))
		value := strings.TrimSpace(part[colon+1:])
		if prop == "" || value == "" {
			return nil, fmt.Errorf("%w: empty property or value in %q", ErrSyntax, part)
		}
		d := Decl{Property: prop}
		lower := strings.ToLower(value)
		if i := strings.Index(lower, "!"); i >= 0 && strings.Contains(lower[i:], "important") {
			d.Important = true
			value = strings.TrimSpace(value[:i])
		}
		d.Value = normalizeSpace(value)
		decls = append(decls, d)
	}
	return decls, nil
}

func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
