// Package css implements a CSS1 parser, validator, and serializer. It is
// the substrate for the paper's content-change experiment: replacing
// decorative images with HTML+CSS (Figure 1: a 682-byte "solutions" GIF
// becomes ~150 bytes of markup and style).
//
// The property set is CSS1 (Lie & Bos, W3C Recommendation, 17 Dec 1996):
// fonts, color and background, text, box model, and classification
// properties.
package css

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSyntax reports unparseable CSS.
var ErrSyntax = errors.New("css: syntax error")

// Decl is one declaration: property, value, and the !important flag.
type Decl struct {
	Property  string
	Value     string
	Important bool
}

// Rule is one rule set: selectors sharing a declaration block.
type Rule struct {
	Selectors []Selector
	Decls     []Decl
}

// Stylesheet is a parsed CSS1 style sheet.
type Stylesheet struct {
	// Imports holds @import URLs in order.
	Imports []string
	Rules   []Rule
}

// Selector is one (possibly contextual) CSS1 selector: a chain of simple
// selectors separated by whitespace, matched as ancestor context.
type Selector struct {
	Simple []SimpleSelector
}

// SimpleSelector is an element with optional id, classes, and
// pseudo-classes/elements (CSS1: :link, :visited, :active, :first-line,
// :first-letter).
type SimpleSelector struct {
	Element string // "" means any
	ID      string
	Classes []string
	Pseudos []string
}

// String renders the selector in canonical form.
func (s Selector) String() string {
	parts := make([]string, len(s.Simple))
	for i, ss := range s.Simple {
		parts[i] = ss.String()
	}
	return strings.Join(parts, " ")
}

// String renders the simple selector.
func (ss SimpleSelector) String() string {
	var b strings.Builder
	b.WriteString(ss.Element)
	if ss.ID != "" {
		b.WriteByte('#')
		b.WriteString(ss.ID)
	}
	for _, c := range ss.Classes {
		b.WriteByte('.')
		b.WriteString(c)
	}
	for _, p := range ss.Pseudos {
		b.WriteByte(':')
		b.WriteString(p)
	}
	if b.Len() == 0 {
		return "*"
	}
	return b.String()
}

// Specificity computes CSS1 cascading specificity: ids*100 +
// (classes+pseudo-classes)*10 + elements.
func (s Selector) Specificity() int {
	n := 0
	for _, ss := range s.Simple {
		if ss.ID != "" {
			n += 100
		}
		n += 10 * (len(ss.Classes) + len(ss.Pseudos))
		if ss.Element != "" && ss.Element != "*" {
			n++
		}
	}
	return n
}

// css1Properties is the CSS1 property set.
var css1Properties = map[string]bool{
	// Font properties.
	"font-family": true, "font-style": true, "font-variant": true,
	"font-weight": true, "font-size": true, "font": true,
	// Color and background.
	"color": true, "background-color": true, "background-image": true,
	"background-repeat": true, "background-attachment": true,
	"background-position": true, "background": true,
	// Text.
	"word-spacing": true, "letter-spacing": true, "text-decoration": true,
	"vertical-align": true, "text-transform": true, "text-align": true,
	"text-indent": true, "line-height": true,
	// Box.
	"margin-top": true, "margin-right": true, "margin-bottom": true,
	"margin-left": true, "margin": true,
	"padding-top": true, "padding-right": true, "padding-bottom": true,
	"padding-left": true, "padding": true,
	"border-top-width": true, "border-right-width": true,
	"border-bottom-width": true, "border-left-width": true,
	"border-width": true, "border-color": true, "border-style": true,
	"border-top": true, "border-right": true, "border-bottom": true,
	"border-left": true, "border": true,
	"width": true, "height": true, "float": true, "clear": true,
	// Classification.
	"display": true, "white-space": true,
	"list-style-type": true, "list-style-image": true,
	"list-style-position": true, "list-style": true,
}

// IsCSS1Property reports whether name is in the CSS1 property set.
func IsCSS1Property(name string) bool {
	return css1Properties[strings.ToLower(name)]
}

// Validate returns a warning per declaration whose property is not CSS1.
func (s *Stylesheet) Validate() []string {
	var warnings []string
	for _, r := range s.Rules {
		for _, d := range r.Decls {
			if !IsCSS1Property(d.Property) {
				warnings = append(warnings,
					fmt.Sprintf("property %q in rule %q is not CSS1", d.Property, r.Selectors[0]))
			}
		}
	}
	return warnings
}

// String renders the sheet in a readable multi-line form.
func (s *Stylesheet) String() string {
	var b strings.Builder
	for _, imp := range s.Imports {
		fmt.Fprintf(&b, "@import url(%s);\n", imp)
	}
	for _, r := range s.Rules {
		sels := make([]string, len(r.Selectors))
		for i, sel := range r.Selectors {
			sels[i] = sel.String()
		}
		b.WriteString(strings.Join(sels, ", "))
		b.WriteString(" {\n")
		for _, d := range r.Decls {
			b.WriteString("  ")
			b.WriteString(d.Property)
			b.WriteString(": ")
			b.WriteString(d.Value)
			if d.Important {
				b.WriteString(" ! important")
			}
			b.WriteString(";\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Compact renders the sheet with minimal bytes (the form used when
// estimating network savings).
func (s *Stylesheet) Compact() string {
	var b strings.Builder
	for _, imp := range s.Imports {
		fmt.Fprintf(&b, "@import url(%s);", imp)
	}
	for _, r := range s.Rules {
		sels := make([]string, len(r.Selectors))
		for i, sel := range r.Selectors {
			sels[i] = sel.String()
		}
		b.WriteString(strings.Join(sels, ","))
		b.WriteByte('{')
		for i, d := range r.Decls {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(d.Property)
			b.WriteByte(':')
			b.WriteString(d.Value)
			if d.Important {
				b.WriteString("!important")
			}
		}
		b.WriteByte('}')
	}
	return b.String()
}
