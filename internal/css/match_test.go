package css

import (
	"testing"
	"testing/quick"
)

func sel(t *testing.T, src string) Selector {
	t.Helper()
	sheet, err := Parse(src + " { color: red }")
	if err != nil {
		t.Fatal(err)
	}
	return sheet.Rules[0].Selectors[0]
}

func TestSimpleSelectorMatching(t *testing.T) {
	p := Element{Tag: "p", Classes: []string{"banner", "wide"}, ID: "intro", Pseudos: []string{"first-line"}}
	cases := []struct {
		selector string
		want     bool
	}{
		{"p", true},
		{"P", true}, // tags match case-insensitively
		{"div", false},
		{"*", true},
		{".banner", true},
		{".Banner", true},
		{".missing", false},
		{"p.banner", true},
		{"p.banner.wide", true},
		{"p.banner.narrow", false},
		{"#intro", true},
		{"#outro", false},
		{"p#intro.banner", true},
		{"p:first-line", true},
		{"p:first-letter", false},
	}
	for _, c := range cases {
		if got := sel(t, c.selector).Matches([]Element{p}); got != c.want {
			t.Errorf("%q matches = %v, want %v", c.selector, got, c.want)
		}
	}
}

func TestContextualSelectorMatching(t *testing.T) {
	path := []Element{
		{Tag: "html"},
		{Tag: "body"},
		{Tag: "div", Classes: []string{"nav"}},
		{Tag: "ul"},
		{Tag: "li"},
		{Tag: "a", Pseudos: []string{"link"}},
	}
	cases := []struct {
		selector string
		want     bool
	}{
		{"a", true},
		{"li a", true},
		{"ul a", true}, // ancestors need not be consecutive
		{"div.nav a", true},
		{"body div ul li a", true},
		{"div.other a", false},
		{"table a", false},
		{"a li", false}, // order matters
		{"ul li a:link", true},
		{"ul li a:visited", false},
		{"html body div ul li a", true},
		{"p html body div ul li a", false}, // more context than ancestors
	}
	for _, c := range cases {
		if got := sel(t, c.selector).Matches(path); got != c.want {
			t.Errorf("%q matches = %v, want %v", c.selector, got, c.want)
		}
	}
}

func TestMatchesEdgeCases(t *testing.T) {
	if (Selector{}).Matches([]Element{{Tag: "p"}}) {
		t.Error("empty selector matched")
	}
	if sel(t, "p").Matches(nil) {
		t.Error("selector matched empty path")
	}
}

func TestCascadeSpecificity(t *testing.T) {
	sheet := MustParse(`
		p { color: black; margin: 1em }
		p.banner { color: white }
		#special { color: blue }
	`)
	c := NewCascade(sheet)

	plain := c.Style([]Element{{Tag: "p"}})
	if plain["color"].Decl.Value != "black" {
		t.Errorf("plain p color = %q", plain["color"].Decl.Value)
	}
	banner := c.Style([]Element{{Tag: "p", Classes: []string{"banner"}}})
	if banner["color"].Decl.Value != "white" {
		t.Errorf("banner color = %q (class must beat element)", banner["color"].Decl.Value)
	}
	if banner["margin"].Decl.Value != "1em" {
		t.Errorf("banner margin = %q (inherited from p rule)", banner["margin"].Decl.Value)
	}
	special := c.Style([]Element{{Tag: "p", ID: "special", Classes: []string{"banner"}}})
	if special["color"].Decl.Value != "blue" {
		t.Errorf("id color = %q (id must beat class)", special["color"].Decl.Value)
	}
}

func TestCascadeOrderBreaksTies(t *testing.T) {
	sheet := MustParse(`p { color: red } p { color: green }`)
	c := NewCascade(sheet)
	got := c.Style([]Element{{Tag: "p"}})
	if got["color"].Decl.Value != "green" {
		t.Errorf("later rule should win ties: %q", got["color"].Decl.Value)
	}
}

func TestCascadeAcrossSheets(t *testing.T) {
	base := MustParse(`p { color: red; font-size: 12px }`)
	override := MustParse(`p { color: green }`)
	c := NewCascade(base, override)
	got := c.Style([]Element{{Tag: "p"}})
	if got["color"].Decl.Value != "green" {
		t.Errorf("later sheet should win: %q", got["color"].Decl.Value)
	}
	if got["font-size"].Decl.Value != "12px" {
		t.Errorf("unoverridden property lost: %q", got["font-size"].Decl.Value)
	}
}

func TestImportantBeatsSpecificity(t *testing.T) {
	sheet := MustParse(`
		p { color: red ! important }
		p#x.y { color: blue }
	`)
	c := NewCascade(sheet)
	got := c.Style([]Element{{Tag: "p", ID: "x", Classes: []string{"y"}}})
	if got["color"].Decl.Value != "red" {
		t.Errorf("!important lost to specificity: %q", got["color"].Decl.Value)
	}
}

func TestMatchingRules(t *testing.T) {
	sheet := MustParse(`p {color:red} .banner {color:blue} div {color:green}`)
	c := NewCascade(sheet)
	rules := c.MatchingRules([]Element{{Tag: "p", Classes: []string{"banner"}}})
	if len(rules) != 2 {
		t.Fatalf("matching rules = %d, want 2", len(rules))
	}
}

// Property: a selector built from an element's own features always
// matches that element.
func TestPropertySelfSelectorMatches(t *testing.T) {
	tags := []string{"p", "div", "li", "a", "h1"}
	f := func(tagIdx, classIdx uint8, withID bool) bool {
		e := Element{Tag: tags[int(tagIdx)%len(tags)]}
		class := []string{"alpha", "beta", "gamma"}[int(classIdx)%3]
		e.Classes = []string{class}
		src := e.Tag + "." + class
		if withID {
			e.ID = "the-id"
			src += "#the-id"
		}
		sheet, err := Parse(src + " { color: red }")
		if err != nil {
			return false
		}
		return sheet.Rules[0].Selectors[0].Matches([]Element{e})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
