package css

import (
	"strings"
	"testing"
)

var benchSheet = strings.Repeat(
	"p.banner { color: white; background: #FC0; font: bold oblique 20px sans-serif }\n"+
		"div.nav ul li a:link { color: blue; text-decoration: none }\n"+
		"#masthead h1 { font-size: 24px; margin: 0 }\n", 60)

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchSheet)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSheet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascadeStyle(b *testing.B) {
	sheet := MustParse(benchSheet)
	c := NewCascade(sheet)
	path := []Element{
		{Tag: "html"}, {Tag: "body"},
		{Tag: "div", Classes: []string{"nav"}},
		{Tag: "ul"}, {Tag: "li"},
		{Tag: "a", Pseudos: []string{"link"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Style(path)
	}
}
