package sim

// CPU models a single processor as a busy-until chain: work items run
// back to back, never in parallel. The simulated client and server each
// get one, which is what serializes per-request processing cost across
// concurrent connections — the effect behind the paper's elapsed-time
// differences between Jigsaw (interpreted Java) and Apache on a LAN.
type CPU struct {
	sim       *Simulator
	busyUntil Time
	rng       *Rand
	jitter    float64
	total     Duration
}

// NewCPU returns a CPU on simulator s. rng and jitterFrac add reproducible
// run-to-run variation to every work item; rng may be nil for none.
func NewCPU(s *Simulator, rng *Rand, jitterFrac float64) *CPU {
	return &CPU{sim: s, rng: rng, jitter: jitterFrac}
}

// Run schedules fn after d of CPU work, queued behind any work already
// scheduled. It returns the completion instant.
func (c *CPU) Run(d Duration, fn func()) Time {
	if c.rng != nil && c.jitter > 0 {
		d = c.rng.Jitter(d, c.jitter)
	}
	start := c.sim.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	end := start.Add(d)
	c.busyUntil = end
	c.total += d
	c.sim.At(end, fn)
	return end
}

// BusyUntil returns the instant the CPU goes idle.
func (c *CPU) BusyUntil() Time { return c.busyUntil }

// TotalWork returns the cumulative CPU time consumed.
func (c *CPU) TotalWork() Duration { return c.total }
