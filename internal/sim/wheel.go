package sim

import "math/bits"

// The hierarchical timer wheel. Near events live in four levels of 64
// slots each; level l buckets instants by 2^(10+6l) nanoseconds, so the
// wheel spans ~1µs slots at level 0 up to ~268ms slots at level 3 — a
// horizon of about 17 simulated seconds ahead of the cursor. Events
// beyond the horizon wait in a small overflow min-heap and cascade into
// the wheel as the cursor advances.
//
// A single virtual cursor (in level-0 ticks) orders everything: level
// l's cursor tick is cur >> 6l. Firing order is the engine contract,
// (when, seq): the wheel finds the next occupied level-0 slot with a
// bitmap scan, drains it into the sorted "due" queue, and pops that
// queue in order.
//
// The subtle part is the scan discipline. A level's 64-slot window may
// extend past the parent level's current slot boundary, and the parent
// slot just beyond that boundary can hold events that interleave with
// this level's late bits. So a level is only scanned up to its parent's
// slot edge (bm >> off, no rotation — a wrapped bit means "cross the
// boundary first"), and every boundary crossing goes through advanceTo,
// which cascades each level whose current slot changed, top-down,
// before any lower level is consulted again. That keeps the invariant
// that everything still parked at level l is at or after the cursor's
// position in level-l ticks, and nothing earlier hides above.
const (
	wheelLevels   = 4
	wheelSlotBits = 6
	wheelSlots    = 1 << wheelSlotBits
	wheelSlotMask = wheelSlots - 1
	wheelShift0   = 10 // level-0 slot width: 2^10 ns ≈ 1µs
)

// wheelShift returns the instant-to-tick shift of level l.
func wheelShift(l int) uint { return wheelShift0 + uint(l)*wheelSlotBits }

type wheel struct {
	// cur is the virtual cursor in level-0 ticks; level l's cursor is
	// cur >> 6l. Slots before the cursor are in the past.
	cur uint64
	// slots holds the head of each slot's doubly-linked entry list
	// (-1 when empty); bitmap mirrors slot occupancy for O(1) scans.
	slots  [wheelLevels][wheelSlots]int32
	bitmap [wheelLevels]uint64

	// due is the drained current level-0 slot, sorted by (when, seq)
	// and consumed from dueHead. dueEnd is the exclusive upper bound of
	// the due window: newly scheduled events before it are inserted
	// into due directly (in order), keeping the window's firing order
	// exact even for events scheduled while it drains.
	due     []int32
	dueHead int
	dueEnd  Time

	// overflow holds events beyond the wheel horizon, as a min-heap
	// ordered by (when, seq). Entry.next stores the heap position.
	overflow []int32
}

func newWheel() *wheel {
	w := &wheel{}
	for l := range w.slots {
		for i := range w.slots[l] {
			w.slots[l][i] = -1
		}
	}
	return w
}

// curAt returns the cursor tick of level l.
func (w *wheel) curAt(l int) uint64 { return w.cur >> (uint(l) * wheelSlotBits) }

func (w *wheel) insert(s *Simulator, idx int32) {
	if s.ents[idx].when < w.dueEnd {
		w.insertDue(s, idx)
		return
	}
	w.insertWheel(s, idx)
}

// insertDue places idx into the sorted live region of the due queue.
func (w *wheel) insertDue(s *Simulator, idx int32) {
	if w.dueHead == len(w.due) && len(w.due) > 0 {
		w.due = w.due[:0]
		w.dueHead = 0
	}
	e := &s.ents[idx]
	e.loc = locDue
	// Binary search in due[dueHead:]; ties cannot occur ((when, seq) is
	// unique) and the new event's seq exceeds all queued ones, so equal
	// instants land after their elders — the FIFO contract.
	lo, hi := w.dueHead, len(w.due)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.less(w.due[mid], idx) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.due = append(w.due, 0)
	copy(w.due[lo+1:], w.due[lo:])
	w.due[lo] = idx
}

// insertWheel parks idx in the lowest level whose window covers it, or
// the overflow heap beyond the horizon.
func (w *wheel) insertWheel(s *Simulator, idx int32) {
	e := &s.ents[idx]
	t := uint64(e.when)
	for l := 0; l < wheelLevels; l++ {
		tick := t >> wheelShift(l)
		if tick-w.curAt(l) < wheelSlots {
			slot := int(tick & wheelSlotMask)
			e.loc = locWheel
			e.level = uint8(l)
			e.slot = uint8(slot)
			e.prev = -1
			e.next = w.slots[l][slot]
			if e.next >= 0 {
				s.ents[e.next].prev = idx
			}
			w.slots[l][slot] = idx
			w.bitmap[l] |= 1 << uint(slot)
			return
		}
	}
	e.loc = locOverflow
	w.heapPush(s, idx)
}

func (w *wheel) remove(s *Simulator, idx int32) {
	e := &s.ents[idx]
	switch e.loc {
	case locDue:
		// idx is present in due[dueHead:] by invariant; find it by
		// binary search on (when, seq).
		lo, hi := w.dueHead, len(w.due)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.less(w.due[mid], idx) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(w.due[lo:], w.due[lo+1:])
		w.due = w.due[:len(w.due)-1]
	case locWheel:
		l, slot := int(e.level), int(e.slot)
		if e.prev >= 0 {
			s.ents[e.prev].next = e.next
		} else {
			w.slots[l][slot] = e.next
			if e.next < 0 {
				w.bitmap[l] &^= 1 << uint(slot)
			}
		}
		if e.next >= 0 {
			s.ents[e.next].prev = e.prev
		}
	case locOverflow:
		w.heapRemove(s, int(e.next))
	}
	e.loc = locNone
}

// takeSlot detaches and returns a slot's whole list.
func (w *wheel) takeSlot(l, slot int) int32 {
	head := w.slots[l][slot]
	w.slots[l][slot] = -1
	w.bitmap[l] &^= 1 << uint(slot)
	return head
}

// advanceTo moves the cursor forward to b (level-0 ticks) and cascades
// every level whose current slot changed, top-down, so that any events
// those slots hold are re-parked below before a lower level is scanned.
// The top-down order matters: a level-3 cascade can dump entries into
// level 2's new current slot, which the level-2 pass then picks up, and
// so on until everything near lands at level 0.
func (w *wheel) advanceTo(s *Simulator, b uint64) {
	old := w.cur
	w.cur = b
	for l := wheelLevels - 1; l >= 1; l-- {
		sh := uint(l) * wheelSlotBits
		tick := b >> sh
		if old>>sh == tick {
			continue
		}
		if l == wheelLevels-1 {
			// The horizon moved: pull overflow events that now fit.
			w.drainOverflow(s)
		}
		slot := int(tick & wheelSlotMask)
		if w.bitmap[l]&(1<<uint(slot)) != 0 {
			for idx := w.takeSlot(l, slot); idx >= 0; {
				next := s.ents[idx].next
				w.insertWheel(s, idx)
				idx = next
			}
		}
	}
}

func (w *wheel) peek(s *Simulator) int32 {
	for {
		if w.dueHead < len(w.due) {
			return w.due[w.dueHead]
		}
		if len(w.due) > 0 {
			w.due = w.due[:0]
			w.dueHead = 0
		}
		progress := false
		for l := 0; l < wheelLevels; l++ {
			cl := w.curAt(l)
			off := int(cl & wheelSlotMask)
			if high := w.bitmap[l] >> uint(off); high != 0 {
				// Next occupied slot before the parent boundary.
				tick := cl + uint64(bits.TrailingZeros64(high))
				if l == 0 {
					w.cur = tick
					w.dueEnd = Time((tick + 1) << wheelShift0)
					for idx := w.takeSlot(0, int(tick&wheelSlotMask)); idx >= 0; {
						next := s.ents[idx].next
						s.ents[idx].loc = locDue
						w.due = append(w.due, idx)
						idx = next
					}
					w.sortDue(s)
				} else {
					// Cascade it: advanceTo lands on the slot and takes
					// it apart (tick > cl — the current slot is always
					// cascaded empty before the cursor enters it).
					w.advanceTo(s, tick<<(uint(l)*wheelSlotBits))
				}
				progress = true
				break
			}
			if w.bitmap[l] != 0 {
				// Only wrapped bits remain: they lie beyond the parent
				// slot edge, where the parent's next slot may hold
				// interleaving events. Cross the boundary (top level
				// has no parent, so jump straight to the slot) and let
				// advanceTo cascade whatever the crossing uncovers.
				var b uint64
				if l == wheelLevels-1 {
					r := bits.RotateLeft64(w.bitmap[l], -off)
					tick := cl + uint64(bits.TrailingZeros64(r))
					b = tick << (uint(l) * wheelSlotBits)
				} else {
					b = (cl>>wheelSlotBits + 1) << (uint(l+1) * wheelSlotBits)
				}
				w.advanceTo(s, b)
				progress = true
				break
			}
		}
		if progress {
			continue
		}
		// Wheel empty: jump the cursor to the overflow minimum.
		if len(w.overflow) == 0 {
			return -1
		}
		w.advanceTo(s, uint64(s.ents[w.overflow[0]].when)>>wheelShift0)
	}
}

func (w *wheel) pop(*Simulator) { w.dueHead++ }

// drainOverflow moves every overflow event now inside the wheel horizon
// onto the wheel.
func (w *wheel) drainOverflow(s *Simulator) {
	shift := wheelShift(wheelLevels - 1)
	top := w.curAt(wheelLevels - 1)
	for len(w.overflow) > 0 {
		idx := w.overflow[0]
		if uint64(s.ents[idx].when)>>shift-top >= wheelSlots {
			return
		}
		w.heapRemove(s, 0)
		w.insertWheel(s, idx)
	}
}

func (w *wheel) depth() int {
	d := 0
	if w.dueHead < len(w.due) {
		d = 1
	}
	for l := 0; l < wheelLevels; l++ {
		if w.bitmap[l] != 0 {
			d = l + 1
		}
	}
	if len(w.overflow) > 0 {
		d = wheelLevels + 1
	}
	return d
}

// sortDue orders the freshly drained due queue by (when, seq): an
// allocation-free quicksort (insertion sort below 16) — sort.Slice
// would allocate its closure on the packet hot path.
func (w *wheel) sortDue(s *Simulator) {
	w.quicksort(s, 0, len(w.due))
}

func (w *wheel) quicksort(s *Simulator, lo, hi int) {
	for hi-lo > 16 {
		// Median-of-three pivot, moved to hi-1.
		mid := int(uint(lo+hi) >> 1)
		if s.less(w.due[mid], w.due[lo]) {
			w.due[mid], w.due[lo] = w.due[lo], w.due[mid]
		}
		if s.less(w.due[hi-1], w.due[lo]) {
			w.due[hi-1], w.due[lo] = w.due[lo], w.due[hi-1]
		}
		if s.less(w.due[hi-1], w.due[mid]) {
			w.due[hi-1], w.due[mid] = w.due[mid], w.due[hi-1]
		}
		pivot := w.due[hi-1]
		i := lo
		for j := lo; j < hi-1; j++ {
			if s.less(w.due[j], pivot) {
				w.due[i], w.due[j] = w.due[j], w.due[i]
				i++
			}
		}
		w.due[i], w.due[hi-1] = w.due[hi-1], w.due[i]
		// Recurse into the smaller half, loop on the larger.
		if i-lo < hi-i-1 {
			w.quicksort(s, lo, i)
			lo = i + 1
		} else {
			w.quicksort(s, i+1, hi)
			hi = i
		}
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && s.less(w.due[j], w.due[j-1]); j-- {
			w.due[j], w.due[j-1] = w.due[j-1], w.due[j]
		}
	}
}

// --- overflow min-heap, ordered by (when, seq); entry.next holds the
// heap position so removal is O(log n) ---

func (w *wheel) heapPush(s *Simulator, idx int32) {
	w.overflow = append(w.overflow, idx)
	w.heapUp(s, len(w.overflow)-1)
}

func (w *wheel) heapRemove(s *Simulator, pos int) {
	n := len(w.overflow) - 1
	if pos != n {
		w.heapSet(s, pos, w.overflow[n])
	}
	w.overflow = w.overflow[:n]
	if pos < n {
		if !w.heapDown(s, pos) {
			w.heapUp(s, pos)
		}
	}
}

func (w *wheel) heapSet(s *Simulator, pos int, idx int32) {
	w.overflow[pos] = idx
	s.ents[idx].next = int32(pos)
}

func (w *wheel) heapUp(s *Simulator, pos int) {
	idx := w.overflow[pos]
	for pos > 0 {
		parent := (pos - 1) / 2
		if !s.less(idx, w.overflow[parent]) {
			break
		}
		w.heapSet(s, pos, w.overflow[parent])
		pos = parent
	}
	w.heapSet(s, pos, idx)
}

// heapDown reports whether the entry moved.
func (w *wheel) heapDown(s *Simulator, pos int) bool {
	idx := w.overflow[pos]
	start := pos
	n := len(w.overflow)
	for {
		child := 2*pos + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.less(w.overflow[r], w.overflow[child]) {
			child = r
		}
		if !s.less(w.overflow[child], idx) {
			break
		}
		w.heapSet(s, pos, w.overflow[child])
		pos = child
	}
	w.heapSet(s, pos, idx)
	return pos > start
}
