// Package sim provides a deterministic discrete-event simulation engine.
//
// All network, protocol, and application behaviour in this repository runs
// on virtual time driven by a Simulator. Events scheduled for the same
// instant fire in the order they were scheduled, so every run is exactly
// reproducible. The engine is intentionally single-threaded: callbacks run
// on the caller's goroutine inside Run, Step, or RunUntil.
//
// Two interchangeable event queues implement the (when, seq) firing
// order: the default hierarchical timer wheel (wheel.go) and the legacy
// container/heap queue (heapq.go), kept for differential testing. Both
// fire the exact same events in the exact same order; they differ only
// in speed and allocation behaviour.
//
// The hot path is allocation-free: timer state lives in a free-list
// arena inside the Simulator, and callers hold value-type TimerHandles
// (a generation counter makes stale handles inert). The *Arg scheduling
// variants take a plain function and an any argument, so callers can
// schedule package-level functions with a pointer receiver boxed into
// the argument — no closure allocation per event.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for callers' convenience; all delays in
// the simulator are expressed with it.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// Engine selects the event-queue implementation backing a Simulator.
type Engine int

const (
	// EngineWheel is the hierarchical timer wheel, the default.
	EngineWheel Engine = iota
	// EngineHeap is the legacy container/heap queue. It fires the same
	// events in the same order as the wheel; it exists as the reference
	// implementation for differential tests and benchmarks.
	EngineHeap
)

// String names the engine.
func (e Engine) String() string {
	if e == EngineHeap {
		return "heap"
	}
	return "wheel"
}

// SetDefaultEngine changes the engine New uses and returns the previous
// default. It exists for differential tests; production code should not
// call it. The simlegacy build tag flips the compiled-in default to
// EngineHeap.
func SetDefaultEngine(e Engine) Engine {
	prev := defaultEngine
	defaultEngine = e
	return prev
}

// entry states.
const (
	stateFree uint8 = iota
	statePending
)

// entry locations (meaning is engine-specific).
const (
	locNone uint8 = iota
	locWheel
	locDue
	locOverflow
	locHeap
)

// entry is one scheduled event in the simulator's arena. Entries are
// recycled through a free list; gen increments each time an entry dies
// (fires or is stopped), which is what makes stale TimerHandles inert.
type entry struct {
	when  Time
	seq   uint64
	gen   uint32
	state uint8
	loc   uint8
	level uint8
	slot  uint8
	// next/prev link the entry into a wheel slot's doubly-linked list;
	// the heap engines reuse next as the heap position.
	next, prev int32
	fn         func()
	afn        func(any)
	arg        any
}

// queue is the event-queue contract shared by the wheel and heap
// engines. All methods key on (entry.when, entry.seq).
type queue interface {
	// insert places a pending entry.
	insert(s *Simulator, idx int32)
	// remove detaches a pending entry before it fires.
	remove(s *Simulator, idx int32)
	// peek returns the index of the next event to fire (normalizing
	// internal structures as needed), or -1 when empty.
	peek(s *Simulator) int32
	// pop discards the entry the preceding peek returned.
	pop(s *Simulator)
	// depth reports the engine's occupancy depth for Stats.WheelDepth:
	// the deepest populated tier of the wheel (1-4, 5 when the overflow
	// heap holds events), or 1 for a non-empty heap engine.
	depth() int
}

// Simulator owns the virtual clock and the pending event queue.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	seq     uint64
	fired   uint64
	limit   uint64 // safety cap on events per Run; 0 = none
	pending int

	ents []entry
	free []int32
	q    queue
}

// New returns an empty simulator with the clock at zero, on the default
// engine (the timer wheel unless built with the simlegacy tag).
func New() *Simulator { return NewWithEngine(defaultEngine) }

// NewWithEngine returns an empty simulator on the given engine.
func NewWithEngine(e Engine) *Simulator {
	s := &Simulator{}
	if e == EngineHeap {
		s.q = &heapQueue{}
	} else {
		s.q = newWheel()
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Fired is the number of events executed so far.
	Fired uint64
	// Pending is the number of scheduled events not yet fired or stopped.
	Pending int
	// WheelDepth is the deepest populated tier of the event queue:
	// 0 when empty, 1-4 for wheel levels, 5 when the far-future overflow
	// heap holds events (always 0 or 1 on the legacy heap engine).
	WheelDepth int
	// PoolInUse is the number of timer-arena entries currently live.
	PoolInUse int
}

// Stats returns a snapshot of the engine's counters.
func (s *Simulator) Stats() Stats {
	return Stats{
		Fired:      s.fired,
		Pending:    s.pending,
		WheelDepth: s.q.depth(),
		PoolInUse:  len(s.ents) - len(s.free),
	}
}

// SetEventLimit caps the number of events a single Run may execute; it
// guards against runaway feedback loops in tests. Zero removes the cap.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// TimerHandle is a value-type reference to a scheduled event. The zero
// value is inert. A handle goes stale the moment its event fires or is
// stopped — Stop and Reschedule on a stale handle return false and do
// nothing, so re-arming after a fire is always explicit. Handles are
// safe by construction against the recycled timer slot being reused: a
// generation counter distinguishes the handle's event from any later
// event occupying the same arena slot.
type TimerHandle struct {
	s   *Simulator
	idx int32
	gen uint32
}

// ent returns the handle's live entry, or nil if the handle is stale.
func (h TimerHandle) ent() *entry {
	if h.s == nil || int(h.idx) >= len(h.s.ents) {
		return nil
	}
	e := &h.s.ents[h.idx]
	if e.gen != h.gen || e.state != statePending {
		return nil
	}
	return e
}

// Active reports whether the handle's event is still pending.
func (h TimerHandle) Active() bool { return h.ent() != nil }

// When returns the instant the event will fire, and whether the handle
// is still pending.
func (h TimerHandle) When() (Time, bool) {
	if e := h.ent(); e != nil {
		return e.when, true
	}
	return 0, false
}

// Stop cancels the event if it has not fired. It reports whether the
// call actually prevented the event from firing; stopping an
// already-fired, already-stopped, or zero handle returns false.
func (h TimerHandle) Stop() bool {
	e := h.ent()
	if e == nil {
		return false
	}
	s := h.s
	s.q.remove(s, h.idx)
	s.pending--
	s.release(h.idx)
	return true
}

// Reschedule moves a still-pending event to fire after delay from now,
// keeping the handle valid. It returns false — and schedules nothing —
// if the event already fired or was stopped: re-arming a dead timer is
// the caller's explicit decision, never an implicit resurrection.
// A successful Reschedule consumes one sequence number, exactly like a
// Stop followed by a Schedule, and allocates nothing.
func (h TimerHandle) Reschedule(delay Duration) bool {
	e := h.ent()
	if e == nil {
		return false
	}
	if delay < 0 {
		delay = 0
	}
	s := h.s
	s.q.remove(s, h.idx)
	s.seq++
	e.when = s.now.Add(delay)
	e.seq = s.seq
	s.q.insert(s, h.idx)
	return true
}

// alloc takes an entry from the free list (or grows the arena) and
// returns its index. The entry's gen is whatever its last death left.
func (s *Simulator) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.ents = append(s.ents, entry{})
	return int32(len(s.ents) - 1)
}

// release kills an entry: bump the generation so outstanding handles go
// stale, clear the callback references, and return it to the free list.
func (s *Simulator) release(idx int32) {
	e := &s.ents[idx]
	e.gen++
	e.state = stateFree
	e.loc = locNone
	e.fn = nil
	e.afn = nil
	e.arg = nil
	s.free = append(s.free, idx)
}

// schedule is the common path behind At/Schedule and their Arg variants.
func (s *Simulator) schedule(t Time, fn func(), afn func(any), arg any) TimerHandle {
	if t < s.now {
		t = s.now
	}
	s.seq++
	idx := s.alloc()
	e := &s.ents[idx]
	e.when = t
	e.seq = s.seq
	e.state = statePending
	e.fn = fn
	e.afn = afn
	e.arg = arg
	s.q.insert(s, idx)
	s.pending++
	return TimerHandle{s: s, idx: idx, gen: e.gen}
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. The returned handle may be used to cancel or move the event.
func (s *Simulator) Schedule(delay Duration, fn func()) TimerHandle {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now.Add(delay), fn)
}

// At runs fn at instant t. If t is in the past it fires at the current
// instant (but still through the queue, after already-queued events for
// that instant).
func (s *Simulator) At(t Time, fn func()) TimerHandle {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	return s.schedule(t, fn, nil, nil)
}

// ScheduleArg is Schedule for an argument-taking function: fn(arg) runs
// after delay. Scheduling this way allocates nothing when fn is a
// package-level function and arg a pointer, which is what keeps the
// per-packet and per-timer hot paths allocation-free.
func (s *Simulator) ScheduleArg(delay Duration, fn func(any), arg any) TimerHandle {
	if delay < 0 {
		delay = 0
	}
	return s.AtArg(s.now.Add(delay), fn, arg)
}

// AtArg is At for an argument-taking function: fn(arg) runs at instant t.
func (s *Simulator) AtArg(t Time, fn func(any), arg any) TimerHandle {
	if fn == nil {
		panic("sim: AtArg called with nil function")
	}
	return s.schedule(t, nil, fn, arg)
}

// Step executes the single next event, advancing the clock to its instant.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	idx := s.q.peek(s)
	if idx < 0 {
		return false
	}
	s.q.pop(s)
	e := &s.ents[idx]
	s.now = e.when
	fn, afn, arg := e.fn, e.afn, e.arg
	s.pending--
	s.release(idx)
	s.fired++
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// Run executes events until the queue is empty (or the event limit is hit,
// in which case it panics to surface the bug).
func (s *Simulator) Run() {
	start := s.fired
	for s.Step() {
		if s.limit > 0 && s.fired-start > s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
	}
}

// RunWithPoll is Run with a telemetry safe-point: poll is called
// between events, every `every` events fired, and once more after the
// queue drains. Because poll runs on the simulation goroutine at a
// point where no callback is mid-flight, it may read the simulator's
// state (Stats, Now) race-free; because it is called between events
// and schedules nothing, the event stream, the clock, and the
// (when, seq) firing order are identical to a plain Run — an observed
// run produces byte-identical results. every<=0 or a nil poll degrade
// to Run.
func (s *Simulator) RunWithPoll(every uint64, poll func()) {
	if every == 0 || poll == nil {
		s.Run()
		return
	}
	start := s.fired
	next := start + every
	for s.Step() {
		if s.limit > 0 && s.fired-start > s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
		if s.fired >= next {
			poll()
			next = s.fired + every
		}
	}
	poll()
}

// RunUntil executes events with instants <= t, then advances the clock to
// t (even if the queue still holds later events).
func (s *Simulator) RunUntil(t Time) {
	for {
		idx := s.q.peek(s)
		if idx < 0 || s.ents[idx].when > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of virtual time from now.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// less orders entries by (when, seq), the engine-wide firing order.
func (s *Simulator) less(a, b int32) bool {
	ea, eb := &s.ents[a], &s.ents[b]
	if ea.when != eb.when {
		return ea.when < eb.when
	}
	return ea.seq < eb.seq
}
