// Package sim provides a deterministic discrete-event simulation engine.
//
// All network, protocol, and application behaviour in this repository runs
// on virtual time driven by a Simulator. Events scheduled for the same
// instant fire in the order they were scheduled, so every run is exactly
// reproducible. The engine is intentionally single-threaded: callbacks run
// on the caller's goroutine inside Run, Step, or RunUntil.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for callers' convenience; all delays in
// the simulator are expressed with it.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping an already-fired or already-stopped timer is a no-op.
type Timer struct {
	when    Time
	seq     uint64
	index   int // heap index, -1 when not queued
	fn      func()
	stopped bool
}

// When returns the instant the timer is scheduled to fire.
func (t *Timer) When() Time { return t.when }

// Stopped reports whether Stop was called before the timer fired.
func (t *Timer) Stopped() bool { return t.stopped }

// Simulator owns the virtual clock and the pending event queue.
// The zero value is not usable; call New.
type Simulator struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	limit  uint64 // safety cap on events per Run; 0 = none
	inStep bool
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// SetEventLimit caps the number of events a single Run may execute; it
// guards against runaway feedback loops in tests. Zero removes the cap.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. The returned Timer may be used to cancel the event.
func (s *Simulator) Schedule(delay Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now.Add(delay), fn)
}

// At runs fn at instant t. If t is in the past it fires at the current
// instant (but still through the queue, after already-queued events for
// that instant).
func (s *Simulator) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	tm := &Timer{when: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, tm)
	return tm
}

// Stop cancels the timer if it has not fired. It reports whether the call
// actually prevented the event from firing.
func (s *Simulator) Stop(t *Timer) bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	heap.Remove(&s.queue, t.index)
	t.stopped = true
	return true
}

// Reschedule moves a pending timer to fire after delay from now. If the
// timer already fired or was stopped, a fresh event is scheduled with the
// same function. It returns the timer that is now pending.
func (s *Simulator) Reschedule(t *Timer, delay Duration) *Timer {
	if t == nil {
		panic("sim: Reschedule of nil timer")
	}
	fn := t.fn
	s.Stop(t)
	return s.Schedule(delay, fn)
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Step executes the single next event, advancing the clock to its instant.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	tm := heap.Pop(&s.queue).(*Timer)
	s.now = tm.when
	s.fired++
	tm.fn()
	return true
}

// Run executes events until the queue is empty (or the event limit is hit,
// in which case it panics to surface the bug).
func (s *Simulator) Run() {
	start := s.fired
	for s.Step() {
		if s.limit > 0 && s.fired-start > s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
	}
}

// RunUntil executes events with instants <= t, then advances the clock to
// t (even if the queue still holds later events).
func (s *Simulator) RunUntil(t Time) {
	for s.queue.Len() > 0 && s.queue[0].when <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for d of virtual time from now.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// eventQueue is a min-heap ordered by (when, seq) so that simultaneous
// events fire in scheduling order.
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
