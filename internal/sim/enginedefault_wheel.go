//go:build !simlegacy

package sim

// defaultEngine is the engine New uses; the simlegacy build tag flips it
// to the legacy heap for differential runs of the whole binary.
var defaultEngine = EngineWheel
