package sim

// Rand is a small deterministic pseudo-random source (SplitMix64) used to
// add reproducible jitter to simulated runs. It is deliberately independent
// of math/rand so that the sequence is stable across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns d scaled by a random factor in [1-frac, 1+frac].
// frac must be in [0, 1].
func (r *Rand) Jitter(d Duration, frac float64) Duration {
	if frac == 0 || d == 0 {
		return d
	}
	scale := 1 + frac*(2*r.Float64()-1)
	return Duration(float64(d) * scale)
}
