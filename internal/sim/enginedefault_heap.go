//go:build simlegacy

package sim

// defaultEngine under the simlegacy build tag: every Simulator runs on
// the legacy heap queue unless explicitly constructed with
// NewWithEngine(EngineWheel).
var defaultEngine = EngineHeap
