package sim

// heapQueue is the legacy event queue: a binary min-heap that allocates
// a tracking item per insert, exactly like the original container/heap
// engine allocated a *Timer per event. It is kept as the reference
// implementation for differential tests (build tag simlegacy makes it
// the default engine) and as the honest baseline for BenchmarkEngine —
// collapsing its allocation behaviour would overstate the wheel's win.
type heapQueue struct {
	items []*heapItem
}

type heapItem struct {
	when Time
	seq  uint64
	idx  int32
}

func (q *heapQueue) lessItem(a, b *heapItem) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *heapQueue) insert(s *Simulator, idx int32) {
	e := &s.ents[idx]
	e.loc = locHeap
	q.items = append(q.items, &heapItem{when: e.when, seq: e.seq, idx: idx})
	q.up(s, len(q.items)-1)
}

func (q *heapQueue) remove(s *Simulator, idx int32) {
	e := &s.ents[idx]
	pos := int(e.next)
	e.loc = locNone
	n := len(q.items) - 1
	if pos != n {
		q.set(s, pos, q.items[n])
	}
	q.items[n] = nil
	q.items = q.items[:n]
	if pos < n {
		if !q.down(s, pos) {
			q.up(s, pos)
		}
	}
}

func (q *heapQueue) peek(*Simulator) int32 {
	if len(q.items) == 0 {
		return -1
	}
	return q.items[0].idx
}

func (q *heapQueue) pop(s *Simulator) {
	q.remove(s, q.items[0].idx)
}

func (q *heapQueue) depth() int {
	if len(q.items) > 0 {
		return 1
	}
	return 0
}

// set places it at pos, recording the position in the entry so remove
// stays O(log n).
func (q *heapQueue) set(s *Simulator, pos int, it *heapItem) {
	q.items[pos] = it
	s.ents[it.idx].next = int32(pos)
}

func (q *heapQueue) up(s *Simulator, pos int) {
	it := q.items[pos]
	for pos > 0 {
		parent := (pos - 1) / 2
		if !q.lessItem(it, q.items[parent]) {
			break
		}
		q.set(s, pos, q.items[parent])
		pos = parent
	}
	q.set(s, pos, it)
}

// down reports whether the item moved.
func (q *heapQueue) down(s *Simulator, pos int) bool {
	it := q.items[pos]
	start := pos
	n := len(q.items)
	for {
		child := 2*pos + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.lessItem(q.items[r], q.items[child]) {
			child = r
		}
		if !q.lessItem(q.items[child], it) {
			break
		}
		q.set(s, pos, q.items[child])
		pos = child
	}
	q.set(s, pos, it)
	return pos > start
}
