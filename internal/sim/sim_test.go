package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// eachEngine runs a subtest on both event-queue implementations; the
// core contract tests must hold identically on the wheel and the heap.
func eachEngine(t *testing.T, f func(t *testing.T, s *Simulator)) {
	t.Helper()
	for _, e := range []Engine{EngineWheel, EngineHeap} {
		t.Run(e.String(), func(t *testing.T) { f(t, NewWithEngine(e)) })
	}
}

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var at Time
		s.Schedule(5*time.Millisecond, func() { at = s.Now() })
		s.Run()
		if want := Time(5 * time.Millisecond); at != want {
			t.Fatalf("event fired at %v, want %v", at, want)
		}
		if s.Now() != at {
			t.Fatalf("clock %v, want %v", s.Now(), at)
		}
	})
}

func TestEventOrderByTime(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var order []int
		s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
		s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
		s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
		s.Run()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	})
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			s.Schedule(time.Millisecond, func() { order = append(order, i) })
		}
		s.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("order[%d] = %d, want %d (FIFO for equal instants)", i, v, i)
			}
		}
	})
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v for negative delay", s.Now())
	}
}

func TestStopPreventsFiring(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		fired := false
		h := s.Schedule(time.Millisecond, func() { fired = true })
		if !h.Active() {
			t.Fatal("pending handle not Active")
		}
		if !h.Stop() {
			t.Fatal("Stop returned false for pending timer")
		}
		s.Run()
		if fired {
			t.Fatal("stopped timer fired")
		}
		if h.Stop() {
			t.Fatal("second Stop returned true")
		}
	})
}

func TestStopAfterFireReturnsFalse(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		h := s.Schedule(time.Millisecond, func() {})
		s.Run()
		if h.Active() {
			t.Fatal("fired handle still Active")
		}
		if h.Stop() {
			t.Fatal("Stop after fire returned true")
		}
		if st := s.Stats(); st.Pending != 0 || st.Fired != 1 {
			t.Fatalf("Stats after stop-after-fire = %+v", st)
		}
	})
}

func TestZeroHandleIsInert(t *testing.T) {
	var h TimerHandle
	if h.Active() || h.Stop() || h.Reschedule(time.Second) {
		t.Fatal("zero TimerHandle is not inert")
	}
	if _, ok := h.When(); ok {
		t.Fatal("zero TimerHandle has a When")
	}
}

func TestStopMiddleOfQueue(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var order []int
		s.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
		h2 := s.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
		s.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
		h2.Stop()
		s.Run()
		if len(order) != 2 || order[0] != 1 || order[1] != 3 {
			t.Fatalf("order = %v, want [1 3]", order)
		}
	})
}

func TestRescheduleMovesPendingTimer(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var at Time
		h := s.Schedule(time.Millisecond, func() { at = s.Now() })
		if !h.Reschedule(10 * time.Millisecond) {
			t.Fatal("Reschedule returned false for pending timer")
		}
		s.Run()
		if want := Time(10 * time.Millisecond); at != want {
			t.Fatalf("fired at %v, want %v", at, want)
		}
		if got := s.Stats().Fired; got != 1 {
			t.Fatalf("fired %d events, want 1", got)
		}
	})
}

// Rescheduling a fired timer must NOT resurrect its callback: re-arming
// after a fire is an explicit new Schedule. (The old API silently
// resurrected here.)
func TestRescheduleAfterFireReturnsFalse(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		count := 0
		h := s.Schedule(time.Millisecond, func() { count++ })
		s.Run()
		if h.Reschedule(time.Millisecond) {
			t.Fatal("Reschedule returned true for a fired timer")
		}
		s.Run()
		if count != 1 {
			t.Fatalf("count = %d, want 1 (fired timer must not resurrect)", count)
		}
		// Explicit re-arm is the supported idiom.
		h = s.Schedule(time.Millisecond, func() { count++ })
		s.Run()
		if count != 2 {
			t.Fatalf("count = %d after explicit re-arm, want 2", count)
		}
	})
}

func TestRescheduleAfterStopReturnsFalse(t *testing.T) {
	s := New()
	h := s.Schedule(time.Millisecond, func() { t.Error("stopped timer fired") })
	h.Stop()
	if h.Reschedule(time.Millisecond) {
		t.Fatal("Reschedule returned true for a stopped timer")
	}
	s.Run()
}

// A stale handle must stay inert even after its arena slot is recycled
// for a new event: the generation counter distinguishes them.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		old := s.Schedule(time.Millisecond, func() {})
		s.Run()
		fired := false
		fresh := s.Schedule(time.Millisecond, func() { fired = true })
		if fresh.idx != old.idx {
			t.Fatalf("free list did not recycle slot %d (got %d)", old.idx, fresh.idx)
		}
		if old.Stop() || old.Reschedule(time.Second) || old.Active() {
			t.Fatal("stale handle acted on a recycled slot")
		}
		s.Run()
		if !fired {
			t.Fatal("recycled slot's event did not fire")
		}
	})
}

func TestScheduleArg(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		type box struct{ hits int }
		b := &box{}
		bump := func(a any) { a.(*box).hits++ }
		s.ScheduleArg(time.Millisecond, bump, b)
		s.AtArg(Time(2*time.Millisecond), bump, b)
		s.Run()
		if b.hits != 2 {
			t.Fatalf("hits = %d, want 2", b.hits)
		}
	})
}

func TestWhenReportsInstant(t *testing.T) {
	s := New()
	h := s.Schedule(7*time.Millisecond, func() {})
	if w, ok := h.When(); !ok || w != Time(7*time.Millisecond) {
		t.Fatalf("When = %v,%v, want 7ms,true", w, ok)
	}
	h.Reschedule(9 * time.Millisecond)
	if w, ok := h.When(); !ok || w != Time(9*time.Millisecond) {
		t.Fatalf("When after Reschedule = %v,%v, want 9ms,true", w, ok)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var fired []Time
		s.Schedule(1*time.Millisecond, func() { fired = append(fired, s.Now()) })
		s.Schedule(5*time.Millisecond, func() { fired = append(fired, s.Now()) })
		s.RunUntil(Time(3 * time.Millisecond))
		if len(fired) != 1 {
			t.Fatalf("fired %d events, want 1", len(fired))
		}
		if s.Now() != Time(3*time.Millisecond) {
			t.Fatalf("clock = %v, want 3ms", s.Now())
		}
		if got := s.Stats().Pending; got != 1 {
			t.Fatalf("pending = %d, want 1", got)
		}
		s.Run()
		if len(fired) != 2 {
			t.Fatalf("fired %d events after Run, want 2", len(fired))
		}
	})
}

func TestRunFor(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {})
	s.RunFor(500 * time.Millisecond)
	if s.Now() != Time(500*time.Millisecond) {
		t.Fatalf("clock = %v, want 500ms", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		var depth3 Time
		s.Schedule(time.Millisecond, func() {
			s.Schedule(time.Millisecond, func() {
				s.Schedule(time.Millisecond, func() { depth3 = s.Now() })
			})
		})
		s.Run()
		if want := Time(3 * time.Millisecond); depth3 != want {
			t.Fatalf("nested event at %v, want %v", depth3, want)
		}
	})
}

func TestEventLimitPanics(t *testing.T) {
	s := New()
	s.SetEventLimit(100)
	var loop func()
	loop = func() { s.Schedule(time.Millisecond, loop) }
	s.Schedule(time.Millisecond, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from event limit")
		}
	}()
	s.Run()
}

func TestAtInPastFiresNow(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		s.Schedule(10*time.Millisecond, func() {
			s.At(Time(1*time.Millisecond), func() {
				if s.Now() != Time(10*time.Millisecond) {
					t.Errorf("past event fired at %v, want now (10ms)", s.Now())
				}
			})
		})
		s.Run()
	})
}

// Events far beyond the wheel horizon must park in the overflow heap and
// cascade back in order; this crosses every level boundary.
func TestFarFutureEventsCascade(t *testing.T) {
	eachEngine(t, func(t *testing.T, s *Simulator) {
		delays := []time.Duration{
			500 * time.Nanosecond, // below slot granularity
			90 * time.Microsecond,
			6 * time.Millisecond,
			420 * time.Millisecond,
			3 * time.Second,
			64 * time.Second, // beyond the ~17s horizon: overflow heap
			65 * time.Second,
			30 * time.Minute,
		}
		var fired []Time
		for _, d := range delays {
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			t.Fatalf("fired %d events, want %d", len(fired), len(delays))
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("out of order: fired[%d]=%v < fired[%d]=%v", i, fired[i], i-1, fired[i-1])
			}
		}
		if want := Time(30 * time.Minute); fired[len(fired)-1] != want {
			t.Fatalf("last event at %v, want %v", fired[len(fired)-1], want)
		}
	})
}

// Stopping an overflow-heap event and rescheduling across the horizon
// must both work.
func TestOverflowStopAndReschedule(t *testing.T) {
	s := NewWithEngine(EngineWheel)
	far := s.Schedule(time.Hour, func() { t.Error("stopped overflow event fired") })
	if got := s.Stats().WheelDepth; got != wheelLevels+1 {
		t.Fatalf("WheelDepth with overflow event = %d, want %d", got, wheelLevels+1)
	}
	if !far.Stop() {
		t.Fatal("Stop on overflow event returned false")
	}
	var at Time
	h := s.Schedule(time.Hour, func() { at = s.Now() })
	if !h.Reschedule(time.Millisecond) {
		t.Fatal("Reschedule across horizon returned false")
	}
	s.Run()
	if want := Time(time.Millisecond); at != want {
		t.Fatalf("fired at %v, want %v", at, want)
	}
}

func TestStats(t *testing.T) {
	s := New()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("fresh Stats = %+v, want zero", st)
	}
	h := s.Schedule(time.Millisecond, func() {})
	s.Schedule(2*time.Millisecond, func() {})
	st := s.Stats()
	if st.Pending != 2 || st.PoolInUse != 2 || st.Fired != 0 {
		t.Fatalf("Stats = %+v, want Pending=2 PoolInUse=2 Fired=0", st)
	}
	if st.WheelDepth == 0 {
		t.Fatal("WheelDepth = 0 with pending events")
	}
	h.Stop()
	if st := s.Stats(); st.Pending != 1 || st.PoolInUse != 1 {
		t.Fatalf("Stats after Stop = %+v, want Pending=1 PoolInUse=1", st)
	}
	s.Run()
	if st := s.Stats(); st.Pending != 0 || st.PoolInUse != 0 || st.Fired != 1 || st.WheelDepth != 0 {
		t.Fatalf("Stats after Run = %+v, want Pending=0 PoolInUse=0 Fired=1 Depth=0", st)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(time.Second)
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub = %v, want 500ms", b.Sub(a))
	}
	if a.Seconds() != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", a.Seconds())
	}
	if a.String() != "1.000000s" {
		t.Fatalf("String = %q", a.String())
	}
}

// The steady-state timer cycle — schedule a package-level func with a
// pointer arg, reschedule it, let it fire — must not allocate. This is
// the foundation of the zero-alloc packet path.
func TestTimerCycleDoesNotAllocate(t *testing.T) {
	s := NewWithEngine(EngineWheel) // the legacy heap allocates by design
	type peer struct{ n int }
	p := &peer{}
	fire := func(a any) { a.(*peer).n++ }
	// Warm the arena and the wheel's due slice.
	for i := 0; i < 64; i++ {
		s.ScheduleArg(time.Duration(i)*time.Millisecond, fire, p)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		h := s.ScheduleArg(time.Millisecond, fire, p)
		h.Reschedule(2 * time.Millisecond)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("timer schedule/reschedule/fire cycle allocated %.1f/op, want 0", allocs)
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// the scheduling order of their delays — on both engines.
func TestPropertyEventsFireInOrder(t *testing.T) {
	for _, e := range []Engine{EngineWheel, EngineHeap} {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			f := func(delays []uint16) bool {
				if len(delays) == 0 {
					return true
				}
				s := NewWithEngine(e)
				var times []Time
				for _, d := range delays {
					s.Schedule(time.Duration(d)*time.Microsecond, func() {
						times = append(times, s.Now())
					})
				}
				s.Run()
				if len(times) != len(delays) {
					return false
				}
				for i := 1; i < len(times); i++ {
					if times[i] < times[i-1] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: the wheel and the heap fire the exact same events in the
// exact same order, including ties, stops, and reschedules.
func TestPropertyEnginesAgree(t *testing.T) {
	run := func(e Engine, delays []uint32, stopEvery, reschedEvery uint8) []int {
		s := NewWithEngine(e)
		var order []int
		handles := make([]TimerHandle, len(delays))
		for i, d := range delays {
			i := i
			// Spread delays across slot, level, and overflow ranges
			// (up to ~34s, past the wheel horizon).
			handles[i] = s.Schedule(time.Duration(d)*8, func() {
				order = append(order, i)
			})
		}
		for i, h := range handles {
			if stopEvery > 0 && i%int(stopEvery) == 0 {
				h.Stop()
			} else if reschedEvery > 0 && i%int(reschedEvery) == 0 {
				h.Reschedule(time.Duration(delays[(i+1)%len(delays)] % 1_000_000_000))
			}
		}
		s.Run()
		return order
	}
	f := func(delays []uint32, stopEvery, reschedEvery uint8) bool {
		if len(delays) == 0 {
			return true
		}
		a := run(EngineWheel, delays, stopEvery, reschedEvery)
		b := run(EngineHeap, delays, stopEvery, reschedEvery)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engines agree on timer chains, where each firing
// schedules the next timer from inside its callback. Unlike the
// all-upfront property above, chains move the cursor to unaligned
// positions before inserting, which is what exercises the parent-slot
// boundary discipline in the wheel's cascade (a level's scan window may
// extend past the parent's slot edge, and events parked in the parent's
// next slot interleave with the level's late bits).
func TestPropertyChainedTimersAgree(t *testing.T) {
	run := func(e Engine, seeds []uint32) []Time {
		s := NewWithEngine(e)
		var order []Time
		for _, seed := range seeds {
			rng := NewRand(uint64(seed))
			hops := int(seed%8) + 2
			var step func()
			step = func() {
				order = append(order, s.Now())
				if hops == 0 {
					return
				}
				hops--
				// Delays spanning level-0 slots up to past the horizon.
				d := time.Duration(rng.Intn(20_000_000_000))
				s.Schedule(d, step)
			}
			s.Schedule(time.Duration(seed%1000)*time.Microsecond, step)
		}
		s.Run()
		return order
	}
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		a := run(EngineWheel, seeds)
		b := run(EngineHeap, seeds)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fired always equals the number of scheduled minus stopped events
// after a full Run.
func TestPropertyFiredCount(t *testing.T) {
	f := func(n uint8, stopEvery uint8) bool {
		s := New()
		var handles []TimerHandle
		for i := 0; i < int(n); i++ {
			handles = append(handles, s.Schedule(time.Duration(i)*time.Microsecond, func() {}))
		}
		stopped := 0
		if stopEvery > 0 {
			for i, h := range handles {
				if i%int(stopEvery) == 0 {
					if h.Stop() {
						stopped++
					}
				}
			}
		}
		s.Run()
		return s.Stats().Fired == uint64(int(n)-stopped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDefaultEngine(t *testing.T) {
	prev := SetDefaultEngine(EngineHeap)
	defer SetDefaultEngine(prev)
	if _, ok := New().q.(*heapQueue); !ok {
		t.Fatal("New after SetDefaultEngine(EngineHeap) did not use the heap")
	}
	SetDefaultEngine(EngineWheel)
	if _, ok := New().q.(*wheel); !ok {
		t.Fatal("New after SetDefaultEngine(EngineWheel) did not use the wheel")
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values in 1000 draws", len(seen))
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(9)
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.1)
		if j < 90*time.Millisecond || j > 110*time.Millisecond {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero-fraction jitter changed duration")
	}
}
