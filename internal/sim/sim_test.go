package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(5*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if want := Time(5 * time.Millisecond); at != want {
		t.Fatalf("event fired at %v, want %v", at, want)
	}
	if s.Now() != at {
		t.Fatalf("clock %v, want %v", s.Now(), at)
	}
}

func TestEventOrderByTime(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO for equal instants)", i, v, i)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v for negative delay", s.Now())
	}
}

func TestStopPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	tm := s.Schedule(time.Millisecond, func() { fired = true })
	if !s.Stop(tm) {
		t.Fatal("Stop returned false for pending timer")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Stop(tm) {
		t.Fatal("second Stop returned true")
	}
}

func TestStopMiddleOfHeap(t *testing.T) {
	s := New()
	var order []int
	t1 := s.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	t2 := s.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	t3 := s.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	_ = t1
	_ = t3
	s.Stop(t2)
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestRescheduleMovesPendingTimer(t *testing.T) {
	s := New()
	var at Time
	tm := s.Schedule(time.Millisecond, func() { at = s.Now() })
	s.Reschedule(tm, 10*time.Millisecond)
	s.Run()
	if want := Time(10 * time.Millisecond); at != want {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	if s.Fired() != 1 {
		t.Fatalf("fired %d events, want 1", s.Fired())
	}
}

func TestRescheduleAfterFire(t *testing.T) {
	s := New()
	count := 0
	tm := s.Schedule(time.Millisecond, func() { count++ })
	s.Run()
	s.Reschedule(tm, time.Millisecond)
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(1*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.Schedule(5*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.RunUntil(Time(3 * time.Millisecond))
	if len(fired) != 1 {
		t.Fatalf("fired %d events, want 1", len(fired))
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d events after Run, want 2", len(fired))
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {})
	s.RunFor(500 * time.Millisecond)
	if s.Now() != Time(500*time.Millisecond) {
		t.Fatalf("clock = %v, want 500ms", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var depth3 Time
	s.Schedule(time.Millisecond, func() {
		s.Schedule(time.Millisecond, func() {
			s.Schedule(time.Millisecond, func() { depth3 = s.Now() })
		})
	})
	s.Run()
	if want := Time(3 * time.Millisecond); depth3 != want {
		t.Fatalf("nested event at %v, want %v", depth3, want)
	}
}

func TestEventLimitPanics(t *testing.T) {
	s := New()
	s.SetEventLimit(100)
	var loop func()
	loop = func() { s.Schedule(time.Millisecond, loop) }
	s.Schedule(time.Millisecond, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from event limit")
		}
	}()
	s.Run()
}

func TestAtInPastFiresNow(t *testing.T) {
	s := New()
	s.Schedule(10*time.Millisecond, func() {
		s.At(Time(1*time.Millisecond), func() {
			if s.Now() != Time(10*time.Millisecond) {
				t.Errorf("past event fired at %v, want now (10ms)", s.Now())
			}
		})
	})
	s.Run()
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(time.Second)
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub = %v, want 500ms", b.Sub(a))
	}
	if a.Seconds() != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", a.Seconds())
	}
	if a.String() != "1.000000s" {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// the scheduling order of their delays.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New()
		var times []Time
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, s.Now())
			})
		}
		s.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fired always equals the number of scheduled minus stopped events
// after a full Run.
func TestPropertyFiredCount(t *testing.T) {
	f := func(n uint8, stopEvery uint8) bool {
		s := New()
		var timers []*Timer
		for i := 0; i < int(n); i++ {
			timers = append(timers, s.Schedule(time.Duration(i)*time.Microsecond, func() {}))
		}
		stopped := 0
		if stopEvery > 0 {
			for i, tm := range timers {
				if i%int(stopEvery) == 0 {
					if s.Stop(tm) {
						stopped++
					}
				}
			}
		}
		s.Run()
		return s.Fired() == uint64(int(n)-stopped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values in 1000 draws", len(seen))
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(9)
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.1)
		if j < 90*time.Millisecond || j > 110*time.Millisecond {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero-fraction jitter changed duration")
	}
}
