package sim

import (
	"testing"
	"time"
)

// chainN schedules a self-rescheduling chain firing n events total and
// records each firing instant into out.
func chainN(s *Simulator, n int, out *[]Time) {
	var step func()
	fired := 0
	step = func() {
		*out = append(*out, s.Now())
		fired++
		if fired < n {
			s.Schedule(time.Millisecond, step)
		}
	}
	s.Schedule(time.Millisecond, step)
}

// TestRunWithPollMatchesRun pins the non-perturbation contract: an
// observed run fires the same events at the same instants as a plain
// Run, and the polls land between events.
func TestRunWithPollMatchesRun(t *testing.T) {
	var plain []Time
	s1 := New()
	chainN(s1, 100, &plain)
	s1.Run()

	var polled []Time
	s2 := New()
	chainN(s2, 100, &polled)
	polls := 0
	var lastFired uint64
	s2.RunWithPoll(7, func() {
		polls++
		st := s2.Stats()
		if st.Fired < lastFired {
			t.Fatal("fired count went backwards at a poll point")
		}
		lastFired = st.Fired
	})

	if len(plain) != len(polled) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(polled))
	}
	for i := range plain {
		if plain[i] != polled[i] {
			t.Fatalf("event %d fired at %v with polling, %v without", i, polled[i], plain[i])
		}
	}
	// 100 events polled every 7 → 14 interior polls plus the final one.
	if want := 100/7 + 1; polls != want {
		t.Fatalf("polls = %d, want %d", polls, want)
	}
	if s1.Stats().Fired != s2.Stats().Fired {
		t.Fatalf("fired = %d vs %d", s1.Stats().Fired, s2.Stats().Fired)
	}
}

func TestRunWithPollDegenerateCases(t *testing.T) {
	var out []Time
	s := New()
	chainN(s, 10, &out)
	s.RunWithPoll(0, func() { t.Fatal("poll called with every=0") })
	if len(out) != 10 {
		t.Fatalf("events = %d, want 10", len(out))
	}

	s2 := New()
	out = nil
	chainN(s2, 10, &out)
	s2.RunWithPoll(4, nil) // nil poll degrades to Run
	if len(out) != 10 {
		t.Fatalf("events = %d, want 10", len(out))
	}

	// Empty queue: the single trailing poll still fires.
	s3 := New()
	polls := 0
	s3.RunWithPoll(1, func() { polls++ })
	if polls != 1 {
		t.Fatalf("polls on empty queue = %d, want 1 (final poll)", polls)
	}
}

func TestRunWithPollHonorsEventLimit(t *testing.T) {
	s := New()
	s.SetEventLimit(50)
	var forever func()
	forever = func() { s.Schedule(time.Millisecond, forever) }
	s.Schedule(time.Millisecond, forever)
	defer func() {
		if recover() == nil {
			t.Fatal("event limit did not panic under RunWithPoll")
		}
	}()
	s.RunWithPoll(8, func() {})
}
