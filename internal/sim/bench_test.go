package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}
