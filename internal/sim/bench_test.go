package sim

import (
	"testing"
	"time"
)

// benchEngine drives a mixed workload shaped like the TCP simulation:
// mostly near-term events (segment arrivals, delayed ACKs), a slice of
// RTO-range timers that are rescheduled before firing, and an
// occasional far-future event that exercises the overflow path.
func benchEngine(b *testing.B, e Engine) {
	b.ReportAllocs()
	s := NewWithEngine(e)
	noop := func(any) {}
	var rto TimerHandle
	for i := 0; i < b.N; i++ {
		switch i & 7 {
		case 0:
			if !rto.Reschedule(time.Second) {
				rto = s.ScheduleArg(time.Second, noop, nil)
			}
		case 1:
			s.ScheduleArg(200*time.Millisecond, noop, nil)
		default:
			s.ScheduleArg(time.Duration(i%1000)*time.Microsecond, noop, nil)
		}
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchEngine(b, EngineWheel) })
	b.Run("heap", func(b *testing.B) { benchEngine(b, EngineHeap) })
}
