package stats

import "math"

// tCrit95 tabulates the two-sided 95% Student-t critical value for
// degrees of freedom 1..30 (index df-1), the textbook table every
// paired-measurement methodology uses.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Between tabulated rows it returns the value of
// the largest tabulated df not exceeding the argument — the
// conservative (wider-interval) choice.
func TCrit95(df int) float64 {
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(tCrit95):
		return tCrit95[df-1]
	case df < 40:
		return tCrit95[len(tCrit95)-1]
	case df < 60:
		return 2.021
	case df < 120:
		return 2.000
	default:
		return 1.960
	}
}

// Summary is the cross-seed aggregate of one measured quantity in one
// cell: sample count, mean, unbiased standard deviation, and the
// half-width of the Student-t 95% confidence interval on the mean.
// CI95 is zero when fewer than two samples exist (no spread estimate).
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
}

// Summarize computes the Summary of a value slice via one Welford pass.
func Summarize(values []float64) Summary {
	var w Welford
	for _, v := range values {
		w.Observe(v)
	}
	s := Summary{N: int(w.N()), Mean: w.Mean(), Stddev: w.Stddev()}
	if s.N >= 2 {
		s.CI95 = TCrit95(s.N-1) * s.Stddev / math.Sqrt(float64(s.N))
	}
	return s
}

// Interval returns the confidence interval [Mean−CI95, Mean+CI95].
func (s Summary) Interval() (lo, hi float64) {
	return s.Mean - s.CI95, s.Mean + s.CI95
}

// Overlaps reports whether the two summaries' 95% confidence intervals
// intersect. Two single-sample summaries (zero-width intervals) overlap
// only when their means are equal.
func (s Summary) Overlaps(o Summary) bool {
	aLo, aHi := s.Interval()
	bLo, bHi := o.Interval()
	return aLo <= bHi && bLo <= aHi
}
