package stats

import "math"

// Welford accumulates a mean and variance in one streaming pass using
// Welford's update, numerically stable for the long, similarly-sized
// latency series the sweeps produce. The zero value is an empty
// accumulator; Merge combines accumulators from parallel shards with
// the Chan et al. pairwise formula, so the result is independent of how
// the population was partitioned.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Observe folds one sample in.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds the other accumulator's population into w.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// N returns the number of samples observed.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (n−1 denominator; 0
// when fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }
