package stats

import (
	"encoding/binary"
	"testing"
)

// FuzzHistogramMerge is the merge-associativity target run in the CI
// fuzz-smoke job: any partition of a value stream into shards, merged
// in any order (left fold forward, left fold backward, pairwise tree),
// must yield bucket-for-bucket identical histograms — the property that
// makes per-run histograms safely aggregable across seeds and workers.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255, 0})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		nShards := int(data[0]%7) + 2
		values := make([]int64, 0, len(data)/8)
		for b := data[1:]; len(b) >= 8; b = b[8:] {
			v := int64(binary.LittleEndian.Uint64(b))
			if v < 0 {
				v = -v
			}
			if v < 0 { // MinInt64 negates to itself
				v = 0
			}
			values = append(values, v)
		}
		if len(values) == 0 {
			return
		}
		var whole Histogram
		shards := make([]Histogram, nShards)
		for i, v := range values {
			whole.Observe(v)
			shards[i%nShards].Observe(v)
		}
		var fwd, rev, tree Histogram
		for i := range shards {
			fwd.Merge(&shards[i])
		}
		for i := len(shards) - 1; i >= 0; i-- {
			rev.Merge(&shards[i])
		}
		// Pairwise tree merge over copies (Merge mutates the receiver).
		level := make([]Histogram, len(shards))
		copy(level, shards)
		for len(level) > 1 {
			var next []Histogram
			for i := 0; i < len(level); i += 2 {
				h := level[i]
				if i+1 < len(level) {
					h.Merge(&level[i+1])
				}
				next = append(next, h)
			}
			level = next
		}
		tree = level[0]

		for name, got := range map[string]*Histogram{"fwd": &fwd, "rev": &rev, "tree": &tree} {
			if got.Count() != whole.Count() || got.sum != whole.sum ||
				got.Min() != whole.Min() || got.Max() != whole.Max() {
				t.Fatalf("%s: summary differs from single-pass", name)
			}
			for i := range whole.counts {
				var g int64
				if i < len(got.counts) {
					g = got.counts[i]
				}
				if g != whole.counts[i] {
					t.Fatalf("%s: bucket %d = %d, want %d", name, i, g, whole.counts[i])
				}
			}
			for i := len(whole.counts); i < len(got.counts); i++ {
				if got.counts[i] != 0 {
					t.Fatalf("%s: phantom bucket %d = %d", name, i, got.counts[i])
				}
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 1} {
				if got.Quantile(q) != whole.Quantile(q) {
					t.Fatalf("%s: q%.2f = %d, want %d", name, q, got.Quantile(q), whole.Quantile(q))
				}
			}
		}
	})
}
