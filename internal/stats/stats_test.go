package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestBucketRoundTrip pins the bucket geometry: bucketLow inverts
// bucketIndex, buckets are contiguous and monotone, and relative width
// is bounded by 2^-histSubBits.
func TestBucketRoundTrip(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxInt64 / 2} {
		i := bucketIndex(v)
		if low, high := bucketLow(i), bucketLow(i+1); v < low || v >= high {
			t.Fatalf("v=%d: bucket %d covers [%d,%d)", v, i, low, high)
		}
		if i < prev {
			t.Fatalf("v=%d: bucket index %d not monotone (prev %d)", v, i, prev)
		}
		prev = i
	}
	for i := 0; i <= bucketIndex(math.MaxInt64); i++ {
		low, high := bucketLow(i), bucketLow(i+1)
		if high <= low {
			t.Fatalf("bucket %d empty: [%d,%d)", i, low, high)
		}
		if low >= 2*histSubCount {
			if w := high - low; float64(w)/float64(low) > 1.0/histSubCount+1e-12 {
				t.Fatalf("bucket %d too wide: [%d,%d)", i, low, high)
			}
		}
	}
}

// TestQuantileMatchesExactRanks is the property test of the issue:
// histogram quantiles vs exact sorted-slice nearest-rank quantiles on
// random inputs, across several distribution shapes, within the bucket
// width bound.
func TestQuantileMatchesExactRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := map[string]func() int64{
		"small-exact": func() int64 { return rng.Int63n(64) },
		"uniform":     func() int64 { return rng.Int63n(5_000_000_000) },
		"exponential": func() int64 { return int64(rng.ExpFloat64() * 2e8) },
		"heavy-tail": func() int64 {
			if rng.Intn(100) == 0 {
				return 1_000_000_000 + rng.Int63n(60_000_000_000)
			}
			return rng.Int63n(50_000_000)
		},
	}
	for name, gen := range shapes {
		for _, n := range []int{1, 2, 17, 500, 4096} {
			var h Histogram
			values := make([]int64, n)
			for i := range values {
				values[i] = gen()
				h.Observe(values[i])
			}
			sorted := append([]int64(nil), values...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1} {
				exact := sortedQuantile(sorted, q)
				got := h.Quantile(q)
				// The exact rank's value and the reported midpoint share a
				// bucket, so the error is below one bucket width.
				tol := exact / histSubCount
				if d := got - exact; d > tol || d < -tol {
					t.Fatalf("%s n=%d q=%g: hist %d vs exact %d (tol %d)",
						name, n, q, got, exact, tol)
				}
			}
			if h.Quantile(1) != sorted[n-1] || h.Max() != sorted[n-1] {
				t.Fatalf("%s n=%d: max %d/%d vs exact %d", name, n, h.Quantile(1), h.Max(), sorted[n-1])
			}
			if h.Min() != sorted[0] {
				t.Fatalf("%s n=%d: min %d vs exact %d", name, n, h.Min(), sorted[0])
			}
		}
	}
}

// TestHistogramSmallValuesExact: values below 64 land in width-1
// buckets, so every quantile is exact.
func TestHistogramSmallValuesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var values []int64
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(64)
		values = append(values, v)
		h.Observe(v)
	}
	for q := 0.05; q <= 1.0; q += 0.05 {
		if got, want := h.Quantile(q), ExactQuantile(values, q); got != want {
			t.Fatalf("q=%g: %d != exact %d", q, got, want)
		}
	}
}

func TestHistogramMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole Histogram
	shards := make([]Histogram, 7)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 1e7)
		whole.Observe(v)
		shards[rng.Intn(len(shards))].Observe(v)
	}
	var merged Histogram
	// Merge in a scrambled order; the result must be identical.
	for _, i := range rng.Perm(len(shards)) {
		merged.Merge(&shards[i])
	}
	if merged.Count() != whole.Count() || merged.sum != whole.sum ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary differs: %+v vs %+v", merged, whole)
	}
	for i := range whole.counts {
		if merged.counts[i] != whole.counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, merged.counts[i], whole.counts[i])
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Merge(nil)
	h.Merge(&Histogram{})
	if h.Count() != 0 {
		t.Fatal("merging empties changed the count")
	}
	h.Observe(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation not clamped: min=%d n=%d", h.Min(), h.Count())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 1000)
	var sum float64
	var w Welford
	for i := range values {
		values[i] = rng.NormFloat64()*3 + 10
		sum += values[i]
		w.Observe(values[i])
	}
	mean := sum / float64(len(values))
	var ss float64
	for _, v := range values {
		ss += (v - mean) * (v - mean)
	}
	variance := ss / float64(len(values)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %g vs naive %g", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("variance %g vs naive %g", w.Variance(), variance)
	}
	// Merging shards must agree with the single pass.
	var a, b Welford
	for i, v := range values {
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if math.Abs(a.Mean()-mean) > 1e-9 || math.Abs(a.Variance()-variance) > 1e-9 {
		t.Fatalf("merged %g/%g vs naive %g/%g", a.Mean(), a.Variance(), mean, variance)
	}
}

func TestTCrit95(t *testing.T) {
	for _, tc := range []struct {
		df   int
		want float64
	}{{1, 12.706}, {4, 2.776}, {10, 2.228}, {30, 2.042}, {35, 2.042}, {45, 2.021}, {1000, 1.960}} {
		if got := TCrit95(tc.df); got != tc.want {
			t.Errorf("TCrit95(%d) = %g, want %g", tc.df, got, tc.want)
		}
	}
	if !math.IsInf(TCrit95(0), 1) {
		t.Error("TCrit95(0) not +Inf")
	}
	for df := 2; df < 200; df++ {
		if TCrit95(df) > TCrit95(df-1) {
			t.Fatalf("TCrit95 not monotone at df=%d", df)
		}
	}
}

func TestSummarize(t *testing.T) {
	// Known small set: mean 10, stddev 1, t(4)=2.776 → CI 2.776/√5.
	vals := []float64{9, 9.5, 10, 10.5, 11}
	s := Summarize(vals)
	if s.N != 5 || math.Abs(s.Mean-10) > 1e-12 {
		t.Fatalf("summary %+v", s)
	}
	wantCI := 2.776 * s.Stddev / math.Sqrt(5)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI %g, want %g", s.CI95, wantCI)
	}
	lo, hi := s.Interval()
	if lo >= s.Mean || hi <= s.Mean {
		t.Fatalf("interval [%g,%g] does not bracket the mean", lo, hi)
	}
	if one := Summarize([]float64{7}); one.CI95 != 0 || one.Stddev != 0 {
		t.Fatalf("single-sample summary has spread: %+v", one)
	}
}

func TestLatencySetDistMap(t *testing.T) {
	var ls LatencySet
	if ls.DistMap() != nil {
		t.Fatal("empty set produced a dist map")
	}
	for i := int64(1); i <= 100; i++ {
		ls.Observe(i*1e6, 2*i*1e6, 3*i*1e6)
	}
	m := ls.DistMap()
	if len(m) != 12 {
		t.Fatalf("dist map has %d keys, want 12", len(m))
	}
	for _, k := range []string{"lat_queue_ms_p50", "lat_ttfb_ms_p99", "lat_total_ms_max"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("dist map missing %s (have %v)", k, m)
		}
	}
	if got := m["lat_total_ms_max"]; got != 300 {
		t.Fatalf("total max %g ms, want 300", got)
	}
	if p50 := m["lat_queue_ms_p50"]; math.Abs(p50-50) > 50.0/histSubCount {
		t.Fatalf("queue p50 %g ms, want ≈50", p50)
	}
	var other LatencySet
	other.Observe(1e9, 1e9, 1e9)
	ls.Merge(&other)
	if ls.Count() != 101 {
		t.Fatalf("merged count %d, want 101", ls.Count())
	}
	var sb strings.Builder
	ls.Fprint(&sb)
	if !strings.Contains(sb.String(), "total:") || !strings.Contains(sb.String(), "#") {
		t.Fatalf("Fprint output missing content:\n%s", sb.String())
	}
}
