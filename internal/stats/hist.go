// Package stats is the statistical layer under the measurement harness:
// mergeable log-bucketed latency histograms with exact-rank quantiles
// (hist.go), streaming Welford mean/variance (welford.go), Student-t 95%
// confidence intervals for cross-seed cell aggregation (ci.go), and a
// significance-aware comparison of two metric populations for the
// perf-regression gate (compare.go).
//
// The paper reports every cell of its tables as a single
// tcpdump-accounted run; later measurement work showed protocol
// comparisons only become trustworthy with distributions and repeated
// trials. This package holds the math for that — and nothing else: it
// depends only on the standard library, so every layer of the repo
// (exp, core, report, the commands) can use it without cycles.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// histSubBits fixes the histogram's resolution: each power-of-two range
// of values is split into 2^histSubBits sub-buckets, bounding the
// relative width of any bucket by 2^-histSubBits (≈3.1%). Values below
// 2^(histSubBits+1) get width-1 buckets and are recorded exactly.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
)

// bucketIndex maps a non-negative value to its bucket. Buckets are
// contiguous and monotone in the value, so cumulative walks recover
// exact ranks.
func bucketIndex(v int64) int {
	if v < 2*histSubCount {
		return int(v)
	}
	shift := uint(bits.Len64(uint64(v)) - histSubBits - 1)
	return int(shift<<histSubBits) + int(v>>shift)
}

// bucketLow returns the smallest value mapping to bucket i — the exact
// inverse of bucketIndex's floor.
func bucketLow(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	shift := uint(i>>histSubBits) - 1
	m := int64(i) - int64(shift)<<histSubBits
	if shift > 0 && m > math.MaxInt64>>shift {
		return math.MaxInt64 // the open end of the top bucket
	}
	return m << shift
}

// bucketMid returns the representative value reported for bucket i: the
// midpoint of [bucketLow(i), bucketLow(i+1)). Width-1 buckets report
// their exact value.
func bucketMid(i int) int64 {
	low := bucketLow(i)
	return low + (bucketLow(i+1)-low-1)/2
}

// Histogram is a log-bucketed distribution of non-negative int64 values
// (latencies in nanoseconds, sizes in bytes — any magnitude). The zero
// value is an empty histogram ready to use.
//
// Bucket boundaries are a pure function of the bucket index, never of
// the observed data, so merging shards is an element-wise count add:
// merging in any order yields identical buckets, which is what makes
// per-run histograms aggregable across seeds and workers.
type Histogram struct {
	counts   []int64
	n        int64
	sum      int64
	min, max int64
}

// Observe records one value. Negative values are clamped to zero (a
// latency difference can round below zero only through a bug upstream;
// clamping keeps the histogram total consistent with the sample count).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds o into h. Safe when o is nil or empty.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]int64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of observed values.
func (h *Histogram) Count() int64 { return h.n }

// Min and Max return the exact observed extrema (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact observed maximum (0 when empty).
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the q-quantile (0 < q ≤ 1) by the nearest-rank
// definition: the value whose rank is ceil(q·n). The rank is exact; the
// returned value is the representative (midpoint) of the rank's bucket,
// clamped to the observed [min, max], so the relative error is bounded
// by the bucket width (≤2^-histSubBits) and is zero for values below
// 2·2^histSubBits.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket: the half-open value range
// [Low, High) and its count.
type Bucket struct {
	Low, High int64
	Count     int64
}

// Buckets returns the non-empty buckets in value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		out = append(out, Bucket{Low: bucketLow(i), High: bucketLow(i + 1), Count: c})
	}
	return out
}

// Fprint renders the histogram as an aligned ASCII table: a summary
// line (count, min, quantiles, max) and one bar per non-empty bucket.
// Values are divided by scale before display (1e6 turns nanoseconds
// into milliseconds) and labelled with unit.
func (h *Histogram) Fprint(w io.Writer, label, unit string, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	f := func(v int64) float64 { return float64(v) / scale }
	fmt.Fprintf(w, "%s: n=%d min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f %s\n",
		label, h.Count(), f(h.Min()), f(h.Quantile(0.50)), f(h.Quantile(0.90)),
		f(h.Quantile(0.99)), f(h.Max()), unit)
	buckets := h.Buckets()
	var widest int64
	for _, b := range buckets {
		if b.Count > widest {
			widest = b.Count
		}
	}
	for _, b := range buckets {
		bar := int(40 * b.Count / widest)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  [%10.2f, %10.2f) %6d %s\n",
			f(b.Low), f(b.High), b.Count, strings.Repeat("#", bar))
	}
}

// sortedQuantile is the reference nearest-rank quantile on a sorted
// slice, shared by tests; exported logic stays in Quantile.
func sortedQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ExactQuantile computes the nearest-rank quantile of a value slice
// directly (copying and sorting it) — the reference the histogram's
// bucketed answer approximates, used by tests and small populations.
func ExactQuantile(values []int64, q float64) int64 {
	s := make([]int64, len(values))
	copy(s, values)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return sortedQuantile(s, q)
}
