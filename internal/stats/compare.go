package stats

import (
	"math"
	"sort"
	"strings"
)

// Sample is one metric's value population in one cell of a snapshot —
// the unit Compare works on. Cell identifies the measurement context
// (an experiment/scenario pair, a benchmark name); Metric names the
// measured quantity; Values holds one entry per repetition (a single
// entry for unreplicated snapshots like bench output).
type Sample struct {
	Cell   string
	Metric string
	Unit   string
	Values []float64
}

// Options tunes Compare. ThresholdPct is the minimum |relative delta|
// (percent) for a difference to matter; differences below it are noise
// regardless of significance. Zero means the default 5%.
type Options struct {
	ThresholdPct float64
}

// DefaultThresholdPct is the delta floor used when Options leaves it 0.
const DefaultThresholdPct = 5.0

// Delta is the comparison of one (cell, metric) pair across two
// snapshots. Significant means the relative delta exceeded the
// threshold AND the two 95% confidence intervals do not overlap — both
// conditions must hold, so neither a tiny-but-tight change nor a
// large-but-noisy one trips the gate. Regression and Improvement
// qualify a significant delta by the metric's polarity.
type Delta struct {
	Cell     string
	Metric   string
	Unit     string
	Old, New Summary
	// DeltaPct is 100·(new−old)/old; ±Inf when old is zero and new is
	// not.
	DeltaPct    float64
	Significant bool
	Regression  bool
	Improvement bool
}

// Direction classifies a metric's polarity for regression gating:
// +1 when a higher value is worse (elapsed time, packets, retransmits —
// the default for cost-like quantities), −1 when higher is better
// (cache hit ratio, bytes saved), and 0 for bookkeeping quantities that
// must not be gated on (seeds, run indices, event counts).
func Direction(metric string) int {
	switch metric {
	case "seed", "run", "procs", "iterations",
		"timeline_events", "timeline_spans",
		"responses_200", "responses_304", "responses_206",
		"faults_injected", "sim_events":
		return 0
	case "cache_hits", "cache_hit_ratio", "cache_bytes_saved",
		"requests_recovered", "engine_speedup_ratio":
		return -1
	case "critical_path_ms":
		// The page-load gating chain's length: lower is better. Listed
		// explicitly (though it matches the cost-like default) because
		// perfdiff gates on it — the blame_*_ms columns are
		// request-second totals and fall through to the same polarity.
		return 1
	}
	// Throughput metrics (events_per_sec, packets_per_sec, ...): higher
	// is better.
	if strings.HasSuffix(metric, "_per_sec") {
		return -1
	}
	return 1
}

// Compare pairs the samples of two snapshots by (cell, metric) and
// returns one Delta per pair present on both sides, ordered by cell
// then metric. Metrics with Direction 0 are skipped. A delta is flagged
// Significant only when it exceeds opt.ThresholdPct and the Student-t
// 95% confidence intervals of the two populations are disjoint.
func Compare(old, new []Sample, opt Options) []Delta {
	threshold := opt.ThresholdPct
	if threshold == 0 {
		threshold = DefaultThresholdPct
	}
	type key struct{ cell, metric string }
	olds := make(map[key]Sample, len(old))
	for _, s := range old {
		olds[key{s.Cell, s.Metric}] = s
	}
	var out []Delta
	for _, s := range new {
		dir := Direction(s.Metric)
		if dir == 0 {
			continue
		}
		o, ok := olds[key{s.Cell, s.Metric}]
		if !ok {
			continue
		}
		d := Delta{
			Cell: s.Cell, Metric: s.Metric, Unit: s.Unit,
			Old: Summarize(o.Values), New: Summarize(s.Values),
		}
		switch {
		case d.Old.Mean != 0:
			d.DeltaPct = 100 * (d.New.Mean - d.Old.Mean) / d.Old.Mean
		case d.New.Mean > 0:
			d.DeltaPct = math.Inf(1)
		case d.New.Mean < 0:
			d.DeltaPct = math.Inf(-1)
		}
		if math.Abs(d.DeltaPct) >= threshold && !d.Old.Overlaps(d.New) {
			d.Significant = true
			worse := d.New.Mean > d.Old.Mean
			if dir < 0 {
				worse = !worse
			}
			d.Regression = worse
			d.Improvement = !worse
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
