package stats

import "io"

// LatencySet groups the three per-request latency distributions the
// request-lifecycle spans yield: queue time (decided-to-fetch → request
// bytes handed to TCP), TTFB (request written → first response byte),
// and total (decided-to-fetch → response complete). All values are
// nanoseconds. The zero value is empty and ready; sets merge
// distribution-wise, so per-run sets aggregate into per-cell sets in
// any order.
type LatencySet struct {
	Queue Histogram
	TTFB  Histogram
	Total Histogram
}

// Observe records one completed request's latencies, in nanoseconds.
func (ls *LatencySet) Observe(queueNs, ttfbNs, totalNs int64) {
	ls.Queue.Observe(queueNs)
	ls.TTFB.Observe(ttfbNs)
	ls.Total.Observe(totalNs)
}

// Merge folds o into ls. Safe when o is nil.
func (ls *LatencySet) Merge(o *LatencySet) {
	if o == nil {
		return
	}
	ls.Queue.Merge(&o.Queue)
	ls.TTFB.Merge(&o.TTFB)
	ls.Total.Merge(&o.Total)
}

// Count returns the number of requests observed.
func (ls *LatencySet) Count() int64 { return ls.Total.Count() }

// distQuantiles names the quantile columns DistMap emits per
// distribution, in emission order.
var distQuantiles = []struct {
	suffix string
	q      float64
}{
	{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1},
}

// DistMap flattens the set's quantiles into the stable string-keyed
// form the metrics layer carries: lat_<dist>_ms_<quantile> → value in
// milliseconds. Keys are fixed, so CSV emission can sort them into a
// deterministic column order. Returns nil for an empty set.
func (ls *LatencySet) DistMap() map[string]float64 {
	if ls == nil || ls.Count() == 0 {
		return nil
	}
	out := make(map[string]float64, 12)
	for _, d := range []struct {
		name string
		h    *Histogram
	}{
		{"queue", &ls.Queue}, {"ttfb", &ls.TTFB}, {"total", &ls.Total},
	} {
		for _, p := range distQuantiles {
			v := d.h.Quantile(p.q)
			if p.q >= 1 {
				v = d.h.Max()
			}
			out["lat_"+d.name+"_ms_"+p.suffix] = float64(v) / 1e6
		}
	}
	return out
}

// Fprint renders the three distributions as ASCII histograms in
// milliseconds.
func (ls *LatencySet) Fprint(w io.Writer) {
	ls.Queue.Fprint(w, "queue", "ms", 1e6)
	ls.TTFB.Fprint(w, "ttfb", "ms", 1e6)
	ls.Total.Fprint(w, "total", "ms", 1e6)
}
