package stats

import (
	"math"
	"testing"
)

func samples(cell, metric string, values ...float64) []Sample {
	return []Sample{{Cell: cell, Metric: metric, Values: values}}
}

// TestCompareFlagsInjectedRegression: a tight population shifted well
// past the threshold must come back Significant and a Regression.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	old := samples("a/b", "elapsed_seconds", 1.00, 1.01, 0.99, 1.00, 1.00)
	new := samples("a/b", "elapsed_seconds", 1.50, 1.51, 1.49, 1.50, 1.50)
	ds := Compare(old, new, Options{ThresholdPct: 5})
	if len(ds) != 1 {
		t.Fatalf("got %d deltas, want 1", len(ds))
	}
	d := ds[0]
	if !d.Significant || !d.Regression || d.Improvement {
		t.Fatalf("delta not flagged as regression: %+v", d)
	}
	if math.Abs(d.DeltaPct-50) > 1 {
		t.Fatalf("delta %.1f%%, want ≈50%%", d.DeltaPct)
	}
	// The reverse direction is an improvement, not a regression.
	rev := Compare(new, old, Options{ThresholdPct: 5})
	if !rev[0].Significant || rev[0].Regression || !rev[0].Improvement {
		t.Fatalf("reverse delta not an improvement: %+v", rev[0])
	}
}

// TestCompareOverlappingCIsNotSignificant: a large delta whose noise
// bands still overlap must not trip the gate.
func TestCompareOverlappingCIsNotSignificant(t *testing.T) {
	old := samples("a/b", "elapsed_seconds", 1.0, 2.0, 3.0, 4.0, 5.0)
	new := samples("a/b", "elapsed_seconds", 1.5, 2.5, 3.5, 4.5, 5.5)
	ds := Compare(old, new, Options{ThresholdPct: 5})
	if len(ds) != 1 || ds[0].Significant {
		t.Fatalf("noisy delta flagged significant: %+v", ds)
	}
}

// TestCompareBelowThresholdNotSignificant: disjoint CIs with a delta
// under the threshold stay quiet.
func TestCompareBelowThresholdNotSignificant(t *testing.T) {
	old := samples("a/b", "packets", 100.0, 100.0, 100.0, 100.1, 99.9)
	new := samples("a/b", "packets", 102.0, 102.0, 102.0, 102.1, 101.9)
	ds := Compare(old, new, Options{ThresholdPct: 5})
	if len(ds) != 1 || ds[0].Significant {
		t.Fatalf("2%% delta flagged at 5%% threshold: %+v", ds)
	}
}

// TestCompareHigherIsBetterMetrics: a drop in a higher-is-better metric
// is the regression.
func TestCompareHigherIsBetterMetrics(t *testing.T) {
	old := samples("a/b", "cache_hit_ratio", 0.90, 0.91, 0.89, 0.90, 0.90)
	new := samples("a/b", "cache_hit_ratio", 0.50, 0.51, 0.49, 0.50, 0.50)
	ds := Compare(old, new, Options{})
	if len(ds) != 1 || !ds[0].Regression {
		t.Fatalf("hit-ratio drop not a regression: %+v", ds)
	}
}

// TestDirectionCriticalPath: the attribution metrics gate as
// lower-is-better costs — a critical-path increase is a regression.
func TestDirectionCriticalPath(t *testing.T) {
	for _, metric := range []string{"critical_path_ms", "blame_nagle_ms", "blame_connect_ms"} {
		if d := Direction(metric); d != 1 {
			t.Errorf("Direction(%q) = %d, want 1 (higher is worse)", metric, d)
		}
	}
	old := samples("a/b", "critical_path_ms", 100, 101, 99, 100, 100)
	new := samples("a/b", "critical_path_ms", 150, 151, 149, 150, 150)
	ds := Compare(old, new, Options{ThresholdPct: 5})
	if len(ds) != 1 || !ds[0].Regression || ds[0].Improvement {
		t.Fatalf("critical-path growth not a regression: %+v", ds)
	}
}

// TestCompareSkipsNeutralAndUnpaired: bookkeeping metrics and cells
// missing on one side produce no deltas.
func TestCompareSkipsNeutralAndUnpaired(t *testing.T) {
	old := append(samples("a/b", "seed", 1, 2), samples("only-old", "packets", 5)...)
	new := append(samples("a/b", "seed", 3, 4), samples("only-new", "packets", 5)...)
	if ds := Compare(old, new, Options{}); len(ds) != 0 {
		t.Fatalf("neutral/unpaired compared: %+v", ds)
	}
}

// TestCompareSingleValueSnapshots: bench-style single observations have
// zero-width CIs, so the threshold alone decides.
func TestCompareSingleValueSnapshots(t *testing.T) {
	old := samples("bench:X", "ns_per_op", 100)
	fast := Compare(old, samples("bench:X", "ns_per_op", 103), Options{ThresholdPct: 5})
	if fast[0].Significant {
		t.Fatalf("3%% single-value delta flagged: %+v", fast[0])
	}
	slow := Compare(old, samples("bench:X", "ns_per_op", 150), Options{ThresholdPct: 5})
	if !slow[0].Significant || !slow[0].Regression {
		t.Fatalf("50%% single-value delta not flagged: %+v", slow[0])
	}
}

// TestCompareZeroBaseline: growth from a zero mean is an infinite
// relative delta and must flag when the CIs are disjoint.
func TestCompareZeroBaseline(t *testing.T) {
	old := samples("a/b", "retransmissions", 0, 0, 0)
	new := samples("a/b", "retransmissions", 12, 13, 11)
	ds := Compare(old, new, Options{})
	if len(ds) != 1 || !ds[0].Regression || !math.IsInf(ds[0].DeltaPct, 1) {
		t.Fatalf("zero-baseline growth not flagged: %+v", ds)
	}
}

func TestCompareOrderingDeterministic(t *testing.T) {
	old := []Sample{
		{Cell: "b", Metric: "m2", Values: []float64{1}},
		{Cell: "a", Metric: "m1", Values: []float64{1}},
		{Cell: "b", Metric: "m1", Values: []float64{1}},
	}
	new := []Sample{
		{Cell: "b", Metric: "m1", Values: []float64{1}},
		{Cell: "b", Metric: "m2", Values: []float64{1}},
		{Cell: "a", Metric: "m1", Values: []float64{1}},
	}
	ds := Compare(old, new, Options{})
	want := [][2]string{{"a", "m1"}, {"b", "m1"}, {"b", "m2"}}
	if len(ds) != len(want) {
		t.Fatalf("got %d deltas, want %d", len(ds), len(want))
	}
	for i, w := range want {
		if ds[i].Cell != w[0] || ds[i].Metric != w[1] {
			t.Fatalf("delta %d = %s/%s, want %s/%s", i, ds[i].Cell, ds[i].Metric, w[0], w[1])
		}
	}
}
