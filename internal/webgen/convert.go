package webgen

import (
	"repro/internal/gifenc"
	"repro/internal/pngenc"
)

// Conversion is one image's GIF→PNG (or animated GIF→MNG) size
// comparison.
type Conversion struct {
	Name     string
	Role     Role
	GIFBytes int
	NewBytes int // PNG or MNG
}

// Saved is the byte saving (negative when PNG is larger, which the paper
// observed for very small images).
func (c Conversion) Saved() int { return c.GIFBytes - c.NewBytes }

// ConversionReport aggregates the format-conversion experiment.
type ConversionReport struct {
	Static     []Conversion
	Animations []Conversion

	StaticGIF, StaticPNG int
	AnimGIF, AnimMNG     int
}

// StaticSaved is the byte saving over the static images.
func (r ConversionReport) StaticSaved() int { return r.StaticGIF - r.StaticPNG }

// AnimSaved is the byte saving over the animations.
func (r ConversionReport) AnimSaved() int { return r.AnimGIF - r.AnimMNG }

// toPNGImage converts the shared paletted representation.
func toPNGImage(img *gifenc.Image) *pngenc.Image {
	out := &pngenc.Image{W: img.W, H: img.H, Pixels: img.Pixels}
	out.Palette = make([]pngenc.Color, len(img.Palette))
	for i, c := range img.Palette {
		out.Palette[i] = pngenc.Color{R: c.R, G: c.G, B: c.B}
	}
	return out
}

// ConvertImages runs the paper's batch conversion: every static GIF to
// PNG, every animation to MNG.
func (s *Site) ConvertImages() (ConversionReport, error) {
	var rep ConversionReport
	for _, img := range s.Images {
		if img.Static() {
			data, err := pngenc.Encode(toPNGImage(img.Image), pngenc.Options{})
			if err != nil {
				return rep, err
			}
			c := Conversion{Name: img.Spec.Name, Role: img.Spec.Role, GIFBytes: len(img.GIF), NewBytes: len(data)}
			rep.Static = append(rep.Static, c)
			rep.StaticGIF += c.GIFBytes
			rep.StaticPNG += c.NewBytes
			continue
		}
		frames := make([]*pngenc.Image, len(img.Frames))
		delays := make([]int, len(img.Frames))
		for i, f := range img.Frames {
			frames[i] = toPNGImage(f.Image)
			delays[i] = f.DelayCS
		}
		data, err := pngenc.EncodeMNG(frames, delays, pngenc.Options{})
		if err != nil {
			return rep, err
		}
		c := Conversion{Name: img.Spec.Name, Role: img.Spec.Role, GIFBytes: len(img.GIF), NewBytes: len(data)}
		rep.Animations = append(rep.Animations, c)
		rep.AnimGIF += c.GIFBytes
		rep.AnimMNG += c.NewBytes
	}
	return rep, nil
}
