package webgen

import (
	"fmt"

	"repro/internal/flatez"
)

// Object is one servable resource.
type Object struct {
	Path         string
	ContentType  string
	Body         []byte
	ETag         string
	LastModified string
}

// lastModified is the fixed timestamp all site objects carry (the site is
// static during a run, like the paper's).
const lastModified = "Fri, 20 Jun 1997 08:30:00 GMT"

// Site is a synthesized web site: one HTML page plus its inline images.
type Site struct {
	HTML    *Object
	Images  []*SynthImage
	objects map[string]*Object
	paths   []string
}

// Options tunes site synthesis.
type Options struct {
	// Seed drives all deterministic randomness (default 1).
	Seed uint64
	// TagCase selects HTML markup case (default lower).
	TagCase TagCase
	// HTMLBytes overrides the page size (default the paper's 42 KB).
	HTMLBytes int
}

// Microscape synthesizes the paper's test site.
func Microscape(opts Options) (*Site, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	specs := MicroscapeSpecs()
	site := &Site{objects: make(map[string]*Object)}
	var imagePaths []string
	for _, spec := range specs {
		img, err := Synthesize(spec, opts.Seed)
		if err != nil {
			return nil, err
		}
		site.Images = append(site.Images, img)
		path := "/images/" + spec.Name
		imagePaths = append(imagePaths, path)
		site.addObject(&Object{
			Path:        path,
			ContentType: "image/gif",
			Body:        img.GIF,
		})
	}
	html := GenerateHTML(HTMLOptions{
		TargetBytes: opts.HTMLBytes,
		Images:      imagePaths,
		TagCase:     opts.TagCase,
		Seed:        opts.Seed,
	})
	site.HTML = &Object{Path: "/", ContentType: "text/html", Body: html}
	site.addObjectFirst(site.HTML)
	return site, nil
}

func (s *Site) addObject(o *Object) {
	o.ETag = fmt.Sprintf("%q", fmt.Sprintf("%x-%x", flatez.Adler32(1, o.Body), len(o.Body)))
	o.LastModified = lastModified
	s.objects[o.Path] = o
	s.paths = append(s.paths, o.Path)
}

func (s *Site) addObjectFirst(o *Object) {
	o.ETag = fmt.Sprintf("%q", fmt.Sprintf("%x-%x", flatez.Adler32(1, o.Body), len(o.Body)))
	o.LastModified = lastModified
	s.objects[o.Path] = o
	s.paths = append([]string{o.Path}, s.paths...)
}

// Object returns the resource at path.
func (s *Site) Object(path string) (*Object, bool) {
	o, ok := s.objects[path]
	return o, ok
}

// Paths lists all resource paths, page first.
func (s *Site) Paths() []string { return s.paths }

// InlineLinks returns the inline object paths the page at path
// references, in document order, or nil when path is not the page.
// It is the link structure server push and burst aggregation follow.
func (s *Site) InlineLinks(path string) []string {
	if s.HTML == nil || path != s.HTML.Path {
		return nil
	}
	return s.paths[1:]
}

// ObjectCount returns the number of resources (1 page + images).
func (s *Site) ObjectCount() int { return len(s.paths) }

// StaticImageBytes totals the encoded static GIFs.
func (s *Site) StaticImageBytes() int {
	n := 0
	for _, img := range s.Images {
		if img.Static() {
			n += len(img.GIF)
		}
	}
	return n
}

// AnimationBytes totals the encoded GIF animations.
func (s *Site) AnimationBytes() int {
	n := 0
	for _, img := range s.Images {
		if !img.Static() {
			n += len(img.GIF)
		}
	}
	return n
}

// TotalBytes is the full payload: HTML plus all images.
func (s *Site) TotalBytes() int {
	return len(s.HTML.Body) + s.StaticImageBytes() + s.AnimationBytes()
}
