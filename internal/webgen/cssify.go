package webgen

import (
	"fmt"
	"strings"

	"repro/internal/css"
)

// Replacement describes one image replaced by HTML+CSS, per the paper's
// CSS1 experiment.
type Replacement struct {
	Name     string
	Role     Role
	GIFBytes int
	// Markup is the in-page HTML that replaces the <img> tag.
	Markup string
	// Style is the compact CSS rule backing the markup ("" when layout
	// properties on existing elements suffice, as for spacers).
	Style string
}

// CSSBytes is the byte cost of the replacement (markup plus style).
func (r Replacement) CSSBytes() int { return len(r.Markup) + len(r.Style) }

// Saved is the byte saving versus the image (image bytes plus its ~40
// bytes of <img> markup, minus the replacement).
func (r Replacement) Saved() int {
	const imgTagBytes = 40
	return r.GIFBytes + imgTagBytes - r.CSSBytes()
}

// figureOneCSS is the paper's Figure 1 style rule, verbatim.
const figureOneCSS = `
	P.banner {
	  color: white;
	  background: #FC0;
	  font: bold oblique 20px sans-serif;
	  padding: 0.2em 10em 0.2em 1em;
	}
`

// FigureOneReplacement reproduces the paper's worked example: the
// 682-byte "solutions" GIF replaced by ~150 bytes of HTML and CSS.
func FigureOneReplacement() Replacement {
	sheet := css.MustParse(figureOneCSS)
	return Replacement{
		Name:     "solutions.gif",
		Role:     RoleBanner,
		GIFBytes: PaperBannerGIFBytes,
		Markup:   "<P CLASS=banner> solutions",
		Style:    sheet.Compact(),
	}
}

// replacementFor builds the HTML+CSS equivalent for one image, or returns
// false when the role is not replaceable.
func replacementFor(img *SynthImage) (Replacement, bool) {
	spec := img.Spec
	if !spec.Role.Replaceable() {
		return Replacement{}, false
	}
	r := Replacement{Name: spec.Name, Role: spec.Role, GIFBytes: len(img.GIF)}
	class := strings.TrimSuffix(spec.Name, ".gif")
	class = strings.ReplaceAll(class, "_", "")
	switch spec.Role {
	case RoleSpacer:
		// Layout spacing needs no element at all: padding/margins on the
		// surrounding markup do the work.
		r.Markup = ""
		r.Style = css.MustParse(fmt.Sprintf(".%s{margin-top:8px}", class)).Compact()
	case RoleBullet:
		r.Markup = fmt.Sprintf("<LI CLASS=%s>", class)
		r.Style = css.MustParse(fmt.Sprintf(
			"li.%s{list-style-type:square;color:#c00}", class)).Compact()
	case RoleBanner:
		text := spec.Text
		if text == "" {
			text = class
		}
		r.Markup = fmt.Sprintf("<P CLASS=%s> %s", class, text)
		r.Style = css.MustParse(fmt.Sprintf(
			"p.%s{color:white;background:#FC0;font:bold oblique 20px sans-serif;padding:0.2em 10em 0.2em 1em}",
			class)).Compact()
	}
	return r, true
}

// CSSReport summarizes the whole-page image→CSS analysis.
type CSSReport struct {
	Replacements []Replacement
	// Kept lists images CSS cannot replace.
	Kept []*SynthImage
	// GIFBytesRemoved is the image payload eliminated.
	GIFBytesRemoved int
	// CSSBytesAdded is the markup+style payload added to the page.
	CSSBytesAdded int
	// RequestsSaved is the drop in HTTP requests (one per removed image).
	RequestsSaved int
}

// NetSavings is the total payload reduction in bytes.
func (r CSSReport) NetSavings() int { return r.GIFBytesRemoved - r.CSSBytesAdded }

// CSSReplacements analyses every image on the site.
func (s *Site) CSSReplacements() CSSReport {
	var rep CSSReport
	for _, img := range s.Images {
		if r, ok := replacementFor(img); ok {
			rep.Replacements = append(rep.Replacements, r)
			rep.GIFBytesRemoved += r.GIFBytes
			rep.CSSBytesAdded += r.CSSBytes()
			rep.RequestsSaved++
		} else {
			rep.Kept = append(rep.Kept, img)
		}
	}
	return rep
}

// CSSified builds the site variant with replaceable images removed: the
// page carries a <style> block and replacement markup, and only the
// non-replaceable images remain as separate resources.
func (s *Site) CSSified(opts Options) (*Site, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	report := s.CSSReplacements()

	var styles, markup strings.Builder
	for _, r := range report.Replacements {
		styles.WriteString(r.Style)
		styles.WriteString("\n")
		if r.Markup != "" {
			markup.WriteString(r.Markup)
			markup.WriteString("\n")
		}
	}

	site := &Site{objects: make(map[string]*Object)}
	var imagePaths []string
	for _, img := range report.Kept {
		site.Images = append(site.Images, img)
		path := "/images/" + img.Spec.Name
		imagePaths = append(imagePaths, path)
		site.addObject(&Object{Path: path, ContentType: "image/gif", Body: img.GIF})
	}
	html := GenerateHTML(HTMLOptions{
		TargetBytes: opts.HTMLBytes,
		Images:      imagePaths,
		TagCase:     opts.TagCase,
		Seed:        opts.Seed,
		InlineCSS:   styles.String(),
		ExtraMarkup: markup.String(),
	})
	site.HTML = &Object{Path: "/", ContentType: "text/html", Body: html}
	site.addObjectFirst(site.HTML)
	return site, nil
}
