package webgen

import "repro/internal/sim"

// revisedLastModified is the timestamp carried by objects changed in a
// revision.
const revisedLastModified = "Sun, 06 Jul 1997 09:00:00 GMT"

// Revise returns a copy of the site as it might look on a later visit:
// the page text has been edited and roughly `fraction` of the images have
// been replaced (new pixels, new validators), while paths and page
// structure are unchanged so a cache primed on the original still maps
// onto it. This is the workload behind the paper's range-request
// discussion: "When a browser revisits a page ... it can both make a
// validation request and also simultaneously request the metadata of the
// embedded object if there has been any change."
func (s *Site) Revise(fraction float64, seed uint64) (*Site, error) {
	if seed == 0 {
		seed = 1
	}
	rng := sim.NewRand(seed ^ 0x5EED1E)
	site := &Site{objects: make(map[string]*Object)}
	var imagePaths []string
	for i, img := range s.Images {
		use := img
		if rng.Float64() < fraction {
			fresh, err := Synthesize(img.Spec, seed+uint64(i)*977+13)
			if err != nil {
				return nil, err
			}
			use = fresh
		}
		site.Images = append(site.Images, use)
		path := "/images/" + use.Spec.Name
		imagePaths = append(imagePaths, path)
		site.addObject(&Object{Path: path, ContentType: "image/gif", Body: use.GIF})
		if use != img {
			if obj, ok := site.Object(path); ok {
				obj.LastModified = revisedLastModified
			}
		}
	}
	// The page itself is always edited on a revision.
	html := GenerateHTML(HTMLOptions{
		Images: imagePaths,
		Seed:   seed ^ 0xED17,
	})
	site.HTML = &Object{Path: "/", ContentType: "text/html", Body: html}
	site.addObjectFirst(site.HTML)
	site.HTML.LastModified = revisedLastModified
	return site, nil
}

// ChangedFrom counts objects whose validators differ from the original
// site's (including the page).
func (s *Site) ChangedFrom(orig *Site) int {
	n := 0
	for _, path := range s.Paths() {
		a, _ := s.Object(path)
		b, ok := orig.Object(path)
		if !ok || a.ETag != b.ETag {
			n++
		}
	}
	return n
}
