// Package webgen synthesizes the "Microscape" test web site: a single
// HTML page of ~42 KB with 42 inline GIF images totaling ~125 KB, with the
// size histogram the paper reports (19 images under 1 KB, 7 between 1 and
// 2 KB, 6 between 2 and 3 KB, the rest larger, over half of all image
// bytes in one large image and two animations). It also implements the
// paper's two content-change analyses: replacing decorative images with
// HTML+CSS, and converting GIF→PNG / animated GIF→MNG.
package webgen

// Role classifies an image's visual function, which determines both how
// it is synthesized and whether CSS can replace it.
type Role int

// Image roles.
const (
	// RoleSpacer is an invisible layout image (CSS-replaceable: layout
	// properties make it unnecessary).
	RoleSpacer Role = iota
	// RoleBullet is a small list/nav symbol (CSS-replaceable: Unicode
	// glyph plus color).
	RoleBullet
	// RoleBanner is text rendered as an image (CSS-replaceable: font and
	// background properties — the paper's Figure 1).
	RoleBanner
	// RoleIcon is a small pictorial graphic (not replaceable).
	RoleIcon
	// RolePhoto is a large, high-entropy image (not replaceable).
	RolePhoto
	// RoleAnimation is an animated GIF (not replaceable; converts to MNG).
	RoleAnimation
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleSpacer:
		return "spacer"
	case RoleBullet:
		return "bullet"
	case RoleBanner:
		return "banner"
	case RoleIcon:
		return "icon"
	case RolePhoto:
		return "photo"
	case RoleAnimation:
		return "animation"
	}
	return "unknown"
}

// Replaceable reports whether HTML+CSS can substitute for the image.
func (r Role) Replaceable() bool {
	return r == RoleSpacer || r == RoleBullet || r == RoleBanner
}

// Spec is one image to synthesize, with its target encoded GIF size.
type Spec struct {
	Name   string
	Role   Role
	Target int // bytes of encoded GIF to aim for
	// Text is the label a banner renders (used for the CSS replacement).
	Text string
}

// MicroscapeSpecs reproduces the paper's image population: 40 static GIFs
// totaling 103,299 bytes target (19 <1 KB, 7 in 1–2 KB, 6 in 2–3 KB,
// 8 larger including one 40 KB image) and 2 animations totaling 24,988
// bytes. Including "solutions.gif", the paper's Figure 1 banner at 682
// bytes.
func MicroscapeSpecs() []Spec {
	specs := []Spec{
		// 19 images under 1 KB.
		{Name: "dot_clear.gif", Role: RoleSpacer, Target: 70},
		{Name: "spacer2.gif", Role: RoleSpacer, Target: 120},
		{Name: "bullet_sm.gif", Role: RoleBullet, Target: 180},
		{Name: "bullet_red.gif", Role: RoleBullet, Target: 250},
		{Name: "bullet_blue.gif", Role: RoleBullet, Target: 300},
		{Name: "arrow_rt.gif", Role: RoleBullet, Target: 340},
		{Name: "arrow_dn.gif", Role: RoleBullet, Target: 380},
		{Name: "new_flag.gif", Role: RoleBullet, Target: 420},
		{Name: "hot_flag.gif", Role: RoleBullet, Target: 460},
		{Name: "rule_thin.gif", Role: RoleSpacer, Target: 500},
		{Name: "nav_home.gif", Role: RoleBanner, Target: 540, Text: "home"},
		{Name: "nav_search.gif", Role: RoleBanner, Target: 580, Text: "search"},
		{Name: "nav_help.gif", Role: RoleBanner, Target: 620, Text: "help"},
		{Name: "nav_news.gif", Role: RoleBanner, Target: 660, Text: "news"},
		{Name: "solutions.gif", Role: RoleBanner, Target: 682, Text: "solutions"},
		{Name: "products.gif", Role: RoleBanner, Target: 750, Text: "products"},
		{Name: "download.gif", Role: RoleBanner, Target: 800, Text: "download"},
		{Name: "support.gif", Role: RoleBanner, Target: 850, Text: "support"},
		{Name: "partners.gif", Role: RoleBanner, Target: 918, Text: "partners"},
		// 7 images between 1 and 2 KB.
		{Name: "toolbar_l.gif", Role: RoleBanner, Target: 1100, Text: "developer zone"},
		{Name: "toolbar_r.gif", Role: RoleBanner, Target: 1250, Text: "site map"},
		{Name: "icon_doc.gif", Role: RoleIcon, Target: 1400},
		{Name: "icon_folder.gif", Role: RoleIcon, Target: 1500},
		{Name: "icon_mail.gif", Role: RoleIcon, Target: 1600},
		{Name: "icon_globe.gif", Role: RoleIcon, Target: 1750},
		{Name: "icon_lock.gif", Role: RoleIcon, Target: 1900},
		// 6 images between 2 and 3 KB.
		{Name: "tab_products.gif", Role: RoleBanner, Target: 2100, Text: "all products"},
		{Name: "tab_services.gif", Role: RoleBanner, Target: 2300, Text: "services and consulting"},
		{Name: "logo_small.gif", Role: RoleIcon, Target: 2500},
		{Name: "award.gif", Role: RoleIcon, Target: 2600},
		{Name: "screenshot_sm.gif", Role: RoleIcon, Target: 2800},
		{Name: "chart_q2.gif", Role: RoleIcon, Target: 2950},
		// 8 larger images, one dominating at 40 KB.
		{Name: "masthead_l.gif", Role: RoleIcon, Target: 3200},
		{Name: "masthead_r.gif", Role: RoleIcon, Target: 3400},
		{Name: "promo_box.gif", Role: RoleIcon, Target: 3600},
		{Name: "photo_team.gif", Role: RolePhoto, Target: 3800},
		{Name: "photo_campus.gif", Role: RolePhoto, Target: 4000},
		{Name: "map_world.gif", Role: RolePhoto, Target: 4300},
		{Name: "collage.gif", Role: RolePhoto, Target: 4869},
		{Name: "splash_main.gif", Role: RolePhoto, Target: 40960},
		// 2 animations totaling 24,988 bytes.
		{Name: "anim_banner.gif", Role: RoleAnimation, Target: 14000},
		{Name: "anim_logo.gif", Role: RoleAnimation, Target: 10988},
	}
	return specs
}

// Paper-reported totals the synthesis aims for (used in tests and the
// experiment reports).
const (
	// PaperStaticGIFBytes is the paper's total for the 40 static images.
	PaperStaticGIFBytes = 103299
	// PaperAnimationGIFBytes is the paper's total for the 2 animations.
	PaperAnimationGIFBytes = 24988
	// PaperHTMLBytes is the paper's HTML page size ("typical HTML
	// totaling 42KB").
	PaperHTMLBytes = 42000
	// PaperBannerGIFBytes is Figure 1's "solutions" GIF size.
	PaperBannerGIFBytes = 682
	// PaperBannerCSSBytes is the paper's estimate for its replacement.
	PaperBannerCSSBytes = 150
)
