package webgen

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/css"
	"repro/internal/flatez"
	"repro/internal/gifenc"
	"repro/internal/htmlparse"
	"repro/internal/pngenc"
)

var (
	siteOnce sync.Once
	siteVal  *Site
	siteErr  error
)

// site synthesizes Microscape once for the whole test package.
func site(t *testing.T) *Site {
	t.Helper()
	siteOnce.Do(func() { siteVal, siteErr = Microscape(Options{Seed: 1}) })
	if siteErr != nil {
		t.Fatal(siteErr)
	}
	return siteVal
}

func TestSiteShape(t *testing.T) {
	s := site(t)
	if s.ObjectCount() != 43 {
		t.Fatalf("objects = %d, want 43 (1 page + 42 images)", s.ObjectCount())
	}
	if s.Paths()[0] != "/" {
		t.Fatalf("first path = %q, want /", s.Paths()[0])
	}
	if len(s.Images) != 42 {
		t.Fatalf("images = %d, want 42", len(s.Images))
	}
	if got := len(s.HTML.Body); got < 38000 || got > 46000 {
		t.Fatalf("HTML = %d bytes, want ≈42000", got)
	}
}

func TestImageTotalsNearPaper(t *testing.T) {
	s := site(t)
	static := s.StaticImageBytes()
	if ratio := float64(static) / PaperStaticGIFBytes; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("static GIF total = %d, want within 10%% of %d", static, PaperStaticGIFBytes)
	}
	anim := s.AnimationBytes()
	if ratio := float64(anim) / PaperAnimationGIFBytes; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("animation total = %d, want within 15%% of %d", anim, PaperAnimationGIFBytes)
	}
	// "Over half of the data was contained in a single image and two
	// animations."
	var splash int
	for _, img := range s.Images {
		if img.Spec.Name == "splash_main.gif" {
			splash = len(img.GIF)
		}
	}
	if splash+anim <= (static+anim)/2 {
		t.Fatalf("largest image (%d) + animations (%d) should dominate total %d", splash, anim, static+anim)
	}
}

func TestImageSizeHistogram(t *testing.T) {
	s := site(t)
	var under1K, oneTo2K, twoTo3K int
	for _, img := range s.Images {
		if !img.Static() {
			continue
		}
		switch n := len(img.GIF); {
		case n < 1024:
			under1K++
		case n < 2048:
			oneTo2K++
		case n < 3072:
			twoTo3K++
		}
	}
	// The paper: 19 under 1KB, 7 in 1-2KB, 6 in 2-3KB. Allow ±2 for
	// boundary noise in the synthesis.
	if under1K < 17 || under1K > 21 {
		t.Errorf("images under 1KB = %d, want ≈19", under1K)
	}
	if oneTo2K < 5 || oneTo2K > 9 {
		t.Errorf("images 1-2KB = %d, want ≈7", oneTo2K)
	}
	if twoTo3K < 4 || twoTo3K > 8 {
		t.Errorf("images 2-3KB = %d, want ≈6", twoTo3K)
	}
}

func TestEveryImageTargetHit(t *testing.T) {
	s := site(t)
	for _, img := range s.Images {
		got, want := len(img.GIF), img.Spec.Target
		tol := want / 5
		if tol < 60 {
			tol = 60
		}
		if got < want-tol || got > want+tol {
			t.Errorf("%s: %d bytes, target %d", img.Spec.Name, got, want)
		}
	}
}

func TestHTMLReferencesAllImages(t *testing.T) {
	s := site(t)
	var e htmlparse.LinkExtractor
	links := e.Feed(s.HTML.Body)
	var imgs []string
	for _, l := range links {
		if l.Kind == htmlparse.LinkImage {
			imgs = append(imgs, l.URL)
		}
	}
	if len(imgs) != 42 {
		t.Fatalf("HTML references %d images, want 42", len(imgs))
	}
	for _, u := range imgs {
		if _, ok := s.Object(u); !ok {
			t.Errorf("referenced image %q not servable", u)
		}
	}
}

func TestImagesAreValidGIFs(t *testing.T) {
	s := site(t)
	for _, img := range s.Images {
		frames, err := gifenc.DecodeAll(img.GIF)
		if err != nil {
			t.Fatalf("%s: %v", img.Spec.Name, err)
		}
		if img.Static() && len(frames) != 1 {
			t.Errorf("%s: %d frames for static image", img.Spec.Name, len(frames))
		}
		if !img.Static() && len(frames) < 2 {
			t.Errorf("%s: %d frames for animation", img.Spec.Name, len(frames))
		}
	}
}

func TestDeterministicSynthesis(t *testing.T) {
	a, err := Microscape(Options{Seed: 42, HTMLBytes: 8000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Microscape(Options{Seed: 42, HTMLBytes: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.HTML.Body, b.HTML.Body) {
		t.Fatal("HTML not deterministic")
	}
	for i := range a.Images {
		if !bytes.Equal(a.Images[i].GIF, b.Images[i].GIF) {
			t.Fatalf("image %d not deterministic", i)
		}
	}
}

func TestETagsDistinct(t *testing.T) {
	s := site(t)
	seen := map[string]string{}
	for _, p := range s.Paths() {
		o, _ := s.Object(p)
		if o.ETag == "" || o.LastModified == "" {
			t.Fatalf("%s: missing validators", p)
		}
		if prev, dup := seen[o.ETag]; dup {
			t.Fatalf("ETag %s shared by %s and %s", o.ETag, prev, p)
		}
		seen[o.ETag] = p
	}
}

func TestHTMLCompressesLikePaper(t *testing.T) {
	// "the Microscape HTML page ... compressed more than a factor of
	// three from 42K to 11K".
	s := site(t)
	comp := flatez.Compress(s.HTML.Body)
	ratio := float64(len(comp)) / float64(len(s.HTML.Body))
	if ratio > 0.40 {
		t.Fatalf("HTML deflate ratio %.3f, want ≤ 0.40", ratio)
	}
	if ratio < 0.15 {
		t.Fatalf("HTML deflate ratio %.3f suspiciously strong; content too repetitive", ratio)
	}
}

func TestTagCaseAffectsCompression(t *testing.T) {
	// The paper: lower-case tags compress best (~0.27 vs ~0.35).
	lower, err := Microscape(Options{Seed: 3, TagCase: TagsLower})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Microscape(Options{Seed: 3, TagCase: TagsMixed})
	if err != nil {
		t.Fatal(err)
	}
	rLower := flatez.Ratio(lower.HTML.Body, flatez.Compress(lower.HTML.Body))
	rMixed := flatez.Ratio(mixed.HTML.Body, flatez.Compress(mixed.HTML.Body))
	if rLower >= rMixed {
		t.Fatalf("lower-case ratio %.3f not better than mixed %.3f", rLower, rMixed)
	}
}

func TestFigureOneReplacement(t *testing.T) {
	r := FigureOneReplacement()
	if r.GIFBytes != 682 {
		t.Fatalf("Figure 1 GIF bytes = %d", r.GIFBytes)
	}
	// "The HTML and CSS version only takes up around 150 bytes."
	if r.CSSBytes() < 100 || r.CSSBytes() > 170 {
		t.Fatalf("Figure 1 replacement = %d bytes, want ≈150", r.CSSBytes())
	}
	// "the number of bytes ... reduced by a factor of more than 4".
	if r.GIFBytes < 4*r.CSSBytes() {
		t.Fatalf("reduction factor %.1f, want > 4", float64(r.GIFBytes)/float64(r.CSSBytes()))
	}
}

func TestCSSReplacementsReport(t *testing.T) {
	s := site(t)
	rep := s.CSSReplacements()
	if rep.RequestsSaved < 10 {
		t.Fatalf("requests saved = %d, want a substantial fraction of 42", rep.RequestsSaved)
	}
	if len(rep.Replacements)+len(rep.Kept) != 42 {
		t.Fatalf("replacement partition %d+%d != 42", len(rep.Replacements), len(rep.Kept))
	}
	if rep.NetSavings() <= 0 {
		t.Fatalf("net savings = %d, want positive", rep.NetSavings())
	}
	for _, r := range rep.Replacements {
		if !r.Role.Replaceable() {
			t.Errorf("%s: role %v should not be replaceable", r.Name, r.Role)
		}
	}
	for _, k := range rep.Kept {
		if k.Spec.Role.Replaceable() {
			t.Errorf("%s: replaceable image kept", k.Spec.Name)
		}
	}
}

func TestCSSifiedSite(t *testing.T) {
	s := site(t)
	rep := s.CSSReplacements()
	cssified, err := s.CSSified(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cssified.ObjectCount(), 43-rep.RequestsSaved; got != want {
		t.Fatalf("cssified objects = %d, want %d", got, want)
	}
	if !bytes.Contains(cssified.HTML.Body, []byte("<style")) {
		t.Fatal("cssified page has no style block")
	}
	if cssified.TotalBytes() >= s.TotalBytes() {
		t.Fatalf("cssified payload %d not smaller than original %d", cssified.TotalBytes(), s.TotalBytes())
	}
	// The page still parses and references only the kept images.
	var e htmlparse.LinkExtractor
	imgs := 0
	for _, l := range e.Feed(cssified.HTML.Body) {
		if l.Kind == htmlparse.LinkImage {
			imgs++
		}
	}
	if imgs != len(rep.Kept) {
		t.Fatalf("cssified page references %d images, want %d", imgs, len(rep.Kept))
	}
}

func TestConvertImages(t *testing.T) {
	s := site(t)
	rep, err := s.ConvertImages()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Static) != 40 || len(rep.Animations) != 2 {
		t.Fatalf("conversion covers %d static + %d anim", len(rep.Static), len(rep.Animations))
	}
	// The paper: PNG saves ~11% of static image bytes overall...
	if rep.StaticSaved() <= 0 {
		t.Fatalf("PNG conversion grew statics: GIF %d → PNG %d", rep.StaticGIF, rep.StaticPNG)
	}
	// ...but the smallest images get bigger ("PNG does not perform as
	// well on the very low bit depth images in the sub-200 byte
	// category").
	grew := 0
	for _, c := range rep.Static {
		if c.GIFBytes < 400 && c.Saved() < 0 {
			grew++
		}
	}
	if grew == 0 {
		t.Error("expected some tiny images to grow under PNG, like the paper")
	}
	// MNG beats animated GIF clearly (paper: 24988 → 16329).
	if rep.AnimSaved() <= 0 {
		t.Fatalf("MNG conversion grew animations: %d → %d", rep.AnimGIF, rep.AnimMNG)
	}
	// Converted files must be valid.
	for _, img := range s.Images {
		if img.Static() {
			data, err := pngenc.Encode(toPNGImage(img.Image), pngenc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pngenc.Decode(data); err != nil {
				t.Fatalf("%s: converted PNG invalid: %v", img.Spec.Name, err)
			}
		}
	}
}

func TestRoleStrings(t *testing.T) {
	for r := RoleSpacer; r <= RoleAnimation; r++ {
		if r.String() == "unknown" {
			t.Errorf("role %d unnamed", r)
		}
	}
	if !RoleBanner.Replaceable() || RolePhoto.Replaceable() {
		t.Fatal("replaceability wrong")
	}
}

func TestSpecTargetsMatchPaperTotals(t *testing.T) {
	var static, anim int
	count := map[Role]int{}
	for _, s := range MicroscapeSpecs() {
		count[s.Role]++
		if s.Role == RoleAnimation {
			anim += s.Target
		} else {
			static += s.Target
		}
	}
	if static != PaperStaticGIFBytes {
		t.Fatalf("static targets sum to %d, want %d", static, PaperStaticGIFBytes)
	}
	if anim != PaperAnimationGIFBytes {
		t.Fatalf("animation targets sum to %d, want %d", anim, PaperAnimationGIFBytes)
	}
	if count[RoleAnimation] != 2 {
		t.Fatalf("animations = %d, want 2", count[RoleAnimation])
	}
}

func TestTagCaseString(t *testing.T) {
	if TagsLower.String() != "lower" || TagsMixed.String() != "mixed" || TagsUpper.String() != "upper" {
		t.Fatal("tag case names wrong")
	}
}

func TestHTMLContainsNoUnclosedTables(t *testing.T) {
	s := site(t)
	html := string(s.HTML.Body)
	if strings.Count(html, "<table") != strings.Count(html, "</table>") {
		t.Fatal("unbalanced tables")
	}
	if strings.Count(html, "<p>") != strings.Count(html, "</p>") {
		t.Fatal("unbalanced paragraphs")
	}
}

func TestRevise(t *testing.T) {
	s := site(t)
	revised, err := s.Revise(0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if revised.ObjectCount() != s.ObjectCount() {
		t.Fatalf("revision changed object count: %d vs %d", revised.ObjectCount(), s.ObjectCount())
	}
	for i, p := range s.Paths() {
		if revised.Paths()[i] != p {
			t.Fatalf("revision changed paths: %s vs %s", revised.Paths()[i], p)
		}
	}
	changed := revised.ChangedFrom(s)
	// The page always changes; ~30% of 42 images should.
	if changed < 8 || changed > 22 {
		t.Fatalf("changed objects = %d, want ≈13", changed)
	}
	// The page must be among the changed.
	a, _ := revised.Object("/")
	b, _ := s.Object("/")
	if a.ETag == b.ETag {
		t.Fatal("revision did not change the page")
	}
	if a.LastModified == b.LastModified {
		t.Fatal("revised page kept the old Last-Modified")
	}
	// Unchanged objects keep identical bytes and validators.
	same := 0
	for _, p := range s.Paths()[1:] {
		ra, _ := revised.Object(p)
		rb, _ := s.Object(p)
		if ra.ETag == rb.ETag {
			if !bytes.Equal(ra.Body, rb.Body) {
				t.Fatalf("%s: same ETag, different body", p)
			}
			same++
		}
	}
	if same == 0 {
		t.Fatal("no object survived the revision unchanged")
	}
	// Deterministic.
	again, err := s.Revise(0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if again.ChangedFrom(revised) != 0 {
		t.Fatal("revision not deterministic")
	}
}

func TestCSSReplacementRulesMatchTheirMarkup(t *testing.T) {
	// End-to-end through the CSS1 engine: every generated replacement
	// rule must actually match the element its markup creates, and give
	// banners the font/background treatment of the paper's Figure 1.
	s := site(t)
	rep := s.CSSReplacements()
	var src strings.Builder
	for _, r := range rep.Replacements {
		src.WriteString(r.Style)
		src.WriteString("\n")
	}
	sheet, err := css.Parse(src.String())
	if err != nil {
		t.Fatalf("generated styles do not parse: %v", err)
	}
	if warns := sheet.Validate(); len(warns) != 0 {
		t.Fatalf("generated styles use non-CSS1 properties: %v", warns)
	}
	cascade := css.NewCascade(sheet)
	for _, r := range rep.Replacements {
		if r.Markup == "" {
			continue // spacers are replaced by layout properties alone
		}
		var z htmlparse.Tokenizer
		toks := z.Feed([]byte(r.Markup + ">"))
		var elem css.Element
		found := false
		for _, tok := range toks {
			if tok.Type == htmlparse.StartTag {
				elem.Tag = tok.Data
				if class, ok := tok.Attr("class"); ok {
					elem.Classes = []string{class}
				}
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: markup %q has no start tag", r.Name, r.Markup)
			continue
		}
		style := cascade.Style([]css.Element{elem})
		if len(style) == 0 {
			t.Errorf("%s: no rule matches markup %q", r.Name, r.Markup)
			continue
		}
		if r.Role == RoleBanner {
			for _, prop := range []string{"color", "background", "font", "padding"} {
				if _, ok := style[prop]; !ok {
					t.Errorf("%s: banner style missing %q", r.Name, prop)
				}
			}
		}
	}
}
