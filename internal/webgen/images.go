package webgen

import (
	"fmt"

	"repro/internal/gifenc"
	"repro/internal/sim"
)

// SynthImage is one synthesized site image with its encodings.
type SynthImage struct {
	Spec   Spec
	Image  *gifenc.Image  // static image (nil for animations)
	Frames []gifenc.Frame // animation frames (nil for statics)
	GIF    []byte         // encoded GIF
}

// Static reports whether the image is a single frame.
func (s *SynthImage) Static() bool { return s.Spec.Role != RoleAnimation }

// FirstFrame returns the image content (first frame for animations).
func (s *SynthImage) FirstFrame() *gifenc.Image {
	if s.Image != nil {
		return s.Image
	}
	return s.Frames[0].Image
}

// Synthesize builds an image whose encoded GIF size approximates
// spec.Target. Synthesis is deterministic in (spec, seed).
func Synthesize(spec Spec, seed uint64) (*SynthImage, error) {
	if spec.Role == RoleAnimation {
		return synthesizeAnimation(spec, seed)
	}
	// Binary search a scale parameter; encoded size grows monotonically
	// with scale for a fixed style.
	lo, hi := 1, 600
	var best *SynthImage
	bestErr := 1 << 30
	for lo <= hi {
		mid := (lo + hi) / 2
		img := renderStatic(spec, mid, seed)
		data, err := gifenc.Encode(img)
		if err != nil {
			return nil, err
		}
		if d := abs(len(data) - spec.Target); d < bestErr {
			bestErr = d
			best = &SynthImage{Spec: spec, Image: img, GIF: data}
		}
		if len(data) < spec.Target {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best == nil {
		return nil, fmt.Errorf("webgen: could not synthesize %s", spec.Name)
	}
	return best, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// nameHash mixes an image name into the synthesis seed (FNV-1a) so
// same-length specs do not produce identical pixels.
func nameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// renderStatic draws an image of the given style at a scale.
func renderStatic(spec Spec, scale int, seed uint64) *gifenc.Image {
	rng := sim.NewRand(seed ^ nameHash(spec.Name) ^ uint64(scale)<<48)
	switch spec.Role {
	case RoleSpacer:
		// Thin rules and spacers: mostly flat with dithered edges, so
		// size grows steadily with width.
		w := 4 * scale
		img := newImage(w, 2, 2)
		for i := range img.Pixels {
			if rng.Intn(3) == 0 {
				img.Pixels[i] = 1
			}
		}
		return img
	case RoleBullet:
		// Small disc/arrow glyphs with a little anti-aliasing noise.
		s := 4 + scale/2
		img := newImage(s, s, 4)
		cx, cy := s/2, s/2
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				dx, dy := x-cx, y-cy
				switch {
				case dx*dx+dy*dy < (s*s)/9:
					img.Pixels[y*s+x] = 1
				case dx*dx+dy*dy < (s*s)/6:
					img.Pixels[y*s+x] = 2
				}
				if rng.Intn(24) == 0 {
					img.Pixels[y*s+x] = byte(rng.Intn(4))
				}
			}
		}
		return img
	case RoleBanner:
		// Wide text-as-image: blocky glyph pattern on a flat background,
		// like the paper's "solutions" banner.
		w, h := 6*scale, 2+scale/2
		if h < 8 {
			h = 8
		}
		img := newImage(w, h, 4)
		// Background color 1 (the #FC0 of Figure 1), glyph color 0.
		for i := range img.Pixels {
			img.Pixels[i] = 1
		}
		x := h / 2
		for x+h/2 < w*2/3 {
			glyphW := h/2 + rng.Intn(h/2+1)
			drawGlyph(img, x, h/4, glyphW, h/2, rng)
			x += glyphW + h/4
		}
		return img
	case RoleIcon:
		// Structured art with moderate noise.
		s := 4 + scale
		img := newImage(s, s, 16)
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				c := (x/3 + y/3) % 8
				if rng.Intn(6) == 0 {
					c = 8 + rng.Intn(8)
				}
				img.Pixels[y*s+x] = byte(c)
			}
		}
		return img
	case RolePhoto:
		// High-entropy dithered content: compresses poorly, like
		// photographic GIFs.
		w := 5 * scale / 2
		h := 3 * scale / 2
		if w < 4 {
			w = 4
		}
		if h < 4 {
			h = 4
		}
		img := newImage(w, h, 128)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				base := (x*255/w + y*255/h) / 4
				img.Pixels[y*w+x] = byte((base + rng.Intn(96)) % 128)
			}
		}
		return img
	default:
		panic("webgen: renderStatic on animation spec")
	}
}

func newImage(w, h, colors int) *gifenc.Image {
	img := &gifenc.Image{W: w, H: h, Palette: make([]gifenc.Color, colors), Pixels: make([]byte, w*h)}
	for i := range img.Palette {
		img.Palette[i] = gifenc.Color{R: byte(17 * i), G: byte(11*i + 64), B: byte(7*i + 128)}
	}
	// Entry 1 is the Figure 1 banner background (#FC0).
	if colors > 1 {
		img.Palette[1] = gifenc.Color{R: 0xFF, G: 0xCC, B: 0x00}
	}
	return img
}

// drawGlyph draws a blocky letterform-like shape.
func drawGlyph(img *gifenc.Image, x0, y0, w, h int, rng *sim.Rand) {
	kind := rng.Intn(4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px, py := x0+x, y0+y
			if px >= img.W || py >= img.H {
				continue
			}
			var on bool
			switch kind {
			case 0: // vertical bars
				on = x < w/4 || x >= w-w/4
			case 1: // ring
				on = x < w/4 || x >= w-w/4 || y < h/4 || y >= h-h/4
			case 2: // diagonal
				on = abs(x*h-y*w) < h*w/4
			default: // horizontal bars
				on = y < h/4 || (y >= h/2-h/8 && y < h/2+h/8)
			}
			if on {
				img.Pixels[py*img.W+px] = 0
			}
		}
	}
}

// synthesizeAnimation builds an N-frame animated GIF near the target.
func synthesizeAnimation(spec Spec, seed uint64) (*SynthImage, error) {
	const nFrames = 5
	lo, hi := 1, 400
	var best *SynthImage
	bestErr := 1 << 30
	for lo <= hi {
		mid := (lo + hi) / 2
		frames := renderAnimation(spec, mid, seed, nFrames)
		data, err := gifenc.EncodeAnimation(frames, 0)
		if err != nil {
			return nil, err
		}
		if d := abs(len(data) - spec.Target); d < bestErr {
			bestErr = d
			best = &SynthImage{Spec: spec, Frames: frames, GIF: data}
		}
		if len(data) < spec.Target {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best == nil {
		return nil, fmt.Errorf("webgen: could not synthesize %s", spec.Name)
	}
	return best, nil
}

// renderAnimation draws frames that share a palette and differ by a
// moving highlight, like a rotating-logo banner ad.
func renderAnimation(spec Spec, scale int, seed uint64, nFrames int) []gifenc.Frame {
	w, h := 4*scale, scale
	if h < 8 {
		h = 8
	}
	rng := sim.NewRand(seed ^ nameHash(spec.Name) ^ 0xA11A)
	base := newImage(w, h, 32)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := (x/4 + y/4) % 12
			if rng.Intn(5) == 0 {
				c = 12 + rng.Intn(20)
			}
			base.Pixels[y*w+x] = byte(c)
		}
	}
	var frames []gifenc.Frame
	for f := 0; f < nFrames; f++ {
		img := &gifenc.Image{W: w, H: h, Palette: base.Palette, Pixels: append([]byte(nil), base.Pixels...)}
		// The moving highlight band plus a little per-frame sparkle, so
		// consecutive frames are similar but not identical.
		x0 := f * w / nFrames
		for y := 0; y < h; y++ {
			for x := x0; x < x0+w/8 && x < w; x++ {
				img.Pixels[y*w+x] = byte(20 + (x+y)%12)
			}
		}
		for i := range img.Pixels {
			if rng.Intn(160) == 0 {
				img.Pixels[i] = byte(rng.Intn(32))
			}
		}
		frames = append(frames, gifenc.Frame{Image: img, DelayCS: 15})
	}
	return frames
}
