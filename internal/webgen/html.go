package webgen

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// TagCase selects the letter case of HTML tags and attribute names. The
// paper found deflate compresses lower-case markup noticeably better
// (ratio ~0.27 vs ~0.35 for mixed case).
type TagCase int

// Tag case modes.
const (
	TagsLower TagCase = iota
	TagsMixed
	TagsUpper
)

// String names the mode.
func (c TagCase) String() string {
	switch c {
	case TagsLower:
		return "lower"
	case TagsMixed:
		return "mixed"
	case TagsUpper:
		return "upper"
	}
	return "unknown"
}

// HTMLOptions tunes page generation.
type HTMLOptions struct {
	// TargetBytes is the approximate page size (default 42000).
	TargetBytes int
	// Images lists the inline image URLs, in the order they should
	// appear.
	Images []string
	// TagCase selects markup letter case (default lower).
	TagCase TagCase
	// Seed makes the filler text deterministic.
	Seed uint64
	// InlineCSS, when non-empty, is inserted as a <style> block in the
	// head (used by the CSSified page variant).
	InlineCSS string
	// ExtraMarkup is appended inside <body> before the filler (used by
	// the CSSified variant for image replacements).
	ExtraMarkup string
}

// words is the vocabulary for deterministic filler text. It is broad
// enough that prose does not collapse under LZ77, so the page's deflate
// ratio lands near the paper's ~0.27 rather than being dominated by
// repeated phrases; it also includes words that collide with markup
// (table, font, center, ...) — the effect behind the paper's tag-case
// compression note.
var words = strings.Fields(`
the of and to in is that for with as on by this from at are was be or
an it not has have will can its all one two new now our your their
product software network server internet solution enterprise download
support developer news platform performance security connect business
data web free online help technology service tool update world release
information system page customer click here home index global fast easy
power user guide more learn build create manage deploy discover explore
search browse read write share publish subscribe register account order
purchase catalog price offer special feature benefit advantage partner
channel market industry standard protocol transfer document image
graphic table font center border layout style sheet script frame anchor
link title header footer margin padding align width height content
cache proxy gateway request response header body packet segment stream
buffer socket connection session transaction latency bandwidth
throughput capacity reliability compatibility integration architecture
component module interface library framework application desktop mobile
wireless broadband ethernet modem dialup backbone router switch bridge
domain address protocolsuite version upgrade install configure optimize
monitor measure analyze report summary overview detail example tutorial
reference manual specification recommendation consortium committee
member community forum discussion feedback contact about press investor
career education research laboratory university institute project team
group division region country language international localization`)

// htmlEmitter builds the page applying the tag-case transform.
type htmlEmitter struct {
	b       strings.Builder
	tagCase TagCase
	rng     *sim.Rand
}

// tag renders a tag name in the configured case.
func (e *htmlEmitter) tag(name string) string {
	switch e.tagCase {
	case TagsUpper:
		return strings.ToUpper(name)
	case TagsMixed:
		// Capitalized form, the common editor output of the era.
		return strings.ToUpper(name[:1]) + name[1:]
	default:
		return name
	}
}

func (e *htmlEmitter) open(name string, attrs ...string) {
	e.b.WriteByte('<')
	e.b.WriteString(e.tag(name))
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&e.b, " %s=%q", e.tag(attrs[i]), attrs[i+1])
	}
	e.b.WriteByte('>')
}

func (e *htmlEmitter) close(name string) {
	e.b.WriteString("</")
	e.b.WriteString(e.tag(name))
	e.b.WriteByte('>')
}

func (e *htmlEmitter) text(s string) { e.b.WriteString(s) }

func (e *htmlEmitter) sentence(n int) string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, words[e.rng.Intn(len(words))])
	}
	s := strings.Join(out, " ")
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

// GenerateHTML builds the Microscape page.
func GenerateHTML(opts HTMLOptions) []byte {
	if opts.TargetBytes == 0 {
		opts.TargetBytes = PaperHTMLBytes
	}
	e := &htmlEmitter{tagCase: opts.TagCase, rng: sim.NewRand(opts.Seed ^ 0x7431)}

	e.open("html")
	e.open("head")
	e.open("title")
	e.text("Microscape - Welcome")
	e.close("title")
	e.open("meta", "name", "description", "content", "The Microscape home page: products, downloads, news and support")
	if opts.InlineCSS != "" {
		e.open("style", "type", "text/css")
		e.text("\n")
		e.text(opts.InlineCSS)
		e.text("\n")
		e.close("style")
	}
	e.close("head")
	e.text("\n")
	e.open("body", "bgcolor", "#ffffff", "link", "#0000cc", "vlink", "#551a8b")
	e.text("\n")

	if opts.ExtraMarkup != "" {
		e.text(opts.ExtraMarkup)
		e.text("\n")
	}

	// Masthead and nav tables interleave the images with link-heavy
	// markup, like the source pages the paper combined.
	images := opts.Images
	imgAt := 0
	emitImg := func() {
		if imgAt >= len(images) {
			return
		}
		e.open("img", "src", images[imgAt], "alt", fmt.Sprintf("img%d", imgAt), "border", "0")
		imgAt++
	}

	// Masthead row: the first few images.
	e.open("table", "border", "0", "cellpadding", "0", "cellspacing", "0", "width", "100%")
	e.open("tr")
	for i := 0; i < 4 && imgAt < len(images); i++ {
		e.open("td", "align", "center")
		e.open("a", "href", fmt.Sprintf("/nav/%d/index.html", i))
		emitImg()
		e.close("a")
		e.close("td")
	}
	e.close("tr")
	e.close("table")
	e.text("\n")

	section := 0
	for imgAt < len(images) || e.b.Len() < opts.TargetBytes-400 {
		section++
		e.open("h2")
		e.text(fmt.Sprintf("Section %d: %s", section, e.sentence(3)))
		e.close("h2")
		e.text("\n")

		// A nav strip with a few images.
		e.open("table", "border", "0", "cellpadding", "2", "cellspacing", "0")
		e.open("tr")
		for i := 0; i < 3 && imgAt < len(images); i++ {
			e.open("td")
			e.open("a", "href", fmt.Sprintf("/section/%d/item%d.html", section, i))
			emitImg()
			e.close("a")
			e.open("font", "size", "2", "face", "arial,helvetica")
			e.text(e.sentence(4))
			e.close("font")
			e.close("td")
		}
		e.close("tr")
		e.close("table")
		e.text("\n")

		// Filler paragraphs with inline links.
		for p := 0; p < 3; p++ {
			e.open("p")
			e.text(e.sentence(10 + e.rng.Intn(10)))
			e.text(" ")
			e.open("a", "href", fmt.Sprintf("/doc/%d/%d.html", section, p))
			e.text(e.sentence(2))
			e.close("a")
			e.text(" ")
			e.text(e.sentence(8 + e.rng.Intn(12)))
			e.close("p")
			e.text("\n")
			if e.b.Len() >= opts.TargetBytes-400 && imgAt >= len(images) {
				break
			}
		}
		if section > 400 {
			break // safety net; never reached with sane targets
		}
	}

	e.open("hr")
	e.open("address")
	e.text("webmaster@microscape.example - Copyright 1997")
	e.close("address")
	e.close("body")
	e.close("html")
	e.text("\n")
	return []byte(e.b.String())
}
