// Package pngenc implements a PNG (RFC 2083) encoder and decoder and a
// minimal MNG-LC animation container, providing the "after" side of the
// paper's image-format experiment (GIF→PNG, animated GIF→MNG).
//
// The encoder writes paletted (color type 3) or truecolor (color type 2)
// images with adaptive per-scanline filtering, a gAMA chunk (the paper
// notes the converted images carry gamma information costing 16 bytes per
// image), and IDAT compressed with this repository's own zlib
// (internal/flatez). Output is cross-validated against the standard
// library's image/png decoder in the package tests.
package pngenc

import (
	"errors"
	"fmt"

	"repro/internal/flatez"
)

// ErrFormat reports data that is not valid PNG.
var ErrFormat = errors.New("pngenc: invalid PNG data")

var pngSignature = []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}

// Color is an RGB palette entry.
type Color struct{ R, G, B byte }

// Image is a paletted image (the shape shared with gifenc, so conversion
// is lossless).
type Image struct {
	W, H    int
	Palette []Color
	Pixels  []byte // W*H palette indices
}

// Validate checks structural invariants.
func (m *Image) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("pngenc: bad dimensions %dx%d", m.W, m.H)
	}
	if len(m.Palette) < 1 || len(m.Palette) > 256 {
		return fmt.Errorf("pngenc: palette size %d out of range", len(m.Palette))
	}
	if len(m.Pixels) != m.W*m.H {
		return fmt.Errorf("pngenc: %d pixels for %dx%d image", len(m.Pixels), m.W, m.H)
	}
	for i, p := range m.Pixels {
		if int(p) >= len(m.Palette) {
			return fmt.Errorf("pngenc: pixel %d references color %d beyond palette", i, p)
		}
	}
	return nil
}

// bitDepth picks the smallest PNG palette bit depth for n colors.
func bitDepth(n int) int {
	switch {
	case n <= 2:
		return 1
	case n <= 4:
		return 2
	case n <= 16:
		return 4
	default:
		return 8
	}
}

// Options tunes encoding.
type Options struct {
	// Level is the deflate level (default 6).
	Level int
	// NoGamma omits the gAMA chunk (16 bytes), for size ablations.
	NoGamma bool
	// Interlace selects Adam7 interlacing — PNG's progressive-display
	// mode, behind the paper's "time to render benefits relative to GIF".
	Interlace bool
}

// Encode serializes the image as a paletted PNG.
func Encode(img *Image, opts Options) ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if opts.Level == 0 {
		opts.Level = 6
	}
	depth := bitDepth(len(img.Palette))

	out := append([]byte(nil), pngSignature...)
	ihdr := make([]byte, 13)
	putU32(ihdr[0:], uint32(img.W))
	putU32(ihdr[4:], uint32(img.H))
	ihdr[8] = byte(depth)
	ihdr[9] = 3 // color type: palette
	if opts.Interlace {
		ihdr[12] = 1 // Adam7
	}
	out = appendChunk(out, "IHDR", ihdr)

	if !opts.NoGamma {
		gama := make([]byte, 4)
		putU32(gama, 45455) // gamma 1/2.2 scaled by 100000
		out = appendChunk(out, "gAMA", gama)
	}

	plte := make([]byte, 3*len(img.Palette))
	for i, c := range img.Palette {
		plte[3*i], plte[3*i+1], plte[3*i+2] = c.R, c.G, c.B
	}
	out = appendChunk(out, "PLTE", plte)

	var filtered []byte
	if opts.Interlace {
		filtered = interlaceScanlines(img, depth)
	} else {
		raw := packScanlines(img, depth)
		filtered = filterScanlines(raw, img.H, rowBytes(img.W, depth), 1)
	}
	out = appendChunk(out, "IDAT", flatez.ZlibCompress(filtered, opts.Level))
	out = appendChunk(out, "IEND", nil)
	return out, nil
}

// rowBytes is the packed size of one scanline at the given depth.
func rowBytes(w, depth int) int { return (w*depth + 7) / 8 }

// packScanlines packs palette indices at the given bit depth, one row per
// scanline, without filter bytes.
func packScanlines(img *Image, depth int) []byte {
	rb := rowBytes(img.W, depth)
	out := make([]byte, rb*img.H)
	for y := 0; y < img.H; y++ {
		row := out[y*rb:]
		switch depth {
		case 8:
			copy(row, img.Pixels[y*img.W:(y+1)*img.W])
		default:
			perByte := 8 / depth
			for x := 0; x < img.W; x++ {
				v := img.Pixels[y*img.W+x]
				shift := uint((perByte - 1 - x%perByte) * depth)
				row[x/perByte] |= v << shift
			}
		}
	}
	return out
}

// filterScanlines applies per-row adaptive filtering (minimum sum of
// absolute differences heuristic) and prepends the filter byte to each
// row. bpp is the bytes per pixel used for the left-neighbour offset
// (1 for packed palette data).
func filterScanlines(raw []byte, h, rb, bpp int) []byte {
	out := make([]byte, 0, (rb+1)*h)
	prev := make([]byte, rb)
	cand := make([][]byte, 5)
	for i := range cand {
		cand[i] = make([]byte, rb)
	}
	for y := 0; y < h; y++ {
		row := raw[y*rb : (y+1)*rb]
		for i := 0; i < rb; i++ {
			var left, up, ul byte
			if i >= bpp {
				left = row[i-bpp]
				ul = prev[i-bpp]
			}
			up = prev[i]
			cand[0][i] = row[i]
			cand[1][i] = row[i] - left
			cand[2][i] = row[i] - up
			cand[3][i] = row[i] - byte((int(left)+int(up))/2)
			cand[4][i] = row[i] - paeth(left, up, ul)
		}
		best, bestScore := 0, -1
		for f := 0; f < 5; f++ {
			score := 0
			for _, b := range cand[f] {
				v := int(int8(b))
				if v < 0 {
					v = -v
				}
				score += v
			}
			if bestScore < 0 || score < bestScore {
				best, bestScore = f, score
			}
		}
		out = append(out, byte(best))
		out = append(out, cand[best]...)
		copy(prev, row)
	}
	return out
}

// paeth is the PNG Paeth predictor.
func paeth(a, b, c byte) byte {
	p := int(a) + int(b) - int(c)
	pa, pb, pc := abs(p-int(a)), abs(p-int(b)), abs(p-int(c))
	if pa <= pb && pa <= pc {
		return a
	}
	if pb <= pc {
		return b
	}
	return c
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// appendChunk appends a PNG chunk: length, type, data, CRC.
func appendChunk(out []byte, typ string, data []byte) []byte {
	var lenb [4]byte
	putU32(lenb[:], uint32(len(data)))
	out = append(out, lenb[:]...)
	start := len(out)
	out = append(out, typ...)
	out = append(out, data...)
	crc := CRC32(out[start:])
	var crcb [4]byte
	putU32(crcb[:], crc)
	return append(out, crcb[:]...)
}

// Decode parses a paletted PNG produced by this package (or any baseline
// non-interlaced paletted/truecolor PNG).
func Decode(data []byte) (*Image, error) {
	chunks, err := parseChunks(data)
	if err != nil {
		return nil, err
	}
	var (
		w, h, depth, colorType int
		interlaced             bool
		pal                    []Color
		idat                   []byte
		sawIHDR, sawIEND       bool
	)
	for _, c := range chunks {
		switch c.typ {
		case "IHDR":
			if len(c.data) != 13 {
				return nil, fmt.Errorf("%w: IHDR length %d", ErrFormat, len(c.data))
			}
			w, h = int(getU32(c.data[0:])), int(getU32(c.data[4:]))
			depth = int(c.data[8])
			colorType = int(c.data[9])
			switch c.data[12] {
			case 0:
			case 1:
				interlaced = true
			default:
				return nil, fmt.Errorf("%w: unknown interlace method %d", ErrFormat, c.data[12])
			}
			sawIHDR = true
		case "PLTE":
			if len(c.data)%3 != 0 {
				return nil, fmt.Errorf("%w: PLTE length %d", ErrFormat, len(c.data))
			}
			pal = make([]Color, len(c.data)/3)
			for i := range pal {
				pal[i] = Color{c.data[3*i], c.data[3*i+1], c.data[3*i+2]}
			}
		case "IDAT":
			idat = append(idat, c.data...)
		case "IEND":
			sawIEND = true
		}
	}
	if !sawIHDR || !sawIEND || idat == nil {
		return nil, fmt.Errorf("%w: missing critical chunks", ErrFormat)
	}
	if colorType != 3 {
		return nil, fmt.Errorf("%w: color type %d unsupported by this decoder", ErrFormat, colorType)
	}
	if pal == nil {
		return nil, fmt.Errorf("%w: paletted image without PLTE", ErrFormat)
	}
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrFormat, w, h)
	}
	switch depth {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("%w: bit depth %d", ErrFormat, depth)
	}

	filtered, err := flatez.ZlibDecompress(idat)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}

	img := &Image{W: w, H: h, Palette: pal}
	if interlaced {
		pixels, err := deinterlaceScanlines(filtered, w, h, depth)
		if err != nil {
			return nil, err
		}
		img.Pixels = pixels
	} else {
		rb := rowBytes(w, depth)
		if len(filtered) != (rb+1)*h {
			return nil, fmt.Errorf("%w: %d bytes of scanlines for %dx%d depth %d", ErrFormat, len(filtered), w, h, depth)
		}
		raw, err := unfilterScanlines(filtered, h, rb, 1)
		if err != nil {
			return nil, err
		}
		img.Pixels = make([]byte, w*h)
		perByte := 8 / depth
		for y := 0; y < h; y++ {
			row := raw[y*rb:]
			for x := 0; x < w; x++ {
				var v byte
				if depth == 8 {
					v = row[x]
				} else {
					shift := uint((perByte - 1 - x%perByte) * depth)
					v = row[x/perByte] >> shift & (1<<depth - 1)
				}
				img.Pixels[y*w+x] = v
			}
		}
	}
	for i, v := range img.Pixels {
		if int(v) >= len(pal) {
			return nil, fmt.Errorf("%w: pixel %d index %d beyond palette", ErrFormat, i, v)
		}
	}
	return img, nil
}

func unfilterScanlines(filtered []byte, h, rb, bpp int) ([]byte, error) {
	raw := make([]byte, rb*h)
	prev := make([]byte, rb)
	for y := 0; y < h; y++ {
		ft := filtered[y*(rb+1)]
		row := filtered[y*(rb+1)+1 : (y+1)*(rb+1)]
		out := raw[y*rb : (y+1)*rb]
		for i := 0; i < rb; i++ {
			var left, up, ul byte
			if i >= bpp {
				left = out[i-bpp]
				ul = prev[i-bpp]
			}
			up = prev[i]
			switch ft {
			case 0:
				out[i] = row[i]
			case 1:
				out[i] = row[i] + left
			case 2:
				out[i] = row[i] + up
			case 3:
				out[i] = row[i] + byte((int(left)+int(up))/2)
			case 4:
				out[i] = row[i] + paeth(left, up, ul)
			default:
				return nil, fmt.Errorf("%w: filter type %d", ErrFormat, ft)
			}
		}
		copy(prev, out)
	}
	return raw, nil
}

type chunk struct {
	typ  string
	data []byte
}

func parseChunks(data []byte) ([]chunk, error) {
	if len(data) < len(pngSignature) || string(data[:8]) != string(pngSignature) {
		return nil, fmt.Errorf("%w: bad signature", ErrFormat)
	}
	pos := 8
	var chunks []chunk
	for pos < len(data) {
		if pos+8 > len(data) {
			return nil, fmt.Errorf("%w: truncated chunk header", ErrFormat)
		}
		n := int(getU32(data[pos:]))
		if pos+12+n > len(data) {
			return nil, fmt.Errorf("%w: truncated chunk body", ErrFormat)
		}
		typ := string(data[pos+4 : pos+8])
		body := data[pos+8 : pos+8+n]
		wantCRC := getU32(data[pos+8+n:])
		if got := CRC32(data[pos+4 : pos+8+n]); got != wantCRC {
			return nil, fmt.Errorf("%w: CRC mismatch in %s", ErrFormat, typ)
		}
		chunks = append(chunks, chunk{typ: typ, data: body})
		pos += 12 + n
	}
	return chunks, nil
}
