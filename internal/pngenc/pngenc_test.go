package pngenc

import (
	"bytes"
	"hash/crc32"
	"image"
	stdpng "image/png"
	"testing"
	"testing/quick"
)

// testImage builds a deterministic paletted image with banner-like
// content.
func testImage(w, h, colors int, seed uint64) *Image {
	img := &Image{W: w, H: h, Palette: make([]Color, colors), Pixels: make([]byte, w*h)}
	for i := range img.Palette {
		img.Palette[i] = Color{byte(i * 41), byte(i * 13), byte(i * 89)}
	}
	s := seed
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := (x/8 + y/6) % colors
			s = s*6364136223846793005 + 1442695040888963407
			if s>>61 == 0 {
				c = int(s>>32) % colors
			}
			img.Pixels[y*w+x] = byte(c)
		}
	}
	return img
}

func TestCRC32MatchesStdlib(t *testing.T) {
	inputs := [][]byte{nil, {0}, []byte("IHDR"), bytes.Repeat([]byte("png!"), 1000)}
	for _, in := range inputs {
		if got, want := CRC32(in), crc32.ChecksumIEEE(in); got != want {
			t.Fatalf("CRC32(%d bytes) = %08x, want %08x", len(in), got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct{ w, h, colors int }{
		{1, 1, 2}, {7, 3, 2}, {31, 17, 4}, {64, 48, 16}, {90, 30, 200},
	} {
		img := testImage(tc.w, tc.h, tc.colors, 5)
		data, err := Encode(img, Options{})
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", tc, err)
		}
		if got.W != img.W || got.H != img.H || !bytes.Equal(got.Pixels, img.Pixels) {
			t.Fatalf("%v: round trip mismatch", tc)
		}
		for i := range img.Palette {
			if got.Palette[i] != img.Palette[i] {
				t.Fatalf("%v: palette entry %d mismatch", tc, i)
			}
		}
	}
}

func TestStdlibCanDecodeOurPNG(t *testing.T) {
	for _, colors := range []int{2, 4, 16, 256} {
		img := testImage(60, 40, colors, 7)
		data, err := Encode(img, Options{})
		if err != nil {
			t.Fatal(err)
		}
		std, err := stdpng.Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("colors=%d: stdlib rejected our PNG: %v", colors, err)
		}
		pimg, ok := std.(*image.Paletted)
		if !ok {
			t.Fatalf("colors=%d: stdlib decoded %T, want paletted", colors, std)
		}
		if pimg.Bounds().Dx() != img.W || pimg.Bounds().Dy() != img.H {
			t.Fatalf("stdlib dimensions mismatch")
		}
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				if pimg.ColorIndexAt(x, y) != img.Pixels[y*img.W+x] {
					t.Fatalf("colors=%d: pixel (%d,%d) differs under stdlib", colors, x, y)
				}
			}
		}
	}
}

func TestGammaChunkCosts16Bytes(t *testing.T) {
	// The paper: "the converted PNG and MNG files contain gamma
	// information ... this adds 16 bytes per image."
	img := testImage(40, 20, 8, 1)
	with, err := Encode(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Encode(img, Options{NoGamma: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with)-len(without) != 16 {
		t.Fatalf("gAMA chunk costs %d bytes, want 16", len(with)-len(without))
	}
}

func TestLowBitDepthPacking(t *testing.T) {
	// 2 colors → 1 bit/pixel: a 64x64 bilevel image should be tiny.
	img := testImage(64, 64, 2, 3)
	data, err := Encode(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 700 {
		t.Fatalf("bilevel 64x64 PNG is %d bytes; packing broken?", len(data))
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pixels, img.Pixels) {
		t.Fatal("bilevel round trip mismatch")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	img := testImage(20, 20, 4, 9)
	data, _ := Encode(img, Options{})
	// Flip a byte inside the IDAT payload: the chunk CRC must catch it.
	data[len(data)-20] ^= 0xff
	if _, err := Decode(data); err == nil {
		t.Fatal("corrupted PNG accepted")
	}
	if _, err := Decode([]byte("not a png at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(data[:10]); err == nil {
		t.Fatal("truncated PNG accepted")
	}
}

func TestValidateRejectsBadImages(t *testing.T) {
	bad := []*Image{
		{W: 0, H: 1, Palette: make([]Color, 2), Pixels: nil},
		{W: 1, H: 1, Palette: nil, Pixels: []byte{0}},
		{W: 1, H: 1, Palette: make([]Color, 2), Pixels: []byte{5}},
		{W: 2, H: 2, Palette: make([]Color, 2), Pixels: []byte{0}},
	}
	for i, img := range bad {
		if _, err := Encode(img, Options{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMNGRoundTrip(t *testing.T) {
	var frames []*Image
	delays := []int{10, 20, 30}
	for i := 0; i < 3; i++ {
		frames = append(frames, testImage(32, 24, 16, uint64(i+1)))
	}
	data, err := EncodeMNG(frames, delays, Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := DecodeMNG(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.W != 32 || info.H != 24 {
		t.Fatalf("MNG dims %dx%d", info.W, info.H)
	}
	if len(info.Frames) != 3 {
		t.Fatalf("MNG frames = %d, want 3", len(info.Frames))
	}
	for i := range frames {
		if !bytes.Equal(info.Frames[i].Pixels, frames[i].Pixels) {
			t.Fatalf("frame %d pixels differ", i)
		}
		if info.DelaysCS[i] != delays[i] {
			t.Fatalf("frame %d delay %d, want %d", i, info.DelaysCS[i], delays[i])
		}
	}
}

func TestMNGValidation(t *testing.T) {
	frames := []*Image{testImage(8, 8, 4, 1), testImage(16, 16, 4, 2)}
	if _, err := EncodeMNG(frames, []int{1, 1}, Options{}); err == nil {
		t.Fatal("mismatched frame sizes accepted")
	}
	if _, err := EncodeMNG(nil, nil, Options{}); err == nil {
		t.Fatal("empty animation accepted")
	}
	if _, err := EncodeMNG(frames[:1], []int{1, 2}, Options{}); err == nil {
		t.Fatal("delay count mismatch accepted")
	}
	if _, err := DecodeMNG([]byte("garbage")); err == nil {
		t.Fatal("garbage MNG accepted")
	}
}

func TestMNGSharesPalette(t *testing.T) {
	// The per-frame savings: a 3-frame MNG must be well under 3x a
	// single-frame PNG of the same content, since PLTE and gAMA are not
	// repeated.
	frames := []*Image{}
	for i := 0; i < 3; i++ {
		frames = append(frames, testImage(48, 48, 256, uint64(i+10)))
	}
	mng, err := EncodeMNG(frames, []int{5, 5, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Encode(frames[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mng) >= 3*len(single) {
		t.Fatalf("MNG %d bytes vs 3x single %d: no shared-palette saving", len(mng), 3*len(single))
	}
}

// Property: arbitrary valid images round-trip through PNG.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(wRaw, hRaw, colRaw uint8, pix []byte) bool {
		w := int(wRaw)%50 + 1
		h := int(hRaw)%50 + 1
		colors := int(colRaw)%255 + 2
		img := &Image{W: w, H: h, Palette: make([]Color, colors), Pixels: make([]byte, w*h)}
		for i := range img.Palette {
			img.Palette[i] = Color{byte(i), byte(255 - i), byte(i * 7)}
		}
		for i := range img.Pixels {
			v := 0
			if len(pix) > 0 {
				v = int(pix[i%len(pix)])
			}
			img.Pixels[i] = byte(v % colors)
		}
		data, err := Encode(img, Options{})
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Pixels, img.Pixels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInterlacedRoundTrip(t *testing.T) {
	for _, tc := range []struct{ w, h, colors int }{
		{1, 1, 2}, {7, 5, 4}, {8, 8, 16}, {33, 17, 256}, {100, 3, 2}, {2, 100, 8},
	} {
		img := testImage(tc.w, tc.h, tc.colors, 11)
		data, err := Encode(img, Options{Interlace: true})
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", tc, err)
		}
		if !bytes.Equal(got.Pixels, img.Pixels) {
			t.Fatalf("%v: interlaced round trip mismatch", tc)
		}
	}
}

func TestStdlibDecodesOurInterlacedPNG(t *testing.T) {
	img := testImage(50, 41, 16, 6)
	data, err := Encode(img, Options{Interlace: true})
	if err != nil {
		t.Fatal(err)
	}
	std, err := stdpng.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected our interlaced PNG: %v", err)
	}
	pimg, ok := std.(*image.Paletted)
	if !ok {
		t.Fatalf("stdlib decoded %T", std)
	}
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if pimg.ColorIndexAt(x, y) != img.Pixels[y*img.W+x] {
				t.Fatalf("pixel (%d,%d) differs", x, y)
			}
		}
	}
}

func TestPassSizes(t *testing.T) {
	// An 8x8 image: pass sizes must total the pixel count.
	total := 0
	for pass := 0; pass < 7; pass++ {
		pw, ph := passSize(pass, 8, 8)
		total += pw * ph
	}
	if total != 64 {
		t.Fatalf("pass pixels total %d, want 64", total)
	}
	// A 1x1 image appears only in pass 1.
	for pass := 0; pass < 7; pass++ {
		pw, ph := passSize(pass, 1, 1)
		if pass == 0 && (pw != 1 || ph != 1) {
			t.Fatalf("pass 1 of 1x1 = %dx%d", pw, ph)
		}
		if pass > 0 && pw*ph != 0 {
			t.Fatalf("pass %d of 1x1 non-empty", pass+1)
		}
	}
}

func TestInterlaceCostsBytes(t *testing.T) {
	// Interlacing scatters pixels, hurting filter locality; the file
	// should not be smaller (and typically larger) — one reason the
	// converted site images stay non-interlaced.
	img := testImage(90, 60, 16, 2)
	plain, _ := Encode(img, Options{})
	inter, _ := Encode(img, Options{Interlace: true})
	if len(inter) < len(plain) {
		t.Fatalf("interlaced (%d) smaller than plain (%d)?", len(inter), len(plain))
	}
}

func TestTruecolorRoundTrip(t *testing.T) {
	src := testImage(37, 23, 64, 8)
	rgb := src.Flatten()
	data, err := EncodeRGB(rgb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRGB(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != rgb.W || got.H != rgb.H || !bytes.Equal(got.Pix, rgb.Pix) {
		t.Fatal("truecolor round trip mismatch")
	}
}

func TestStdlibDecodesOurTruecolorPNG(t *testing.T) {
	src := testImage(40, 30, 128, 3)
	rgb := src.Flatten()
	data, err := EncodeRGB(rgb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	std, err := stdpng.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected truecolor PNG: %v", err)
	}
	for y := 0; y < rgb.H; y++ {
		for x := 0; x < rgb.W; x++ {
			r, g, b, _ := std.At(x, y).RGBA()
			i := 3 * (y*rgb.W + x)
			if byte(r>>8) != rgb.Pix[i] || byte(g>>8) != rgb.Pix[i+1] || byte(b>>8) != rgb.Pix[i+2] {
				t.Fatalf("pixel (%d,%d) differs under stdlib", x, y)
			}
		}
	}
}

func TestTruecolorValidation(t *testing.T) {
	if _, err := EncodeRGB(&RGBImage{W: 2, H: 2, Pix: make([]byte, 5)}, Options{}); err == nil {
		t.Fatal("short pix accepted")
	}
	if _, err := EncodeRGB(&RGBImage{W: 0, H: 2}, Options{}); err == nil {
		t.Fatal("zero width accepted")
	}
	// A paletted PNG is not decodable as truecolor.
	pal := testImage(8, 8, 4, 1)
	data, _ := Encode(pal, Options{})
	if _, err := DecodeRGB(data); err == nil {
		t.Fatal("paletted PNG decoded as truecolor")
	}
	// And vice versa.
	rgbData, _ := EncodeRGB(pal.Flatten(), Options{})
	if _, err := Decode(rgbData); err == nil {
		t.Fatal("truecolor PNG decoded as paletted")
	}
}
