package pngenc

// CRC32 computes the PNG CRC (IEEE 802.3 polynomial, reflected), as
// specified in RFC 2083 appendix. Implemented here rather than importing
// hash/crc32 so the codec is self-contained; the tests verify equality
// with the standard library.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crcTable[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

var crcTable = func() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ c>>1
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}()
