package pngenc

// Adam7 interlacing: the progressive-display mode the paper credits for
// PNG's "time to render benefits relative to GIF". Each of the seven
// passes is an independent sub-image with its own filtered scanlines; a
// decoder can render a coarse version of the picture from the early
// passes while later ones are still arriving.

// adam7 holds the pass geometry: start offsets and steps per pass.
var adam7 = [7]struct{ x0, y0, dx, dy int }{
	{0, 0, 8, 8},
	{4, 0, 8, 8},
	{0, 4, 4, 8},
	{2, 0, 4, 4},
	{0, 2, 2, 4},
	{1, 0, 2, 2},
	{0, 1, 1, 2},
}

// passSize returns the dimensions of one interlace pass for a W×H image.
func passSize(pass, w, h int) (pw, ph int) {
	p := adam7[pass]
	if w > p.x0 {
		pw = (w - p.x0 + p.dx - 1) / p.dx
	}
	if h > p.y0 {
		ph = (h - p.y0 + p.dy - 1) / p.dy
	}
	return pw, ph
}

// interlaceScanlines serializes img as the concatenated filtered
// scanlines of the seven Adam7 passes.
func interlaceScanlines(img *Image, depth int) []byte {
	var out []byte
	for pass := 0; pass < 7; pass++ {
		pw, ph := passSize(pass, img.W, img.H)
		if pw == 0 || ph == 0 {
			continue
		}
		p := adam7[pass]
		sub := &Image{W: pw, H: ph, Palette: img.Palette, Pixels: make([]byte, pw*ph)}
		for y := 0; y < ph; y++ {
			for x := 0; x < pw; x++ {
				sx, sy := p.x0+x*p.dx, p.y0+y*p.dy
				sub.Pixels[y*pw+x] = img.Pixels[sy*img.W+sx]
			}
		}
		raw := packScanlines(sub, depth)
		out = append(out, filterScanlines(raw, ph, rowBytes(pw, depth), 1)...)
	}
	return out
}

// deinterlaceScanlines reconstructs pixels from the concatenated filtered
// passes.
func deinterlaceScanlines(filtered []byte, w, h, depth int) ([]byte, error) {
	pixels := make([]byte, w*h)
	off := 0
	for pass := 0; pass < 7; pass++ {
		pw, ph := passSize(pass, w, h)
		if pw == 0 || ph == 0 {
			continue
		}
		rb := rowBytes(pw, depth)
		need := (rb + 1) * ph
		if off+need > len(filtered) {
			return nil, errTruncatedPass(pass)
		}
		raw, err := unfilterScanlines(filtered[off:off+need], ph, rb, 1)
		if err != nil {
			return nil, err
		}
		off += need
		p := adam7[pass]
		perByte := 8 / depth
		for y := 0; y < ph; y++ {
			row := raw[y*rb:]
			for x := 0; x < pw; x++ {
				var v byte
				if depth == 8 {
					v = row[x]
				} else {
					shift := uint((perByte - 1 - x%perByte) * depth)
					v = row[x/perByte] >> shift & (1<<depth - 1)
				}
				pixels[(p.y0+y*p.dy)*w+p.x0+x*p.dx] = v
			}
		}
	}
	if off != len(filtered) {
		return nil, errTrailingPassData(len(filtered) - off)
	}
	return pixels, nil
}

func errTruncatedPass(pass int) error {
	return &passError{msg: "truncated interlace pass", pass: pass}
}

func errTrailingPassData(n int) error {
	return &passError{msg: "trailing bytes after final pass", pass: n}
}

type passError struct {
	msg  string
	pass int
}

func (e *passError) Error() string { return "pngenc: " + e.msg }
func (e *passError) Unwrap() error { return ErrFormat }
