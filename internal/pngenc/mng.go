package pngenc

import (
	"fmt"

	"repro/internal/flatez"
)

// MNG support: a minimal MNG-LC style container for animations, the
// PNG-family replacement for animated GIF evaluated by the paper. Frames
// share one top-level palette and are stored as embedded PNG image
// streams (IHDR/IDAT/IEND without per-frame PLTE), compressed with
// deflate. Frame timing is carried in FRAM chunks.
//
// Simplification versus the full MNG specification (documented in
// DESIGN.md): the FRAM chunk carries only framing mode and interframe
// delay, and no Delta-PNG is used. Size savings relative to animated GIF
// come from the shared palette and deflate, which is the effect the paper
// measures.

var mngSignature = []byte{0x8a, 'M', 'N', 'G', '\r', '\n', 0x1a, '\n'}

// EncodeMNG serializes frames (which must share dimensions and palette)
// with per-frame delays in hundredths of a second.
func EncodeMNG(frames []*Image, delaysCS []int, opts Options) ([]byte, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("pngenc: no frames")
	}
	if len(delaysCS) != len(frames) {
		return nil, fmt.Errorf("pngenc: %d delays for %d frames", len(delaysCS), len(frames))
	}
	first := frames[0]
	if err := first.Validate(); err != nil {
		return nil, err
	}
	for _, f := range frames[1:] {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		if f.W != first.W || f.H != first.H {
			return nil, fmt.Errorf("pngenc: frame dimensions differ")
		}
		if len(f.Palette) != len(first.Palette) {
			return nil, fmt.Errorf("pngenc: frame palettes differ")
		}
	}
	if opts.Level == 0 {
		opts.Level = 6
	}
	depth := bitDepth(len(first.Palette))

	out := append([]byte(nil), mngSignature...)

	mhdr := make([]byte, 28)
	putU32(mhdr[0:], uint32(first.W))
	putU32(mhdr[4:], uint32(first.H))
	putU32(mhdr[8:], 100) // ticks per second
	putU32(mhdr[12:], uint32(len(frames)))
	putU32(mhdr[16:], uint32(len(frames)))
	total := 0
	for _, d := range delaysCS {
		total += d
	}
	putU32(mhdr[20:], uint32(total))
	putU32(mhdr[24:], 1) // simplicity: MNG-LC
	out = appendChunk(out, "MHDR", mhdr)

	plte := make([]byte, 3*len(first.Palette))
	for i, c := range first.Palette {
		plte[3*i], plte[3*i+1], plte[3*i+2] = c.R, c.G, c.B
	}
	out = appendChunk(out, "PLTE", plte)

	var prevFiltered []byte
	for i, f := range frames {
		fram := make([]byte, 10)
		fram[0] = 1 // framing mode 1
		fram[1] = 0 // no subframe name
		fram[2] = 2 // change interframe delay for this subframe
		putU32(fram[6:], uint32(delaysCS[i]))
		out = appendChunk(out, "FRAM", fram)

		ihdr := make([]byte, 13)
		putU32(ihdr[0:], uint32(f.W))
		putU32(ihdr[4:], uint32(f.H))
		ihdr[8] = byte(depth)
		ihdr[9] = 3
		out = appendChunk(out, "IHDR", ihdr)
		raw := packScanlines(f, depth)
		filtered := filterScanlines(raw, f.H, rowBytes(f.W, depth), 1)
		// Frames after the first compress against the previous frame's
		// scanline stream as a preset dictionary — the inter-frame
		// redundancy exploitation that Delta-PNG provides in full MNG.
		out = appendChunk(out, "IDAT", flatez.ZlibCompressDict(filtered, prevFiltered, opts.Level))
		out = appendChunk(out, "IEND", nil)
		prevFiltered = filtered
	}
	out = appendChunk(out, "MEND", nil)
	return out, nil
}

// MNGInfo summarizes a decoded MNG stream.
type MNGInfo struct {
	W, H     int
	Frames   []*Image
	DelaysCS []int
}

// DecodeMNG parses an MNG stream produced by EncodeMNG.
func DecodeMNG(data []byte) (*MNGInfo, error) {
	if len(data) < 8 || string(data[:8]) != string(mngSignature) {
		return nil, fmt.Errorf("%w: bad MNG signature", ErrFormat)
	}
	// Chunk structure is shared with PNG.
	chunks, err := parseChunks(append(append([]byte(nil), pngSignature...), data[8:]...))
	if err != nil {
		return nil, err
	}
	info := &MNGInfo{}
	var pal []Color
	var curW, curH, curDepth int
	var sawMHDR, sawMEND bool
	var prevFiltered []byte
	pendingDelay := 0
	for _, c := range chunks {
		switch c.typ {
		case "MHDR":
			if len(c.data) != 28 {
				return nil, fmt.Errorf("%w: MHDR length %d", ErrFormat, len(c.data))
			}
			info.W, info.H = int(getU32(c.data[0:])), int(getU32(c.data[4:]))
			sawMHDR = true
		case "PLTE":
			pal = make([]Color, len(c.data)/3)
			for i := range pal {
				pal[i] = Color{c.data[3*i], c.data[3*i+1], c.data[3*i+2]}
			}
		case "FRAM":
			if len(c.data) >= 10 && c.data[2] == 2 {
				pendingDelay = int(getU32(c.data[6:]))
			}
		case "IHDR":
			curW, curH = int(getU32(c.data[0:])), int(getU32(c.data[4:]))
			curDepth = int(c.data[8])
		case "IDAT":
			if pal == nil {
				return nil, fmt.Errorf("%w: frame before palette", ErrFormat)
			}
			filtered, err := flatez.ZlibDecompressDict(c.data, prevFiltered)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			prevFiltered = filtered
			rb := rowBytes(curW, curDepth)
			raw, err := unfilterScanlines(filtered, curH, rb, 1)
			if err != nil {
				return nil, err
			}
			img := &Image{W: curW, H: curH, Palette: pal, Pixels: make([]byte, curW*curH)}
			perByte := 8 / curDepth
			for y := 0; y < curH; y++ {
				row := raw[y*rb:]
				for x := 0; x < curW; x++ {
					var v byte
					if curDepth == 8 {
						v = row[x]
					} else {
						shift := uint((perByte - 1 - x%perByte) * curDepth)
						v = row[x/perByte] >> shift & (1<<curDepth - 1)
					}
					img.Pixels[y*curW+x] = v
				}
			}
			info.Frames = append(info.Frames, img)
			info.DelaysCS = append(info.DelaysCS, pendingDelay)
		case "MEND":
			sawMEND = true
		}
	}
	if !sawMHDR || !sawMEND {
		return nil, fmt.Errorf("%w: missing MHDR or MEND", ErrFormat)
	}
	if len(info.Frames) == 0 {
		return nil, fmt.Errorf("%w: no frames", ErrFormat)
	}
	return info, nil
}
