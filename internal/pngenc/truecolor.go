package pngenc

import (
	"fmt"

	"repro/internal/flatez"
)

// Truecolor (color type 2) support: 8-bit RGB images without a palette,
// used when content exceeds 256 colors. The paper's test images are all
// paletted GIF conversions, but a complete PNG substrate needs the
// truecolor path for the general case.

// RGBImage is an 8-bit-per-channel truecolor image.
type RGBImage struct {
	W, H int
	// Pix holds RGB triples, row major: 3*W*H bytes.
	Pix []byte
}

// Validate checks structural invariants.
func (m *RGBImage) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("pngenc: bad dimensions %dx%d", m.W, m.H)
	}
	if len(m.Pix) != 3*m.W*m.H {
		return fmt.Errorf("pngenc: %d bytes for %dx%d RGB image", len(m.Pix), m.W, m.H)
	}
	return nil
}

// EncodeRGB serializes a truecolor PNG.
func EncodeRGB(img *RGBImage, opts Options) ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if opts.Level == 0 {
		opts.Level = 6
	}
	if opts.Interlace {
		return nil, fmt.Errorf("pngenc: interlaced truecolor not supported")
	}
	out := append([]byte(nil), pngSignature...)
	ihdr := make([]byte, 13)
	putU32(ihdr[0:], uint32(img.W))
	putU32(ihdr[4:], uint32(img.H))
	ihdr[8] = 8 // bit depth
	ihdr[9] = 2 // color type: truecolor
	out = appendChunk(out, "IHDR", ihdr)
	if !opts.NoGamma {
		gama := make([]byte, 4)
		putU32(gama, 45455)
		out = appendChunk(out, "gAMA", gama)
	}
	rb := 3 * img.W
	filtered := filterScanlines(img.Pix, img.H, rb, 3)
	out = appendChunk(out, "IDAT", flatez.ZlibCompress(filtered, opts.Level))
	out = appendChunk(out, "IEND", nil)
	return out, nil
}

// DecodeRGB parses a truecolor (color type 2, 8-bit) PNG.
func DecodeRGB(data []byte) (*RGBImage, error) {
	chunks, err := parseChunks(data)
	if err != nil {
		return nil, err
	}
	var (
		w, h, depth, colorType int
		idat                   []byte
		sawIHDR, sawIEND       bool
	)
	for _, c := range chunks {
		switch c.typ {
		case "IHDR":
			if len(c.data) != 13 {
				return nil, fmt.Errorf("%w: IHDR length %d", ErrFormat, len(c.data))
			}
			w, h = int(getU32(c.data[0:])), int(getU32(c.data[4:]))
			depth = int(c.data[8])
			colorType = int(c.data[9])
			if c.data[12] != 0 {
				return nil, fmt.Errorf("%w: interlaced truecolor unsupported", ErrFormat)
			}
			sawIHDR = true
		case "IDAT":
			idat = append(idat, c.data...)
		case "IEND":
			sawIEND = true
		}
	}
	if !sawIHDR || !sawIEND || idat == nil {
		return nil, fmt.Errorf("%w: missing critical chunks", ErrFormat)
	}
	if colorType != 2 || depth != 8 {
		return nil, fmt.Errorf("%w: not an 8-bit truecolor PNG (type %d depth %d)", ErrFormat, colorType, depth)
	}
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d", ErrFormat, w, h)
	}
	filtered, err := flatez.ZlibDecompress(idat)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	rb := 3 * w
	if len(filtered) != (rb+1)*h {
		return nil, fmt.Errorf("%w: %d scanline bytes for %dx%d RGB", ErrFormat, len(filtered), w, h)
	}
	pix, err := unfilterScanlines(filtered, h, rb, 3)
	if err != nil {
		return nil, err
	}
	return &RGBImage{W: w, H: h, Pix: pix}, nil
}

// Flatten converts a paletted image to truecolor.
func (m *Image) Flatten() *RGBImage {
	out := &RGBImage{W: m.W, H: m.H, Pix: make([]byte, 3*m.W*m.H)}
	for i, p := range m.Pixels {
		c := m.Palette[p]
		out.Pix[3*i], out.Pix[3*i+1], out.Pix[3*i+2] = c.R, c.G, c.B
	}
	return out
}
