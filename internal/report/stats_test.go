package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stats"
)

func TestMeanCI(t *testing.T) {
	if got := MeanCI(stats.Summary{Mean: 3.14159}, 2); got != "3.14" {
		t.Errorf("single sample: %q", got)
	}
	if got := MeanCI(stats.Summary{Mean: 3.14159, CI95: 0.256}, 2); got != "3.14 ±0.26" {
		t.Errorf("with CI: %q", got)
	}
}

// TestVarianceRenderer pins the distribution/±CI table bytes on
// synthetic rows, so format drift is a deliberate golden update rather
// than an accident.
func TestVarianceRenderer(t *testing.T) {
	rows := []core.VarianceRow{
		{Env: "PPP", Fault: "none", Mode: "HTTP/1.1 pipelined", N: 8,
			Seconds:  stats.Summary{N: 8, Mean: 12.345, CI95: 0.678},
			Packets:  stats.Summary{N: 8, Mean: 234.0},
			LatP50Ms: 101.5, LatP90Ms: 303.25, LatP99Ms: 404.0, LatMaxMs: 505.9},
		{Env: "WAN", Fault: "burst-loss", Mode: "HTTP/1.0", N: 8,
			Seconds:  stats.Summary{N: 8, Mean: 80.96, CI95: 25.08},
			Packets:  stats.Summary{N: 8, Mean: 861.2, CI95: 185.8},
			LatP50Ms: 17448.3, LatP90Ms: 41339.1, LatP99Ms: 68182.6, LatMaxMs: 68734.9},
	}
	var buf bytes.Buffer
	Variance(&buf, rows)
	out := buf.String()
	for _, want := range []string{
		"Seed-variance experiment",
		"12.35 ±0.68",  // mean ± CI at two decimals
		"234.0",        // zero-width CI renders bare mean
		"861.2 ±185.8", // packets with CI at one decimal
		"101.5",
		"68734.9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("variance table missing %q:\n%s", want, out)
		}
	}
	// Rendering the same rows twice is byte-identical.
	var again bytes.Buffer
	Variance(&again, rows)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("variance renderer not deterministic")
	}
}

func TestCellsRenderer(t *testing.T) {
	cells := []exp.CellStats{
		{Experiment: "variance", Scenario: "Apache PPP HTTP/1.0 first", N: 8,
			Elapsed: stats.Summary{N: 8, Mean: 72.4, CI95: 1.55},
			Packets: stats.Summary{N: 8, Mean: 700.1, CI95: 3.2},
			Dist: map[string]float64{
				"lat_total_ms_p50": 1500.5,
				"lat_total_ms_p90": 2000.1,
				"lat_total_ms_p99": 2500.9,
			}},
		{Experiment: "3", Scenario: "Apache LAN HTTP/1.0 revalidate", N: 1,
			Elapsed: stats.Summary{N: 1, Mean: 0.35},
			Packets: stats.Summary{N: 1, Mean: 120}},
	}
	var buf bytes.Buffer
	Cells(&buf, cells)
	out := buf.String()
	for _, want := range []string{
		"Per-cell statistics",
		"72.40 ±1.55",
		"1500.5",
		"2500.9",
		"0.35",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cells table missing %q:\n%s", want, out)
		}
	}
	// A cell without latency metrics renders empty quantile cells, not
	// zeros: its row ends with the packets column followed by blanks.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "revalidate") && strings.TrimRight(line, " ") != strings.TrimRight(line[:strings.Index(line, "120.0")+5], " ") {
			t.Errorf("dist-free cell rendered non-empty quantile cells: %q", line)
		}
	}
}
