// Package report renders the regenerated experiment tables as aligned
// text, side by side with the paper's published numbers where available.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// line writes one formatted row.
func line(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

func rule(w io.Writer, n int) {
	fmt.Fprintln(w, strings.Repeat("-", n))
}

// MainTable renders a Tables 4-9 style table with paper comparison rows.
func MainTable(w io.Writer, t core.Table) {
	line(w, "%s", t.Title)
	rule(w, 112)
	line(w, "%-36s %s  %35s", "", "First Time Retrieval", "Cache Validation")
	line(w, "%-36s %8s %9s %7s %5s | %8s %9s %7s %5s", "",
		"Pa", "Bytes", "Sec", "%ov", "Pa", "Bytes", "Sec", "%ov")
	rule(w, 112)
	for _, r := range t.Rows {
		line(w, "%-36s %8.1f %9.0f %7.2f %5.1f | %8.1f %9.0f %7.2f %5.1f",
			r.Label,
			r.First.Packets, r.First.Bytes, r.First.Seconds, r.First.OverheadPct,
			r.Reval.Packets, r.Reval.Bytes, r.Reval.Seconds, r.Reval.OverheadPct)
		if r.Paper != nil {
			line(w, "%-36s %8.1f %9.0f %7.2f %5s | %8.1f %9.0f %7.2f %5s",
				"  (paper)",
				r.Paper.First.Packets, r.Paper.First.Bytes, r.Paper.First.Seconds, "",
				r.Paper.Reval.Packets, r.Paper.Reval.Bytes, r.Paper.Reval.Seconds, "")
		}
	}
	rule(w, 112)
}

// Table3 renders the initial-investigation table in the paper's layout
// (metrics as rows, variants as columns).
func Table3(w io.Writer, rows []core.Table3Row) {
	line(w, "Table 3 - Jigsaw - Initial High Bandwidth, Low Latency Cache Revalidation Test")
	rule(w, 96)
	header := fmt.Sprintf("%-34s", "")
	for _, r := range rows {
		header += fmt.Sprintf(" %19s", r.Label)
	}
	line(w, "%s", header)
	rule(w, 96)
	metric := func(name string, f func(core.Table3Row) string, paper []float64) {
		out := fmt.Sprintf("%-34s", name)
		for _, r := range rows {
			out += fmt.Sprintf(" %19s", f(r))
		}
		line(w, "%s", out)
		if paper != nil {
			out = fmt.Sprintf("%-34s", "  (paper)")
			for _, v := range paper {
				out += fmt.Sprintf(" %19.2f", v)
			}
			line(w, "%s", out)
		}
	}
	p := core.PaperTable3
	metric("Max simultaneous sockets", func(r core.Table3Row) string { return fmt.Sprintf("%d", r.MaxSockets) }, p.MaxSockets)
	metric("Total number of sockets used", func(r core.Table3Row) string { return fmt.Sprintf("%d", r.TotalSockets) }, p.TotalSockets)
	metric("Packets from client to server", func(r core.Table3Row) string { return fmt.Sprintf("%.1f", r.PktsC2S) }, p.PktsC2S)
	metric("Packets from server to client", func(r core.Table3Row) string { return fmt.Sprintf("%.1f", r.PktsS2C) }, p.PktsS2C)
	metric("Total number of packets", func(r core.Table3Row) string { return fmt.Sprintf("%.1f", r.PktsTotal) }, p.PktsAll)
	metric("Total elapsed time [secs]", func(r core.Table3Row) string { return fmt.Sprintf("%.2f", r.Elapsed) }, p.Elapsed)
	rule(w, 96)
}

// Environments renders Table 1.
func Environments(w io.Writer) {
	line(w, "Table 1 - Tested Network Environments")
	rule(w, 86)
	line(w, "%-30s %-32s %8s %6s", "Channel", "Connection", "RTT", "MSS")
	rule(w, 86)
	for _, env := range netem.Environments {
		p := netem.Profiles[env]
		line(w, "%-30s %-32s %8s %6d", p.Channel, p.Connection, p.RTT, p.MSS)
	}
	rule(w, 86)
}

// Modem renders the §8.2.1 modem-compression experiment.
func Modem(w io.Writer, rows []core.ModemRow, profileName string) {
	line(w, "Modem compression experiment (single GET of the HTML page over 28.8k PPP) - %s", profileName)
	rule(w, 86)
	line(w, "%-52s %8s %9s %8s", "", "Pa", "Bytes", "Sec")
	rule(w, 86)
	for _, r := range rows {
		line(w, "%-52s %8.1f %9.0f %8.2f", r.Label, r.Packets, r.Bytes, r.Seconds)
	}
	p := core.PaperModem
	line(w, "%-52s %8.1f %9s %8.2f", "  (paper: uncompressed HTML)", p.UncompressedPa, "", p.UncompressedSec)
	line(w, "%-52s %8.1f %9s %8.2f", "  (paper: zlib-compressed HTML)", p.CompressedPa, "", p.CompressedSec)
	rule(w, 86)
}

// TagCase renders the markup-case compression experiment.
func TagCase(w io.Writer, rows []core.TagCaseRow) {
	line(w, "HTML tag case vs deflate compression (paper: lower ≈ 0.27, mixed ≈ 0.35)")
	rule(w, 64)
	line(w, "%-24s %10s %10s %8s", "", "HTML", "deflated", "ratio")
	rule(w, 64)
	for _, r := range rows {
		line(w, "%-24s %10d %10d %8.3f", r.Label, r.HTMLBytes, r.Deflated, r.Ratio)
	}
	rule(w, 64)
}

// Nagle renders the Nagle-interaction ablation.
func Nagle(w io.Writer, rows []core.NagleRow) {
	line(w, "Nagle interaction (WAN first-time retrieval; delayed final segments)")
	rule(w, 72)
	line(w, "%-44s %8s %8s", "", "Pa", "Sec")
	rule(w, 72)
	for _, r := range rows {
		line(w, "%-44s %8.1f %8.2f", r.Label, r.Packets, r.Seconds)
	}
	rule(w, 72)
}

// Reset renders the connection-management experiment.
func Reset(w io.Writer, rows []core.ResetRow) {
	line(w, "Server early-close scenario (5 requests per connection, pipelined client, WAN)")
	rule(w, 100)
	line(w, "%-42s %8s %8s %8s %8s %10s", "", "Pa", "Sec", "Resets", "Retried", "Responses")
	rule(w, 100)
	for _, r := range rows {
		line(w, "%-42s %8.1f %8.2f %8.1f %8.1f %10.1f", r.Label, r.Packets, r.Seconds, r.Errors, r.Retried, r.Responses)
	}
	rule(w, 100)
}

// Flush renders the flush-policy ablation grid.
func Flush(w io.Writer, rows []core.FlushRow) {
	line(w, "Pipelining flush-policy ablation (WAN first-time retrieval)")
	rule(w, 64)
	line(w, "%-12s %-14s %8s %8s", "buffer", "timer", "Pa", "Sec")
	rule(w, 64)
	for _, r := range rows {
		line(w, "%-12d %-14s %8.1f %8.2f", r.BufferSize, r.FlushTimeout, r.Packets, r.Seconds)
	}
	rule(w, 64)
}

// CSS renders the image→CSS replacement analysis (Figure 1 and the
// whole-page estimate).
func CSS(w io.Writer, site *webgen.Site) {
	fig := webgen.FigureOneReplacement()
	line(w, "Figure 1 - the %q banner", "solutions")
	line(w, "  GIF: %d bytes; HTML+CSS replacement: %d bytes (paper: 682 -> ~150)", fig.GIFBytes, fig.CSSBytes())
	line(w, "  reduction factor: %.1fx", float64(fig.GIFBytes)/float64(fig.CSSBytes()))
	line(w, "")
	rep := site.CSSReplacements()
	line(w, "Whole-page image -> HTML+CSS analysis")
	rule(w, 70)
	line(w, "  images replaced:        %d of %d", len(rep.Replacements), len(rep.Replacements)+len(rep.Kept))
	line(w, "  HTTP requests saved:    %d of 43", rep.RequestsSaved)
	line(w, "  image bytes removed:    %d", rep.GIFBytesRemoved)
	line(w, "  HTML+CSS bytes added:   %d", rep.CSSBytesAdded)
	line(w, "  net payload saving:     %d bytes", rep.NetSavings())
	rule(w, 70)
	line(w, "%-22s %-10s %10s %10s %8s", "image", "role", "GIF", "HTML+CSS", "saved")
	for _, r := range rep.Replacements {
		line(w, "%-22s %-10s %10d %10d %8d", r.Name, r.Role, r.GIFBytes, r.CSSBytes(), r.Saved())
	}
	rule(w, 70)
}

// PNG renders the GIF→PNG / animated GIF→MNG conversion report.
func PNG(w io.Writer, site *webgen.Site) error {
	rep, err := site.ConvertImages()
	if err != nil {
		return err
	}
	line(w, "GIF -> PNG and animated GIF -> MNG conversion")
	rule(w, 76)
	line(w, "  static GIFs:  %d -> %d bytes (saved %d, %.1f%%)  [paper: 103299 -> 92096]",
		rep.StaticGIF, rep.StaticPNG, rep.StaticSaved(), 100*float64(rep.StaticSaved())/float64(rep.StaticGIF))
	line(w, "  animations:   %d -> %d bytes (saved %d, %.1f%%)  [paper: 24988 -> 16329]",
		rep.AnimGIF, rep.AnimMNG, rep.AnimSaved(), 100*float64(rep.AnimSaved())/float64(rep.AnimGIF))
	rule(w, 76)
	line(w, "%-22s %-10s %10s %10s %8s", "image", "role", "GIF", "PNG/MNG", "saved")
	for _, c := range rep.Static {
		line(w, "%-22s %-10s %10d %10d %8d", c.Name, c.Role, c.GIFBytes, c.NewBytes, c.Saved())
	}
	for _, c := range rep.Animations {
		line(w, "%-22s %-10s %10d %10d %8d", c.Name, c.Role, c.GIFBytes, c.NewBytes, c.Saved())
	}
	rule(w, 76)
	return nil
}

// Duration formats a duration for table cells.
func Duration(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Range renders the range-probe ("poor man's multiplexing") experiment.
func Range(w io.Writer, rows []core.RangeRow) {
	line(w, "Range-request revalidation after a site revision (PPP, pipelined, ~30%% of objects changed)")
	rule(w, 110)
	line(w, "%-46s %8s %9s %9s %13s %8s", "", "Pa", "Bytes", "Sec", "Metadata Sec", "206s")
	rule(w, 110)
	for _, r := range rows {
		line(w, "%-46s %8.1f %9.0f %9.2f %13.2f %8.1f", r.Label, r.Packets, r.Bytes, r.Seconds, r.MetadataSeconds, r.Responses206)
	}
	rule(w, 110)
}

// HeaderRedundancy renders the compact-wire-representation estimate.
func HeaderRedundancy(w io.Writer, rows []core.HeaderRedundancyRow) {
	line(w, "Request redundancy on the 43-request revalidation (paper: ~10%% of bytes change between requests)")
	rule(w, 86)
	line(w, "%-52s %12s %8s", "", "bytes", "ratio")
	rule(w, 86)
	for _, r := range rows {
		line(w, "%-52s %12d %8.3f", r.Label, r.RequestBytes, r.Ratio)
	}
	rule(w, 86)
}

// Cwnd renders the initial-window ablation.
func Cwnd(w io.Writer, rows []core.CwndRow) {
	line(w, "Slow-start initial window ablation (WAN first-time retrieval, pipelined)")
	rule(w, 64)
	line(w, "%-30s %8s %8s", "", "Pa", "Sec")
	rule(w, 64)
	for _, r := range rows {
		line(w, "%-30s %8.1f %8.2f", r.Label, r.Packets, r.Seconds)
	}
	rule(w, 64)
}
