// Package report renders the regenerated experiment tables as aligned
// text, side by side with the paper's published numbers where available.
// Every table is described declaratively as a Spec (tablespec.go) — a
// column list with formats and value extractors — and rendered by the
// one shared engine.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// line writes one formatted row.
func line(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

func rule(w io.Writer, n int) {
	fmt.Fprintln(w, strings.Repeat("-", n))
}

// avgCols builds the four measurement columns (Pa, Bytes, Sec, %ov) for
// one workload of a main-table row.
func avgCols(pick func(core.Row) core.Cell) []Col[core.Row] {
	return []Col[core.Row]{
		{Head: "Pa", Format: "%8.1f", Value: func(r core.Row) any { return pick(r).Packets }},
		{Head: "Bytes", Format: "%9.0f", Value: func(r core.Row) any { return pick(r).Bytes }},
		{Head: "Sec", Format: "%7.2f", Value: func(r core.Row) any { return pick(r).Seconds }},
		{Head: "%ov", Format: "%5.1f", Value: func(r core.Row) any { return pick(r).OverheadPct }},
	}
}

// MainTable renders a Tables 4-9 style table with paper comparison rows.
func MainTable(w io.Writer, t core.Table) {
	cols := []Col[core.Row]{{Format: "%-36s", Value: func(r core.Row) any { return r.Label }}}
	cols = append(cols, avgCols(func(r core.Row) core.Cell { return r.First })...)
	cols = append(cols, Col[core.Row]{Format: "|"})
	cols = append(cols, avgCols(func(r core.Row) core.Cell { return r.Reval })...)
	s := Spec[core.Row]{
		Title:     t.Title,
		Width:     112,
		PreHeader: []string{fmt.Sprintf("%-36s %s  %35s", "", "First Time Retrieval", "Cache Validation")},
		Cols:      cols,
		SubRows: func(r core.Row) []string {
			if r.Paper == nil {
				return nil
			}
			p := r.Paper
			return []string{fmt.Sprintf("%-36s %8.1f %9.0f %7.2f %5s | %8.1f %9.0f %7.2f %5s",
				"  (paper)",
				p.First.Packets, p.First.Bytes, p.First.Seconds, "",
				p.Reval.Packets, p.Reval.Bytes, p.Reval.Seconds, "")}
		},
	}
	s.Render(w, t.Rows)
}

// table3Metric is one transposed row of Table 3: a metric across all
// variant columns.
type table3Metric struct {
	name  string
	cell  func(core.Table3Row) string
	paper []float64
}

// Table3 renders the initial-investigation table in the paper's layout
// (metrics as rows, variants as columns).
func Table3(w io.Writer, rows []core.Table3Row) {
	cols := []Col[table3Metric]{{Format: "%-34s", Value: func(m table3Metric) any { return m.name }}}
	for _, r := range rows {
		r := r
		cols = append(cols, Col[table3Metric]{Head: r.Label, Format: "%19s",
			Value: func(m table3Metric) any { return m.cell(r) }})
	}
	p := core.PaperTable3
	metrics := []table3Metric{
		{"Max simultaneous sockets", func(r core.Table3Row) string { return fmt.Sprintf("%d", r.MaxSockets) }, p.MaxSockets},
		{"Total number of sockets used", func(r core.Table3Row) string { return fmt.Sprintf("%d", r.TotalSockets) }, p.TotalSockets},
		{"Packets from client to server", func(r core.Table3Row) string { return fmt.Sprintf("%.1f", r.PktsC2S) }, p.PktsC2S},
		{"Packets from server to client", func(r core.Table3Row) string { return fmt.Sprintf("%.1f", r.PktsS2C) }, p.PktsS2C},
		{"Total number of packets", func(r core.Table3Row) string { return fmt.Sprintf("%.1f", r.PktsTotal) }, p.PktsAll},
		{"Total elapsed time [secs]", func(r core.Table3Row) string { return fmt.Sprintf("%.2f", r.Elapsed) }, p.Elapsed},
	}
	s := Spec[table3Metric]{
		Title: "Table 3 - Jigsaw - Initial High Bandwidth, Low Latency Cache Revalidation Test",
		Width: 96,
		Cols:  cols,
		SubRows: func(m table3Metric) []string {
			if m.paper == nil {
				return nil
			}
			out := fmt.Sprintf("%-34s", "  (paper)")
			for _, v := range m.paper {
				out += fmt.Sprintf(" %19.2f", v)
			}
			return []string{out}
		},
	}
	s.Render(w, metrics)
}

// Environments renders Table 1.
func Environments(w io.Writer) {
	s := Spec[netem.Environment]{
		Title: "Table 1 - Tested Network Environments",
		Width: 86,
		Cols: []Col[netem.Environment]{
			{Head: "Channel", Format: "%-30s", Value: func(e netem.Environment) any { return netem.Profiles[e].Channel }},
			{Head: "Connection", Format: "%-32s", Value: func(e netem.Environment) any { return netem.Profiles[e].Connection }},
			{Head: "RTT", Format: "%8s", Value: func(e netem.Environment) any { return netem.Profiles[e].RTT }},
			{Head: "MSS", Format: "%6d", Value: func(e netem.Environment) any { return netem.Profiles[e].MSS }},
		},
	}
	s.Render(w, netem.Environments)
}

// Modem renders the §8.2.1 modem-compression experiment.
func Modem(w io.Writer, rows []core.ModemRow, profileName string) {
	s := Spec[core.ModemRow]{
		Title: fmt.Sprintf("Modem compression experiment (single GET of the HTML page over 28.8k PPP) - %s", profileName),
		Width: 86,
		Cols: []Col[core.ModemRow]{
			{Format: "%-52s", Value: func(r core.ModemRow) any { return r.Label }},
			{Head: "Pa", Format: "%8.1f", Value: func(r core.ModemRow) any { return r.Packets }},
			{Head: "Bytes", Format: "%9.0f", Value: func(r core.ModemRow) any { return r.Bytes }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.ModemRow) any { return r.Seconds }},
		},
		Footer: func() []string {
			p := core.PaperModem
			return []string{
				fmt.Sprintf("%-52s %8.1f %9s %8.2f", "  (paper: uncompressed HTML)", p.UncompressedPa, "", p.UncompressedSec),
				fmt.Sprintf("%-52s %8.1f %9s %8.2f", "  (paper: zlib-compressed HTML)", p.CompressedPa, "", p.CompressedSec),
			}
		},
	}
	s.Render(w, rows)
}

// Proxy renders the shared-caching-proxy experiment: last-mile cost per
// protocol mode under each cache state, with the cache-effectiveness and
// origin-side columns alongside.
func Proxy(w io.Writer, rows []core.ProxyRow) {
	s := Spec[core.ProxyRow]{
		Title: "Shared proxy cache (PPP last mile, proxy to Apache origin over WAN; first-time workload)",
		Width: 118,
		PreHeader: []string{
			"cold = empty cache | warm = site cached and fresh | stale = cached earlier, expired (revalidate upstream)",
		},
		Cols: []Col[core.ProxyRow]{
			{Format: "%-33s", Value: func(r core.ProxyRow) any { return r.Mode }},
			{Head: "cache", Format: "%-6s", Value: func(r core.ProxyRow) any { return r.Variant }},
			{Head: "Pa", Format: "%7.1f", Value: func(r core.ProxyRow) any { return r.Packets }},
			{Head: "Bytes", Format: "%9.0f", Value: func(r core.ProxyRow) any { return r.Bytes }},
			{Head: "Sec", Format: "%7.2f", Value: func(r core.ProxyRow) any { return r.Seconds }},
			{Head: "%ov", Format: "%6.2f", Value: func(r core.ProxyRow) any { return r.OverheadPct }},
			{Format: "|", Value: nil},
			{Head: "hit%", Format: "%6.1f", Value: func(r core.ProxyRow) any { return 100 * r.HitRatio }},
			{Head: "KBsaved", Format: "%8.1f", Value: func(r core.ProxyRow) any { return r.BytesSaved / 1024 }},
			{Head: "upReq", Format: "%6.1f", Value: func(r core.ProxyRow) any { return r.UpstreamRequests }},
			{Head: "originPa", Format: "%9.1f", Value: func(r core.ProxyRow) any { return r.OriginPackets }},
		},
	}
	s.Render(w, rows)
}

// TagCase renders the markup-case compression experiment.
func TagCase(w io.Writer, rows []core.TagCaseRow) {
	s := Spec[core.TagCaseRow]{
		Title: "HTML tag case vs deflate compression (paper: lower ≈ 0.27, mixed ≈ 0.35)",
		Width: 64,
		Cols: []Col[core.TagCaseRow]{
			{Format: "%-24s", Value: func(r core.TagCaseRow) any { return r.Label }},
			{Head: "HTML", Format: "%10d", Value: func(r core.TagCaseRow) any { return r.HTMLBytes }},
			{Head: "deflated", Format: "%10d", Value: func(r core.TagCaseRow) any { return r.Deflated }},
			{Head: "ratio", Format: "%8.3f", Value: func(r core.TagCaseRow) any { return r.Ratio }},
		},
	}
	s.Render(w, rows)
}

// Nagle renders the Nagle-interaction ablation.
func Nagle(w io.Writer, rows []core.NagleRow) {
	s := Spec[core.NagleRow]{
		Title: "Nagle interaction (WAN first-time retrieval; delayed final segments)",
		Width: 72,
		Cols: []Col[core.NagleRow]{
			{Format: "%-44s", Value: func(r core.NagleRow) any { return r.Label }},
			{Head: "Pa", Format: "%8.1f", Value: func(r core.NagleRow) any { return r.Packets }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.NagleRow) any { return r.Seconds }},
		},
	}
	s.Render(w, rows)
}

// Reset renders the connection-management experiment.
func Reset(w io.Writer, rows []core.ResetRow) {
	s := Spec[core.ResetRow]{
		Title: "Server early-close scenario (5 requests per connection, pipelined client, WAN)",
		Width: 100,
		Cols: []Col[core.ResetRow]{
			{Format: "%-42s", Value: func(r core.ResetRow) any { return r.Label }},
			{Head: "Pa", Format: "%8.1f", Value: func(r core.ResetRow) any { return r.Packets }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.ResetRow) any { return r.Seconds }},
			{Head: "Resets", Format: "%8.1f", Value: func(r core.ResetRow) any { return r.Errors }},
			{Head: "Retried", Format: "%8.1f", Value: func(r core.ResetRow) any { return r.Retried }},
			{Head: "Responses", Format: "%10.1f", Value: func(r core.ResetRow) any { return r.Responses }},
		},
	}
	s.Render(w, rows)
}

// Faults renders the fault-injection / recovery experiment.
func Faults(w io.Writer, rows []core.FaultRow) {
	s := Spec[core.FaultRow]{
		Title: "Fault injection and recovery (Apache, first-time retrieval; default recovery policy)",
		Width: 117,
		PreHeader: []string{
			"TO = client watchdog timeouts | Rec = requests recovered by retry | Fail = permanently failed",
			"Waste = payload KB delivered then re-fetched | Fallb = degradation steps (pipelined -> serial -> HTTP/1.0)",
		},
		Cols: []Col[core.FaultRow]{
			{Head: "env", Format: "%-5s", Value: func(r core.FaultRow) any { return r.Env }},
			{Head: "fault", Format: "%-12s", Value: func(r core.FaultRow) any { return r.Fault }},
			{Format: "%-33s", Value: func(r core.FaultRow) any { return r.Mode }},
			{Head: "Pa", Format: "%7.1f", Value: func(r core.FaultRow) any { return r.Packets }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.FaultRow) any { return r.Seconds }},
			{Format: "|", Value: nil},
			{Head: "Err", Format: "%5.1f", Value: func(r core.FaultRow) any { return r.Errors }},
			{Head: "Rtry", Format: "%6.1f", Value: func(r core.FaultRow) any { return r.Retried }},
			{Head: "TO", Format: "%5.1f", Value: func(r core.FaultRow) any { return r.Timeouts }},
			{Head: "Rec", Format: "%5.1f", Value: func(r core.FaultRow) any { return r.Recovered }},
			{Head: "Fail", Format: "%5.1f", Value: func(r core.FaultRow) any { return r.Failed }},
			{Head: "Waste", Format: "%7.1f", Value: func(r core.FaultRow) any { return r.WastedKB }},
			{Head: "Fallb", Format: "%6.1f", Value: func(r core.FaultRow) any { return r.Fallbacks }},
		},
	}
	s.Render(w, rows)
}

// MuxFaults renders the framed-protocol fault-recovery experiment.
func MuxFaults(w io.Writer, rows []core.MuxFaultRow) {
	s := Spec[core.MuxFaultRow]{
		Title: "Framed-protocol fault injection and recovery (Apache, first-time retrieval; default recovery policy)",
		Width: 132,
		PreHeader: []string{
			"TO = watchdog timeouts | Rec/Fail = requests recovered by retry / permanently failed | RecS = seconds spent in recovery",
			"Rst = streams torn down by RST_STREAM | GoAwy = GOAWAY announcements | Dead = confirmed flow-control deadlocks",
		},
		Cols: []Col[core.MuxFaultRow]{
			{Head: "env", Format: "%-5s", Value: func(r core.MuxFaultRow) any { return r.Env }},
			{Head: "fault", Format: "%-14s", Value: func(r core.MuxFaultRow) any { return r.Fault }},
			{Format: "%-18s", Value: func(r core.MuxFaultRow) any { return r.Mode }},
			{Head: "Pa", Format: "%7.1f", Value: func(r core.MuxFaultRow) any { return r.Packets }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.MuxFaultRow) any { return r.Seconds }},
			{Format: "|", Value: nil},
			{Head: "Err", Format: "%5.1f", Value: func(r core.MuxFaultRow) any { return r.Errors }},
			{Head: "Rtry", Format: "%6.1f", Value: func(r core.MuxFaultRow) any { return r.Retried }},
			{Head: "TO", Format: "%5.1f", Value: func(r core.MuxFaultRow) any { return r.Timeouts }},
			{Head: "Rec", Format: "%5.1f", Value: func(r core.MuxFaultRow) any { return r.Recovered }},
			{Head: "Fail", Format: "%5.1f", Value: func(r core.MuxFaultRow) any { return r.Failed }},
			{Head: "Waste", Format: "%7.1f", Value: func(r core.MuxFaultRow) any { return r.WastedKB }},
			{Head: "RecS", Format: "%6.2f", Value: func(r core.MuxFaultRow) any { return r.RecoverySec }},
			{Head: "Fallb", Format: "%6.1f", Value: func(r core.MuxFaultRow) any { return r.Fallbacks }},
			{Format: "|", Value: nil},
			{Head: "Rst", Format: "%5.1f", Value: func(r core.MuxFaultRow) any { return r.StreamsReset }},
			{Head: "GoAwy", Format: "%6.1f", Value: func(r core.MuxFaultRow) any { return r.Goaways }},
			{Head: "Dead", Format: "%5.1f", Value: func(r core.MuxFaultRow) any { return r.Deadlocks }},
		},
	}
	s.Render(w, rows)
}

// Flush renders the flush-policy ablation grid.
func Flush(w io.Writer, rows []core.FlushRow) {
	s := Spec[core.FlushRow]{
		Title: "Pipelining flush-policy ablation (WAN first-time retrieval)",
		Width: 64,
		Cols: []Col[core.FlushRow]{
			{Head: "buffer", Format: "%-12d", Value: func(r core.FlushRow) any { return r.BufferSize }},
			{Head: "timer", Format: "%-14s", Value: func(r core.FlushRow) any { return r.FlushTimeout }},
			{Head: "Pa", Format: "%8.1f", Value: func(r core.FlushRow) any { return r.Packets }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.FlushRow) any { return r.Seconds }},
		},
	}
	s.Render(w, rows)
}

// cssSpec lists the image→CSS replacements.
var cssSpec = Spec[webgen.Replacement]{
	Cols: []Col[webgen.Replacement]{
		{Head: "image", Format: "%-22s", Value: func(r webgen.Replacement) any { return r.Name }},
		{Head: "role", Format: "%-10s", Value: func(r webgen.Replacement) any { return r.Role }},
		{Head: "GIF", Format: "%10d", Value: func(r webgen.Replacement) any { return r.GIFBytes }},
		{Head: "HTML+CSS", Format: "%10d", Value: func(r webgen.Replacement) any { return r.CSSBytes() }},
		{Head: "saved", Format: "%8d", Value: func(r webgen.Replacement) any { return r.Saved() }},
	},
}

// CSS renders the image→CSS replacement analysis (Figure 1 and the
// whole-page estimate).
func CSS(w io.Writer, site *webgen.Site) {
	fig := webgen.FigureOneReplacement()
	line(w, "Figure 1 - the %q banner", "solutions")
	line(w, "  GIF: %d bytes; HTML+CSS replacement: %d bytes (paper: 682 -> ~150)", fig.GIFBytes, fig.CSSBytes())
	line(w, "  reduction factor: %.1fx", float64(fig.GIFBytes)/float64(fig.CSSBytes()))
	line(w, "")
	rep := site.CSSReplacements()
	line(w, "Whole-page image -> HTML+CSS analysis")
	rule(w, 70)
	line(w, "  images replaced:        %d of %d", len(rep.Replacements), len(rep.Replacements)+len(rep.Kept))
	line(w, "  HTTP requests saved:    %d of 43", rep.RequestsSaved)
	line(w, "  image bytes removed:    %d", rep.GIFBytesRemoved)
	line(w, "  HTML+CSS bytes added:   %d", rep.CSSBytesAdded)
	line(w, "  net payload saving:     %d bytes", rep.NetSavings())
	rule(w, 70)
	line(w, "%s", cssSpec.HeaderLine())
	for _, r := range rep.Replacements {
		line(w, "%s", cssSpec.Row(r))
	}
	rule(w, 70)
}

// pngSpec lists the GIF→PNG/MNG conversions.
var pngSpec = Spec[webgen.Conversion]{
	Cols: []Col[webgen.Conversion]{
		{Head: "image", Format: "%-22s", Value: func(c webgen.Conversion) any { return c.Name }},
		{Head: "role", Format: "%-10s", Value: func(c webgen.Conversion) any { return c.Role }},
		{Head: "GIF", Format: "%10d", Value: func(c webgen.Conversion) any { return c.GIFBytes }},
		{Head: "PNG/MNG", Format: "%10d", Value: func(c webgen.Conversion) any { return c.NewBytes }},
		{Head: "saved", Format: "%8d", Value: func(c webgen.Conversion) any { return c.Saved() }},
	},
}

// PNG renders the GIF→PNG / animated GIF→MNG conversion report.
func PNG(w io.Writer, site *webgen.Site) error {
	rep, err := site.ConvertImages()
	if err != nil {
		return err
	}
	line(w, "GIF -> PNG and animated GIF -> MNG conversion")
	rule(w, 76)
	line(w, "  static GIFs:  %d -> %d bytes (saved %d, %.1f%%)  [paper: 103299 -> 92096]",
		rep.StaticGIF, rep.StaticPNG, rep.StaticSaved(), 100*float64(rep.StaticSaved())/float64(rep.StaticGIF))
	line(w, "  animations:   %d -> %d bytes (saved %d, %.1f%%)  [paper: 24988 -> 16329]",
		rep.AnimGIF, rep.AnimMNG, rep.AnimSaved(), 100*float64(rep.AnimSaved())/float64(rep.AnimGIF))
	rule(w, 76)
	line(w, "%s", pngSpec.HeaderLine())
	for _, c := range rep.Static {
		line(w, "%s", pngSpec.Row(c))
	}
	for _, c := range rep.Animations {
		line(w, "%s", pngSpec.Row(c))
	}
	rule(w, 76)
	return nil
}

// Duration formats a duration for table cells.
func Duration(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Range renders the range-probe ("poor man's multiplexing") experiment.
func Range(w io.Writer, rows []core.RangeRow) {
	s := Spec[core.RangeRow]{
		Title: "Range-request revalidation after a site revision (PPP, pipelined, ~30% of objects changed)",
		Width: 110,
		Cols: []Col[core.RangeRow]{
			{Format: "%-46s", Value: func(r core.RangeRow) any { return r.Label }},
			{Head: "Pa", Format: "%8.1f", Value: func(r core.RangeRow) any { return r.Packets }},
			{Head: "Bytes", Format: "%9.0f", Value: func(r core.RangeRow) any { return r.Bytes }},
			{Head: "Sec", Format: "%9.2f", Value: func(r core.RangeRow) any { return r.Seconds }},
			{Head: "Metadata Sec", Format: "%13.2f", Value: func(r core.RangeRow) any { return r.MetadataSeconds }},
			{Head: "206s", Format: "%8.1f", Value: func(r core.RangeRow) any { return r.Responses206 }},
		},
	}
	s.Render(w, rows)
}

// HeaderRedundancy renders the compact-wire-representation estimate.
func HeaderRedundancy(w io.Writer, rows []core.HeaderRedundancyRow) {
	s := Spec[core.HeaderRedundancyRow]{
		Title: "Request redundancy on the 43-request revalidation (paper: ~10% of bytes change between requests)",
		Width: 86,
		Cols: []Col[core.HeaderRedundancyRow]{
			{Format: "%-52s", Value: func(r core.HeaderRedundancyRow) any { return r.Label }},
			{Head: "bytes", Format: "%12d", Value: func(r core.HeaderRedundancyRow) any { return r.RequestBytes }},
			{Head: "ratio", Format: "%8.3f", Value: func(r core.HeaderRedundancyRow) any { return r.Ratio }},
		},
	}
	s.Render(w, rows)
}

// Cwnd renders the initial-window ablation.
func Cwnd(w io.Writer, rows []core.CwndRow) {
	s := Spec[core.CwndRow]{
		Title: "Slow-start initial window ablation (WAN first-time retrieval, pipelined)",
		Width: 64,
		Cols: []Col[core.CwndRow]{
			{Format: "%-30s", Value: func(r core.CwndRow) any { return r.Label }},
			{Head: "Pa", Format: "%8.1f", Value: func(r core.CwndRow) any { return r.Packets }},
			{Head: "Sec", Format: "%8.2f", Value: func(r core.CwndRow) any { return r.Seconds }},
		},
	}
	s.Render(w, rows)
}

// MetricsTable renders collected per-run metrics records as a text
// table (the structured counterpart is Collector.WriteCSV / -json).
func MetricsTable(w io.Writer, recs []exp.Metrics) {
	s := Spec[exp.Metrics]{
		Title: "Per-run metrics",
		Width: 120,
		Cols: []Col[exp.Metrics]{
			{Head: "scenario", Format: "%-40s", Value: func(m exp.Metrics) any { return m.Scenario }},
			{Head: "seed", Format: "%8d", Value: func(m exp.Metrics) any { return m.Seed }},
			{Head: "run", Format: "%3d", Value: func(m exp.Metrics) any { return m.Run }},
			{Head: "Pa", Format: "%6d", Value: func(m exp.Metrics) any { return m.Packets }},
			{Head: "Bytes", Format: "%9d", Value: func(m exp.Metrics) any { return m.PayloadBytes }},
			{Head: "Sec", Format: "%7.2f", Value: func(m exp.Metrics) any { return m.ElapsedSeconds }},
			{Head: "rexmt", Format: "%5d", Value: func(m exp.Metrics) any { return m.Retransmissions }},
			{Head: "drop", Format: "%4d", Value: func(m exp.Metrics) any { return m.Drops }},
			{Head: "dial", Format: "%4d", Value: func(m exp.Metrics) any { return m.Dials }},
			{Head: "conn", Format: "%4d", Value: func(m exp.Metrics) any { return m.MaxOpenConns }},
			{Head: "cliCPU", Format: "%7.3f", Value: func(m exp.Metrics) any { return m.ClientCPUSeconds }},
			{Head: "srvCPU", Format: "%7.3f", Value: func(m exp.Metrics) any { return m.ServerCPUSeconds }},
		},
	}
	s.Render(w, recs)
}
