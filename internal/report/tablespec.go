package report

import (
	"fmt"
	"io"
	"strings"
)

// Col is one column of a table Spec: a header label, the fmt verb used
// for data cells, and the value extractor. A Format containing no verb
// is a literal separator column, emitted as-is in the header and in
// every row (MainTable's "|" between the two workloads).
type Col[R any] struct {
	Head   string
	Format string
	Value  func(R) any
}

// Spec is a declarative table description. Render reproduces the layout
// every hand-written printer in this package used: title, rule,
// optional pre-header lines, a column-header row derived from the cell
// formats, rule, one line per row plus any sub-rows, optional footer
// lines, closing rule. Cells on a line are joined by single spaces.
type Spec[R any] struct {
	Title string
	// Width is the horizontal-rule length.
	Width int
	// PreHeader lines print between the opening rule and the column
	// header (MainTable's workload banner).
	PreHeader []string
	Cols      []Col[R]
	// SubRows, when non-nil, returns extra pre-formatted lines printed
	// after a row (the paper-comparison rows).
	SubRows func(R) []string
	// Footer, when non-nil, returns pre-formatted lines printed before
	// the closing rule.
	Footer func() []string
}

// headFormat converts a cell verb into its header verb, keeping flags
// and width but dropping precision and the type: "%8.1f" → "%8s",
// "%-12d" → "%-12s".
func headFormat(cell string) string {
	i := strings.IndexByte(cell, '%')
	j := i + 1
	for j < len(cell) && strings.IndexByte("-+ 0#", cell[j]) >= 0 {
		j++
	}
	for j < len(cell) && cell[j] >= '0' && cell[j] <= '9' {
		j++
	}
	return cell[:j] + "s"
}

// HeaderLine renders the column-header row.
func (s Spec[R]) HeaderLine() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		if !strings.ContainsRune(c.Format, '%') {
			parts[i] = c.Format
			continue
		}
		parts[i] = fmt.Sprintf(headFormat(c.Format), c.Head)
	}
	return strings.Join(parts, " ")
}

// Row renders one data row.
func (s Spec[R]) Row(r R) string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		if !strings.ContainsRune(c.Format, '%') {
			parts[i] = c.Format
			continue
		}
		parts[i] = fmt.Sprintf(c.Format, c.Value(r))
	}
	return strings.Join(parts, " ")
}

// Render writes the whole table.
func (s Spec[R]) Render(w io.Writer, rows []R) {
	if s.Title != "" {
		line(w, "%s", s.Title)
	}
	rule(w, s.Width)
	for _, l := range s.PreHeader {
		line(w, "%s", l)
	}
	line(w, "%s", s.HeaderLine())
	rule(w, s.Width)
	for _, r := range rows {
		line(w, "%s", s.Row(r))
		if s.SubRows != nil {
			for _, l := range s.SubRows(r) {
				line(w, "%s", l)
			}
		}
	}
	if s.Footer != nil {
		for _, l := range s.Footer() {
			line(w, "%s", l)
		}
	}
	rule(w, s.Width)
}
