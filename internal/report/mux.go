package report

import (
	"io"

	"repro/internal/core"
)

// muxGridSpec is the mode-comparison grid: every protocol mode's
// whole-fetch quantities, both workloads side by side, as in the
// paper's main tables.
var muxGridSpec = Spec[core.MuxRow]{
	Title: "Multiplexed protocol modes (Apache; paper modes vs mux / mux+push / burst)",
	Width: 92,
	PreHeader: []string{
		"First Time Retrieval                 Cache Validation",
	},
	Cols: []Col[core.MuxRow]{
		{Head: "env", Format: "%-4s", Value: func(r core.MuxRow) any { return r.Env }},
		{Format: "%-33s", Value: func(r core.MuxRow) any { return r.Mode }},
		{Head: "Pa", Format: "%7.1f", Value: func(r core.MuxRow) any { return r.First.Packets }},
		{Head: "KB", Format: "%7.1f", Value: func(r core.MuxRow) any { return r.First.KBytes }},
		{Head: "Sec", Format: "%8.2f", Value: func(r core.MuxRow) any { return r.First.Seconds }},
		{Format: "|", Value: nil},
		{Head: "Pa", Format: "%7.1f", Value: func(r core.MuxRow) any { return r.Reval.Packets }},
		{Head: "KB", Format: "%7.1f", Value: func(r core.MuxRow) any { return r.Reval.KBytes }},
		{Head: "Sec", Format: "%8.2f", Value: func(r core.MuxRow) any { return r.Reval.Seconds }},
	},
}

// muxAcctRow flattens one workload's multiplexing accounting for the
// per-stream table.
type muxAcctRow struct {
	Env, Mode, Workload string
	Cell                core.MuxCell
}

// muxAcctSpec details what the framing layer did: streams, push
// economics (promises, claims, wasted bytes), header-compression
// savings, and flow-control stalls.
var muxAcctSpec = Spec[muxAcctRow]{
	Title: "Multiplexing accounting (framed modes)",
	Width: 92,
	PreHeader: []string{
		"Strm = client-opened streams | Prom/Used = push promises made / claimed",
		"PushWaste = pushed KB never wanted | HdrSaved = header-compression KB | Stall = window exhaustions",
	},
	Cols: []Col[muxAcctRow]{
		{Head: "env", Format: "%-4s", Value: func(r muxAcctRow) any { return r.Env }},
		{Format: "%-20s", Value: func(r muxAcctRow) any { return r.Mode }},
		{Head: "workload", Format: "%-17s", Value: func(r muxAcctRow) any { return r.Workload }},
		{Head: "Strm", Format: "%5.0f", Value: func(r muxAcctRow) any { return r.Cell.Streams }},
		{Head: "Prom", Format: "%5.0f", Value: func(r muxAcctRow) any { return r.Cell.Promised }},
		{Head: "Used", Format: "%5.0f", Value: func(r muxAcctRow) any { return r.Cell.Used }},
		{Head: "PushWaste", Format: "%10.1f", Value: func(r muxAcctRow) any { return r.Cell.PushWasteKB }},
		{Head: "HdrSaved", Format: "%9.2f", Value: func(r muxAcctRow) any { return r.Cell.HdrSavedKB }},
		{Head: "Stall", Format: "%6.1f", Value: func(r muxAcctRow) any { return r.Cell.Stalls }},
	},
}

// Mux renders the multiplexed-protocol experiment: the full mode grid,
// the framing layer's own accounting, and the new modes' fault-recovery
// and seed-variance sections.
func Mux(w io.Writer, d *core.MuxData) {
	muxGridSpec.Render(w, d.Grid)
	io.WriteString(w, "\n")
	var acct []muxAcctRow
	for _, r := range d.Grid {
		if r.First.Streams == 0 && r.Reval.Streams == 0 && r.First.Promised == 0 {
			continue // an HTTP/1.x mode: nothing multiplexed to account
		}
		acct = append(acct,
			muxAcctRow{Env: r.Env, Mode: r.Mode, Workload: "First Time", Cell: r.First},
			muxAcctRow{Env: r.Env, Mode: r.Mode, Workload: "Cache Validation", Cell: r.Reval},
		)
	}
	muxAcctSpec.Render(w, acct)
	io.WriteString(w, "\n")
	Faults(w, d.Faults)
	io.WriteString(w, "\n")
	Variance(w, d.Variance)
}
