package report

import (
	"fmt"
	"io"

	"repro/internal/causality"
	"repro/internal/core"
	"repro/internal/obs"
)

// blameVector formats a Blame as one "cat=ms" line, every category
// shown so the conservation sum can be eyeballed.
func blameVector(b causality.Blame) string {
	s := ""
	for c := causality.Category(0); c < causality.NumCategories; c++ {
		if c > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s=%.1f", c, b.Ms(c))
	}
	return s
}

// BlameSummary prints the run-level attribution totals the
// blame-annotated waterfall rows sum to, plus the critical-path
// length. Totals are request-milliseconds: concurrent requests each
// count their own wait, so the sum equals summed per-request elapsed
// time, not wall time.
func BlameSummary(w io.Writer, a *causality.Analysis) {
	line(w, "Attribution totals over %d requests (request-ms; sum = %.1f = summed elapsed %.1f):",
		len(a.Requests), float64(a.Total.Sum())/1e6, float64(a.Elapsed)/1e6)
	line(w, "  %s", blameVector(a.Total))
	line(w, "critical path: %.1f ms over %d gating requests", float64(a.CriticalPath)/1e6, len(a.Chain))
}

// pathRow joins one critical-path link with its request's identity.
type pathRow struct {
	link causality.ChainLink
	path string
}

// CriticalPath renders the page-load gating chain earliest-first: one
// row per binding constraint, the interval it gated, and — as the
// footer — the chain's own blame partition (which sums exactly to the
// path length).
func CriticalPath(w io.Writer, a *causality.Analysis) {
	paths := make(map[obs.SpanID]string, len(a.Requests))
	for _, r := range a.Requests {
		paths[r.Span] = r.Path
	}
	rows := make([]pathRow, len(a.Chain))
	for i, l := range a.Chain {
		rows[i] = pathRow{link: l, path: paths[l.Span]}
	}
	s := Spec[pathRow]{
		Title: fmt.Sprintf("Page-load critical path: %.1f ms across %d gating requests",
			float64(a.CriticalPath)/1e6, len(a.Chain)),
		Width: 76,
		Cols: []Col[pathRow]{
			{Head: "#", Format: "%3d", Value: func(r pathRow) any { return int(r.link.Span) }},
			{Head: "path", Format: "%-30s", Value: func(r pathRow) any { return r.path }},
			{Head: "from s", Format: "%9.3f", Value: func(r pathRow) any { return r.link.From.Seconds() }},
			{Head: "to s", Format: "%9.3f", Value: func(r pathRow) any { return r.link.To.Seconds() }},
			{Head: "len ms", Format: "%9.1f", Value: func(r pathRow) any { return float64(r.link.To.Sub(r.link.From)) / 1e6 }},
		},
		Footer: func() []string {
			return []string{"blame on the path (ms): " + blameVector(a.CriticalBlame)}
		},
	}
	s.Render(w, rows)
}

// blameCols builds the shared column set of the blame sections: the
// cell label, whole-fetch seconds, critical-path milliseconds, and one
// column per attribution category (milliseconds, summed over the
// page's requests, averaged over the sweep).
func blameCols(labelHead string, labelWidth string) []Col[core.BlameRow] {
	cols := []Col[core.BlameRow]{
		{Head: labelHead, Format: labelWidth, Value: func(r core.BlameRow) any { return r.Label }},
		{Head: "Sec", Format: "%7.2f", Value: func(r core.BlameRow) any { return r.Seconds }},
		{Head: "CritMs", Format: "%8.1f", Value: func(r core.BlameRow) any { return r.CriticalMs }},
		{Format: "|", Value: nil},
	}
	heads := [causality.NumCategories]string{
		"conn", "rto", "nagle", "flow", "sstart", "server", "hol", "wire",
	}
	for c := causality.Category(0); c < causality.NumCategories; c++ {
		cat := c
		cols = append(cols, Col[core.BlameRow]{
			Head: heads[c], Format: "%8.1f",
			Value: func(r core.BlameRow) any { return r.Cats[cat] },
		})
	}
	return cols
}

var blameLegend = []string{
	"Per-request elapsed time partitioned into exclusive causes (ms, summed over requests):",
	"conn=TCP setup  rto=retransmit recovery  nagle=Nagle holds  flow=mux window stalls",
	"sstart=cwnd waits  server=think time  hol=head-of-line queueing  wire=transmission",
	"CritMs = page-load critical path (root document → last object through binding constraints)",
}

// Blame renders the blame experiment: the paper's §4 attribution
// narrative as numbers — the Nagle stall, connection-setup cost, the
// stream-priority ablation, and a two-run "why" diff.
func Blame(w io.Writer, d *core.BlameData) {
	nagle := Spec[core.BlameRow]{
		Title:     "Where did the time go? (Jigsaw; WAN first-time; server Nagle re-enabled)",
		Width:     112,
		PreHeader: blameLegend,
		Cols:      blameCols("variant", "%-31s"),
	}
	nagle.Render(w, d.Nagle)
	io.WriteString(w, "\n")

	setup := Spec[core.BlameRow]{
		Title: "Connection-setup attribution (Apache; PPP first-time; tuned server)",
		Width: 112,
		Cols:  blameCols("mode", "%-31s"),
	}
	setup.Render(w, d.Setup)
	io.WriteString(w, "\n")

	sched := Spec[core.BlameRow]{
		Title: "Stream-priority ablation (Apache; PPP first-time; framed modes)",
		Width: 112,
		PreHeader: []string{
			"FIFO drains streams in creation order; the default pump serves (priority, id).",
			"The delta lives in the critical path: pushed streams no longer yield to page data.",
		},
		Cols: blameCols("scheduler", "%-31s"),
	}
	sched.Render(w, d.Sched)
	io.WriteString(w, "\n")

	diff := Spec[causality.DiffRow]{
		Title: "Why is " + d.WhyA + " faster than " + d.WhyB + "? (fixed seeds, per-category totals, largest delta first)",
		Width: 60,
		Cols: []Col[causality.DiffRow]{
			{Head: "category", Format: "%-10s", Value: func(r causality.DiffRow) any { return r.Cat.String() }},
			{Head: "A ms", Format: "%10.1f", Value: func(r causality.DiffRow) any { return float64(r.A) / 1e6 }},
			{Head: "B ms", Format: "%10.1f", Value: func(r causality.DiffRow) any { return float64(r.B) / 1e6 }},
			{Head: "B-A ms", Format: "%10.1f", Value: func(r causality.DiffRow) any { return float64(r.Delta) / 1e6 }},
		},
	}
	diff.Render(w, d.Why)
}
