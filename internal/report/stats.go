package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stats"
)

// MeanCI formats a mean with its 95% confidence-interval half-width as
// the conventional "m ± c" cell. A zero-width interval (single sample)
// renders the mean alone, so unreplicated tables stay clean.
func MeanCI(s stats.Summary, prec int) string {
	if s.CI95 == 0 {
		return fmt.Sprintf("%.*f", prec, s.Mean)
	}
	return fmt.Sprintf("%.*f ±%.*f", prec, s.Mean, prec, s.CI95)
}

// Variance renders the seed-variance experiment: per-cell mean ± 95% CI
// for the paper's headline quantities and per-request total-latency
// quantiles, clean vs burst loss.
func Variance(w io.Writer, rows []core.VarianceRow) {
	s := Spec[core.VarianceRow]{
		Title: "Seed-variance experiment (Apache, first-time retrieval; Student-t 95% CIs over N seeded runs)",
		Width: 130,
		PreHeader: []string{
			"Sec/Pa = whole-fetch elapsed seconds and packets, mean ± 95% CI | p50/p90/p99/max = per-request total latency [ms]",
		},
		Cols: []Col[core.VarianceRow]{
			{Head: "env", Format: "%-5s", Value: func(r core.VarianceRow) any { return r.Env }},
			{Head: "fault", Format: "%-12s", Value: func(r core.VarianceRow) any { return r.Fault }},
			{Format: "%-33s", Value: func(r core.VarianceRow) any { return r.Mode }},
			{Head: "N", Format: "%3d", Value: func(r core.VarianceRow) any { return r.N }},
			{Head: "Sec", Format: "%15s", Value: func(r core.VarianceRow) any { return MeanCI(r.Seconds, 2) }},
			{Head: "Pa", Format: "%15s", Value: func(r core.VarianceRow) any { return MeanCI(r.Packets, 1) }},
			{Format: "|", Value: nil},
			{Head: "p50", Format: "%8.1f", Value: func(r core.VarianceRow) any { return r.LatP50Ms }},
			{Head: "p90", Format: "%8.1f", Value: func(r core.VarianceRow) any { return r.LatP90Ms }},
			{Head: "p99", Format: "%8.1f", Value: func(r core.VarianceRow) any { return r.LatP99Ms }},
			{Head: "max", Format: "%9.1f", Value: func(r core.VarianceRow) any { return r.LatMaxMs }},
		},
	}
	s.Render(w, rows)
}

// Cells renders the cross-seed per-cell aggregates a collector
// accumulated over any experiment mix: mean ± 95% CI for elapsed time
// and packets, plus the averaged latency quantiles where runs collected
// them (empty cells otherwise).
func Cells(w io.Writer, cells []exp.CellStats) {
	lat := func(c exp.CellStats, key string) string {
		v, ok := c.Dist[key]
		if !ok {
			return ""
		}
		return fmt.Sprintf("%.1f", v)
	}
	s := Spec[exp.CellStats]{
		Title: "Per-cell statistics (mean ± Student-t 95% CI across collected runs; latency quantiles [ms] where recorded)",
		Width: 148,
		Cols: []Col[exp.CellStats]{
			{Head: "exp", Format: "%-9s", Value: func(c exp.CellStats) any { return c.Experiment }},
			{Head: "scenario", Format: "%-64s", Value: func(c exp.CellStats) any { return c.Scenario }},
			{Head: "N", Format: "%3d", Value: func(c exp.CellStats) any { return c.N }},
			{Head: "Sec", Format: "%15s", Value: func(c exp.CellStats) any { return MeanCI(c.Elapsed, 2) }},
			{Head: "Pa", Format: "%15s", Value: func(c exp.CellStats) any { return MeanCI(c.Packets, 1) }},
			{Head: "p50", Format: "%8s", Value: func(c exp.CellStats) any { return lat(c, "lat_total_ms_p50") }},
			{Head: "p90", Format: "%8s", Value: func(c exp.CellStats) any { return lat(c, "lat_total_ms_p90") }},
			{Head: "p99", Format: "%8s", Value: func(c exp.CellStats) any { return lat(c, "lat_total_ms_p99") }},
		},
	}
	s.Render(w, cells)
}
