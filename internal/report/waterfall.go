package report

import (
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/sim"
)

// wfSec renders an instant as seconds, "-" when never recorded.
func wfSec(t sim.Time) string {
	if t == obs.NoTime {
		return "-"
	}
	return fmt.Sprintf("%.3f", t.Seconds())
}

// wfDur renders a duration in milliseconds, "-" when underlying
// instants are missing.
func wfDur(d sim.Duration) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(d)/1e6)
}

// wfStatus renders the status code, "-" for abandoned spans.
func wfStatus(r obs.WaterfallRow) string {
	if r.Done == obs.NoTime {
		return "-"
	}
	return fmt.Sprintf("%d", r.Status)
}

// wfVia renders the intermediary that issued the request, "-" for the
// client's own requests.
func wfVia(r obs.WaterfallRow) string {
	if r.Via == "" {
		return "-"
	}
	return r.Via
}

// wfFlags marks connection reuse (+), retried requests (!), spans
// abandoned to a connection failure or fault (x) — an x row's request
// was lost and, when the retry budget allowed, re-issued as a later
// row marked ! — and server-pushed spans (p); a row flagged both p
// and x was pushed but never used, i.e. wasted push bytes.
func wfFlags(r obs.WaterfallRow) string {
	s := ""
	if r.Reused {
		s += "+"
	}
	if r.Retried {
		s += "!"
	}
	if r.Pushed {
		s += "p"
	}
	if r.Done == obs.NoTime {
		s += "x"
	}
	return s
}

// waterfallSpec is the devtools-style timeline table: per-object queue
// / send / first-byte / done instants (seconds of simulated time),
// TTFB and transfer durations (milliseconds), status, and size.
var waterfallSpec = Spec[obs.WaterfallRow]{
	Title: "Request waterfall (times in s, TTFB/xfer in ms; + reused conn, ! retried, p pushed, x abandoned)",
	Width: 108,
	Cols: []Col[obs.WaterfallRow]{
		{Head: "#", Format: "%3d", Value: func(r obs.WaterfallRow) any { return int(r.Span) }},
		{Head: "conn", Format: "%4d", Value: func(r obs.WaterfallRow) any { return int(r.Conn) }},
		{Head: "via", Format: "%-9s", Value: func(r obs.WaterfallRow) any { return wfVia(r) }},
		{Head: "f", Format: "%-3s", Value: func(r obs.WaterfallRow) any { return wfFlags(r) }},
		{Head: "method", Format: "%-6s", Value: func(r obs.WaterfallRow) any { return r.Method }},
		{Head: "path", Format: "%-18s", Value: func(r obs.WaterfallRow) any { return r.Path }},
		{Head: "queued", Format: "%8s", Value: func(r obs.WaterfallRow) any { return wfSec(r.Queued) }},
		{Head: "sent", Format: "%8s", Value: func(r obs.WaterfallRow) any { return wfSec(r.Written) }},
		{Head: "ttfb", Format: "%8s", Value: func(r obs.WaterfallRow) any { return wfDur(r.TTFB()) }},
		{Head: "xfer", Format: "%8s", Value: func(r obs.WaterfallRow) any { return wfDur(r.Transfer()) }},
		{Head: "done", Format: "%8s", Value: func(r obs.WaterfallRow) any { return wfSec(r.Done) }},
		{Head: "status", Format: "%6s", Value: func(r obs.WaterfallRow) any { return wfStatus(r) }},
		{Head: "bytes", Format: "%7d", Value: func(r obs.WaterfallRow) any { return r.Bytes }},
	},
}

// WriteWaterfall renders a timeline bus's request waterfall through the
// column-spec engine.
func WriteWaterfall(w io.Writer, b *obs.Bus) {
	waterfallSpec.Render(w, b.Waterfall())
}
