package report

import (
	"fmt"
	"io"

	"repro/internal/causality"
	"repro/internal/obs"
	"repro/internal/sim"
)

// wfLegend is the single definition of the waterfall flag vocabulary —
// the table title (and anything else describing the flags) derives
// from it rather than repeating it.
const wfLegend = "+ reused conn, ! retried, p pushed, x abandoned, * on critical path"

// wfSec renders an instant as seconds, "-" when never recorded.
func wfSec(t sim.Time) string {
	if t == obs.NoTime {
		return "-"
	}
	return fmt.Sprintf("%.3f", t.Seconds())
}

// wfDur renders a duration in milliseconds, "-" when underlying
// instants are missing.
func wfDur(d sim.Duration) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(d)/1e6)
}

// wfStatus renders the status code, "-" for abandoned spans.
func wfStatus(r obs.WaterfallRow) string {
	if r.Done == obs.NoTime {
		return "-"
	}
	return fmt.Sprintf("%d", r.Status)
}

// wfVia renders the intermediary that issued the request, "-" for the
// client's own requests.
func wfVia(r obs.WaterfallRow) string {
	if r.Via == "" {
		return "-"
	}
	return r.Via
}

// wfFlags marks each row with the wfLegend vocabulary. An x row's
// request was lost and, when the retry budget allowed, re-issued as a
// later row marked !; a row flagged both p and x was pushed but never
// used, i.e. wasted push bytes. The * flag appears only on waterfalls
// rendered with an attribution analysis.
func wfFlags(r obs.WaterfallRow, onPath bool) string {
	s := ""
	if r.Reused {
		s += "+"
	}
	if r.Retried {
		s += "!"
	}
	if r.Pushed {
		s += "p"
	}
	if r.Done == obs.NoTime {
		s += "x"
	}
	if onPath {
		s += "*"
	}
	return s
}

// wfRow pairs a waterfall row with its optional blame breakdown.
type wfRow struct {
	obs.WaterfallRow
	blame  *causality.RequestBlame
	onPath bool
}

// wfBlameMs renders one blame category, "-" for rows the analysis does
// not cover (abandoned spans, proxy upstream hops).
func wfBlameMs(r wfRow, c causality.Category) string {
	if r.blame == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", r.blame.B.Ms(c))
}

// waterfallSpec is the devtools-style timeline table: per-object queue
// / send / first-byte / done instants (seconds of simulated time),
// TTFB and transfer durations (milliseconds), status, and size.
var waterfallSpec = Spec[wfRow]{
	Title: "Request waterfall (times in s, TTFB/xfer in ms; " + wfLegend + ")",
	Width: 108,
	Cols: []Col[wfRow]{
		{Head: "#", Format: "%3d", Value: func(r wfRow) any { return int(r.Span) }},
		{Head: "conn", Format: "%4d", Value: func(r wfRow) any { return int(r.Conn) }},
		{Head: "via", Format: "%-9s", Value: func(r wfRow) any { return wfVia(r.WaterfallRow) }},
		{Head: "f", Format: "%-3s", Value: func(r wfRow) any { return wfFlags(r.WaterfallRow, r.onPath) }},
		{Head: "method", Format: "%-6s", Value: func(r wfRow) any { return r.Method }},
		{Head: "path", Format: "%-18s", Value: func(r wfRow) any { return r.Path }},
		{Head: "queued", Format: "%8s", Value: func(r wfRow) any { return wfSec(r.Queued) }},
		{Head: "sent", Format: "%8s", Value: func(r wfRow) any { return wfSec(r.Written) }},
		{Head: "ttfb", Format: "%8s", Value: func(r wfRow) any { return wfDur(r.TTFB()) }},
		{Head: "xfer", Format: "%8s", Value: func(r wfRow) any { return wfDur(r.Transfer()) }},
		{Head: "done", Format: "%8s", Value: func(r wfRow) any { return wfSec(r.Done) }},
		{Head: "status", Format: "%6s", Value: func(r wfRow) any { return wfStatus(r.WaterfallRow) }},
		{Head: "bytes", Format: "%7d", Value: func(r wfRow) any { return r.Bytes }},
	},
}

// blamePhaseCols appends the per-request attribution phases (ms): the
// same exclusive categories the blame experiment reports, summing
// exactly to queued → done for every analyzed row.
func blamePhaseCols(cols []Col[wfRow]) []Col[wfRow] {
	heads := [causality.NumCategories]string{
		"conn", "rto", "nagle", "flow", "sstart", "server", "hol", "wire",
	}
	cols = append(cols, Col[wfRow]{Format: "|", Value: nil})
	for c := causality.Category(0); c < causality.NumCategories; c++ {
		cat := c
		cols = append(cols, Col[wfRow]{
			Head: heads[c], Format: "%8s",
			Value: func(r wfRow) any { return wfBlameMs(r, cat) },
		})
	}
	return cols
}

// WriteWaterfall renders a timeline bus's request waterfall through
// the column-spec engine. With a non-nil analysis, each row also gets
// its blame breakdown as phase columns (ms, summing exactly to
// queued → done) and critical-path members are flagged *.
func WriteWaterfall(w io.Writer, b *obs.Bus, a *causality.Analysis) {
	base := b.Waterfall()
	rows := make([]wfRow, len(base))
	for i, r := range base {
		rows[i] = wfRow{WaterfallRow: r}
	}
	spec := waterfallSpec
	if a != nil {
		byID := make(map[obs.SpanID]*causality.RequestBlame, len(a.Requests))
		for i := range a.Requests {
			byID[a.Requests[i].Span] = &a.Requests[i]
		}
		for i := range rows {
			if rb, ok := byID[rows[i].Span]; ok {
				rows[i].blame = rb
				rows[i].onPath = rb.OnPath
			}
		}
		spec.Cols = blamePhaseCols(spec.Cols)
		spec.Width = 188
	}
	spec.Render(w, rows)
}
