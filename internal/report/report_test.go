package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/webgen"
)

func TestEnvironmentsRendersTable1(t *testing.T) {
	var buf bytes.Buffer
	Environments(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "10Mbit Ethernet", "28.8k modem", "1460"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMainTableRendersPaperRows(t *testing.T) {
	tab := core.Table{
		Number: 4,
		Title:  "Table 4 - test",
		Rows: []core.Row{{
			Label: "HTTP/1.0",
			First: core.Cell{Packets: 533, Bytes: 196898, Seconds: 0.84, OverheadPct: 9.8},
			Reval: core.Cell{Packets: 442, Bytes: 69516, Seconds: 0.82, OverheadPct: 20.3},
			Paper: &core.PaperRow{
				Label: "HTTP/1.0",
				First: core.PaperCell{Packets: 510.2, Bytes: 216289, Seconds: 0.97},
				Reval: core.PaperCell{Packets: 374.8, Bytes: 61117, Seconds: 0.78},
			},
		}},
	}
	var buf bytes.Buffer
	MainTable(&buf, tab)
	out := buf.String()
	for _, want := range []string{"Table 4 - test", "HTTP/1.0", "(paper)", "533.0", "510.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	rows := []core.Table3Row{
		{Label: "HTTP/1.0", MaxSockets: 6, TotalSockets: 43, PktsC2S: 229, PktsS2C: 218, PktsTotal: 447, Elapsed: 0.82},
		{Label: "HTTP/1.1 Persistent", MaxSockets: 1, TotalSockets: 1, PktsC2S: 48, PktsS2C: 48, PktsTotal: 96, Elapsed: 3.69},
		{Label: "HTTP/1.1 Pipeline", MaxSockets: 1, TotalSockets: 1, PktsC2S: 17, PktsS2C: 14, PktsTotal: 31, Elapsed: 4.91},
	}
	var buf bytes.Buffer
	Table3(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Max simultaneous sockets", "Total elapsed time", "(paper)", "497.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSmallRenderers(t *testing.T) {
	var buf bytes.Buffer
	Modem(&buf, []core.ModemRow{{Label: "x", Packets: 65, Bytes: 42000, Seconds: 12.6}}, "Jigsaw")
	TagCase(&buf, []core.TagCaseRow{{Label: "lower", HTMLBytes: 42000, Deflated: 11000, Ratio: 0.26}})
	Nagle(&buf, []core.NagleRow{{Label: "x", Packets: 10, Seconds: 1}})
	Reset(&buf, []core.ResetRow{{Label: "x", Packets: 10, Seconds: 1, Errors: 1, Retried: 2, Responses: 43}})
	Flush(&buf, []core.FlushRow{{BufferSize: 1024, FlushTimeout: 50 * time.Millisecond, Packets: 200, Seconds: 1.5}})
	Range(&buf, []core.RangeRow{{Label: "x", Packets: 1, Bytes: 2, Seconds: 3, MetadataSeconds: 4, Responses206: 5}})
	HeaderRedundancy(&buf, []core.HeaderRedundancyRow{{Label: "x", RequestBytes: 7000, Ratio: 1}})
	Cwnd(&buf, []core.CwndRow{{Label: "x", Packets: 1, Seconds: 2}})
	out := buf.String()
	for _, want := range []string{"Modem compression", "tag case", "Nagle", "early-close", "flush-policy", "Range-request", "redundancy", "initial window"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestCSSAndPNGRender(t *testing.T) {
	site, err := webgen.Microscape(webgen.Options{Seed: 4, HTMLBytes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	CSS(&buf, site)
	if !strings.Contains(buf.String(), "solutions") {
		t.Error("CSS report missing Figure 1")
	}
	buf.Reset()
	if err := PNG(&buf, site); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MNG") {
		t.Error("PNG report missing MNG line")
	}
}

func TestDurationFormat(t *testing.T) {
	if Duration(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("Duration = %q", Duration(1500*time.Millisecond))
	}
}
