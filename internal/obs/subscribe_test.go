package obs

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestSubscribeSeesEveryPublicationPath(t *testing.T) {
	s := sim.New()
	b := New(s)
	var seen []Event
	detach := b.Subscribe(func(ev Event) { seen = append(seen, ev) })
	defer detach()

	id := b.ConnOpen("client:1", "server:80")
	b.Cwnd(id, 4096, 65535)
	// WireSend bypasses add() (it stamps its own start time) — the
	// subscriber must still see it.
	b.WireSend("wire", 40, 10, 20, 30)
	b.WireDrop("wire", 40)

	if len(seen) != b.Len() {
		t.Fatalf("subscriber saw %d events, bus retained %d", len(seen), b.Len())
	}
	for i, ev := range b.Events() {
		if seen[i] != ev {
			t.Fatalf("event %d: subscriber saw %+v, bus retained %+v", i, seen[i], ev)
		}
	}
	if seen[2].Kind != KindWireSend || seen[2].Time != 10 {
		t.Fatalf("wire-send not delivered with its serialization-start stamp: %+v", seen[2])
	}
}

func TestSubscribeDetachStopsDelivery(t *testing.T) {
	s := sim.New()
	b := New(s)
	n := 0
	detach := b.Subscribe(func(Event) { n++ })
	b.WireDrop("l", 1)
	detach()
	b.WireDrop("l", 1)
	if n != 1 {
		t.Fatalf("subscriber called %d times, want 1 (detached before second event)", n)
	}
}

func TestSubscribeLIFO(t *testing.T) {
	s := sim.New()
	b := New(s)
	var order []string
	d1 := b.Subscribe(func(Event) { order = append(order, "first") })
	d2 := b.Subscribe(func(Event) { order = append(order, "second") })
	b.WireDrop("l", 1)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("delivery order = %v, want [first second]", order)
	}

	// Detaching out of LIFO order is a bug the bus surfaces loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-order detach did not panic")
			}
		}()
		d1()
	}()

	d2()
	d1()
	order = order[:0]
	b.WireDrop("l", 1)
	if len(order) != 0 {
		t.Fatalf("events delivered after full detach: %v", order)
	}
}

func TestSubscribeNilBus(t *testing.T) {
	var b *Bus
	detach := b.Subscribe(func(Event) { t.Fatal("nil bus delivered an event") })
	detach() // must be a no-op, not a panic
}

// TestSubscribeConcurrentBuses runs many buses with subscribers on
// separate goroutines — the shape of a parallel sweep with the flight
// recorder armed, where each run owns a bus and its subscription. Run
// under -race this pins that per-bus subscriber state is unshared.
func TestSubscribeConcurrentBuses(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := sim.New()
			b := New(s)
			count := 0
			detach := b.Subscribe(func(Event) { count++ })
			for i := 0; i < 1000; i++ {
				b.WireDrop("l", i)
			}
			detach()
			if count != 1000 {
				t.Errorf("subscriber saw %d events, want 1000", count)
			}
		}()
	}
	wg.Wait()
}
