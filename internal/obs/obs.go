// Package obs is the full-stack event-timeline subsystem: a low-overhead,
// allocation-conscious event bus that every layer of the simulation
// publishes into. The TCP layer (tcpsim) reports connection state
// transitions, congestion-window changes, Nagle holds, RTO expirations,
// and retransmissions; the link layer (netem, bridged by core) reports
// serialization and delivery of every packet; and the HTTP layers
// (httpclient, httpserver) report request lifecycle spans — queued,
// request written, first response byte, complete — per object.
//
// On top of the bus sit three exporter views, reproducing the paper's
// own diagnostic toolchain in modern form: a Chrome trace-event /
// Perfetto JSON exporter (perfetto.go) rendering connections as tracks
// and request spans as slices, and a devtools-style waterfall
// (waterfall.go assembles the rows; rendering through the column-spec
// engine lives in internal/report to keep this package dependency-light).
// The pcap exporter, which works from the packet capture rather than
// the bus, lives in internal/trace.
//
// Every publishing method is safe to call on a nil *Bus and returns
// immediately, so instrumented hot paths cost a single nil check when
// observability is off. Calls that would allocate arguments (string
// formatting, Addr rendering) must be guarded by the caller with an
// explicit nil test.
package obs

import (
	"repro/internal/sim"
)

// Kind classifies a timeline event.
type Kind uint8

// Event kinds. The A/B/C fields of Event carry kind-specific details,
// documented per constant.
const (
	// KindConnOpen records a new connection endpoint. Note holds
	// "local→remote".
	KindConnOpen Kind = iota
	// KindConnState is a TCP state transition: A=old state ordinal,
	// B=new state ordinal, Note=new state name.
	KindConnState
	// KindCwnd is a congestion-window change: A=cwnd bytes, B=ssthresh.
	KindCwnd
	// KindNagleHold records the Nagle algorithm holding back a partial
	// segment while data is outstanding: A=pending bytes.
	KindNagleHold
	// KindRTOFire is a retransmission-timer expiration: A=RTO
	// nanoseconds (before backoff doubling), B=consecutive retries.
	KindRTOFire
	// KindRetransmit is a segment sent more than once: A=sequence
	// number, B=payload bytes.
	KindRetransmit
	// KindWireSend is a packet accepted by a link. Time is the instant
	// serialization begins (after FIFO queueing); A=wire bytes,
	// B=serialization-end nanoseconds, C=delivery nanoseconds.
	// Note=link name.
	KindWireSend
	// KindWireDrop is a packet discarded by the link loss model:
	// A=wire bytes, Note=link name.
	KindWireDrop
	// KindSpanQueued opens a request span: the client decided to fetch
	// an object. A=1 when the request is a retry after a connection
	// failure.
	KindSpanQueued
	// KindSpanWritten records the request bytes being handed to TCP.
	KindSpanWritten
	// KindSpanFirstByte records the first response byte arriving.
	KindSpanFirstByte
	// KindSpanDone closes a request span: A=status code, B=body bytes.
	KindSpanDone
	// KindServerRecv marks the server parsing a request: Note=target.
	KindServerRecv
	// KindServerSend marks the server queueing a response: A=status
	// code, B=body bytes, Note=target.
	KindServerSend
	// KindCacheHit marks an intermediary serving a request from its
	// cache without touching the origin: A=body bytes served,
	// Note=target.
	KindCacheHit
	// KindCacheMiss marks an intermediary forwarding a request upstream
	// because its cache had no entry: Note=target.
	KindCacheMiss
	// KindCacheReval marks an intermediary revalidating a stale cache
	// entry with the origin: A=1 when the origin confirmed the entry
	// (304), 0 when it returned a new entity, Note=target.
	KindCacheReval
	// KindFault marks a scripted fault firing (server truncation,
	// abort, stall): A=the faulted response's server-wide ordinal,
	// Note=the fault kind.
	KindFault
	// KindClientTimeout marks the client's response-progress watchdog
	// expiring on a connection: A=timeout nanoseconds.
	KindClientTimeout
	// KindRetryBackoff marks the client entering its redial backoff
	// window: A=backoff nanoseconds, B=consecutive failures.
	KindRetryBackoff
	// KindFallback marks the client degrading its protocol after
	// repeated connection failures: A=new fallback level, Note=the
	// level's name.
	KindFallback
	// KindPushPromise opens a server-pushed request span on the client:
	// the server promised to push the object without being asked.
	// Note=path.
	KindPushPromise
	// KindMuxFrame records a multiplexed frame being sent: A=stream ID,
	// B=payload bytes, Note=frame-type name.
	KindMuxFrame
	// KindFlowStall records a mux sender exhausting a flow-control
	// window: A=the blocked stream's ID, Note="conn" or "stream" for
	// which window ran dry.
	KindFlowStall
	// KindStreamReset records a mux stream torn down by RST_STREAM for
	// error recovery (peer reset, or the client watchdog expiring one
	// wedged stream): A=stream ID, Note=the error code's name or
	// "watchdog".
	KindStreamReset
	// KindGoaway records a GOAWAY session-close announcement on a mux
	// connection, sent or received: A=last processed peer stream ID,
	// Note=the error code's name.
	KindGoaway
	// KindDeadlock records the client watchdog proving a flow-control
	// deadlock on a silent mux session: A=the starved stream's ID,
	// Note=which window wedged ("peer-starved", "conn-window",
	// "stream-window").
	KindDeadlock
	// KindSendStall records a TCP sender with pending data entering a
	// blocked state: A=pending bytes, Note=the cause ("nagle" for a
	// Nagle hold, "cwnd" for congestion-window exhaustion, "rwnd" for
	// the peer's receive window). Edge-triggered: one event per stall,
	// closed by the matching KindSendResume.
	KindSendStall
	// KindSendResume records a stalled TCP sender transmitting again,
	// closing the open KindSendStall interval on the connection.
	KindSendResume
)

var kindNames = [...]string{
	"conn-open", "conn-state", "cwnd", "nagle-hold", "rto-fire",
	"retransmit", "wire-send", "wire-drop", "span-queued",
	"span-written", "span-first-byte", "span-done", "server-recv",
	"server-send", "cache-hit", "cache-miss", "cache-reval",
	"fault", "client-timeout", "retry-backoff", "fallback",
	"push-promise", "mux-frame", "flow-stall", "stream-reset",
	"goaway", "deadlock", "send-stall", "send-resume",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ConnID identifies a connection endpoint on the bus (1-based; 0 = none).
type ConnID int32

// SpanID identifies a request span on the bus (1-based; 0 = none).
type SpanID int32

// Event is one timeline record. Events are stored flat (no per-event
// allocation beyond the backing slice); A, B, and C carry kind-specific
// numeric details, Note an optional label.
type Event struct {
	Time    sim.Time
	Kind    Kind
	Conn    ConnID
	Span    SpanID
	A, B, C int64
	Note    string
}

// ConnInfo is the bus's record of one connection endpoint.
type ConnInfo struct {
	ID            ConnID
	Local, Remote string
	Opened        sim.Time
}

// NoTime marks a span timestamp that was never recorded.
const NoTime = sim.Time(-1)

// SpanInfo is the assembled lifecycle of one request span.
type SpanInfo struct {
	ID           SpanID
	Method, Path string
	// Conn is the connection the request was written on (0 until
	// written).
	Conn ConnID
	// Retried marks a request re-issued after a connection failure.
	Retried bool
	// Via names the intermediary that issued the request ("" for spans
	// originated by the client itself). A proxy's upstream fetches appear
	// as their own spans with Via set, so a waterfall shows the proxy hop
	// separately from the client-side request it serves.
	Via string
	// Pushed marks a span the server initiated via PUSH_PROMISE rather
	// than the client requesting it. A pushed span that is never Done
	// was promised but unused — wasted push bytes.
	Pushed bool
	// Queued, Written, FirstByte, and Done are the lifecycle instants;
	// NoTime where the event never happened (e.g. a span abandoned by a
	// connection reset is never Done).
	Queued, Written, FirstByte, Done sim.Time
	// Status and Bytes are filled at Done.
	Status int
	Bytes  int64
}

// Bus accumulates timeline events on a simulator clock. The zero value
// is not usable; call New. All methods are safe on a nil receiver.
type Bus struct {
	sim    *sim.Simulator
	events []Event
	conns  []ConnInfo
	spans  []SpanInfo
	subs   []func(Event)
}

// New returns an empty bus stamping events with s's clock.
func New(s *sim.Simulator) *Bus {
	return &Bus{
		sim:    s,
		events: make([]Event, 0, 1024),
	}
}

// Enabled reports whether the bus is collecting (false for nil).
func (b *Bus) Enabled() bool { return b != nil }

// Len returns the number of recorded events.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Events returns the recorded events. Wire-send events are stamped at
// serialization start, which can be later than subsequently published
// events' instants; all other events appear in publication order.
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	return b.events
}

// Conns returns the connection records in open order.
func (b *Bus) Conns() []ConnInfo {
	if b == nil {
		return nil
	}
	return b.conns
}

// Spans returns the request-span records in queue order.
func (b *Bus) Spans() []SpanInfo {
	if b == nil {
		return nil
	}
	return b.spans
}

// Subscribe pushes fn onto the bus's subscriber stack; every event
// recorded from then on is delivered to fn immediately after it is
// appended to the bus (including wire-send events, whose Time stamp can
// precede already-delivered events). The returned detach pops the
// subscription and must be called in LIFO order relative to other
// Subscribe calls on the same bus, mirroring trace.Attach. Subscribers
// run on the simulation goroutine and must not publish back into the
// bus or schedule events — they observe, nothing more.
func (b *Bus) Subscribe(fn func(Event)) (detach func()) {
	if b == nil {
		return func() {}
	}
	b.subs = append(b.subs, fn)
	depth := len(b.subs)
	return func() {
		if len(b.subs) != depth {
			panic("obs: Subscribe detach out of LIFO order")
		}
		b.subs = b.subs[:depth-1]
	}
}

// record appends a fully-stamped event and notifies subscribers. Both
// publication paths — add (stamped now) and WireSend (stamped at
// serialization start) — funnel through here, so a subscriber sees
// every event the bus retains.
func (b *Bus) record(ev Event) {
	b.events = append(b.events, ev)
	for _, fn := range b.subs {
		fn(ev)
	}
}

func (b *Bus) add(ev Event) {
	ev.Time = b.sim.Now()
	b.record(ev)
}

// --- connection publishers ---

// ConnOpen registers a connection endpoint and returns its ID.
func (b *Bus) ConnOpen(local, remote string) ConnID {
	if b == nil {
		return 0
	}
	id := ConnID(len(b.conns) + 1)
	b.conns = append(b.conns, ConnInfo{ID: id, Local: local, Remote: remote, Opened: b.sim.Now()})
	b.add(Event{Kind: KindConnOpen, Conn: id, Note: local + "→" + remote})
	return id
}

// ConnState records a TCP state transition. name is the new state's
// display name (callers pass a constant, so no allocation).
func (b *Bus) ConnState(id ConnID, old, new int, name string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindConnState, Conn: id, A: int64(old), B: int64(new), Note: name})
}

// Cwnd records a congestion-window change.
func (b *Bus) Cwnd(id ConnID, cwnd, ssthresh int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindCwnd, Conn: id, A: int64(cwnd), B: int64(ssthresh)})
}

// NagleHold records the Nagle algorithm holding back pending bytes.
func (b *Bus) NagleHold(id ConnID, pending int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindNagleHold, Conn: id, A: int64(pending)})
}

// RTOFire records a retransmission-timer expiration.
func (b *Bus) RTOFire(id ConnID, rto sim.Duration, retries int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindRTOFire, Conn: id, A: int64(rto), B: int64(retries)})
}

// SendStall records a TCP sender with pending data going idle. cause
// names the blocking condition ("nagle", "cwnd", or "rwnd"); callers
// pass a constant, so no allocation.
func (b *Bus) SendStall(id ConnID, cause string, pending int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindSendStall, Conn: id, A: int64(pending), Note: cause})
}

// SendResume records a stalled sender transmitting again.
func (b *Bus) SendResume(id ConnID) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindSendResume, Conn: id})
}

// Retransmit records a segment sent more than once.
func (b *Bus) Retransmit(id ConnID, seq uint32, payload int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindRetransmit, Conn: id, A: int64(seq), B: int64(payload)})
}

// --- wire publishers ---

// WireSend records a packet accepted by a link: serialization starts at
// start (after FIFO queueing), ends at done, and the last bit reaches
// the far end at arrive. The event is stamped at start, not at the
// publication instant.
func (b *Bus) WireSend(link string, wireBytes int, start, done, arrive sim.Time) {
	if b == nil {
		return
	}
	b.record(Event{
		Time: start, Kind: KindWireSend, Note: link,
		A: int64(wireBytes), B: int64(done), C: int64(arrive),
	})
}

// WireDrop records a packet discarded by the link loss model.
func (b *Bus) WireDrop(link string, wireBytes int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindWireDrop, Note: link, A: int64(wireBytes)})
}

// --- request-span publishers ---

// SpanQueued opens a request span at the current instant.
func (b *Bus) SpanQueued(method, path string, retried bool) SpanID {
	return b.SpanQueuedVia(method, path, retried, "")
}

// SpanQueuedVia opens a request span originated by the named
// intermediary (e.g. a proxy's upstream fetch). via="" is a client span.
func (b *Bus) SpanQueuedVia(method, path string, retried bool, via string) SpanID {
	if b == nil {
		return 0
	}
	id := SpanID(len(b.spans) + 1)
	now := b.sim.Now()
	b.spans = append(b.spans, SpanInfo{
		ID: id, Method: method, Path: path, Retried: retried, Via: via,
		Queued: now, Written: NoTime, FirstByte: NoTime, Done: NoTime,
	})
	var retry int64
	if retried {
		retry = 1
	}
	b.add(Event{Kind: KindSpanQueued, Span: id, A: retry, Note: path})
	return id
}

// SpanWritten records the span's request bytes being handed to TCP on
// conn. Only the first call per span is recorded.
func (b *Bus) SpanWritten(id SpanID, conn ConnID) {
	if b == nil || id <= 0 || int(id) > len(b.spans) {
		return
	}
	sp := &b.spans[id-1]
	if sp.Written != NoTime {
		return
	}
	sp.Written = b.sim.Now()
	sp.Conn = conn
	b.add(Event{Kind: KindSpanWritten, Span: id, Conn: conn})
}

// SpanFirstByte records the first response byte for the span. Idempotent:
// only the first call is recorded.
func (b *Bus) SpanFirstByte(id SpanID) {
	if b == nil || id <= 0 || int(id) > len(b.spans) {
		return
	}
	sp := &b.spans[id-1]
	if sp.FirstByte != NoTime {
		return
	}
	sp.FirstByte = b.sim.Now()
	b.add(Event{Kind: KindSpanFirstByte, Span: id, Conn: sp.Conn})
}

// SpanDone closes the span with the response status and body size. A
// span with no recorded first byte gets one at the same instant (the
// whole response arrived in a single delivery).
func (b *Bus) SpanDone(id SpanID, status int, bytes int64) {
	if b == nil || id <= 0 || int(id) > len(b.spans) {
		return
	}
	b.SpanFirstByte(id)
	sp := &b.spans[id-1]
	if sp.Done != NoTime {
		return
	}
	sp.Done = b.sim.Now()
	sp.Status = status
	sp.Bytes = bytes
	b.add(Event{Kind: KindSpanDone, Span: id, Conn: sp.Conn, A: int64(status), B: bytes})
}

// --- server publishers ---

// ServerRecv marks the server parsing a request for target on conn.
func (b *Bus) ServerRecv(conn ConnID, target string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindServerRecv, Conn: conn, Note: target})
}

// ServerSend marks the server queueing a response for target on conn.
func (b *Bus) ServerSend(conn ConnID, target string, status int, bytes int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindServerSend, Conn: conn, Note: target, A: int64(status), B: int64(bytes)})
}

// --- cache publishers ---

// CacheHit marks an intermediary serving target from cache on conn.
func (b *Bus) CacheHit(conn ConnID, target string, bytes int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindCacheHit, Conn: conn, Note: target, A: int64(bytes)})
}

// CacheMiss marks an intermediary forwarding target upstream.
func (b *Bus) CacheMiss(conn ConnID, target string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindCacheMiss, Conn: conn, Note: target})
}

// CacheReval marks an intermediary revalidating a stale entry for
// target; confirmed reports whether the origin answered 304.
func (b *Bus) CacheReval(conn ConnID, target string, confirmed bool) {
	if b == nil {
		return
	}
	var a int64
	if confirmed {
		a = 1
	}
	b.add(Event{Kind: KindCacheReval, Conn: conn, Note: target, A: a})
}

// --- fault and recovery publishers ---

// Fault marks a scripted fault firing on conn. kind is the fault's
// name (callers pass a constant), seq the faulted response's ordinal.
func (b *Bus) Fault(conn ConnID, kind string, seq int64) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindFault, Conn: conn, Note: kind, A: seq})
}

// ClientTimeout marks the client's response-progress watchdog expiring
// on conn after timeout nanoseconds without progress.
func (b *Bus) ClientTimeout(conn ConnID, timeout sim.Duration) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindClientTimeout, Conn: conn, A: int64(timeout)})
}

// RetryBackoff marks the client delaying its redial by backoff after
// its n-th consecutive connection failure.
func (b *Bus) RetryBackoff(backoff sim.Duration, failures int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindRetryBackoff, A: int64(backoff), B: int64(failures)})
}

// Fallback marks the client degrading its protocol to the named level.
func (b *Bus) Fallback(level int, name string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindFallback, A: int64(level), Note: name})
}

// --- multiplexing publishers ---

// SpanPushed opens a server-initiated (pushed) request span at the
// current instant: the promise arrived, the client did not ask. The
// span is Written at the same instant — the "request" is the promise
// itself.
func (b *Bus) SpanPushed(method, path string, conn ConnID) SpanID {
	if b == nil {
		return 0
	}
	id := SpanID(len(b.spans) + 1)
	now := b.sim.Now()
	b.spans = append(b.spans, SpanInfo{
		ID: id, Method: method, Path: path, Pushed: true, Conn: conn,
		Queued: now, Written: now, FirstByte: NoTime, Done: NoTime,
	})
	b.add(Event{Kind: KindPushPromise, Span: id, Conn: conn, Note: path})
	return id
}

// MuxFrame records a multiplexed frame sent on conn. frameType is the
// frame-type name (callers pass the FrameType's constant String).
func (b *Bus) MuxFrame(conn ConnID, frameType string, stream uint32, payloadLen int) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindMuxFrame, Conn: conn, A: int64(stream), B: int64(payloadLen), Note: frameType})
}

// FlowStall records a mux sender on conn exhausting a flow-control
// window; connLevel selects the connection window over stream's.
func (b *Bus) FlowStall(conn ConnID, stream uint32, connLevel bool) {
	if b == nil {
		return
	}
	note := "stream"
	if connLevel {
		note = "conn"
	}
	b.add(Event{Kind: KindFlowStall, Conn: conn, A: int64(stream), Note: note})
}

// StreamReset records a mux stream on conn torn down by RST_STREAM
// for error recovery. why is the error code's name, or "watchdog" for
// a client-initiated teardown (callers pass constants or the
// ErrCode's constant String).
func (b *Bus) StreamReset(conn ConnID, stream uint32, why string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindStreamReset, Conn: conn, A: int64(stream), Note: why})
}

// Goaway records a GOAWAY announcement on conn. last is the highest
// peer-initiated stream the sender acted on; code the error code's
// name.
func (b *Bus) Goaway(conn ConnID, last uint32, code string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindGoaway, Conn: conn, A: int64(last), Note: code})
}

// Deadlock records the watchdog proving a flow-control deadlock on
// conn, starving stream; which names the wedged window.
func (b *Bus) Deadlock(conn ConnID, stream uint32, which string) {
	if b == nil {
		return
	}
	b.add(Event{Kind: KindDeadlock, Conn: conn, A: int64(stream), Note: which})
}
