package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	if id := b.ConnOpen("a:1", "b:2"); id != 0 {
		t.Fatalf("nil ConnOpen returned %d", id)
	}
	b.ConnState(1, 0, 1, "SYN_SENT")
	b.Cwnd(1, 4096, 65535)
	b.NagleHold(1, 100)
	b.RTOFire(1, time.Second, 1)
	b.Retransmit(1, 42, 1460)
	b.WireSend("l", 40, 0, 1, 2)
	b.WireDrop("l", 40)
	if id := b.SpanQueued("GET", "/", false); id != 0 {
		t.Fatalf("nil SpanQueued returned %d", id)
	}
	b.SpanWritten(1, 1)
	b.SpanFirstByte(1)
	b.SpanDone(1, 200, 10)
	b.ServerRecv(1, "/")
	b.ServerSend(1, "/", 200, 10)
	if b.Len() != 0 || b.Events() != nil || b.Conns() != nil || b.Spans() != nil || b.Waterfall() != nil {
		t.Fatal("nil bus accessors returned data")
	}
	var buf bytes.Buffer
	if err := b.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-bus perfetto output is not JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatal("nil-bus perfetto output has events")
	}
}

// busFixture drives a tiny scripted timeline: one connection, two
// request spans (the second retried and abandoned), a wire packet, and
// a drop.
func busFixture(t *testing.T) *Bus {
	t.Helper()
	s := sim.New()
	b := New(s)
	var conn ConnID
	var sp1, sp2 SpanID
	s.Schedule(0, func() {
		conn = b.ConnOpen("client:10000", "server:80")
		b.ConnState(conn, 0, 1, "SYN_SENT")
		sp1 = b.SpanQueued("GET", "/", false)
	})
	s.Schedule(time.Millisecond, func() {
		b.ConnState(conn, 1, 3, "ESTABLISHED")
		b.Cwnd(conn, 4096, 65535)
		b.SpanWritten(sp1, conn)
		b.WireSend("t→", 140, s.Now(), s.Now().Add(time.Millisecond), s.Now().Add(2*time.Millisecond))
	})
	s.Schedule(2*time.Millisecond, func() {
		b.ServerRecv(conn, "/")
		b.ServerSend(conn, "/", 200, 500)
		b.WireDrop("t←", 540)
	})
	s.Schedule(3*time.Millisecond, func() {
		b.SpanFirstByte(sp1)
		b.NagleHold(conn, 77)
		b.RTOFire(conn, 500*time.Millisecond, 1)
		b.Retransmit(conn, 1, 500)
	})
	s.Schedule(4*time.Millisecond, func() {
		b.SpanDone(sp1, 200, 500)
		sp2 = b.SpanQueued("GET", "/a.gif", true)
		b.SpanWritten(sp2, conn)
		b.ConnState(conn, 3, 0, "CLOSED")
	})
	s.Run()
	return b
}

func TestSpanAssembly(t *testing.T) {
	b := busFixture(t)
	spans := b.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	sp := spans[0]
	if sp.Method != "GET" || sp.Path != "/" || sp.Retried {
		t.Fatalf("span 1 identity wrong: %+v", sp)
	}
	if sp.Queued != 0 {
		t.Fatalf("queued at %v, want 0", sp.Queued)
	}
	if sp.Written != sim.Time(time.Millisecond) {
		t.Fatalf("written at %v, want 1ms", sp.Written)
	}
	if sp.FirstByte != sim.Time(3*time.Millisecond) {
		t.Fatalf("first byte at %v, want 3ms", sp.FirstByte)
	}
	if sp.Done != sim.Time(4*time.Millisecond) || sp.Status != 200 || sp.Bytes != 500 {
		t.Fatalf("done wrong: %+v", sp)
	}
	if sp.Conn != 1 {
		t.Fatalf("span conn = %d, want 1", sp.Conn)
	}
	ab := spans[1]
	if !ab.Retried || ab.Done != NoTime || ab.FirstByte != NoTime {
		t.Fatalf("abandoned span wrong: %+v", ab)
	}
}

func TestSpanFirstByteIdempotent(t *testing.T) {
	s := sim.New()
	b := New(s)
	var sp SpanID
	s.Schedule(0, func() {
		sp = b.SpanQueued("GET", "/", false)
		b.SpanWritten(sp, 1)
		b.SpanWritten(sp, 2) // second write ignored
	})
	s.Schedule(time.Millisecond, func() { b.SpanFirstByte(sp) })
	s.Schedule(2*time.Millisecond, func() {
		b.SpanFirstByte(sp) // later call must not move the instant
		b.SpanDone(sp, 200, 1)
		b.SpanDone(sp, 500, 9) // second done ignored
	})
	s.Run()
	got := b.Spans()[0]
	if got.Conn != 1 {
		t.Fatalf("conn = %d, want first write's 1", got.Conn)
	}
	if got.FirstByte != sim.Time(time.Millisecond) {
		t.Fatalf("first byte = %v, want 1ms", got.FirstByte)
	}
	if got.Status != 200 || got.Bytes != 1 {
		t.Fatalf("done fields overwritten: %+v", got)
	}
}

func TestSpanDoneBackfillsFirstByte(t *testing.T) {
	s := sim.New()
	b := New(s)
	s.Schedule(0, func() {
		sp := b.SpanQueued("GET", "/", false)
		b.SpanWritten(sp, 1)
	})
	s.Schedule(time.Millisecond, func() { b.SpanDone(1, 304, 0) })
	s.Run()
	got := b.Spans()[0]
	if got.FirstByte != got.Done {
		t.Fatalf("first byte %v != done %v", got.FirstByte, got.Done)
	}
}

func TestWaterfallRows(t *testing.T) {
	s := sim.New()
	b := New(s)
	s.Schedule(0, func() {
		c := b.ConnOpen("client:1", "server:80")
		a := b.SpanQueued("GET", "/", false)
		b.SpanWritten(a, c)
		second := b.SpanQueued("GET", "/x", false)
		b.SpanWritten(second, c)
	})
	s.Schedule(time.Millisecond, func() {
		b.SpanDone(1, 200, 10)
		b.SpanDone(2, 200, 20)
	})
	s.Run()
	rows := b.Waterfall()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Reused {
		t.Fatal("first use of the connection marked reused")
	}
	if !rows[1].Reused {
		t.Fatal("second span on the same connection not marked reused")
	}
	if rows[0].TTFB() != time.Millisecond {
		t.Fatalf("TTFB = %v, want 1ms", rows[0].TTFB())
	}
	if rows[0].Transfer() != 0 {
		t.Fatalf("Transfer = %v, want 0", rows[0].Transfer())
	}
}

// perfettoEvent mirrors the trace-event schema for validation.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

func TestPerfettoSchema(t *testing.T) {
	b := busFixture(t)
	var buf bytes.Buffer
	if err := b.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents     []perfettoEvent `json:"traceEvents"`
		DisplayTimeUnit string          `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	validPh := map[string]bool{"M": true, "X": true, "b": true, "e": true, "C": true, "i": true}
	async := map[string]int{}
	seenKinds := map[string]bool{}
	lastTs := -1.0
	metaDone := false
	for i, ev := range out.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if !validPh[ev.Ph] {
			t.Fatalf("event %d has bad phase %q", i, ev.Ph)
		}
		if ev.Ts == nil || ev.Pid == nil {
			t.Fatalf("event %d missing ts or pid: %+v", i, ev)
		}
		if *ev.Ts < 0 {
			t.Fatalf("event %d has negative ts", i)
		}
		seenKinds[ev.Ph] = true
		switch ev.Ph {
		case "M":
			if metaDone {
				t.Fatalf("metadata event %d after non-metadata", i)
			}
		case "X":
			metaDone = true
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event %d lacks non-negative dur", i)
			}
		case "b":
			metaDone = true
			async[ev.ID]++
		case "e":
			metaDone = true
			async[ev.ID]--
		default:
			metaDone = true
		}
		if ev.Ph != "M" {
			if *ev.Ts < lastTs {
				t.Fatalf("event %d out of time order (%f < %f)", i, *ev.Ts, lastTs)
			}
			lastTs = *ev.Ts
		}
	}
	for id, n := range async {
		if n != 0 {
			t.Fatalf("async span %q unbalanced (%+d)", id, n)
		}
	}
	for _, ph := range []string{"M", "X", "b", "e", "C", "i"} {
		if !seenKinds[ph] {
			t.Errorf("fixture produced no %q events", ph)
		}
	}
	// The abandoned retried span must not appear as an async pair.
	if got := async["span-2"]; got != 0 {
		t.Fatalf("abandoned span leaked: %d", got)
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "b" && ev.ID == "span-2" {
			t.Fatal("abandoned span emitted a begin event")
		}
	}
}
