package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// traceEvent is one record of the Chrome trace-event format, the JSON
// schema both chrome://tracing and Perfetto load. Phases used here:
// "M" metadata, "X" complete slice (ts+dur), "b"/"e" async span
// begin/end, "C" counter, "i" instant.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds of simulated time
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

func durPtr(from, to sim.Time) *float64 {
	d := usec(to) - usec(from)
	if d < 0 {
		d = 0
	}
	return &d
}

// connHost extracts the host part of a ConnInfo local address.
func connHost(addr string) string {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// wirePid is the synthetic process id the link tracks render under;
// host processes are numbered from 1. pathPid carries the optional
// critical-path overlay track.
const (
	wirePid = 100
	pathPid = 200
)

// PathSlice is one link of an externally computed page-load critical
// path: the span that was the binding constraint over [From, To). The
// causality analyzer produces these; obs only renders them, so the
// dependency points the right way.
type PathSlice struct {
	Span     SpanID
	From, To sim.Time
}

// WritePerfettoPath exports the timeline like WritePerfetto plus a
// dedicated "critical path" process: one complete slice per path link,
// so the gating chain root document → last object reads left to right
// as a single highlighted track in the Perfetto UI.
func (b *Bus) WritePerfettoPath(w io.Writer, path []PathSlice) error {
	if b == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	return writePerfetto(w, b.events, b.conns, b.spans, pathTrackEvents(path, b.spans))
}

// pathTrackEvents renders the path links as slices on the overlay
// track, named after the gating request.
func pathTrackEvents(path []PathSlice, spans []SpanInfo) []traceEvent {
	if len(path) == 0 {
		return nil
	}
	names := make(map[SpanID]string, len(spans))
	for _, sp := range spans {
		names[sp.ID] = sp.Method + " " + sp.Path
	}
	evs := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: pathPid,
			Args: map[string]any{"name": "critical path"}},
		{Name: "thread_name", Ph: "M", Pid: pathPid, Tid: 1,
			Args: map[string]any{"name": "gating requests"}},
	}
	for _, ps := range path {
		name := names[ps.Span]
		if name == "" {
			name = fmt.Sprintf("span-%d", ps.Span)
		}
		evs = append(evs, traceEvent{Name: name, Ph: "X", Cat: "critical-path",
			Ts: usec(ps.From), Dur: durPtr(ps.From, ps.To),
			Pid: pathPid, Tid: 1,
			Args: map[string]any{"span": int(ps.Span)}})
	}
	return evs
}

// WritePerfetto exports the timeline as Chrome trace-event / Perfetto
// JSON: one process per simulated host plus one for the wire,
// connections as named threads carrying their TCP state as slices,
// request spans as async slices over the connection that carried them,
// congestion windows as counter tracks, and Nagle holds, RTO fires,
// retransmissions, drops, and server request handling as instants. All
// timestamps are simulated time in microseconds.
func (b *Bus) WritePerfetto(w io.Writer) error {
	if b == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	return WritePerfettoEvents(w, b.events, b.conns, b.spans)
}

// WritePerfettoEvents exports an explicit event window in the same
// layout as Bus.WritePerfetto. The flight recorder uses it to dump a
// ring-buffered tail of the event stream: events may be any suffix of
// the bus's stream, while conns and spans are the bus's complete tables
// (they are small and index-addressed, so they are never truncated).
func WritePerfettoEvents(w io.Writer, events []Event, conns []ConnInfo, spans []SpanInfo) error {
	return writePerfetto(w, events, conns, spans, nil)
}

// writePerfetto is the shared export body; extra carries pre-built
// overlay events (the critical-path track) merged into the sort.
func writePerfetto(w io.Writer, events []Event, conns []ConnInfo, spans []SpanInfo, extra []traceEvent) error {
	evs := extra
	emit := func(ev traceEvent) { evs = append(evs, ev) }

	// Host processes, in first-connection order.
	pids := map[string]int{}
	pidOf := func(host string) int {
		if id, ok := pids[host]; ok {
			return id
		}
		id := len(pids) + 1
		pids[host] = id
		emit(traceEvent{Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]any{"name": host}})
		return id
	}
	connPid := make([]int, len(conns)+1)
	for _, ci := range conns {
		pid := pidOf(connHost(ci.Local))
		connPid[ci.ID] = pid
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: int(ci.ID),
			Args: map[string]any{"name": ci.Local + " → " + ci.Remote}})
	}

	var last sim.Time
	for _, ev := range events {
		if ev.Time > last {
			last = ev.Time
		}
		if ev.Kind == KindWireSend && sim.Time(ev.C) > last {
			last = sim.Time(ev.C)
		}
	}

	// Connection state slices: each transition opens a slice that the
	// next transition (or the end of the trace) closes. CLOSED gets no
	// slice.
	type openState struct {
		name  string
		since sim.Time
	}
	open := make(map[ConnID]openState)
	closeState := func(id ConnID, at sim.Time) {
		st, ok := open[id]
		if !ok {
			return
		}
		delete(open, id)
		emit(traceEvent{Name: st.name, Ph: "X", Cat: "tcp-state",
			Ts: usec(st.since), Dur: durPtr(st.since, at),
			Pid: connPid[id], Tid: int(id)})
	}

	wireTids := map[string]int{}
	wirePidEmitted := false
	wireTid := func(link string) int {
		if !wirePidEmitted {
			wirePidEmitted = true
			emit(traceEvent{Name: "process_name", Ph: "M", Pid: wirePid,
				Args: map[string]any{"name": "wire"}})
		}
		if id, ok := wireTids[link]; ok {
			return id
		}
		id := len(wireTids) + 1
		wireTids[link] = id
		emit(traceEvent{Name: "thread_name", Ph: "M", Pid: wirePid, Tid: id,
			Args: map[string]any{"name": link}})
		return id
	}

	instant := func(ev Event, name string, args map[string]any) {
		emit(traceEvent{Name: name, Ph: "i", S: "t", Ts: usec(ev.Time),
			Pid: connPid[ev.Conn], Tid: int(ev.Conn), Args: args})
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindConnState:
			closeState(ev.Conn, ev.Time)
			if ev.Note != "CLOSED" {
				open[ev.Conn] = openState{name: ev.Note, since: ev.Time}
			}
		case KindCwnd:
			emit(traceEvent{Name: fmt.Sprintf("cwnd conn%d", ev.Conn), Ph: "C",
				Ts: usec(ev.Time), Pid: connPid[ev.Conn],
				Args: map[string]any{"cwnd": ev.A, "ssthresh": ev.B}})
		case KindNagleHold:
			instant(ev, "nagle hold", map[string]any{"pending_bytes": ev.A})
		case KindRTOFire:
			instant(ev, "RTO fire", map[string]any{"rto_us": ev.A / 1e3, "retries": ev.B})
		case KindRetransmit:
			instant(ev, "retransmit", map[string]any{"seq": ev.A, "payload_bytes": ev.B})
		case KindWireDrop:
			emit(traceEvent{Name: "drop", Ph: "i", S: "t", Ts: usec(ev.Time),
				Pid: wirePid, Tid: wireTid(ev.Note),
				Args: map[string]any{"wire_bytes": ev.A}})
		case KindWireSend:
			// Slice over the link's serialization occupancy; delivery
			// instant in args. FIFO links make these non-overlapping.
			emit(traceEvent{Name: fmt.Sprintf("pkt %dB", ev.A), Ph: "X",
				Cat: "wire", Ts: usec(ev.Time), Dur: durPtr(ev.Time, sim.Time(ev.B)),
				Pid: wirePid, Tid: wireTid(ev.Note),
				Args: map[string]any{"arrive_us": usec(sim.Time(ev.C))}})
		case KindServerRecv:
			instant(ev, "req "+ev.Note, nil)
		case KindServerSend:
			instant(ev, "resp "+ev.Note, map[string]any{"status": ev.A, "body_bytes": ev.B})
		case KindCacheHit:
			instant(ev, "cache hit "+ev.Note, map[string]any{"body_bytes": ev.A})
		case KindCacheMiss:
			instant(ev, "cache miss "+ev.Note, nil)
		case KindCacheReval:
			instant(ev, "cache reval "+ev.Note, map[string]any{"confirmed": ev.A == 1})
		case KindFault:
			instant(ev, "fault "+ev.Note, map[string]any{"response_seq": ev.A})
		case KindClientTimeout:
			instant(ev, "client timeout", map[string]any{"timeout_us": ev.A / 1e3})
		case KindRetryBackoff:
			instant(ev, "retry backoff", map[string]any{"backoff_us": ev.A / 1e3, "failures": ev.B})
		case KindFallback:
			instant(ev, "fallback "+ev.Note, map[string]any{"level": ev.A})
		case KindPushPromise:
			instant(ev, "push promise "+ev.Note, nil)
		case KindMuxFrame:
			instant(ev, "frame "+ev.Note, map[string]any{"stream": ev.A, "payload_bytes": ev.B})
		case KindFlowStall:
			instant(ev, "flow stall "+ev.Note, map[string]any{"stream": ev.A})
		case KindStreamReset:
			instant(ev, "stream reset "+ev.Note, map[string]any{"stream": ev.A})
		case KindGoaway:
			instant(ev, "goaway "+ev.Note, map[string]any{"last_stream": ev.A})
		case KindDeadlock:
			instant(ev, "deadlock "+ev.Note, map[string]any{"stream": ev.A})
		case KindSendStall:
			instant(ev, "send stall "+ev.Note, map[string]any{"pending_bytes": ev.A})
		case KindSendResume:
			instant(ev, "send resume", nil)
		}
	}
	for id := range open {
		closeState(id, last)
	}

	// Request spans as async begin/end pairs on the carrying connection:
	// async slices may overlap (pipelining), which thread slices may not.
	for _, sp := range spans {
		if sp.Conn == 0 || sp.Done == NoTime {
			continue // never written or abandoned (e.g. connection reset)
		}
		start := sp.Queued
		if start == NoTime {
			start = sp.Written
		}
		name := sp.Method + " " + sp.Path
		id := fmt.Sprintf("span-%d", sp.ID)
		args := map[string]any{
			"status": sp.Status, "body_bytes": sp.Bytes,
			"queued_us": usec(sp.Queued), "written_us": usec(sp.Written),
		}
		if sp.FirstByte != NoTime && sp.Written != NoTime {
			args["ttfb_us"] = usec(sp.FirstByte) - usec(sp.Written)
		}
		if sp.Retried {
			args["retried"] = true
		}
		if sp.Pushed {
			args["pushed"] = true
		}
		if sp.Via != "" {
			args["via"] = sp.Via
		}
		pid := connPid[sp.Conn]
		emit(traceEvent{Name: name, Ph: "b", Cat: "request", ID: id,
			Ts: usec(start), Pid: pid, Tid: int(sp.Conn), Args: args})
		emit(traceEvent{Name: name, Ph: "e", Cat: "request", ID: id,
			Ts: usec(sp.Done), Pid: pid, Tid: int(sp.Conn)})
	}

	// Stable output: sort by (ts, pid, tid, ph) with metadata first.
	sort.SliceStable(evs, func(i, j int) bool {
		a, c := evs[i], evs[j]
		am, cm := a.Ph == "M", c.Ph == "M"
		if am != cm {
			return am
		}
		if a.Ts != c.Ts {
			return a.Ts < c.Ts
		}
		if a.Pid != c.Pid {
			return a.Pid < c.Pid
		}
		return a.Tid < c.Tid
	})

	out := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
