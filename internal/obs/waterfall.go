package obs

import (
	"repro/internal/sim"
)

// WaterfallRow is one object of the devtools-style waterfall: the
// request's lifecycle instants plus the derived TTFB and transfer
// durations, and whether the connection that carried it was reused.
// Rendering lives in internal/report (WriteWaterfall), which owns the
// column-spec engine; this package only assembles the rows.
type WaterfallRow struct {
	Span         SpanID
	Method, Path string
	Conn         ConnID
	// Reused reports that an earlier span had already been written on
	// the same connection. Reuse is tracked per connection, so an
	// intermediary's upstream requests (Via non-empty) never mark the
	// client-side connection as reused, and vice versa.
	Reused  bool
	Retried bool
	// Via names the intermediary that issued the request ("" for the
	// client's own requests); a proxy hop appears as its own row.
	Via string
	// Pushed marks a server-initiated (PUSH_PROMISE) span; one that is
	// also abandoned was promised but never used.
	Pushed bool

	Queued, Written, FirstByte, Done sim.Time

	Status int
	Bytes  int64
}

// TTFB is first-response-byte minus request-written (NoTime-safe;
// negative result means a timestamp was missing).
func (r WaterfallRow) TTFB() sim.Duration {
	if r.FirstByte == NoTime || r.Written == NoTime {
		return -1
	}
	return r.FirstByte.Sub(r.Written)
}

// Transfer is complete minus first-response-byte.
func (r WaterfallRow) Transfer() sim.Duration {
	if r.Done == NoTime || r.FirstByte == NoTime {
		return -1
	}
	return r.Done.Sub(r.FirstByte)
}

// Waterfall assembles the per-object rows in queue order. Safe on a
// nil receiver (returns nil).
func (b *Bus) Waterfall() []WaterfallRow {
	if b == nil {
		return nil
	}
	seen := make(map[ConnID]bool, len(b.conns))
	rows := make([]WaterfallRow, 0, len(b.spans))
	for _, sp := range b.spans {
		row := WaterfallRow{
			Span: sp.ID, Method: sp.Method, Path: sp.Path, Conn: sp.Conn,
			Retried: sp.Retried, Via: sp.Via, Pushed: sp.Pushed,
			Queued: sp.Queued, Written: sp.Written,
			FirstByte: sp.FirstByte, Done: sp.Done,
			Status: sp.Status, Bytes: sp.Bytes,
		}
		if sp.Conn != 0 {
			row.Reused = seen[sp.Conn]
			seen[sp.Conn] = true
		}
		rows = append(rows, row)
	}
	return rows
}
