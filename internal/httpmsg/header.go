// Package httpmsg implements the HTTP/1.0 and HTTP/1.1 message layer used
// by the simulated client and servers: byte-exact serialization, incremental
// parsing of pipelined message streams, chunked transfer coding, and the
// body-delimitation rules of RFC 1945 and RFC 2068.
//
// Serialization is byte-exact on purpose: the paper's Bytes column counts
// HTTP header bytes, and the comparison between the ~190-byte libwww robot
// requests and the ~300-byte product-browser requests is part of the
// results (Tables 10 and 11).
package httpmsg

import (
	"bytes"
	"strings"
)

// Field is a single header field. Name case is preserved for byte-exact
// output; lookups are case-insensitive.
type Field struct {
	Name, Value string
}

// Header is an ordered header field list.
type Header struct {
	fields []Field
}

// Add appends a field, preserving order and duplicates.
func (h *Header) Add(name, value string) {
	h.fields = append(h.fields, Field{Name: name, Value: value})
}

// Set replaces the first field with the given name (or appends).
func (h *Header) Set(name, value string) {
	for i := range h.fields {
		if strings.EqualFold(h.fields[i].Name, name) {
			h.fields[i].Value = value
			return
		}
	}
	h.Add(name, value)
}

// Get returns the first value for name, or "".
func (h *Header) Get(name string) string {
	for _, f := range h.fields {
		if strings.EqualFold(f.Name, name) {
			return f.Value
		}
	}
	return ""
}

// Has reports whether the header contains name.
func (h *Header) Has(name string) bool {
	for _, f := range h.fields {
		if strings.EqualFold(f.Name, name) {
			return true
		}
	}
	return false
}

// Del removes all fields with the given name.
func (h *Header) Del(name string) {
	out := h.fields[:0]
	for _, f := range h.fields {
		if !strings.EqualFold(f.Name, name) {
			out = append(out, f)
		}
	}
	h.fields = out
}

// Fields returns the ordered field list.
func (h *Header) Fields() []Field { return h.fields }

// Len returns the number of fields.
func (h *Header) Len() int { return len(h.fields) }

// Clone returns a deep copy.
func (h *Header) Clone() Header {
	out := Header{fields: make([]Field, len(h.fields))}
	copy(out.fields, h.fields)
	return out
}

// writeTo serializes the fields followed by the blank line.
func (h *Header) writeTo(b *bytes.Buffer) {
	for _, f := range h.fields {
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Value)
		b.WriteString("\r\n")
	}
	b.WriteString("\r\n")
}

// TokenListContains reports whether a comma-separated header value (e.g.
// Connection or Accept-Encoding) contains token, case-insensitively.
func TokenListContains(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// ETagMatch implements If-None-Match list matching against an entity tag:
// "*" matches any entity, otherwise the comma-separated list is compared
// entry by entry (strong comparison, as 1997 validators were opaque
// strings). Both origin servers and caches answering conditionals locally
// use this rule.
func ETagMatch(headerVal, etag string) bool {
	if strings.TrimSpace(headerVal) == "*" {
		return true
	}
	for _, part := range strings.Split(headerVal, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}
