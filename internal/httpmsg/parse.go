package httpmsg

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Parse errors.
var (
	ErrMalformed        = errors.New("httpmsg: malformed message")
	ErrBodyTooLarge     = errors.New("httpmsg: body exceeds limit")
	ErrTruncatedMessage = errors.New("httpmsg: connection closed mid-message")
)

// maxBodyBytes guards against absurd Content-Length values.
const maxBodyBytes = 64 << 20

// RequestParser incrementally parses a pipelined stream of requests, as a
// server reads them from a connection.
type RequestParser struct {
	buf  stream
	head *Request // parsed head awaiting its body
	need int      // body bytes still needed
}

// Feed appends data to the parse buffer and returns all requests that are
// now complete. data is copied; the caller may reuse the slice.
func (p *RequestParser) Feed(data []byte) ([]*Request, error) {
	p.buf.push(data)
	var out []*Request
	for {
		if p.head == nil {
			end := bytes.Index(p.buf.bytes(), []byte("\r\n\r\n"))
			if end < 0 {
				return out, nil
			}
			req, err := parseRequestHead(p.buf.bytes()[:end+4])
			if err != nil {
				return out, err
			}
			p.buf.advance(end + 4)
			p.head = req
			p.need = 0
			if cl := req.Header.Get("Content-Length"); cl != "" {
				n, err := strconv.Atoi(strings.TrimSpace(cl))
				if err != nil || n < 0 {
					return out, ErrMalformed
				}
				if n > maxBodyBytes {
					return out, ErrBodyTooLarge
				}
				p.need = n
			}
		}
		if p.need > p.buf.len() {
			return out, nil
		}
		if p.need > 0 {
			// The body must be copied out: the stream's backing array is
			// reused for subsequent pipelined requests.
			p.head.Body = append([]byte(nil), p.buf.bytes()[:p.need]...)
			p.buf.advance(p.need)
		}
		out = append(out, p.head)
		p.head = nil
		p.need = 0
	}
}

// Buffered returns the number of unconsumed bytes.
func (p *RequestParser) Buffered() int { return p.buf.len() }

func parseRequestHead(head []byte) (*Request, error) {
	lines := strings.Split(string(head), "\r\n")
	if len(lines) < 1 {
		return nil, ErrMalformed
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, lines[0])
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	if err := parseFields(lines[1:], &req.Header); err != nil {
		return nil, err
	}
	return req, nil
}

func parseFields(lines []string, h *Header) error {
	for _, line := range lines {
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 1 {
			return fmt.Errorf("%w: bad header field %q", ErrMalformed, line)
		}
		h.Add(line[:colon], strings.TrimSpace(line[colon+1:]))
	}
	return nil
}

// bodyKind describes how a response body is delimited.
type bodyKind int

const (
	bodyNone bodyKind = iota
	bodyLength
	bodyChunked
	bodyUntilClose
)

// ResponseParser incrementally parses a pipelined stream of responses.
// Because body framing depends on the request (HEAD has no body), callers
// must push the method of each outstanding request in order.
type ResponseParser struct {
	buf     stream
	methods []string

	// BodyChunk, if non-nil, observes body bytes incrementally as they
	// are consumed, before the response completes. head is the response
	// whose body is arriving (its Body field is not yet set). This is
	// how the simulated robot parses HTML for inline links while the
	// page is still in flight.
	BodyChunk func(head *Response, chunk []byte)

	head      *Response
	kind      bodyKind
	need      int // for bodyLength: bytes still needed
	chunkNeed int // for bodyChunked: payload bytes left in current chunk
	chunkLast bool
	body      []byte
	count     int
}

// appendBody accumulates body bytes and fires the BodyChunk hook.
func (p *ResponseParser) appendBody(chunk []byte) {
	if len(chunk) == 0 {
		return
	}
	p.body = append(p.body, chunk...)
	if p.BodyChunk != nil {
		p.BodyChunk(p.head, chunk)
	}
}

// PushExpectation records that a request with the given method was sent;
// the next responses are matched to expectations in FIFO order.
func (p *ResponseParser) PushExpectation(method string) {
	p.methods = append(p.methods, method)
}

// Outstanding returns the number of responses still expected.
func (p *ResponseParser) Outstanding() int {
	n := len(p.methods)
	if p.head != nil {
		n++
	}
	return n
}

// Parsed returns the number of complete responses produced.
func (p *ResponseParser) Parsed() int { return p.count }

// Buffered returns the number of unconsumed bytes.
func (p *ResponseParser) Buffered() int { return p.buf.len() }

// Pending returns the bytes held for the incomplete in-progress
// response — unconsumed buffer plus the partial body already accumulated
// — i.e. delivered work that is lost if the stream dies now.
func (p *ResponseParser) Pending() int { return p.buf.len() + len(p.body) }

// Feed appends data and returns all responses completed by it. data is
// copied; the caller may reuse the slice.
func (p *ResponseParser) Feed(data []byte) ([]*Response, error) {
	p.buf.push(data)
	var out []*Response
	for {
		if p.head == nil {
			end := bytes.Index(p.buf.bytes(), []byte("\r\n\r\n"))
			if end < 0 {
				return out, nil
			}
			resp, err := parseResponseHead(p.buf.bytes()[:end+4])
			if err != nil {
				return out, err
			}
			p.buf.advance(end + 4)
			if len(p.methods) == 0 {
				return out, fmt.Errorf("%w: response with no outstanding request", ErrMalformed)
			}
			method := p.methods[0]
			p.methods = p.methods[1:]
			p.head = resp
			p.body = nil
			p.kind, p.need = responseBodyKind(resp, method)
			p.chunkNeed, p.chunkLast = -1, false
		}
		done, err := p.consumeBody()
		if err != nil {
			return out, err
		}
		if !done {
			return out, nil
		}
		p.head.Body = p.body
		out = append(out, p.head)
		p.count++
		p.head = nil
	}
}

// CloseEOF signals connection close. For a bodyUntilClose response this
// completes it; a response cut off in any other framing is an error.
func (p *ResponseParser) CloseEOF() (*Response, error) {
	if p.head == nil {
		if p.buf.len() > 0 {
			return nil, ErrTruncatedMessage
		}
		return nil, nil
	}
	if p.kind != bodyUntilClose {
		return nil, ErrTruncatedMessage
	}
	p.head.Body = append(p.body, p.buf.bytes()...)
	p.buf.reset()
	resp := p.head
	p.head = nil
	p.count++
	return resp, nil
}

func (p *ResponseParser) consumeBody() (bool, error) {
	switch p.kind {
	case bodyNone:
		return true, nil
	case bodyLength:
		if p.buf.len() < p.need {
			// Deliver the partial body for incremental consumers.
			p.need -= p.buf.len()
			p.appendBody(p.buf.bytes())
			p.buf.reset()
			return false, nil
		}
		p.appendBody(p.buf.bytes()[:p.need])
		p.buf.advance(p.need)
		p.need = 0
		return true, nil
	case bodyChunked:
		return p.consumeChunked()
	case bodyUntilClose:
		p.appendBody(p.buf.bytes())
		p.buf.reset()
		return false, nil
	}
	return false, ErrMalformed
}

func (p *ResponseParser) consumeChunked() (bool, error) {
	for {
		if p.chunkNeed < 0 {
			// Need a chunk-size line.
			buf := p.buf.bytes()
			nl := bytes.Index(buf, []byte("\r\n"))
			if nl < 0 {
				return false, nil
			}
			sizeStr := strings.TrimSpace(string(buf[:nl]))
			if i := strings.IndexByte(sizeStr, ';'); i >= 0 {
				sizeStr = sizeStr[:i] // drop chunk extensions
			}
			n, err := strconv.ParseInt(sizeStr, 16, 32)
			if err != nil || n < 0 {
				return false, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, sizeStr)
			}
			p.buf.advance(nl + 2)
			if n == 0 {
				p.chunkLast = true
				p.chunkNeed = 0
			} else {
				p.chunkNeed = int(n)
			}
		}
		if p.chunkLast {
			// Trailer: we support only the empty trailer "\r\n".
			buf := p.buf.bytes()
			if len(buf) < 2 {
				return false, nil
			}
			if buf[0] != '\r' || buf[1] != '\n' {
				return false, fmt.Errorf("%w: unsupported chunked trailer", ErrMalformed)
			}
			p.buf.advance(2)
			p.chunkNeed = -1
			p.chunkLast = false
			return true, nil
		}
		// Chunk payload plus its CRLF.
		buf := p.buf.bytes()
		if len(buf) < p.chunkNeed+2 {
			return false, nil
		}
		p.appendBody(buf[:p.chunkNeed])
		if buf[p.chunkNeed] != '\r' || buf[p.chunkNeed+1] != '\n' {
			return false, fmt.Errorf("%w: missing chunk CRLF", ErrMalformed)
		}
		p.buf.advance(p.chunkNeed + 2)
		p.chunkNeed = -1
	}
}

func parseResponseHead(head []byte) (*Response, error) {
	lines := strings.Split(string(head), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformed, parts[1])
	}
	resp := &Response{Proto: parts[0], StatusCode: code}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if err := parseFields(lines[1:], &resp.Header); err != nil {
		return nil, err
	}
	return resp, nil
}

// responseBodyKind applies the RFC 1945/2068 body-delimitation rules.
func responseBodyKind(resp *Response, method string) (bodyKind, int) {
	if method == "HEAD" || bodyless(resp.StatusCode) {
		return bodyNone, 0
	}
	if te := resp.Header.Get("Transfer-Encoding"); TokenListContains(te, "chunked") {
		return bodyChunked, 0
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.Atoi(strings.TrimSpace(cl))
		if err == nil && n >= 0 && n <= maxBodyBytes {
			return bodyLength, n
		}
	}
	return bodyUntilClose, 0
}
