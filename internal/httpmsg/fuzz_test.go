package httpmsg

import (
	"bytes"
	"testing"
)

// The fuzz targets cross-check the incremental parsers against
// themselves under different TCP segmentations: the set of completed
// messages — and whether the stream is rejected — must depend only on
// the byte stream, never on where Feed calls split it. CI runs each
// target briefly (-fuzztime) as a smoke test; the checked-in corpus
// below covers the cache-relevant shapes (conditional GETs, 304s,
// Cache-Control, all three HTTP-date forms).

// feedRequests drives a RequestParser over data in chunks of at most
// chunk bytes, collecting completed requests until the first error.
func feedRequests(data []byte, chunk int) ([]*Request, error) {
	var p RequestParser
	var out []*Request
	for len(data) > 0 {
		n := chunk
		if n > len(data) {
			n = len(data)
		}
		reqs, err := p.Feed(data[:n])
		out = append(out, reqs...)
		if err != nil {
			return out, err
		}
		data = data[n:]
	}
	return out, nil
}

// marshalRequests concatenates the wire form of parsed requests so two
// parse strategies can be compared byte-for-byte.
func marshalRequests(reqs []*Request) []byte {
	var b bytes.Buffer
	for _, r := range reqs {
		b.Write(r.Marshal())
	}
	return b.Bytes()
}

func FuzzRequestParser(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"), uint8(1))
	f.Add([]byte("GET /style.css HTTP/1.1\r\nHost: a\r\nIf-None-Match: \"v1-css\"\r\nIf-Modified-Since: Fri, 20 Jun 1997 08:30:00 GMT\r\n\r\n"), uint8(3))
	f.Add([]byte("GET / HTTP/1.1\r\nHost: a\r\nCache-Control: max-age=86400, no-transform\r\n\r\n"), uint8(5))
	f.Add([]byte("POST /cgi HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello"), uint8(2))
	f.Add([]byte("GET /a HTTP/1.1\r\nHost: a\r\n\r\nGET /b HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n"), uint8(7))
	f.Add([]byte("HEAD /big HTTP/1.1\r\nRange: bytes=0-99\r\n\r\n"), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		whole, wholeErr := feedRequests(data, len(data)+1)
		n := int(chunk)%16 + 1
		split, splitErr := feedRequests(data, n)
		if (wholeErr == nil) != (splitErr == nil) {
			t.Fatalf("error depends on segmentation: whole=%v, %d-byte chunks=%v", wholeErr, n, splitErr)
		}
		if !bytes.Equal(marshalRequests(whole), marshalRequests(split)) {
			t.Fatalf("parsed requests depend on segmentation (%d-byte chunks)", n)
		}
		// Every accepted request must survive a marshal → reparse round
		// trip unchanged: Marshal output is what the simulated clients
		// put on the wire.
		for _, req := range whole {
			wire := req.Marshal()
			var p RequestParser
			again, err := p.Feed(wire)
			if err != nil || len(again) != 1 || p.Buffered() != 0 {
				t.Fatalf("reparse of marshaled request %q: %d requests, %d leftover, err %v",
					wire, len(again), p.Buffered(), err)
			}
			if !bytes.Equal(again[0].Marshal(), wire) {
				t.Fatalf("marshal round trip diverges:\n%q\nvs\n%q", wire, again[0].Marshal())
			}
		}
	})
}

// feedResponses drives a ResponseParser over data in chunks of at most
// chunk bytes with the given outstanding request methods, finishing
// with CloseEOF the way a connection teardown would.
func feedResponses(data []byte, chunk int, methods []string) ([]*Response, error) {
	var p ResponseParser
	for _, m := range methods {
		p.PushExpectation(m)
	}
	var out []*Response
	for len(data) > 0 {
		n := chunk
		if n > len(data) {
			n = len(data)
		}
		resps, err := p.Feed(data[:n])
		out = append(out, resps...)
		if err != nil {
			return out, err
		}
		data = data[n:]
	}
	resp, err := p.CloseEOF()
	if err != nil {
		return out, err
	}
	if resp != nil {
		out = append(out, resp)
	}
	return out, nil
}

func marshalResponses(resps []*Response) []byte {
	var b bytes.Buffer
	for _, r := range resps {
		b.Write(r.Marshal())
	}
	return b.Bytes()
}

func FuzzResponseParser(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"), uint8(1), uint8(0))
	f.Add([]byte("HTTP/1.1 304 Not Modified\r\nDate: Mon, 07 Jul 1997 10:00:00 GMT\r\nETag: \"v1\"\r\nCache-Control: max-age=86400\r\nExpires: Tue, 08 Jul 1997 10:00:00 GMT\r\n\r\n"), uint8(3), uint8(0))
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"), uint8(2), uint8(0))
	f.Add([]byte("HTTP/1.0 200 OK\r\nLast-Modified: Monday, 07-Jul-97 10:00:00 GMT\r\n\r\nbody until close"), uint8(4), uint8(0))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 9999\r\n\r\n"), uint8(1), uint8(1))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokHTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"), uint8(6), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, methodBits uint8) {
		// Up to eight outstanding requests; each bit selects HEAD (which
		// changes body framing) over GET for the matching slot.
		methods := make([]string, 8)
		for i := range methods {
			if methodBits&(1<<i) != 0 {
				methods[i] = "HEAD"
			} else {
				methods[i] = "GET"
			}
		}
		whole, wholeErr := feedResponses(data, len(data)+1, methods)
		n := int(chunk)%16 + 1
		split, splitErr := feedResponses(data, n, methods)
		if (wholeErr == nil) != (splitErr == nil) {
			t.Fatalf("error depends on segmentation: whole=%v, %d-byte chunks=%v", wholeErr, n, splitErr)
		}
		if len(whole) != len(split) {
			t.Fatalf("%d responses whole vs %d with %d-byte chunks", len(whole), len(split), n)
		}
		if !bytes.Equal(marshalResponses(whole), marshalResponses(split)) {
			t.Fatalf("parsed responses depend on segmentation (%d-byte chunks)", n)
		}
	})
}

func FuzzParseDate(f *testing.F) {
	f.Add("Mon, 07 Jul 1997 10:00:00 GMT")  // RFC 1123
	f.Add("Monday, 07-Jul-97 10:00:00 GMT") // RFC 850
	f.Add("Mon Jul  7 10:00:00 1997")       // asctime
	f.Add("Fri, 20 Jun 1997 08:30:00 GMT")
	f.Add("Thu, 01 Jan 1970 00:00:00 GMT")
	f.Add("-1")
	f.Add("Mon, 07 Jul 1997 10:00:00 +0200")
	f.Fuzz(func(t *testing.T, s string) {
		tm, err := ParseDate(s)
		if err != nil {
			return
		}
		// Any accepted date must round-trip through the RFC 1123 form
		// FormatDate generates, landing on the same instant.
		out := FormatDate(tm)
		tm2, err := ParseDate(out)
		if err != nil {
			t.Fatalf("FormatDate(%q parse) produced unparseable %q: %v", s, out, err)
		}
		if !tm2.Equal(tm) {
			t.Fatalf("date round trip moved: %q -> %v -> %q -> %v", s, tm, out, tm2)
		}
		// Comparison helpers must agree with the parsed ordering.
		if ModifiedSince(s, out) {
			t.Fatalf("ModifiedSince(%q, %q) true for equal instants", s, out)
		}
	})
}
