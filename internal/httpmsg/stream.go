package httpmsg

// stream is the parsers' input buffer: bytes are appended at the tail
// and consumed from a moving read offset. Unlike the old idiom of
// re-slicing the buffer forward (`buf = buf[n:]`), consuming never
// discards the array's prefix, so a long-lived connection parses an
// arbitrary number of messages with a single steady-state allocation:
// the buffer rewinds to the start whenever it empties, and compacts
// before it would otherwise have to grow.
type stream struct {
	data []byte
	off  int
}

// bytes returns the unconsumed region. The slice is invalidated by the
// next push or advance.
func (s *stream) bytes() []byte { return s.data[s.off:] }

// len returns the number of unconsumed bytes.
func (s *stream) len() int { return len(s.data) - s.off }

// push appends p to the buffer.
func (s *stream) push(p []byte) {
	if s.off == len(s.data) {
		// Empty: rewind to the array start.
		s.data = s.data[:0]
		s.off = 0
	} else if s.off > 0 && len(s.data)+len(p) > cap(s.data) {
		// Would grow: slide the live region down first so the existing
		// array is reused whenever the consumed prefix makes room.
		n := copy(s.data, s.data[s.off:])
		s.data = s.data[:n]
		s.off = 0
	}
	s.data = append(s.data, p...)
}

// advance consumes n bytes.
func (s *stream) advance(n int) {
	s.off += n
	if s.off == len(s.data) {
		s.data = s.data[:0]
		s.off = 0
	}
}

// reset discards all unconsumed bytes.
func (s *stream) reset() {
	s.data = s.data[:0]
	s.off = 0
}
