package httpmsg

import (
	"bytes"
	"fmt"
	"strconv"
)

// Protocol version strings.
const (
	Proto10 = "HTTP/1.0"
	Proto11 = "HTTP/1.1"
)

// Request is an HTTP request message.
type Request struct {
	Method string
	Target string
	Proto  string
	Header Header
	Body   []byte
}

// Marshal serializes the request. If a body is present a Content-Length
// field is added unless already set.
func (r *Request) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, r.Target, r.Proto)
	h := r.Header
	if len(r.Body) > 0 && !h.Has("Content-Length") {
		h = r.Header.Clone()
		h.Add("Content-Length", strconv.Itoa(len(r.Body)))
	}
	h.writeTo(&b)
	b.Write(r.Body)
	return b.Bytes()
}

// WireSize returns the serialized size in bytes.
func (r *Request) WireSize() int { return len(r.Marshal()) }

// IsHTTP11 reports whether the request is HTTP/1.1.
func (r *Request) IsHTTP11() bool { return r.Proto == Proto11 }

// WantsClose reports whether the peer asked for the connection to close
// after this message, per the version's default and Connection tokens.
func (r *Request) WantsClose() bool {
	conn := r.Header.Get("Connection")
	if r.IsHTTP11() {
		return TokenListContains(conn, "close")
	}
	return !TokenListContains(conn, "keep-alive")
}

// Response is an HTTP response message.
type Response struct {
	Proto      string
	StatusCode int
	Reason     string
	Header     Header
	Body       []byte
	// Chunked selects chunked transfer coding on Marshal (HTTP/1.1 only).
	Chunked bool
	// NoBodyLength leaves the body length undeclared: HTTP/1.0 style
	// "read until close" framing.
	NoBodyLength bool
}

// StatusText returns the canonical reason phrase for the codes this
// implementation uses.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 412:
		return "Precondition Failed"
	case 500:
		return "Internal Server Error"
	case 501:
		return "Not Implemented"
	case 502:
		return "Bad Gateway"
	case 505:
		return "HTTP Version Not Supported"
	}
	return "Unknown"
}

// NewResponse builds a response with the canonical reason phrase.
func NewResponse(proto string, code int) *Response {
	return &Response{Proto: proto, StatusCode: code, Reason: StatusText(code)}
}

// bodyless reports whether a status code forbids a body.
func bodyless(code int) bool {
	return code == 304 || code == 204 || (code >= 100 && code < 200)
}

// Marshal serializes the response with correct body framing.
func (r *Response) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d %s\r\n", r.Proto, r.StatusCode, r.Reason)
	h := r.Header.Clone()
	switch {
	case bodyless(r.StatusCode):
		// No body, no framing fields.
		h.writeTo(&b)
		return b.Bytes()
	case r.Chunked:
		if !h.Has("Transfer-Encoding") {
			h.Add("Transfer-Encoding", "chunked")
		}
		h.writeTo(&b)
		writeChunked(&b, r.Body, defaultChunkSize)
		return b.Bytes()
	case r.NoBodyLength:
		h.writeTo(&b)
		b.Write(r.Body)
		return b.Bytes()
	default:
		if !h.Has("Content-Length") {
			h.Add("Content-Length", strconv.Itoa(len(r.Body)))
		}
		h.writeTo(&b)
		b.Write(r.Body)
		return b.Bytes()
	}
}

// MarshalFor serializes the response as the reply to the given request
// method: HEAD responses carry headers only.
func (r *Response) MarshalFor(method string) []byte {
	if method != "HEAD" {
		return r.Marshal()
	}
	clone := *r
	clone.Body = nil
	clone.Chunked = false
	clone.NoBodyLength = false
	// Keep the declared Content-Length of the would-be body: HEAD
	// responses advertise the entity's length without sending it.
	h := r.Header.Clone()
	if !h.Has("Content-Length") && !bodyless(r.StatusCode) {
		h.Add("Content-Length", strconv.Itoa(len(r.Body)))
	}
	clone.Header = h
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d %s\r\n", clone.Proto, clone.StatusCode, clone.Reason)
	clone.Header.writeTo(&b)
	return b.Bytes()
}

const defaultChunkSize = 4096

// writeChunked emits body in chunked transfer coding.
func writeChunked(b *bytes.Buffer, body []byte, chunkSize int) {
	for len(body) > 0 {
		n := len(body)
		if n > chunkSize {
			n = chunkSize
		}
		fmt.Fprintf(b, "%x\r\n", n)
		b.Write(body[:n])
		b.WriteString("\r\n")
		body = body[n:]
	}
	b.WriteString("0\r\n\r\n")
}

// EncodeChunked returns body in chunked transfer coding with the given
// chunk size (0 selects the default).
func EncodeChunked(body []byte, chunkSize int) []byte {
	if chunkSize <= 0 {
		chunkSize = defaultChunkSize
	}
	var b bytes.Buffer
	writeChunked(&b, body, chunkSize)
	return b.Bytes()
}
