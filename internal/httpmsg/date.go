package httpmsg

import (
	"fmt"
	"time"
)

// HTTP-date handling per RFC 2068 §3.3.1: servers must accept all three
// historical formats and must generate RFC 1123 dates. The 1997-era
// If-Modified-Since comparison rules apply: an unparseable date is
// ignored (treated as "modified").

// httpDateFormats lists the three formats in preference order.
var httpDateFormats = []string{
	"Mon, 02 Jan 2006 15:04:05 GMT",  // RFC 1123 (preferred)
	"Monday, 02-Jan-06 15:04:05 GMT", // RFC 850
	"Mon Jan  2 15:04:05 2006",       // ANSI C asctime()
}

// ParseDate parses an HTTP-date in any of the three RFC 2068 formats.
func ParseDate(s string) (time.Time, error) {
	for _, layout := range httpDateFormats {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("%w: unparseable HTTP-date %q", ErrMalformed, s)
}

// FormatDate renders t as an RFC 1123 HTTP-date (always GMT).
func FormatDate(t time.Time) string {
	return t.UTC().Format(httpDateFormats[0])
}

// ModifiedSince reports whether an entity with the given Last-Modified
// value should be considered modified relative to an If-Modified-Since
// header. Per the specification's spirit (and defensive 1997 practice):
// if either date is unparseable the entity is treated as modified, and
// an If-Modified-Since in the future is ignored too.
func ModifiedSince(lastModified, ifModifiedSince string) bool {
	lm, err := ParseDate(lastModified)
	if err != nil {
		return true
	}
	ims, err := ParseDate(ifModifiedSince)
	if err != nil {
		return true
	}
	return lm.After(ims)
}
