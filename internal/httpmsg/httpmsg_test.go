package httpmsg

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderOps(t *testing.T) {
	var h Header
	h.Add("Host", "www26.w3.org")
	h.Add("Accept", "*/*")
	h.Add("Accept", "text/html")
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.Get("host") != "www26.w3.org" {
		t.Fatal("case-insensitive Get failed")
	}
	if !h.Has("ACCEPT") {
		t.Fatal("Has failed")
	}
	h.Set("Accept", "image/gif")
	if h.Get("Accept") != "image/gif" {
		t.Fatal("Set did not replace first value")
	}
	h.Del("accept")
	if h.Has("Accept") || h.Len() != 1 {
		t.Fatal("Del failed")
	}
	clone := h.Clone()
	clone.Set("Host", "other")
	if h.Get("Host") != "www26.w3.org" {
		t.Fatal("Clone is not deep")
	}
}

func TestTokenListContains(t *testing.T) {
	if !TokenListContains("Keep-Alive, Close", "close") {
		t.Fatal("should find close token")
	}
	if TokenListContains("closed", "close") {
		t.Fatal("substring must not match")
	}
	if TokenListContains("", "close") {
		t.Fatal("empty list must not match")
	}
}

func TestRequestMarshalExactBytes(t *testing.T) {
	req := &Request{Method: "GET", Target: "/", Proto: Proto11}
	req.Header.Add("Host", "h")
	got := string(req.Marshal())
	want := "GET / HTTP/1.1\r\nHost: h\r\n\r\n"
	if got != want {
		t.Fatalf("marshal = %q, want %q", got, want)
	}
	if req.WireSize() != len(want) {
		t.Fatalf("WireSize = %d, want %d", req.WireSize(), len(want))
	}
}

func TestRequestBodyContentLength(t *testing.T) {
	req := &Request{Method: "POST", Target: "/x", Proto: Proto11, Body: []byte("hello")}
	got := string(req.Marshal())
	if !strings.Contains(got, "Content-Length: 5\r\n") {
		t.Fatalf("missing content length: %q", got)
	}
	if !strings.HasSuffix(got, "\r\n\r\nhello") {
		t.Fatalf("body misplaced: %q", got)
	}
}

func TestWantsCloseDefaults(t *testing.T) {
	r10 := &Request{Proto: Proto10}
	if !r10.WantsClose() {
		t.Fatal("HTTP/1.0 default should close")
	}
	r10.Header.Add("Connection", "Keep-Alive")
	if r10.WantsClose() {
		t.Fatal("HTTP/1.0 keep-alive should persist")
	}
	r11 := &Request{Proto: Proto11}
	if r11.WantsClose() {
		t.Fatal("HTTP/1.1 default should persist")
	}
	r11.Header.Add("Connection", "close")
	if !r11.WantsClose() {
		t.Fatal("HTTP/1.1 Connection: close should close")
	}
}

func TestResponseMarshalContentLength(t *testing.T) {
	resp := NewResponse(Proto11, 200)
	resp.Body = []byte("body bytes")
	got := string(resp.Marshal())
	if !strings.HasPrefix(got, "HTTP/1.1 200 OK\r\n") {
		t.Fatalf("bad status line: %q", got)
	}
	if !strings.Contains(got, "Content-Length: 10\r\n") {
		t.Fatalf("missing content length: %q", got)
	}
}

func TestResponse304HasNoBodyFraming(t *testing.T) {
	resp := NewResponse(Proto11, 304)
	resp.Header.Add("ETag", `"abc"`)
	resp.Body = []byte("must not appear")
	got := string(resp.Marshal())
	if strings.Contains(got, "must not appear") || strings.Contains(got, "Content-Length") {
		t.Fatalf("304 carried a body: %q", got)
	}
}

func TestHeadResponseKeepsLengthDropsBody(t *testing.T) {
	resp := NewResponse(Proto11, 200)
	resp.Body = []byte("0123456789")
	got := string(resp.MarshalFor("HEAD"))
	if strings.Contains(got, "0123456789") {
		t.Fatalf("HEAD response carried body: %q", got)
	}
	if !strings.Contains(got, "Content-Length: 10\r\n") {
		t.Fatalf("HEAD response lost entity length: %q", got)
	}
}

func TestChunkedEncodingRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte("abcdefgh"), 1000)
	resp := NewResponse(Proto11, 200)
	resp.Body = body
	resp.Chunked = true
	wire := resp.Marshal()
	if !bytes.Contains(wire, []byte("Transfer-Encoding: chunked")) {
		t.Fatal("missing chunked header")
	}
	var p ResponseParser
	p.PushExpectation("GET")
	got, err := p.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Body, body) {
		t.Fatal("chunked round trip failed")
	}
}

func TestChunkedWithExtensions(t *testing.T) {
	wire := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5;ext=1\r\nhello\r\n0\r\n\r\n"
	var p ResponseParser
	p.PushExpectation("GET")
	got, err := p.Feed([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Body) != "hello" {
		t.Fatalf("chunk extension parse failed: %+v", got)
	}
}

func TestRequestParserPipelined(t *testing.T) {
	var wire []byte
	for i := 0; i < 5; i++ {
		r := &Request{Method: "GET", Target: fmt.Sprintf("/img%d.gif", i), Proto: Proto11}
		r.Header.Add("Host", "microscape")
		wire = append(wire, r.Marshal()...)
	}
	var p RequestParser
	got, err := p.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d requests, want 5", len(got))
	}
	for i, r := range got {
		if r.Target != fmt.Sprintf("/img%d.gif", i) {
			t.Fatalf("request %d target %q out of order", i, r.Target)
		}
	}
}

func TestRequestParserIncrementalByteAtATime(t *testing.T) {
	req := &Request{Method: "POST", Target: "/submit", Proto: Proto11, Body: []byte("payload")}
	req.Header.Add("Host", "h")
	wire := req.Marshal()
	var p RequestParser
	var got []*Request
	for _, b := range wire {
		out, err := p.Feed([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out...)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d requests, want 1", len(got))
	}
	if string(got[0].Body) != "payload" || got[0].Method != "POST" {
		t.Fatalf("bad parse: %+v", got[0])
	}
	if p.Buffered() != 0 {
		t.Fatalf("leftover %d bytes", p.Buffered())
	}
}

func TestResponseParserHeadHasNoBody(t *testing.T) {
	// A HEAD response advertises Content-Length but sends no body; the
	// parser must not wait for body bytes.
	resp := NewResponse(Proto11, 200)
	resp.Body = []byte("0123456789")
	wire := resp.MarshalFor("HEAD")
	var p ResponseParser
	p.PushExpectation("HEAD")
	p.PushExpectation("GET")
	got, err := p.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Body) != 0 {
		t.Fatal("HEAD response mishandled")
	}
	// The following GET response flows straight through.
	resp2 := NewResponse(Proto11, 200)
	resp2.Body = []byte("abc")
	got, err = p.Feed(resp2.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Body) != "abc" {
		t.Fatal("pipelined GET after HEAD mishandled")
	}
}

func TestResponseUntilCloseFraming(t *testing.T) {
	wire := "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\npartial body then close"
	var p ResponseParser
	p.PushExpectation("GET")
	got, err := p.Feed([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("until-close response completed early")
	}
	resp, err := p.CloseEOF()
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || string(resp.Body) != "partial body then close" {
		t.Fatalf("CloseEOF got %+v", resp)
	}
}

func TestCloseEOFTruncatedLengthBody(t *testing.T) {
	wire := "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nonly a few bytes"
	var p ResponseParser
	p.PushExpectation("GET")
	if _, err := p.Feed([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CloseEOF(); !errors.Is(err, ErrTruncatedMessage) {
		t.Fatalf("CloseEOF = %v, want ErrTruncatedMessage", err)
	}
}

func TestCloseEOFCleanIdle(t *testing.T) {
	var p ResponseParser
	resp, err := p.CloseEOF()
	if err != nil || resp != nil {
		t.Fatalf("idle CloseEOF = %v, %v", resp, err)
	}
}

func TestResponseWithoutExpectationErrors(t *testing.T) {
	var p ResponseParser
	_, err := p.Feed([]byte("HTTP/1.1 200 OK\r\n\r\n"))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestMalformedInput(t *testing.T) {
	cases := []string{
		"NOT-HTTP\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n",
	}
	for _, c := range cases {
		var p RequestParser
		if _, err := p.Feed([]byte(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("Feed(%q) err = %v, want ErrMalformed", c, err)
		}
	}
	var rp ResponseParser
	rp.PushExpectation("GET")
	if _, err := rp.Feed([]byte("HTTP/1.1 9xx Nope\r\n\r\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad status code accepted: %v", err)
	}
}

func TestStatusTextCoverage(t *testing.T) {
	for _, code := range []int{200, 206, 304, 400, 404, 412, 500, 501, 505} {
		if StatusText(code) == "Unknown" {
			t.Errorf("StatusText(%d) unknown", code)
		}
	}
	if StatusText(299) != "Unknown" {
		t.Error("unexpected reason for 299")
	}
}

func TestEncodeChunkedExact(t *testing.T) {
	got := string(EncodeChunked([]byte("hello"), 4))
	want := "4\r\nhell\r\n1\r\no\r\n0\r\n\r\n"
	if got != want {
		t.Fatalf("EncodeChunked = %q, want %q", got, want)
	}
	if string(EncodeChunked(nil, 4)) != "0\r\n\r\n" {
		t.Fatal("empty body chunked encoding wrong")
	}
}

// Property: any pipeline of responses with mixed framings round-trips
// through the parser regardless of how the byte stream is split.
func TestPropertyResponsePipelineSplitInvariance(t *testing.T) {
	f := func(bodies [][]byte, splitSeed uint32, chunkedMask uint8) bool {
		if len(bodies) == 0 || len(bodies) > 8 {
			return true
		}
		var wire []byte
		var methods []string
		for i, body := range bodies {
			if len(body) > 2048 {
				body = body[:2048]
			}
			resp := NewResponse(Proto11, 200)
			resp.Body = body
			if chunkedMask&(1<<uint(i)) != 0 {
				resp.Chunked = true
			}
			wire = append(wire, resp.Marshal()...)
			methods = append(methods, "GET")
		}
		var p ResponseParser
		for _, m := range methods {
			p.PushExpectation(m)
		}
		var got []*Response
		// Deterministic pseudo-random split points.
		seed := splitSeed
		for off := 0; off < len(wire); {
			seed = seed*1664525 + 1013904223
			n := int(seed%97) + 1
			if off+n > len(wire) {
				n = len(wire) - off
			}
			out, err := p.Feed(wire[off : off+n])
			if err != nil {
				return false
			}
			got = append(got, out...)
			off += n
		}
		if len(got) != len(bodies) {
			return false
		}
		for i := range got {
			want := bodies[i]
			if len(want) > 2048 {
				want = want[:2048]
			}
			if !bytes.Equal(got[i].Body, want) {
				return false
			}
		}
		return p.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: requests round-trip exactly (method, target, headers, body).
func TestPropertyRequestRoundTrip(t *testing.T) {
	f := func(nHeaders uint8, body []byte) bool {
		req := &Request{Method: "GET", Target: "/x", Proto: Proto11}
		if len(body) > 0 {
			req.Method = "POST"
			req.Body = body
		}
		for i := 0; i < int(nHeaders)%10; i++ {
			req.Header.Add(fmt.Sprintf("X-H%d", i), fmt.Sprintf("v%d", i))
		}
		var p RequestParser
		out, err := p.Feed(req.Marshal())
		if err != nil || len(out) != 1 {
			return false
		}
		got := out[0]
		if got.Method != req.Method || got.Target != req.Target || !bytes.Equal(got.Body, req.Body) {
			return false
		}
		for i := 0; i < int(nHeaders)%10; i++ {
			if got.Header.Get(fmt.Sprintf("X-H%d", i)) != fmt.Sprintf("v%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDateFormats(t *testing.T) {
	want := time.Date(1994, time.November, 6, 8, 49, 37, 0, time.UTC)
	cases := []string{
		"Sun, 06 Nov 1994 08:49:37 GMT",  // RFC 1123
		"Sunday, 06-Nov-94 08:49:37 GMT", // RFC 850
		"Sun Nov  6 08:49:37 1994",       // asctime
	}
	for _, c := range cases {
		got, err := ParseDate(c)
		if err != nil {
			t.Errorf("ParseDate(%q): %v", c, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("ParseDate(%q) = %v, want %v", c, got, want)
		}
	}
	if _, err := ParseDate("yesterday"); err == nil {
		t.Error("garbage date accepted")
	}
}

func TestFormatDateRoundTrip(t *testing.T) {
	now := time.Date(1997, time.June, 24, 12, 0, 0, 0, time.UTC)
	s := FormatDate(now)
	if s != "Tue, 24 Jun 1997 12:00:00 GMT" {
		t.Fatalf("FormatDate = %q", s)
	}
	back, err := ParseDate(s)
	if err != nil || !back.Equal(now) {
		t.Fatalf("round trip: %v, %v", back, err)
	}
}

func TestModifiedSince(t *testing.T) {
	lm := "Fri, 20 Jun 1997 08:30:00 GMT"
	if ModifiedSince(lm, lm) {
		t.Error("equal dates should be not-modified")
	}
	if ModifiedSince(lm, "Sat, 21 Jun 1997 00:00:00 GMT") {
		t.Error("IMS after LM should be not-modified")
	}
	if !ModifiedSince(lm, "Thu, 19 Jun 1997 00:00:00 GMT") {
		t.Error("IMS before LM should be modified")
	}
	if !ModifiedSince("garbage", lm) || !ModifiedSince(lm, "garbage") {
		t.Error("unparseable dates must be treated as modified")
	}
	// Cross-format comparison works.
	if ModifiedSince(lm, "Friday, 20-Jun-97 08:30:00 GMT") {
		t.Error("RFC 850 equivalent date should compare equal")
	}
}
