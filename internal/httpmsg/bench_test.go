package httpmsg

import "testing"

func benchResponses() []byte {
	var wire []byte
	for i := 0; i < 43; i++ {
		resp := NewResponse(Proto11, 304)
		resp.Header.Add("Date", "Mon, 07 Jul 1997 10:00:00 GMT")
		resp.Header.Add("Server", "Apache/1.2b10")
		resp.Header.Add("ETag", `"3a5f2c77-2d4"`)
		wire = append(wire, resp.Marshal()...)
	}
	return wire
}

func BenchmarkResponseParserPipelined(b *testing.B) {
	wire := benchResponses()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		var p ResponseParser
		for j := 0; j < 43; j++ {
			p.PushExpectation("GET")
		}
		if _, err := p.Feed(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestMarshal(b *testing.B) {
	req := &Request{Method: "GET", Target: "/images/x.gif", Proto: Proto11}
	req.Header.Add("Host", "server")
	req.Header.Add("Accept", "*/*")
	req.Header.Add("If-None-Match", `"3a5f2c77-2d4"`)
	for i := 0; i < b.N; i++ {
		req.Marshal()
	}
}
