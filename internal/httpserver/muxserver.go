package httpserver

import (
	"strconv"
	"strings"

	"repro/internal/httpmsg"
	"repro/internal/mux"
	"repro/internal/tcpsim"
)

// muxJob is one response the mux session owes: a client request's, or
// a push the server volunteered. Both are charged PerRequestCPU
// through the host's single CPU, one at a time, like the HTTP/1.x
// path.
type muxJob struct {
	st     *mux.Stream
	req    *httpmsg.Request
	pushed bool
}

// muxServerConn runs one framed multiplexed connection: requests
// arrive as HEADERS, responses leave as HEADERS+DATA interleaved by
// the session's priority scheduler, and — when the client advertised
// push — the page's inline objects are promised and pushed ahead of
// the client asking.
type muxServerConn struct {
	sc   *serverConn
	sess *mux.Session

	pending    []muxJob
	processing bool
}

// startMux hands the connection to a mux session. Response bytes are
// counted in the Send hook (the session owns all marshalling), so the
// legacy BytesOut accounting in serve() is never double-applied.
func (sc *serverConn) startMux() {
	srv := sc.srv
	msc := &muxServerConn{sc: sc}
	sess := mux.NewServer(func(b []byte) {
		srv.stats.BytesOut += int64(len(b))
		sc.conn.Write(b)
	})
	sess.OnHeaders = msc.onHeaders
	sess.OnError = func(err error) {
		srv.stats.ProtocolErrors++
		sc.close()
	}
	sess.OnStall = func(st *mux.Stream, conn bool) {
		srv.stats.FlowControlStalls++
		if b := srv.cfg.Obs; b != nil {
			var sid uint32
			if st != nil {
				sid = st.ID
			}
			b.FlowStall(sc.conn.ObsID(), sid, conn)
		}
	}
	if b := srv.cfg.Obs; b != nil {
		id := sc.conn.ObsID()
		sess.OnFrameSent = func(t mux.FrameType, stream uint32, n int) {
			b.MuxFrame(id, t.String(), stream, n)
		}
	}
	sc.mux = msc
	msc.sess = sess
	sess.Start()
}

// onHeaders lifts a request header block back into an httpmsg.Request
// so the HTTP/1.x response logic (conditional GET, ranges, deflate,
// burst) applies unchanged.
func (msc *muxServerConn) onHeaders(st *mux.Stream, fields []mux.Field, end bool) {
	req := &httpmsg.Request{Proto: httpmsg.Proto11}
	for _, f := range fields {
		switch f.Name {
		case ":method":
			req.Method = f.Value
		case ":path":
			req.Target = f.Value
		case ":authority":
			req.Header.Add("Host", f.Value)
		default:
			req.Header.Add(f.Name, f.Value)
		}
	}
	if b := msc.sc.srv.cfg.Obs; b != nil {
		b.ServerRecv(msc.sc.conn.ObsID(), req.Target)
	}
	msc.pending = append(msc.pending, muxJob{st: st, req: req})
	msc.processNext()
}

// processNext serves queued jobs one at a time through the host CPU,
// mirroring serverConn.processNext.
func (msc *muxServerConn) processNext() {
	if msc.processing || msc.sc.closing || len(msc.pending) == 0 {
		return
	}
	job := msc.pending[0]
	msc.pending = msc.pending[1:]
	msc.processing = true
	srv := msc.sc.srv
	if !job.pushed {
		srv.stats.Requests++
	}
	srv.cpu.Run(srv.cfg.PerRequestCPU, func() {
		msc.processing = false
		if msc.sc.conn.State() == tcpsim.StateClosed {
			return
		}
		msc.serve(job)
		msc.processNext()
		msc.maybeClose()
	})
}

func (msc *muxServerConn) serve(job muxJob) {
	srv := msc.sc.srv
	resp := srv.respond(job.req)
	srv.stats.Responses++
	if b := srv.cfg.Obs; b != nil {
		b.ServerSend(msc.sc.conn.ObsID(), job.req.Target, resp.StatusCode, len(resp.Body))
	}
	// Server push: promise every inline object of a just-requested page
	// before its response, so the promises reach the client ahead of
	// the HTML parse (and ahead of its own requests). A 304 pushes too:
	// the client may hold the page but not its contents.
	if !job.pushed && msc.sess.EnablePush && job.req.Method == "GET" &&
		(resp.StatusCode == 200 || resp.StatusCode == 304) {
		for _, path := range srv.site.InlineLinks(job.req.Target) {
			msc.push(job.st, path)
		}
	}
	msc.writeResponse(job.st, job.req.Method, resp)
}

// push promises one inline object on the parent stream and queues its
// response at image priority (the page's own DATA goes first).
func (msc *muxServerConn) push(parent *mux.Stream, path string) {
	st := msc.sess.PushPromise(parent, []mux.Field{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: path},
	})
	if st == nil {
		return
	}
	st.Priority = 1
	msc.sc.srv.stats.PushedStreams++
	msc.pending = append(msc.pending, muxJob{
		st:     st,
		req:    &httpmsg.Request{Method: "GET", Target: path, Proto: httpmsg.Proto11},
		pushed: true,
	})
}

// writeResponse lowers an HTTP/1.x response onto the stream.
func (msc *muxServerConn) writeResponse(st *mux.Stream, method string, resp *httpmsg.Response) {
	body := resp.Body
	if method == "HEAD" {
		body = nil
	}
	fields := make([]mux.Field, 0, 8)
	fields = append(fields, mux.Field{Name: ":status", Value: strconv.Itoa(resp.StatusCode)})
	for _, f := range resp.Header.Fields() {
		name := strings.ToLower(f.Name)
		if name == "connection" {
			continue // the framing layer owns connection management
		}
		fields = append(fields, mux.Field{Name: name, Value: f.Value})
	}
	if len(body) > 0 {
		fields = append(fields, mux.Field{Name: "content-length", Value: strconv.Itoa(len(body))})
	}
	if len(body) == 0 {
		msc.sess.WriteHeaders(st, fields, true)
		return
	}
	msc.sess.WriteHeaders(st, fields, false)
	msc.sess.WriteData(st, body, true)
}

// onPeerClose drains outstanding jobs, then half-closes, mirroring the
// HTTP/1.x connection's graceful shutdown.
func (msc *muxServerConn) onPeerClose() {
	msc.maybeClose()
}

func (msc *muxServerConn) maybeClose() {
	if msc.processing || len(msc.pending) > 0 {
		return
	}
	if msc.sc.conn.State() == tcpsim.StateCloseWait {
		msc.sc.close()
	}
}

// burstRecords packs a page and its inline objects for the burst
// (aggregated single-response) mode; nil when the target is not an
// HTML page.
func (s *Server) burstRecords(target string) []mux.BurstRecord {
	obj, ok := s.site.Object(target)
	if !ok || !strings.Contains(obj.ContentType, "text/html") {
		return nil
	}
	recs := []mux.BurstRecord{{
		Path: target, ContentType: obj.ContentType,
		ETag: obj.ETag, LastModified: obj.LastModified, Body: obj.Body,
	}}
	for _, path := range s.site.InlineLinks(target) {
		o, ok := s.site.Object(path)
		if !ok {
			continue
		}
		recs = append(recs, mux.BurstRecord{
			Path: path, ContentType: o.ContentType,
			ETag: o.ETag, LastModified: o.LastModified, Body: o.Body,
		})
	}
	return recs
}
