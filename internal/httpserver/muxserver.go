package httpserver

import (
	"strconv"
	"strings"

	"repro/internal/httpmsg"
	"repro/internal/mux"
	"repro/internal/tcpsim"
)

// muxJob is one response the mux session owes: a client request's, or
// a push the server volunteered. Both are charged PerRequestCPU
// through the host's single CPU, one at a time, like the HTTP/1.x
// path.
type muxJob struct {
	st     *mux.Stream
	req    *httpmsg.Request
	pushed bool
}

// muxServerConn runs one framed multiplexed connection: requests
// arrive as HEADERS, responses leave as HEADERS+DATA interleaved by
// the session's priority scheduler, and — when the client advertised
// push — the page's inline objects are promised and pushed ahead of
// the client asking.
type muxServerConn struct {
	sc   *serverConn
	sess *mux.Session

	pending    []muxJob
	processing bool
	served     int // client-requested responses completed on this connection
}

// startMux hands the connection to a mux session. Response bytes are
// counted in the Send hook (the session owns all marshalling), so the
// legacy BytesOut accounting in serve() is never double-applied.
func (sc *serverConn) startMux() {
	srv := sc.srv
	msc := &muxServerConn{sc: sc}
	sess := mux.NewServer(func(b []byte) {
		srv.stats.BytesOut += int64(len(b))
		sc.conn.Write(b)
	})
	sess.FIFO = srv.cfg.MuxFIFO
	sess.OnHeaders = msc.onHeaders
	sess.OnError = func(err error) {
		srv.stats.ProtocolErrors++
		sc.close()
	}
	sess.OnStall = func(st *mux.Stream, conn bool) {
		srv.stats.FlowControlStalls++
		if b := srv.cfg.Obs; b != nil {
			var sid uint32
			if st != nil {
				sid = st.ID
			}
			b.FlowStall(sc.conn.ObsID(), sid, conn)
		}
	}
	if b := srv.cfg.Obs; b != nil {
		id := sc.conn.ObsID()
		sess.OnFrameSent = func(t mux.FrameType, stream uint32, n int) {
			b.MuxFrame(id, t.String(), stream, n)
		}
	}
	sc.mux = msc
	msc.sess = sess
	sess.Start()
}

// onHeaders lifts a request header block back into an httpmsg.Request
// so the HTTP/1.x response logic (conditional GET, ranges, deflate,
// burst) applies unchanged.
func (msc *muxServerConn) onHeaders(st *mux.Stream, fields []mux.Field, end bool) {
	req := &httpmsg.Request{Proto: httpmsg.Proto11}
	for _, f := range fields {
		switch f.Name {
		case ":method":
			req.Method = f.Value
		case ":path":
			req.Target = f.Value
		case ":authority":
			req.Header.Add("Host", f.Value)
		default:
			req.Header.Add(f.Name, f.Value)
		}
	}
	if b := msc.sc.srv.cfg.Obs; b != nil {
		b.ServerRecv(msc.sc.conn.ObsID(), req.Target)
	}
	msc.pending = append(msc.pending, muxJob{st: st, req: req})
	msc.processNext()
}

// processNext serves queued jobs one at a time through the host CPU,
// mirroring serverConn.processNext.
func (msc *muxServerConn) processNext() {
	if msc.processing || msc.sc.closing || len(msc.pending) == 0 {
		return
	}
	job := msc.pending[0]
	msc.pending = msc.pending[1:]
	msc.processing = true
	srv := msc.sc.srv
	if !job.pushed {
		srv.stats.Requests++
	}
	srv.cpu.Run(srv.cfg.PerRequestCPU, func() {
		msc.processing = false
		if msc.sc.conn.State() == tcpsim.StateClosed {
			return
		}
		msc.serve(job)
		msc.processNext()
		msc.maybeClose()
	})
}

func (msc *muxServerConn) serve(job muxJob) {
	srv := msc.sc.srv
	resp := srv.respond(job.req)
	srv.stats.Responses++
	if b := srv.cfg.Obs; b != nil {
		b.ServerSend(msc.sc.conn.ObsID(), job.req.Target, resp.StatusCode, len(resp.Body))
	}
	if (srv.cfg.Faults.Any() || srv.cfg.MuxFaults.Any()) && msc.injectFault(job, resp) {
		return
	}
	// Server push: promise every inline object of a just-requested page
	// before its response, so the promises reach the client ahead of
	// the HTML parse (and ahead of its own requests). A 304 pushes too:
	// the client may hold the page but not its contents.
	if !job.pushed && msc.sess.EnablePush && job.req.Method == "GET" &&
		(resp.StatusCode == 200 || resp.StatusCode == 304) {
		for _, path := range srv.site.InlineLinks(job.req.Target) {
			msc.push(job.st, path)
		}
	}
	msc.writeResponse(job.st, job.req.Method, resp)
	msc.afterResponse(job)
}

// afterResponse applies the scripted early-close limit on framed
// connections: after the Nth client-requested response, announce the
// close with GOAWAY and tear the connection down in the scripted
// style, pushes and pipelined streams be damned — the framed
// equivalent of the HTTP/1.x early-close fault.
func (msc *muxServerConn) afterResponse(job muxJob) {
	srv := msc.sc.srv
	limit := srv.cfg.Faults.CloseAfterResponses
	if limit <= 0 || job.pushed || msc.sc.closing {
		return
	}
	msc.served++
	if msc.served < limit {
		return
	}
	srv.stats.EarlyCloses++
	srv.stats.FaultsInjected++
	if b := srv.cfg.Obs; b != nil {
		b.Fault(msc.sc.conn.ObsID(), "early-close", int64(msc.served))
	}
	msc.sess.Goaway(mux.ErrCodeNo)
	msc.sc.close()
}

// injectFault fires the scripted one-shot faults against a framed
// response, both the HTTP/1.x server scripts mapped onto framing
// semantics and the mux-specific scripts. It reports whether the
// fault consumed the response. Ordinals are counted server-wide
// (muxSeq for client-requested responses, pushSeq for pushes) so each
// one-shot fault fires exactly once per run even across redials.
func (msc *muxServerConn) injectFault(job muxJob, resp *httpmsg.Response) bool {
	srv := msc.sc.srv
	sf, mf := srv.cfg.Faults, srv.cfg.MuxFaults
	fire := func(kind string, seq int) {
		srv.stats.FaultsInjected++
		if b := srv.cfg.Obs; b != nil {
			b.Fault(msc.sc.conn.ObsID(), kind, int64(seq))
		}
	}
	body := resp.Body
	if job.req.Method == "HEAD" {
		body = nil
	}

	if job.pushed {
		if mf.AbortPush <= 0 {
			return false
		}
		srv.pushSeq++
		if srv.pushSeq != mf.AbortPush {
			return false
		}
		// Push-then-abort: the promise went out, the body starts, and
		// then the server thinks better of it and resets its own push.
		msc.writePartial(job.st, resp, body[:min(mf.AbortPushBytes, len(body))])
		msc.sess.RstStreamCode(job.st, mux.ErrCodeInternal)
		fire("mux-push-abort", srv.pushSeq)
		return true
	}

	srv.muxSeq++
	seq := srv.muxSeq
	switch {
	case mf.StallSettings > 0 && seq == mf.StallSettings:
		// Emit a SETTINGS frame where the response should be, then
		// wedge the whole connection: nothing further is sent and
		// incoming frames (acks included) are never processed again.
		p := []byte{
			0, byte(mux.SettingInitialWindowSize),
			0, 0, byte(mux.DefaultInitialWindow >> 8), byte(mux.DefaultInitialWindow & 0xff)}
		msc.writeRaw(mux.AppendFrame(nil, mux.FrameSettings, 0, 0, p))
		fire("mux-stall", seq)
		msc.sc.stalled = true
		return true
	case sf.StallResponse > 0 && seq == sf.StallResponse:
		// Framed mapping of the HTTP/1.x stall: this one stream gets
		// headers and then silence forever, while every other stream
		// on the session keeps being served. Only the client's
		// per-stream watchdog clears it.
		msc.writePartial(job.st, resp, nil)
		fire("stall", seq)
		return true
	case mf.GarbageFrame > 0 && seq == mf.GarbageFrame:
		// A frame of unknown type on a stream nobody opened, ahead of
		// the real response: the client's strict validator must
		// reject it and close the session with GOAWAY.
		msc.writeRaw(mux.AppendFrame(nil, mux.FrameType(0xb), 0, 0xdead, []byte{0xba, 0xad}))
		fire("mux-garbage", seq)
		return false // the response itself is still served
	case mf.RstStream > 0 && seq == mf.RstStream:
		// Mid-stream RST: partial body, then RST_STREAM(INTERNAL_ERROR).
		msc.writePartial(job.st, resp, body[:min(mf.RstStreamBytes, len(body))])
		msc.sess.RstStreamCode(job.st, mux.ErrCodeInternal)
		fire("mux-rst", seq)
		return true
	case mf.TruncateFrame > 0 && seq == mf.TruncateFrame:
		// Mid-frame truncation: headers go out through the session,
		// then a hand-marshalled DATA frame is cut short of its own
		// length field and the connection fully closes — the client's
		// frame reader must flag the trailing bytes.
		msc.writeHeaders(job.st, resp, len(body))
		frame := mux.AppendFrame(nil, mux.FrameData, 0, job.st.ID, body[:min(mf.TruncateBytes, len(body))])
		msc.writeRaw(frame[:len(frame)-3])
		fire("mux-truncate", seq)
		msc.sc.closing = true
		msc.sc.conn.Close()
		return true
	case sf.TruncateResponse > 0 && seq == sf.TruncateResponse:
		// Stream-level truncation (the HTTP/1.x script on framing):
		// clean frames, but the stream never ends and the connection
		// fully closes under it.
		msc.writePartial(job.st, resp, body[:min(sf.TruncateBodyBytes, len(body))])
		fire("truncate", seq)
		msc.sc.closing = true
		msc.sc.conn.Close()
		return true
	case sf.AbortResponse > 0 && seq == sf.AbortResponse:
		fire("abort", seq)
		msc.sc.closing = true
		msc.sc.conn.Abort()
		return true
	}
	return false
}

// writeRaw puts hand-marshalled (deliberately broken) frame bytes on
// the wire behind the session's back, with the same BytesOut
// accounting as the session's Send hook.
func (msc *muxServerConn) writeRaw(b []byte) {
	msc.sc.srv.stats.BytesOut += int64(len(b))
	msc.sc.conn.Write(b)
}

// writePartial serves headers and a body prefix without ever ending
// the stream — the shared shape of the truncation, stall, and
// mid-stream-reset faults.
func (msc *muxServerConn) writePartial(st *mux.Stream, resp *httpmsg.Response, prefix []byte) {
	msc.writeHeaders(st, resp, len(resp.Body))
	if len(prefix) > 0 {
		msc.sess.WriteData(st, prefix, false)
	}
}

// push promises one inline object on the parent stream and queues its
// response at image priority (the page's own DATA goes first).
func (msc *muxServerConn) push(parent *mux.Stream, path string) {
	st := msc.sess.PushPromise(parent, []mux.Field{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: path},
	})
	if st == nil {
		return
	}
	st.Priority = 1
	msc.sc.srv.stats.PushedStreams++
	msc.pending = append(msc.pending, muxJob{
		st:     st,
		req:    &httpmsg.Request{Method: "GET", Target: path, Proto: httpmsg.Proto11},
		pushed: true,
	})
}

// writeResponse lowers an HTTP/1.x response onto the stream.
func (msc *muxServerConn) writeResponse(st *mux.Stream, method string, resp *httpmsg.Response) {
	body := resp.Body
	if method == "HEAD" {
		body = nil
	}
	if len(body) == 0 {
		msc.sess.WriteHeaders(st, responseFields(resp, 0), true)
		return
	}
	msc.sess.WriteHeaders(st, responseFields(resp, len(body)), false)
	msc.sess.WriteData(st, body, true)
}

// writeHeaders sends only the response's header block, stream left
// open — the fault paths use it to start responses they never finish.
func (msc *muxServerConn) writeHeaders(st *mux.Stream, resp *httpmsg.Response, bodyLen int) {
	msc.sess.WriteHeaders(st, responseFields(resp, bodyLen), false)
}

// responseFields lowers response headers into mux header fields;
// bodyLen > 0 advertises a content-length (possibly more than will
// ever be sent, under the truncation faults).
func responseFields(resp *httpmsg.Response, bodyLen int) []mux.Field {
	fields := make([]mux.Field, 0, 8)
	fields = append(fields, mux.Field{Name: ":status", Value: strconv.Itoa(resp.StatusCode)})
	for _, f := range resp.Header.Fields() {
		name := strings.ToLower(f.Name)
		if name == "connection" {
			continue // the framing layer owns connection management
		}
		fields = append(fields, mux.Field{Name: name, Value: f.Value})
	}
	if bodyLen > 0 {
		fields = append(fields, mux.Field{Name: "content-length", Value: strconv.Itoa(bodyLen)})
	}
	return fields
}

// onPeerClose drains outstanding jobs, then half-closes, mirroring the
// HTTP/1.x connection's graceful shutdown.
func (msc *muxServerConn) onPeerClose() {
	msc.maybeClose()
}

func (msc *muxServerConn) maybeClose() {
	if msc.processing || len(msc.pending) > 0 {
		return
	}
	if msc.sc.conn.State() == tcpsim.StateCloseWait {
		msc.sc.close()
	}
}

// burstRecords packs a page and its inline objects for the burst
// (aggregated single-response) mode; nil when the target is not an
// HTML page.
func (s *Server) burstRecords(target string) []mux.BurstRecord {
	obj, ok := s.site.Object(target)
	if !ok || !strings.Contains(obj.ContentType, "text/html") {
		return nil
	}
	recs := []mux.BurstRecord{{
		Path: target, ContentType: obj.ContentType,
		ETag: obj.ETag, LastModified: obj.LastModified, Body: obj.Body,
	}}
	for _, path := range s.site.InlineLinks(target) {
		o, ok := s.site.Object(path)
		if !ok {
			continue
		}
		recs = append(recs, mux.BurstRecord{
			Path: path, ContentType: o.ContentType,
			ETag: o.ETag, LastModified: o.LastModified, Body: o.Body,
		})
	}
	return recs
}
