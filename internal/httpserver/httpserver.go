// Package httpserver implements the simulated HTTP/1.0+1.1 origin server
// serving the Microscape site, with two behavioural profiles modelled on
// the paper's servers:
//
//   - Jigsaw 1.06: verbose response headers, higher per-request CPU cost
//     (it ran interpreted Java);
//   - Apache 1.2b10: lean headers, lower CPU cost.
//
// The server implements the behaviours the paper established as necessary
// for HTTP/1.1 performance: response buffering that flushes when the
// buffer fills, when no further pipelined requests are pending, or before
// going idle; graceful independent half-close (with a deliberate
// naive-close mode to reproduce the pipeline-reset failure); an optional
// requests-per-connection limit (Apache 1.2b2's 5); conditional GET with
// entity tags and date validators; HEAD; byte ranges with If-Range; and
// precomputed deflate content-coding for the HTML page.
package httpserver

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/flatez"
	"repro/internal/httpmsg"
	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/webgen"
)

// Profile selects a server personality.
type Profile int

// Server profiles.
const (
	ProfileJigsaw Profile = iota
	ProfileApache
)

// String names the profile as in the paper's tables.
func (p Profile) String() string {
	if p == ProfileApache {
		return "Apache"
	}
	return "Jigsaw"
}

// Config tunes server behaviour. Zero values select the profile defaults
// (see applyProfile).
type Config struct {
	Profile Profile
	// MaxRequestsPerConn closes the connection after N responses
	// (0 = unlimited). Apache 1.2b2 shipped with 5.
	MaxRequestsPerConn int
	// NaiveClose makes the per-connection close tear down both TCP
	// halves at once, reproducing the paper's reset scenario. The default
	// is the independent half-close the paper prescribes.
	NaiveClose bool
	// ResponseBufferSize is the application output buffer. The buffer is
	// flushed when full, when no more pipelined requests are pending, or
	// before the connection goes idle.
	ResponseBufferSize int
	// PerRequestCPU and PerConnCPU are processing costs charged to the
	// host's single CPU.
	PerRequestCPU, PerConnCPU time.Duration
	// MuxFIFO switches accepted mux sessions' DATA pumps to strict
	// first-come-first-served stream order instead of (priority, id)
	// scheduling — the stream-priority ablation. Pushed responses then
	// no longer yield to requested page data.
	MuxFIFO bool
	// NoDelay disables Nagle on accepted connections (the paper's tuned
	// configuration).
	NoDelay bool
	// EnableDeflate serves the precomputed deflate coding of text/html
	// resources to clients that send Accept-Encoding: deflate.
	EnableDeflate bool
	// TCP overrides connection options other than NoDelay.
	TCP tcpsim.Options
	// Obs, if non-nil, receives request-parsed and response-queued
	// events for every request the server handles.
	Obs *obs.Bus
	// Faults scripts deterministic server-side failures (early close,
	// truncation, abort, stall). The zero value injects nothing and
	// leaves every serving path untouched. On a framed (mux)
	// connection the same scripts map onto framing-level misbehaviour:
	// early close becomes GOAWAY+close, truncation ends a stream early
	// and closes, abort resets the transport, and stall wedges one
	// stream (headers sent, body never) while the rest of the session
	// keeps serving.
	Faults faults.ServerFaults
	// MuxFaults scripts failures specific to framed connections
	// (mid-stream RST, mid-frame truncation, garbage frames,
	// push-then-abort, settings stall). Inert on HTTP/1.x connections.
	MuxFaults faults.MuxFaults
}

func (c Config) applyProfile() Config {
	switch c.Profile {
	case ProfileApache:
		if c.PerRequestCPU == 0 {
			c.PerRequestCPU = 5 * time.Millisecond
		}
		if c.PerConnCPU == 0 {
			c.PerConnCPU = 5 * time.Millisecond
		}
	default:
		if c.PerRequestCPU == 0 {
			c.PerRequestCPU = 10 * time.Millisecond
		}
		if c.PerConnCPU == 0 {
			c.PerConnCPU = 9 * time.Millisecond
		}
	}
	if c.ResponseBufferSize == 0 {
		c.ResponseBufferSize = 4096
	}
	// The early-close fault rides the existing per-connection request
	// limit, which already implements both close styles.
	if c.Faults.CloseAfterResponses > 0 {
		c.MaxRequestsPerConn = c.Faults.CloseAfterResponses
		c.NaiveClose = c.Faults.NaiveClose
	}
	return c
}

// Stats counts server-side activity.
type Stats struct {
	Connections    int
	Requests       int
	Responses      int
	NotModified    int
	PartialContent int
	DeflateServed  int
	BytesOut       int64
	EarlyCloses    int
	ProtocolErrors int
	// Mux-mode counters: streams the server pushed unasked, and
	// transitions into an exhausted send window (stream or connection)
	// while pumping response DATA.
	PushedStreams     int
	FlowControlStalls int
	// FaultsInjected counts scripted faults that actually fired:
	// one-shot response faults (truncation, abort, stall) and closes
	// forced by a scripted CloseAfterResponses limit.
	FaultsInjected int
}

// serverDate is the fixed Date header both profiles stamp on every
// response (the simulation's wall clock never advances past one page
// view, as in the paper's isolated testbed).
const serverDate = "Mon, 07 Jul 1997 10:00:00 GMT"

// Server serves one site on one host and port.
type Server struct {
	cfg     Config
	site    *webgen.Site
	cpu     *sim.CPU
	stats   Stats
	deflate map[string][]byte // precomputed deflate bodies by path
	date    string
	// faultSeq numbers responses server-wide (1-based) so one-shot
	// scripted faults fire exactly once even across retried connections.
	faultSeq int
	// muxSeq and pushSeq are the framed-path equivalents: muxSeq
	// numbers client-requested framed responses, pushSeq numbers
	// promised pushes. Kept separate from faultSeq so the two serving
	// paths cannot perturb each other's one-shot ordinals.
	muxSeq  int
	pushSeq int
}

// New creates a server and begins listening on host:port.
func New(s *sim.Simulator, host *tcpsim.Host, port int, site *webgen.Site, cfg Config, rng *sim.Rand, cpuJitter float64) *Server {
	srv := &Server{
		cfg:     cfg.applyProfile(),
		site:    site,
		cpu:     sim.NewCPU(s, rng, cpuJitter),
		deflate: make(map[string][]byte),
		date:    serverDate,
	}
	if srv.cfg.EnableDeflate {
		// "the server does not perform on-the-fly compression but sends
		// out a pre-computed deflated version of the Microscape HTML
		// page" — only text/html is precompressed; images are already
		// compressed by their format.
		for _, path := range site.Paths() {
			obj, _ := site.Object(path)
			if obj.ContentType == "text/html" {
				srv.deflate[path] = flatez.Compress(obj.Body)
			}
		}
	}
	tcpOpts := srv.cfg.TCP
	tcpOpts.NoDelay = srv.cfg.NoDelay
	host.Listen(port, tcpOpts, func(c *tcpsim.Conn) tcpsim.Handler {
		return newServerConn(srv, c)
	})
	return srv
}

// Stats returns a copy of the server counters.
func (s *Server) Stats() Stats { return s.stats }

// CPUTime returns the total simulated CPU work the server has consumed.
func (s *Server) CPUTime() sim.Duration { return s.cpu.TotalWork() }

// serverConn is the per-connection state machine.
type serverConn struct {
	srv    *Server
	conn   *tcpsim.Conn
	parser httpmsg.RequestParser

	pending    []*httpmsg.Request // parsed, not yet processed
	processing bool
	served     int
	closing    bool
	// stalled wedges the connection after a scripted stall fault: no
	// further bytes are ever sent and no close is initiated.
	stalled bool

	// Mux sniffing: a connection whose first bytes are the mux
	// connection preface is handed to a framed session instead of the
	// HTTP/1.x parser. preBuf holds bytes while the preface is still
	// ambiguous (it can arrive split).
	mux        *muxServerConn
	muxDecided bool
	preBuf     []byte

	outBuf []byte
}

func newServerConn(srv *Server, c *tcpsim.Conn) tcpsim.Handler {
	sc := &serverConn{srv: srv, conn: c}
	srv.stats.Connections++
	return &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) {
			// Per-connection setup cost (accept, fork/thread, logging).
			srv.cpu.Run(srv.cfg.PerConnCPU, func() {})
		},
		Data:      sc.onData,
		PeerClose: sc.onPeerClose,
		Error:     func(c *tcpsim.Conn, err error) {},
		Close:     func(c *tcpsim.Conn) {},
	}
}

func (sc *serverConn) onData(c *tcpsim.Conn, data []byte) {
	if sc.closing || sc.stalled {
		return
	}
	if sc.mux != nil {
		sc.mux.sess.Feed(data)
		return
	}
	if !sc.muxDecided {
		if data = sc.sniffPreface(data); data == nil {
			return
		}
	}
	reqs, err := sc.parser.Feed(data)
	if err != nil {
		sc.srv.stats.ProtocolErrors++
		resp := httpmsg.NewResponse(httpmsg.Proto11, 400)
		sc.conn.Write(resp.Marshal())
		sc.close()
		return
	}
	if b := sc.srv.cfg.Obs; b != nil {
		for _, req := range reqs {
			b.ServerRecv(sc.conn.ObsID(), req.Target)
		}
	}
	sc.pending = append(sc.pending, reqs...)
	sc.processNext()
}

// sniffPreface decides whether the connection speaks mux framing. It
// returns the bytes the HTTP/1.x parser should consume (nil while
// undecided or once the mux session has taken over).
func (sc *serverConn) sniffPreface(data []byte) []byte {
	if len(sc.preBuf) == 0 && (len(data) == 0 || data[0] != 'P') {
		sc.muxDecided = true // no HTTP method starts with 'P' here
		return data
	}
	sc.preBuf = append(sc.preBuf, data...)
	pre := []byte(mux.Preface)
	n := min(len(sc.preBuf), len(pre))
	if !bytes.Equal(sc.preBuf[:n], pre[:n]) {
		// Not the preface after all: replay everything through HTTP.
		sc.muxDecided = true
		data = sc.preBuf
		sc.preBuf = nil
		return data
	}
	if len(sc.preBuf) >= len(pre) {
		sc.muxDecided = true
		buf := sc.preBuf
		sc.preBuf = nil
		sc.startMux()
		sc.mux.sess.Feed(buf) // the session strips the preface itself
	}
	return nil
}

func (sc *serverConn) onPeerClose(c *tcpsim.Conn) {
	if sc.stalled {
		return // the stall fault never answers, never closes
	}
	if sc.mux != nil {
		sc.mux.onPeerClose()
		return
	}
	// Client finished sending. Once all pending work drains, close our
	// half too.
	if !sc.processing && len(sc.pending) == 0 {
		sc.flush()
		sc.close()
	}
}

// processNext serves queued requests one at a time through the host CPU.
func (sc *serverConn) processNext() {
	if sc.processing || sc.closing || sc.stalled || len(sc.pending) == 0 {
		return
	}
	req := sc.pending[0]
	sc.pending = sc.pending[1:]
	sc.processing = true
	sc.srv.stats.Requests++
	sc.srv.cpu.Run(sc.srv.cfg.PerRequestCPU, func() {
		sc.processing = false
		if sc.conn.State() == tcpsim.StateClosed {
			return
		}
		sc.serve(req)
	})
}

func (sc *serverConn) serve(req *httpmsg.Request) {
	resp := sc.srv.respond(req)
	sc.srv.stats.Responses++
	if b := sc.srv.cfg.Obs; b != nil {
		b.ServerSend(sc.conn.ObsID(), req.Target, resp.StatusCode, len(resp.Body))
	}
	if sc.srv.cfg.Faults.Any() && sc.injectFault(req, resp) {
		return
	}

	lastOnConn := false
	if sc.srv.cfg.MaxRequestsPerConn > 0 {
		sc.served++
		if sc.served >= sc.srv.cfg.MaxRequestsPerConn {
			lastOnConn = true
		}
	}
	clientClose := req.WantsClose()
	if (lastOnConn || clientClose) && !sc.srv.cfg.NaiveClose {
		resp.Header.Add("Connection", "close")
	}

	body := resp.MarshalFor(req.Method)
	sc.srv.stats.BytesOut += int64(len(body))
	sc.outBuf = append(sc.outBuf, body...)
	// Buffering policy from the paper: flush when the buffer is full or
	// when there are no more requests coming in on the connection.
	if len(sc.outBuf) >= sc.srv.cfg.ResponseBufferSize || (len(sc.pending) == 0 && sc.parser.Buffered() == 0) {
		sc.flush()
	}

	if lastOnConn || clientClose {
		sc.srv.stats.EarlyCloses++
		if lastOnConn && sc.srv.cfg.Faults.CloseAfterResponses > 0 {
			sc.srv.stats.FaultsInjected++
			if b := sc.srv.cfg.Obs; b != nil {
				b.Fault(sc.conn.ObsID(), "early-close", int64(sc.served))
			}
		}
		sc.flush()
		sc.close()
		return
	}
	sc.processNext()
	// If the client already half-closed and everything is served, finish
	// our half too.
	if !sc.processing && len(sc.pending) == 0 && sc.conn.State() == tcpsim.StateCloseWait {
		sc.flush()
		sc.close()
	}
}

// injectFault fires the scripted one-shot faults against this response.
// It reports whether a fault consumed the response, in which case the
// normal serving path must not continue. Response ordinals are counted
// server-wide so a fault fires exactly once per run.
func (sc *serverConn) injectFault(req *httpmsg.Request, resp *httpmsg.Response) bool {
	f := sc.srv.cfg.Faults
	sc.srv.faultSeq++
	seq := sc.srv.faultSeq
	fire := func(kind string, body []byte) {
		sc.flush()
		if len(body) > 0 {
			sc.srv.stats.BytesOut += int64(len(body))
			sc.conn.Write(body)
		}
		sc.srv.stats.FaultsInjected++
		if b := sc.srv.cfg.Obs; b != nil {
			b.Fault(sc.conn.ObsID(), kind, int64(seq))
		}
	}
	switch {
	case f.StallResponse > 0 && seq == f.StallResponse:
		// Headers only, then silence forever on this connection: the
		// failure mode only a client timeout can clear.
		body := resp.MarshalFor(req.Method)
		if i := bytes.Index(body, []byte("\r\n\r\n")); i >= 0 {
			body = body[:i+4]
		}
		fire("stall", body)
		sc.stalled = true
		return true
	case f.TruncateResponse > 0 && seq == f.TruncateResponse:
		// Partial body under a full Content-Length, then a full close:
		// the client detects the truncation at EOF.
		body := resp.MarshalFor(req.Method)
		if i := bytes.Index(body, []byte("\r\n\r\n")); i >= 0 && i+4+f.TruncateBodyBytes < len(body) {
			body = body[:i+4+f.TruncateBodyBytes]
		}
		fire("truncate", body)
		sc.closing = true
		sc.conn.Close()
		return true
	case f.AbortResponse > 0 && seq == f.AbortResponse:
		// Reset the connection with pipelined requests outstanding.
		fire("abort", nil)
		sc.closing = true
		sc.conn.Abort()
		return true
	}
	return false
}

// respond builds the response for one request; the caller marshals it
// after adding any connection-management headers.
func (s *Server) respond(req *httpmsg.Request) *httpmsg.Response {
	proto := httpmsg.Proto11
	if !req.IsHTTP11() {
		proto = httpmsg.Proto10
	}
	if req.Method != "GET" && req.Method != "HEAD" {
		return s.finishHeaders(httpmsg.NewResponse(proto, 501))
	}
	obj, ok := s.site.Object(req.Target)
	if !ok {
		resp := httpmsg.NewResponse(proto, 404)
		resp.Body = []byte("<html><body>404 Not Found</body></html>")
		resp.Header.Add("Content-Type", "text/html")
		return s.finishHeaders(resp)
	}

	// Conditional GET: entity tags take precedence over date validators.
	if inm := req.Header.Get("If-None-Match"); inm != "" {
		if httpmsg.ETagMatch(inm, obj.ETag) {
			resp := httpmsg.NewResponse(proto, 304)
			resp.Header.Add("ETag", obj.ETag)
			s.stats.NotModified++
			return s.finishHeaders(resp)
		}
	} else if ims := req.Header.Get("If-Modified-Since"); ims != "" {
		if !httpmsg.ModifiedSince(obj.LastModified, ims) {
			resp := httpmsg.NewResponse(proto, 304)
			s.stats.NotModified++
			return s.finishHeaders(resp)
		}
	}

	// Burst aggregation: a page request carrying Accept-Burst gets one
	// 200 whose body packs the page and every inline object as records.
	// It validates like the page itself (the conditional-GET paths above
	// already answered 304 when the page was fresh).
	if httpmsg.TokenListContains(req.Header.Get(mux.BurstRequestHeader), mux.BurstRequestValue) {
		if recs := s.burstRecords(req.Target); recs != nil {
			resp := httpmsg.NewResponse(proto, 200)
			resp.Header.Add("Content-Type", mux.BurstContentType)
			resp.Body = mux.EncodeBurst(recs)
			resp.Header.Add("ETag", obj.ETag)
			resp.Header.Add("Last-Modified", obj.LastModified)
			return s.finishHeaders(resp)
		}
	}

	body := obj.Body
	resp := httpmsg.NewResponse(proto, 200)
	resp.Header.Add("Content-Type", obj.ContentType)

	// Transport compression: precomputed deflate for HTML.
	if s.cfg.EnableDeflate {
		if comp, ok := s.deflate[req.Target]; ok && httpmsg.TokenListContains(req.Header.Get("Accept-Encoding"), "deflate") {
			body = comp
			resp.Header.Add("Content-Encoding", "deflate")
			s.stats.DeflateServed++
		}
	}

	// Byte ranges ("poor man's multiplexing"): honoured when If-Range
	// matches or is absent.
	if rangeHdr := req.Header.Get("Range"); rangeHdr != "" && req.IsHTTP11() {
		ifRange := req.Header.Get("If-Range")
		if ifRange == "" || ifRange == obj.ETag {
			if lo, hi, ok := parseRange(rangeHdr, len(body)); ok {
				resp.StatusCode = 206
				resp.Reason = httpmsg.StatusText(206)
				resp.Header.Add("Content-Range", fmt.Sprintf("bytes %d-%d/%d", lo, hi, len(body)))
				body = body[lo : hi+1]
				s.stats.PartialContent++
			}
		}
	}

	resp.Body = body
	resp.Header.Add("ETag", obj.ETag)
	resp.Header.Add("Last-Modified", obj.LastModified)
	return s.finishHeaders(resp)
}

// CanonicalResponse builds the exact 200 response the profile's server
// sends for an unconditional identity-coded GET of obj — status line,
// validators, and standing headers included. It exists so a shared cache
// can be warm-primed "as if" an earlier client had already pulled the
// site through it, without simulating that earlier fetch.
func CanonicalResponse(profile Profile, obj *webgen.Object) *httpmsg.Response {
	resp := httpmsg.NewResponse(httpmsg.Proto11, 200)
	resp.Header.Add("Content-Type", obj.ContentType)
	resp.Body = obj.Body
	resp.Header.Add("ETag", obj.ETag)
	resp.Header.Add("Last-Modified", obj.LastModified)
	srv := &Server{cfg: Config{Profile: profile}, date: serverDate}
	return srv.finishHeaders(resp)
}

// finishHeaders adds the profile's standing headers.
func (s *Server) finishHeaders(resp *httpmsg.Response) *httpmsg.Response {
	h := &resp.Header
	switch s.cfg.Profile {
	case ProfileApache:
		h.Add("Date", s.date)
		h.Add("Server", "Apache/1.2b10")
	default:
		// Jigsaw's responses carried noticeably more header bytes; the
		// difference shows in the paper's revalidation byte counts
		// (17694 for Jigsaw vs 14009 for Apache).
		h.Add("Date", s.date)
		h.Add("Server", "Jigsaw/1.06")
		h.Add("MIME-Version", "1.0")
		h.Add("Cache-Control", "max-age=86400")
		h.Add("Accept-Ranges", "bytes")
	}
	return resp
}

// parseRange parses a single "bytes=lo-hi" range.
func parseRange(h string, size int) (lo, hi int, ok bool) {
	h = strings.TrimSpace(h)
	if !strings.HasPrefix(h, "bytes=") {
		return 0, 0, false
	}
	spec := strings.TrimPrefix(h, "bytes=")
	if strings.Contains(spec, ",") {
		return 0, 0, false // multipart ranges unsupported
	}
	dash := strings.IndexByte(spec, '-')
	if dash < 0 {
		return 0, 0, false
	}
	loStr, hiStr := spec[:dash], spec[dash+1:]
	if loStr == "" {
		// suffix range: last N bytes
		n, err := strconv.Atoi(hiStr)
		if err != nil || n <= 0 {
			return 0, 0, false
		}
		if n > size {
			n = size
		}
		return size - n, size - 1, size > 0
	}
	loV, err := strconv.Atoi(loStr)
	if err != nil || loV < 0 || loV >= size {
		return 0, 0, false
	}
	hiV := size - 1
	if hiStr != "" {
		hiV, err = strconv.Atoi(hiStr)
		if err != nil || hiV < loV {
			return 0, 0, false
		}
		if hiV >= size {
			hiV = size - 1
		}
	}
	return loV, hiV, true
}

// flush writes the buffered responses to the connection.
func (sc *serverConn) flush() {
	if len(sc.outBuf) == 0 {
		return
	}
	sc.conn.Write(sc.outBuf)
	sc.outBuf = nil
}

// close ends the connection: gracefully (half-close, drain) by default,
// or naively (both halves) in NaiveClose mode.
func (sc *serverConn) close() {
	if sc.closing {
		return
	}
	sc.closing = true
	sc.flush()
	if sc.srv.cfg.NaiveClose {
		sc.conn.Close()
		return
	}
	sc.conn.CloseWrite()
}
