package httpserver

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flatez"
	"repro/internal/httpmsg"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/webgen"
)

var (
	tinyOnce sync.Once
	tinyVal  *webgen.Site
	tinyErr  error
)

// tinySite builds a small deterministic site once for all tests.
func tinySite(t *testing.T) *webgen.Site {
	t.Helper()
	tinyOnce.Do(func() {
		tinyVal, tinyErr = webgen.Microscape(webgen.Options{Seed: 5, HTMLBytes: 4000})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyVal
}

// harness wires one client connection to a server and provides a raw
// request/response exchange helper.
type harness struct {
	t      *testing.T
	sim    *sim.Simulator
	client *tcpsim.Host
	server *Server
	site   *webgen.Site
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	s := sim.New()
	s.SetEventLimit(10_000_000)
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	serverHost := n.AddHost("server")
	link := netem.Config{PropagationDelay: time.Millisecond}
	n.ConnectHosts(client, serverHost, netem.NewAsymPath(s, "t", link, link))
	site := tinySite(t)
	srv := New(s, serverHost, 80, site, cfg, nil, 0)
	return &harness{t: t, sim: s, client: client, server: srv, site: site}
}

// exchange sends raw request bytes on a fresh connection and returns the
// parsed responses (methods names the expected response framings).
func (h *harness) exchange(raw []byte, methods ...string) ([]*httpmsg.Response, error) {
	h.t.Helper()
	var parser httpmsg.ResponseParser
	for _, m := range methods {
		parser.PushExpectation(m)
	}
	var out []*httpmsg.Response
	var connErr error
	h.client.Dial("server", 80, tcpsim.Options{NoDelay: true}, &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) { c.Write(raw) },
		Data: func(c *tcpsim.Conn, d []byte) {
			resps, err := parser.Feed(d)
			if err != nil {
				connErr = err
				c.Abort()
				return
			}
			out = append(out, resps...)
			if len(out) == len(methods) {
				c.CloseWrite()
			}
		},
		PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() },
		Error:     func(c *tcpsim.Conn, err error) { connErr = err },
	})
	h.sim.Run()
	return out, connErr
}

func get(target string, extra ...string) []byte {
	req := &httpmsg.Request{Method: "GET", Target: target, Proto: httpmsg.Proto11}
	req.Header.Add("Host", "server")
	for i := 0; i+1 < len(extra); i += 2 {
		req.Header.Add(extra[i], extra[i+1])
	}
	return req.Marshal()
}

func TestServesPage(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	resps, err := h.exchange(get("/"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 || resps[0].StatusCode != 200 {
		t.Fatalf("got %+v", resps)
	}
	if !bytes.Equal(resps[0].Body, h.site.HTML.Body) {
		t.Fatal("page body mismatch")
	}
	if ct := resps[0].Header.Get("Content-Type"); ct != "text/html" {
		t.Fatalf("content type %q", ct)
	}
	if resps[0].Header.Get("ETag") == "" || resps[0].Header.Get("Last-Modified") == "" {
		t.Fatal("missing validators")
	}
}

func Test404(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	resps, err := h.exchange(get("/nope.gif"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 404 {
		t.Fatalf("status = %d, want 404", resps[0].StatusCode)
	}
}

func Test501ForUnknownMethod(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	req := &httpmsg.Request{Method: "PUT", Target: "/", Proto: httpmsg.Proto11}
	resps, err := h.exchange(req.Marshal(), "PUT")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 501 {
		t.Fatalf("status = %d, want 501", resps[0].StatusCode)
	}
}

func TestConditionalGETByETag(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	obj, _ := h.site.Object("/")
	resps, err := h.exchange(get("/", "If-None-Match", obj.ETag), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 304 {
		t.Fatalf("status = %d, want 304", resps[0].StatusCode)
	}
	if len(resps[0].Body) != 0 {
		t.Fatal("304 carried a body")
	}
	// Mismatched tag: full response.
	resps, err = h.exchange(get("/", "If-None-Match", `"different"`), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 200 {
		t.Fatalf("status = %d, want 200 for stale tag", resps[0].StatusCode)
	}
}

func TestConditionalGETByDate(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	obj, _ := h.site.Object("/")
	resps, err := h.exchange(get("/", "If-Modified-Since", obj.LastModified), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 304 {
		t.Fatalf("status = %d, want 304", resps[0].StatusCode)
	}
}

func TestHEAD(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	req := &httpmsg.Request{Method: "HEAD", Target: "/", Proto: httpmsg.Proto11}
	resps, err := h.exchange(req.Marshal(), "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	r := resps[0]
	if r.StatusCode != 200 || len(r.Body) != 0 {
		t.Fatalf("HEAD: status %d, body %d bytes", r.StatusCode, len(r.Body))
	}
	if r.Header.Get("Content-Length") == "" {
		t.Fatal("HEAD lost entity length")
	}
}

func TestRangeRequests(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	obj, _ := h.site.Object("/")
	resps, err := h.exchange(get("/", "Range", "bytes=0-99", "If-Range", obj.ETag), "GET")
	if err != nil {
		t.Fatal(err)
	}
	r := resps[0]
	if r.StatusCode != 206 {
		t.Fatalf("status = %d, want 206", r.StatusCode)
	}
	if !bytes.Equal(r.Body, obj.Body[:100]) {
		t.Fatal("range body mismatch")
	}
	if cr := r.Header.Get("Content-Range"); !strings.HasPrefix(cr, "bytes 0-99/") {
		t.Fatalf("Content-Range %q", cr)
	}
	// Stale If-Range falls back to a full 200.
	resps, err = h.exchange(get("/", "Range", "bytes=0-99", "If-Range", `"stale"`), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 200 {
		t.Fatalf("stale If-Range: status %d, want 200", resps[0].StatusCode)
	}
	// Suffix range.
	resps, err = h.exchange(get("/", "Range", "bytes=-10"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 206 || !bytes.Equal(resps[0].Body, obj.Body[len(obj.Body)-10:]) {
		t.Fatal("suffix range mishandled")
	}
	// Nonsense range ignored.
	resps, err = h.exchange(get("/", "Range", "bytes=banana"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].StatusCode != 200 {
		t.Fatalf("bad range: status %d, want 200", resps[0].StatusCode)
	}
}

func TestDeflateNegotiation(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true, EnableDeflate: true})
	resps, err := h.exchange(get("/", "Accept-Encoding", "deflate"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	r := resps[0]
	if r.Header.Get("Content-Encoding") != "deflate" {
		t.Fatal("deflate not negotiated")
	}
	decoded, err := flatez.Decompress(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, h.site.HTML.Body) {
		t.Fatal("deflated body mismatch")
	}
	// Without Accept-Encoding: identity.
	resps, err = h.exchange(get("/"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Header.Get("Content-Encoding") != "" {
		t.Fatal("deflate served without negotiation")
	}
	// Images are never transport-compressed (already GIF-compressed).
	imgPath := h.site.Paths()[1]
	resps, err = h.exchange(get(imgPath, "Accept-Encoding", "deflate"), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Header.Get("Content-Encoding") != "" {
		t.Fatal("image transport-compressed")
	}
}

func TestJigsawHeadersMoreVerbose(t *testing.T) {
	obj304 := func(profile Profile) int {
		h := newHarness(t, Config{Profile: profile, NoDelay: true})
		obj, _ := h.site.Object("/")
		resps, err := h.exchange(get("/", "If-None-Match", obj.ETag), "GET")
		if err != nil {
			t.Fatal(err)
		}
		return len(resps[0].Marshal())
	}
	jig, apa := obj304(ProfileJigsaw), obj304(ProfileApache)
	if jig <= apa {
		t.Fatalf("Jigsaw 304 (%dB) should exceed Apache's (%dB)", jig, apa)
	}
	if apa < 100 || apa > 200 {
		t.Errorf("Apache 304 = %dB, want ≈135", apa)
	}
	if jig < 180 || jig > 300 {
		t.Errorf("Jigsaw 304 = %dB, want ≈220", jig)
	}
}

func TestPipelinedRequestsOneConnection(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	paths := h.site.Paths()[:5]
	var raw []byte
	var methods []string
	for _, p := range paths {
		raw = append(raw, get(p)...)
		methods = append(methods, "GET")
	}
	resps, err := h.exchange(raw, methods...)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 5 {
		t.Fatalf("got %d responses, want 5", len(resps))
	}
	for i, r := range resps {
		obj, _ := h.site.Object(paths[i])
		if !bytes.Equal(r.Body, obj.Body) {
			t.Fatalf("response %d body mismatch (ordering?)", i)
		}
	}
	if h.server.Stats().Connections != 1 {
		t.Fatalf("connections = %d, want 1", h.server.Stats().Connections)
	}
}

func TestMaxRequestsPerConnAddsConnectionClose(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true, MaxRequestsPerConn: 2})
	raw := append(get("/"), get("/")...)
	resps, err := h.exchange(raw, "GET", "GET")
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("got %d responses", len(resps))
	}
	if !httpmsg.TokenListContains(resps[1].Header.Get("Connection"), "close") {
		t.Fatal("final response missing Connection: close")
	}
}

func TestHTTP10RequestsCloseConnection(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	req := &httpmsg.Request{Method: "GET", Target: "/", Proto: httpmsg.Proto10}
	resps, err := h.exchange(req.Marshal(), "GET")
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Proto != httpmsg.Proto10 {
		t.Fatalf("response proto %q", resps[0].Proto)
	}
	if h.server.Stats().EarlyCloses != 1 {
		t.Fatalf("server did not close after HTTP/1.0 response")
	}
}

func TestMalformedRequestGets400(t *testing.T) {
	h := newHarness(t, Config{Profile: ProfileApache, NoDelay: true})
	resps, _ := h.exchange([]byte("GIBBERISH\r\n\r\n"), "GET")
	if len(resps) != 1 || resps[0].StatusCode != 400 {
		t.Fatalf("got %+v, want a 400", resps)
	}
	if h.server.Stats().ProtocolErrors != 1 {
		t.Fatal("protocol error not counted")
	}
}

func TestResponseBufferingCoalesces(t *testing.T) {
	// With pipelined 304s and a 4KB response buffer, many validations
	// travel per segment: far fewer server data segments than responses.
	s := sim.New()
	n := tcpsim.NewNetwork(s)
	client := n.AddHost("client")
	serverHost := n.AddHost("server")
	link := netem.Config{PropagationDelay: 5 * time.Millisecond, BitsPerSecond: 10_000_000, MTU: 1500}
	n.ConnectHosts(client, serverHost, netem.NewAsymPath(s, "t", link, link))
	site := tinySite(t)
	New(s, serverHost, 80, site, Config{Profile: ProfileApache, NoDelay: true}, nil, 0)

	dataSegs := 0
	n.PacketHook = func(ev tcpsim.PacketEvent) {
		if ev.Seg.From.Host == "server" && len(ev.Seg.Payload) > 0 {
			dataSegs++
		}
	}
	var raw []byte
	var methods []string
	responses := 0
	for _, p := range site.Paths() {
		obj, _ := site.Object(p)
		raw = append(raw, get(p, "If-None-Match", obj.ETag)...)
		methods = append(methods, "GET")
	}
	var parser httpmsg.ResponseParser
	for _, m := range methods {
		parser.PushExpectation(m)
	}
	client.Dial("server", 80, tcpsim.Options{NoDelay: true}, &tcpsim.Callbacks{
		Connect: func(c *tcpsim.Conn) { c.Write(raw) },
		Data: func(c *tcpsim.Conn, d []byte) {
			out, err := parser.Feed(d)
			if err != nil {
				t.Errorf("parse: %v", err)
				c.Abort()
				return
			}
			responses += len(out)
			if responses == len(methods) {
				c.CloseWrite()
			}
		},
		PeerClose: func(c *tcpsim.Conn) { c.CloseWrite() },
	})
	s.Run()
	if responses != len(methods) {
		t.Fatalf("got %d responses, want %d", responses, len(methods))
	}
	if dataSegs >= responses/2 {
		t.Fatalf("server sent %d data segments for %d responses; buffering broken", dataSegs, responses)
	}
}
