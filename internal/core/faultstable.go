package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// FaultRow is one cell of the fault-injection experiment: one protocol
// mode under one fault profile in one environment, with the recovery
// counters alongside the paper's packets/seconds quantities.
type FaultRow struct {
	Env   string
	Fault string
	Mode  string

	Packets float64
	Seconds float64

	// Recovery accounting, averaged over the sweep population.
	Errors    float64
	Retried   float64
	Timeouts  float64
	Recovered float64
	Failed    float64
	WastedKB  float64
	Fallbacks float64
}

// faultProfiles are the injected profiles the experiment sweeps, in
// table order.
var faultProfiles = []faults.Profile{
	faults.None,
	faults.EarlyClose,
	faults.BurstLoss,
	faults.Flap,
	faults.Stall,
}

// FaultsTable runs the fault-injection experiment: the four protocol
// modes fetching the site first-time over PPP and WAN while a scripted
// fault — an early-closing server, Gilbert–Elliott burst loss, a
// periodic link flap, or a stalled response — disrupts the transfer.
// Every faulted client runs the default recovery policy (watchdog
// timeout, capped backoff, retry budget, protocol fallback); the "none"
// rows are the undisturbed baseline.
func (sw Sweep) FaultsTable(site *webgen.Site) ([]FaultRow, error) {
	envs := []netem.Environment{netem.PPP, netem.WAN}
	var rows []FaultRow
	for ei, env := range envs {
		for fi, prof := range faultProfiles {
			for mi, mode := range protocolModes {
				sc := Scenario{
					Server:   httpserver.ProfileApache,
					Client:   mode,
					Env:      env,
					Workload: httpclient.FirstTime,
					Seed:     14000 + uint64(ei)*1000 + uint64(fi)*100 + uint64(mi),
					Fault:    prof,
				}
				results, err := sw.series(sc, site, 17)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sc, err)
				}
				row := FaultRow{Env: env.String(), Fault: prof.String(), Mode: mode.String()}
				n := float64(len(results))
				for _, res := range results {
					c := res.Client
					row.Packets += float64(res.Stats.Packets) / n
					row.Seconds += res.Elapsed.Seconds() / n
					row.Errors += float64(c.Errors) / n
					row.Retried += float64(c.Retried) / n
					row.Timeouts += float64(c.Timeouts) / n
					row.Recovered += float64(c.RequestsRecovered) / n
					row.Failed += float64(c.RequestsFailed) / n
					row.WastedKB += float64(c.WastedBytes) / 1024 / n
					row.Fallbacks += float64(c.Fallbacks) / n
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
