package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// withTelemetry installs a stream and flight recorder for the duration
// of fn and restores the previous globals afterwards, so the rest of
// the package's tests keep running unobserved.
func withTelemetry(t *testing.T, fn func(stream *bytes.Buffer, flightDir string)) {
	t.Helper()
	var buf bytes.Buffer
	st := telemetry.NewStream(&buf)
	dir := t.TempDir()
	fl, err := telemetry.NewFlight(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	prevSt := telemetry.SetStream(st)
	prevFl := telemetry.SetFlight(fl)
	defer func() {
		telemetry.SetStream(prevSt)
		telemetry.SetFlight(prevFl)
	}()
	fn(&buf, dir)
}

// TestTelemetryDoesNotPerturb is the contract the whole telemetry layer
// hangs on: with a stream and flight recorder armed the simulation must
// produce byte-identical artifacts — same packet trace, same Perfetto
// timeline, same client counters. Telemetry observes the run; it never
// steers it.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	site := testSite(t)
	sc := Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Seed:     11,
		Fault:    faults.BurstLoss, // retries + watchdog traffic: the busiest code paths
	}

	runArtifacts := func() (pcap, perfetto []byte, cl httpclient.Result) {
		res, err := Run(sc, site, WithCapture(), WithTimeline(), WithStats())
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		var pc, pf bytes.Buffer
		if err := res.Capture.WritePcap(&pc); err != nil {
			t.Fatal(err)
		}
		if err := res.Timeline.WritePerfetto(&pf); err != nil {
			t.Fatal(err)
		}
		return pc.Bytes(), pf.Bytes(), res.Client
	}

	plainPcap, plainPerfetto, plainClient := runArtifacts()

	withTelemetry(t, func(stream *bytes.Buffer, flightDir string) {
		obsPcap, obsPerfetto, obsClient := runArtifacts()
		if !bytes.Equal(plainPcap, obsPcap) {
			t.Error("pcap differs with telemetry armed")
		}
		if !bytes.Equal(plainPerfetto, obsPerfetto) {
			t.Error("Perfetto timeline differs with telemetry armed")
		}
		if plainClient != obsClient {
			t.Errorf("client result differs with telemetry armed:\n  plain    %+v\n  observed %+v", plainClient, obsClient)
		}
	})
}

// TestFlightDumpOnWatchdog runs a stall-fault cell — the scripted way to
// trip the client watchdog — and checks the recorder leaves a parseable
// pair of artifacts behind and announces them on the stream.
func TestFlightDumpOnWatchdog(t *testing.T) {
	site := testSite(t)
	sc := Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Seed:     3,
		Fault:    faults.Stall,
	}
	withTelemetry(t, func(stream *bytes.Buffer, flightDir string) {
		res, err := Run(sc, site)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if res.Client.Timeouts < 1 {
			t.Fatal("stall fault did not trip the watchdog; dump trigger untested")
		}

		perfettoPath := findDump(t, flightDir, "watchdog", ".perfetto.json")
		pcapPath := findDump(t, flightDir, "watchdog", ".pcap")

		// The Perfetto dump must be a well-formed trace with events.
		data, err := os.ReadFile(perfettoPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("flight Perfetto dump is not valid JSON: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatal("flight Perfetto dump has no trace events")
		}

		// The pcap must survive the analyzer-grade parser.
		raw, err := os.ReadFile(pcapPath)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := trace.ParsePcap(raw)
		if err != nil {
			t.Fatalf("flight pcap dump does not parse: %v", err)
		}
		if len(pf.Packets) == 0 {
			t.Fatal("flight pcap dump has no packets")
		}

		// The stream must carry a flight record pointing at the dump.
		counts, err := telemetry.ValidateStream(bytes.NewReader(stream.Bytes()))
		if err != nil {
			t.Fatalf("stream does not validate: %v", err)
		}
		if counts[telemetry.RecordFlight] < 1 {
			t.Fatalf("stream has %d flight records, want >= 1", counts[telemetry.RecordFlight])
		}
		if !strings.Contains(stream.String(), `"reason":"watchdog"`) {
			t.Fatal("flight record on the stream does not carry the watchdog reason")
		}
	})
}

// TestFlightDumpOnPanic pins the crash path: a panic on the simulation
// goroutine must leave a dump behind and then propagate — the recorder
// may not swallow the crash.
func TestFlightDumpOnPanic(t *testing.T) {
	site := testSite(t)
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.LAN, httpclient.FirstTime)

	testHookAfterRun = func(Scenario) { panic("telemetry test: injected crash") }
	defer func() { testHookAfterRun = nil }()

	withTelemetry(t, func(stream *bytes.Buffer, flightDir string) {
		recovered := func() (r any) {
			defer func() { r = recover() }()
			Run(sc, site)
			return nil
		}()
		if recovered == nil {
			t.Fatal("injected panic was swallowed by the flight recorder")
		}
		if s, ok := recovered.(string); !ok || !strings.Contains(s, "injected crash") {
			t.Fatalf("recovered %v, want the injected panic value", recovered)
		}
		findDump(t, flightDir, "panic", ".perfetto.json")
		raw, err := os.ReadFile(findDump(t, flightDir, "panic", ".pcap"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.ParsePcap(raw); err != nil {
			t.Fatalf("panic-path pcap does not parse: %v", err)
		}
	})
}

// findDump locates the single flight artifact for reason with the given
// suffix, failing the test when it is missing or ambiguous.
func findDump(t *testing.T, dir, reason, suffix string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var match string
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, "-"+reason+suffix) && strings.HasSuffix(name, suffix) {
			if match != "" {
				t.Fatalf("multiple %s dumps with suffix %s in %s", reason, suffix, dir)
			}
			match = filepath.Join(dir, name)
		}
	}
	if match == "" {
		t.Fatalf("no %s dump with suffix %s in %s (have %v)", reason, suffix, dir, names(entries))
	}
	return match
}

func names(entries []os.DirEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name()
	}
	return out
}
