package core_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
)

func timelineScenario(env netem.Environment) core.Scenario {
	return core.Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      env,
		Workload: httpclient.FirstTime,
		Seed:     1,
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	var m exp.Metrics
	res, err := core.Run(timelineScenario(netem.LAN), site, core.WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Fatal("Timeline non-nil without WithTimeline")
	}
	if m.TimelineEvents != 0 || m.TimelineSpans != 0 {
		t.Fatalf("timeline metrics %d/%d without WithTimeline", m.TimelineEvents, m.TimelineSpans)
	}
}

// TestTimelineDoesNotPerturb is the golden-output guarantee: a run
// observed by the full event bus must measure identically to the same
// run without it.
func TestTimelineDoesNotPerturb(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []netem.Environment{netem.LAN, netem.PPP} {
		sc := timelineScenario(env)
		plain, err := core.Run(sc, site)
		if err != nil {
			t.Fatal(err)
		}
		observed, err := core.Run(sc, site, core.WithTimeline())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Stats, observed.Stats) {
			t.Fatalf("%v: stats differ with timeline on:\nplain:    %+v\nobserved: %+v",
				env, plain.Stats, observed.Stats)
		}
		if !reflect.DeepEqual(plain.Client, observed.Client) {
			t.Fatalf("%v: client results differ with timeline on", env)
		}
		if !reflect.DeepEqual(plain.Server, observed.Server) {
			t.Fatalf("%v: server stats differ with timeline on", env)
		}
	}
}

func TestTimelineSpansMatchRequests(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	var m exp.Metrics
	res, err := core.Run(timelineScenario(netem.LAN), site, core.WithTimeline(), core.WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	bus := res.Timeline
	if bus == nil {
		t.Fatal("no timeline with WithTimeline")
	}
	spans := bus.Spans()
	if len(spans) != res.Client.Requests {
		t.Fatalf("%d spans for %d requests", len(spans), res.Client.Requests)
	}
	if m.TimelineSpans != len(spans) || m.TimelineEvents != bus.Len() {
		t.Fatalf("metrics (%d events, %d spans) disagree with bus (%d, %d)",
			m.TimelineEvents, m.TimelineSpans, bus.Len(), len(spans))
	}
	for _, sp := range spans {
		if sp.Done == obs.NoTime {
			t.Fatalf("span %d (%s) never completed", sp.ID, sp.Path)
		}
		if sp.Queued > sp.Written || sp.Written > sp.FirstByte || sp.FirstByte > sp.Done {
			t.Fatalf("span %d instants out of order: %+v", sp.ID, sp)
		}
		if sp.Status != 200 {
			t.Fatalf("span %d status %d", sp.ID, sp.Status)
		}
	}
	if len(bus.Conns()) == 0 {
		t.Fatal("no connections recorded")
	}
	rows := bus.Waterfall()
	if len(rows) != len(spans) {
		t.Fatalf("%d waterfall rows for %d spans", len(rows), len(spans))
	}
	// Pipelined mode: everything after the first request reuses the
	// connection.
	reused := 0
	for _, r := range rows {
		if r.Reused {
			reused++
		}
	}
	if reused != len(rows)-1 {
		t.Fatalf("%d reused rows, want %d", reused, len(rows)-1)
	}
	var buf bytes.Buffer
	report.WriteWaterfall(&buf, bus, nil)
	if buf.Len() == 0 {
		t.Fatal("empty waterfall table")
	}
}

// TestPcapFromFullScenario is the acceptance criterion for -pcap: the
// capture of a complete run must parse cleanly under the strict reader.
func TestPcapFromFullScenario(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(timelineScenario(netem.PPP), site, core.WithCapture())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Capture.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := trace.ParsePcap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Packets) != res.Stats.Packets {
		t.Fatalf("pcap has %d packets, stats say %d", len(f.Packets), res.Stats.Packets)
	}
	syns, last := 0, int64(-1)
	for i, p := range f.Packets {
		if p.TimeNanos < last {
			t.Fatalf("packet %d timestamp not monotone", i)
		}
		last = p.TimeNanos
		if p.Flags == 0 {
			t.Fatalf("packet %d has no TCP flags", i)
		}
		if p.Flags&0x02 != 0 && p.Flags&0x10 == 0 {
			syns++
		}
	}
	if syns != res.Stats.Connections {
		t.Fatalf("%d bare SYNs in pcap, stats say %d connections", syns, res.Stats.Connections)
	}
}

func TestPerfettoFromFullScenario(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(timelineScenario(netem.PPP), site, core.WithTimeline())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Timeline.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	counts := map[string]int{}
	for i, ev := range out.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts == nil || ev.Pid == nil {
			t.Fatalf("event %d incomplete: %+v", i, ev)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			t.Fatalf("complete event %d lacks dur", i)
		}
		counts[ev.Ph]++
	}
	if counts["b"] != counts["e"] {
		t.Fatalf("unbalanced async spans: %d begins, %d ends", counts["b"], counts["e"])
	}
	// A PPP pipelined run has request spans, state slices, wire slices,
	// and cwnd counters.
	for _, ph := range []string{"M", "X", "b", "C"} {
		if counts[ph] == 0 {
			t.Errorf("no %q events in full-scenario trace", ph)
		}
	}
}
