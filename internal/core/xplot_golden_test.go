package core_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// The xplot and time-sequence outputs are the paper's debugging
// instruments; these goldens pin them byte-for-byte for one LAN and one
// PPP run of the canonical pipelined scenario so a tcpsim or netem
// change that silently shifts the trace shows up as a readable diff.
func TestXplotGolden(t *testing.T) {
	for _, env := range []netem.Environment{netem.LAN, netem.PPP} {
		sc := timelineScenario(env)
		site, err := core.DefaultSite()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(sc, site, core.WithCapture())
		if err != nil {
			t.Fatal(err)
		}
		name := strings.ToLower(env.String())

		var xp bytes.Buffer
		if err := res.Capture.WriteXplot(&xp, "server", sc.String()); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fmt.Sprintf("xplot_%s_server.txt", name), xp.Bytes())

		var seq bytes.Buffer
		for _, p := range res.Capture.TimeSequence("server") {
			fmt.Fprintf(&seq, "%.6f %d %d %s dropped=%v\n",
				p.Time.Seconds(), p.SeqLo, p.SeqHi, p.Kind, p.Dropped)
		}
		checkGolden(t, fmt.Sprintf("seq_%s_server.txt", name), seq.Bytes())
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/core -run XplotGolden -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("%s differs at line %d:\n got: %q\nwant: %q\n(rerun with -update to accept)", name, i+1, g, w)
			}
		}
		t.Fatalf("%s differs in length only", name)
	}
}
