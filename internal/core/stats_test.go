package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netem"
)

func TestStatsDisabledByDefault(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	var m exp.Metrics
	res, err := core.Run(timelineScenario(netem.LAN), site, core.WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != nil {
		t.Fatal("Latency non-nil without WithStats")
	}
	if m.Dist != nil {
		t.Fatalf("Dist metrics present without WithStats: %v", m.Dist)
	}
}

// TestStatsDoNotPerturb is the golden-output guarantee for the stats
// layer: a run collecting per-request latency histograms must measure
// identically to the same run without them.
func TestStatsDoNotPerturb(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []netem.Environment{netem.LAN, netem.PPP} {
		sc := timelineScenario(env)
		plain, err := core.Run(sc, site)
		if err != nil {
			t.Fatal(err)
		}
		observed, err := core.Run(sc, site, core.WithStats())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Stats, observed.Stats) {
			t.Fatalf("%v: stats differ with latency collection on:\nplain:    %+v\nobserved: %+v",
				env, plain.Stats, observed.Stats)
		}
		if !reflect.DeepEqual(plain.Client, observed.Client) {
			t.Fatalf("%v: client results differ with latency collection on", env)
		}
		if !reflect.DeepEqual(plain.Server, observed.Server) {
			t.Fatalf("%v: server stats differ with latency collection on", env)
		}
		if observed.Timeline != nil {
			t.Fatalf("%v: WithStats exposed a timeline bus", env)
		}
	}
}

// TestStatsLatencyMatchesRequests checks the collected latency set
// covers every completed request, and that the derived metric keys are
// the documented stable dozen.
func TestStatsLatencyMatchesRequests(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	var m exp.Metrics
	res, err := core.Run(timelineScenario(netem.PPP), site, core.WithStats(), core.WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency == nil {
		t.Fatal("no latency set with WithStats")
	}
	if got := res.Latency.Count(); got != int64(res.Client.Requests) {
		t.Fatalf("latency set has %d observations for %d requests", got, res.Client.Requests)
	}
	if res.Latency.Total.Min() < 0 {
		t.Fatal("negative total latency")
	}
	// Queue ≤ total for every request, so the aggregate maxima must be
	// ordered too.
	if res.Latency.Queue.Max() > res.Latency.Total.Max() {
		t.Fatalf("queue max %d exceeds total max %d",
			res.Latency.Queue.Max(), res.Latency.Total.Max())
	}
	if len(m.Dist) != 12 {
		t.Fatalf("got %d dist keys, want 12: %v", len(m.Dist), m.Dist)
	}
	for _, key := range []string{
		"lat_queue_ms_p50", "lat_queue_ms_p90", "lat_queue_ms_p99", "lat_queue_ms_max",
		"lat_ttfb_ms_p50", "lat_ttfb_ms_p90", "lat_ttfb_ms_p99", "lat_ttfb_ms_max",
		"lat_total_ms_p50", "lat_total_ms_p90", "lat_total_ms_p99", "lat_total_ms_max",
	} {
		if _, ok := m.Dist[key]; !ok {
			t.Errorf("dist missing %s", key)
		}
	}
	if m.Dist["lat_total_ms_p50"] > m.Dist["lat_total_ms_p99"] {
		t.Errorf("p50 %.1f > p99 %.1f", m.Dist["lat_total_ms_p50"], m.Dist["lat_total_ms_p99"])
	}
	if m.Dist["lat_total_ms_max"] <= 0 {
		t.Errorf("non-positive max latency %v", m.Dist["lat_total_ms_max"])
	}
}
