package core

import (
	"fmt"
	"time"

	"repro/internal/flatez"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/webgen"
)

// Cell is one measured table cell (averaged).
type Cell struct {
	Packets     float64
	Bytes       float64
	Seconds     float64
	OverheadPct float64
}

func cellFromAvg(a Avg) Cell {
	return Cell{Packets: a.Packets, Bytes: a.Bytes, Seconds: a.Seconds, OverheadPct: a.OverheadPct}
}

// Row is one protocol row: first-time retrieval and cache validation.
type Row struct {
	Label        string
	First, Reval Cell
	// Paper holds the published values when available.
	Paper *PaperRow
}

// Table is a regenerated paper table.
type Table struct {
	Number int // paper table number, 0 for extra experiments
	Title  string
	Rows   []Row
}

// protocolModes are the four measured client configurations, in table
// order.
var protocolModes = []httpclient.Mode{
	httpclient.ModeHTTP10,
	httpclient.ModeHTTP11Serial,
	httpclient.ModeHTTP11Pipelined,
	httpclient.ModeHTTP11PipelinedDeflate,
}

// envOf maps a paper table number to its environment and server.
func tableConfig(number int) (httpserver.Profile, netem.Environment, bool) {
	switch number {
	case 4:
		return httpserver.ProfileJigsaw, netem.LAN, true
	case 5:
		return httpserver.ProfileApache, netem.LAN, true
	case 6:
		return httpserver.ProfileJigsaw, netem.WAN, true
	case 7:
		return httpserver.ProfileApache, netem.WAN, true
	case 8:
		return httpserver.ProfileJigsaw, netem.PPP, true
	case 9:
		return httpserver.ProfileApache, netem.PPP, true
	}
	return 0, 0, false
}

// MainTable regenerates one of Tables 4-9: a server × environment page,
// all protocol modes × both workloads. Tables 8 and 9 omit HTTP/1.0, as
// the paper did.
func (sw Sweep) MainTable(number int, site *webgen.Site) (Table, error) {
	profile, env, ok := tableConfig(number)
	if !ok {
		return Table{}, fmt.Errorf("core: no main table %d", number)
	}
	t := Table{
		Number: number,
		Title: fmt.Sprintf("Table %d - %s - %s", number, profile,
			map[netem.Environment]string{
				netem.LAN: "High Bandwidth, Low Latency",
				netem.WAN: "High Bandwidth, High Latency",
				netem.PPP: "Low Bandwidth, High Latency",
			}[env]),
	}
	modes := protocolModes
	if env == netem.PPP {
		modes = modes[1:] // the paper has no HTTP/1.0 rows over PPP
	}
	paper := PaperTables[number]
	for i, mode := range modes {
		row := Row{Label: mode.String()}
		if i < len(paper) {
			p := paper[i]
			row.Paper = &p
		}
		for _, wl := range []httpclient.Workload{httpclient.FirstTime, httpclient.Revalidate} {
			sc := Scenario{Server: profile, Client: mode, Env: env, Workload: wl, Seed: uint64(number)*1000 + uint64(i)}
			avg, err := sw.RunAveraged(sc, site)
			if err != nil {
				return t, fmt.Errorf("%s: %w", sc, err)
			}
			if wl == httpclient.FirstTime {
				row.First = cellFromAvg(avg)
			} else {
				row.Reval = cellFromAvg(avg)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// BrowserTable regenerates Table 10 (Jigsaw) or 11 (Apache): product
// browser profiles over PPP.
func (sw Sweep) BrowserTable(number int, site *webgen.Site) (Table, error) {
	var profile httpserver.Profile
	switch number {
	case 10:
		profile = httpserver.ProfileJigsaw
	case 11:
		profile = httpserver.ProfileApache
	default:
		return Table{}, fmt.Errorf("core: no browser table %d", number)
	}
	t := Table{
		Number: number,
		Title:  fmt.Sprintf("Table %d - %s - Netscape Navigator and MS Internet Explorer, Low Bandwidth, High Latency", number, profile),
	}
	paper := PaperTables[number]
	for i, mode := range []httpclient.Mode{httpclient.ModeNetscape, httpclient.ModeMSIE} {
		row := Row{Label: mode.String()}
		if i < len(paper) {
			p := paper[i]
			row.Paper = &p
		}
		for _, wl := range []httpclient.Workload{httpclient.FirstTime, httpclient.Revalidate} {
			cfg := mode.Config()
			if mode == httpclient.ModeMSIE && profile == httpserver.ProfileJigsaw && wl == httpclient.Revalidate {
				// Table 10 records IE revalidating very poorly against
				// Jigsaw: connection reuse and the page validation did
				// not work, so every validation opened a fresh
				// connection and the page came back in full.
				cfg.KeepAlive = false
				cfg.RevalidateHTMLUnconditionally = true
			}
			sc := Scenario{
				Server: profile, Client: mode, Env: netem.PPP, Workload: wl,
				Seed:           uint64(number)*1000 + uint64(i),
				ClientOverride: &cfg,
			}
			avg, err := sw.RunAveraged(sc, site)
			if err != nil {
				return t, fmt.Errorf("%s: %w", sc, err)
			}
			if wl == httpclient.FirstTime {
				row.First = cellFromAvg(avg)
			} else {
				row.Reval = cellFromAvg(avg)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3Row is one column of the paper's Table 3 (the initial, untuned
// LAN revalidation investigation).
type Table3Row struct {
	Label        string
	MaxSockets   int
	TotalSockets int
	PktsC2S      float64
	PktsS2C      float64
	PktsTotal    float64
	Elapsed      float64
}

// Table3 reproduces the initial high-bandwidth low-latency cache
// revalidation test: HTTP/1.0, naive persistent HTTP/1.1, and the first
// pipelined implementation with its untuned 1-second flush timer and no
// explicit application flush.
func (sw Sweep) Table3(site *webgen.Site) ([]Table3Row, error) {
	type variant struct {
		label string
		cfg   httpclient.Config
	}
	// The initial HTTP/1.1 robot kept its persistent cache as two files
	// per object on disk; the paper calls this overhead "a performance
	// bottleneck in our HTTP/1.1 tests" (later moved to a memory file
	// system). That slow per-request client work is what made
	// non-pipelined HTTP/1.1 *slower* in elapsed time than HTTP/1.0.
	const initialCacheCPU = 85 * time.Millisecond

	serial := httpclient.ModeHTTP11Serial.Config()
	serial.PerRequestCPU = initialCacheCPU

	pipeline := httpclient.ModeHTTP11Pipelined.Config()
	// The initial implementation: flush on size or a 1-second timer only.
	pipeline.ExplicitFirstFlush = false
	pipeline.FlushTimeout = time.Second
	pipeline.PerRequestCPU = initialCacheCPU

	http10 := httpclient.ModeHTTP10.Config()
	http10.MaxConns = 6 // the initial robot ran up to 6 sockets (Table 3)

	variants := []variant{
		{"HTTP/1.0", http10},
		{"HTTP/1.1 Persistent", serial},
		{"HTTP/1.1 Pipeline", pipeline},
	}
	var rows []Table3Row
	for i, v := range variants {
		cfg := v.cfg
		sc := Scenario{
			Server: httpserver.ProfileJigsaw, Client: cfg.Mode,
			Env: netem.LAN, Workload: httpclient.Revalidate,
			Seed:           3000 + uint64(i),
			ClientOverride: &cfg,
		}
		results, err := sw.series(sc, site, 101)
		if err != nil {
			return nil, err
		}
		var c2s, s2c, total, secs, socks, maxSock float64
		for _, res := range results {
			c2s += float64(res.Stats.ClientToServer)
			s2c += float64(res.Stats.ServerToClient)
			total += float64(res.Stats.Packets)
			secs += res.Elapsed.Seconds()
			socks += float64(res.Client.SocketsUsed)
			if m := float64(res.Client.MaxSimultaneousConns); m > maxSock {
				maxSock = m
			}
		}
		n := float64(len(results))
		rows = append(rows, Table3Row{
			Label:        v.label,
			MaxSockets:   int(maxSock),
			TotalSockets: int(socks / n),
			PktsC2S:      c2s / n,
			PktsS2C:      s2c / n,
			PktsTotal:    total / n,
			Elapsed:      secs / n,
		})
	}
	return rows, nil
}

// ModemRow is one row of the §8.2.1 modem-compression experiment.
type ModemRow struct {
	Label   string
	Packets float64
	Bytes   float64
	Seconds float64
}

// ModemTable reproduces the modem-compression comparison: a single GET of
// the Microscape HTML page over the 28.8k link, with and without deflate
// content coding, and with and without V.42bis-style modem compression.
func (sw Sweep) ModemTable(site *webgen.Site, profile httpserver.Profile) ([]ModemRow, error) {
	type variant struct {
		label   string
		deflate bool
		modem   bool
	}
	variants := []variant{
		{"Uncompressed HTML, modem compression off", false, false},
		{"Uncompressed HTML, V.42bis modem compression", false, true},
		{"Deflate-compressed HTML, modem compression off", true, false},
		{"Deflate-compressed HTML, V.42bis modem compression", true, true},
	}
	var rows []ModemRow
	for i, v := range variants {
		mode := httpclient.ModeHTTP11Serial
		if v.deflate {
			mode = httpclient.ModeHTTP11PipelinedDeflate
		}
		cfg := mode.Config()
		cfg.PageOnly = true
		sc := Scenario{
			Server: profile, Client: mode, Env: netem.PPP,
			Workload:         httpclient.FirstTime,
			Seed:             8000 + uint64(i),
			ModemCompression: v.modem,
			ClientOverride:   &cfg,
		}
		avg, err := sw.RunAveraged(sc, site)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ModemRow{Label: v.label, Packets: avg.Packets, Bytes: avg.Bytes, Seconds: avg.Seconds})
	}
	return rows, nil
}

// TagCaseRow is one row of the tag-case compression experiment.
type TagCaseRow struct {
	Label     string
	HTMLBytes int
	Deflated  int
	Ratio     float64
}

// TagCaseTable reproduces the paper's observation that markup letter case
// affects deflate performance (lower-case tags compressed to ~0.27 of the
// original vs ~0.35 for mixed case).
func TagCaseTable() ([]TagCaseRow, error) {
	var rows []TagCaseRow
	for _, tc := range []webgen.TagCase{webgen.TagsLower, webgen.TagsMixed, webgen.TagsUpper} {
		site, err := webgen.Microscape(webgen.Options{Seed: 2, TagCase: tc})
		if err != nil {
			return nil, err
		}
		comp := flatez.Compress(site.HTML.Body)
		rows = append(rows, TagCaseRow{
			Label:     tc.String() + "-case tags",
			HTMLBytes: len(site.HTML.Body),
			Deflated:  len(comp),
			Ratio:     flatez.Ratio(site.HTML.Body, comp),
		})
	}
	return rows, nil
}

// NagleRow is one row of the Nagle-interaction experiment.
type NagleRow struct {
	Label   string
	Packets float64
	Seconds float64
}

// NagleTable demonstrates the paper's Nagle findings on the WAN
// first-time retrieval workload. The damaging interaction (also
// documented by Heidemann, whom the paper confirms) is between the Nagle
// algorithm and the delayed-ACK policy: a response whose final segment is
// partial gets that segment held at the server until the client's delayed
// ACK of the earlier segments arrives. "We recommend therefore that
// HTTP/1.1 implementations that buffer output disable Nagle's algorithm."
func (sw Sweep) NagleTable(site *webgen.Site) ([]NagleRow, error) {
	type variant struct {
		label      string
		mode       httpclient.Mode
		srvNoDelay bool
	}
	variants := []variant{
		{"Pipelined client, server TCP_NODELAY (tuned)", httpclient.ModeHTTP11Pipelined, true},
		{"Pipelined client, server Nagle", httpclient.ModeHTTP11Pipelined, false},
		{"Serial client, server TCP_NODELAY", httpclient.ModeHTTP11Serial, true},
		{"Serial client, server Nagle", httpclient.ModeHTTP11Serial, false},
	}
	var rows []NagleRow
	for i, v := range variants {
		srv := httpserver.Config{Profile: httpserver.ProfileJigsaw, NoDelay: v.srvNoDelay}
		sc := Scenario{
			Server: httpserver.ProfileJigsaw, Client: v.mode,
			Env: netem.WAN, Workload: httpclient.FirstTime,
			Seed:           9000 + uint64(i),
			ServerOverride: &srv,
		}
		avg, err := sw.RunAveraged(sc, site)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NagleRow{Label: v.label, Packets: avg.Packets, Seconds: avg.Seconds})
	}
	return rows, nil
}

// ResetRow is one row of the connection-management experiment.
type ResetRow struct {
	Label     string
	Packets   float64
	Seconds   float64
	Errors    float64
	Retried   float64
	Responses float64
}

// ResetTable demonstrates the early-close scenario: a server that limits
// each connection to five responses, closing either naively (both TCP
// halves at once — the connection is reset and pipelined responses are
// lost) or gracefully (independent half-close — the client finishes over
// several connections without loss).
func (sw Sweep) ResetTable(site *webgen.Site) ([]ResetRow, error) {
	type variant struct {
		label string
		naive bool
	}
	variants := []variant{
		{"Graceful half-close after 5 requests", false},
		{"Naive full close after 5 requests", true},
	}
	var rows []ResetRow
	for i, v := range variants {
		srv := httpserver.Config{
			Profile:            httpserver.ProfileApache,
			MaxRequestsPerConn: 5,
			NaiveClose:         v.naive,
			NoDelay:            true,
		}
		// First-time retrieval spreads the pipelined request batches out
		// in time (links are discovered as the page arrives), so with the
		// naive close some batches reach the server after it has closed
		// both halves — drawing the RST the paper describes.
		sc := Scenario{
			Server: httpserver.ProfileApache, Client: httpclient.ModeHTTP11Pipelined,
			Env: netem.WAN, Workload: httpclient.FirstTime,
			Seed:           9500 + uint64(i),
			ServerOverride: &srv,
		}
		results, err := sw.series(sc, site, 31)
		if err != nil {
			return nil, err
		}
		var pa, secs, errs, retried, resp float64
		for _, res := range results {
			pa += float64(res.Stats.Packets)
			secs += res.Elapsed.Seconds()
			errs += float64(res.Client.Errors)
			retried += float64(res.Client.Retried)
			resp += float64(res.Client.Responses200 + res.Client.Responses304)
		}
		n := float64(len(results))
		rows = append(rows, ResetRow{
			Label: v.label, Packets: pa / n, Seconds: secs / n,
			Errors: errs / n, Retried: retried / n, Responses: resp / n,
		})
	}
	return rows, nil
}

// FlushRow is one cell of the flush-policy ablation.
type FlushRow struct {
	BufferSize   int
	FlushTimeout time.Duration
	Packets      float64
	Seconds      float64
}

// FlushAblation sweeps the pipelining output-buffer size and flush-timer
// settings the paper experimented with, on the WAN first-time workload
// (where batching granularity is visible in both packets and RTT stalls).
func (sw Sweep) FlushAblation(site *webgen.Site) ([]FlushRow, error) {
	var rows []FlushRow
	for _, buf := range []int{256, 512, 1024, 2048, 4096} {
		for _, timeout := range []time.Duration{time.Millisecond, 50 * time.Millisecond, time.Second} {
			cfg := httpclient.ModeHTTP11Pipelined.Config()
			cfg.BufferSize = buf
			cfg.FlushTimeout = timeout
			cfg.ExplicitFirstFlush = true
			sc := Scenario{
				Server: httpserver.ProfileApache, Client: cfg.Mode,
				Env: netem.WAN, Workload: httpclient.FirstTime,
				Seed:           uint64(9700 + buf + int(timeout/time.Millisecond)),
				ClientOverride: &cfg,
			}
			avg, err := sw.RunAveraged(sc, site)
			if err != nil {
				return nil, err
			}
			rows = append(rows, FlushRow{BufferSize: buf, FlushTimeout: timeout, Packets: avg.Packets, Seconds: avg.Seconds})
		}
	}
	return rows, nil
}

// RangeRow is one strategy of the range-request experiment.
type RangeRow struct {
	Label                   string
	Packets, Bytes, Seconds float64
	// MetadataSeconds is when every object had returned its first bytes
	// (or a 304) — the page-layout-critical time range probes improve.
	MetadataSeconds float64
	Responses206    float64
}

// RangeTable explores the paper's range-request prediction ("poor man's
// multiplexing"): revisiting a page after a site revision, the client can
// validate every object and simultaneously ask for just the head of any
// changed entity, so that one large changed image cannot monopolize the
// pipelined connection ahead of the other objects' metadata.
func (sw Sweep) RangeTable(site *webgen.Site) ([]RangeRow, error) {
	type variant struct {
		label string
		probe int
	}
	variants := []variant{
		{"Conditional GET (full changed bodies inline)", 0},
		{"Conditional GET + Range probe (512 bytes)", 512},
	}
	var rows []RangeRow
	for _, v := range variants {
		cfg := httpclient.ModeHTTP11Pipelined.Config()
		cfg.RevalRangeProbe = v.probe
		// Both strategies run against identical revisions: the seed does
		// not vary by variant, so the same objects change in each.
		sc := Scenario{
			Server: httpserver.ProfileApache, Client: cfg.Mode,
			Env: netem.PPP, Workload: httpclient.Revalidate,
			ReviseFraction: 0.3,
			Seed:           9900,
			ClientOverride: &cfg,
		}
		results, err := sw.series(sc, site, 13)
		if err != nil {
			return nil, err
		}
		var pa, bytes, secs, meta, r206 float64
		for _, res := range results {
			pa += float64(res.Stats.Packets)
			bytes += float64(res.Stats.PayloadBytes)
			secs += res.Elapsed.Seconds()
			meta += res.Client.MetadataSeconds
			r206 += float64(res.Client.Responses206)
		}
		n := float64(len(results))
		rows = append(rows, RangeRow{
			Label: v.label, Packets: pa / n, Bytes: bytes / n,
			Seconds: secs / n, MetadataSeconds: meta / n, Responses206: r206 / n,
		})
	}
	return rows, nil
}

// HeaderRedundancyRow is one request-encoding strategy of the paper's
// compact-wire-representation estimate.
type HeaderRedundancyRow struct {
	Label        string
	RequestBytes int
	Ratio        float64 // versus the plain text encoding
}

// HeaderRedundancy quantifies the paper's back-of-the-envelope claim that
// "HTTP requests are usually highly redundant and the actual number of
// bytes that changes between requests can be as small as 10%", so "a more
// compact wire representation for HTTP could increase pipelining's
// benefit ... up to an additional factor of five or ten" on revalidation
// traffic. It serializes the 43 revalidation requests and compares the
// plain text bytes against deflate with each request compressed using the
// previous one as a preset dictionary (a stand-in for a tokenized
// encoding).
func HeaderRedundancy(site *webgen.Site) ([]HeaderRedundancyRow, error) {
	cache := httpclient.NewCache()
	cache.Prime(site)
	reqs := httpclient.RevalidationRequests(cache)
	plain := 0
	for _, r := range reqs {
		plain += len(r)
	}
	delta := 0
	var prev []byte
	for _, r := range reqs {
		delta += len(flatez.CompressDict(r, prev, 9))
		prev = r
	}
	whole := len(flatez.CompressLevel(joinBytes(reqs), 9))
	return []HeaderRedundancyRow{
		{"Plain text requests", plain, 1},
		{"Whole-stream deflate", whole, float64(whole) / float64(plain)},
		{"Per-request deflate w. previous-request dictionary", delta, float64(delta) / float64(plain)},
	}, nil
}

func joinBytes(bs [][]byte) []byte {
	var out []byte
	for _, b := range bs {
		out = append(out, b...)
	}
	return out
}

// CwndRow is one cell of the initial-window ablation.
type CwndRow struct {
	Label   string
	Packets float64
	Seconds float64
}

// CwndTable varies TCP's slow-start initial window between one and two
// segments — "Some TCP stacks implement slow start using one TCP segment
// whereas others implement it using two packets" — with and without
// deflate, on the WAN first-time retrieval. The paper's point about
// compression: with more HTML in the first segments, follow-on request
// batches form sooner, so compression matters more when the initial
// window is small.
func (sw Sweep) CwndTable(site *webgen.Site) ([]CwndRow, error) {
	type variant struct {
		label string
		iw    int
		mode  httpclient.Mode
	}
	variants := []variant{
		{"IW=1, identity HTML", 1, httpclient.ModeHTTP11Pipelined},
		{"IW=1, deflate HTML", 1, httpclient.ModeHTTP11PipelinedDeflate},
		{"IW=2, identity HTML", 2, httpclient.ModeHTTP11Pipelined},
		{"IW=2, deflate HTML", 2, httpclient.ModeHTTP11PipelinedDeflate},
	}
	var rows []CwndRow
	for _, v := range variants {
		cfg := v.mode.Config()
		cfg.TCP.InitialCwndSegments = v.iw
		srv := httpserver.Config{
			Profile: httpserver.ProfileApache,
			NoDelay: true,
			TCP:     tcpsim.Options{InitialCwndSegments: v.iw},
		}
		sc := Scenario{
			Server: httpserver.ProfileApache, Client: v.mode,
			Env: netem.WAN, Workload: httpclient.FirstTime,
			Seed:           9800,
			ClientOverride: &cfg,
			ServerOverride: &srv,
		}
		avg, err := sw.RunAveraged(sc, site)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CwndRow{Label: v.label, Packets: avg.Packets, Seconds: avg.Seconds})
	}
	return rows, nil
}
