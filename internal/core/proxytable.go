package core

import (
	"fmt"

	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// ProxyRow is one row of the shared-proxy experiment: one protocol mode
// under one cache state, measured on the dialup last mile with the
// origin-side traffic alongside.
type ProxyRow struct {
	Mode    string
	Variant string // "cold", "warm", "stale"

	// Last-mile (client ↔ proxy) measurements, the paper's Pa / Bytes /
	// Sec / %ov quantities as seen by the dialup user.
	Packets     float64
	Bytes       float64
	Seconds     float64
	OverheadPct float64

	// Cache effectiveness: hit ratio over proxy requests, body bytes
	// served from cache instead of the origin, upstream requests issued,
	// and packets on the proxy ↔ origin link.
	HitRatio         float64
	BytesSaved       float64
	UpstreamRequests float64
	OriginPackets    float64
}

// proxyVariants are the three cache states the experiment compares.
var proxyVariants = []struct {
	name  string
	warm  bool
	stale bool
}{
	{"cold", false, false},
	{"warm", true, false},
	{"stale", false, true},
}

// ProxyTable runs the shared-caching-proxy experiment: a dialup client
// fetching the site through a proxy at the ISP (PPP last mile) that
// reaches the origin over the WAN, for all four protocol modes under
// three cache states — cold (first fetch, all misses), warm (a fresh
// cache serves everything locally), and stale (a cache filled on an
// earlier day revalidates each object upstream with a conditional GET).
func (sw Sweep) ProxyTable(site *webgen.Site) ([]ProxyRow, error) {
	var rows []ProxyRow
	for vi, v := range proxyVariants {
		for mi, mode := range protocolModes {
			sc := Scenario{
				Server:   httpserver.ProfileApache,
				Client:   mode,
				Env:      netem.PPP,
				Workload: httpclient.FirstTime,
				Seed:     13000 + uint64(vi)*100 + uint64(mi),
				Proxy:    &ProxyScenario{Env: netem.WAN, Warm: v.warm, Stale: v.stale},
			}
			results, err := sw.series(sc, site, 7919)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc, err)
			}
			row := ProxyRow{Mode: mode.String(), Variant: v.name}
			n := float64(len(results))
			for _, res := range results {
				row.Packets += float64(res.Stats.Packets) / n
				row.Bytes += float64(res.Stats.PayloadBytes) / n
				row.Seconds += res.Elapsed.Seconds() / n
				p := res.Proxy
				if p.Requests > 0 {
					row.HitRatio += float64(p.Hits) / float64(p.Requests) / n
				}
				row.BytesSaved += float64(p.BytesFromCache) / n
				row.UpstreamRequests += float64(p.UpstreamRequests) / n
				row.OriginPackets += float64(res.Origin.Packets) / n
			}
			hdr := row.Packets * netem.IPTCPHeaderBytes
			if total := row.Bytes + hdr; total > 0 {
				row.OverheadPct = 100 * hdr / total
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
