// Package core is the public experiment API of the reproduction: it wires
// the simulated network (netem, tcpsim), servers (httpserver), and clients
// (httpclient) into runnable scenarios, and regenerates every table and
// figure of the paper's evaluation (see tables.go).
//
// A Scenario names one cell of the paper's measurement matrix — server
// profile × client mode × network environment × workload. Run executes it
// once deterministically, with functional options selecting packet
// capture, a seed override, or structured per-run metrics; Sweep repeats
// it with seeded jitter across a worker pool, as the paper averaged five
// runs "to make up for network fluctuations".
package core

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/causality"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/lzw"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpsim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/webgen"
)

// testHookAfterRun, when non-nil, runs right after the simulation
// drains and before result assembly. Tests install a panicking hook to
// exercise the flight recorder's dump-on-panic path without corrupting
// a real simulation.
var testHookAfterRun func(sc Scenario)

// Scenario is one experiment configuration.
type Scenario struct {
	Server   httpserver.Profile
	Client   httpclient.Mode
	Env      netem.Environment
	Workload httpclient.Workload

	// Seed drives all deterministic randomness in this run.
	Seed uint64
	// Jitter enables ±10% CPU and ±3% RTT perturbation, reproducing the
	// run-to-run variation the paper averaged away.
	Jitter bool

	// ModemCompression enables V.42bis-style link compression on the PPP
	// link.
	ModemCompression bool

	// Fault selects a deterministic fault-injection profile (seeded from
	// Seed): server misbehaviour (early close, truncation, abort, stall),
	// framed-protocol misbehaviour (mid-stream resets, frame truncation,
	// garbage frames, aborted pushes, settings stalls), and/or link loss
	// (burst loss, flaps, blackholes). On a direct run
	// the link faults apply to the client↔server path; with a proxy they
	// apply to the proxy↔origin link and the server faults to the origin,
	// so the proxy's own retry policy is exercised. A non-None fault also
	// arms the client's (and proxy's) default recovery policy.
	Fault faults.Profile

	// ReviseFraction, when positive on the Revalidate workload, serves a
	// revised site (that fraction of images replaced, page edited) while
	// the client's cache was primed on the original — the revisit-after-
	// revision situation behind the paper's range-request discussion.
	ReviseFraction float64

	// MuxFIFO switches the mux DATA pump (both endpoints) from the
	// default (priority, stream-id) scheduling to strict first-come-
	// first-served stream order — the stream-priority ablation. It only
	// affects the framed client modes.
	MuxFIFO bool

	// ServerOverride and ClientOverride, when non-nil, replace the
	// profile- and mode-derived configurations.
	ServerOverride *httpserver.Config
	ClientOverride *httpclient.Config

	// Proxy, when non-nil, interposes a shared caching proxy between the
	// client and the origin: the client's Env becomes the last-mile link
	// (client ↔ proxy) and Proxy.Env the upstream link (proxy ↔ origin).
	Proxy *ProxyScenario
}

// ProxyScenario configures the caching proxy tier of a multi-hop run.
type ProxyScenario struct {
	// Env is the proxy ↔ origin link environment.
	Env netem.Environment
	// CacheBytes is the shared cache capacity (default 8 MiB).
	CacheBytes int64
	// Warm primes the cache with the whole site before the run, as if an
	// earlier client had pulled it through minutes ago (entries fresh).
	// Stale primes the same way but expires every entry, modelling a
	// cache filled on an earlier day: each use must revalidate. Stale
	// wins when both are set.
	Warm  bool
	Stale bool
}

// String names the proxy variant as used in scenario strings.
func (p *ProxyScenario) String() string {
	s := "proxy:" + p.Env.String()
	if p.Stale {
		return s + ":stale"
	}
	if p.Warm {
		return s + ":warm"
	}
	return s
}

// String summarizes the scenario.
func (sc Scenario) String() string {
	s := fmt.Sprintf("%s/%s/%s/%s", sc.Server, sc.Client, sc.Env, sc.Workload)
	if sc.MuxFIFO {
		s += "/fifo"
	}
	if sc.Proxy != nil {
		s += "/" + sc.Proxy.String()
	}
	if sc.Fault != faults.None {
		s += "/" + sc.Fault.String()
	}
	return s
}

// RunResult is the outcome of one scenario execution.
type RunResult struct {
	Scenario Scenario
	// Stats describes the client-side link: the whole path on a direct
	// run, the last mile (client ↔ proxy) on a proxy run.
	Stats  trace.Stats
	Client httpclient.Result
	Server httpserver.Stats
	// Proxy and Origin are filled on proxy runs only: proxy-tier counters
	// and the packet statistics of the proxy ↔ origin link.
	Proxy  *proxy.Stats
	Origin *trace.Stats
	// Elapsed is measured from the packet trace, first to last packet,
	// like the paper's tcpdump-based timings.
	Elapsed time.Duration
	// Capture holds the full packet trace when Scenario runs through
	// RunCaptured.
	Capture *trace.Capture
	// Timeline holds the full-stack event bus when Run was given
	// WithTimeline; nil otherwise.
	Timeline *obs.Bus
	// Latency holds the per-request latency distributions (queue time,
	// TTFB, total — nanosecond histograms) when Run was given WithStats;
	// nil otherwise.
	Latency *stats.LatencySet
	// Blame holds the causal delay attribution — per-request category
	// breakdown and page-load critical path — when Run was given
	// WithBlame; nil otherwise.
	Blame *causality.Analysis
}

// ErrDidNotFinish reports a run whose client never completed the page.
var ErrDidNotFinish = errors.New("core: client did not finish the fetch")

// ErrMuxTopology reports a mux-family scenario behind the HTTP/1.x
// caching proxy, which cannot forward framed connections. It is the
// only remaining mode restriction: every fault profile now applies to
// every client mode — the server maps the HTTP/1.x scripted faults
// onto framed connections (GOAWAY for early-close, a stalled stream
// for stall, …) and the mux client carries the full recovery ladder,
// per-stream watchdogs included.
var ErrMuxTopology = errors.New("core: mux-family client modes do not speak through the HTTP/1.x proxy")

// validateMode rejects scenario combinations the protocol modes cannot
// express, with a named error so callers (and the CLI) can distinguish
// a bad spec from a failed run. Like ParseTopology's, the message
// enumerates what would have been accepted.
func validateMode(sc Scenario) error {
	mux := sc.Client == httpclient.ModeMux || sc.Client == httpclient.ModeMuxPush
	if mux && sc.Proxy != nil {
		return fmt.Errorf("%w: %s (want direct, or proxy:ENV[:warm|:stale] with an HTTP/1.x or burst client mode, e.g. proxy:WAN:warm)", ErrMuxTopology, sc)
	}
	return nil
}

// serverPort is the simulated origin's port; proxyPort the caching
// proxy's (3128, squid's convention).
const (
	serverPort = 80
	proxyPort  = 3128
)

// Option configures one Run call.
type Option func(*runConfig)

type runConfig struct {
	capture  bool
	timeline bool
	stats    bool
	blame    bool
	seed     *uint64
	metrics  *exp.Metrics
}

// WithCapture retains the full packet trace in the result.
func WithCapture() Option { return func(c *runConfig) { c.capture = true } }

// WithTimeline records the full-stack event timeline — TCP connection
// state spans, congestion-window changes, Nagle holds, RTO fires,
// retransmissions, wire serialization windows, and per-object request
// lifecycle spans — into RunResult.Timeline, for export as a Perfetto
// trace or a request waterfall. Observation does not perturb the
// simulation: a run measures identically with or without it.
func WithTimeline() Option { return func(c *runConfig) { c.timeline = true } }

// WithStats collects per-request latency distributions — queue time
// (decided-to-fetch → request written), time to first byte, and total
// time per object — into RunResult.Latency, and their p50/p90/p99/max
// quantiles into the metrics record's Dist map when WithMetrics is also
// given. Latencies derive from the same request-lifecycle spans the
// timeline records, so, like observation, statistics collection does
// not perturb the simulation: a run measures identically with or
// without it.
func WithStats() Option { return func(c *runConfig) { c.stats = true } }

// WithBlame runs the causality analyzer over the event bus: each
// request's elapsed time is attributed to exclusive delay categories
// (connection setup, RTO recovery, Nagle holds, flow-control stalls,
// congestion-window waits, server think, head-of-line queueing, wire
// time — summing exactly to elapsed), and the page-load critical path
// is reconstructed, into RunResult.Blame. The analyzer is a passive
// bus subscriber, so, like the timeline, it does not perturb the run.
func WithBlame() Option { return func(c *runConfig) { c.blame = true } }

// WithSeed overrides the scenario's seed for this run.
func WithSeed(seed uint64) Option {
	return func(c *runConfig) { c.seed = &seed }
}

// WithMetrics fills m with the run's structured measurements: packet and
// byte counts, retransmissions and drops, connection accounting, and
// simulated CPU time for both endpoints.
func WithMetrics(m *exp.Metrics) Option {
	return func(c *runConfig) { c.metrics = m }
}

// Run executes the scenario against the site and returns its measurements.
func Run(sc Scenario, site *webgen.Site, opts ...Option) (*RunResult, error) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.seed != nil {
		sc.Seed = *cfg.seed
	}
	return run(sc, site, cfg)
}

func run(sc Scenario, site *webgen.Site, cfg runConfig) (*RunResult, error) {
	if err := validateMode(sc); err != nil {
		return nil, err
	}
	recordScenario(sc)
	s := sim.New()
	s.SetEventLimit(50_000_000)
	net := tcpsim.NewNetwork(s)
	clientHost := net.AddHost("client")
	serverHost := net.AddHost("server")

	// The bus exists for a timeline run (every layer publishes into it),
	// for a stats run (only the client's request-lifecycle spans are
	// needed, so the other layers stay unwired and the bus stays small),
	// and for a flight-recorded run (the recorder subscribes to the
	// fully-wired bus but retains only a bounded tail). Wiring the bus
	// never perturbs the simulation — publishers observe, they do not
	// schedule — so a flight-armed run still measures byte-identically.
	flight := telemetry.ActiveFlight()
	wired := cfg.timeline || cfg.blame || flight != nil
	var bus *obs.Bus
	if wired || cfg.stats {
		bus = obs.New(s)
	}
	if wired {
		net.Obs = bus
	}

	var rng *sim.Rand
	cpuJitter := 0.0
	pathOpts := netem.PathOptions{}
	if wired {
		pathOpts.Observer = func(ev netem.LinkEvent) {
			if ev.Dropped {
				bus.WireDrop(ev.Link, ev.WireBytes)
				return
			}
			bus.WireSend(ev.Link, ev.WireBytes, ev.Start, ev.Done, ev.Arrive)
		}
	}
	if sc.Jitter {
		rng = sim.NewRand(sc.Seed | 1)
		cpuJitter = 0.10
		pathOpts.Rng = rng
		pathOpts.RTTJitterFrac = 0.03
	}
	if sc.ModemCompression {
		if sc.Env != netem.PPP {
			return nil, fmt.Errorf("core: modem compression only applies to PPP, not %v", sc.Env)
		}
		pathOpts.ModemCompression = func() netem.StreamCompressor {
			return lzw.NewModemCompressor()
		}
	}
	// A fault profile scripts deterministic server misbehaviour and/or
	// link loss from the run's seed. Fault-free runs take no Script call
	// and no extra RNG stream, so they stay byte-identical to before the
	// fault layer existed.
	var script faults.Script
	if sc.Fault != faults.None {
		script = sc.Fault.Script(sc.Seed)
	}
	// The client's Env is the last-mile link; with a proxy it terminates
	// at the proxy host and a second link continues to the origin. Link
	// faults land on whichever link reaches the origin.
	var proxyHost *tcpsim.Host
	lastOpts := pathOpts
	if sc.Fault != faults.None && sc.Proxy == nil {
		lastOpts.LossAB = script.LossC2S
		lastOpts.LossBA = script.LossS2C
	}
	path := netem.NewEnvPath(s, sc.Env, lastOpts)
	if sc.Proxy != nil {
		proxyHost = net.AddHost("proxy")
		net.ConnectHosts(clientHost, proxyHost, path)
		upOpts := pathOpts
		upOpts.ModemCompression = nil // modem framing belongs to the last mile
		if sc.Fault != faults.None {
			upOpts.LossAB = script.LossC2S
			upOpts.LossBA = script.LossS2C
		}
		upstreamPath := netem.NewEnvPath(s, sc.Proxy.Env, upOpts)
		net.ConnectHosts(proxyHost, serverHost, upstreamPath)
	} else {
		net.ConnectHosts(clientHost, serverHost, path)
	}
	capture := trace.Attach(net)
	defer capture.Detach()

	serverCfg := httpserver.Config{Profile: sc.Server}
	if sc.ServerOverride != nil {
		serverCfg = *sc.ServerOverride
		serverCfg.Profile = sc.Server
	}
	clientCfg := sc.Client.Config()
	if sc.ClientOverride != nil {
		clientCfg = *sc.ClientOverride
	}
	// "we turned the Nagle algorithm off in both the client and the
	// server. This was the first change to the server" — the paper's
	// measured configurations run the server with TCP_NODELAY, which
	// matters for responses whose final segment is partial. A
	// ServerOverride can re-enable Nagle for the ablation experiments.
	if sc.ServerOverride == nil {
		serverCfg.NoDelay = true
	}
	if sc.MuxFIFO {
		clientCfg.MuxFIFO = true
		serverCfg.MuxFIFO = true
	}
	serverCfg.EnableDeflate = serverCfg.EnableDeflate || clientCfg.AcceptDeflate
	if wired {
		serverCfg.Obs = bus
	}
	clientCfg.Obs = bus
	if sc.Fault != faults.None {
		serverCfg.Faults = script.Server
		serverCfg.MuxFaults = script.Mux
		if clientCfg.Recovery == nil {
			pol := faults.Default()
			clientCfg.Recovery = &pol
		}
	}

	served := site
	if sc.ReviseFraction > 0 {
		if sc.Workload != httpclient.Revalidate {
			return nil, fmt.Errorf("core: ReviseFraction applies to the revalidation workload")
		}
		var err error
		served, err = site.Revise(sc.ReviseFraction, sc.Seed+101)
		if err != nil {
			return nil, err
		}
	}
	server := httpserver.New(s, serverHost, serverPort, served, serverCfg, rng, cpuJitter)

	var px *proxy.Proxy
	if sc.Proxy != nil {
		capacity := sc.Proxy.CacheBytes
		if capacity == 0 {
			capacity = 8 << 20
		}
		pcache := cache.New(capacity, func() sim.Time { return s.Now() })
		if sc.Proxy.Warm || sc.Proxy.Stale {
			// Prime "as if" an earlier client had pulled the site through:
			// store each object's canonical origin response; Stale then
			// expires it so every use revalidates.
			for _, p := range site.Paths() {
				obj, _ := site.Object(p)
				e := pcache.Store(p, httpserver.CanonicalResponse(sc.Server, obj))
				if e != nil && sc.Proxy.Stale {
					pcache.Expire(e)
				}
			}
		}
		proxyCfg := proxy.Config{Cache: pcache, NoDelay: true}
		if wired {
			proxyCfg.Obs = bus
		}
		if sc.Fault != faults.None {
			pol := faults.Default()
			proxyCfg.Recovery = &pol
		}
		px = proxy.New(s, proxyHost, proxyPort, "server", serverPort,
			proxyCfg, rng, cpuJitter)
	}

	clientCache := httpclient.NewCache()
	if sc.Workload == httpclient.Revalidate {
		clientCache.Prime(site)
	}
	targetHost, targetPort := "server", serverPort
	if sc.Proxy != nil {
		targetHost, targetPort = "proxy", proxyPort
	}
	robot := httpclient.NewRobot(s, clientHost, targetHost, targetPort, clientCfg, clientCache, rng, cpuJitter)

	s.Schedule(0, func() {
		robot.Start("/", sc.Workload, nil)
	})

	// Causality analyzer: a passive subscriber accumulating cause
	// intervals per connection as events flow. It only reads, so an
	// armed run stays byte-identical to an unarmed one.
	var blameCol *causality.Collector
	if cfg.blame {
		blameCol = causality.NewCollector()
		detach := bus.Subscribe(blameCol.Observe)
		defer detach()
	}

	// Flight recorder: retain the tail of the event stream in a bounded
	// ring, note whether the client's recovery watchdog ever fired, and
	// keep a dump closure ready for the three triggers — panic, watchdog,
	// cell error. The subscriber runs on the simulation goroutine and
	// only appends to the ring, so recording never perturbs the run.
	var ring *telemetry.Ring[obs.Event]
	sawWatchdog := false
	if flight != nil {
		ring = telemetry.NewRing[obs.Event](flight.Events())
		detach := bus.Subscribe(func(ev obs.Event) {
			ring.Push(ev)
			if ev.Kind == obs.KindClientTimeout {
				sawWatchdog = true
			}
		})
		defer detach()
	}
	dump := func(reason string) {
		if flight == nil {
			return
		}
		flight.Dump(telemetry.DumpSource{
			Label:   sc.String(),
			Reason:  reason,
			Events:  ring.Len(),
			Dropped: ring.Dropped(),
			Perfetto: func(w *os.File) error {
				return obs.WritePerfettoEvents(w, ring.Snapshot(), bus.Conns(), bus.Spans())
			},
			Pcap: func(w *os.File) error {
				return capture.WritePcap(w)
			},
		})
	}
	if flight != nil {
		defer func() {
			if r := recover(); r != nil {
				dump("panic")
				panic(r)
			}
		}()
	}

	// Live engine telemetry: with a stream active, run with safe-point
	// polls publishing the engine's counters into the process registry.
	// RunWithPoll fires the exact same events in the exact same order as
	// Run, so an observed run still produces byte-identical results.
	var tracker *telemetry.SimTracker
	if telemetry.Active() {
		tracker = telemetry.NewSimTracker(telemetry.Default())
	}
	wallStart := time.Now()
	if tracker != nil {
		s.RunWithPoll(telemetry.PollEvents, func() {
			st := s.Stats()
			tracker.Poll(st.Fired, st.Pending, st.WheelDepth, st.PoolInUse)
		})
		tracker.Finish(s.Stats().Fired)
	} else {
		s.Run()
	}
	if testHookAfterRun != nil {
		testHookAfterRun(sc)
	}
	wall := time.Since(wallStart)

	if !robot.Finished() {
		dump("error")
		return nil, fmt.Errorf("%w: %s", ErrDidNotFinish, sc)
	}
	if sawWatchdog {
		dump("watchdog")
	}
	res := &RunResult{
		Scenario: sc,
		Stats:    capture.Stats("client"),
		Client:   robot.Result(),
		Server:   server.Stats(),
	}
	if px != nil {
		res.Stats = capture.StatsBetween("client", "proxy")
		origin := capture.StatsBetween("proxy", "server")
		res.Origin = &origin
		pst := px.Stats()
		res.Proxy = &pst
	}
	res.Elapsed = res.Stats.Elapsed()
	if cfg.capture {
		res.Capture = capture
	}
	if cfg.timeline {
		res.Timeline = bus
	}
	if cfg.blame {
		res.Blame = blameCol.Finish(bus)
	}
	if cfg.stats {
		// Per-request latencies derive from the client's lifecycle spans:
		// queue = decided-to-fetch → request handed to TCP, TTFB = request
		// written → first response byte, total = decided → complete.
		// Intermediary-originated spans (Via) and abandoned spans never
		// completed carry no client-visible latency and are skipped.
		ls := &stats.LatencySet{}
		for _, sp := range bus.Spans() {
			if sp.Via != "" || sp.Done == obs.NoTime || sp.Written == obs.NoTime {
				continue
			}
			ls.Observe(int64(sp.Written-sp.Queued), int64(sp.FirstByte-sp.Written), int64(sp.Done-sp.Queued))
		}
		res.Latency = ls
	}
	if m := cfg.metrics; m != nil {
		st := res.Stats
		m.Scenario = sc.String()
		m.Seed = sc.Seed
		m.Packets = st.Packets
		m.PacketsC2S = st.ClientToServer
		m.PacketsS2C = st.ServerToClient
		m.PayloadBytes = st.PayloadBytes
		m.WireBytes = st.WireBytes
		m.LinkWireBytes = path.WireBits() / 8
		m.OverheadPct = st.OverheadPct()
		m.ElapsedSeconds = res.Elapsed.Seconds()
		m.Retransmissions = st.Retransmissions
		m.RTOTimeouts = int(net.RTOTimeouts())
		m.Drops = path.Dropped()
		m.Dials = int(clientHost.Dials())
		m.SocketsUsed = res.Client.SocketsUsed
		m.MaxOpenConns = res.Client.MaxSimultaneousConns
		m.ClientCPUSeconds = robot.CPUTime().Seconds()
		m.ServerCPUSeconds = server.CPUTime().Seconds()
		m.Responses200 = res.Client.Responses200
		m.Responses304 = res.Client.Responses304
		m.Responses206 = res.Client.Responses206
		m.Errors = res.Client.Errors
		m.Retried = res.Client.Retried
		m.Timeouts = res.Client.Timeouts
		m.RequestsRecovered = res.Client.RequestsRecovered
		m.RequestsFailed = res.Client.RequestsFailed
		m.WastedBytes = res.Client.WastedBytes
		m.RecoverySeconds = res.Client.RecoverySeconds
		m.Fallbacks = res.Client.Fallbacks
		m.FaultsInjected = res.Server.FaultsInjected
		m.StreamsOpened = res.Client.StreamsOpened
		m.PushPromised = res.Client.PushPromised
		m.PushUsed = res.Client.PushUsed
		m.PushWastedBytes = res.Client.PushWastedBytes
		m.HeaderBytesSaved = res.Client.HeaderBytesSaved
		m.FlowControlStalls = res.Client.FlowControlStalls + res.Server.FlowControlStalls
		m.StreamsReset = res.Client.StreamsReset
		m.Goaways = res.Client.Goaways
		m.DeadlocksDetected = res.Client.DeadlocksDetected
		m.SimEvents = s.Stats().Fired
		if secs := wall.Seconds(); secs > 0 {
			m.SimEventsPerSec = float64(m.SimEvents) / secs
		}
		if cfg.timeline {
			m.TimelineEvents = bus.Len()
			m.TimelineSpans = len(bus.Spans())
		}
		if a := res.Blame; a != nil {
			m.BlameConnectMs = a.Total.Ms(causality.CatConnect)
			m.BlameRTOMs = a.Total.Ms(causality.CatRTO)
			m.BlameNagleMs = a.Total.Ms(causality.CatNagle)
			m.BlameFlowMs = a.Total.Ms(causality.CatFlow)
			m.BlameSlowStartMs = a.Total.Ms(causality.CatSlowStart)
			m.BlameServerMs = a.Total.Ms(causality.CatServer)
			m.BlameHOLMs = a.Total.Ms(causality.CatHOL)
			m.BlameWireMs = a.Total.Ms(causality.CatWire)
			m.CriticalPathMs = float64(a.CriticalPath) / 1e6
		}
		m.Dist = res.Latency.DistMap()
		if res.Proxy != nil {
			p := res.Proxy
			m.CacheHits = p.Hits
			m.CacheMisses = p.Misses
			m.CacheRevalidations = p.Revalidations
			if p.Requests > 0 {
				m.CacheHitRatio = float64(p.Hits) / float64(p.Requests)
			}
			m.CacheBytesSaved = p.BytesFromCache
			m.UpstreamRequests = p.UpstreamRequests
			m.OriginPackets = res.Origin.Packets
			m.OriginBytes = res.Origin.PayloadBytes
		}
	}
	return res, nil
}

// Avg is the paper's per-cell measurement: packets, payload bytes,
// elapsed seconds, and TCP/IP overhead percentage, averaged over repeated
// runs.
type Avg struct {
	Runs        int
	Packets     float64
	Bytes       float64
	Seconds     float64
	OverheadPct float64

	SocketsUsed float64
	Errors      int
}

// DefaultRuns is the paper's repetition count.
const DefaultRuns = 5

var (
	siteOnce sync.Once
	siteVal  *webgen.Site
	siteErr  error
)

// DefaultSite returns the shared Microscape site, synthesized once per
// process.
func DefaultSite() (*webgen.Site, error) {
	siteOnce.Do(func() {
		siteVal, siteErr = webgen.Microscape(webgen.Options{Seed: 1})
	})
	return siteVal, siteErr
}
