package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// MuxFaultRow is one cell of the mux fault-recovery experiment: one
// client mode under one framed-protocol fault profile in one
// environment, with the mux recovery counters alongside the shared
// recovery accounting.
type MuxFaultRow struct {
	Env   string
	Fault string
	Mode  string

	Packets float64
	Seconds float64

	// Shared recovery accounting, averaged over the sweep population.
	Errors      float64
	Retried     float64
	Timeouts    float64
	Recovered   float64
	Failed      float64
	WastedKB    float64
	RecoverySec float64
	Fallbacks   float64

	// Framed-protocol recovery accounting: streams torn down by
	// RST_STREAM for error recovery, GOAWAY announcements on the
	// session, and watchdog expiries proven to be flow-control
	// deadlocks (usually zero — recovery clears wedged windows before
	// they become terminal).
	StreamsReset float64
	Goaways      float64
	Deadlocks    float64
}

// muxFaultProfiles are the injected profiles the experiment sweeps, in
// table order: the undisturbed baseline, then every framed-protocol
// fault.
var muxFaultProfiles = []faults.Profile{
	faults.None,
	faults.MuxRst,
	faults.MuxTruncate,
	faults.MuxGarbage,
	faults.MuxPushAbort,
	faults.MuxStall,
}

// muxFaultModes are the client configurations the experiment compares.
// Pipelined HTTP/1.1 is the baseline: the framed faults are inert on
// it (their injection hook lives in the server's mux path), so its
// rows show what the disruption costs relative to an untouched
// transfer. Burst likewise runs over HTTP/1.x and rides along as the
// aggregated-transfer control.
var muxFaultModes = []httpclient.Mode{
	httpclient.ModeHTTP11Pipelined,
	httpclient.ModeMux,
	httpclient.ModeMuxPush,
	httpclient.ModeBurst,
}

// MuxFaultsTable runs the mux fault-recovery experiment: the framed
// client modes (against the pipelined and burst baselines) fetching
// the site first-time over PPP and WAN while a scripted framed-
// protocol fault — a mid-stream RST_STREAM, a truncated DATA frame, a
// garbage frame, an aborted push, or a SETTINGS stall — disrupts the
// session. Every faulted client runs the default recovery policy, so
// the table answers the robustness question the mux grid defers: when
// a multiplexed session misbehaves, what does detection (strict
// validation, per-stream watchdogs, deadlock detectors) and recovery
// (stream resets, session redial with replay, the fallback ladder)
// cost in packets, time, and wasted bytes.
func (sw Sweep) MuxFaultsTable(site *webgen.Site) ([]MuxFaultRow, error) {
	envs := []netem.Environment{netem.PPP, netem.WAN}
	var rows []MuxFaultRow
	for ei, env := range envs {
		for fi, prof := range muxFaultProfiles {
			for mi, mode := range muxFaultModes {
				sc := Scenario{
					Server:   httpserver.ProfileApache,
					Client:   mode,
					Env:      env,
					Workload: httpclient.FirstTime,
					Seed:     21000 + uint64(ei)*1000 + uint64(fi)*100 + uint64(mi),
					Fault:    prof,
				}
				results, err := sw.series(sc, site, 31)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sc, err)
				}
				row := MuxFaultRow{Env: env.String(), Fault: prof.String(), Mode: mode.String()}
				n := float64(len(results))
				for _, res := range results {
					c := res.Client
					row.Packets += float64(res.Stats.Packets) / n
					row.Seconds += res.Elapsed.Seconds() / n
					row.Errors += float64(c.Errors) / n
					row.Retried += float64(c.Retried) / n
					row.Timeouts += float64(c.Timeouts) / n
					row.Recovered += float64(c.RequestsRecovered) / n
					row.Failed += float64(c.RequestsFailed) / n
					row.WastedKB += float64(c.WastedBytes) / 1024 / n
					row.RecoverySec += c.RecoverySeconds / n
					row.Fallbacks += float64(c.Fallbacks) / n
					row.StreamsReset += float64(c.StreamsReset) / n
					row.Goaways += float64(c.Goaways) / n
					row.Deadlocks += float64(c.DeadlocksDetected) / n
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
