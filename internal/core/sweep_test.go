package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/exp"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

// testScenario is a cheap LAN cell used throughout the sweep tests.
func testScenario() Scenario {
	return Scenario{
		Server: httpserver.ProfileApache, Client: httpclient.ModeHTTP11Pipelined,
		Env: netem.LAN, Workload: httpclient.FirstTime, Seed: 42,
	}
}

// TestSweepMatchesLegacyRunAveraged pins the compatibility contract: a
// single-family sweep reproduces the historical RunAveraged schedule
// exactly.
func TestSweepMatchesLegacyRunAveraged(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario()
	want, err := Sweep{Runs: 3}.RunAveraged(sc, site)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweep{Runs: 3, Parallel: 8}.RunAveraged(sc, site)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("parallel sweep diverged from legacy: %+v vs %+v", got, want)
	}
}

// TestSweepParallelDeterminism runs the same sweep serially and on a
// wide pool and requires identical aggregates and identical collected
// metrics records.
func TestSweepParallelDeterminism(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario()
	run := func(parallel int) (Avg, []exp.Metrics, error) {
		col := exp.NewCollector()
		sw := Sweep{Runs: 2, Seeds: 2, Parallel: parallel, Experiment: "det", Collector: col}
		avg, err := sw.RunAveraged(sc, site)
		return avg, col.Records(), err
	}
	serialAvg, serialRecs, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	parAvg, parRecs, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if serialAvg != parAvg {
		t.Errorf("aggregates differ: serial %+v parallel %+v", serialAvg, parAvg)
	}
	// SimEventsPerSec is wall-clock throughput and legitimately varies
	// between executions; everything else must match exactly.
	for i := range serialRecs {
		serialRecs[i].SimEventsPerSec = 0
	}
	for i := range parRecs {
		parRecs[i].SimEventsPerSec = 0
	}
	if !reflect.DeepEqual(serialRecs, parRecs) {
		t.Errorf("metrics records differ between parallel levels")
	}
	if len(serialRecs) != 4 {
		t.Fatalf("got %d records, want 4", len(serialRecs))
	}
	// CSV emission must be byte-identical too.
	var a, b bytes.Buffer
	ca, cb := exp.NewCollector(), exp.NewCollector()
	for _, m := range serialRecs {
		ca.Add(m)
	}
	for _, m := range parRecs {
		cb.Add(m)
	}
	if err := ca.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := cb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("CSV output differs between parallel levels")
	}
}

// TestSweepTableDeterminism exercises a whole table generator (the
// Nagle ablation, which mixes server overrides) at both pool widths.
func TestSweepTableDeterminism(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Sweep{Runs: 2, Parallel: 1}.NagleTable(site)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep{Runs: 2, Parallel: 8}.NagleTable(site)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("NagleTable differs between parallel levels:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestWithMetricsCounters checks the structured record against the run
// result it was filled from.
func TestWithMetricsCounters(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario()
	var m exp.Metrics
	res, err := Run(sc, site, WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if m.Scenario != sc.String() {
		t.Errorf("Scenario = %q, want %q", m.Scenario, sc.String())
	}
	if m.Seed != sc.Seed {
		t.Errorf("Seed = %d, want %d", m.Seed, sc.Seed)
	}
	if m.Packets != res.Stats.Packets || m.Packets <= 0 {
		t.Errorf("Packets = %d, want %d (> 0)", m.Packets, res.Stats.Packets)
	}
	if m.PacketsC2S+m.PacketsS2C != m.Packets {
		t.Errorf("directional packets %d+%d != total %d", m.PacketsC2S, m.PacketsS2C, m.Packets)
	}
	if m.PayloadBytes != res.Stats.PayloadBytes {
		t.Errorf("PayloadBytes = %d, want %d", m.PayloadBytes, res.Stats.PayloadBytes)
	}
	if m.WireBytes != m.PayloadBytes+int64(m.Packets)*int64(netem.IPTCPHeaderBytes) {
		t.Errorf("WireBytes = %d inconsistent with %d packets over %d payload bytes",
			m.WireBytes, m.Packets, m.PayloadBytes)
	}
	// Without modem compression the link serializes full wire bytes
	// plus per-packet framing, so it can never be below WireBytes.
	if m.LinkWireBytes < m.WireBytes {
		t.Errorf("LinkWireBytes = %d < WireBytes = %d", m.LinkWireBytes, m.WireBytes)
	}
	if m.ElapsedSeconds <= 0 {
		t.Errorf("ElapsedSeconds = %v, want > 0", m.ElapsedSeconds)
	}
	if m.Dials < 1 || m.SocketsUsed != res.Client.SocketsUsed {
		t.Errorf("Dials = %d, SocketsUsed = %d (result %d)", m.Dials, m.SocketsUsed, res.Client.SocketsUsed)
	}
	if m.MaxOpenConns < 1 {
		t.Errorf("MaxOpenConns = %d, want >= 1", m.MaxOpenConns)
	}
	if m.ClientCPUSeconds <= 0 || m.ServerCPUSeconds <= 0 {
		t.Errorf("CPU seconds = %v / %v, want > 0", m.ClientCPUSeconds, m.ServerCPUSeconds)
	}
	if m.Responses200 != res.Client.Responses200 {
		t.Errorf("Responses200 = %d, want %d", m.Responses200, res.Client.Responses200)
	}
}

// TestWithSeedOverride checks that WithSeed replaces the scenario seed
// and is recorded in the metrics.
func TestWithSeedOverride(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario()
	var m exp.Metrics
	if _, err := Run(sc, site, WithSeed(777), WithMetrics(&m)); err != nil {
		t.Fatal(err)
	}
	if m.Seed != 777 {
		t.Errorf("Seed = %d, want 777", m.Seed)
	}
}

// TestSweepSeedFamilies checks that Seeds widens the population with
// distinct seeds while family 0 keeps the legacy schedule.
func TestSweepSeedFamilies(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := testScenario()
	col := exp.NewCollector()
	if _, err := (Sweep{Runs: 2, Seeds: 2, Collector: col}).RunAveraged(sc, site); err != nil {
		t.Fatal(err)
	}
	recs := col.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	seen := make(map[uint64]bool)
	for _, m := range recs {
		if seen[m.Seed] {
			t.Errorf("duplicate seed %d across families", m.Seed)
		}
		seen[m.Seed] = true
	}
	if !seen[sc.Seed] || !seen[sc.Seed+7919] {
		t.Errorf("family 0 lost the legacy seed schedule: %v", seen)
	}
}
