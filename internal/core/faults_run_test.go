package core

import (
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/tcpsim"
)

// TestEarlyClosePipelinedRecovers reproduces the paper's §4 hazard — a
// server that closes after 5 responses while pipelined requests are
// outstanding — and checks the recovery policy end to end: every one of
// the 43 requests completes with the full payload, at least one request
// is re-issued on a fresh connection, the naive close shows up as an
// RST on the wire, and the retry budget is never exceeded.
func TestEarlyClosePipelinedRecovers(t *testing.T) {
	site := testSite(t)
	sc := Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Seed:     7,
		Fault:    faults.EarlyClose,
	}
	res, err := Run(sc, site, WithCapture())
	if err != nil {
		t.Fatalf("%s: %v", sc, err)
	}
	c := res.Client
	if !c.Done {
		t.Fatal("run did not finish")
	}
	if c.Responses200 != 43 {
		t.Fatalf("got %d 200s, want 43", c.Responses200)
	}
	if c.RequestsFailed != 0 {
		t.Fatalf("%d requests permanently failed", c.RequestsFailed)
	}
	if c.PayloadBytes < int64(site.TotalBytes()) {
		t.Fatalf("payload %d < site total %d", c.PayloadBytes, site.TotalBytes())
	}
	if c.Retried < 1 {
		t.Fatal("early close never forced a retry")
	}
	if budget := faults.Default().RetryBudget; c.Retried > budget {
		t.Fatalf("retried %d requests, budget is %d", c.Retried, budget)
	}
	if c.RequestsRecovered < 1 {
		t.Fatal("no retried request was recovered")
	}
	rsts := 0
	for _, ev := range res.Capture.Events() {
		if ev.Seg.Flags&tcpsim.FlagRST != 0 {
			rsts++
		}
	}
	if rsts == 0 {
		t.Fatal("no RST in the capture: naive close did not hit in-flight requests")
	}
	if res.Stats.Packets != len(res.Capture.Events()) {
		t.Fatalf("capture has %d packets, stats say %d", len(res.Capture.Events()), res.Stats.Packets)
	}
}

// TestStallFaultTimesOut checks the watchdog path: a server that goes
// silent after sending headers must trip the client timeout — not hang
// the run — and the request must complete on retry.
func TestStallFaultTimesOut(t *testing.T) {
	site := testSite(t)
	sc := Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Seed:     3,
		Fault:    faults.Stall,
	}
	res, err := Run(sc, site)
	if err != nil {
		t.Fatalf("%s: %v", sc, err)
	}
	c := res.Client
	if !c.Done || c.Responses200 != 43 {
		t.Fatalf("done=%v 200s=%d, want all 43", c.Done, c.Responses200)
	}
	if c.Timeouts < 1 {
		t.Fatal("stalled response did not trip the watchdog")
	}
	if c.RequestsFailed != 0 {
		t.Fatalf("%d requests permanently failed", c.RequestsFailed)
	}
}

// TestFaultMetricsFilled checks the recovery counters reach the
// structured metrics record.
func TestFaultMetricsFilled(t *testing.T) {
	sc := Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Seed:     7,
		Fault:    faults.EarlyClose,
	}
	var m exp.Metrics
	if _, err := Run(sc, testSite(t), WithMetrics(&m)); err != nil {
		t.Fatal(err)
	}
	if m.Retried < 1 || m.RequestsRecovered < 1 {
		t.Fatalf("metrics retried=%d recovered=%d, want both >= 1", m.Retried, m.RequestsRecovered)
	}
	if m.FaultsInjected < 1 {
		t.Fatalf("metrics faults_injected=%d, want >= 1", m.FaultsInjected)
	}
	if !strings.Contains(m.Scenario, "early-close") {
		t.Fatalf("metrics scenario %q does not name the fault", m.Scenario)
	}
}

func TestParseScenarioFaults(t *testing.T) {
	sc, err := ParseScenario("apache/pipelined/WAN/first/early-close")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fault != faults.EarlyClose || sc.Proxy != nil {
		t.Fatalf("got fault=%v proxy=%v", sc.Fault, sc.Proxy)
	}

	sc, err = ParseScenario("apache/pipelined/PPP/first/proxy:WAN:warm/burst-loss")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fault != faults.BurstLoss || sc.Proxy == nil || !sc.Proxy.Warm {
		t.Fatalf("got fault=%v proxy=%+v", sc.Fault, sc.Proxy)
	}

	// A fault profile must come last.
	if _, err = ParseScenario("apache/pipelined/WAN/first/early-close/proxy:WAN"); err == nil {
		t.Fatal("fault before topology accepted")
	} else if !strings.Contains(err.Error(), "final part") {
		t.Fatalf("wrong error: %v", err)
	}

	// Unknown fifth part: the error must enumerate the fault names.
	_, err = ParseScenario("apache/pipelined/WAN/first/bogus")
	if err == nil {
		t.Fatal("bogus fifth part accepted")
	}
	for _, name := range faults.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list fault profile %q", err, name)
		}
	}

	// Unknown sixth part: same contract via faults.Parse.
	_, err = ParseScenario("apache/pipelined/WAN/first/proxy:WAN/bogus")
	if err == nil {
		t.Fatal("bogus sixth part accepted")
	}
	if !strings.Contains(err.Error(), "early-close") {
		t.Fatalf("error %q does not enumerate fault profiles", err)
	}
}

func TestScenarioStringNamesFault(t *testing.T) {
	sc := Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Fault:    faults.Flap,
	}
	if s := sc.String(); !strings.Contains(s, "flap") {
		t.Fatalf("Scenario.String() = %q, missing fault segment", s)
	}
}
