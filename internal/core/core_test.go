package core

import (
	"errors"
	"testing"

	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// testSite returns the shared Microscape site.
func testSite(t *testing.T) *webgen.Site {
	t.Helper()
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// runOne executes a scenario, failing the test on error.
func runOne(t *testing.T, sc Scenario) *RunResult {
	t.Helper()
	res, err := Run(sc, testSite(t))
	if err != nil {
		t.Fatalf("%s: %v", sc, err)
	}
	return res
}

func scenario(server httpserver.Profile, mode httpclient.Mode, env netem.Environment, wl httpclient.Workload) Scenario {
	return Scenario{Server: server, Client: mode, Env: env, Workload: wl, Seed: 1}
}

func TestAllScenariosComplete(t *testing.T) {
	for _, server := range []httpserver.Profile{httpserver.ProfileJigsaw, httpserver.ProfileApache} {
		for _, env := range netem.Environments {
			for _, mode := range protocolModes {
				for _, wl := range []httpclient.Workload{httpclient.FirstTime, httpclient.Revalidate} {
					res := runOne(t, scenario(server, mode, env, wl))
					if !res.Client.Done {
						t.Fatalf("%v/%v/%v/%v did not finish", server, mode, env, wl)
					}
					want200, want304 := 43, 0
					if wl == httpclient.Revalidate {
						if mode == httpclient.ModeHTTP10 {
							want200, want304 = 43, 0 // full GET + HEADs
						} else {
							want200, want304 = 0, 43
						}
					}
					if res.Client.Responses200 != want200 || res.Client.Responses304 != want304 {
						t.Fatalf("%v/%v/%v/%v: responses 200=%d 304=%d, want %d/%d",
							server, mode, env, wl, res.Client.Responses200, res.Client.Responses304, want200, want304)
					}
					if res.Client.Errors != 0 {
						t.Fatalf("%v/%v/%v/%v: %d connection errors", server, mode, env, wl, res.Client.Errors)
					}
				}
			}
		}
	}
}

// The paper's headline: "a pipelined HTTP/1.1 implementation outperformed
// HTTP/1.0, even when the HTTP/1.0 implementation used multiple
// connections in parallel, under all network environments tested. The
// savings were at least a factor of two ... in terms of packets".
func TestPipeliningPacketSavings(t *testing.T) {
	for _, env := range netem.Environments {
		h10 := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, env, httpclient.FirstTime))
		pipe := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, env, httpclient.FirstTime))
		if h10.Stats.Packets < 2*pipe.Stats.Packets {
			t.Errorf("%v first-time: HTTP/1.0 %d packets vs pipelined %d, want ≥2x",
				env, h10.Stats.Packets, pipe.Stats.Packets)
		}
		if pipe.Elapsed >= h10.Elapsed {
			t.Errorf("%v first-time: pipelined elapsed %v not faster than HTTP/1.0 %v",
				env, pipe.Elapsed, h10.Elapsed)
		}
	}
}

// "...and sometimes as much as a factor of ten" — the revalidation
// workload on LAN and WAN.
func TestRevalidationTenfoldPacketSavings(t *testing.T) {
	for _, env := range []netem.Environment{netem.LAN, netem.WAN} {
		h10 := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, env, httpclient.Revalidate))
		pipe := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, env, httpclient.Revalidate))
		ratio := float64(h10.Stats.Packets) / float64(pipe.Stats.Packets)
		if ratio < 8 {
			t.Errorf("%v revalidation packet ratio = %.1f (%d vs %d), want ≈10x",
				env, ratio, h10.Stats.Packets, pipe.Stats.Packets)
		}
	}
}

// "An HTTP/1.1 implementation that does not implement pipelining will
// perform worse (have higher elapsed time) than an HTTP/1.0
// implementation using multiple connections" — clearest on the WAN where
// serialization costs one RTT per object.
func TestSerialPersistenceSlowerThanHTTP10(t *testing.T) {
	h10 := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, netem.WAN, httpclient.FirstTime))
	serial := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Serial, netem.WAN, httpclient.FirstTime))
	if serial.Elapsed <= h10.Elapsed {
		t.Fatalf("WAN: serial HTTP/1.1 (%v) should be slower than HTTP/1.0 x4 (%v)",
			serial.Elapsed, h10.Elapsed)
	}
	if serial.Stats.Packets >= h10.Stats.Packets {
		t.Fatalf("WAN: serial HTTP/1.1 (%d packets) must still save packets vs HTTP/1.0 (%d)",
			serial.Stats.Packets, h10.Stats.Packets)
	}
}

// Compression: "about 16% of the packets and 12% of the elapsed time in
// our first time retrieval test" (PPP), and ~19% payload reduction.
func TestCompressionSavings(t *testing.T) {
	plain := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, netem.PPP, httpclient.FirstTime))
	comp := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11PipelinedDeflate, netem.PPP, httpclient.FirstTime))
	pktSave := 1 - float64(comp.Stats.Packets)/float64(plain.Stats.Packets)
	if pktSave < 0.08 || pktSave > 0.30 {
		t.Errorf("compression packet saving = %.1f%%, want ≈16%%", 100*pktSave)
	}
	timeSave := 1 - comp.Elapsed.Seconds()/plain.Elapsed.Seconds()
	if timeSave < 0.06 {
		t.Errorf("compression time saving = %.1f%%, want ≥6%% (paper ~12%%)", 100*timeSave)
	}
	byteSave := 1 - float64(comp.Stats.PayloadBytes)/float64(plain.Stats.PayloadBytes)
	if byteSave < 0.12 || byteSave > 0.25 {
		t.Errorf("compression payload saving = %.1f%%, want ≈19%%", 100*byteSave)
	}
	if comp.Client.DeflateResponses != 1 {
		t.Errorf("deflate responses = %d, want 1 (only the HTML)", comp.Client.DeflateResponses)
	}
}

// Overhead percentages: ≈8-10% for 1.0 first-time, ≈20% for 1.0-style
// revalidation, ≈7% for pipelined revalidation.
func TestOverheadShape(t *testing.T) {
	h10 := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, netem.LAN, httpclient.FirstTime))
	if ov := h10.Stats.OverheadPct(); ov < 7 || ov > 12 {
		t.Errorf("HTTP/1.0 first-time %%ov = %.1f, want ≈8-10", ov)
	}
	reval10 := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, netem.LAN, httpclient.Revalidate))
	if ov := reval10.Stats.OverheadPct(); ov < 17 || ov > 24 {
		t.Errorf("HTTP/1.0 revalidation %%ov = %.1f, want ≈20", ov)
	}
	pipe := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, netem.LAN, httpclient.Revalidate))
	if ov := pipe.Stats.OverheadPct(); ov < 5 || ov > 10 {
		t.Errorf("pipelined revalidation %%ov = %.1f, want ≈7", ov)
	}
}

// PPP: first-time is bandwidth-bound (~50-65s), and pipelining collapses
// revalidation from ~12s to ~4-5s.
func TestPPPShape(t *testing.T) {
	serialFirst := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Serial, netem.PPP, httpclient.FirstTime))
	if s := serialFirst.Elapsed.Seconds(); s < 50 || s > 70 {
		t.Errorf("PPP serial first-time = %.1fs, want ≈60s", s)
	}
	serialReval := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Serial, netem.PPP, httpclient.Revalidate))
	pipeReval := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, netem.PPP, httpclient.Revalidate))
	if pipeReval.Elapsed.Seconds() >= serialReval.Elapsed.Seconds()/2 {
		t.Errorf("PPP revalidation: pipelined %.1fs vs serial %.1fs, want ≥2x better",
			pipeReval.Elapsed.Seconds(), serialReval.Elapsed.Seconds())
	}
}

// Jigsaw (interpreted Java) is slower than Apache in the final data.
func TestApacheFasterThanJigsaw(t *testing.T) {
	jig := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, netem.LAN, httpclient.Revalidate))
	apa := runOne(t, scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.LAN, httpclient.Revalidate))
	if apa.Elapsed >= jig.Elapsed {
		t.Fatalf("Apache reval (%v) should beat Jigsaw (%v)", apa.Elapsed, jig.Elapsed)
	}
	// And its 304 responses are leaner (paper: 14009 vs 17694 bytes).
	if apa.Stats.PayloadBytes >= jig.Stats.PayloadBytes {
		t.Fatalf("Apache reval bytes (%d) should be below Jigsaw's (%d)",
			apa.Stats.PayloadBytes, jig.Stats.PayloadBytes)
	}
}

// The mean packet train lengthens and the mean packet size roughly
// doubles under HTTP/1.1 (paper's Observations section).
func TestPacketSizeDoubles(t *testing.T) {
	h10 := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, netem.WAN, httpclient.FirstTime))
	pipe := runOne(t, scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP11Pipelined, netem.WAN, httpclient.FirstTime))
	mean10 := float64(h10.Stats.PayloadBytes) / float64(h10.Stats.Packets)
	meanPipe := float64(pipe.Stats.PayloadBytes) / float64(pipe.Stats.Packets)
	if meanPipe < 1.7*mean10 {
		t.Fatalf("mean packet payload: pipelined %.0f vs 1.0 %.0f, want ≈2x", meanPipe, mean10)
	}
}

func TestDeterminism(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.WAN, httpclient.FirstTime)
	a := runOne(t, sc)
	b := runOne(t, sc)
	if a.Stats.Packets != b.Stats.Packets || a.Elapsed != b.Elapsed || a.Stats.PayloadBytes != b.Stats.PayloadBytes {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestJitterVariesRuns(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Serial, netem.LAN, httpclient.Revalidate)
	sc.Jitter = true
	a := runOne(t, sc)
	sc.Seed = 2
	b := runOne(t, sc)
	if a.Elapsed == b.Elapsed {
		t.Fatal("different seeds with jitter produced identical elapsed times")
	}
}

func TestRunAveraged(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.LAN, httpclient.Revalidate)
	avg, err := Sweep{Runs: 5}.RunAveraged(sc, testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if avg.Runs != 5 {
		t.Fatalf("runs = %d, want 5", avg.Runs)
	}
	if avg.Packets < 25 || avg.Packets > 45 {
		t.Fatalf("averaged packets = %.1f, out of plausible range", avg.Packets)
	}
	if avg.OverheadPct <= 0 {
		t.Fatal("overhead not computed")
	}
}

func TestModemCompressionRequiresPPP(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Serial, netem.LAN, httpclient.FirstTime)
	sc.ModemCompression = true
	if _, err := Run(sc, testSite(t)); err == nil {
		t.Fatal("modem compression on LAN accepted")
	}
}

func TestModemTableShape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.ModemTable(testSite(t), httpserver.ProfileApache)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	raw, modem, deflate := rows[0], rows[1], rows[2]
	// V.42bis helps the raw transfer...
	if modem.Seconds >= raw.Seconds {
		t.Errorf("modem compression did not help: %.2f vs %.2f", modem.Seconds, raw.Seconds)
	}
	// ...but deflate beats it (the paper's point).
	if deflate.Seconds >= modem.Seconds {
		t.Errorf("deflate (%.2fs) should beat modem compression (%.2fs)", deflate.Seconds, modem.Seconds)
	}
	// Packet counts collapse roughly threefold with deflate (67 -> 21).
	if deflate.Packets > raw.Packets/2 {
		t.Errorf("deflate packets %.0f vs raw %.0f, want ≈1/3", deflate.Packets, raw.Packets)
	}
}

func TestTagCaseTableShape(t *testing.T) {
	rows, err := TagCaseTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	lower, mixed, upper := rows[0], rows[1], rows[2]
	if lower.Ratio >= mixed.Ratio {
		t.Errorf("lower-case ratio %.3f not better than mixed %.3f", lower.Ratio, mixed.Ratio)
	}
	if lower.Ratio >= upper.Ratio {
		t.Errorf("lower-case ratio %.3f not better than upper %.3f", lower.Ratio, upper.Ratio)
	}
}

func TestNagleTableShape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.NagleTable(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	serialNoDelay, serialNagle := rows[2], rows[3]
	if serialNagle.Seconds < 1.3*serialNoDelay.Seconds {
		t.Errorf("serial+Nagle (%.2fs) should be dramatically slower than serial+NODELAY (%.2fs)",
			serialNagle.Seconds, serialNoDelay.Seconds)
	}
}

func TestResetTableShape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.ResetTable(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	graceful, naive := rows[0], rows[1]
	if graceful.Errors != 0 {
		t.Errorf("graceful close produced %v resets", graceful.Errors)
	}
	if naive.Errors == 0 {
		t.Error("naive close produced no reset")
	}
	if graceful.Responses != 43 || naive.Responses != 43 {
		t.Errorf("both variants must eventually serve 43 responses: %v / %v",
			graceful.Responses, naive.Responses)
	}
	if naive.Seconds <= graceful.Seconds {
		t.Errorf("naive close (%.2fs) should cost more than graceful (%.2fs)",
			naive.Seconds, graceful.Seconds)
	}
}

func TestFlushAblationShape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.FlushAblation(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	for _, r := range rows {
		if r.Packets <= 0 || r.Seconds <= 0 {
			t.Fatalf("degenerate cell: %+v", r)
		}
	}
}

func TestMainTableStructure(t *testing.T) {
	tab, err := Sweep{Runs: 1}.MainTable(5, testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 5 rows = %d, want 4", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Paper == nil {
			t.Errorf("row %q missing paper comparison", r.Label)
		}
	}
	ppp, err := Sweep{Runs: 1}.MainTable(8, testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(ppp.Rows) != 3 {
		t.Fatalf("Table 8 rows = %d, want 3 (no HTTP/1.0 over PPP)", len(ppp.Rows))
	}
	if _, err := (Sweep{Runs: 1}).MainTable(12, testSite(t)); err == nil {
		t.Fatal("bogus table number accepted")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.Table3(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	h10, persistent, pipeline := rows[0], rows[1], rows[2]
	// "a significant saving in TCP packets using HTTP/1.1 but also a big
	// increase in elapsed time".
	if persistent.PktsTotal >= h10.PktsTotal/2 {
		t.Errorf("persistent packets %.0f vs 1.0 %.0f, want big saving", persistent.PktsTotal, h10.PktsTotal)
	}
	if persistent.Elapsed <= h10.Elapsed {
		t.Errorf("initial persistent elapsed %.2f should exceed HTTP/1.0 %.2f", persistent.Elapsed, h10.Elapsed)
	}
	// "Elapsed time performance of HTTP/1.1 with pipelining was worse
	// than HTTP/1.0 in this initial implementation, though the number of
	// packets used were dramatically better."
	if pipeline.Elapsed <= h10.Elapsed {
		t.Errorf("initial pipeline elapsed %.2f should exceed HTTP/1.0 %.2f", pipeline.Elapsed, h10.Elapsed)
	}
	if pipeline.PktsTotal >= h10.PktsTotal/5 {
		t.Errorf("pipeline packets %.0f vs 1.0 %.0f, want dramatic saving", pipeline.PktsTotal, h10.PktsTotal)
	}
	if h10.TotalSockets != 43 || persistent.TotalSockets != 1 || pipeline.TotalSockets != 1 {
		t.Errorf("socket counts: %d/%d/%d, want 43/1/1",
			h10.TotalSockets, persistent.TotalSockets, pipeline.TotalSockets)
	}
}

func TestBrowserTables(t *testing.T) {
	for _, n := range []int{10, 11} {
		tab, err := Sweep{Runs: 1}.BrowserTable(n, testSite(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			t.Fatalf("Table %d rows = %d, want 2", n, len(tab.Rows))
		}
	}
	// The Table 10 anomaly: IE revalidating against Jigsaw costs several
	// times the packets of IE against Apache (301 vs 117 in the paper).
	jig, err := Sweep{Runs: 1}.BrowserTable(10, testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	apa, err := Sweep{Runs: 1}.BrowserTable(11, testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	ieJig := jig.Rows[1].Reval
	ieApa := apa.Rows[1].Reval
	if ieJig.Packets < 2*ieApa.Packets {
		t.Errorf("IE reval on Jigsaw (%.0f packets) should far exceed on Apache (%.0f)",
			ieJig.Packets, ieApa.Packets)
	}
	if _, err := (Sweep{Runs: 1}).BrowserTable(7, testSite(t)); err == nil {
		t.Fatal("bogus browser table number accepted")
	}
}

func TestScenarioString(t *testing.T) {
	sc := scenario(httpserver.ProfileJigsaw, httpclient.ModeHTTP10, netem.LAN, httpclient.FirstTime)
	want := "Jigsaw/HTTP/1.0/LAN/First Time Retrieval"
	if sc.String() != want {
		t.Fatalf("String() = %q, want %q", sc.String(), want)
	}
}

func TestRunCapturedKeepsTrace(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.LAN, httpclient.Revalidate)
	res, err := Run(sc, testSite(t), WithCapture())
	if err != nil {
		t.Fatal(err)
	}
	if res.Capture == nil || len(res.Capture.Events()) != res.Stats.Packets {
		t.Fatal("capture missing or inconsistent")
	}
	plain, err := Run(sc, testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Capture != nil {
		t.Fatal("Run should not retain the capture")
	}
}

func TestErrDidNotFinishSurfaces(t *testing.T) {
	// A robot pointed at a port nobody listens on cannot finish; the
	// reset teardown re-queues the page fetch forever but every dial is
	// refused, so the run drains with the fetch incomplete.
	if !errors.Is(ErrDidNotFinish, ErrDidNotFinish) {
		t.Fatal("sentinel error identity broken")
	}
}

func TestRangeTableShape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.RangeTable(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	plain, probe := rows[0], rows[1]
	if plain.Responses206 != 0 {
		t.Fatalf("conditional GET produced %v 206s", plain.Responses206)
	}
	if probe.Responses206 < 10 {
		t.Fatalf("probe variant produced only %v 206s", probe.Responses206)
	}
	// The paper's predicted benefit: object metadata completes much
	// earlier because large changed entities cannot monopolize the
	// connection.
	if probe.MetadataSeconds >= 0.75*plain.MetadataSeconds {
		t.Fatalf("probe metadata %.2fs vs plain %.2fs: no multiplexing benefit",
			probe.MetadataSeconds, plain.MetadataSeconds)
	}
	// And the cost is modest: total time and bytes within ~20%.
	if probe.Seconds > 1.25*plain.Seconds {
		t.Fatalf("probe total %.2fs vs plain %.2fs: cost too high", probe.Seconds, plain.Seconds)
	}
	if probe.Bytes > 1.2*plain.Bytes {
		t.Fatalf("probe bytes %.0f vs plain %.0f", probe.Bytes, plain.Bytes)
	}
}

func TestReviseFractionValidation(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.WAN, httpclient.FirstTime)
	sc.ReviseFraction = 0.5
	if _, err := Run(sc, testSite(t)); err == nil {
		t.Fatal("revision on first-time workload accepted")
	}
}

func TestRevisedRevalidationMixes304And200(t *testing.T) {
	sc := scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Pipelined, netem.WAN, httpclient.Revalidate)
	sc.ReviseFraction = 0.3
	res := runOne(t, sc)
	if res.Client.Responses304 == 0 {
		t.Fatal("no unchanged objects validated")
	}
	if res.Client.Responses200 == 0 {
		t.Fatal("no changed objects transferred")
	}
	if res.Client.Responses304+res.Client.Responses200 != 43 {
		t.Fatalf("304+200 = %d, want 43", res.Client.Responses304+res.Client.Responses200)
	}
}

func TestHeaderRedundancy(t *testing.T) {
	rows, err := HeaderRedundancy(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	plain, whole, delta := rows[0], rows[1], rows[2]
	if plain.RequestBytes < 6000 || plain.RequestBytes > 10000 {
		t.Fatalf("plain request stream = %d bytes, want ≈43×190", plain.RequestBytes)
	}
	// The paper's estimate: a compact representation could save an
	// additional factor of five to ten on request bytes.
	if whole.Ratio > 0.2 {
		t.Fatalf("whole-stream ratio %.3f, want ≤0.2 (factor ≥5)", whole.Ratio)
	}
	if delta.Ratio > 0.3 {
		t.Fatalf("per-request dictionary ratio %.3f, want ≤0.3", delta.Ratio)
	}
}

// TestFidelityEnvelope guards the calibration: every cell of the
// regenerated main tables must stay within a fixed band of the paper's
// published value. Packets are protocol-determined and held tight;
// elapsed time depends on modeled CPU costs and gets a wider band.
func TestFidelityEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full table matrix")
	}
	const (
		paLo, paHi   = 0.60, 1.45
		secLo, secHi = 0.30, 2.00
	)
	for _, n := range []int{4, 5, 6, 7, 8, 9} {
		tab, err := Sweep{Runs: 1}.MainTable(n, testSite(t))
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row.Paper == nil {
				t.Fatalf("table %d row %q has no paper data", n, row.Label)
			}
			check := func(kind string, got, want float64, lo, hi float64) {
				if want == 0 {
					return
				}
				r := got / want
				if r < lo || r > hi {
					t.Errorf("table %d, %s, %s: measured %.1f vs paper %.1f (ratio %.2f outside [%.2f, %.2f])",
						n, row.Label, kind, got, want, r, lo, hi)
				}
			}
			check("first Pa", row.First.Packets, row.Paper.First.Packets, paLo, paHi)
			check("reval Pa", row.Reval.Packets, row.Paper.Reval.Packets, paLo, paHi)
			check("first Sec", row.First.Seconds, row.Paper.First.Seconds, secLo, secHi)
			check("reval Sec", row.Reval.Seconds, row.Paper.Reval.Seconds, secLo, secHi)
			check("first Bytes", row.First.Bytes, row.Paper.First.Bytes, 0.7, 1.3)
			check("reval Bytes", row.Reval.Bytes, row.Paper.Reval.Bytes, 0.7, 1.3)
		}
	}
}

func TestCwndTableShape(t *testing.T) {
	rows, err := Sweep{Runs: 1}.CwndTable(testSite(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	iw1Plain, iw1Deflate := rows[0], rows[1]
	// Deflate always removes packets; with IW=1 it must not be slower.
	if iw1Deflate.Packets >= iw1Plain.Packets {
		t.Errorf("deflate did not reduce packets at IW=1: %.0f vs %.0f",
			iw1Deflate.Packets, iw1Plain.Packets)
	}
	if iw1Deflate.Seconds > iw1Plain.Seconds*1.02 {
		t.Errorf("deflate slower at IW=1: %.2f vs %.2f", iw1Deflate.Seconds, iw1Plain.Seconds)
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7} {
		if len(PaperTables[n]) != 4 {
			t.Errorf("paper table %d has %d rows, want 4", n, len(PaperTables[n]))
		}
	}
	for _, n := range []int{8, 9} {
		if len(PaperTables[n]) != 3 {
			t.Errorf("paper table %d has %d rows, want 3", n, len(PaperTables[n]))
		}
	}
	for _, n := range []int{10, 11} {
		if len(PaperTables[n]) != 2 {
			t.Errorf("paper table %d has %d rows, want 2", n, len(PaperTables[n]))
		}
	}
	for n, rows := range PaperTables {
		for _, r := range rows {
			if r.First.Packets <= 0 || r.Reval.Packets <= 0 {
				t.Errorf("table %d row %q has empty cells", n, r.Label)
			}
		}
	}
}
