package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/report"
)

// TestBlameDoesNotPerturb is the attribution layer's ride-along
// contract: arming the analyzer must not change the run. Same packet
// trace, same Perfetto timeline, same client counters — the collector
// only reads bus events. Burst loss picks the busiest code paths
// (retransmits, watchdog, retries).
func TestBlameDoesNotPerturb(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := core.Scenario{
		Server:   httpserver.ProfileApache,
		Client:   httpclient.ModeHTTP11Pipelined,
		Env:      netem.WAN,
		Workload: httpclient.FirstTime,
		Seed:     11,
		Fault:    faults.BurstLoss,
	}
	runArtifacts := func(opts ...core.Option) (pcap, perfetto []byte, cl httpclient.Result) {
		res, err := core.Run(sc, site, opts...)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		var pc, pf bytes.Buffer
		if err := res.Capture.WritePcap(&pc); err != nil {
			t.Fatal(err)
		}
		if err := res.Timeline.WritePerfetto(&pf); err != nil {
			t.Fatal(err)
		}
		return pc.Bytes(), pf.Bytes(), res.Client
	}

	plainPcap, plainPerfetto, plainClient := runArtifacts(core.WithCapture(), core.WithTimeline())
	blamePcap, blamePerfetto, blameClient := runArtifacts(core.WithCapture(), core.WithTimeline(), core.WithBlame())
	if !bytes.Equal(plainPcap, blamePcap) {
		t.Error("pcap differs with attribution armed")
	}
	if !bytes.Equal(plainPerfetto, blamePerfetto) {
		t.Error("Perfetto timeline differs with attribution armed")
	}
	if plainClient != blameClient {
		t.Errorf("client result differs with attribution armed:\n  plain %+v\n  blame %+v", plainClient, blameClient)
	}
}

// TestCriticalPathProperties checks the chain's structural invariants
// on a real run: links tile contiguously earliest-first, the path
// length is the tiled interval, its blame partition conserves exactly,
// and OnPath marks exactly the chain's members.
func TestCriticalPathProperties(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(timelineScenario(netem.WAN), site, core.WithBlame())
	if err != nil {
		t.Fatal(err)
	}
	a := res.Blame
	if a == nil || len(a.Requests) == 0 {
		t.Fatal("no attribution produced")
	}
	if len(a.Chain) == 0 {
		t.Fatal("empty critical path")
	}
	for i, l := range a.Chain {
		if l.From >= l.To {
			t.Fatalf("link %d is empty or reversed: %+v", i, l)
		}
		if i > 0 && a.Chain[i-1].To != l.From {
			t.Fatalf("chain not contiguous at %d: %v then %v", i, a.Chain[i-1], l)
		}
	}
	span := a.Chain[len(a.Chain)-1].To.Sub(a.Chain[0].From)
	if a.CriticalPath != span {
		t.Fatalf("critical path %v != tiled interval %v", a.CriticalPath, span)
	}
	if a.CriticalBlame.Sum() != a.CriticalPath {
		t.Fatalf("critical blame %v != critical path %v", a.CriticalBlame.Sum(), a.CriticalPath)
	}
	onPath := map[int]bool{}
	for _, l := range a.Chain {
		onPath[int(l.Span)] = true
	}
	marked := 0
	for _, rb := range a.Requests {
		if rb.OnPath != onPath[int(rb.Span)] {
			t.Fatalf("span %d OnPath=%v but chain membership=%v", rb.Span, rb.OnPath, onPath[int(rb.Span)])
		}
		if rb.OnPath {
			marked++
		}
		if rb.B.Sum() != rb.Elapsed {
			t.Fatalf("span %d: blame sum %v != elapsed %v", rb.Span, rb.B.Sum(), rb.Elapsed)
		}
	}
	if marked == 0 {
		t.Fatal("no request marked OnPath")
	}
}

// TestWaterfallBlameGolden pins the blame-annotated waterfall — phase
// columns and critical-path flags — for the canonical pipelined PPP
// run, byte for byte.
func TestWaterfallBlameGolden(t *testing.T) {
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(timelineScenario(netem.PPP), site, core.WithTimeline(), core.WithBlame())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report.WriteWaterfall(&buf, res.Timeline, res.Blame)
	checkGolden(t, "waterfall_blame_ppp.txt", buf.Bytes())
}
