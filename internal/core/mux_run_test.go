package core

import (
	"errors"
	"testing"

	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

func muxScenario(mode httpclient.Mode, wl httpclient.Workload) Scenario {
	return Scenario{
		Server:   httpserver.ProfileApache,
		Client:   mode,
		Env:      netem.WAN,
		Workload: wl,
	}
}

// TestMuxFirstTime: the mux client fetches the whole site over one
// connection, one stream per object, with measurable header savings.
func TestMuxFirstTime(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	var m exp.Metrics
	res, err := Run(muxScenario(httpclient.ModeMux, httpclient.FirstTime), site, WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Client
	if !c.Done || c.Aborted {
		t.Fatalf("fetch not clean: %+v", c)
	}
	objects := len(site.Paths())
	if c.Responses200 != objects {
		t.Errorf("Responses200 = %d, want %d", c.Responses200, objects)
	}
	if c.SocketsUsed != 1 {
		t.Errorf("SocketsUsed = %d, want 1 (single multiplexed connection)", c.SocketsUsed)
	}
	if c.StreamsOpened != objects {
		t.Errorf("StreamsOpened = %d, want %d", c.StreamsOpened, objects)
	}
	if c.PushPromised != 0 || c.PushUsed != 0 {
		t.Errorf("push counters nonzero without push: %+v", c)
	}
	if c.HeaderBytesSaved <= 0 {
		t.Errorf("HeaderBytesSaved = %d, want > 0", c.HeaderBytesSaved)
	}
	if m.StreamsOpened != c.StreamsOpened || m.HeaderBytesSaved != c.HeaderBytesSaved {
		t.Errorf("metrics disagree with result: %+v vs %+v", m, c)
	}
}

// TestMuxPushFirstTime: the server promises every inline object; the
// empty-cache client claims every promise instead of requesting.
func TestMuxPushFirstTime(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(muxScenario(httpclient.ModeMuxPush, httpclient.FirstTime), site)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Client
	objects := len(site.Paths())
	inline := objects - 1
	if c.Responses200 != objects {
		t.Errorf("Responses200 = %d, want %d", c.Responses200, objects)
	}
	if c.PushPromised != inline {
		t.Errorf("PushPromised = %d, want %d", c.PushPromised, inline)
	}
	if c.PushUsed != inline {
		t.Errorf("PushUsed = %d, want %d (empty cache claims every promise)", c.PushUsed, inline)
	}
	if c.StreamsOpened != 1 {
		t.Errorf("StreamsOpened = %d, want 1 (only the page; the rest is pushed)", c.StreamsOpened)
	}
	if c.PushWastedBytes != 0 {
		t.Errorf("PushWastedBytes = %d, want 0 when every push is claimed", c.PushWastedBytes)
	}
}

// TestMuxPushRevalidate: a warm-cache client cancels every promise and
// revalidates instead; pushed bytes racing the cancellations are waste.
func TestMuxPushRevalidate(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(muxScenario(httpclient.ModeMuxPush, httpclient.Revalidate), site)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Client
	objects := len(site.Paths())
	if c.Responses304 != objects {
		t.Errorf("Responses304 = %d, want %d", c.Responses304, objects)
	}
	if c.PushUsed != 0 {
		t.Errorf("PushUsed = %d, want 0 (cache satisfies everything)", c.PushUsed)
	}
	if c.PushPromised == 0 {
		t.Errorf("PushPromised = 0, want > 0 (server pushed on the 304)")
	}
}

// TestBurstWorkloads: one request, one aggregated response first-time;
// one 304 on revalidation.
func TestBurstWorkloads(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(muxScenario(httpclient.ModeBurst, httpclient.FirstTime), site)
	if err != nil {
		t.Fatal(err)
	}
	if c := first.Client; c.Requests != 1 || c.Responses200 != 1 {
		t.Errorf("first-time burst: %d requests / %d 200s, want 1/1", c.Requests, c.Responses200)
	}
	var total int64
	for _, p := range site.Paths() {
		obj, _ := site.Object(p)
		total += int64(len(obj.Body))
	}
	if c := first.Client; c.PayloadBytes <= total {
		t.Errorf("burst payload %d, want > %d (bodies plus record headers)", c.PayloadBytes, total)
	}
	reval, err := Run(muxScenario(httpclient.ModeBurst, httpclient.Revalidate), site)
	if err != nil {
		t.Fatal(err)
	}
	if c := reval.Client; c.Requests != 1 || c.Responses304 != 1 {
		t.Errorf("reval burst: %d requests / %d 304s, want 1/1", c.Requests, c.Responses304)
	}
}

// TestMuxDeterministicRepeat: the same mux scenario twice produces
// identical results.
func TestMuxDeterministicRepeat(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []httpclient.Mode{httpclient.ModeMux, httpclient.ModeMuxPush, httpclient.ModeBurst} {
		sc := muxScenario(mode, httpclient.FirstTime)
		sc.Jitter = true
		sc.Seed = 7
		a, err := Run(sc, site)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sc, site)
		if err != nil {
			t.Fatal(err)
		}
		if a.Client != b.Client || a.Stats != b.Stats {
			t.Errorf("%v: repeated run diverged:\n%+v\nvs\n%+v", mode, a.Client, b.Client)
		}
	}
}

// TestMuxFaultModeValidation: every fault profile now runs (and
// finishes) on every client mode — the framed modes map HTTP/1.x
// server misbehaviour onto their own framing and recover — so the only
// up-front rejection left is a topology the simulator cannot build.
func TestMuxFaultModeValidation(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	combos := []struct {
		mode  httpclient.Mode
		fault faults.Profile
	}{
		{httpclient.ModeBurst, faults.Stall},
		{httpclient.ModeMux, faults.EarlyClose},
		{httpclient.ModeMuxPush, faults.Truncate},
		{httpclient.ModeMux, faults.Abort},
		{httpclient.ModeMux, faults.MuxRst},
		{httpclient.ModeMuxPush, faults.MuxPushAbort},
		{httpclient.ModeMux, faults.MuxStall},
	}
	for _, tc := range combos {
		sc := muxScenario(tc.mode, httpclient.FirstTime)
		sc.Fault = tc.fault
		res, err := Run(sc, site)
		if err != nil {
			t.Errorf("%v + %v: err = %v, want success", tc.mode, tc.fault, err)
			continue
		}
		if !res.Client.Done {
			t.Errorf("%v + %v: page did not finish: %+v", tc.mode, tc.fault, res.Client)
		}
	}
	// Link-level faults remain valid for the new modes.
	sc := muxScenario(httpclient.ModeMux, httpclient.FirstTime)
	sc.Fault = faults.BurstLoss
	if _, err := Run(sc, site); err != nil {
		t.Errorf("mux + burst-loss: %v, want success", err)
	}
	// The HTTP/1.x proxy cannot forward framed connections.
	sc = muxScenario(httpclient.ModeMuxPush, httpclient.FirstTime)
	sc.Fault = faults.None
	sc.Proxy = &ProxyScenario{Env: netem.WAN}
	if _, err := Run(sc, site); !errors.Is(err, ErrMuxTopology) {
		t.Errorf("proxy + mux: err = %v, want ErrMuxTopology", err)
	}
	// Burst is plain HTTP/1.1 and does proxy.
	sc = muxScenario(httpclient.ModeBurst, httpclient.FirstTime)
	sc.Proxy = &ProxyScenario{Env: netem.WAN}
	if _, err := Run(sc, site); err != nil {
		t.Errorf("proxy + burst: %v, want success", err)
	}
}

// TestMuxPerStreamWatchdog: a server that stalls one framed response
// mid-stream (headers, then silence) must not hang the page. On a link
// slow enough that the other streams are still flowing when the silent
// stream's deadline passes, the per-stream watchdog tears it down with
// RST_STREAM — no session abort — the request is retried, and every
// object still arrives.
func TestMuxPerStreamWatchdog(t *testing.T) {
	site, err := DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	sc := muxScenario(httpclient.ModeMux, httpclient.FirstTime)
	sc.Env = netem.PPP
	sc.Fault = faults.Stall
	res, err := Run(sc, site)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Client
	if !c.Done {
		t.Fatalf("page did not finish: %+v", c)
	}
	if c.StreamsReset == 0 {
		t.Errorf("StreamsReset = 0, want > 0 (watchdog must reset the silent stream)")
	}
	if c.RequestsFailed != 0 {
		t.Errorf("RequestsFailed = %d, want 0 (the reset request is retried)", c.RequestsFailed)
	}
	if objects := len(site.Paths()); c.Responses200 != objects {
		t.Errorf("Responses200 = %d, want %d", c.Responses200, objects)
	}
	if c.Retried == 0 {
		t.Errorf("Retried = 0, want > 0")
	}
}
