package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/webgen"
)

// muxModes are the multiplexed-protocol experiment's client
// configurations: the paper's four measured modes plus the three
// modes the mux layer adds, in table order.
var muxModes = []httpclient.Mode{
	httpclient.ModeHTTP10,
	httpclient.ModeHTTP11Serial,
	httpclient.ModeHTTP11Pipelined,
	httpclient.ModeHTTP11PipelinedDeflate,
	httpclient.ModeMux,
	httpclient.ModeMuxPush,
	httpclient.ModeBurst,
}

// newModes are just the three mux-layer additions, for the fault and
// variance sections (the legacy modes already have their own fault and
// variance experiments).
var newModes = []httpclient.Mode{
	httpclient.ModeMux,
	httpclient.ModeMuxPush,
	httpclient.ModeBurst,
}

// MuxCell is one workload's measurements in the mux grid: the paper's
// packets/bytes/seconds quantities plus the multiplexing accounting.
type MuxCell struct {
	Packets float64
	KBytes  float64
	Seconds float64

	// Streams counts client-opened streams; Promised/Used the server's
	// push promises and the ones the client claimed; PushWasteKB pushed
	// kilobytes the client never wanted; HdrSavedKB the header-
	// compression win; Stalls flow-control window exhaustions on either
	// endpoint. All zero for the HTTP/1.x modes.
	Streams     float64
	Promised    float64
	Used        float64
	PushWasteKB float64
	HdrSavedKB  float64
	Stalls      float64
}

// MuxRow is one protocol mode in one environment, both workloads.
type MuxRow struct {
	Env  string
	Mode string

	First MuxCell
	Reval MuxCell
}

// MuxData is the multiplexed-protocol experiment: the full
// mode-comparison grid, plus fault-recovery and seed-variance sections
// for the three new modes.
type MuxData struct {
	Grid     []MuxRow
	Faults   []FaultRow
	Variance []VarianceRow
}

// muxFaults are the fault profiles this table's fault section sweeps:
// link-level disruptions, which stress the transports identically. The
// framed-protocol faults (mid-stream resets, garbage frames, …) have
// their own dedicated experiment, MuxFaultsTable.
var muxFaults = []faults.Profile{faults.None, faults.BurstLoss, faults.Flap}

// MuxTable runs the multiplexed-protocol experiment against the Apache
// profile: every mode (the paper's four plus mux, mux-push, and burst)
// across the three environments and both workloads, then the new modes
// under link faults and across seeded populations. It asks the paper's
// follow-on question — how much of pipelining's win does real
// multiplexing extend, what does server push buy (and waste), and what
// does aggregating the page into one response give up in cacheability.
func (sw Sweep) MuxTable(site *webgen.Site) (*MuxData, error) {
	data := &MuxData{}
	envs := []netem.Environment{netem.PPP, netem.WAN, netem.LAN}
	for ei, env := range envs {
		for mi, mode := range muxModes {
			row := MuxRow{Env: env.String(), Mode: mode.String()}
			for wi, wl := range []httpclient.Workload{httpclient.FirstTime, httpclient.Revalidate} {
				sc := Scenario{
					Server:   httpserver.ProfileApache,
					Client:   mode,
					Env:      env,
					Workload: wl,
					Seed:     18000 + uint64(ei)*1000 + uint64(mi)*10 + uint64(wi),
				}
				results, err := sw.series(sc, site, 29)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sc, err)
				}
				var cell MuxCell
				n := float64(len(results))
				for _, res := range results {
					c := res.Client
					cell.Packets += float64(res.Stats.Packets) / n
					cell.KBytes += float64(res.Stats.PayloadBytes) / 1024 / n
					cell.Seconds += res.Elapsed.Seconds() / n
					cell.Streams += float64(c.StreamsOpened) / n
					cell.Promised += float64(c.PushPromised) / n
					cell.Used += float64(c.PushUsed) / n
					cell.PushWasteKB += float64(c.PushWastedBytes) / 1024 / n
					cell.HdrSavedKB += float64(c.HeaderBytesSaved) / 1024 / n
					cell.Stalls += float64(c.FlowControlStalls+res.Server.FlowControlStalls) / n
				}
				if wl == httpclient.FirstTime {
					row.First = cell
				} else {
					row.Reval = cell
				}
			}
			data.Grid = append(data.Grid, row)
		}
	}

	// Fault section: the new modes under link-level disruption, with the
	// same recovery counters as the fault-injection experiment.
	for ei, env := range []netem.Environment{netem.PPP, netem.WAN} {
		for fi, prof := range muxFaults {
			for mi, mode := range newModes {
				sc := Scenario{
					Server:   httpserver.ProfileApache,
					Client:   mode,
					Env:      env,
					Workload: httpclient.FirstTime,
					Seed:     19000 + uint64(ei)*1000 + uint64(fi)*100 + uint64(mi),
					Fault:    prof,
				}
				results, err := sw.series(sc, site, 17)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sc, err)
				}
				row := FaultRow{Env: env.String(), Fault: prof.String(), Mode: mode.String()}
				n := float64(len(results))
				for _, res := range results {
					c := res.Client
					row.Packets += float64(res.Stats.Packets) / n
					row.Seconds += res.Elapsed.Seconds() / n
					row.Errors += float64(c.Errors) / n
					row.Retried += float64(c.Retried) / n
					row.Timeouts += float64(c.Timeouts) / n
					row.Recovered += float64(c.RequestsRecovered) / n
					row.Failed += float64(c.RequestsFailed) / n
					row.WastedKB += float64(c.WastedBytes) / 1024 / n
					row.Fallbacks += float64(c.Fallbacks) / n
				}
				data.Faults = append(data.Faults, row)
			}
		}
	}

	// Variance section: distributional robustness of the new modes,
	// clean and under burst loss.
	vsw := sw
	vsw.Stats = true
	for ei, env := range []netem.Environment{netem.PPP, netem.WAN} {
		for fi, prof := range varianceFaults {
			for mi, mode := range newModes {
				sc := Scenario{
					Server:   httpserver.ProfileApache,
					Client:   mode,
					Env:      env,
					Workload: httpclient.FirstTime,
					Seed:     20000 + uint64(ei)*1000 + uint64(fi)*100 + uint64(mi),
					Fault:    prof,
				}
				results, err := vsw.series(sc, site, 23)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sc, err)
				}
				secs := make([]float64, len(results))
				pkts := make([]float64, len(results))
				var lat stats.LatencySet
				for i, res := range results {
					secs[i] = res.Elapsed.Seconds()
					pkts[i] = float64(res.Stats.Packets)
					lat.Merge(res.Latency)
				}
				ms := func(v int64) float64 { return float64(v) / 1e6 }
				data.Variance = append(data.Variance, VarianceRow{
					Env: env.String(), Fault: prof.String(), Mode: mode.String(),
					N:        len(results),
					Seconds:  stats.Summarize(secs),
					Packets:  stats.Summarize(pkts),
					LatP50Ms: ms(lat.Total.Quantile(0.50)),
					LatP90Ms: ms(lat.Total.Quantile(0.90)),
					LatP99Ms: ms(lat.Total.Quantile(0.99)),
					LatMaxMs: ms(lat.Total.Max()),
				})
			}
		}
	}
	return data, nil
}
