package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/stats"
	"repro/internal/webgen"
)

// VarianceRow is one cell of the seed-variance experiment: one protocol
// mode in one environment under clean or burst-loss conditions, with
// the whole-fetch quantities reported as mean ± Student-t 95%
// confidence interval across the seeded population and the per-request
// total-latency quantiles from the population's merged histogram.
type VarianceRow struct {
	Env   string
	Fault string
	Mode  string

	// N is the number of independent runs behind the cell.
	N int

	Seconds stats.Summary
	Packets stats.Summary

	// LatP50Ms..LatMaxMs are per-request total-latency quantiles in
	// milliseconds, from the histograms of all N runs merged.
	LatP50Ms, LatP90Ms, LatP99Ms, LatMaxMs float64
}

// varianceFaults are the two loss conditions the experiment contrasts:
// the clean link every paper table used, and seeded Gilbert–Elliott
// burst loss.
var varianceFaults = []faults.Profile{faults.None, faults.BurstLoss}

// VarianceTable runs the seed-variance experiment: the four protocol
// modes fetching the site first-time over PPP and WAN, clean and under
// burst loss, each cell repeated across the sweep's seeded population.
// Where the paper reported one tcpdump-accounted number per cell, this
// reports the distribution — mean ± 95% CI for elapsed time and
// packets, and exact-rank latency quantiles per request — so a
// conclusion like "pipelining wins" can be checked for robustness to
// loss variance rather than taken from a single draw.
func (sw Sweep) VarianceTable(site *webgen.Site) ([]VarianceRow, error) {
	sw.Stats = true
	envs := []netem.Environment{netem.PPP, netem.WAN}
	var rows []VarianceRow
	for ei, env := range envs {
		for fi, prof := range varianceFaults {
			for mi, mode := range protocolModes {
				sc := Scenario{
					Server:   httpserver.ProfileApache,
					Client:   mode,
					Env:      env,
					Workload: httpclient.FirstTime,
					Seed:     16000 + uint64(ei)*1000 + uint64(fi)*100 + uint64(mi),
					Fault:    prof,
				}
				results, err := sw.series(sc, site, 23)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", sc, err)
				}
				secs := make([]float64, len(results))
				pkts := make([]float64, len(results))
				var lat stats.LatencySet
				for i, res := range results {
					secs[i] = res.Elapsed.Seconds()
					pkts[i] = float64(res.Stats.Packets)
					lat.Merge(res.Latency)
				}
				ms := func(v int64) float64 { return float64(v) / 1e6 }
				rows = append(rows, VarianceRow{
					Env: env.String(), Fault: prof.String(), Mode: mode.String(),
					N:        len(results),
					Seconds:  stats.Summarize(secs),
					Packets:  stats.Summarize(pkts),
					LatP50Ms: ms(lat.Total.Quantile(0.50)),
					LatP90Ms: ms(lat.Total.Quantile(0.90)),
					LatP99Ms: ms(lat.Total.Quantile(0.99)),
					LatMaxMs: ms(lat.Total.Max()),
				})
			}
		}
	}
	return rows, nil
}
