package core

// PaperCell is one measurement cell as printed in the paper (averages of
// five runs).
type PaperCell struct {
	Packets float64
	Bytes   float64
	Seconds float64
}

// PaperRow is one protocol row of a paper table: first-time retrieval and
// cache validation cells.
type PaperRow struct {
	Label        string
	First, Reval PaperCell
}

// PaperTables holds the published numbers from Tables 4-11, keyed by
// table number, for side-by-side comparison in reports and EXPERIMENTS.md.
var PaperTables = map[int][]PaperRow{
	4: { // Jigsaw - High Bandwidth, Low Latency (LAN)
		{"HTTP/1.0", PaperCell{510.2, 216289, 0.97}, PaperCell{374.8, 61117, 0.78}},
		{"HTTP/1.1", PaperCell{281.0, 191843, 1.25}, PaperCell{133.4, 17694, 0.89}},
		{"HTTP/1.1 Pipelined", PaperCell{181.8, 191551, 0.68}, PaperCell{32.8, 17694, 0.54}},
		{"HTTP/1.1 Pipelined w. compression", PaperCell{148.8, 159654, 0.71}, PaperCell{32.6, 17687, 0.54}},
	},
	5: { // Apache - High Bandwidth, Low Latency (LAN)
		{"HTTP/1.0", PaperCell{489.4, 215536, 0.72}, PaperCell{365.4, 60605, 0.41}},
		{"HTTP/1.1", PaperCell{244.2, 189023, 0.81}, PaperCell{98.4, 14009, 0.40}},
		{"HTTP/1.1 Pipelined", PaperCell{175.8, 189607, 0.49}, PaperCell{29.2, 14009, 0.23}},
		{"HTTP/1.1 Pipelined w. compression", PaperCell{139.8, 156834, 0.41}, PaperCell{28.4, 14002, 0.23}},
	},
	6: { // Jigsaw - High Bandwidth, High Latency (WAN)
		{"HTTP/1.0", PaperCell{565.8, 251913, 4.17}, PaperCell{389.2, 62348, 2.96}},
		{"HTTP/1.1", PaperCell{304.0, 193595, 6.64}, PaperCell{137.0, 18065.6, 4.95}},
		{"HTTP/1.1 Pipelined", PaperCell{214.2, 193887, 2.33}, PaperCell{34.8, 18233.2, 1.10}},
		{"HTTP/1.1 Pipelined w. compression", PaperCell{183.2, 161698, 2.09}, PaperCell{35.4, 19102.2, 1.15}},
	},
	7: { // Apache - High Bandwidth, High Latency (WAN)
		{"HTTP/1.0", PaperCell{559.6, 248655.2, 4.09}, PaperCell{370.0, 61887, 2.64}},
		{"HTTP/1.1", PaperCell{309.4, 191436.0, 6.14}, PaperCell{104.2, 14255, 4.43}},
		{"HTTP/1.1 Pipelined", PaperCell{221.4, 191180.6, 2.23}, PaperCell{29.8, 15352, 0.86}},
		{"HTTP/1.1 Pipelined w. compression", PaperCell{182.0, 159170.0, 2.11}, PaperCell{29.0, 15088, 0.83}},
	},
	8: { // Jigsaw - Low Bandwidth, High Latency (PPP) — no HTTP/1.0 row
		{"HTTP/1.1", PaperCell{309.6, 190687, 63.8}, PaperCell{89.2, 17528, 12.9}},
		{"HTTP/1.1 Pipelined", PaperCell{284.4, 190735, 53.3}, PaperCell{31.0, 17598, 5.4}},
		{"HTTP/1.1 Pipelined w. compression", PaperCell{234.2, 159449, 47.4}, PaperCell{31.0, 17591, 5.4}},
	},
	9: { // Apache - Low Bandwidth, High Latency (PPP)
		{"HTTP/1.1", PaperCell{308.6, 187869, 65.6}, PaperCell{89.0, 13843, 11.1}},
		{"HTTP/1.1 Pipelined", PaperCell{281.4, 187918, 53.4}, PaperCell{26.0, 13912, 3.4}},
		{"HTTP/1.1 Pipelined w. compression", PaperCell{233.0, 157214, 47.2}, PaperCell{26.0, 13905, 3.4}},
	},
	10: { // Jigsaw - browsers over PPP
		{"Netscape Navigator", PaperCell{339.4, 201807, 58.8}, PaperCell{108, 19282, 14.9}},
		{"Internet Explorer", PaperCell{360.3, 199934, 63.0}, PaperCell{301.0, 61009, 17.0}},
	},
	11: { // Apache - browsers over PPP
		{"Netscape Navigator", PaperCell{334.3, 199243, 58.7}, PaperCell{103.3, 23741, 5.9}},
		{"Internet Explorer", PaperCell{381.3, 204219, 60.6}, PaperCell{117.0, 23056, 8.3}},
	},
}

// PaperTable3 holds the initial (untuned) LAN revalidation investigation.
var PaperTable3 = struct {
	Labels                    []string
	MaxSockets, TotalSockets  []float64
	PktsC2S, PktsS2C, PktsAll []float64
	Elapsed                   []float64
}{
	Labels:       []string{"HTTP/1.0", "HTTP/1.1 Persistent", "HTTP/1.1 Pipeline"},
	MaxSockets:   []float64{6, 1, 1},
	TotalSockets: []float64{40, 1, 1},
	PktsC2S:      []float64{226, 70, 25},
	PktsS2C:      []float64{271, 153, 58},
	PktsAll:      []float64{497, 223, 83},
	Elapsed:      []float64{1.85, 4.13, 3.02},
}

// PaperModem holds the §8.2.1 modem-compression comparison (single GET of
// the HTML page over 28.8k): packets and seconds for Jigsaw and Apache.
var PaperModem = struct {
	UncompressedPa, UncompressedSec float64
	CompressedPa, CompressedSec     float64
}{
	UncompressedPa: 67, UncompressedSec: 12.21, // Jigsaw column
	CompressedPa: 21.0, CompressedSec: 4.35,
}
