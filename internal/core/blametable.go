package core

import (
	"fmt"

	"repro/internal/causality"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// BlameRow is one averaged cell of the blame experiment: whole-fetch
// elapsed time, the critical-path length, and the per-category delay
// attribution summed over the page's requests (mean across the sweep
// population, milliseconds).
type BlameRow struct {
	Label      string
	Seconds    float64
	CriticalMs float64
	Cats       [causality.NumCategories]float64
}

// BlameData is the blame experiment's result: the paper's §4 narrative
// as machine-checked numbers instead of hand-read packet traces.
type BlameData struct {
	// Nagle re-runs the Nagle ablation (WAN, first-time, server Nagle
	// re-enabled) with attribution: the serial client's per-object
	// stall shows up as a nonzero nagle bucket that vanishes under
	// pipelining.
	Nagle []BlameRow
	// Setup compares protocol modes on the PPP first-time workload
	// with the tuned server: connection setup dominates HTTP/1.0,
	// which pays a handshake per object.
	Setup []BlameRow
	// Sched is the stream-priority ablation: the mux modes with the
	// default (priority, id) pump vs strict FIFO scheduling, the delta
	// reported through the critical path.
	Sched []BlameRow
	// Why is a two-run diff ("why is mode A faster than mode B"):
	// per-category totals for a fixed-seed HTTP/1.0 vs pipelined run
	// on PPP, largest delta first.
	WhyA, WhyB string
	Why        []causality.DiffRow
}

// blameCell sweeps one scenario with attribution and averages it.
func (sw Sweep) blameCell(label string, sc Scenario, site *webgen.Site) (BlameRow, error) {
	swb := sw
	swb.Blame = true
	results, err := swb.series(sc, site, 29)
	if err != nil {
		return BlameRow{}, fmt.Errorf("%s: %w", sc, err)
	}
	row := BlameRow{Label: label}
	for _, res := range results {
		row.Seconds += res.Elapsed.Seconds()
		row.CriticalMs += float64(res.Blame.CriticalPath) / 1e6
		for c := causality.Category(0); c < causality.NumCategories; c++ {
			row.Cats[c] += res.Blame.Total.Ms(c)
		}
	}
	n := float64(len(results))
	row.Seconds /= n
	row.CriticalMs /= n
	for i := range row.Cats {
		row.Cats[i] /= n
	}
	return row, nil
}

// BlameTable runs the blame experiment.
func (sw Sweep) BlameTable(site *webgen.Site) (*BlameData, error) {
	d := &BlameData{}

	// §4's Nagle stall: server Nagle re-enabled, as in NagleTable. The
	// serial client pays a held final segment (and the client's own
	// Nagle) per object; pipelining coalesces responses so almost no
	// partial segment is left waiting.
	nagleVariants := []struct {
		label string
		mode  httpclient.Mode
	}{
		{"Serial client, server Nagle", httpclient.ModeHTTP11Serial},
		{"Pipelined client, server Nagle", httpclient.ModeHTTP11Pipelined},
	}
	for i, v := range nagleVariants {
		srv := httpserver.Config{Profile: httpserver.ProfileJigsaw, NoDelay: false}
		row, err := sw.blameCell(v.label, Scenario{
			Server: httpserver.ProfileJigsaw, Client: v.mode,
			Env: netem.WAN, Workload: httpclient.FirstTime,
			Seed:           21000 + uint64(i),
			ServerOverride: &srv,
		}, site)
		if err != nil {
			return nil, err
		}
		d.Nagle = append(d.Nagle, row)
	}

	// Connection setup on the modem link, tuned server: HTTP/1.0 dials
	// per object, HTTP/1.1 once.
	setupModes := []httpclient.Mode{
		httpclient.ModeHTTP10, httpclient.ModeHTTP11Serial, httpclient.ModeHTTP11Pipelined,
	}
	for i, mode := range setupModes {
		row, err := sw.blameCell(mode.String(), Scenario{
			Server: httpserver.ProfileApache, Client: mode,
			Env: netem.PPP, Workload: httpclient.FirstTime,
			Seed: 22000 + uint64(i),
		}, site)
		if err != nil {
			return nil, err
		}
		d.Setup = append(d.Setup, row)
	}

	// Stream-priority ablation: plain mux is insensitive (every stream
	// shares one priority band), but with server push the pushed
	// streams ride a lower band that FIFO ignores.
	schedVariants := []struct {
		label string
		mode  httpclient.Mode
		fifo  bool
	}{
		{"mux, (priority, id) pump", httpclient.ModeMux, false},
		{"mux, FIFO pump", httpclient.ModeMux, true},
		{"mux+push, (priority, id) pump", httpclient.ModeMuxPush, false},
		{"mux+push, FIFO pump", httpclient.ModeMuxPush, true},
	}
	for i, v := range schedVariants {
		row, err := sw.blameCell(v.label, Scenario{
			Server: httpserver.ProfileApache, Client: v.mode,
			Env: netem.PPP, Workload: httpclient.FirstTime,
			Seed:    23000 + uint64(i),
			MuxFIFO: v.fifo,
		}, site)
		if err != nil {
			return nil, err
		}
		d.Sched = append(d.Sched, row)
	}

	// The mode-diff table from two fixed single runs (no jitter, so
	// the explanation is exact, not averaged).
	diffRun := func(mode httpclient.Mode, seed uint64) (*causality.Analysis, error) {
		res, err := Run(Scenario{
			Server: httpserver.ProfileApache, Client: mode,
			Env: netem.PPP, Workload: httpclient.FirstTime,
			Seed: seed,
		}, site, WithBlame())
		if err != nil {
			return nil, err
		}
		return res.Blame, nil
	}
	a, err := diffRun(httpclient.ModeHTTP11Pipelined, 24000)
	if err != nil {
		return nil, err
	}
	b, err := diffRun(httpclient.ModeHTTP10, 24001)
	if err != nil {
		return nil, err
	}
	d.WhyA, d.WhyB = "pipelined/PPP", "http10/PPP"
	d.Why = causality.Diff(a, b)
	return d, nil
}
