package core

import (
	"sync/atomic"

	"repro/internal/exp"
	"repro/internal/netem"
	"repro/internal/webgen"
)

// seedFamilyStride separates the independent seed families a Sweep's
// Seeds knob adds. Family 0 uses the legacy single-family seed schedule
// unchanged, so Seeds=1 output is byte-identical to the historical code.
const seedFamilyStride = 1_000_003

// Sweep executes the repeated runs behind each experiment cell. The zero
// value performs a single serial run per cell; Runs and Seeds control
// the averaged population (Runs repetitions in each of Seeds seed
// families), Parallel the worker-pool width, and Collector — stamped
// with Experiment — gathers one exp.Metrics record per simulation run.
//
// Aggregation is deterministic and order-independent: runs are indexed,
// workers write into per-index slots, and averaging walks the slots in
// index order, so the same seeds give byte-identical tables at any
// Parallel level.
type Sweep struct {
	Runs     int
	Seeds    int
	Parallel int
	// Experiment names the registry entry on collected metrics records.
	Experiment string
	// Collector, when non-nil, receives one record per simulation run.
	Collector *exp.Collector
	// Stats runs every repetition with WithStats, so each RunResult
	// carries per-request latency distributions and each collected
	// record its Dist quantiles.
	Stats bool
	// Blame runs every repetition with WithBlame, so each RunResult
	// carries the causal delay attribution and each collected record
	// the blame_*_ms / critical_path_ms columns.
	Blame bool
}

// series executes the sweep's Runs×Seeds repetitions of sc, stepping the
// seed by stride between repetitions — each table keeps its historical
// stride so regenerated output matches the serial code — and by
// seedFamilyStride between families. Results are indexed by repetition.
func (sw Sweep) series(sc Scenario, site *webgen.Site, stride uint64) ([]*RunResult, error) {
	runs, seeds := sw.Runs, sw.Seeds
	if runs <= 0 {
		runs = 1
	}
	if seeds <= 0 {
		seeds = 1
	}
	n := runs * seeds
	results := make([]*RunResult, n)
	var metrics []*exp.Metrics
	if sw.Collector != nil {
		metrics = make([]*exp.Metrics, n)
	}
	// completed counts finished repetitions for the progress layer; the
	// run reaching n marks the cell done. The counter perturbs nothing:
	// it exists only when a progress consumer is installed.
	var completed atomic.Int64
	err := exp.ForEach(sw.Parallel, n, func(i int) error {
		family, rep := i/runs, i%runs
		one := sc
		one.Seed = sc.Seed + uint64(family)*seedFamilyStride + uint64(rep)*stride
		one.Jitter = n > 1
		var opts []Option
		if metrics != nil {
			metrics[i] = &exp.Metrics{Experiment: sw.Experiment, Run: i}
			opts = append(opts, WithMetrics(metrics[i]))
		}
		if sw.Stats {
			opts = append(opts, WithStats())
		}
		if sw.Blame {
			opts = append(opts, WithBlame())
		}
		res, err := Run(one, site, opts...)
		if err != nil {
			return err
		}
		results[i] = res
		if exp.ProgressActive() {
			exp.NotifyProgress(exp.ProgressEvent{
				Experiment: sw.Experiment,
				Scenario:   sc.String(),
				Seed:       one.Seed,
				Run:        i,
				CellDone:   completed.Add(1) == int64(n),
				SimSeconds: res.Elapsed.Seconds(),
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sw.Collector != nil {
		for _, m := range metrics {
			sw.Collector.Add(*m)
		}
	}
	return results, nil
}

// RunAveraged executes the scenario across the sweep's population and
// averages the measurements, like the paper's five-run methodology.
func (sw Sweep) RunAveraged(sc Scenario, site *webgen.Site) (Avg, error) {
	var avg Avg
	results, err := sw.series(sc, site, 7919)
	if err != nil {
		return avg, err
	}
	for _, res := range results {
		avg.Runs++
		avg.Packets += float64(res.Stats.Packets)
		avg.Bytes += float64(res.Stats.PayloadBytes)
		avg.Seconds += res.Elapsed.Seconds()
		avg.SocketsUsed += float64(res.Client.SocketsUsed)
		avg.Errors += res.Client.Errors
	}
	avg.Packets /= float64(avg.Runs)
	avg.Bytes /= float64(avg.Runs)
	avg.Seconds /= float64(avg.Runs)
	avg.SocketsUsed /= float64(avg.Runs)
	hdr := avg.Packets * netem.IPTCPHeaderBytes
	if total := avg.Bytes + hdr; total > 0 {
		avg.OverheadPct = 100 * hdr / total
	}
	return avg, nil
}
