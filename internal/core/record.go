package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The scenario recorder remembers each executed Scenario value keyed by
// its display string. Scenario strings do not round-trip through
// ParseScenario (the paper's mode names contain slashes), so the CLI's
// -profile-slowest — which knows the slowest cell only by the scenario
// string on its metrics record — uses the recorder to recover the exact
// Scenario and re-run it under the CPU profiler.
var scenarioRec struct {
	on atomic.Bool
	mu sync.Mutex
	m  map[string]Scenario
}

// RecordScenarios turns the scenario recorder on or off. While on,
// every Run remembers its Scenario (seed excluded from the key; the
// caller pairs the label with a seed from a metrics record).
func RecordScenarios(on bool) {
	scenarioRec.mu.Lock()
	if on && scenarioRec.m == nil {
		scenarioRec.m = map[string]Scenario{}
	}
	scenarioRec.on.Store(on)
	scenarioRec.mu.Unlock()
}

// RecordedScenario returns the remembered Scenario for a display
// string, if the recorder saw one.
func RecordedScenario(label string) (Scenario, bool) {
	scenarioRec.mu.Lock()
	defer scenarioRec.mu.Unlock()
	sc, ok := scenarioRec.m[label]
	return sc, ok
}

// RecordedScenarios returns every remembered Scenario, sorted by
// display string. Property tests use it to replay the full scenario
// population a sweep executed (e.g. re-running each cell with
// attribution and checking conservation).
func RecordedScenarios() []Scenario {
	scenarioRec.mu.Lock()
	defer scenarioRec.mu.Unlock()
	labels := make([]string, 0, len(scenarioRec.m))
	for l := range scenarioRec.m {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]Scenario, len(labels))
	for i, l := range labels {
		out[i] = scenarioRec.m[l]
	}
	return out
}

// recordScenario files sc under its display string when the recorder is
// on. The atomic guard keeps the off path to a single load.
func recordScenario(sc Scenario) {
	if !scenarioRec.on.Load() {
		return
	}
	label := sc.String()
	scenarioRec.mu.Lock()
	scenarioRec.m[label] = sc
	scenarioRec.mu.Unlock()
}
