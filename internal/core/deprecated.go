package core

import (
	"repro/internal/httpserver"
	"repro/internal/webgen"
)

// This file keeps the pre-Sweep function signatures alive as thin
// wrappers. New code should construct a Sweep (for repetition, seed
// families, parallelism, and metrics collection) or call Run with
// options directly.

// RunCaptured is Run but retains the full packet trace in the result.
//
// Deprecated: use Run(sc, site, WithCapture()).
func RunCaptured(sc Scenario, site *webgen.Site) (*RunResult, error) {
	return Run(sc, site, WithCapture())
}

// RunAveraged executes the scenario n times with varying seeds and jitter
// and averages the measurements.
//
// Deprecated: use Sweep{Runs: n}.RunAveraged.
func RunAveraged(sc Scenario, site *webgen.Site, n int) (Avg, error) {
	return Sweep{Runs: n}.RunAveraged(sc, site)
}

// MainTable regenerates one of Tables 4-9 with the given averaging depth.
//
// Deprecated: use Sweep{Runs: runs}.MainTable.
func MainTable(number int, site *webgen.Site, runs int) (Table, error) {
	return Sweep{Runs: runs}.MainTable(number, site)
}

// BrowserTable regenerates Table 10 or 11.
//
// Deprecated: use Sweep{Runs: runs}.BrowserTable.
func BrowserTable(number int, site *webgen.Site, runs int) (Table, error) {
	return Sweep{Runs: runs}.BrowserTable(number, site)
}

// Table3 reproduces the initial LAN revalidation investigation.
//
// Deprecated: use Sweep{Runs: runs}.Table3.
func Table3(site *webgen.Site, runs int) ([]Table3Row, error) {
	return Sweep{Runs: runs}.Table3(site)
}

// ModemTable reproduces the modem-compression comparison.
//
// Deprecated: use Sweep{Runs: runs}.ModemTable.
func ModemTable(site *webgen.Site, profile httpserver.Profile, runs int) ([]ModemRow, error) {
	return Sweep{Runs: runs}.ModemTable(site, profile)
}

// NagleTable demonstrates the Nagle/delayed-ACK interaction.
//
// Deprecated: use Sweep{Runs: runs}.NagleTable.
func NagleTable(site *webgen.Site, runs int) ([]NagleRow, error) {
	return Sweep{Runs: runs}.NagleTable(site)
}

// ResetTable demonstrates the early-close scenario.
//
// Deprecated: use Sweep{Runs: runs}.ResetTable.
func ResetTable(site *webgen.Site, runs int) ([]ResetRow, error) {
	return Sweep{Runs: runs}.ResetTable(site)
}

// FlushAblation sweeps the pipelining buffer and flush-timer settings.
//
// Deprecated: use Sweep{Runs: runs}.FlushAblation.
func FlushAblation(site *webgen.Site, runs int) ([]FlushRow, error) {
	return Sweep{Runs: runs}.FlushAblation(site)
}

// RangeTable explores the range-request prediction.
//
// Deprecated: use Sweep{Runs: runs}.RangeTable.
func RangeTable(site *webgen.Site, runs int) ([]RangeRow, error) {
	return Sweep{Runs: runs}.RangeTable(site)
}

// CwndTable varies the slow-start initial window.
//
// Deprecated: use Sweep{Runs: runs}.CwndTable.
func CwndTable(site *webgen.Site, runs int) ([]CwndRow, error) {
	return Sweep{Runs: runs}.CwndTable(site)
}
