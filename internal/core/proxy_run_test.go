package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

// proxyScenario is the experiment's canonical cell: a dialup client
// behind a shared proxy that reaches the Apache origin over the WAN.
func proxyScenario(mode httpclient.Mode, warm, stale bool) Scenario {
	sc := scenario(httpserver.ProfileApache, mode, netem.PPP, httpclient.FirstTime)
	sc.Proxy = &ProxyScenario{Env: netem.WAN, Warm: warm, Stale: stale}
	return sc
}

// TestProxyWarmFewerOriginPackets is the headline cache win: the same
// pipelined retrieval through a warm proxy must put strictly fewer
// packets on the origin link than through a cold one — the warm cache
// answers everything at the ISP.
func TestProxyWarmFewerOriginPackets(t *testing.T) {
	site := testSite(t)
	cold, err := Run(proxyScenario(httpclient.ModeHTTP11Pipelined, false, false), site)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(proxyScenario(httpclient.ModeHTTP11Pipelined, true, false), site)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Proxy == nil || cold.Origin == nil || warm.Proxy == nil || warm.Origin == nil {
		t.Fatal("proxy run missing proxy/origin stats")
	}
	if cold.Origin.Packets == 0 {
		t.Fatal("cold run put no packets on the origin link")
	}
	if warm.Origin.Packets >= cold.Origin.Packets {
		t.Fatalf("warm origin packets = %d, want strictly fewer than cold %d",
			warm.Origin.Packets, cold.Origin.Packets)
	}
	if cold.Proxy.Hits != 0 || cold.Proxy.Misses == 0 {
		t.Fatalf("cold cache counters: %d hits, %d misses", cold.Proxy.Hits, cold.Proxy.Misses)
	}
	if warm.Proxy.Misses != 0 || warm.Proxy.Hits != warm.Proxy.Requests {
		t.Fatalf("warm cache counters: %d hits of %d requests, %d misses",
			warm.Proxy.Hits, warm.Proxy.Requests, warm.Proxy.Misses)
	}
	if warm.Proxy.UpstreamRequests != 0 || warm.Proxy.BytesFromCache == 0 {
		t.Fatalf("warm run: %d upstream requests, %d bytes from cache",
			warm.Proxy.UpstreamRequests, warm.Proxy.BytesFromCache)
	}
	// Either way the client must see the complete site.
	for _, res := range []*RunResult{cold, warm} {
		if !res.Client.Done || res.Client.Responses200 != 43 || res.Client.Errors != 0 {
			t.Fatalf("client result through proxy: %+v", res.Client)
		}
	}
}

// TestProxyStaleRevalidatesWithoutBodies checks the third cache state: a
// cache primed on an earlier day answers every request from storage but
// must first revalidate upstream, so origin traffic is conditional GETs
// and 304s — more than warm, far less than cold.
func TestProxyStaleRevalidatesWithoutBodies(t *testing.T) {
	site := testSite(t)
	cold, err := Run(proxyScenario(httpclient.ModeHTTP11Pipelined, false, false), site)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := Run(proxyScenario(httpclient.ModeHTTP11Pipelined, false, true), site)
	if err != nil {
		t.Fatal(err)
	}
	p := stale.Proxy
	if p.Revalidations != p.Requests || p.RevalidationHits != p.Revalidations {
		t.Fatalf("stale run: %d revalidations (%d confirmed) of %d requests",
			p.Revalidations, p.RevalidationHits, p.Requests)
	}
	if p.BytesFromUpstream != 0 {
		t.Fatalf("stale run pulled %d body bytes upstream, want 0 (all 304s)", p.BytesFromUpstream)
	}
	if stale.Origin.Packets == 0 || stale.Origin.Packets >= cold.Origin.Packets {
		t.Fatalf("stale origin packets = %d, want between 1 and cold's %d",
			stale.Origin.Packets, cold.Origin.Packets)
	}
	if stale.Origin.PayloadBytes >= cold.Origin.PayloadBytes {
		t.Fatalf("stale origin payload = %d, want below cold's %d",
			stale.Origin.PayloadBytes, cold.Origin.PayloadBytes)
	}
}

// TestProxyMetricsFilled checks the structured record carries the
// cache-aware fields on a proxy run and omits them on a direct one.
func TestProxyMetricsFilled(t *testing.T) {
	site := testSite(t)
	var m exp.Metrics
	res, err := Run(proxyScenario(httpclient.ModeHTTP11Serial, false, false), site, WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheMisses != res.Proxy.Misses || m.UpstreamRequests != res.Proxy.UpstreamRequests {
		t.Fatalf("metrics misses/upstream = %d/%d, proxy stats %d/%d",
			m.CacheMisses, m.UpstreamRequests, res.Proxy.Misses, res.Proxy.UpstreamRequests)
	}
	if m.OriginPackets != res.Origin.Packets || m.OriginBytes != res.Origin.PayloadBytes {
		t.Fatalf("metrics origin %d pkts/%d bytes, trace %d/%d",
			m.OriginPackets, m.OriginBytes, res.Origin.Packets, res.Origin.PayloadBytes)
	}
	if !strings.HasSuffix(m.Scenario, "/proxy:WAN") {
		t.Fatalf("metrics scenario %q missing topology suffix", m.Scenario)
	}
	var direct exp.Metrics
	if _, err := Run(scenario(httpserver.ProfileApache, httpclient.ModeHTTP11Serial, netem.PPP, httpclient.FirstTime), site, WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}
	if direct.CacheHits != 0 || direct.UpstreamRequests != 0 || direct.OriginPackets != 0 {
		t.Fatalf("direct run leaked proxy metrics: %+v", direct)
	}
}

// TestProxyDeterminism requires identical seeds to reproduce a proxied
// run exactly, including the origin-side trace and proxy counters.
func TestProxyDeterminism(t *testing.T) {
	site := testSite(t)
	sc := proxyScenario(httpclient.ModeHTTP11Pipelined, false, true)
	a, err := Run(sc, site)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, site)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) || !reflect.DeepEqual(a.Origin, b.Origin) ||
		!reflect.DeepEqual(a.Proxy, b.Proxy) || a.Elapsed != b.Elapsed {
		t.Fatalf("same seed diverged:\n%+v / %+v\nvs\n%+v / %+v", a.Stats, a.Proxy, b.Stats, b.Proxy)
	}
}

// TestProxyTimelineDoesNotPerturb extends the golden-output guarantee
// to multi-hop runs: observing a proxied run must not change what any
// tier measures.
func TestProxyTimelineDoesNotPerturb(t *testing.T) {
	site := testSite(t)
	sc := proxyScenario(httpclient.ModeHTTP11Pipelined, false, false)
	plain, err := Run(sc, site)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(sc, site, WithTimeline())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Stats, observed.Stats) || !reflect.DeepEqual(plain.Origin, observed.Origin) {
		t.Fatalf("link stats differ with timeline on:\n%+v / %+v\nvs\n%+v / %+v",
			plain.Stats, plain.Origin, observed.Stats, observed.Origin)
	}
	if !reflect.DeepEqual(plain.Proxy, observed.Proxy) {
		t.Fatalf("proxy stats differ with timeline on:\n%+v\nvs\n%+v", plain.Proxy, observed.Proxy)
	}
	if !reflect.DeepEqual(plain.Client, observed.Client) {
		t.Fatal("client results differ with timeline on")
	}
	via := 0
	for _, sp := range observed.Timeline.Spans() {
		if sp.Via != "" {
			via++
		}
	}
	if via == 0 {
		t.Fatal("no spans tagged with the proxy's Via on an observed proxy run")
	}
}

// TestProxyTableDeterminism runs the proxy experiment generator at both
// pool widths; the rows must be identical.
func TestProxyTableDeterminism(t *testing.T) {
	site := testSite(t)
	serial, err := Sweep{Runs: 2, Parallel: 1}.ProxyTable(site)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep{Runs: 2, Parallel: 8}.ProxyTable(site)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("ProxyTable differs between parallel levels:\nserial: %+v\nparallel: %+v", serial, par)
	}
	if len(serial) != len(proxyVariants)*len(protocolModes) {
		t.Fatalf("got %d rows, want %d", len(serial), len(proxyVariants)*len(protocolModes))
	}
	for _, r := range serial {
		switch r.Variant {
		case "cold":
			if r.HitRatio != 0 || r.OriginPackets == 0 {
				t.Errorf("cold %s: hit ratio %.2f, origin packets %.1f", r.Mode, r.HitRatio, r.OriginPackets)
			}
		case "warm":
			if r.HitRatio != 1 || r.OriginPackets != 0 || r.BytesSaved == 0 {
				t.Errorf("warm %s: hit ratio %.2f, origin packets %.1f, saved %.0f",
					r.Mode, r.HitRatio, r.OriginPackets, r.BytesSaved)
			}
		case "stale":
			if r.OriginPackets == 0 || r.UpstreamRequests == 0 {
				t.Errorf("stale %s: origin packets %.1f, upstream requests %.1f",
					r.Mode, r.OriginPackets, r.UpstreamRequests)
			}
		}
	}
}

// TestParseTopology covers the new scenario vocabulary and its error
// messages naming the valid values.
func TestParseTopology(t *testing.T) {
	if p, err := ParseTopology("direct"); err != nil || p != nil {
		t.Fatalf("direct = %v, %v", p, err)
	}
	p, err := ParseTopology("proxy:WAN:warm")
	if err != nil || p == nil || p.Env != netem.WAN || !p.Warm || p.Stale {
		t.Fatalf("proxy:WAN:warm = %+v, %v", p, err)
	}
	sc, err := ParseScenario("apache/pipelined/PPP/first/proxy:LAN:stale")
	if err != nil || sc.Proxy == nil || sc.Proxy.Env != netem.LAN || !sc.Proxy.Stale {
		t.Fatalf("five-part scenario = %+v, %v", sc.Proxy, err)
	}
	if got := sc.String(); got != "Apache/HTTP/1.1 Pipelined/PPP/First Time Retrieval/proxy:LAN:stale" {
		t.Fatalf("scenario string = %q", got)
	}
	for spec, want := range map[string]string{
		"bridge:WAN":     "direct or proxy:ENV",
		"proxy:DSL":      "LAN, WAN, or PPP",
		"proxy:WAN:damp": "warm or stale",
	} {
		if _, err := ParseTopology(spec); err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("ParseTopology(%q) error %v, want mention of %q", spec, err, want)
		}
	}
	if _, err := ParseScenario("apache/pipelined/PPP"); err == nil ||
		!strings.Contains(err.Error(), "topology") {
		t.Fatalf("short scenario error %v should name the optional topology part", err)
	}
}
