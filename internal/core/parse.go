package core

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/httpclient"
	"repro/internal/httpserver"
	"repro/internal/netem"
)

// ParseServerProfile maps a command-line name to a server profile.
// Accepted (case-insensitive): jigsaw, apache.
func ParseServerProfile(s string) (httpserver.Profile, error) {
	switch strings.ToLower(s) {
	case "jigsaw":
		return httpserver.ProfileJigsaw, nil
	case "apache":
		return httpserver.ProfileApache, nil
	}
	return 0, fmt.Errorf("unknown server profile %q (want jigsaw or apache)", s)
}

// ParseClientMode maps a command-line name to a client mode. Accepted
// (case-insensitive): http10, serial, pipelined, deflate, netscape,
// msie, mux, mux-push, burst.
func ParseClientMode(s string) (httpclient.Mode, error) {
	switch strings.ToLower(s) {
	case "http10":
		return httpclient.ModeHTTP10, nil
	case "serial":
		return httpclient.ModeHTTP11Serial, nil
	case "pipelined":
		return httpclient.ModeHTTP11Pipelined, nil
	case "deflate":
		return httpclient.ModeHTTP11PipelinedDeflate, nil
	case "netscape":
		return httpclient.ModeNetscape, nil
	case "msie":
		return httpclient.ModeMSIE, nil
	case "mux":
		return httpclient.ModeMux, nil
	case "mux-push", "muxpush", "push":
		return httpclient.ModeMuxPush, nil
	case "burst":
		return httpclient.ModeBurst, nil
	}
	return 0, fmt.Errorf("unknown client mode %q (want http10, serial, pipelined, deflate, netscape, msie, mux, mux-push, or burst)", s)
}

// ParseEnvironment maps a command-line name to a network environment.
// Accepted (case-insensitive): LAN, WAN, PPP.
func ParseEnvironment(s string) (netem.Environment, error) {
	switch strings.ToUpper(s) {
	case "LAN":
		return netem.LAN, nil
	case "WAN":
		return netem.WAN, nil
	case "PPP":
		return netem.PPP, nil
	}
	return 0, fmt.Errorf("unknown environment %q (want LAN, WAN, or PPP)", s)
}

// ParseWorkload maps a command-line name to a workload. Accepted
// (case-insensitive): first, reval (or revalidate).
func ParseWorkload(s string) (httpclient.Workload, error) {
	switch strings.ToLower(s) {
	case "first":
		return httpclient.FirstTime, nil
	case "reval", "revalidate":
		return httpclient.Revalidate, nil
	}
	return 0, fmt.Errorf("unknown workload %q (want first or reval)", s)
}

// ParseTopology maps a command-line topology spec onto a scenario's
// proxy configuration: nil for "direct", or a ProxyScenario for
// "proxy:ENV[:warm|:stale]" — e.g. "proxy:WAN" (cold shared cache),
// "proxy:WAN:warm" (site cached and fresh), "proxy:WAN:stale" (cached
// earlier, expired, revalidates upstream).
func ParseTopology(s string) (*ProxyScenario, error) {
	if strings.EqualFold(s, "direct") || s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	if !strings.EqualFold(parts[0], "proxy") || len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("unknown topology %q (want direct or proxy:ENV[:warm|:stale], e.g. proxy:WAN:warm)", s)
	}
	env, err := ParseEnvironment(parts[1])
	if err != nil {
		return nil, err
	}
	p := &ProxyScenario{Env: env}
	if len(parts) == 3 {
		switch strings.ToLower(parts[2]) {
		case "warm":
			p.Warm = true
		case "stale":
			p.Stale = true
		default:
			return nil, fmt.Errorf("unknown cache state %q in topology %q (want warm or stale)", parts[2], s)
		}
	}
	return p, nil
}

// ParseScenario parses a
// "server/client/env/workload[/fifo][/topology][/fault]" spec — e.g.
// "apache/pipelined/PPP/first",
// "apache/pipelined/PPP/first/proxy:WAN:warm",
// "apache/mux/PPP/first/fifo", or
// "apache/pipelined/WAN/first/early-close" — into a Scenario with zero
// seed and no jitter. The optional "fifo" part (mux modes only)
// switches the stream scheduler to first-come-first-served; the next
// optional part is either a ParseTopology spec interposing a shared
// caching proxy or a faults.Profile name; when both are given the
// topology comes first and the fault last.
func ParseScenario(spec string) (Scenario, error) {
	parts := strings.Split(spec, "/")
	if len(parts) < 4 || len(parts) > 7 {
		return Scenario{}, fmt.Errorf(
			"scenario %q: want server/client/env/workload[/fifo][/topology][/fault] — server: jigsaw|apache; client: http10|serial|pipelined|deflate|netscape|msie|mux|mux-push|burst; env: LAN|WAN|PPP; workload: first|reval; topology: direct|proxy:ENV[:warm|:stale]; fault: %s",
			spec, strings.Join(faults.Names(), "|"))
	}
	var sc Scenario
	var err error
	if sc.Server, err = ParseServerProfile(parts[0]); err != nil {
		return Scenario{}, err
	}
	if sc.Client, err = ParseClientMode(parts[1]); err != nil {
		return Scenario{}, err
	}
	if sc.Env, err = ParseEnvironment(parts[2]); err != nil {
		return Scenario{}, err
	}
	if sc.Workload, err = ParseWorkload(parts[3]); err != nil {
		return Scenario{}, err
	}
	rest := parts[4:]
	if len(rest) > 0 && strings.EqualFold(rest[0], "fifo") {
		sc.MuxFIFO = true
		rest = rest[1:]
	}
	if len(rest) > 2 {
		return Scenario{}, fmt.Errorf("scenario %q: too many parts after the workload (want [/fifo][/topology][/fault])", spec)
	}
	if len(rest) >= 1 {
		if f, ferr := faults.Parse(rest[0]); ferr == nil {
			if len(rest) == 2 {
				return Scenario{}, fmt.Errorf("scenario %q: fault profile %q must be the final part", spec, rest[0])
			}
			sc.Fault = f
		} else if sc.Proxy, err = ParseTopology(rest[0]); err != nil {
			return Scenario{}, fmt.Errorf(
				"scenario part %q is neither a topology (direct|proxy:ENV[:warm|:stale]) nor a fault profile (%s)",
				rest[0], strings.Join(faults.Names(), "|"))
		}
	}
	if len(rest) == 2 {
		if sc.Fault, err = faults.Parse(rest[1]); err != nil {
			return Scenario{}, err
		}
	}
	return sc, nil
}
