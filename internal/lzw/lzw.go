// Package lzw implements the Lempel-Ziv-Welch coding family used by two
// substrates of the reproduction:
//
//   - the GIF flavor (variable code width, LSB-first packing, CLEAR/EOI
//     control codes) used by the GIF codec in internal/gifenc, and
//   - a BTLZ-style adaptive dictionary coder approximating the V.42bis
//     compression of 28.8k modems, used by the PPP link model for the
//     paper's "deflate beats modem compression" experiment.
package lzw

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCorrupt reports invalid LZW data.
var ErrCorrupt = errors.New("lzw: corrupt stream")

const maxGIFWidth = 12

// encTable is a pooled encoder dictionary.
type encTable struct {
	entries [1 << (maxGIFWidth + 8)]int32
	gen     int32
}

var dictPool = sync.Pool{New: func() any { return new(encTable) }}

// Compress encodes data in GIF-variant LZW with the given literal width
// (2..8 bits). The output begins with a CLEAR code and ends with EOI, as
// GIF image data requires.
func Compress(data []byte, litWidth int) []byte {
	if litWidth < 2 || litWidth > 8 {
		panic(fmt.Sprintf("lzw: literal width %d out of range", litWidth))
	}
	clear := 1 << uint(litWidth)
	eoi := clear + 1

	var w bitWriter
	width := uint(litWidth + 1)
	next := eoi + 1
	// The dictionary maps (prefix code, next byte) to a code. A flat
	// array indexed by prefix<<8|byte is much faster than a map here
	// (codes are bounded by 1<<maxGIFWidth). Entries are stamped with a
	// generation in the high bits so a CLEAR invalidates the whole table
	// without re-zeroing four megabytes, and tables are pooled across
	// calls.
	tbl := dictPool.Get().(*encTable)
	defer dictPool.Put(tbl)
	dict := tbl.entries[:]
	tbl.gen += 1 << 16
	if tbl.gen < 0 { // generation counter wrapped: start a fresh table
		tbl.gen = 1 << 16
		for i := range dict {
			dict[i] = 0
		}
	}
	gen := tbl.gen

	reset := func() {
		width = uint(litWidth + 1)
		next = eoi + 1
		tbl.gen += 1 << 16
		if tbl.gen < 0 {
			tbl.gen = 1 << 16
			for i := range dict {
				dict[i] = 0
			}
		}
		gen = tbl.gen
	}

	w.writeBits(uint32(clear), width)
	if len(data) == 0 {
		w.writeBits(uint32(eoi), width)
		return w.bytes()
	}

	cur := int(data[0])
	for _, b := range data[1:] {
		key := cur<<8 | int(b)
		if v := dict[key]; v&^0xffff == gen {
			cur = int(v & 0xffff)
			continue
		}
		w.writeBits(uint32(cur), width)
		dict[key] = gen | int32(next)
		next++
		// Widen when the next code to be emitted would not fit.
		if next > 1<<width && width < maxGIFWidth {
			width++
		}
		if next >= 1<<maxGIFWidth {
			w.writeBits(uint32(clear), width)
			reset()
		}
		cur = int(b)
	}
	w.writeBits(uint32(cur), width)
	// The decoder reserves a dictionary slot for every code it reads, so
	// the width bookkeeping must advance here too before EOI goes out
	// (compress/lzw's Close does the same incHi).
	next++
	if next > 1<<width && width < maxGIFWidth {
		width++
	}
	w.writeBits(uint32(eoi), width)
	return w.bytes()
}

// Decompress decodes GIF-variant LZW data with the given literal width.
func Decompress(data []byte, litWidth int) ([]byte, error) {
	if litWidth < 2 || litWidth > 8 {
		return nil, fmt.Errorf("%w: literal width %d out of range", ErrCorrupt, litWidth)
	}
	clear := 1 << uint(litWidth)
	eoi := clear + 1

	r := bitReader{in: data}
	width := uint(litWidth + 1)

	// suffix/prefix arrays describe dictionary entries; entries < clear
	// are literals.
	prefix := make([]int, 1<<maxGIFWidth)
	suffix := make([]byte, 1<<maxGIFWidth)
	next := eoi + 1

	var out []byte
	last := -1
	var lastFirst byte // first byte of the string for code `last`

	expand := func(code int) []byte {
		var rev []byte
		for code >= clear {
			rev = append(rev, suffix[code])
			code = prefix[code]
		}
		rev = append(rev, byte(code))
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	for {
		code, err := r.readBits(width)
		if err != nil {
			return nil, err
		}
		c := int(code)
		switch {
		case c == clear:
			width = uint(litWidth + 1)
			next = eoi + 1
			last = -1
			continue
		case c == eoi:
			return out, nil
		case c < clear:
			out = append(out, byte(c))
			if last >= 0 && next < 1<<maxGIFWidth {
				prefix[next] = last
				suffix[next] = byte(c)
				next++
			}
			last = c
			lastFirst = byte(c)
		case c < next:
			s := expand(c)
			out = append(out, s...)
			if last >= 0 && next < 1<<maxGIFWidth {
				prefix[next] = last
				suffix[next] = s[0]
				next++
			}
			last = c
			lastFirst = s[0]
		case c == next && last >= 0:
			// The KwKwK case: the string is last's string plus its own
			// first byte.
			if next >= 1<<maxGIFWidth {
				return nil, fmt.Errorf("%w: code overflow", ErrCorrupt)
			}
			prefix[next] = last
			suffix[next] = lastFirst
			next++
			s := expand(c)
			out = append(out, s...)
			last = c
			lastFirst = s[0]
		default:
			return nil, fmt.Errorf("%w: code %d beyond dictionary (next %d)", ErrCorrupt, c, next)
		}
		if next > (1<<width)-1 && width < maxGIFWidth {
			width++
		}
	}
}

// bitWriter packs codes LSB-first (GIF order).
type bitWriter struct {
	out  []byte
	acc  uint32
	nacc uint
}

func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc |= v << w.nacc
	w.nacc += n
	for w.nacc >= 8 {
		w.out = append(w.out, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

func (w *bitWriter) bytes() []byte {
	if w.nacc > 0 {
		w.out = append(w.out, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
	return w.out
}

type bitReader struct {
	in   []byte
	pos  int
	acc  uint32
	nacc uint
}

func (r *bitReader) readBits(n uint) (uint32, error) {
	for r.nacc < n {
		if r.pos >= len(r.in) {
			return 0, fmt.Errorf("%w: unexpected end of stream", ErrCorrupt)
		}
		r.acc |= uint32(r.in[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
	v := r.acc & ((1 << n) - 1)
	r.acc >>= n
	r.nacc -= n
	return v, nil
}
