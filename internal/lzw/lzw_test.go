package lzw

import (
	"bytes"
	stdlzw "compress/lzw"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var corpora = map[string][]byte{
	"empty":  {},
	"single": []byte{5},
	"short":  []byte("TOBEORNOTTOBEORTOBEORNOT"),
	"runs":   bytes.Repeat([]byte{1}, 5000),
	"text":   []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 300)),
	"random": func() []byte {
		r := rand.New(rand.NewSource(11))
		b := make([]byte, 6000)
		r.Read(b)
		return b
	}(),
}

func TestRoundTripSelf(t *testing.T) {
	for name, data := range corpora {
		for _, lw := range []int{2, 4, 8} {
			if lw < 8 {
				// Narrow literal widths require narrow symbols.
				ok := true
				for _, b := range data {
					if int(b) >= 1<<lw {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
			}
			comp := Compress(data, lw)
			got, err := Decompress(comp, lw)
			if err != nil {
				t.Fatalf("%s/lw%d: %v", name, lw, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/lw%d: round trip mismatch", name, lw)
			}
		}
	}
}

func TestOurOutputReadableByStdlib(t *testing.T) {
	for name, data := range corpora {
		comp := Compress(data, 8)
		r := stdlzw.NewReader(bytes.NewReader(comp), stdlzw.LSB, 8)
		got, err := io.ReadAll(r)
		if err != nil && err != io.ErrUnexpectedEOF {
			t.Fatalf("%s: stdlib reader: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: stdlib decoded %d bytes, want %d", name, len(got), len(data))
		}
	}
}

func TestStdlibOutputReadableByUs(t *testing.T) {
	for name, data := range corpora {
		var buf bytes.Buffer
		w := stdlzw.NewWriter(&buf, stdlzw.LSB, 8)
		w.Write(data)
		w.Close()
		// The stdlib writer does not emit a leading CLEAR code or a
		// trailing EOI... it does emit EOI on Close. Our decoder handles
		// streams that do not start with CLEAR.
		got, err := Decompress(buf.Bytes(), 8)
		if err != nil {
			t.Fatalf("%s: our decoder on stdlib stream: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: mismatch on stdlib stream", name)
		}
	}
}

func TestCompressesRepetitiveText(t *testing.T) {
	data := corpora["text"]
	comp := Compress(data, 8)
	if len(comp) >= len(data)/2 {
		t.Fatalf("LZW on repetitive text: %d -> %d bytes, want < half", len(data), len(comp))
	}
}

func TestDictionaryOverflowResets(t *testing.T) {
	// Enough distinct material to fill the 4096-entry table and force a
	// CLEAR + rebuild cycle.
	r := rand.New(rand.NewSource(2))
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(r.Intn(64))
	}
	comp := Compress(data, 8)
	got, err := Decompress(comp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip across dictionary reset failed")
	}
}

func TestCorruptStream(t *testing.T) {
	if _, err := Decompress([]byte{}, 8); err == nil {
		t.Error("empty stream accepted")
	}
	// A code far beyond the dictionary: 9-bit code 0x1ff repeated.
	if _, err := Decompress([]byte{0xff, 0xff, 0xff}, 2); err == nil {
		t.Error("wild codes accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		comp := Compress(data, 8)
		got, err := Decompress(comp, 8)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestModemCompressorTextRatio(t *testing.T) {
	m := NewModemCompressor()
	data := corpora["text"]
	bits := 0
	// Feed as 512-byte packets like a serial stream.
	for off := 0; off < len(data); off += 512 {
		end := off + 512
		if end > len(data) {
			end = len(data)
		}
		bits += m.CompressedBits(data[off:end])
	}
	ratio := float64(bits) / float64(8*len(data))
	if ratio > 0.75 {
		t.Fatalf("modem compression ratio %.2f on text, want < 0.75", ratio)
	}
	if ratio < 0.05 {
		t.Fatalf("modem compression ratio %.2f suspiciously good", ratio)
	}
}

func TestModemWeakerThanDeflateShape(t *testing.T) {
	// The paper's point: deflate removes ~2/3 of HTML bytes; modem LZW
	// removes less. We just assert the modem coder does not reach
	// deflate-class ratios on mixed HTML.
	html := []byte(strings.Repeat(
		`<TD ALIGN=left VALIGN=top><FONT SIZE=2 FACE="arial"><A HREF="/x.html">text</A></FONT></TD>`, 150))
	m := NewModemCompressor()
	bits := m.CompressedBits(html)
	ratio := float64(bits) / float64(8*len(html))
	if ratio < 0.10 {
		t.Fatalf("modem ratio %.3f too strong for the comparison to hold", ratio)
	}
}

func TestModemTransparentFallback(t *testing.T) {
	m := NewModemCompressor()
	r := rand.New(rand.NewSource(5))
	pkt := make([]byte, 1500)
	r.Read(pkt)
	bits := m.CompressedBits(pkt)
	if bits > 8*len(pkt)+8 {
		t.Fatalf("random packet cost %d bits, beyond transparent-mode cap %d", bits, 8*len(pkt)+8)
	}
}

func TestModemStatePersistsAcrossPackets(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 400)
	one := NewModemCompressor()
	single := one.CompressedBits(data)

	split := NewModemCompressor()
	total := 0
	for off := 0; off < len(data); off += 100 {
		end := off + 100
		if end > len(data) {
			end = len(data)
		}
		total += split.CompressedBits(data[off:end])
	}
	// Packetized encoding costs a little more (pending-prefix flushes)
	// but must stay in the same ballpark because the dictionary persists.
	if total > 2*single {
		t.Fatalf("packetized cost %d bits vs %d single-shot: dictionary not persisting", total, single)
	}
}

func TestModemReset(t *testing.T) {
	m := NewModemCompressor()
	data := bytes.Repeat([]byte("xyz"), 500)
	first := m.CompressedBits(data)
	trained := m.CompressedBits(data)
	if trained >= first {
		t.Fatalf("trained pass (%d bits) not better than cold pass (%d bits)", trained, first)
	}
	m.Reset()
	cold := m.CompressedBits(data)
	if cold != first {
		t.Fatalf("after Reset cost %d bits, want %d (cold)", cold, first)
	}
}

func TestModemDictSizeFloor(t *testing.T) {
	m := NewModemCompressorSize(10)
	if m.dictSize != 512 {
		t.Fatalf("dict size floor not applied: %d", m.dictSize)
	}
}
