package lzw

import (
	"strings"
	"testing"
)

var benchData = []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 400))

func BenchmarkCompress(b *testing.B) {
	b.SetBytes(int64(len(benchData)))
	for i := 0; i < b.N; i++ {
		Compress(benchData, 8)
	}
}

func BenchmarkDecompress(b *testing.B) {
	comp := Compress(benchData, 8)
	b.SetBytes(int64(len(benchData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModemCompressor(b *testing.B) {
	m := NewModemCompressor()
	b.SetBytes(int64(len(benchData)))
	for i := 0; i < b.N; i++ {
		m.CompressedBits(benchData)
	}
}
