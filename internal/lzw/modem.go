package lzw

// ModemCompressor approximates ITU-T V.42bis (BTLZ) data compression as
// performed by 28.8k modems. It is an adaptive LZW coder over the byte
// stream with a persistent dictionary across packets — like a modem, which
// compresses the serial stream, not individual IP packets.
//
// Simplifications versus the full recommendation, which do not change the
// character of the comparison with deflate (documented in DESIGN.md):
//
//   - the dictionary freezes when full instead of recycling entries LRU;
//   - transparent-mode fallback is modeled per packet: a packet never
//     costs more than its raw size plus one escape byte.
//
// It satisfies the netem.StreamCompressor interface structurally.
type ModemCompressor struct {
	dict  []int32 // (prefix<<8|byte) -> code+1; 0 = empty
	next  int
	width uint
	cur   int // current prefix code, -1 when none

	dictSize int
}

// DefaultModemDictSize is the V.42bis default total number of codewords
// (parameter N2).
const DefaultModemDictSize = 2048

// NewModemCompressor returns a compressor with the default dictionary
// size.
func NewModemCompressor() *ModemCompressor {
	return NewModemCompressorSize(DefaultModemDictSize)
}

// NewModemCompressorSize returns a compressor with the given dictionary
// size (number of codewords, ≥ 512).
func NewModemCompressorSize(dictSize int) *ModemCompressor {
	if dictSize < 512 {
		dictSize = 512
	}
	m := &ModemCompressor{dictSize: dictSize}
	m.Reset()
	return m
}

// Reset clears the dictionary, as on modem retrain.
func (m *ModemCompressor) Reset() {
	m.dict = make([]int32, m.dictSize<<8)
	m.next = 259 // V.42bis: codes 0..255 literals, 256..258 control
	m.width = 9
	m.cur = -1
}

// CompressedBits consumes p as the next span of the stream and returns
// the number of bits the modem would put on the wire for it.
func (m *ModemCompressor) CompressedBits(p []byte) int {
	bits := 0
	for _, b := range p {
		if m.cur < 0 {
			m.cur = int(b)
			continue
		}
		key := m.cur<<8 | int(b)
		if code := m.dict[key]; code != 0 {
			m.cur = int(code) - 1
			continue
		}
		bits += int(m.width)
		if m.next < m.dictSize {
			m.dict[key] = int32(m.next) + 1
			m.next++
			if m.next > 1<<m.width && m.next <= m.dictSize {
				m.width++
			}
		}
		m.cur = int(b)
	}
	// Account for the pending prefix: it will cost one code eventually;
	// attribute it to this packet so per-packet timing is conservative.
	if m.cur >= 0 {
		bits += int(m.width)
		// The prefix remains pending for the next packet; we counted its
		// emission, so restart matching from scratch.
		m.cur = -1
	}
	// Transparent-mode fallback: never worse than raw plus an escape.
	raw := 8*len(p) + 8
	if bits > raw {
		return raw
	}
	return bits
}
