package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

// TestBlameConservation is the attribution layer's global property
// test: every scenario any registered experiment executes — every
// protocol mode, environment, topology, fault profile, and scheduler
// knob — is replayed with attribution enabled, and for every completed
// request the category sum must equal its elapsed time exactly. The
// critical-path partition must tile its chain the same way. Integer
// nanoseconds, no epsilon.
func TestBlameConservation(t *testing.T) {
	core.RecordScenarios(true)
	defer core.RecordScenarios(false)
	s := session(t, 8)
	s.Runs = 1
	for _, name := range exp.Names() {
		e, _ := exp.Lookup(name)
		if _, err := e.Generate(s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	scs := core.RecordedScenarios()
	if len(scs) < 30 {
		t.Fatalf("recorder saw only %d scenarios; expected the full experiment population", len(scs))
	}
	for _, sc := range scs {
		res, err := core.Run(sc, s.Site, core.WithBlame())
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		a := res.Blame
		if a == nil {
			t.Fatalf("%s: no attribution", sc)
		}
		for _, rb := range a.Requests {
			if rb.B.Sum() != rb.Elapsed {
				t.Errorf("%s span %d (%s): blame sum %v != elapsed %v",
					sc, rb.Span, rb.Path, rb.B.Sum(), rb.Elapsed)
			}
		}
		if a.Total.Sum() != a.Elapsed {
			t.Errorf("%s: total blame %v != summed elapsed %v", sc, a.Total.Sum(), a.Elapsed)
		}
		if a.CriticalBlame.Sum() != a.CriticalPath {
			t.Errorf("%s: critical blame %v != critical path %v", sc, a.CriticalBlame.Sum(), a.CriticalPath)
		}
	}
}
