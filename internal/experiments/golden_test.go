package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden table files")

// TestLegacyTablesUnchanged pins the rendered bytes of representative
// pre-existing experiments against goldens captured before the fault
// layer existed: with no fault profile configured, the fault-injection
// wiring must be a strict no-op — no extra RNG draws, no timers, no
// changed seed consumption.
func TestLegacyTablesUnchanged(t *testing.T) {
	for _, name := range []string{"3", "reset"} {
		s := session(t, 4)
		got := render(t, s, name)
		checkGolden(t, name, filepath.Join("testdata", "legacy_"+name+"_golden.txt"), got)
	}
}

// TestVarianceGolden pins the rendered seed-variance table — the
// distribution/±CI renderer driven by real runs — byte-for-byte. The
// table must also be independent of worker-pool width.
func TestVarianceGolden(t *testing.T) {
	s := session(t, 4)
	s.Seeds = 3
	got := render(t, s, "variance")
	checkGolden(t, "variance", filepath.Join("testdata", "variance_golden.txt"), got)
}

// TestMuxFaultsGolden pins the framed-protocol fault-recovery table:
// every faulted mux cell must finish the page deterministically, so the
// averaged recovery counters are byte-stable across regenerations.
func TestMuxFaultsGolden(t *testing.T) {
	s := session(t, 4)
	got := render(t, s, "mux-faults")
	checkGolden(t, "mux-faults", filepath.Join("testdata", "muxfaults_golden.txt"), got)
}

func checkGolden(t *testing.T, name, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: rendered table changed:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}
