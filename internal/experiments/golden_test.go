package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden table files")

// TestLegacyTablesUnchanged pins the rendered bytes of representative
// pre-existing experiments against goldens captured before the fault
// layer existed: with no fault profile configured, the fault-injection
// wiring must be a strict no-op — no extra RNG draws, no timers, no
// changed seed consumption.
func TestLegacyTablesUnchanged(t *testing.T) {
	for _, name := range []string{"3", "reset"} {
		s := session(t, 4)
		got := render(t, s, name)
		path := filepath.Join("testdata", "legacy_"+name+"_golden.txt")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: rendered table changed with no fault profile configured:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}
