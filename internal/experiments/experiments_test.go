package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

func session(t *testing.T, parallel int) *exp.Session {
	t.Helper()
	site, err := core.DefaultSite()
	if err != nil {
		t.Fatal(err)
	}
	return &exp.Session{Site: site, Runs: 2, Parallel: parallel, Collector: exp.NewCollector()}
}

// render generates the named experiment under the session and returns
// the rendered table bytes.
func render(t *testing.T, s *exp.Session, name string) []byte {
	t.Helper()
	e, ok := exp.Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	data, err := e.Generate(s)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := e.Render(&buf, s, data); err != nil {
		t.Fatalf("%s: render: %v", name, err)
	}
	return buf.Bytes()
}

// TestRegisteredNames pins the registry to the historical step order.
func TestRegisteredNames(t *testing.T) {
	want := []string{"1", "3", "4", "5", "6", "7", "8", "9", "10", "11",
		"modem", "tagcase", "css", "png", "nagle", "reset", "flush",
		"range", "headers", "cwnd", "proxy", "faults", "variance", "mux",
		"mux-faults", "blame"}
	got := exp.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	if _, ok := exp.Lookup("sweep"); !ok {
		t.Error("skip-listed sweep experiment not registered")
	}
}

// TestRenderedBytesDeterministic requires the full rendered output of a
// scenario-driven experiment — and its collected metrics CSV — to be
// byte-identical between a serial and a wide worker pool.
func TestRenderedBytesDeterministic(t *testing.T) {
	for _, name := range []string{"3", "nagle", "faults", "variance", "mux", "mux-faults", "blame"} {
		s1 := session(t, 1)
		s8 := session(t, 8)
		out1 := render(t, s1, name)
		out8 := render(t, s8, name)
		if !bytes.Equal(out1, out8) {
			t.Errorf("%s: rendered table differs between -parallel 1 and 8:\n%s\nvs\n%s", name, out1, out8)
		}
		var csv1, csv8 bytes.Buffer
		if err := s1.Collector.WriteCSV(&csv1); err != nil {
			t.Fatal(err)
		}
		if err := s8.Collector.WriteCSV(&csv8); err != nil {
			t.Fatal(err)
		}
		if s1.Collector.Len() == 0 {
			t.Errorf("%s: no metrics collected", name)
		}
		if !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
			t.Errorf("%s: metrics CSV differs between -parallel 1 and 8", name)
		}
	}
}

// TestSweepExperiment runs the skip-listed metrics sweep and checks it
// produces one record per run with the experiment stamp.
func TestSweepExperiment(t *testing.T) {
	s := session(t, 4)
	s.Runs = 1
	e, _ := exp.Lookup("sweep")
	data, err := e.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	recs := data.([]exp.Metrics)
	// 4 modes on LAN and WAN, 3 on PPP, one run each.
	if len(recs) != 11 {
		t.Fatalf("got %d records, want 11", len(recs))
	}
	for _, m := range recs {
		if m.Experiment != "sweep" {
			t.Errorf("record experiment = %q, want sweep", m.Experiment)
		}
		if m.Packets <= 0 {
			t.Errorf("%s: no packets recorded", m.Scenario)
		}
	}
	if s.Collector.Len() != len(recs) {
		t.Errorf("session collector has %d records, want %d", s.Collector.Len(), len(recs))
	}
	var buf bytes.Buffer
	if err := e.Render(&buf, s, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("Per-run metrics")) {
		t.Errorf("sweep render missing title:\n%s", buf.Bytes())
	}
}
